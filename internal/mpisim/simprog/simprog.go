// Package simprog is the engine-agnostic program layer over the two MPI
// engines: the production event-driven core (package mpisim) and the
// retired goroutine reference engine (package mpisim/oracle). It exists so
// the exact same rank program can execute on both — the differential and
// fuzz suites use it to assert per-rank clock equivalence, and the
// `unimem-bench -bench` harness uses it to measure the engines against
// each other on micro and macro benchmarks.
package simprog

import (
	"unimem/internal/machine"
	"unimem/internal/mpisim"
	"unimem/internal/mpisim/oracle"
)

// Waiter completes a non-blocking operation.
type Waiter interface {
	Wait() []byte
}

// Comm is the engine-neutral rank endpoint: the intersection of the two
// engines' Comm APIs that programs need.
type Comm interface {
	Rank() int
	Size() int
	Clock() int64
	CommNS() int64
	Advance(d int64)
	Send(dst, tag int, bytes int64, data []byte)
	Recv(src, tag int) []byte
	Isend(dst, tag int, bytes int64, data []byte) Waiter
	Irecv(src, tag int) Waiter
	SendRecv(dst, src, tag int, bytes int64, data []byte) []byte
	Barrier()
	Allreduce(bytes int64)
	Bcast(bytes int64)
	Reduce(bytes int64)
	Alltoall(bytesPerPair int64)
}

// Engine constructs and runs worlds of one implementation.
type Engine interface {
	Name() string
	// Run executes body on a fresh p-rank world over m and blocks until
	// every rank returns.
	Run(p int, m *machine.Machine, body func(Comm))
}

// Event is the production event-driven engine.
var Event Engine = eventEngine{}

// Oracle is the retired goroutine-per-rank reference engine. Its NewWorld
// allocates a ranks² mailbox matrix of 1024-buffered channels, so keep
// worlds small (≤ a few hundred ranks) or the allocation alone dominates.
var Oracle Engine = oracleEngine{}

// Engines lists both, production engine first.
var Engines = []Engine{Event, Oracle}

type eventEngine struct{}

func (eventEngine) Name() string { return "event" }

func (eventEngine) Run(p int, m *machine.Machine, body func(Comm)) {
	w := mpisim.NewWorld(p, m)
	w.Run(func(c *mpisim.Comm) { body(eventComm{c}) })
}

type eventComm struct{ c *mpisim.Comm }

func (e eventComm) Rank() int       { return e.c.Rank() }
func (e eventComm) Size() int       { return e.c.Size() }
func (e eventComm) Clock() int64    { return e.c.Clock() }
func (e eventComm) CommNS() int64   { return e.c.CommNS }
func (e eventComm) Advance(d int64) { e.c.Advance(d) }
func (e eventComm) Send(dst, tag int, bytes int64, data []byte) {
	e.c.Send(dst, tag, bytes, data)
}
func (e eventComm) Recv(src, tag int) []byte { return e.c.Recv(src, tag) }
func (e eventComm) Isend(dst, tag int, bytes int64, data []byte) Waiter {
	return e.c.Isend(dst, tag, bytes, data)
}
func (e eventComm) Irecv(src, tag int) Waiter { return e.c.Irecv(src, tag) }
func (e eventComm) SendRecv(dst, src, tag int, bytes int64, data []byte) []byte {
	return e.c.SendRecv(dst, src, tag, bytes, data)
}
func (e eventComm) Barrier()                    { e.c.Barrier() }
func (e eventComm) Allreduce(bytes int64)       { e.c.Allreduce(bytes) }
func (e eventComm) Bcast(bytes int64)           { e.c.Bcast(bytes) }
func (e eventComm) Reduce(bytes int64)          { e.c.Reduce(bytes) }
func (e eventComm) Alltoall(bytesPerPair int64) { e.c.Alltoall(bytesPerPair) }

type oracleEngine struct{}

func (oracleEngine) Name() string { return "oracle" }

func (oracleEngine) Run(p int, m *machine.Machine, body func(Comm)) {
	w := oracle.NewWorld(p, m)
	w.Run(func(c *oracle.Comm) { body(oracleComm{c}) })
}

type oracleComm struct{ c *oracle.Comm }

func (o oracleComm) Rank() int       { return o.c.Rank() }
func (o oracleComm) Size() int       { return o.c.Size() }
func (o oracleComm) Clock() int64    { return o.c.Clock() }
func (o oracleComm) CommNS() int64   { return o.c.CommNS }
func (o oracleComm) Advance(d int64) { o.c.Advance(d) }
func (o oracleComm) Send(dst, tag int, bytes int64, data []byte) {
	o.c.Send(dst, tag, bytes, data)
}
func (o oracleComm) Recv(src, tag int) []byte { return o.c.Recv(src, tag) }
func (o oracleComm) Isend(dst, tag int, bytes int64, data []byte) Waiter {
	return o.c.Isend(dst, tag, bytes, data)
}
func (o oracleComm) Irecv(src, tag int) Waiter { return o.c.Irecv(src, tag) }
func (o oracleComm) SendRecv(dst, src, tag int, bytes int64, data []byte) []byte {
	return o.c.SendRecv(dst, src, tag, bytes, data)
}
func (o oracleComm) Barrier()                    { o.c.Barrier() }
func (o oracleComm) Allreduce(bytes int64)       { o.c.Allreduce(bytes) }
func (o oracleComm) Bcast(bytes int64)           { o.c.Bcast(bytes) }
func (o oracleComm) Reduce(bytes int64)          { o.c.Reduce(bytes) }
func (o oracleComm) Alltoall(bytesPerPair int64) { o.c.Alltoall(bytesPerPair) }
