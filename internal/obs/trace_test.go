package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestTraceChromeJSONShape(t *testing.T) {
	tr := NewTrace()
	tr.Span(Virtual, 0, "phase 0", "phase", 1000, 5000, map[string]any{"iter": 1})
	tr.Span(Virtual, 0, "phase 1", "phase", 5000, 9000, nil)
	tr.Instant(Virtual, 0, "reprofile", "adapt", 9000, nil)
	tr.Span(Wall, 1, "execute", "engine", 0, 2_000_000, nil)

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome doc is not valid JSON: %v", err)
	}
	// 2 metadata + 4 recorded.
	if len(doc.TraceEvents) != 6 {
		t.Fatalf("got %d events, want 6", len(doc.TraceEvents))
	}
	var metas, spans, instants int
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "M":
			metas++
			if e.Name != "process_name" || e.Args["name"] == nil {
				t.Errorf("metadata event malformed: %+v", e)
			}
		case "X":
			spans++
		case "i":
			instants++
		}
	}
	if metas != 2 || spans != 3 || instants != 1 {
		t.Errorf("event mix M=%d X=%d i=%d, want 2/3/1", metas, spans, instants)
	}
	// Virtual span timestamps are µs: 1000ns → 1µs, dur 4000ns → 4µs.
	for _, e := range doc.TraceEvents {
		if e.Name == "phase 0" {
			if e.Ts != 1 || e.Dur != 4 || e.Pid != int(Virtual) {
				t.Errorf("phase 0 ts/dur/pid = %v/%v/%d, want 1/4/%d", e.Ts, e.Dur, e.Pid, int(Virtual))
			}
			if iter, ok := e.Args["iter"].(float64); !ok || iter != 1 {
				t.Errorf("phase 0 args = %v", e.Args)
			}
		}
	}
}

func TestTraceNilSafety(t *testing.T) {
	var tr *Trace
	tr.Span(Virtual, 0, "x", "c", 0, 1, nil)
	tr.Instant(Wall, 0, "x", "c", 0, nil)
	tr.WallSpan(0, "x", "c", time.Now(), nil)
	if tr.Len() != 0 || tr.Events() != nil {
		t.Error("nil trace must record nothing")
	}
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("traceEvents")) {
		t.Error("nil trace must still write a valid empty document")
	}
	if _, err := tr.MarshalChrome(); err != nil {
		t.Fatal(err)
	}
	if tr.String() != "trace(nil)" {
		t.Errorf("String = %q", tr.String())
	}
}

func TestTraceConcurrent(t *testing.T) {
	tr := NewTrace()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tr.Span(Virtual, g, "s", "c", int64(i), int64(i+1), nil)
			}
		}(g)
	}
	wg.Wait()
	if tr.Len() != 4000 {
		t.Errorf("len = %d, want 4000", tr.Len())
	}
}

func TestTraceSpanClampsNegativeDuration(t *testing.T) {
	tr := NewTrace()
	tr.Span(Virtual, 0, "x", "c", 100, 50, nil)
	ev := tr.Events()
	if len(ev) != 1 || ev[0].Dur != 0 {
		t.Errorf("negative duration must clamp to 0: %+v", ev)
	}
}
