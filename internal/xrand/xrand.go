// Package xrand provides a small, allocation-free, deterministic PRNG used
// throughout the simulator. All stochastic behaviour in the repository
// (sampling jitter, trace generation, network noise) flows through xrand so
// that every experiment is exactly reproducible from its seed.
//
// The generator is SplitMix64 (Steele et al., "Fast Splittable Pseudorandom
// Number Generators", OOPSLA 2014): a tiny state-passing generator with good
// statistical quality for simulation purposes and trivially cheap splitting,
// which lets each (rank, phase, iteration) tuple own an independent stream.
//
// This determinism is load-bearing beyond reproducibility: the experiment
// engine's run cache (internal/exp) memoizes whole simulated runs on the
// premise that equal (workload, machine, placement, seed) inputs produce
// bit-identical results, which holds only because every random draw flows
// from the seed through this package.
package xrand

import "math"

// RNG is a SplitMix64 pseudorandom number generator. The zero value is a
// valid generator seeded with 0; use New to seed explicitly.
type RNG struct {
	state uint64
}

// New returns a generator seeded with seed.
func New(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Split derives an independent child generator from r. The child's stream is
// decorrelated from both r's future output and other children derived with
// different salts.
func (r *RNG) Split(salt uint64) *RNG {
	return &RNG{state: r.Uint64() ^ (salt * 0x9e3779b97f4a7c15)}
}

// Uint64 returns the next 64 pseudorandom bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a pseudorandom int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a pseudorandom int64 in [0, n). It panics if n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("xrand: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a pseudorandom float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Norm returns a normally distributed float64 with mean 0 and standard
// deviation 1, using the Box-Muller transform.
func (r *RNG) Norm() float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Jitter returns 1 + eps where eps is drawn from N(0, sigma) truncated to
// [-3sigma, 3sigma]. It is the standard multiplicative noise applied to
// emulated measurements (e.g. sampled counter values).
func (r *RNG) Jitter(sigma float64) float64 {
	n := r.Norm()
	if n > 3 {
		n = 3
	} else if n < -3 {
		n = -3
	}
	return 1 + n*sigma
}

// Perm returns a pseudorandom permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
