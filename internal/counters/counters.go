// Package counters emulates the sampling-mode hardware performance counters
// Unimem profiles with (§3.1.1): Intel PEBS / AMD IBS style last-level-cache
// miss sampling, where each sample carries the memory address of a missing
// reference and the runtime maps addresses back to registered data objects.
//
// The emulation reproduces the two measurement artifacts the paper's model
// has to live with:
//
//   - Undercounting. Performance counters cannot observe cache-line
//     evictions or hardware-prefetch traffic, and sampling itself loses
//     events; the paper's CF_bw / CF_lat constant factors exist to correct
//     for this. The sampler applies a configurable capture ratio < 1 plus
//     seeded multiplicative jitter to every per-object access count.
//   - Busy-fraction estimation. Eq. 1's denominator is the fraction of
//     samples that observe an outstanding access to the object; the sampler
//     derives it from the timing model's per-object service time within the
//     phase, again with jitter.
//
// Everything is deterministic given the seed carried by the Sampler.
package counters

import (
	"unimem/internal/machine"
	"unimem/internal/xrand"
)

// ObjSample is the profile of one chunk within one phase as seen through
// the sampled counters.
type ObjSample struct {
	// Chunk names the sampled chunk ("obj" or "obj[i]").
	Chunk string
	// Object names the owning object.
	Object string
	// ChunkIndex is the chunk's index within the object.
	ChunkIndex int
	// SampledAccesses is the estimated number of main-memory accesses
	// (#data_access in Eq. 1): true count degraded by capture ratio+jitter.
	SampledAccesses int64
	// BusySamples is the number of samples that observed an in-flight
	// access to this chunk; TotalSamples-normalized it gives Eq. 1's
	// (#samples with data accesses / #samples).
	BusySamples int64
	// ReadFrac is the observed read fraction of the sampled accesses.
	ReadFrac float64
	// Pattern is attached for test introspection only; the Unimem model
	// never reads it (it classifies via Eq. 1, as the paper does).
	Pattern machine.Pattern
}

// PhaseSample is the counter view of one execution of one phase.
type PhaseSample struct {
	// DurNS is the measured phase duration.
	DurNS float64
	// TotalSamples is the number of counter samples taken in the phase.
	TotalSamples int64
	// Objects holds one entry per chunk that produced main-memory traffic.
	Objects []ObjSample
	// OverheadNS is the profiling overhead added to the phase's critical
	// path while sampling was enabled.
	OverheadNS float64
}

// Config tunes the emulated counter infrastructure.
type Config struct {
	// CaptureRatio is the fraction of true main-memory accesses the
	// sampled counters account for (default 0.80).
	CaptureRatio float64
	// JitterSigma is the relative sigma of the multiplicative measurement
	// noise (default 0.03).
	JitterSigma float64
	// OverheadFrac is the fractional slowdown imposed on a phase while
	// sampling is enabled (default 0.35: a counter interrupt every 1000
	// cycles is expensive while it runs, but it runs only for profiled
	// iterations, so the amortized "pure runtime cost" stays in the
	// paper's sub-3% range).
	OverheadFrac float64
}

// Default returns the default counter configuration.
func Default() Config {
	return Config{CaptureRatio: 0.80, JitterSigma: 0.03, OverheadFrac: 0.35}
}

func (c *Config) fill() {
	if c.CaptureRatio == 0 {
		c.CaptureRatio = 0.80
	}
	if c.JitterSigma == 0 {
		c.JitterSigma = 0.03
	}
	if c.OverheadFrac == 0 {
		c.OverheadFrac = 0.35
	}
}

// Sampler emulates one rank's counter infrastructure.
type Sampler struct {
	cfg  Config
	mach *machine.Machine
	rng  *xrand.RNG
	on   bool
}

// NewSampler returns a sampler for the given machine, seeded deterministically.
func NewSampler(m *machine.Machine, cfg Config, seed uint64) *Sampler {
	cfg.fill()
	return &Sampler{cfg: cfg, mach: m, rng: xrand.New(seed)}
}

// Enable turns sampling on (the runtime enables it for profiled iterations
// only, via the PMPI wrapper in the paper).
func (s *Sampler) Enable() { s.on = true }

// Disable turns sampling off.
func (s *Sampler) Disable() { s.on = false }

// Enabled reports whether sampling is active.
func (s *Sampler) Enabled() bool { return s.on }

// ChunkTraffic is the ground-truth traffic of one chunk in one phase,
// provided by the execution harness (which knows placement and the timing
// model). The sampler degrades it into what counters would report.
type ChunkTraffic struct {
	Chunk      string
	Object     string
	ChunkIndex int
	Accesses   int64 // true post-cache accesses
	ServiceNS  float64
	ReadFrac   float64
	Pattern    machine.Pattern
}

// Sample converts ground-truth phase traffic into a PhaseSample. If
// sampling is disabled it returns nil (no profile, no overhead).
func (s *Sampler) Sample(durNS float64, traffic []ChunkTraffic) *PhaseSample {
	if !s.on {
		return nil
	}
	period := s.mach.SamplePeriodNS()
	total := int64(durNS / period)
	if total < 1 {
		total = 1
	}
	ps := &PhaseSample{
		DurNS:        durNS,
		TotalSamples: total,
		OverheadNS:   durNS * s.cfg.OverheadFrac,
	}
	for _, t := range traffic {
		if t.Accesses <= 0 {
			continue
		}
		acc := int64(float64(t.Accesses) * s.cfg.CaptureRatio * s.rng.Jitter(s.cfg.JitterSigma))
		if acc < 1 {
			acc = 1
		}
		busyFrac := t.ServiceNS / durNS * s.rng.Jitter(s.cfg.JitterSigma)
		if busyFrac > 1 {
			busyFrac = 1
		}
		busy := int64(busyFrac * float64(total))
		if busy < 1 {
			busy = 1
		}
		ps.Objects = append(ps.Objects, ObjSample{
			Chunk:           t.Chunk,
			Object:          t.Object,
			ChunkIndex:      t.ChunkIndex,
			SampledAccesses: acc,
			BusySamples:     busy,
			ReadFrac:        t.ReadFrac,
			Pattern:         t.Pattern,
		})
	}
	return ps
}
