package app_test

import (
	"testing"

	"unimem/internal/app"
	"unimem/internal/core"
	"unimem/internal/machine"
	"unimem/internal/workloads"
)

// TestSmokeCG runs CG under DRAM-only, NVM-only and Unimem and checks the
// fundamental ordering the whole evaluation rests on:
// DRAM-only <= Unimem < NVM-only, with Unimem close to DRAM-only.
func TestSmokeCG(t *testing.T) {
	w := workloads.NewCG("C", 4)
	base := machine.PlatformA()
	nvmMach := base.WithNVMBandwidthFraction(0.5)

	dram, err := app.Run(w, base, app.Options{}, app.NewStaticFactory("dram-only", nil))
	if err != nil {
		t.Fatal(err)
	}
	nvm, err := app.Run(w, nvmMach, app.Options{}, app.NewStaticFactory("nvm-only", nil))
	if err != nil {
		t.Fatal(err)
	}
	uni, err := app.Run(w, nvmMach, app.Options{}, core.Factory(core.DefaultConfig()))
	if err != nil {
		t.Fatal(err)
	}

	d, n, u := float64(dram.TimeNS), float64(nvm.TimeNS), float64(uni.TimeNS)
	t.Logf("CG: dram=%.1fms nvm=%.1fms (%.2fx) unimem=%.1fms (%.2fx) migrations=%d bytes=%dMB",
		d/1e6, n/1e6, n/d, u/1e6, u/d, uni.TotalMigrations(), uni.TotalBytesMigrated()>>20)

	if n <= d {
		t.Fatalf("NVM-only (%v) should be slower than DRAM-only (%v)", n, d)
	}
	if u >= n {
		t.Errorf("Unimem (%v) should beat NVM-only (%v)", u, n)
	}
	if u > d*1.15 {
		t.Errorf("Unimem (%v) should be within 15%% of DRAM-only (%v); got %.2fx", u, d, u/d)
	}
	if uni.TotalMigrations() == 0 {
		t.Error("Unimem should have migrated something")
	}
}
