package scenario

import (
	"reflect"
	"testing"
)

// TestGenerateDeterministic: equal (archetype, seed) pairs must produce
// identical specs — the property the fleet experiment's serial-vs-parallel
// golden equivalence and the run cache both rest on.
func TestGenerateDeterministic(t *testing.T) {
	for _, a := range Archetypes() {
		s1, err := Generate(a, 42)
		if err != nil {
			t.Fatalf("%s: %v", a, err)
		}
		s2, err := Generate(a, 42)
		if err != nil {
			t.Fatalf("%s: %v", a, err)
		}
		if !reflect.DeepEqual(s1, s2) {
			t.Errorf("%s: same seed produced different specs", a)
		}
		if s1.Digest() != s2.Digest() {
			t.Errorf("%s: same seed produced different digests", a)
		}
		s3, err := Generate(a, 43)
		if err != nil {
			t.Fatalf("%s: %v", a, err)
		}
		if s1.Digest() == s3.Digest() {
			t.Errorf("%s: different seeds produced identical digests", a)
		}
	}
}

// TestGenerateAllArchetypesCompile: every archetype validates, compiles,
// sets hints, and has placement tension (placeable objects exceed the
// 256 MiB fast tier).
func TestGenerateAllArchetypesCompile(t *testing.T) {
	for _, a := range Archetypes() {
		for seed := uint64(0); seed < 5; seed++ {
			s, err := Generate(a, seed)
			if err != nil {
				t.Fatalf("%s seed %d: %v", a, seed, err)
			}
			w, err := s.Compile()
			if err != nil {
				t.Fatalf("%s seed %d: compile: %v", a, seed, err)
			}
			if w.TotalObjectBytes() <= 256<<20 {
				t.Errorf("%s seed %d: footprint %d MiB fits the fast tier — no placement tension",
					a, seed, w.TotalObjectBytes()>>20)
			}
			hinted := 0
			for _, o := range w.Objects {
				if o.RefHint > 0 {
					hinted++
				}
			}
			if hinted == 0 {
				t.Errorf("%s seed %d: no static hints set", a, seed)
			}
		}
	}
}

// TestDriftArchetypesActuallyDrift: drift archetypes' ground truth must
// vary across iterations; stationary archetypes must not.
func TestDriftArchetypesActuallyDrift(t *testing.T) {
	for _, a := range Archetypes() {
		s, err := Generate(a, 11)
		if err != nil {
			t.Fatal(err)
		}
		w, err := s.Compile()
		if err != nil {
			t.Fatal(err)
		}
		varies := false
		for i := range w.Phases {
			base := w.Phases[i].Refs(0)
			for iter := 1; iter < w.Iterations && !varies; iter++ {
				varies = !refsEqual(base, w.Phases[i].Refs(iter))
			}
		}
		if varies != a.IsDrift() {
			t.Errorf("%s: traffic varies=%v, want %v", a, varies, a.IsDrift())
		}
		// Drift must land inside a Quick-capped (12-iteration) run too.
		if a.IsDrift() {
			early := false
			for i := range w.Phases {
				base := w.Phases[i].Refs(0)
				for iter := 1; iter < 12 && !early; iter++ {
					early = !refsEqual(base, w.Phases[i].Refs(iter))
				}
			}
			if !early {
				t.Errorf("%s: first drift event after iteration 12 — invisible to Quick-mode fleets", a)
			}
		}
	}
}
