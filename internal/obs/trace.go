package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Clock selects which timeline a span is recorded against. The simulator
// advances a virtual clock in nanoseconds that bears no relation to wall
// time; exporting both as separate Chrome-trace "processes" lets the two
// timelines sit side by side in chrome://tracing.
type Clock int

const (
	// Virtual is the simulator's logical clock (Comm.Clock()), in ns.
	Virtual Clock = 1
	// Wall is real time, measured from the trace's creation instant.
	Wall Clock = 2
)

// TraceEvent is one Chrome trace-event record. Fields mirror the
// trace-event JSON format: ph "X" is a complete span (Ts..Ts+Dur), ph "i"
// an instant, ph "M" metadata. Timestamps and durations are microseconds
// (float, so sub-µs virtual spans survive).
type TraceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// Trace accumulates span and instant events for one run. All methods are
// safe for concurrent use and safe on a nil receiver, so instrumented
// code threads a *Trace unconditionally and pays one nil check when
// tracing is off. Construct with NewTrace.
type Trace struct {
	mu     sync.Mutex
	t0     time.Time
	events []TraceEvent
}

// NewTrace returns an empty trace whose wall-clock origin is now.
func NewTrace() *Trace {
	return &Trace{t0: time.Now()}
}

func (t *Trace) add(e TraceEvent) {
	t.mu.Lock()
	t.events = append(t.events, e)
	t.mu.Unlock()
}

// Span records a complete event on the given clock's track. For Virtual,
// startNS/endNS are simulator nanoseconds; for Wall they are nanoseconds
// since the trace origin (use WallSpan for the common time.Time form).
// tid groups events into rows — ranks for virtual spans, goroutine-ish
// lanes for wall spans.
func (t *Trace) Span(clock Clock, tid int, name, cat string, startNS, endNS int64, args map[string]any) {
	if t == nil {
		return
	}
	if endNS < startNS {
		endNS = startNS
	}
	t.add(TraceEvent{
		Name: name, Cat: cat, Ph: "X",
		Ts: float64(startNS) / 1e3, Dur: float64(endNS-startNS) / 1e3,
		Pid: int(clock), Tid: tid, Args: args,
	})
}

// Instant records a point event on the given clock's track.
func (t *Trace) Instant(clock Clock, tid int, name, cat string, atNS int64, args map[string]any) {
	if t == nil {
		return
	}
	t.add(TraceEvent{
		Name: name, Cat: cat, Ph: "i", S: "t",
		Ts: float64(atNS) / 1e3, Pid: int(clock), Tid: tid, Args: args,
	})
}

// Meta records a metadata event carried into the exported document — the
// daemon stamps the request ID here so a Chrome trace can be joined back
// to its log lines and explain document.
func (t *Trace) Meta(key string, value any) {
	if t == nil {
		return
	}
	t.add(TraceEvent{
		Name: key, Ph: "M", Pid: int(Wall),
		Args: map[string]any{"value": value},
	})
}

// WallSpan records a wall-clock span from start to now, relative to the
// trace origin. It returns the duration for callers that also feed a
// histogram.
func (t *Trace) WallSpan(tid int, name, cat string, start time.Time, args map[string]any) time.Duration {
	d := time.Since(start)
	if t == nil {
		return d
	}
	t.Span(Wall, tid, name, cat, int64(start.Sub(t.t0)), int64(start.Sub(t.t0))+int64(d), args)
	return d
}

// Origin returns the trace's wall-clock origin (zero time on nil).
func (t *Trace) Origin() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.t0
}

// Len returns the number of recorded events (0 on nil).
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Events returns a copy of the recorded events (nil on nil).
func (t *Trace) Events() []TraceEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]TraceEvent(nil), t.events...)
}

// chromeDoc is the chrome://tracing container object.
type chromeDoc struct {
	TraceEvents     []TraceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// metadataEvents name the two clock tracks so chrome://tracing labels
// them instead of showing bare pids.
func metadataEvents() []TraceEvent {
	meta := func(pid int, name string) TraceEvent {
		return TraceEvent{
			Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]any{"name": name},
		}
	}
	return []TraceEvent{
		meta(int(Virtual), "virtual clock (simulated ns)"),
		meta(int(Wall), "wall clock"),
	}
}

// WriteChrome writes the trace as Chrome trace-event JSON, loadable in
// chrome://tracing or Perfetto. A nil trace writes an empty document.
func (t *Trace) WriteChrome(w io.Writer) error {
	doc := chromeDoc{TraceEvents: metadataEvents(), DisplayTimeUnit: "ms"}
	if t != nil {
		doc.TraceEvents = append(doc.TraceEvents, t.Events()...)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// MarshalChrome returns the Chrome trace-event JSON document as bytes —
// the form the /run?trace=1 response embeds.
func (t *Trace) MarshalChrome() ([]byte, error) {
	doc := chromeDoc{TraceEvents: metadataEvents(), DisplayTimeUnit: "ms"}
	if t != nil {
		doc.TraceEvents = append(doc.TraceEvents, t.Events()...)
	}
	return json.Marshal(doc)
}

// String summarizes the trace for logs.
func (t *Trace) String() string {
	if t == nil {
		return "trace(nil)"
	}
	return fmt.Sprintf("trace(%d events)", t.Len())
}
