// Package lru is a minimal keyed least-recently-used table shared by the
// bounded session registries (the legacy default-session table and the
// serve layer's session pool). It is deliberately not concurrency-safe —
// both callers already hold their own mutex — and deliberately not used
// by the run cache's shards, whose eviction must skip in-flight entries
// and account bytes (see exp.RunCache.evictLocked).
package lru

import "container/list"

// entry is one key/value slot on the recency list.
type entry[K comparable, V any] struct {
	key K
	val V
}

// Table maps keys to values, bounded at max entries with
// least-recently-used eviction (Get and Put both refresh recency).
type Table[K comparable, V any] struct {
	max int
	m   map[K]*list.Element
	l   *list.List // front = most recently used
}

// New returns an empty table bounded at max entries (max < 1 panics:
// every caller has a compile-time constant bound).
func New[K comparable, V any](max int) *Table[K, V] {
	if max < 1 {
		panic("lru: bound must be at least 1")
	}
	return &Table[K, V]{max: max, m: map[K]*list.Element{}, l: list.New()}
}

// Get returns the value for key and marks it most recently used.
func (t *Table[K, V]) Get(key K) (V, bool) {
	if el, ok := t.m[key]; ok {
		t.l.MoveToFront(el)
		return el.Value.(*entry[K, V]).val, true
	}
	var zero V
	return zero, false
}

// Put inserts (or refreshes) key -> val as most recently used, evicting
// the least-recently-used entries past the bound.
func (t *Table[K, V]) Put(key K, val V) {
	if el, ok := t.m[key]; ok {
		el.Value.(*entry[K, V]).val = val
		t.l.MoveToFront(el)
		return
	}
	t.m[key] = t.l.PushFront(&entry[K, V]{key: key, val: val})
	for t.l.Len() > t.max {
		oldest := t.l.Back()
		t.l.Remove(oldest)
		delete(t.m, oldest.Value.(*entry[K, V]).key)
	}
}

// Len returns the resident entry count.
func (t *Table[K, V]) Len() int { return t.l.Len() }

// Values returns the resident values, most recently used first.
func (t *Table[K, V]) Values() []V {
	out := make([]V, 0, t.l.Len())
	for el := t.l.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*entry[K, V]).val)
	}
	return out
}
