package simprog

import (
	"fmt"

	"unimem/internal/machine"
	"unimem/internal/xrand"
)

// OpKind enumerates the engine-neutral program vocabulary.
type OpKind uint8

const (
	OpAdvance OpKind = iota
	OpSend
	OpRecv
	OpIsend
	OpIrecv
	OpWait
	OpSendRecv
	OpBarrier
	OpAllreduce
	OpBcast
	OpReduce
	OpAlltoall
)

// Op is one rank-program step.
type Op struct {
	Kind  OpKind
	Peer  int // Send/Isend: dst; Recv/Irecv: src; SendRecv: dst
	Peer2 int // SendRecv: src
	Tag   int
	Bytes int64
	Dur   int64 // OpAdvance
	Slot  int   // request slot: set by Isend/Irecv, consumed by Wait
	Data  []byte
}

// Program is a per-rank op-list program on a P-rank world. Programs built
// by Generate are deadlock-free by construction and keep in-flight
// messages per rank pair far below the oracle engine's 1024-slot mailbox,
// so they are valid on both engines.
type Program struct {
	P     int
	Ranks [][]Op
}

// RankTrace is one rank's observable outcome: the virtual-clock state the
// differential suite pins, plus every received payload in completion
// order (message-loss and ordering evidence).
type RankTrace struct {
	Clock  int64
	CommNS int64
	Recvd  [][]byte
}

// Run executes the program on the given engine and returns one trace per
// rank.
func (pr *Program) Run(e Engine, m *machine.Machine) []RankTrace {
	traces := make([]RankTrace, pr.P)
	e.Run(pr.P, m, func(c Comm) {
		r := c.Rank()
		tr := &traces[r]
		slots := map[int]Waiter{}
		slotIsRecv := map[int]bool{}
		for _, op := range pr.Ranks[r] {
			switch op.Kind {
			case OpAdvance:
				c.Advance(op.Dur)
			case OpSend:
				c.Send(op.Peer, op.Tag, op.Bytes, op.Data)
			case OpRecv:
				tr.Recvd = append(tr.Recvd, c.Recv(op.Peer, op.Tag))
			case OpIsend:
				slots[op.Slot] = c.Isend(op.Peer, op.Tag, op.Bytes, op.Data)
			case OpIrecv:
				slots[op.Slot] = c.Irecv(op.Peer, op.Tag)
				slotIsRecv[op.Slot] = true
			case OpWait:
				w, ok := slots[op.Slot]
				if !ok {
					panic(fmt.Sprintf("simprog: rank %d waits on unknown slot %d", r, op.Slot))
				}
				delete(slots, op.Slot)
				data := w.Wait()
				if slotIsRecv[op.Slot] {
					tr.Recvd = append(tr.Recvd, data)
					delete(slotIsRecv, op.Slot)
				}
			case OpSendRecv:
				tr.Recvd = append(tr.Recvd, c.SendRecv(op.Peer, op.Peer2, op.Tag, op.Bytes, op.Data))
			case OpBarrier:
				c.Barrier()
			case OpAllreduce:
				c.Allreduce(op.Bytes)
			case OpBcast:
				c.Bcast(op.Bytes)
			case OpReduce:
				c.Reduce(op.Bytes)
			case OpAlltoall:
				c.Alltoall(op.Bytes)
			default:
				panic(fmt.Sprintf("simprog: unknown op kind %d", op.Kind))
			}
		}
		tr.Clock = c.Clock()
		tr.CommNS = c.CommNS()
	})
	return traces
}

// payload stamps a unique, checkable message body.
func payload(src, round, seq int) []byte {
	return []byte(fmt.Sprintf("m%d.%d.%d", src, round, seq))
}

// Generate builds a seeded random program: rounds of skewed compute,
// ring exchanges (blocking and non-blocking), tag-shuffled bursts that
// exercise the reorder buffer, opposing SendRecv exchanges, and random
// collectives — the mixed traffic the differential suite replays on both
// engines.
func Generate(seed uint64, p, rounds int) *Program {
	rng := xrand.New(seed)
	pr := &Program{P: p, Ranks: make([][]Op, p)}
	slot := 0
	for round := 0; round < rounds; round++ {
		switch rng.Intn(6) {
		case 0: // skewed local compute
			for r := 0; r < p; r++ {
				pr.Ranks[r] = append(pr.Ranks[r], Op{Kind: OpAdvance, Dur: rng.Int63n(5_000_000)})
			}
		case 1: // non-blocking ring exchange, waits in random order
			tag := 100 + rng.Intn(8)
			bytes := 1 + rng.Int63n(1<<16)
			for r := 0; r < p; r++ {
				right := (r + 1) % p
				left := (r - 1 + p) % p
				sOut, sIn := slot, slot+1
				ops := []Op{
					{Kind: OpIsend, Peer: right, Tag: tag, Bytes: bytes, Slot: sOut, Data: payload(r, round, 0)},
					{Kind: OpIrecv, Peer: left, Tag: tag, Slot: sIn},
				}
				if rng.Intn(2) == 0 {
					ops = append(ops, Op{Kind: OpWait, Slot: sOut}, Op{Kind: OpWait, Slot: sIn})
				} else {
					ops = append(ops, Op{Kind: OpWait, Slot: sIn}, Op{Kind: OpWait, Slot: sOut})
				}
				pr.Ranks[r] = append(pr.Ranks[r], ops...)
			}
			slot += 2
		case 2: // tag-shuffled burst between random disjoint pairs
			perm := rng.Perm(p)
			for i := 0; i+1 < len(perm); i += 2 {
				src, dst := perm[i], perm[i+1]
				n := 2 + rng.Intn(6)
				tags := make([]int, n)
				sizes := make([]int64, n)
				for k := 0; k < n; k++ {
					tags[k] = rng.Intn(3) // few tags: force reorder-buffer hits
					sizes[k] = 1 + rng.Int63n(1<<12)
					pr.Ranks[src] = append(pr.Ranks[src], Op{
						Kind: OpSend, Peer: dst, Tag: tags[k], Bytes: sizes[k],
						Data: payload(src, round, k),
					})
				}
				// Receive the same tag multiset in shuffled completion
				// order, mixing blocking receives with out-of-order
				// Irecv/Wait completion.
				order := rng.Perm(n)
				var waits []Op
				for _, k := range order {
					if rng.Intn(3) == 0 {
						s := slot
						slot++
						pr.Ranks[dst] = append(pr.Ranks[dst], Op{Kind: OpIrecv, Peer: src, Tag: tags[k], Slot: s})
						waits = append(waits, Op{Kind: OpWait, Slot: s})
					} else {
						pr.Ranks[dst] = append(pr.Ranks[dst], Op{Kind: OpRecv, Peer: src, Tag: tags[k]})
					}
				}
				// Complete outstanding Irecvs LIFO: latest posted finishes
				// first.
				for j := len(waits) - 1; j >= 0; j-- {
					pr.Ranks[dst] = append(pr.Ranks[dst], waits[j])
				}
			}
		case 3: // opposing SendRecv halo exchanges
			reps := 1 + rng.Intn(3)
			tag := 200 + rng.Intn(4)
			bytes := 1 + rng.Int63n(1<<14)
			for rep := 0; rep < reps; rep++ {
				for r := 0; r < p; r++ {
					right := (r + 1) % p
					left := (r - 1 + p) % p
					pr.Ranks[r] = append(pr.Ranks[r], Op{
						Kind: OpSendRecv, Peer: right, Peer2: left, Tag: tag, Bytes: bytes,
						Data: payload(r, round, rep),
					})
				}
			}
		case 4: // random collective
			kind := []OpKind{OpBarrier, OpAllreduce, OpBcast, OpReduce, OpAlltoall}[rng.Intn(5)]
			bytes := 1 + rng.Int63n(1<<16)
			for r := 0; r < p; r++ {
				pr.Ranks[r] = append(pr.Ranks[r], Op{Kind: kind, Bytes: bytes})
			}
		case 5: // skew + barrier (collective clock alignment under imbalance)
			for r := 0; r < p; r++ {
				pr.Ranks[r] = append(pr.Ranks[r],
					Op{Kind: OpAdvance, Dur: rng.Int63n(2_000_000)},
					Op{Kind: OpBarrier})
			}
		}
	}
	return pr
}

// PlatformFor returns the machine model differential runs use (the
// paper's Platform A — any would do; the clock math only needs the
// network terms).
func PlatformFor() *machine.Machine { return machine.PlatformA() }
