package exp

// This file is the RunCache's snapshot persistence: a versioned JSON
// format that a long-lived server (cmd/unimem-serve) writes on shutdown
// and reads on startup, so a restarted process answers previously-served
// deterministic runs as cache hits instead of re-simulating them.
//
// Versioning is two-layered. The file carries an explicit format version
// (SnapshotVersion) guarding the envelope; the entries version themselves
// through their RunKeys — the machine performance fingerprint and the
// scenario spec digest are part of every key, so entries written against a
// different fingerprint scheme, machine parameterization or spec body can
// never match a live request. A mismatched envelope is reported as an
// error (callers cold-start); mismatched keys are merely dead weight that
// ages out through the LRU.

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"

	"unimem/internal/app"
)

// SnapshotVersion is the on-disk envelope version. Bump it when the entry
// schema changes shape (not when key semantics change — keys self-version
// through fingerprint and digest).
const SnapshotVersion = 1

// ErrSnapshotVersion reports an envelope whose version differs from
// SnapshotVersion; callers should treat the snapshot as absent.
var ErrSnapshotVersion = errors.New("exp: run-cache snapshot has incompatible version")

// snapshotFile is the on-disk envelope.
type snapshotFile struct {
	Version int             `json:"version"`
	Entries []snapshotEntry `json:"entries"`
}

// snapshotEntry is one persisted run: its identity and its result. Errors
// and in-flight runs are never persisted — only successful completed
// executions are worth warming a restart with.
type snapshotEntry struct {
	Key    RunKey      `json:"key"`
	Result *app.Result `json:"result"`
}

// SaveSnapshot atomically writes every completed successful entry to path
// (temp file in the same directory, then rename), creating parent
// directories as needed. Entries are written least-recently-used first per
// shard, so LoadSnapshot reconstructs each shard's recency order. It
// returns the number of entries written.
func (c *RunCache) SaveSnapshot(path string) (int, error) {
	if c == nil {
		return 0, errors.New("exp: SaveSnapshot on nil RunCache")
	}
	snap := snapshotFile{Version: SnapshotVersion}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for el := sh.lru.Back(); el != nil; el = el.Prev() {
			e := el.Value.(*cacheEntry)
			if !e.completed || e.err != nil || e.res == nil {
				continue
			}
			snap.Entries = append(snap.Entries, snapshotEntry{Key: e.key, Result: e.res})
		}
		sh.mu.Unlock()
	}
	data, err := json.Marshal(&snap)
	if err != nil {
		return 0, fmt.Errorf("exp: encoding run-cache snapshot: %w", err)
	}
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, err
	}
	tmp, err := os.CreateTemp(dir, ".runcache-*.tmp")
	if err != nil {
		return 0, err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return 0, err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return 0, err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return 0, err
	}
	return len(snap.Entries), nil
}

// LoadSnapshot seeds the cache from a snapshot file written by
// SaveSnapshot. A missing file is not an error (cold start, 0 entries). A
// version mismatch returns ErrSnapshotVersion (wrapped), a corrupt file a
// decode error; in both cases nothing is loaded and callers should proceed
// cold. Loaded entries count in CacheStats.Loaded, not as misses, and
// respect the cache's entry/byte budgets (the most recently used entries
// of an over-budget snapshot win).
func (c *RunCache) LoadSnapshot(path string) (int, error) {
	if c == nil {
		return 0, errors.New("exp: LoadSnapshot on nil RunCache")
	}
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	var snap snapshotFile
	if err := json.Unmarshal(data, &snap); err != nil {
		return 0, fmt.Errorf("exp: decoding run-cache snapshot %s: %w", path, err)
	}
	if snap.Version != SnapshotVersion {
		return 0, fmt.Errorf("%w: %s has version %d, want %d",
			ErrSnapshotVersion, path, snap.Version, SnapshotVersion)
	}
	n := 0
	for _, se := range snap.Entries {
		if se.Result == nil {
			continue
		}
		if c.seed(se.Key, se.Result) {
			n++
		}
	}
	return n, nil
}
