package app

import (
	"unimem/internal/counters"
	"unimem/internal/machine"
	"unimem/internal/memsys"
	"unimem/internal/phase"
)

// Static is a placement manager with a fixed policy decided at allocation
// time and no runtime activity: it models DRAM-only and NVM-only systems
// (under machines whose tiers are configured accordingly), the paper's
// Fig. 4 experiments that pin a chosen object in DRAM, and — through
// NewTieredStaticFactory — arbitrary static assignments on N-tier
// hierarchies.
type Static struct {
	name string
	// tierOf decides the initial (and permanent) tier per object name; nil
	// means everything goes to the slowest tier.
	tierOf func(object string, m *machine.Machine) machine.TierKind
}

// NewStaticFactory returns a factory of Static managers. inDRAM may be nil,
// meaning everything goes to the slowest tier (NVM on two-tier machines);
// objects it selects go to the fastest tier.
func NewStaticFactory(name string, inDRAM func(object string) bool) ManagerFactory {
	var tierOf func(string, *machine.Machine) machine.TierKind
	if inDRAM != nil {
		tierOf = func(object string, m *machine.Machine) machine.TierKind {
			if inDRAM(object) {
				return 0
			}
			return m.SlowestIdx()
		}
	}
	return func(rank int) Manager {
		return &Static{name: name, tierOf: tierOf}
	}
}

// NewTieredStaticFactory returns a factory of Static managers enforcing an
// explicit per-object tier assignment on an N-tier machine. Objects absent
// from assign go to the slowest tier.
func NewTieredStaticFactory(name string, assign map[string]machine.TierKind) ManagerFactory {
	tierOf := func(object string, m *machine.Machine) machine.TierKind {
		if t, ok := assign[object]; ok {
			return t
		}
		return m.SlowestIdx()
	}
	return func(rank int) Manager {
		return &Static{name: name, tierOf: tierOf}
	}
}

// Name implements Manager.
func (s *Static) Name() string { return s.name }

// Setup implements Manager: allocates every target object in its fixed tier.
func (s *Static) Setup(ctx *RankCtx) error {
	for _, os := range ctx.W.Objects {
		tier := ctx.Mach.SlowestIdx()
		if s.tierOf != nil {
			tier = s.tierOf(os.Name, ctx.Mach)
		}
		if _, err := ctx.Heap.Alloc(os.Name, os.Size, memsys.AllocOptions{
			InitialTier: tier,
			RefHint:     os.RefHint,
		}); err != nil {
			return err
		}
	}
	return nil
}

// LoopStart implements Manager (no-op).
func (s *Static) LoopStart(*RankCtx) {}

// PhaseBegin implements Manager (no-op).
func (s *Static) PhaseBegin(*RankCtx, string, phase.Kind, string) {}

// PhaseEnd implements Manager (no-op).
func (s *Static) PhaseEnd(*RankCtx, float64, []counters.ChunkTraffic) {}

// LoopEnd implements Manager (no-op).
func (s *Static) LoopEnd(*RankCtx) {}

// RuntimeOverheadNS implements Manager: a static policy costs nothing.
func (s *Static) RuntimeOverheadNS(int) float64 { return 0 }

// SteadyState implements FastPather: a static placement never changes,
// so the manager is quiescent from the first iteration. (Recorder
// inherits this safely: it only records iteration 0, and fast-forward
// cannot engage before the stability window has elapsed.)
func (s *Static) SteadyState() bool { return true }

// FastForward implements FastPather: no per-iteration bookkeeping.
func (s *Static) FastForward(int) {}

// RecordedPhase is the exact (unsampled) traffic of one phase execution,
// as an offline whole-program instrumentation pass like X-Mem's PIN tool
// would capture it.
type RecordedPhase struct {
	Name    string
	DurNS   float64
	Traffic []counters.ChunkTraffic
}

// RecordedProfile is one rank's offline profile: the phases of the first
// iteration in order.
type RecordedProfile struct {
	Phases []RecordedPhase
}

// Recorder is a manager that places everything in NVM and records the
// first iteration's exact traffic; the X-Mem baseline builds its static
// placement from such profiles.
type Recorder struct {
	Static
	out     *RecordedProfile
	nPhases int
	seen    int
}

// NewRecorderFactory returns a factory whose managers write each rank's
// profile into profiles[rank].
func NewRecorderFactory(profiles []*RecordedProfile) ManagerFactory {
	return func(rank int) Manager {
		return &Recorder{Static: Static{name: "recorder"}, out: profiles[rank]}
	}
}

// PhaseEnd implements Manager: records first-iteration traffic verbatim.
func (r *Recorder) PhaseEnd(ctx *RankCtx, durNS float64, traffic []counters.ChunkTraffic) {
	if r.seen < len(ctx.W.Phases) {
		cp := make([]counters.ChunkTraffic, len(traffic))
		copy(cp, traffic)
		r.out.Phases = append(r.out.Phases, RecordedPhase{
			Name:    ctx.W.Phases[r.seen].Name,
			DurNS:   durNS,
			Traffic: cp,
		})
		r.seen++
	}
}
