package exp

import (
	"fmt"
	"strings"

	"unimem/internal/machine"
	"unimem/internal/workloads"
)

// TechSweep evaluates the named NVM technology points of the paper's
// Table 1 (STT-RAM, PCRAM, ReRAM) instead of the synthetic fraction/factor
// sweeps: each technology's published latency and bandwidth ratios to DRAM
// configure the NVM tier, and CG and MG run NVM-only and under Unimem.
//
// The paper motivates this with Observation 1 ("application performance is
// sensitive to different NVM technologies with various bandwidth and
// latency"); this sweep makes the sensitivity concrete per technology and
// shows how much of each technology's gap the runtime recovers.
func (s *Suite) TechSweep() (*Table, error) {
	t := &Table{
		ID:    "techsweep",
		Title: "Named NVM technologies from Table 1: NVM-only vs Unimem",
		Columns: []string{"Technology", "NVM bw/lat vs DRAM",
			"CG NVM-only", "CG Unimem", "MG NVM-only", "MG Unimem"},
	}
	base := machine.PlatformA()
	cg := workloads.NewCG(s.Class, s.Ranks)
	mg := workloads.NewMG(s.Class, s.Ranks)
	techs := machine.Table1()[1:]
	rows := make([][]interface{}, len(techs))
	err := forEachRow(s.ctx(), s.workers(), len(techs), func(i int) error {
		tech := techs[i]
		m := machine.TechMachine(base, tech)
		dm := dramMachineFor(m)
		row := []interface{}{tech.Name, describeTiers(m)}
		for _, w := range []*workloads.Workload{cg, mg} {
			dram, err := s.runStatic(w, dm, "dram-only", nil)
			if err != nil {
				return err
			}
			nvm, err := s.runStatic(w, m, "nvm-only", nil)
			if err != nil {
				return err
			}
			uni, _, err := s.runUnimem(w, m, s.unimemConfig(m))
			if err != nil {
				return err
			}
			row = append(row, norm(nvm.TimeNS, dram.TimeNS), norm(uni.TimeNS, dram.TimeNS))
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"tier ratios are midpoints of Table 1's published ranges; ReRAM's extreme write figures make it the stress case")
	return t, nil
}

func describeTiers(m *machine.Machine) string {
	bw := m.Slowest().BandwidthBps / m.Fastest().BandwidthBps
	lat := m.Slowest().ReadLatNS / m.Fastest().ReadLatNS
	latStr := strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.1f", lat), "0"), ".")
	return fmtPct(bw) + " bw, " + latStr + "x read lat"
}
