package exp

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// quickSuite runs experiments at reduced iteration counts.
func quickSuite() *Suite {
	s := NewSuite()
	s.Quick = true
	return s
}

func cell(t *testing.T, tbl *Table, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(tbl.Rows[row][col], "%"), 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) %q: %v", row, col, tbl.Rows[row][col], err)
	}
	return v
}

func TestRegistryComplete(t *testing.T) {
	order, reg := Registry()
	if len(order) != len(reg) {
		t.Fatalf("order %d entries, registry %d", len(order), len(reg))
	}
	for _, id := range order {
		if reg[id] == nil {
			t.Fatalf("experiment %q missing", id)
		}
	}
	// Every paper artifact is covered.
	for _, id := range []string{"table1", "table3", "table4", "fig2", "fig3",
		"fig4", "fig9", "fig10", "fig11", "fig12", "fig13"} {
		if reg[id] == nil {
			t.Errorf("paper artifact %s has no runner", id)
		}
	}
}

func TestTable1(t *testing.T) {
	tbl, err := quickSuite().Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 || tbl.Rows[0][0] != "DRAM" {
		t.Fatalf("table1 rows %v", tbl.Rows)
	}
}

func TestTable3(t *testing.T) {
	tbl, err := quickSuite().Table3()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 7 {
		t.Fatalf("table3 has %d rows, want 7 benchmarks", len(tbl.Rows))
	}
}

func TestCalib(t *testing.T) {
	tbl, err := quickSuite().Calib()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		cf, _ := strconv.ParseFloat(row[1], 64)
		if cf < 1.0 || cf > 1.6 {
			t.Errorf("%s: CF_bw %v out of plausible range", row[0], cf)
		}
	}
}

// TestFig9Shape is the headline regression: the ordering
// DRAM-only <= Unimem <= NVM-only must hold per benchmark, and Unimem must
// stay within the paper's "16% at most" envelope of DRAM-only.
func TestFig9Shape(t *testing.T) {
	tbl, err := quickSuite().Fig9()
	if err != nil {
		t.Fatal(err)
	}
	for r := range tbl.Rows {
		name := tbl.Rows[r][0]
		nvm, uni := cell(t, tbl, r, 2), cell(t, tbl, r, 4)
		if nvm < 1.0 {
			t.Errorf("%s: NVM-only %v beats DRAM-only", name, nvm)
		}
		if uni > nvm+0.01 {
			t.Errorf("%s: Unimem %v worse than NVM-only %v", name, uni, nvm)
		}
		if uni > 1.20 {
			t.Errorf("%s: Unimem %v further than 20%% from DRAM-only", name, uni)
		}
	}
}

func TestFig10Shape(t *testing.T) {
	tbl, err := quickSuite().Fig10()
	if err != nil {
		t.Fatal(err)
	}
	last := len(tbl.Rows) - 1 // avg row
	nvm, uni := cell(t, tbl, last, 2), cell(t, tbl, last, 4)
	if nvm < 1.3 {
		t.Errorf("avg NVM-only gap %v too small for 4x latency", nvm)
	}
	if uni > 1.30 {
		t.Errorf("avg Unimem %v; paper closes the latency gap to ~7%%", uni)
	}
}

func TestFig2MonotoneInBandwidth(t *testing.T) {
	tbl, err := quickSuite().Fig2()
	if err != nil {
		t.Fatal(err)
	}
	for r := range tbl.Rows {
		half, quarter, eighth := cell(t, tbl, r, 1), cell(t, tbl, r, 2), cell(t, tbl, r, 3)
		if !(half <= quarter && quarter <= eighth) {
			t.Errorf("%s: slowdown not monotone in bandwidth: %v %v %v",
				tbl.Rows[r][0], half, quarter, eighth)
		}
		if half < 1.0 {
			t.Errorf("%s: NVM faster than DRAM?", tbl.Rows[r][0])
		}
	}
}

func TestFig3MonotoneInLatency(t *testing.T) {
	tbl, err := quickSuite().Fig3()
	if err != nil {
		t.Fatal(err)
	}
	for r := range tbl.Rows {
		x2, x4, x8 := cell(t, tbl, r, 1), cell(t, tbl, r, 2), cell(t, tbl, r, 3)
		if !(x2 <= x4 && x4 <= x8) {
			t.Errorf("%s: slowdown not monotone in latency", tbl.Rows[r][0])
		}
	}
}

// TestFig4Sensitivity checks the paper's Observation 3: buffers are
// bandwidth- but not latency-sensitive; lhs the reverse.
func TestFig4Sensitivity(t *testing.T) {
	tbl, err := quickSuite().Fig4()
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < len(tbl.Rows); r += 2 {
		halfRow, latRow := r, r+1
		class := tbl.Rows[halfRow][0]
		// Under 1/2 bw: buffers-in-DRAM must gain more than lhs-in-DRAM.
		bufHalf := cell(t, tbl, halfRow, 6) - cell(t, tbl, halfRow, 3)
		lhsHalf := cell(t, tbl, halfRow, 6) - cell(t, tbl, halfRow, 4)
		if bufHalf < lhsHalf {
			t.Errorf("class %s at 1/2 bw: buffers gain %v < lhs gain %v", class, bufHalf, lhsHalf)
		}
		// Under 4x lat: lhs must gain much more than buffers.
		bufLat := cell(t, tbl, latRow, 6) - cell(t, tbl, latRow, 3)
		lhsLat := cell(t, tbl, latRow, 6) - cell(t, tbl, latRow, 4)
		if lhsLat < 5*bufLat {
			t.Errorf("class %s at 4x lat: lhs gain %v not >> buffer gain %v", class, lhsLat, bufLat)
		}
		// rhs helps under both (sensitive to both).
		if rhsHalf := cell(t, tbl, halfRow, 6) - cell(t, tbl, halfRow, 5); rhsHalf <= 0 {
			t.Errorf("class %s: rhs must help under 1/2 bw", class)
		}
		if rhsLat := cell(t, tbl, latRow, 6) - cell(t, tbl, latRow, 5); rhsLat <= 0 {
			t.Errorf("class %s: rhs must help under 4x lat", class)
		}
	}
}

func TestTable4Sanity(t *testing.T) {
	tbl, err := quickSuite().Table4()
	if err != nil {
		t.Fatal(err)
	}
	for r := range tbl.Rows {
		name := tbl.Rows[r][0]
		cost := cell(t, tbl, r, 3)
		if cost > 10 {
			t.Errorf("%s: pure runtime cost %v%% too high", name, cost)
		}
		overlap := cell(t, tbl, r, 4)
		if overlap < 0 || overlap > 100 {
			t.Errorf("%s: overlap %v%%", name, overlap)
		}
	}
}

func TestFig12ScalingShape(t *testing.T) {
	s := quickSuite()
	tbl, err := s.Fig12()
	if err != nil {
		t.Fatal(err)
	}
	for r := range tbl.Rows {
		uni := cell(t, tbl, r, 3)
		nvm := cell(t, tbl, r, 2)
		// Quick mode runs only 12 iterations, so the profiling iteration
		// and adoption amortize over fewer repeats than the full run
		// (which lands <= 1.08); only the ordering and a loose envelope
		// are asserted here.
		if uni > nvm || uni > 1.25 {
			t.Errorf("ranks=%s: Unimem %v vs NVM-only %v out of envelope", tbl.Rows[r][0], uni, nvm)
		}
	}
}

func TestRenderAndCSV(t *testing.T) {
	tbl := &Table{ID: "x", Title: "T", Columns: []string{"a", "b"}}
	tbl.AddRow("r1", 1.5)
	tbl.AddRow("r2", 2)
	tbl.Notes = append(tbl.Notes, "note")
	var buf bytes.Buffer
	tbl.Render(&buf)
	out := buf.String()
	for _, want := range []string{"== x: T ==", "r1", "1.50", "note:"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	buf.Reset()
	if err := tbl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "a,b\n") {
		t.Errorf("csv header wrong: %q", buf.String())
	}
}

func TestAblationShape(t *testing.T) {
	tbl, err := quickSuite().Ablation()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("ablation rows %d", len(tbl.Rows))
	}
	// SP @4x lat: disabling the MLP correction must not *improve* the
	// result (the refinement exists because the literal model misorders
	// the knapsack there).
	full := cell(t, tbl, 0, 2)
	literal := cell(t, tbl, 0, 3)
	if literal < full-0.02 {
		t.Errorf("literal Eq.3 (%v) beat the MLP-corrected model (%v) on SP@4xlat", literal, full)
	}
	// Every configuration must still beat NVM-only.
	for r := range tbl.Rows {
		nvm := cell(t, tbl, r, 1)
		for col := 2; col <= 5; col++ {
			if v := cell(t, tbl, r, col); v > nvm+0.02 {
				t.Errorf("row %s col %d: ablated Unimem %v worse than NVM-only %v",
					tbl.Rows[r][0], col, v, nvm)
			}
		}
	}
}

func TestFig11SharesSumToOne(t *testing.T) {
	tbl, err := quickSuite().Fig11()
	if err != nil {
		t.Fatal(err)
	}
	for r := range tbl.Rows {
		var sum float64
		for col := 1; col <= 4; col++ {
			sum += cell(t, tbl, r, col)
		}
		if sum < 98 || sum > 102 {
			t.Errorf("%s: technique shares sum to %v%%, want ~100%%", tbl.Rows[r][0], sum)
		}
	}
}

func TestFig13CapacityMonotone(t *testing.T) {
	tbl, err := quickSuite().Fig13()
	if err != nil {
		t.Fatal(err)
	}
	for r := range tbl.Rows {
		c128, c256, c512 := cell(t, tbl, r, 2), cell(t, tbl, r, 3), cell(t, tbl, r, 4)
		// More DRAM can only help (small tolerance for sampling jitter).
		if c256 > c128+0.03 || c512 > c256+0.03 {
			t.Errorf("%s: not monotone in DRAM size: %v %v %v", tbl.Rows[r][0], c128, c256, c512)
		}
	}
}

func TestTechSweepShape(t *testing.T) {
	tbl, err := quickSuite().TechSweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("techsweep rows %d, want the 3 NVM technologies", len(tbl.Rows))
	}
	for r := range tbl.Rows {
		name := tbl.Rows[r][0]
		for _, pair := range [][2]int{{2, 3}, {4, 5}} {
			nvm, uni := cell(t, tbl, r, pair[0]), cell(t, tbl, r, pair[1])
			if nvm < 1.5 {
				t.Errorf("%s: NVM-only %v suspiciously fast for a degraded technology", name, nvm)
			}
			if uni > nvm/1.4 {
				t.Errorf("%s: Unimem %v should recover most of the %vx gap", name, uni, nvm)
			}
		}
	}
	// Severity must rank STT-RAM < PCRAM < ReRAM for CG.
	if !(cell(t, tbl, 0, 2) < cell(t, tbl, 1, 2) && cell(t, tbl, 1, 2) < cell(t, tbl, 2, 2)) {
		t.Error("technology severity ordering violated")
	}
}

// TestTierscapeShape checks the N-tier experiment's physics: slowest-only
// must lose to the fastest-only twin everywhere, Unimem must recover a
// large share of the slowest-only gap, never (materially) lose to
// slowest-only, and the per-tier stats must be present and within tier
// capacities.
func TestTierscapeShape(t *testing.T) {
	tbl, err := quickSuite().Tierscape()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 9 {
		t.Fatalf("tierscape rows %d, want 3 platforms x 3 benchmarks", len(tbl.Rows))
	}
	platforms := map[string]bool{}
	for r := range tbl.Rows {
		platforms[tbl.Rows[r][0]] = true
		name := tbl.Rows[r][0] + "/" + tbl.Rows[r][1]
		slow, uni := cell(t, tbl, r, 3), cell(t, tbl, r, 5)
		if slow < 1.0 {
			t.Errorf("%s: slowest-only %v beats the fastest-only twin", name, slow)
		}
		if uni > slow+0.02 {
			t.Errorf("%s: Unimem %v worse than slowest-only %v", name, uni, slow)
		}
		// Unimem must close at least half of the slowest-only gap.
		if slow > 1.1 && uni-1 > (slow-1)*0.5 {
			t.Errorf("%s: Unimem %v recovers too little of the %v gap", name, uni, slow)
		}
	}
	if len(platforms) != 3 {
		t.Errorf("tierscape covers %d platforms, want 3", len(platforms))
	}
	if len(tbl.TierStats) == 0 {
		t.Fatal("tierscape must emit per-tier stats for the JSON output")
	}
	caps := map[string]map[int]int64{}
	for _, m := range tierPlatforms() {
		caps[m.Name] = map[int]int64{}
		for tr := 0; tr < m.NumTiers(); tr++ {
			caps[m.Name][tr] = m.Tiers[tr].CapacityBytes
		}
	}
	for _, st := range tbl.TierStats {
		if st.Name == "" {
			t.Fatalf("tier stat without a tier name: %+v", st)
		}
		if c, ok := caps[st.Platform][st.Tier]; !ok {
			t.Fatalf("tier stat for unknown platform/tier: %+v", st)
		} else if st.ResidentBytes > c {
			t.Errorf("%s tier %d: resident %d exceeds capacity %d",
				st.Platform, st.Tier, st.ResidentBytes, c)
		}
	}
}

// TestTieredStaticAssignRespectsCapacity property-checks the hint-density
// static placement: never over capacity on any constrained tier, hintless
// objects untouched (slowest tier by default).
func TestTieredStaticAssignRespectsCapacity(t *testing.T) {
	for _, m := range tierPlatforms() {
		for _, w := range quickSuite().evalSuite() {
			assign := TieredStaticAssign(w, m)
			used := make([]int64, m.NumTiers())
			for name, tier := range assign {
				o := w.Object(name)
				if o == nil {
					t.Fatalf("%s/%s: assigned unknown object %q", m.Name, w.Name, name)
				}
				if o.RefHint <= 0 {
					t.Errorf("%s/%s: hintless object %q placed in tier %d", m.Name, w.Name, name, tier)
				}
				used[tier] += o.Size
			}
			for tr := 0; tr < m.NumTiers()-1; tr++ {
				if used[tr] > m.Tiers[tr].CapacityBytes {
					t.Errorf("%s/%s: tier %d over capacity", m.Name, w.Name, tr)
				}
			}
		}
	}
}
