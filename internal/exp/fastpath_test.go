package exp

import (
	"context"
	"reflect"
	"testing"

	"unimem/internal/app"
	"unimem/internal/core"
	"unimem/internal/machine"
	"unimem/internal/scenario"
)

// TestFastPathDifferentialRandomized is the randomized exact-vs-fast
// differential suite: every generator archetype, under the full Unimem
// runtime and the cache-exempt static baselines, must produce
// byte-identical results with the analytic fast path on and off — and
// the fast path must have engaged somewhere, or the equality is vacuous.
// The engine runs uncached so both sides really execute.
func TestFastPathDifferentialRandomized(t *testing.T) {
	eng := NewEngine(true, nil) // quick, uncached: both sides execute fresh
	m := machine.PlatformA().WithNVMLatencyFactor(4)
	strategies := []struct {
		name string
		st   Strategy
	}{
		{"unimem", StrategyUnimem()},
		{"hint-density", StrategyHintDensity()},
		{"xmem", StrategyXMem()},
	}
	var analytic, hits int64
	for _, a := range scenario.Archetypes() {
		for si, seed := range []uint64{0x5EED, 0xFA57} {
			spec, err := scenario.Generate(a, seed)
			if err != nil {
				t.Fatal(err)
			}
			spec.Ranks = 2
			w, err := spec.Compile()
			if err != nil {
				t.Fatal(err)
			}
			for _, s := range strategies {
				cfg := core.DefaultConfig()
				cfg.Seed = seed
				run := func(exact bool) (*app.Result, []*core.Runtime, ExecInfo) {
					res, rts, info, err := eng.ExecuteInfo(context.Background(), w, m, s.st, cfg,
						app.Options{Ranks: spec.Ranks, Seed: seed, ExactSim: exact})
					if err != nil {
						t.Fatalf("%s/%s seed %d: %v", a, s.name, si, err)
					}
					return res, rts, info
				}
				exRes, exRts, exInfo := run(true)
				faRes, faRts, faInfo := run(false)
				if !reflect.DeepEqual(exRes, faRes) {
					t.Errorf("%s/%s/%s: results diverge with fast path on", a, spec.Name, s.name)
				}
				if exInfo.FastPath.AnalyticIters != 0 || exInfo.FastPath.FastForwards != 0 {
					t.Errorf("%s/%s/%s: exact run fast-forwarded: %+v",
						a, spec.Name, s.name, exInfo.FastPath)
				}
				for r := range exRts {
					if exRts[r].Decisions != faRts[r].Decisions ||
						!reflect.DeepEqual(exRts[r].ReprofileIters, faRts[r].ReprofileIters) {
						t.Errorf("%s/%s rank %d: adaptation history diverges: exact(%d %v) fast(%d %v)",
							a, spec.Name, r, exRts[r].Decisions, exRts[r].ReprofileIters,
							faRts[r].Decisions, faRts[r].ReprofileIters)
					}
				}
				analytic += faInfo.FastPath.AnalyticIters
				hits += faInfo.FastPath.MemoHits
			}
		}
	}
	if analytic == 0 {
		t.Fatal("fast path never engaged across the differential suite; equality is vacuous")
	}
	if hits == 0 {
		t.Fatal("phase memo never hit across the differential suite")
	}
}

// TestFastPathFullLengthStationary runs one full-length (uncapped)
// stationary workload through both paths: long stable windows are where
// extrapolation drift would compound if the arithmetic were not exact.
func TestFastPathFullLengthStationary(t *testing.T) {
	eng := NewEngine(false, nil)
	m := machine.PlatformA().WithNVMLatencyFactor(4)
	spec, err := scenario.Generate(scenario.Archetypes()[0], 0x5EED)
	if err != nil {
		t.Fatal(err)
	}
	spec.Ranks = 2
	spec.Iterations = 120
	w, err := spec.Compile()
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	run := func(exact bool) (*app.Result, ExecInfo) {
		res, _, info, err := eng.ExecuteInfo(context.Background(), w, m, StrategyUnimem(), cfg,
			app.Options{Ranks: spec.Ranks, ExactSim: exact})
		if err != nil {
			t.Fatal(err)
		}
		return res, info
	}
	exact, _ := run(true)
	fast, info := run(false)
	if !reflect.DeepEqual(exact, fast) {
		t.Fatal("full-length results diverge with fast path on")
	}
	if info.FastPath.AnalyticIters == 0 {
		t.Fatalf("fast path never engaged on a 120-iteration stationary run: %+v", info.FastPath)
	}
}
