package core_test

import (
	"sync"
	"testing"

	"unimem/internal/app"
	"unimem/internal/core"
	"unimem/internal/machine"
	"unimem/internal/phase"
	"unimem/internal/workloads"
)

// TestTinyDRAMGracefulDegradation: with DRAM far smaller than any object,
// nothing is placeable; the runtime must run to completion at NVM-only
// speed without failures cascading.
func TestTinyDRAMGracefulDegradation(t *testing.T) {
	w := tinyWorkload(8)
	m := machine.PlatformA().WithNVMBandwidthFraction(0.5).WithDRAMCapacity(8 << 20)
	res, rt := run(t, w, m, core.DefaultConfig())
	if res.Ranks[0].Migrations.Migrations != 0 {
		t.Fatalf("nothing fits in 8MB DRAM, yet %d migrations happened",
			res.Ranks[0].Migrations.Migrations)
	}
	if rt.Plan() == nil {
		t.Fatal("the runtime must still decide (an empty placement)")
	}
	nvm, err := app.Run(w, m, app.Options{Ranks: 1}, app.NewStaticFactory("nvm", nil))
	if err != nil {
		t.Fatal(err)
	}
	// Within ~5% of NVM-only (profiling overhead only).
	if float64(res.TimeNS) > 1.05*float64(nvm.TimeNS) {
		t.Fatalf("degraded run %d >> nvm-only %d", res.TimeNS, nvm.TimeNS)
	}
}

// TestNodeDRAMContention: many ranks sharing one node's DRAM service must
// not deadlock or double-book; failed moves are counted, not fatal.
func TestNodeDRAMContention(t *testing.T) {
	w := tinyWorkload(6)
	w.Ranks = 8
	m := machine.PlatformA().WithNVMBandwidthFraction(0.5).WithDRAMCapacity(200 << 20)
	var mu sync.Mutex
	var rts []*core.Runtime
	res, err := app.Run(w, m, app.Options{Ranks: 8, RanksPerNode: 8}, func(rank int) app.Manager {
		rt := core.NewRuntime(rank, core.DefaultConfig())
		mu.Lock()
		rts = append(rts, rt)
		mu.Unlock()
		return rt
	})
	if err != nil {
		t.Fatal(err)
	}
	// Aggregate DRAM residency across all 8 ranks must fit the node.
	var resident int64
	for _, rt := range rts {
		for _, name := range rt.DRAMResidents() {
			resident += w.Object(name).Size
		}
	}
	if resident > 200<<20 {
		t.Fatalf("node DRAM overbooked: %d bytes resident", resident)
	}
	if res.TimeNS <= 0 {
		t.Fatal("run did not complete")
	}
}

// TestSingleIterationApp: the main loop runs exactly once — the runtime
// profiles but never reaches a decision point; it must shut down cleanly.
func TestSingleIterationApp(t *testing.T) {
	res, rt := run(t, tinyWorkload(1), nvmMachine(), core.DefaultConfig())
	if rt.Decisions != 0 {
		t.Fatalf("decisions = %d on a single-iteration app", rt.Decisions)
	}
	if res.TimeNS <= 0 {
		t.Fatal("no time recorded")
	}
}

// TestTwoIterationApp: the decision lands exactly at the second
// iteration's start; enforcement has one iteration to act.
func TestTwoIterationApp(t *testing.T) {
	_, rt := run(t, tinyWorkload(2), nvmMachine(), core.DefaultConfig())
	if rt.Decisions != 1 {
		t.Fatalf("decisions = %d", rt.Decisions)
	}
}

// TestManyObjectsKnapsackScale: hundreds of small objects exercise the
// knapsack DP at scale without pathological runtime.
func TestManyObjectsKnapsackScale(t *testing.T) {
	w := &workloads.Workload{
		Name: "many", Class: "C", Ranks: 1, Iterations: 4,
	}
	var refs []phase.Ref
	for i := 0; i < 200; i++ {
		name := "o" + string(rune('a'+i/26)) + string(rune('a'+i%26))
		w.Objects = append(w.Objects, workloads.ObjectSpec{Name: name, Size: 4 << 20})
		refs = append(refs, phase.Ref{
			Object: name, Accesses: int64(1000 * (i + 1)), ReadFrac: 0.5,
			Pattern: machine.Stream,
		})
	}
	w.Phases = []workloads.Phase{
		{Name: "touch_all", Kind: phase.Compute, Flops: 1e6,
			Refs: func(int) []phase.Ref { return refs }},
		{Name: "sync", Kind: phase.Comm, Comm: workloads.CommBarrier,
			Refs: func(int) []phase.Ref { return nil }},
	}
	m := machine.PlatformA().WithNVMBandwidthFraction(0.5).WithDRAMCapacity(64 << 20)
	res, rt := run(t, w, m, core.DefaultConfig())
	if res.TimeNS <= 0 || rt.Plan() == nil {
		t.Fatal("run failed")
	}
	// Residency must respect capacity.
	var resident int64
	for _, n := range rt.DRAMResidents() {
		resident += w.Object(n).Size
	}
	if resident > 64<<20 {
		t.Fatalf("capacity violated: %d", resident)
	}
}

// TestAblationKnobsRunEndToEnd ensures each ablation configuration is
// functional (the ablation experiment depends on them).
func TestAblationKnobsRunEndToEnd(t *testing.T) {
	for _, knob := range []func(*core.Config){
		func(c *core.Config) { c.LiteralEq3 = true },
		func(c *core.Config) { c.NaivePredictor = true },
		func(c *core.Config) { c.NoHysteresis = true },
	} {
		cfg := core.DefaultConfig()
		knob(&cfg)
		res, _ := run(t, tinyWorkload(8), nvmMachine(), cfg)
		if res.TimeNS <= 0 {
			t.Fatal("ablated run failed")
		}
	}
}
