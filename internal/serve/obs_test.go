package serve_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"

	"unimem/internal/obs"
	"unimem/internal/serve"
)

// scrapeErr fetches /metrics and validates the whole exposition line by
// line. Safe to call from any goroutine.
func scrapeErr(base string) (string, error) {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("/metrics status %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if err := obs.ValidateExposition(bytes.NewReader(body)); err != nil {
		return "", fmt.Errorf("invalid exposition: %v\n%s", err, body)
	}
	return string(body), nil
}

// scrape is scrapeErr for the test goroutine.
func scrape(t *testing.T, base string) string {
	t.Helper()
	body, err := scrapeErr(base)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// histRequestCount sums the request-latency histogram's _count samples
// across every label combination — the number of instrumented requests
// the server has completed.
func histRequestCount(t *testing.T, exposition string) int64 {
	t.Helper()
	var total int64
	for _, line := range strings.Split(exposition, "\n") {
		if !strings.HasPrefix(line, "unimem_http_request_duration_seconds_count") {
			continue
		}
		fields := strings.Fields(line)
		v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			t.Fatalf("parsing %q: %v", line, err)
		}
		total += int64(v)
	}
	return total
}

// TestMetricsConcurrentBatchScrape hammers /batch from several clients
// while a scraper validates /metrics continuously; afterwards the
// latency histogram must have counted exactly the completed requests.
// Run under -race this also exercises the registry's concurrency.
func TestMetricsConcurrentBatchScrape(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{Quick: true, Workers: 2})

	// Seed the run cache so the storm below is fast.
	if resp := postJSON(t, ts.URL+"/run", cgRun("xmem"), nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("seed status %d", resp.StatusCode)
	}

	batch := serve.BatchRequest{
		Platform: cgRun("xmem").Platform,
		Jobs:     []serve.JobReq{cgRun("xmem").JobReq, cgRun("slowest-only").JobReq},
	}
	body, err := json.Marshal(batch)
	if err != nil {
		t.Fatal(err)
	}

	const clients, batches = 6, 3
	var wg sync.WaitGroup
	errs := make(chan error, clients+1)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				resp, err := http.Post(ts.URL+"/batch", "application/json", bytes.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				out, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("batch status %d: %s", resp.StatusCode, out)
					return
				}
			}
		}()
	}

	// Scrape-and-validate continuously until the clients finish.
	stop := make(chan struct{})
	go func() { wg.Wait(); close(stop) }()
	scrapes := 0
scrapeLoop:
	for {
		if _, err := scrapeErr(ts.URL); err != nil {
			errs <- err
			break
		}
		scrapes++
		select {
		case <-stop:
			break scrapeLoop
		default:
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if scrapes == 0 {
		t.Fatal("scraper never ran")
	}

	exposition := scrape(t, ts.URL)
	want := int64(1 + clients*batches) // seed /run + every /batch
	if got := histRequestCount(t, exposition); got != want {
		t.Fatalf("histogram counted %d requests, want %d\n%s", got, want, exposition)
	}
}

// TestRequestIDOnError asserts a failing request carries the same
// request ID in the X-Request-Id header and the error body.
func TestRequestIDOnError(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{Quick: true})
	resp, err := http.Post(ts.URL+"/run", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	id := resp.Header.Get("X-Request-Id")
	if id == "" {
		t.Fatal("missing X-Request-Id header")
	}
	var body struct {
		Error     string `json:"error"`
		RequestID string `json:"request_id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.RequestID != id {
		t.Fatalf("body request_id %q != header %q", body.RequestID, id)
	}
	if body.Error == "" {
		t.Fatal("empty error message")
	}
}

// TestStatsUptimeVersionHealthz asserts /stats reports uptime and build
// identity, and /healthz echoes the same version.
func TestStatsUptimeVersionHealthz(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{Quick: true})
	st := getStats(t, ts.URL)
	if st.Uptime < 0 {
		t.Fatalf("negative uptime %v", st.Uptime)
	}
	if st.Build == nil || st.Build.Version == "" || st.Build.Go == "" {
		t.Fatalf("missing build identity: %+v", st.Build)
	}

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hz struct {
		OK      bool   `json:"ok"`
		Version string `json:"version"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	if !hz.OK || hz.Version != st.Build.Version {
		t.Fatalf("healthz %+v, want ok with version %q", hz, st.Build.Version)
	}
}

// TestRunTraceResponse asserts /run?trace=1 returns a loadable Chrome
// trace document with virtual-clock spans from inside the runtime.
func TestRunTraceResponse(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{Quick: true})
	var out serve.RunResponse
	req := cgRun("unimem")
	if resp := postJSON(t, ts.URL+"/run?trace=1", req, &out); resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if len(out.Trace) == 0 {
		t.Fatal("no trace in response")
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Pid  int    `json:"pid"`
			Cat  string `json:"cat"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(out.Trace, &doc); err != nil {
		t.Fatalf("trace does not parse: %v", err)
	}
	var virtualSpans, phases int
	for _, e := range doc.TraceEvents {
		if e.Ph == "X" && e.Pid == 1 {
			virtualSpans++
		}
		if e.Cat == "phase" {
			phases++
		}
	}
	if virtualSpans == 0 || phases == 0 {
		t.Fatalf("trace has %d virtual spans, %d phase spans (want both > 0); %d events",
			virtualSpans, phases, len(doc.TraceEvents))
	}

	// The same request without ?trace=1 must not carry a trace.
	var plain serve.RunResponse
	if resp := postJSON(t, ts.URL+"/run", req, &plain); resp.StatusCode != http.StatusOK {
		t.Fatalf("plain status %d", resp.StatusCode)
	}
	if len(plain.Trace) != 0 {
		t.Fatal("trace present without ?trace=1")
	}
}

// TestMetricsDisabled asserts DisableMetrics removes /metrics while
// leaving the request path (and request IDs) intact.
func TestMetricsDisabled(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{Quick: true, DisableMetrics: true})
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/metrics status %d with metrics disabled, want 404", resp.StatusCode)
	}
	var out serve.RunResponse
	r := postJSON(t, ts.URL+"/run", cgRun("xmem"), &out)
	if r.StatusCode != http.StatusOK {
		t.Fatalf("/run status %d", r.StatusCode)
	}
	if r.Header.Get("X-Request-Id") == "" {
		t.Fatal("missing X-Request-Id with metrics disabled")
	}
}

// TestServeBenchQuick runs the quick observability-overhead benchmark
// end to end: it must complete, validate its own /metrics scrape, and
// produce a document whose two series saw every request.
func TestServeBenchQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("bench harness runs real request storms")
	}
	doc, err := serve.RunServeBench(true, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Mode != "serve" || !doc.Quick {
		t.Fatalf("unexpected doc header: %+v", doc)
	}
	if got := len(doc.MetricsOff.TrialNS); got != doc.Trials {
		t.Fatalf("metrics_off has %d trials, want %d", got, doc.Trials)
	}
	if doc.MetricsOn.P50RequestUS <= 0 || doc.MetricsOff.P50RequestUS <= 0 {
		t.Fatalf("empty latency series: %+v", doc)
	}
}
