package exp

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"unimem/internal/app"
	"unimem/internal/core"
	"unimem/internal/counters"
	"unimem/internal/machine"
	"unimem/internal/model"
	"unimem/internal/workloads"
)

// Suite carries the shared experiment configuration. Execution is
// delegated to the shared Engine — the same one behind the library's
// Session API — so every figure/table runner flows through one cached,
// parallel, cancellable run path.
type Suite struct {
	// Class is the NPB class for the basic experiments (paper: C).
	Class string
	// Ranks is the world size (paper: 4 nodes x 1 task).
	Ranks int
	Seed  uint64
	// Quick caps iteration counts for use under testing.B.
	Quick bool
	// Workers is the worker-pool width used to fan independent
	// (experiment x benchmark x machine) cells across goroutines; <= 1
	// runs every cell serially. Table row/column order and cell values
	// are identical at every width (see forEachRow and RunCache).
	Workers int
	// Fleet is the scenarios-per-archetype sample size of the
	// scenariofleet experiment (<= 0: default 4).
	Fleet int
	// Cache memoizes baseline runs (DRAM-only, NVM-only, pinned-static,
	// X-Mem) shared across experiments. Nil disables memoization.
	Cache *RunCache
	// Ctx bounds every run the suite performs (nil: background). A
	// cancelled or expired context aborts in-flight simulated worlds and
	// makes the current runner return the context's error.
	Ctx context.Context

	mu  sync.Mutex
	eng *Engine
}

// NewSuite returns a Suite with the paper's defaults.
func NewSuite() *Suite {
	return &Suite{
		Class: "C", Ranks: 4, Seed: 0xD07,
		Cache: NewRunCache(),
	}
}

// workers returns the effective worker-pool width.
func (s *Suite) workers() int {
	if s.Workers > 1 {
		return s.Workers
	}
	return 1
}

// ctx returns the suite's bounding context.
func (s *Suite) ctx() context.Context {
	if s.Ctx != nil {
		return s.Ctx
	}
	return context.Background()
}

// engine returns the suite's Engine, synced with the suite's public
// fields (tests and the CLI mutate Quick/Cache after NewSuite).
func (s *Suite) engine() *Engine {
	s.mu.Lock()
	if s.eng == nil {
		s.eng = NewEngine(s.Quick, s.Cache)
	}
	s.mu.Unlock()
	s.eng.SetQuick(s.Quick)
	s.eng.SetCache(s.Cache)
	return s.eng
}

// CacheStats snapshots the run cache's hit/miss counters.
func (s *Suite) CacheStats() CacheStats { return s.Cache.Stats() }

// Runner is one experiment entry point.
type Runner func(*Suite) (*Table, error)

// Registry maps experiment IDs to runners, in presentation order.
func Registry() ([]string, map[string]Runner) {
	order := []string{
		"table1", "calib", "table3", "fig2", "fig3", "fig4",
		"fig9", "fig10", "fig11", "table4", "fig12", "fig13",
		"ablation", "techsweep", "tierscape", "scenariofleet",
	}
	m := map[string]Runner{
		"table1":        (*Suite).Table1,
		"calib":         (*Suite).Calib,
		"table3":        (*Suite).Table3,
		"fig2":          (*Suite).Fig2,
		"fig3":          (*Suite).Fig3,
		"fig4":          (*Suite).Fig4,
		"fig9":          (*Suite).Fig9,
		"fig10":         (*Suite).Fig10,
		"fig11":         (*Suite).Fig11,
		"table4":        (*Suite).Table4,
		"fig12":         (*Suite).Fig12,
		"fig13":         (*Suite).Fig13,
		"ablation":      (*Suite).Ablation,
		"techsweep":     (*Suite).TechSweep,
		"tierscape":     (*Suite).Tierscape,
		"scenariofleet": (*Suite).ScenarioFleet,
	}
	return order, m
}

// calibration memoizes the per-machine one-time calibration (the paper
// computes CF_bw/CF_lat/BW_peak once per platform).
func (s *Suite) calibration(m *machine.Machine) model.Calibration {
	return s.engine().Calibration(m, counters.Default(), s.Seed^0xCA1)
}

// prep applies Quick-mode iteration capping.
func (s *Suite) prep(w *workloads.Workload) *workloads.Workload {
	return prepQuick(w, s.Quick)
}

// unimemConfig builds the Unimem config for a machine with the shared
// calibration installed.
func (s *Suite) unimemConfig(m *machine.Machine) core.Config {
	cfg := core.DefaultConfig()
	cfg.Calibration = s.calibration(m)
	cfg.Seed = s.Seed
	return cfg
}

// runStatic executes the workload under a fixed placement, memoized in the
// run cache: the DRAM-only / NVM-only / pinned baselines shared by many
// experiments execute once per distinct (workload, machine, placement).
func (s *Suite) runStatic(w *workloads.Workload, m *machine.Machine, name string, inDRAM func(string) bool) (*app.Result, error) {
	res, _, err := s.engine().Execute(s.ctx(), w, m, StrategySuiteStatic(name, inDRAM), core.Config{}, s.opts())
	return res, err
}

// runUnimem executes the workload under the full Unimem runtime and
// returns the result plus the per-rank runtimes for introspection.
func (s *Suite) runUnimem(w *workloads.Workload, m *machine.Machine, cfg core.Config) (*app.Result, *Collector, error) {
	res, rts, err := s.engine().Execute(s.ctx(), w, m, StrategyUnimem(), cfg, s.opts())
	return res, &Collector{Runtimes: rts}, err
}

// runXMem executes the offline-profiling baseline: profile pass, static
// placement, measured run. The whole composite (profile + placement +
// measured run) is memoized as one cache entry.
func (s *Suite) runXMem(w *workloads.Workload, m *machine.Machine) (*app.Result, error) {
	res, _, err := s.engine().Execute(s.ctx(), w, m, StrategyXMem(), core.Config{}, s.opts())
	return res, err
}

func (s *Suite) opts() app.Options {
	return app.Options{Ranks: s.Ranks, Seed: s.Seed}
}

// runWith executes a workload under a static all-NVM placement with
// explicit options (used by the strong-scaling experiment, which overrides
// the rank count per data point). Memoized like runStatic; the explicit
// opts.Ranks is part of the key.
func (s *Suite) runWith(w *workloads.Workload, m *machine.Machine, opts app.Options, name string) (*app.Result, error) {
	res, _, err := s.engine().Execute(s.ctx(), w, m, StrategySuiteStatic(name, nil), core.Config{}, opts)
	return res, err
}

// runUnimemWith is runUnimem with explicit harness options (the
// strong-scaling experiment overrides the rank count per data point).
func (s *Suite) runUnimemWith(w *workloads.Workload, m *machine.Machine, cfg core.Config, opts app.Options) (*app.Result, error) {
	res, _, err := s.engine().Execute(s.ctx(), w, m, StrategyUnimem(), cfg, opts)
	return res, err
}

// Collector gathers the per-rank Unimem runtimes created by a factory so
// experiments can read mover statistics and decision counts after a run.
type Collector struct {
	mu       sync.Mutex
	Runtimes []*core.Runtime
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{} }

// Factory wraps core.Factory, recording every runtime it creates.
func (c *Collector) Factory(cfg core.Config) app.ManagerFactory {
	return func(rank int) app.Manager {
		r := core.NewRuntime(rank, cfg)
		c.mu.Lock()
		c.Runtimes = append(c.Runtimes, r)
		c.mu.Unlock()
		return r
	}
}

// byRank returns the collected runtimes sorted by rank. Factories run on
// concurrently scheduled rank goroutines, so the append order of Runtimes
// is nondeterministic; accessors must iterate in rank order to keep
// reported values bit-identical across runs.
func (c *Collector) byRank() []*core.Runtime {
	out := append([]*core.Runtime(nil), c.Runtimes...)
	sort.Slice(out, func(i, j int) bool { return out[i].Rank() < out[j].Rank() })
	return out
}

// OverlapFrac returns the mean helper-thread overlap fraction across ranks.
func (c *Collector) OverlapFrac() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.Runtimes) == 0 {
		return 0
	}
	var sum float64
	for _, r := range c.byRank() {
		sum += r.MoverStats().OverlapFrac()
	}
	return sum / float64(len(c.Runtimes))
}

// Rank0TierResidency returns rank 0's final per-tier resident bytes, or
// nil when rank 0's runtime was not collected.
func (c *Collector) Rank0TierResidency() []int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, r := range c.byRank() {
		if r.Rank() == 0 {
			return r.TierResidencyBytes()
		}
	}
	return nil
}

// Decisions returns rank 0's placement decision count.
func (c *Collector) Decisions() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, r := range c.byRank() {
		if r.Rank() == 0 {
			return r.Decisions
		}
	}
	return 0
}

// norm returns t/base formatted as the paper's normalized execution time.
func norm(t, base int64) float64 {
	if base == 0 {
		return 0
	}
	return float64(t) / float64(base)
}

// geomMeanLabel is the label used for the average column/row.
const avgLabel = "avg"

// mean returns the arithmetic mean.
func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// dramMachineFor returns the undegraded twin of m (NVM tier == DRAM tier):
// the DRAM-only system all results normalize against.
func dramMachineFor(m *machine.Machine) *machine.Machine {
	return m.WithNVMLatencyFactor(1).WithNVMBandwidthFraction(1)
}

// evalSuite lists the benchmarks of the basic performance tests.
func (s *Suite) evalSuite() []*workloads.Workload {
	return workloads.EvalSuite(s.Class, s.Ranks)
}

// fmtMB renders bytes as whole mebibytes.
func fmtMB(b int64) string { return fmt.Sprintf("%d", b>>20) }

// fmtPct renders a fraction as a percentage.
func fmtPct(f float64) string { return fmt.Sprintf("%.1f%%", f*100) }
