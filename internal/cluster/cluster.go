package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"unimem/internal/obs"
)

// Config parameterizes a Cluster. The zero value of every field has a
// usable default; a Config with no Peers (or only Self) yields a cluster
// where every key is local.
type Config struct {
	// Self is this node's advertised base URL. It must appear in Peers for
	// the node to own any keys; peers normalize it the same way.
	Self string
	// Peers is the full static membership, including Self.
	Peers []string
	// Replicas is the virtual-node count per peer (<= 0: 128).
	Replicas int
	// ForwardTimeout bounds each forward attempt (<= 0: 2s).
	ForwardTimeout time.Duration
	// Retries is the number of additional attempts after the first failed
	// forward (< 0: treated as 0; default when zero-valued Config: see New).
	Retries int
	// Backoff is the sleep before the first retry, doubling per attempt
	// (<= 0: 100ms).
	Backoff time.Duration
	// BreakerThreshold is the consecutive-failure count that opens a
	// peer's circuit breaker (<= 0: 3).
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker skips a peer before the
	// next probe attempt (<= 0: 5s).
	BreakerCooldown time.Duration
	// Client issues the forwarded requests (nil: a fresh http.Client; the
	// per-attempt timeout rides on the request context, not the client).
	Client *http.Client
}

// Cluster is one node's view of the fleet: the consistent-hash ring plus a
// forwarding client with per-peer timeout, retry, backoff and a
// consecutive-failure circuit breaker. All methods are safe for concurrent
// use; a nil *Cluster behaves as a single-node cluster (everything local).
type Cluster struct {
	// Requests counts forward outcomes per peer: labels (peer, outcome)
	// with outcome ok|error|fallback|skipped. ForwardSeconds times forward
	// attempts per peer. Both are optional — the serving layer installs
	// them after construction; nil instruments no-op.
	Requests       *obs.CounterVec
	ForwardSeconds *obs.HistogramVec

	self     string
	timeout  time.Duration
	retries  int
	backoff  time.Duration
	breakN   int
	cooldown time.Duration
	client   *http.Client

	mu    sync.Mutex
	ring  *Ring
	peers map[string]*peerState
}

// peerState is one remote peer's health record.
type peerState struct {
	mu          sync.Mutex
	consecFails int
	brokenUntil time.Time
	forwards    int64
	errs        int64
	fallbacks   int64
	lastErr     string
	lastErrAt   time.Time
}

// New builds a Cluster from cfg, applying defaults for zero-valued knobs.
func New(cfg Config) *Cluster {
	c := &Cluster{
		self:     NormalizePeer(cfg.Self),
		timeout:  cfg.ForwardTimeout,
		retries:  cfg.Retries,
		backoff:  cfg.Backoff,
		breakN:   cfg.BreakerThreshold,
		cooldown: cfg.BreakerCooldown,
		client:   cfg.Client,
		peers:    map[string]*peerState{},
	}
	if c.timeout <= 0 {
		c.timeout = 2 * time.Second
	}
	if c.retries < 0 {
		c.retries = 0
	}
	if c.backoff <= 0 {
		c.backoff = 100 * time.Millisecond
	}
	if c.breakN <= 0 {
		c.breakN = 3
	}
	if c.cooldown <= 0 {
		c.cooldown = 5 * time.Second
	}
	if c.client == nil {
		c.client = &http.Client{}
	}
	c.SetPeers(cfg.Peers, cfg.Replicas)
	return c
}

// Self returns this node's normalized advertised URL.
func (c *Cluster) Self() string {
	if c == nil {
		return ""
	}
	return c.self
}

// SetPeers replaces the membership and rebuilds the ring — the config
// reload path. Health records of surviving peers are kept; removed peers
// drop theirs.
func (c *Cluster) SetPeers(peers []string, replicas int) {
	if c == nil {
		return
	}
	ring := NewRing(peers, replicas)
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ring = ring
	kept := map[string]*peerState{}
	for _, p := range ring.Peers() {
		if p == c.self {
			continue
		}
		if st, ok := c.peers[p]; ok {
			kept[p] = st
		} else {
			kept[p] = &peerState{}
		}
	}
	c.peers = kept
}

// Peers returns the current ring membership (normalized, sorted).
func (c *Cluster) Peers() []string {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ring.Peers()
}

// Owner maps a route key to its owning peer. local is true when this node
// should execute the request itself: it owns the key, the ring is empty,
// or the cluster is nil/single-node.
func (c *Cluster) Owner(key string) (peer string, local bool) {
	if c == nil {
		return "", true
	}
	c.mu.Lock()
	ring := c.ring
	c.mu.Unlock()
	p := ring.Owner(key)
	if p == "" || p == c.self {
		return p, true
	}
	return p, false
}

// state returns the health record for a remote peer (nil for self or an
// unknown peer).
func (c *Cluster) state(peer string) *peerState {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.peers[peer]
}

// Available reports whether a peer's circuit breaker currently permits
// forwarding. Self is always available; an unknown peer is not.
func (c *Cluster) Available(peer string) bool {
	if c == nil || peer == c.self {
		return true
	}
	st := c.state(peer)
	if st == nil {
		return false
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return !time.Now().Before(st.brokenUntil)
}

// record counts one forward outcome on the optional instrument.
func (c *Cluster) record(peer, outcome string) {
	c.Requests.With(peer, outcome).Inc()
}

// RecordFallback notes that a request owned by peer was executed locally
// instead (the degraded-mode path). skipped marks a fallback taken without
// attempting a forward — the breaker was already open.
func (c *Cluster) RecordFallback(peer string, skipped bool) {
	if c == nil {
		return
	}
	outcome := "fallback"
	if skipped {
		outcome = "skipped"
	}
	c.record(peer, outcome)
	if st := c.state(peer); st != nil {
		st.mu.Lock()
		st.fallbacks++
		st.mu.Unlock()
	}
}

// markSuccess closes the peer's breaker and counts a completed forward.
func (c *Cluster) markSuccess(peer string) {
	st := c.state(peer)
	if st == nil {
		return
	}
	st.mu.Lock()
	st.consecFails = 0
	st.brokenUntil = time.Time{}
	st.forwards++
	st.mu.Unlock()
}

// markFailure records one failed attempt and opens the breaker once the
// consecutive-failure threshold is reached. Every further failure extends
// the cooldown, so a dead peer is probed at most once per cooldown.
func (c *Cluster) markFailure(peer string, err error) {
	st := c.state(peer)
	if st == nil {
		return
	}
	st.mu.Lock()
	st.consecFails++
	st.errs++
	st.lastErr = err.Error()
	st.lastErrAt = time.Now()
	if st.consecFails >= c.breakN {
		st.brokenUntil = time.Now().Add(c.cooldown)
	}
	st.mu.Unlock()
}

// cancelBody ties a per-attempt timeout context to the response body: the
// context stays live until the caller finishes reading, then Close releases
// it.
type cancelBody struct {
	io.ReadCloser
	cancel context.CancelFunc
}

func (b *cancelBody) Close() error {
	err := b.ReadCloser.Close()
	b.cancel()
	return err
}

// attempt issues one forwarded request with the per-attempt timeout.
func (c *Cluster) attempt(ctx context.Context, peer, method, pathAndQuery string, header http.Header, body []byte) (*http.Response, error) {
	actx, cancel := context.WithTimeout(ctx, c.timeout)
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(actx, method, peer+pathAndQuery, rd)
	if err != nil {
		cancel()
		return nil, err
	}
	for k, vs := range header {
		req.Header[k] = append([]string(nil), vs...)
	}
	resp, err := c.client.Do(req)
	if err != nil {
		cancel()
		return nil, err
	}
	resp.Body = &cancelBody{ReadCloser: resp.Body, cancel: cancel}
	return resp, nil
}

// Forward ships a request to a peer, retrying transport errors and 5xx
// responses with doubling backoff. Any response below 500 — including 4xx
// — is returned for verbatim proxying; the caller owns resp.Body. On
// give-up the last error is returned and the caller should fall back to
// local execution. Health accounting and the (peer, outcome) counters are
// updated here.
func (c *Cluster) Forward(ctx context.Context, peer, method, pathAndQuery string, header http.Header, body []byte) (*http.Response, error) {
	if c == nil {
		return nil, errors.New("cluster: Forward on nil Cluster")
	}
	var lastErr error
	for i := 0; i <= c.retries; i++ {
		if i > 0 {
			select {
			case <-time.After(c.backoff << (i - 1)):
			case <-ctx.Done():
				return nil, fmt.Errorf("cluster: forward to %s: %w (last error: %v)", peer, ctx.Err(), lastErr)
			}
		}
		start := time.Now()
		resp, err := c.attempt(ctx, peer, method, pathAndQuery, header, body)
		c.ForwardSeconds.With(peer).Observe(time.Since(start).Seconds())
		if err == nil && resp.StatusCode < http.StatusInternalServerError {
			c.markSuccess(peer)
			c.record(peer, "ok")
			return resp, nil
		}
		if err == nil {
			err = fmt.Errorf("peer returned %s", resp.Status)
			io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
		}
		lastErr = err
		c.markFailure(peer, err)
		c.record(peer, "error")
		if ctx.Err() != nil {
			break
		}
	}
	return nil, fmt.Errorf("cluster: forward to %s failed after %d attempts: %w", peer, c.retries+1, lastErr)
}

// FetchSnapshot downloads a peer's run-cache snapshot (GET /snapshot) for
// warm-start merging. The caller's context bounds the whole transfer —
// snapshots can be far larger than one forwarded request, so the
// per-attempt forward timeout does not apply. Health accounting is updated
// like a forward, but the (peer, outcome) request counters are not — a
// warm-start is not a proxied request.
func (c *Cluster) FetchSnapshot(ctx context.Context, peer string) ([]byte, error) {
	if c == nil {
		return nil, errors.New("cluster: FetchSnapshot on nil Cluster")
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+"/snapshot", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		c.markFailure(peer, err)
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		err := fmt.Errorf("cluster: snapshot from %s: %s", peer, resp.Status)
		c.markFailure(peer, err)
		return nil, err
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		c.markFailure(peer, err)
		return nil, err
	}
	c.markSuccess(peer)
	return data, nil
}

// PeerStatus is one remote peer's health, as reported under /stats.
type PeerStatus struct {
	URL     string `json:"url"`
	Healthy bool   `json:"healthy"`
	// ConsecutiveFailures is the current unbroken failure streak; it
	// resets to zero on any success.
	ConsecutiveFailures int `json:"consecutive_failures,omitempty"`
	// Forwards counts requests successfully answered by this peer.
	Forwards int64 `json:"forwards"`
	// Errors counts failed forward attempts (each retry counts).
	Errors int64 `json:"errors,omitempty"`
	// Fallbacks counts requests owned by this peer that were executed
	// locally because it was unreachable or circuit-broken.
	Fallbacks int64  `json:"fallbacks,omitempty"`
	LastError string `json:"last_error,omitempty"`
	// LastErrorUnixNS is the wall-clock stamp of LastError.
	LastErrorUnixNS int64 `json:"last_error_unix_ns,omitempty"`
}

// Status is the cluster block of the /stats document.
type Status struct {
	Self  string       `json:"self"`
	Peers []PeerStatus `json:"peers,omitempty"`
}

// Status snapshots the membership and per-peer health. Peers are reported
// in ring (sorted) order, self excluded.
func (c *Cluster) Status() Status {
	if c == nil {
		return Status{}
	}
	out := Status{Self: c.self}
	for _, p := range c.Peers() {
		if p == c.self {
			continue
		}
		st := c.state(p)
		if st == nil {
			continue
		}
		st.mu.Lock()
		ps := PeerStatus{
			URL:                 p,
			Healthy:             !time.Now().Before(st.brokenUntil),
			ConsecutiveFailures: st.consecFails,
			Forwards:            st.forwards,
			Errors:              st.errs,
			Fallbacks:           st.fallbacks,
			LastError:           st.lastErr,
		}
		if !st.lastErrAt.IsZero() {
			ps.LastErrorUnixNS = st.lastErrAt.UnixNano()
		}
		st.mu.Unlock()
		out.Peers = append(out.Peers, ps)
	}
	return out
}
