// Command unimem-serve is the library's HTTP/JSON daemon: a pool of
// Sessions (one per platform fingerprint) over a sharded, bounded,
// disk-persistent run cache, answering /run, /batch, /fleet and /stats.
//
//	unimem-serve -addr :8080 -cache-dir /var/lib/unimem -max-entries 4096
//
// On SIGINT/SIGTERM the daemon drains in-flight requests and saves the
// cache snapshot (when -cache-dir is set), so the next start warm-serves
// previously-computed runs as cache hits. See the README's "Service"
// section for the endpoint and persistence reference.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"unimem/internal/serve"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		cacheDir   = flag.String("cache-dir", "", "cache snapshot directory (empty: no persistence)")
		maxEntries = flag.Int("max-entries", 4096, "run-cache entry budget (0: unbounded)")
		maxBytes   = flag.Int64("max-bytes", 0, "run-cache byte budget (0: unbounded)")
		workers    = flag.Int("workers", 0, "per-session worker-pool width (0: GOMAXPROCS)")
		window     = flag.Int("window", 0, "batch stream window (0: 2x workers)")
		quick      = flag.Bool("quick", false, "cap workload iteration counts (fast, less faithful)")
		seed       = flag.Uint64("seed", 0, "harness seed for jobs that carry none (0: library default)")
		drain      = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain timeout")
	)
	flag.Parse()

	srv, err := serve.New(serve.Config{
		CacheDir:   *cacheDir,
		MaxEntries: *maxEntries,
		MaxBytes:   *maxBytes,
		Workers:    *workers,
		Window:     *window,
		Quick:      *quick,
		Seed:       *seed,
		Logf:       log.Printf,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "unimem-serve: %v\n", err)
		os.Exit(2)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("unimem-serve: listening on %s (cache: %d entries warm)", *addr, srv.LoadedEntries())

	select {
	case <-ctx.Done():
		log.Printf("unimem-serve: shutting down")
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "unimem-serve: %v\n", err)
		os.Exit(1)
	}

	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("unimem-serve: drain: %v", err)
	}
	saved, err := srv.SaveCache()
	if err != nil {
		fmt.Fprintf(os.Stderr, "unimem-serve: saving cache snapshot: %v\n", err)
		os.Exit(1)
	}
	if *cacheDir != "" {
		log.Printf("unimem-serve: saved %d cache entries to %s", saved, srv.SnapshotPath())
	}
}
