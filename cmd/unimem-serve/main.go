// Command unimem-serve is the library's HTTP/JSON daemon: a pool of
// Sessions (one per platform fingerprint) over a sharded, bounded,
// disk-persistent run cache, answering /run, /batch, /fleet, /stats,
// /metrics (Prometheus text exposition) and /debug/runs (the recent-run
// audit ring). POST /run?explain=1 attaches the run's decision-
// attribution document to the response.
//
//	unimem-serve -addr :8080 -cache-dir /var/lib/unimem -max-entries 4096
//	unimem-serve -addr :8080 -log-level debug -debug-addr 127.0.0.1:6060
//
// -log-level selects the slog threshold (debug/info/warn/error) for the
// structured request log on stderr; -debug-addr serves net/http/pprof on
// a second, private listener (keep it off public interfaces).
//
// On SIGINT/SIGTERM the daemon drains in-flight requests and saves the
// cache snapshot (when -cache-dir is set), so the next start warm-serves
// previously-computed runs as cache hits. See the README's "Service" and
// "Observability" sections for the endpoint and persistence reference.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"unimem/internal/serve"
)

// parseLevel maps the -log-level flag to a slog.Level.
func parseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug, nil
	case "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("unknown log level %q (want debug, info, warn or error)", s)
}

// debugMux is the pprof handler set, registered explicitly so the debug
// listener serves exactly the profiling routes and nothing else.
func debugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		cacheDir   = flag.String("cache-dir", "", "cache snapshot directory (empty: no persistence)")
		maxEntries = flag.Int("max-entries", 4096, "run-cache entry budget (0: unbounded)")
		maxBytes   = flag.Int64("max-bytes", 0, "run-cache byte budget (0: unbounded)")
		workers    = flag.Int("workers", 0, "per-session worker-pool width (0: GOMAXPROCS)")
		window     = flag.Int("window", 0, "batch stream window (0: 2x workers)")
		quick      = flag.Bool("quick", false, "cap workload iteration counts (fast, less faithful)")
		seed       = flag.Uint64("seed", 0, "harness seed for jobs that carry none (0: library default)")
		drain      = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain timeout")
		logLevel   = flag.String("log-level", "info", "structured request-log threshold: debug, info, warn or error")
		debugAddr  = flag.String("debug-addr", "", "serve net/http/pprof on this private address (empty: disabled)")
		noMetrics  = flag.Bool("no-metrics", false, "disable the /metrics registry, latency histograms and the /debug/runs ring")
		slowReq    = flag.Duration("slow-request", 0, "warn-log requests slower than this (0: 30s default)")
		debugRuns  = flag.Int("debug-runs", 0, "size of the /debug/runs recent-run ring (0: 64)")
	)
	flag.Parse()

	level, err := parseLevel(*logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "unimem-serve: %v\n", err)
		os.Exit(2)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	srv, err := serve.New(serve.Config{
		CacheDir:        *cacheDir,
		MaxEntries:      *maxEntries,
		MaxBytes:        *maxBytes,
		Workers:         *workers,
		Window:          *window,
		Quick:           *quick,
		Seed:            *seed,
		Logf:            log.Printf,
		Logger:          logger,
		DisableMetrics:  *noMetrics,
		SlowRequest:     *slowReq,
		DebugRunHistory: *debugRuns,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "unimem-serve: %v\n", err)
		os.Exit(2)
	}

	if *debugAddr != "" {
		go func() {
			log.Printf("unimem-serve: pprof on http://%s/debug/pprof/", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, debugMux()); err != nil {
				log.Printf("unimem-serve: debug listener: %v", err)
			}
		}()
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("unimem-serve: listening on %s (cache: %d entries warm)", *addr, srv.LoadedEntries())

	select {
	case <-ctx.Done():
		log.Printf("unimem-serve: shutting down")
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "unimem-serve: %v\n", err)
		os.Exit(1)
	}

	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("unimem-serve: drain: %v", err)
	}
	saved, err := srv.SaveCache()
	if err != nil {
		fmt.Fprintf(os.Stderr, "unimem-serve: saving cache snapshot: %v\n", err)
		os.Exit(1)
	}
	if *cacheDir != "" {
		log.Printf("unimem-serve: saved %d cache entries to %s", saved, srv.SnapshotPath())
	}
}
