// Package placement implements Unimem's data placement decision (§3.1.3):
// per-object weights w = BFT - COST - extraCOST (Eq. 5), the 0-1 knapsack
// over DRAM capacity solved with dynamic programming, the two search
// strategies — phase-local and cross-phase global — the construction of
// the proactive migration schedule the helper thread executes, and the
// multiple-choice knapsack (SolveTiered) that generalizes placement to
// N-tier hierarchies: each chunk assigned exactly one tier under per-tier
// capacities.
//
// Inputs arrive as per-phase benefit maps (the Eq. 2/3 estimates of how
// much faster a phase runs with a chunk DRAM-resident) and movement costs
// (Eq. 4: copy time minus the overlap the helper thread can hide); the
// package is pure — callers supply both through Input callbacks, and all
// map iteration is order-normalized so decisions are deterministic.
package placement

// Item is one knapsack candidate: a chunk with its size and Eq. 5 weight.
type Item struct {
	Chunk    string
	Size     int64
	WeightNS float64
}

// knapGranularity is the size quantum of the DP table. 1 MiB keeps the
// table small (DRAM capacities are hundreds of MiB) while being much finer
// than any target object.
const knapGranularity = 1 << 20

// Knapsack solves the 0-1 knapsack: choose a subset of items maximizing
// total weight with total size <= capacity. Items with non-positive weight
// are never chosen (placing them has no predicted value). It returns the
// indices of chosen items (ascending) and the total weight.
func Knapsack(items []Item, capacity int64) ([]int, float64) {
	if capacity <= 0 || len(items) == 0 {
		return nil, 0
	}
	cap := int(capacity / knapGranularity)
	if cap == 0 {
		return nil, 0
	}
	type cand struct {
		idx  int
		size int // in granules, rounded up
		w    float64
	}
	var cands []cand
	for i, it := range items {
		if it.WeightNS <= 0 || it.Size <= 0 {
			continue
		}
		sz := int((it.Size + knapGranularity - 1) / knapGranularity)
		if sz > cap {
			continue
		}
		cands = append(cands, cand{idx: i, size: sz, w: it.WeightNS})
	}
	if len(cands) == 0 {
		return nil, 0
	}
	// dp[c] is the best weight using capacity c; take[k][c] records whether
	// candidate k is chosen at capacity c on the optimal path.
	dp := make([]float64, cap+1)
	take := make([][]bool, len(cands))
	for k, cd := range cands {
		take[k] = make([]bool, cap+1)
		for c := cap; c >= cd.size; c-- {
			if v := dp[c-cd.size] + cd.w; v > dp[c] {
				dp[c] = v
				take[k][c] = true
			}
		}
	}
	// Reconstruct.
	var chosen []int
	c := cap
	for k := len(cands) - 1; k >= 0; k-- {
		if take[k][c] {
			chosen = append(chosen, cands[k].idx)
			c -= cands[k].size
		}
	}
	// Reverse into ascending index order.
	for i, j := 0, len(chosen)-1; i < j; i, j = i+1, j-1 {
		chosen[i], chosen[j] = chosen[j], chosen[i]
	}
	return chosen, dp[cap]
}
