package model

import (
	"math"
	"testing"

	"unimem/internal/counters"
	"unimem/internal/machine"
)

func calibrated(m *machine.Machine) Config {
	c := DefaultThresholds()
	c.Apply(Calibrate(m, counters.Default(), 7))
	return c
}

// sample fabricates a counter view of an object with the given ground
// truth, as the harness+sampler would produce it (no jitter, exact capture
// ratio, for deterministic assertions).
func sample(m *machine.Machine, acc int64, pat machine.Pattern, tier machine.TierKind, durNS float64) (counters.ObjSample, *counters.PhaseSample) {
	svc := m.MemTimeNS(tier, acc, pat, 1)
	total := int64(durNS / m.SamplePeriodNS())
	busy := int64(svc / durNS * float64(total))
	if busy > total {
		busy = total
	}
	s := counters.ObjSample{
		Chunk: "o", Object: "o",
		SampledAccesses: int64(0.8 * float64(acc)),
		BusySamples:     busy,
		ReadFrac:        1,
		Pattern:         pat,
	}
	return s, &counters.PhaseSample{DurNS: durNS, TotalSamples: total, Objects: []counters.ObjSample{s}}
}

func TestCalibrationFactors(t *testing.T) {
	m := machine.PlatformA().WithNVMBandwidthFraction(0.5)
	cal := Calibrate(m, counters.Default(), 7)
	// Capture ratio 0.8 means CF ~= 1/0.8 = 1.25 plus model slack.
	if cal.CFBw < 1.1 || cal.CFBw > 1.5 {
		t.Errorf("CF_bw = %v, want ~1.25", cal.CFBw)
	}
	if cal.CFLat < 1.1 || cal.CFLat > 1.6 {
		t.Errorf("CF_lat = %v, want ~1.3", cal.CFLat)
	}
	// BW_peak is the sampled view of NVM stream bandwidth: below raw tier
	// bandwidth, well above zero.
	if cal.BWPeakBps > m.Tier(machine.NVM).BandwidthBps || cal.BWPeakBps < 0.5*m.Tier(machine.NVM).BandwidthBps {
		t.Errorf("BW_peak = %v vs tier %v", cal.BWPeakBps, m.Tier(machine.NVM).BandwidthBps)
	}
}

func TestCalibrationDeterministic(t *testing.T) {
	m := machine.PlatformA().WithNVMBandwidthFraction(0.5)
	a := Calibrate(m, counters.Default(), 7)
	b := Calibrate(m, counters.Default(), 7)
	if a != b {
		t.Fatal("calibration must be deterministic per seed")
	}
}

func TestClassifyThresholds(t *testing.T) {
	c := Config{T1: 80, T2: 10, BWPeakBps: 10e9}
	if c.Classify(9e9) != BandwidthBound {
		t.Error("90% of peak should be bandwidth-bound")
	}
	if c.Classify(0.5e9) != LatencyBound {
		t.Error("5% of peak should be latency-bound")
	}
	if c.Classify(5e9) != Mixed {
		t.Error("50% of peak should be mixed")
	}
	if Mixed.String() != "mixed" || BandwidthBound.String() != "bandwidth" || LatencyBound.String() != "latency" {
		t.Error("sensitivity names wrong")
	}
}

func TestEq1StreamNearTierBandwidth(t *testing.T) {
	m := machine.PlatformA().WithNVMBandwidthFraction(0.5)
	svc := m.MemTimeNS(machine.NVM, 1<<21, machine.Stream, 1)
	s, ps := sample(m, 1<<21, machine.Stream, machine.NVM, svc*1.25)
	bw := ConsumedBWBps(s, ps)
	// Sampled bandwidth = capture x consumed; the stream consumes ~tier bw.
	want := 0.8 * m.Tier(machine.NVM).BandwidthBps
	if math.Abs(bw-want)/want > 0.15 {
		t.Fatalf("Eq.1 stream bw = %v, want ~%v", bw, want)
	}
}

func TestEq1PointerChaseTiny(t *testing.T) {
	m := machine.PlatformA().WithNVMBandwidthFraction(0.5)
	svc := m.MemTimeNS(machine.NVM, 1<<17, machine.PointerChase, 1)
	s, ps := sample(m, 1<<17, machine.PointerChase, machine.NVM, svc*1.25)
	bw := ConsumedBWBps(s, ps)
	if bw > 0.1*m.Tier(machine.NVM).BandwidthBps {
		t.Fatalf("pointer chase consumed bw %v should be far below tier bw", bw)
	}
}

func TestClassificationEndToEnd(t *testing.T) {
	// The 4x-latency machine separates the three regimes crisply (at 1/2
	// bandwidth a pointer chase sits right at the t2 boundary, which is
	// fine — Mixed prices it with max(Eq.2, Eq.3) anyway).
	m := machine.PlatformA().WithNVMLatencyFactor(4)
	cfg := calibrated(m)
	cases := []struct {
		pat  machine.Pattern
		want Sensitivity
	}{
		{machine.Stream, BandwidthBound},
		{machine.PointerChase, LatencyBound},
		{machine.Random, Mixed},
	}
	for _, tc := range cases {
		s, ps := sample(m, 1<<20, tc.pat, machine.NVM, 0)
		ps.DurNS = m.MemTimeNS(machine.NVM, 1<<20, tc.pat, 1) * 1.3 // mostly-memory phase
		ps.TotalSamples = int64(ps.DurNS / m.SamplePeriodNS())
		s.BusySamples = int64(float64(ps.TotalSamples) / 1.3)
		est := cfg.EstimateChunk(m, s, ps, machine.NVM)
		if est.Sens != tc.want {
			t.Errorf("%v classified %v, want %v (bw=%.2fGB/s peak=%.2f)",
				tc.pat, est.Sens, tc.want, est.BWBps/1e9, cfg.BWPeakBps/1e9)
		}
	}
}

func TestBenefitAccuracy(t *testing.T) {
	// The calibrated model's predicted benefit should approximate the
	// machine model's true NVM->DRAM delta within ~35% for every pattern.
	for _, knob := range []string{"bw", "lat"} {
		var m *machine.Machine
		if knob == "bw" {
			m = machine.PlatformA().WithNVMBandwidthFraction(0.5)
		} else {
			m = machine.PlatformA().WithNVMLatencyFactor(4)
		}
		cfg := calibrated(m)
		for _, pat := range []machine.Pattern{machine.Stream, machine.Random, machine.PointerChase} {
			const acc = 1 << 20
			s, ps := sample(m, acc, pat, machine.NVM, 0)
			ps.DurNS = m.MemTimeNS(machine.NVM, acc, pat, 1) * 1.5
			ps.TotalSamples = int64(ps.DurNS / m.SamplePeriodNS())
			s.BusySamples = int64(float64(ps.TotalSamples) / 1.5)
			est := cfg.EstimateChunk(m, s, ps, machine.NVM)
			nvmT := m.MemTimeNS(machine.NVM, acc, pat, 1)
			truth := nvmT - m.MemTimeNS(machine.DRAM, acc, pat, 1)
			if truth < 0.15*nvmT {
				// Insignificant true benefit (e.g. streams under the
				// latency knob, whose ~12% residual delta Eq. 2 cannot see
				// because tier bandwidths are equal — a structural
				// limitation of the paper's lightweight model): only
				// require the model not to invent one.
				if est.BenefitNS > 0.3*ps.DurNS {
					t.Errorf("%s/%v: predicted %v ns benefit where truth ~0", knob, pat, est.BenefitNS)
				}
				continue
			}
			ratio := est.BenefitNS / truth
			if ratio < 0.5 || ratio > 1.6 {
				t.Errorf("%s/%v: benefit ratio pred/true = %v", knob, pat, ratio)
			}
		}
	}
}

func TestObservedMLP(t *testing.T) {
	m := machine.PlatformA()
	for _, tc := range []struct {
		pat      machine.Pattern
		min, max float64
	}{
		// Ranges account for the sampler's 0.8 capture ratio inflating the
		// apparent per-access service time.
		{machine.PointerChase, 1, 1.8},
		{machine.Random, 4, 13},
		{machine.Stream, 30, 512},
	} {
		s, ps := sample(m, 1<<20, tc.pat, machine.NVM, 0)
		ps.DurNS = m.MemTimeNS(machine.NVM, 1<<20, tc.pat, 1)
		ps.TotalSamples = int64(ps.DurNS / m.SamplePeriodNS())
		s.BusySamples = ps.TotalSamples
		mlp := ObservedMLP(m, s, ps, machine.NVM)
		if mlp < tc.min || mlp > tc.max {
			t.Errorf("%v observed MLP %v, want [%v,%v]", tc.pat, mlp, tc.min, tc.max)
		}
	}
}

func TestMoveCost(t *testing.T) {
	m := machine.PlatformA().WithNVMBandwidthFraction(0.5)
	raw := m.CopyTimeNS(64 << 20)
	if got := MoveCostNS(m, 64<<20, 0); got != raw {
		t.Errorf("unoverlapped cost %v, want %v", got, raw)
	}
	if got := MoveCostNS(m, 64<<20, raw/2); math.Abs(got-raw/2) > 1 {
		t.Errorf("half-overlapped cost %v, want %v", got, raw/2)
	}
	if got := MoveCostNS(m, 64<<20, raw*2); got != 0 {
		t.Errorf("fully overlapped cost %v, want 0 (Eq. 4 max)", got)
	}
}

func TestBenefitNonNegative(t *testing.T) {
	// A DRAM-parity machine has zero benefit everywhere; Eq. 2/3 must not
	// go negative.
	m := machine.PlatformA()
	cfg := calibrated(machine.PlatformA().WithNVMBandwidthFraction(0.5))
	s, ps := sample(m, 1<<20, machine.Stream, machine.NVM, 1e7)
	est := cfg.EstimateChunk(m, s, ps, machine.NVM)
	if est.BenefitNS < 0 {
		t.Fatalf("negative benefit %v", est.BenefitNS)
	}
}

func TestCalibrationString(t *testing.T) {
	cal := Calibration{CFBw: 1.25, CFLat: 1.33, BWPeakBps: 5e9}
	if cal.String() == "" {
		t.Fatal("empty calibration string")
	}
}

// TestBetweenTierBenefits checks the generalized Eq. 2/3 against the
// three-tier preset: benefits vs the slowest tier must rank tiers the way
// their specs do, and the two-tier wrappers must agree with the explicit
// (slowest, fastest) pair.
func TestBetweenTierBenefits(t *testing.T) {
	m := machine.PlatformHBMDDRNVM()
	cfg := DefaultThresholds()
	slow := m.SlowestIdx()
	const acc = 1 << 20
	// Bandwidth benefit: HBM (tier 0) must beat DDR (tier 1), both vs NVM.
	bwHBM := cfg.BenefitBWBetweenNS(m, slow, 0, acc)
	bwDDR := cfg.BenefitBWBetweenNS(m, slow, 1, acc)
	if !(bwHBM > bwDDR && bwDDR > 0) {
		t.Errorf("bandwidth benefit ordering wrong: HBM %v, DDR %v", bwHBM, bwDDR)
	}
	// Latency benefit: DDR (80ns) must beat HBM (90ns) vs NVM at read mix 1.
	latHBM := cfg.BenefitLatBetweenNS(m, slow, 0, acc, 1, 1)
	latDDR := cfg.BenefitLatBetweenNS(m, slow, 1, acc, 1, 1)
	if !(latDDR > latHBM && latHBM > 0) {
		t.Errorf("latency benefit ordering wrong: HBM %v, DDR %v", latHBM, latDDR)
	}
	// Moving "up" to a slower tier prices negative.
	if v := cfg.BenefitBWBetweenNS(m, 0, slow, acc); v >= 0 {
		t.Errorf("demotion bandwidth benefit %v should be negative", v)
	}
	// Two-tier wrappers match the explicit extreme pair.
	a := machine.PlatformA().WithNVMBandwidthFraction(0.5)
	if cfg.BenefitBWNS(a, acc) != cfg.BenefitBWBetweenNS(a, a.SlowestIdx(), 0, acc) {
		t.Error("BenefitBWNS diverges from the explicit pair form")
	}
	if cfg.BenefitLatNS(a, acc, 0.5, 2) != cfg.BenefitLatBetweenNS(a, a.SlowestIdx(), 0, acc, 0.5, 2) {
		t.Error("BenefitLatNS diverges from the explicit pair form")
	}
}

// TestCalibrateMultiTier runs the calibration on a three-tier machine: the
// microbenchmarks run on the fastest and slowest tiers, so the factors must
// stay in the same plausible band as on two-tier platforms.
func TestCalibrateMultiTier(t *testing.T) {
	m := machine.PlatformHBMDDRNVM()
	cal := Calibrate(m, counters.Default(), 0xCA1)
	if cal.CFBw < 1.0 || cal.CFBw > 1.6 {
		t.Errorf("CF_bw %v out of plausible range", cal.CFBw)
	}
	if cal.BWPeakBps > m.Slowest().BandwidthBps || cal.BWPeakBps < 0.5*m.Slowest().BandwidthBps {
		t.Errorf("BW_peak %v vs slowest tier %v", cal.BWPeakBps, m.Slowest().BandwidthBps)
	}
}
