package simprog

import (
	"fmt"
	"runtime"
	"time"

	"unimem/internal/machine"
)

// This file is the `unimem-bench -bench` harness: micro and macro MPI
// benchmarks runnable on both engines, measured as worlds/sec (throughput),
// ns/world (latency), allocs/world (the retired engine's ranks² mailbox
// matrix shows up here), and worlds/sec/core (worlds divided by process
// CPU seconds — the honest cross-engine metric, since the oracle engine
// spreads one world across many cores while the event core uses one).
// The macro benches are comm skeletons of NPB CG/SP/MG at the mpisim
// layer: the message pattern, sizes and compute skew of each kernel's
// iteration loop, without the cost-model stack above it.

// BenchResult is one measured (benchmark, engine) cell.
type BenchResult struct {
	Name                string  `json:"name"`
	Engine              string  `json:"engine"`
	Ranks               int     `json:"ranks"`
	Worlds              int     `json:"worlds"`
	WallNS              int64   `json:"wall_ns"`
	CPUNS               int64   `json:"cpu_ns"`
	NSPerWorld          float64 `json:"ns_per_world"`
	WorldsPerSec        float64 `json:"worlds_per_sec"`
	WorldsPerSecPerCore float64 `json:"worlds_per_sec_per_core"`
	AllocsPerWorld      float64 `json:"allocs_per_world"`
	BytesPerWorld       float64 `json:"bytes_per_world"`
}

// BenchDoc is the BENCH_mpisim.json document: the repo's first perf
// trajectory artifact. "oracle" rows are the retired goroutine engine
// (the before), "event" rows the discrete-event core (the after).
type BenchDoc struct {
	Schema              int                `json:"schema"`
	Quick               bool               `json:"quick"`
	GOMAXPROCS          int                `json:"gomaxprocs"`
	Note                string             `json:"note"`
	Results             []BenchResult      `json:"results"`
	SpeedupPerCore      map[string]float64 `json:"speedup_event_vs_oracle_per_core"`
	SpeedupWallPerWorld map[string]float64 `json:"speedup_event_vs_oracle_wall"`
}

// benchSpec is one benchmark's shape.
type benchSpec struct {
	name   string
	ranks  int
	worlds int // full-mode world count; quick mode divides by 4 (min 1)
	body   func(Comm)
	// oracleOK gates the reference engine: its NewWorld allocates a
	// ranks²×1024-slot mailbox matrix (~48 KB per pair), so beyond a few
	// hundred ranks the allocation alone exceeds memory.
	oracleOK bool
}

// Benchmarks returns the standard suite: micro ping-pong, allreduce at
// 64/1k/10k ranks (the 10k row is the scale gate CI enforces), and the
// CG/SP/MG macro skeletons.
func Benchmarks() []benchSpec {
	return []benchSpec{
		{name: "pingpong", ranks: 2, worlds: 200, body: pingPongBody(1000), oracleOK: true},
		{name: "allreduce@64", ranks: 64, worlds: 40, body: allreduceBody(50), oracleOK: true},
		{name: "allreduce@1k", ranks: 1024, worlds: 8, body: allreduceBody(20), oracleOK: false},
		{name: "allreduce@10k", ranks: 10_000, worlds: 2, body: allreduceBody(5), oracleOK: false},
		{name: "CG", ranks: 16, worlds: 60, body: cgBody(60), oracleOK: true},
		{name: "SP", ranks: 16, worlds: 60, body: spBody(40), oracleOK: true},
		{name: "MG", ranks: 16, worlds: 60, body: mgBody(40), oracleOK: true},
	}
}

// RunBenchSuite measures every benchmark on the event engine and, where
// feasible, the oracle engine. logf (optional) receives per-cell progress.
// The allreduce@10k cell doubles as the scale gate: if a 10k-rank world
// cannot complete, the suite errors out.
func RunBenchSuite(quick bool, logf func(format string, args ...interface{})) (*BenchDoc, error) {
	if logf == nil {
		logf = func(string, ...interface{}) {}
	}
	m := machine.PlatformA()
	doc := &BenchDoc{
		Schema:     1,
		Quick:      quick,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Note: "oracle = retired goroutine-per-rank engine (before); event = discrete-event core (after); " +
			"per-core throughput divides by process CPU time",
		SpeedupPerCore:      map[string]float64{},
		SpeedupWallPerWorld: map[string]float64{},
	}
	for _, b := range Benchmarks() {
		worlds := b.worlds
		if quick {
			if worlds /= 4; worlds < 1 {
				worlds = 1
			}
		}
		ev, err := measure(b.name, Event, b.ranks, m, worlds, b.body)
		if err != nil {
			return nil, err
		}
		logf("  bench %-14s %-6s %5d ranks: %8.1f worlds/sec (%.0f/sec/core, %.0f allocs/world)",
			b.name, Event.Name(), b.ranks, ev.WorldsPerSec, ev.WorldsPerSecPerCore, ev.AllocsPerWorld)
		doc.Results = append(doc.Results, ev)
		if !b.oracleOK {
			continue
		}
		or, err := measure(b.name, Oracle, b.ranks, m, worlds, b.body)
		if err != nil {
			return nil, err
		}
		logf("  bench %-14s %-6s %5d ranks: %8.1f worlds/sec (%.0f/sec/core, %.0f allocs/world)",
			b.name, Oracle.Name(), b.ranks, or.WorldsPerSec, or.WorldsPerSecPerCore, or.AllocsPerWorld)
		doc.Results = append(doc.Results, or)
		if or.WorldsPerSecPerCore > 0 {
			doc.SpeedupPerCore[b.name] = round2(ev.WorldsPerSecPerCore / or.WorldsPerSecPerCore)
		}
		if ev.NSPerWorld > 0 {
			doc.SpeedupWallPerWorld[b.name] = round2(or.NSPerWorld / ev.NSPerWorld)
		}
	}
	return doc, nil
}

func round2(f float64) float64 { return float64(int64(f*100+0.5)) / 100 }

// measure runs `worlds` sequential worlds of the benchmark and accounts
// wall time, process CPU time, and heap allocation deltas.
func measure(name string, e Engine, ranks int, m *machine.Machine, worlds int, body func(Comm)) (r BenchResult, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("bench %s on %s engine: %v", name, e.Name(), p)
		}
	}()
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	cpu0 := processCPUNS()
	t0 := time.Now()
	for i := 0; i < worlds; i++ {
		e.Run(ranks, m, body)
	}
	wall := time.Since(t0).Nanoseconds()
	cpu := processCPUNS() - cpu0
	runtime.ReadMemStats(&after)
	r = BenchResult{
		Name:           name,
		Engine:         e.Name(),
		Ranks:          ranks,
		Worlds:         worlds,
		WallNS:         wall,
		CPUNS:          cpu,
		NSPerWorld:     float64(wall) / float64(worlds),
		AllocsPerWorld: float64(after.Mallocs-before.Mallocs) / float64(worlds),
		BytesPerWorld:  float64(after.TotalAlloc-before.TotalAlloc) / float64(worlds),
	}
	if wall > 0 {
		r.WorldsPerSec = float64(worlds) / (float64(wall) / 1e9)
	}
	if cpu > 0 {
		r.WorldsPerSecPerCore = float64(worlds) / (float64(cpu) / 1e9)
	}
	return r, nil
}

// pingPongBody bounces a 4 KB message between two ranks.
func pingPongBody(iters int) func(Comm) {
	return func(c Comm) {
		peer := 1 - c.Rank()
		for i := 0; i < iters; i++ {
			if c.Rank() == 0 {
				c.Send(peer, 1, 4096, nil)
				c.Recv(peer, 2)
			} else {
				c.Recv(peer, 1)
				c.Send(peer, 2, 4096, nil)
			}
		}
	}
}

// allreduceBody is a skewed compute + scalar allreduce loop — the
// collective-rendezvous stress at any world size.
func allreduceBody(iters int) func(Comm) {
	return func(c Comm) {
		for i := 0; i < iters; i++ {
			c.Advance(int64(1_000 * (c.Rank()%7 + 1)))
			c.Allreduce(8)
		}
	}
}

// cgBody: CG's iteration loop shape — a transpose exchange with a
// power-of-two partner, then the two dot-product allreduces.
func cgBody(iters int) func(Comm) {
	return func(c Comm) {
		p := c.Size()
		partner := c.Rank() ^ (p / 2)
		for i := 0; i < iters; i++ {
			c.Advance(40_000)
			c.SendRecv(partner, partner, 31, 14_000, nil)
			c.Advance(20_000)
			c.Allreduce(8)
			c.Allreduce(8)
		}
	}
}

// spBody: SP's ADI sweeps — three directional face exchanges per
// iteration, non-blocking both ways.
func spBody(iters int) func(Comm) {
	return func(c Comm) {
		p := c.Size()
		for i := 0; i < iters; i++ {
			for _, stride := range []int{1, 4} {
				right := (c.Rank() + stride) % p
				left := (c.Rank() - stride + p) % p
				out := c.Isend(right, 41, 60_000, nil)
				in := c.Irecv(left, 41)
				c.Advance(80_000)
				out.Wait()
				in.Wait()
			}
			c.Advance(120_000)
		}
	}
}

// mgBody: MG's V-cycle — halo exchanges shrinking by level, a residual
// allreduce at the coarsest grid.
func mgBody(iters int) func(Comm) {
	return func(c Comm) {
		p := c.Size()
		for i := 0; i < iters; i++ {
			bytes := int64(32_768)
			for level := 0; level < 4; level++ {
				right := (c.Rank() + 1) % p
				left := (c.Rank() - 1 + p) % p
				c.SendRecv(right, left, 50+level, bytes, nil)
				c.Advance(30_000 >> level)
				bytes /= 4
			}
			c.Allreduce(8)
		}
	}
}
