package unimem

import (
	"fmt"
	"strings"

	"unimem/internal/exp"
)

// Strategy is a first-class placement policy, the value a Session executes
// a workload under. One strategy type replaces the historical zoo of
// Run* free functions: the same Session races the Unimem runtime against
// any baseline by swapping the strategy argument.
//
//	sess := unimem.New(m)
//	base, _ := sess.Run(ctx, w, unimem.SlowestOnly())
//	uni, _ := sess.Run(ctx, w, unimem.Unimem())
//
// Strategy values are immutable and safe to share across goroutines and
// sessions.
type Strategy = exp.Strategy

// Unimem returns the full Unimem runtime strategy: online counter-based
// profiling, Eq. 1-4 performance modeling, knapsack placement via the
// phase-local and cross-phase global searches, and proactive helper-thread
// migration (the multiple-choice knapsack on machines deeper than two
// tiers). Outcomes of this strategy carry the per-rank Runtimes for
// inspection.
func Unimem() Strategy { return exp.StrategyUnimem() }

// FastestOnly returns the upper-bound baseline: the workload runs on the
// FastTwin of the session machine, every tier at the hierarchy's
// component-wise best performance. Equivalent to DRAMOnly on two-tier
// machines.
func FastestOnly() Strategy { return exp.StrategyFastestOnly() }

// SlowestOnly returns the lower-bound baseline: every object pinned in the
// slowest tier — the NVM-only system of the paper's comparisons.
func SlowestOnly() Strategy { return exp.StrategySlowestOnly() }

// DRAMOnly returns the paper's DRAM-only baseline: the workload runs on
// the undegraded twin of the session machine (NVM tier configured to DRAM
// parity).
func DRAMOnly() Strategy { return exp.StrategyDRAMOnly() }

// StaticHintDensity returns the profile-free static baseline: objects
// ranked by static reference-hint density (RefHint/size) fill the
// constrained tiers fastest-first; hintless objects and overflow land in
// the slowest tier. No profiling run, no migration — the "numactl-style"
// placement the scenario-fleet experiment races Unimem against.
func StaticHintDensity() Strategy { return exp.StrategyHintDensity() }

// XMem returns the X-Mem baseline (Dulloor et al., EuroSys 2016): an
// offline whole-program profiling pass followed by one static hotness
// placement for the entire run.
func XMem() Strategy { return exp.StrategyXMem() }

// StaticFunc is the escape hatch for custom static placements: objects
// selected by inFastest live in the fastest tier, everything else in the
// slowest. The name labels the run's manager and keys the session's run
// cache, so distinct placement functions must carry distinct names.
func StaticFunc(name string, inFastest func(object string) bool) Strategy {
	return exp.StrategyStaticFunc(name, inFastest)
}

// StrategyNames returns the parseable strategy names in presentation
// order — the vocabulary ParseStrategy accepts and the serve API's
// "strategy" field speaks.
func StrategyNames() []string {
	return []string{"unimem", "fastest-only", "slowest-only", "dram-only", "hint-density", "xmem"}
}

// ParseStrategy resolves a strategy by wire name (case-insensitive):
// "unimem", "fastest-only", "slowest-only" (alias "nvm-only"),
// "dram-only", "hint-density" (alias "static-hint-density"), "xmem". The
// serve subsystem and other text front ends use it to map request fields
// onto Strategy values; StaticFunc strategies are not parseable (they
// carry code).
func ParseStrategy(name string) (Strategy, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "unimem":
		return Unimem(), nil
	case "fastest-only", "fast-only", "fastestonly":
		return FastestOnly(), nil
	case "slowest-only", "nvm-only", "slowestonly":
		return SlowestOnly(), nil
	case "dram-only", "dramonly":
		return DRAMOnly(), nil
	case "hint-density", "static-hint-density", "tiered-static":
		return StaticHintDensity(), nil
	case "xmem", "x-mem":
		return XMem(), nil
	}
	return Strategy{}, fmt.Errorf("unimem: unknown strategy %q (want one of %s)",
		name, strings.Join(StrategyNames(), ", "))
}
