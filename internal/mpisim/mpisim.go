// Package mpisim is the MPI substrate: an in-process message-passing world
// of P ranks with per-rank virtual clocks that synchronize exactly the way
// MPI communication serializes real time (a receive cannot complete before
// the matching send's departure plus the network model's transfer time;
// collectives align all participants on the latest arrival).
//
// # Execution model
//
// The world is a discrete-event scheduler, not a pool of free-running
// goroutines. Rank bodies are resumable coroutines: each rank does run on
// its own goroutine, but exactly one is awake at a time, and control is
// handed off through per-rank scheduler channels — a rank that blocks (a
// receive with no matching message, a collective still waiting for peers)
// registers its wake condition, dispatches the next runnable rank from a
// virtual-clock-ordered priority queue, and parks until a peer's event
// completes it. Point-to-point messages live in sparse per-pair FIFO
// queues allocated on first use, sends never block (unbounded queues, so
// opposing SendRecv bursts cannot deadlock), and a collective is an O(P)
// rendezvous event: the last arriver computes the clock maximum and marks
// every waiter runnable.
//
// Because scheduler state is only ever touched by the single running rank,
// the engine needs no locks on its hot path, allocates O(P) per world
// (against the retired engine's eager ranks² mailbox matrix), and detects
// true deadlock: if every live rank is blocked, Run panics with a
// diagnostic instead of hanging.
//
// The previous implementation — one free-running goroutine per rank,
// buffered-channel mailboxes, sync.Cond collectives — is retired to
// package oracle and retained as the reference engine: the differential
// and fuzz suites assert that both engines produce identical per-rank
// Clock() and CommNS on randomized programs, and `unimem-bench -bench`
// measures the two against each other.
//
// # Determinism
//
// Scheduling is fully deterministic: runnable ranks dispatch in
// (virtual clock, rank) order, so a program's complete event order — not
// just its dataflow-determined final clocks — is reproducible run to run.
//
// # Abort
//
// Abort poisons the world. Every MPI operation attempted after the abort
// panics with a private sentinel that Run recovers and swallows (ranks
// parked mid-operation wake and unwind the same way), so a cancelled run
// tears down promptly without ever returning nil payloads that could be
// mistaken for genuine empty messages. Harness code that must clean up
// per-rank state on that path (stopping helper threads) recovers the
// sentinel itself — see IsAbort.
//
// It also provides the PMPI-style interposition layer of the paper's
// Fig. 7: every MPI operation first invokes the registered hook, which is
// how the Unimem runtime transparently identifies execution phases and
// toggles profiling without programmer intervention.
package mpisim

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"unimem/internal/machine"
)

// Hook is the PMPI interposition callback: op is the MPI operation name
// ("Send", "Allreduce", ...), invoked on the calling rank's goroutine before
// the operation executes.
type Hook interface {
	MPICall(rank int, op string)
}

// HookFunc adapts a function to the Hook interface.
type HookFunc func(rank int, op string)

// MPICall implements Hook.
func (f HookFunc) MPICall(rank int, op string) { f(rank, op) }

// message is one point-to-point payload. Data is optional real bytes; the
// clock synchronization uses Bytes (simulated size) and the departure time.
type message struct {
	tag    int
	bytes  int64
	data   []byte
	depart int64 // sender virtual time when the message left
}

// World is a fixed-size communicator of P ranks. A World is single-use:
// construct, Run once, discard.
type World struct {
	P    int
	Mach *machine.Machine

	sched *sched

	// abortCh is closed by Abort; parked ranks select on it so none stays
	// asleep after the world is torn down.
	abortCh   chan struct{}
	abortOnce sync.Once
	aborted   atomic.Bool
	ran       atomic.Bool
	// deadlockDiag is set (inside abortOnce) when the scheduler detected
	// that every live rank was blocked; Run re-panics it after teardown.
	deadlockDiag string
}

// NewWorld creates a world of p ranks over the given machine. Allocation
// is O(p): message queues are sparse, created on first use per rank pair.
func NewWorld(p int, m *machine.Machine) *World {
	if p <= 0 {
		panic("mpisim: world size must be positive")
	}
	w := &World{P: p, Mach: m, abortCh: make(chan struct{})}
	w.sched = newSched(w)
	return w
}

// Abort poisons the world: every rank parked in a communication operation
// wakes immediately, and every in-progress or future MPI operation panics
// with the abort sentinel, which Run recovers per rank (see IsAbort).
// Results of an aborted run are meaningless and must be discarded. Abort is
// idempotent and safe from any goroutine — it is how a context cancellation
// reaches ranks parked inside collectives.
func (w *World) Abort() {
	w.abortOnce.Do(func() {
		w.aborted.Store(true)
		close(w.abortCh)
	})
}

// Aborted reports whether Abort has been called.
func (w *World) Aborted() bool { return w.aborted.Load() }

// abortPanic is the sentinel post-abort operations panic with.
type abortPanic struct{}

func (abortPanic) String() string { return "mpisim: world aborted" }

// IsAbort reports whether a recovered panic value is the world-abort
// sentinel. Rank bodies that own external resources (helper goroutines)
// recover it to clean up, then re-panic or return; Run swallows it.
func IsAbort(p interface{}) bool {
	_, ok := p.(abortPanic)
	return ok
}

// Run executes body as P resumable coroutines and blocks until every rank
// returns (or unwinds through an abort). Non-abort panics in rank bodies
// poison the world so blocked peers unwind, then propagate from Run; a
// detected deadlock (every live rank blocked on a peer) propagates as a
// "mpisim: deadlock" panic with a diagnostic.
func (w *World) Run(body func(c *Comm)) {
	if !w.ran.CompareAndSwap(false, true) {
		panic("mpisim: World.Run called twice (worlds are single-use)")
	}
	s := w.sched
	var wg sync.WaitGroup
	panics := make(chan interface{}, w.P)
	for _, c := range s.ranks {
		wg.Add(1)
		go func(c *Comm) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					if IsAbort(p) {
						return // sanctioned teardown
					}
					// A real panic: poison the world so parked peers
					// unwind instead of waiting for this rank forever.
					w.Abort()
					panics <- fmt.Sprintf("rank %d: %v", c.rank, p)
				}
			}()
			// Park until dispatched (or the world dies first).
			select {
			case <-c.resume:
			case <-w.abortCh:
				panic(abortPanic{})
			}
			body(c)
			// On an aborted world the scheduler is no longer owned by
			// anyone (peers unwind concurrently off abortCh), so a body
			// that returns during teardown — e.g. after recovering the
			// sentinel itself — must not touch the run queue.
			if !w.aborted.Load() {
				s.finish(c)
			}
		}(c)
	}
	s.start()
	wg.Wait()
	s.flushStats()
	select {
	case p := <-panics:
		panic(p)
	default:
	}
	if w.deadlockDiag != "" {
		panic(w.deadlockDiag)
	}
}

// Comm is one rank's endpoint: rank id, virtual clock, sparse per-source
// receive queues and the PMPI hook. It doubles as the rank's scheduler
// record; see sched.go for the coroutine fields.
type Comm struct {
	world *World
	rank  int
	clock int64
	hook  Hook

	// CommNS accumulates virtual time spent inside MPI operations
	// (communication + synchronization wait), for reporting.
	CommNS int64

	// resume is the rank's scheduler channel: a dispatch token arrives
	// when the rank becomes the running coroutine.
	resume chan struct{}
	state  rankState
	// inbox[src] holds undelivered messages from src in arrival order
	// (the tag-matching reorder buffer: Recv takes the first tag match).
	// Allocated on first message — worlds are O(P) unless traffic is
	// genuinely all-to-all.
	inbox map[int][]message
	// Blocked-receive descriptor (state == stBlockedRecv).
	wantSrc int
	wantTag int
	got     message
	// Collective rendezvous result (state == stBlockedColl).
	collMax int64
	// Poll rendezvous result (state == stBlockedColl, parked in a Poll).
	pollRes bool
}

// Rank returns this endpoint's rank.
func (c *Comm) Rank() int { return c.rank }

// Size returns the world size.
func (c *Comm) Size() int { return c.world.P }

// World returns the communicator's world.
func (c *Comm) World() *World { return c.world }

// Clock returns the rank's current virtual time in ns.
func (c *Comm) Clock() int64 { return c.clock }

// Advance moves the rank's virtual clock forward by d ns (compute time,
// memory time, runtime overhead — anything local).
func (c *Comm) Advance(d int64) {
	if d < 0 {
		panic("mpisim: negative clock advance")
	}
	c.clock += d
}

// AdvanceTo moves the clock to t if t is later.
func (c *Comm) AdvanceTo(t int64) {
	if t > c.clock {
		c.clock = t
	}
}

// SetHook registers the PMPI interposition hook (nil disables).
func (c *Comm) SetHook(h Hook) { c.hook = h }

func (c *Comm) callHook(op string) {
	if c.hook != nil {
		c.hook.MPICall(c.rank, op)
	}
}

// checkAbort makes every post-abort operation fail fast with the sentinel.
func (c *Comm) checkAbort() {
	if c.world.aborted.Load() {
		panic(abortPanic{})
	}
}

// Send transmits bytes simulated bytes (with optional real payload) to dst
// with the given tag. The sender is charged the local injection overhead.
// Sends never block: the per-pair queue is unbounded.
func (c *Comm) Send(dst, tag int, bytes int64, data []byte) {
	c.callHook("Send")
	c.send(dst, tag, bytes, data)
}

// Recv blocks until a message with the tag arrives from src, synchronizes
// the virtual clock with the sender, and returns the payload.
func (c *Comm) Recv(src, tag int) []byte {
	c.callHook("Recv")
	return c.recv(src, tag)
}

// Request is a handle for a non-blocking operation, completed by Wait.
type Request struct {
	comm *Comm
	done bool
	// recv fields
	isRecv   bool
	src, tag int
	data     []byte
}

// Isend starts a non-blocking send. Sends are truly non-blocking (the
// per-pair queue is unbounded), so the returned request completes
// trivially, matching MPI's eager protocol for the message sizes the
// workloads use. Per the paper's phase definition, a non-blocking call is
// not a phase boundary, so Isend does not invoke the PMPI hook; the
// completion (Wait) does.
func (c *Comm) Isend(dst, tag int, bytes int64, data []byte) *Request {
	c.send(dst, tag, bytes, data)
	return &Request{comm: c, done: true}
}

// Irecv starts a non-blocking receive, completed (and clock-synchronized)
// by Wait.
func (c *Comm) Irecv(src, tag int) *Request {
	return &Request{comm: c, isRecv: true, src: src, tag: tag}
}

// Wait completes a non-blocking operation. It is a communication-completion
// operation and therefore a phase boundary (invokes the PMPI hook).
func (r *Request) Wait() []byte {
	r.comm.callHook("Wait")
	if r.done {
		return r.data
	}
	r.done = true
	if r.isRecv {
		r.data = r.comm.recv(r.src, r.tag)
	}
	return r.data
}

// logP returns ceil(log2(P)), minimum 1.
func (w *World) logP() float64 {
	if w.P <= 1 {
		return 1
	}
	return math.Ceil(math.Log2(float64(w.P)))
}

// collective aligns all ranks on the latest arrival, then charges cost ns.
func (c *Comm) collective(op string, cost float64) {
	c.checkAbort()
	c.callHook(op)
	before := c.clock
	max := c.world.sched.arrive(c)
	c.clock = max + int64(cost)
	c.CommNS += c.clock - before
}

// Barrier synchronizes all ranks (log P latency exchanges).
func (c *Comm) Barrier() {
	c.collective("Barrier", 2*c.world.logP()*c.world.Mach.NetLatencyNS)
}

// Allreduce models a recursive-doubling allreduce of bytes per rank.
func (c *Comm) Allreduce(bytes int64) {
	per := c.world.Mach.MsgTimeNS(bytes)
	c.collective("Allreduce", 2*c.world.logP()*per)
}

// Bcast models a binomial-tree broadcast of bytes.
func (c *Comm) Bcast(bytes int64) {
	per := c.world.Mach.MsgTimeNS(bytes)
	c.collective("Bcast", c.world.logP()*per)
}

// Reduce models a binomial-tree reduction of bytes.
func (c *Comm) Reduce(bytes int64) {
	per := c.world.Mach.MsgTimeNS(bytes)
	c.collective("Reduce", c.world.logP()*per)
}

// Alltoall models a personalized all-to-all exchanging bytes per rank pair.
func (c *Comm) Alltoall(bytesPerPair int64) {
	per := c.world.Mach.MsgTimeNS(bytesPerPair)
	c.collective("Alltoall", float64(c.world.P-1)*per)
}

// Poll is a zero-cost unanimity vote: every rank calls it at the same
// logical point, and it returns true on all ranks iff every rank passed
// yes AND every rank passed an equal payload. Unlike the collectives it
// charges no virtual time (clocks and CommNS are untouched) and does not
// invoke the PMPI hook — it is pure control-plane agreement, the
// primitive the analytic fast path uses to decide, in lockstep, whether
// an iteration window may be skipped. Callers must guarantee every rank
// reaches each Poll the same number of times (the decision to poll must
// depend only on rank-independent state; per-rank conditions belong in
// the vote), or the world deadlocks exactly as a mismatched collective
// would.
func (c *Comm) Poll(yes bool, payload int64) bool {
	c.checkAbort()
	if c.world.P == 1 {
		return yes
	}
	return c.world.sched.poll(c, yes, payload)
}

// SendRecv performs a blocking exchange with the two peers: sends to dst and
// receives from src (the classic halo-exchange primitive). Sends are
// non-blocking against unbounded queues, so opposing pairs cannot deadlock
// no matter how many exchanges are in flight.
func (c *Comm) SendRecv(dst, src, tag int, bytes int64, data []byte) []byte {
	c.callHook("SendRecv")
	c.send(dst, tag, bytes, data)
	return c.recv(src, tag)
}
