package cachesim

import (
	"testing"
	"testing/quick"
)

func small() Config { return Config{SizeBytes: 8 << 10, LineBytes: 64, Ways: 4} }

func TestColdMissThenHit(t *testing.T) {
	c := New(small())
	if !c.Touch(Access{Addr: 0}) {
		t.Fatal("first access must miss (cold)")
	}
	if c.Touch(Access{Addr: 0}) {
		t.Fatal("second access to same line must hit")
	}
	if c.Touch(Access{Addr: 63}) {
		t.Fatal("same-line access must hit")
	}
	if !c.Touch(Access{Addr: 64}) {
		t.Fatal("next line must miss")
	}
	st := c.Stats()
	if st.Accesses != 4 || st.Misses != 2 {
		t.Fatalf("stats %+v", st)
	}
}

func TestLRUReplacement(t *testing.T) {
	cfg := small() // 8KiB/64B/4-way -> 32 sets
	c := New(cfg)
	nsets := cfg.SizeBytes / cfg.LineBytes / int64(cfg.Ways)
	setStride := nsets * cfg.LineBytes
	// Fill one set's 4 ways.
	for w := int64(0); w < 4; w++ {
		c.Touch(Access{Addr: w * setStride})
	}
	// Re-touch way 0 so way 1 becomes LRU, then insert a 5th line.
	c.Touch(Access{Addr: 0})
	c.Touch(Access{Addr: 4 * setStride})
	// Way 0 must still be resident; way 1 must have been evicted.
	if c.Touch(Access{Addr: 0}) {
		t.Fatal("MRU line was evicted")
	}
	if !c.Touch(Access{Addr: 1 * setStride}) {
		t.Fatal("LRU line should have been evicted")
	}
}

func TestWritebackCounting(t *testing.T) {
	cfg := small()
	c := New(cfg)
	nsets := cfg.SizeBytes / cfg.LineBytes / int64(cfg.Ways)
	setStride := nsets * cfg.LineBytes
	c.Touch(Access{Addr: 0, Write: true}) // dirty line
	for w := int64(1); w <= 4; w++ {      // force eviction of the dirty line
		c.Touch(Access{Addr: w * setStride})
	}
	if c.Stats().Writebacks != 1 {
		t.Fatalf("writebacks = %d, want 1", c.Stats().Writebacks)
	}
}

func TestStreamMissesOncePerLine(t *testing.T) {
	c := New(DefaultLLC())
	// Stream 1 MiB at 8-byte stride: miss ratio should be ~1/8.
	var trace []Access
	for a := int64(0); a < 1<<20; a += 8 {
		trace = append(trace, Access{Addr: a})
	}
	c.Run(trace)
	mr := c.Stats().MissRatio()
	if mr < 0.11 || mr > 0.14 {
		t.Fatalf("stream miss ratio %v, want ~1/8", mr)
	}
}

func TestResidentSetHits(t *testing.T) {
	c := New(DefaultLLC())
	// A 1 MiB working set inside a 20 MiB cache: second pass must hit.
	var trace []Access
	for a := int64(0); a < 1<<20; a += 64 {
		trace = append(trace, Access{Addr: a})
	}
	c.Run(trace)
	if n := c.Run(trace); n != 0 {
		t.Fatalf("second pass had %d misses; working set fits", n)
	}
}

func TestHugeWorkingSetThrashes(t *testing.T) {
	c := New(DefaultLLC())
	// 64 MiB streamed twice through a 20 MiB cache: second pass misses too.
	var trace []Access
	for a := int64(0); a < 64<<20; a += 64 {
		trace = append(trace, Access{Addr: a})
	}
	first := c.Run(trace)
	second := c.Run(trace)
	if second < first/2 {
		t.Fatalf("second pass misses %d << first %d; LRU stream should thrash", second, first)
	}
}

func TestReset(t *testing.T) {
	c := New(small())
	c.Touch(Access{Addr: 0})
	c.Reset()
	if c.Stats() != (Stats{}) {
		t.Fatal("stats not cleared")
	}
	if !c.Touch(Access{Addr: 0}) {
		t.Fatal("cache contents not cleared")
	}
}

func TestOnMissCallback(t *testing.T) {
	c := New(small())
	var missAddrs []int64
	c.OnMiss(func(addr int64, write bool) { missAddrs = append(missAddrs, addr) })
	c.Touch(Access{Addr: 128})
	c.Touch(Access{Addr: 128})
	if len(missAddrs) != 1 || missAddrs[0] != 128 {
		t.Fatalf("miss callback got %v", missAddrs)
	}
}

func TestMissesNeverExceedAccesses(t *testing.T) {
	if err := quick.Check(func(addrs []uint16) bool {
		c := New(small())
		for _, a := range addrs {
			c.Touch(Access{Addr: int64(a)})
		}
		st := c.Stats()
		return st.Misses <= st.Accesses && st.Writebacks <= st.Evictions
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero-size cache should panic")
		}
	}()
	New(Config{})
}
