package mpisim

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"unimem/internal/machine"
)

// TestUnboundedInFlight is the regression test for the retired engine's
// latent SendRecv deadlock: its 1024-entry mailboxes made "non-blocking"
// sends block once a pair had 1024 messages in flight. The event core's
// sparse queues are unbounded, so both ranks can push a burst far past
// that limit before either receives.
func TestUnboundedInFlight(t *testing.T) {
	const burst = 1500 // > the old engine's 1024-slot mailbox
	w := NewWorld(2, machine.PlatformA())
	done := make(chan struct{})
	go func() {
		defer close(done)
		w.Run(func(c *Comm) {
			peer := 1 - c.Rank()
			for i := 0; i < burst; i++ {
				c.Send(peer, i, 8, nil)
			}
			for i := 0; i < burst; i++ {
				c.Recv(peer, i)
			}
		})
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("burst of 1500 in-flight messages per pair deadlocked")
	}
}

// TestSendRecvOpposingBurstNoDeadlock pins the SendRecv doc claim with
// pressure the old engine could not survive: opposing pairs exchanging
// thousands of messages.
func TestSendRecvOpposingBurstNoDeadlock(t *testing.T) {
	w := NewWorld(4, machine.PlatformA())
	w.Run(func(c *Comm) {
		p := c.Size()
		right := (c.Rank() + 1) % p
		left := (c.Rank() - 1 + p) % p
		for i := 0; i < 2000; i++ {
			c.SendRecv(right, left, 9, 256, nil)
		}
	})
}

// TestPostAbortOpsPanicSentinel: after Abort, operations must not return
// nil payloads that could be mistaken for genuinely empty messages — they
// panic with the sentinel IsAbort recognizes, and Run swallows it.
func TestPostAbortOpsPanicSentinel(t *testing.T) {
	w := NewWorld(1, machine.PlatformA())
	var sawSentinel atomic.Bool
	w.Run(func(c *Comm) {
		w.Abort()
		defer func() {
			sawSentinel.Store(IsAbort(recover()))
		}()
		c.Recv(0, 1) // must panic, not return nil
	})
	if !sawSentinel.Load() {
		t.Fatal("post-abort Recv did not panic with the abort sentinel")
	}
	if !w.Aborted() {
		t.Fatal("world should report aborted")
	}
}

// TestAbortMidCollective4kPromptness parks 4095 of 4096 ranks inside a
// Barrier, then has the last rank abort the world: every parked rank must
// wake and unwind promptly, and Run must return instead of hanging.
func TestAbortMidCollective4kPromptness(t *testing.T) {
	const p = 4096
	w := NewWorld(p, machine.PlatformA())
	done := make(chan struct{})
	start := time.Now()
	go func() {
		defer close(done)
		w.Run(func(c *Comm) {
			if c.Rank() == 0 {
				// Block once so every other rank gets scheduled first and
				// parks inside the Barrier below.
				c.Recv(1, 99)
				w.Abort()
				// Any further MPI operation must unwind with the sentinel
				// (Run swallows it).
				c.Barrier()
				t.Error("post-abort Barrier returned instead of unwinding")
				return
			}
			if c.Rank() == 1 {
				c.Send(0, 99, 8, nil)
			}
			c.Barrier() // never completes: rank 0 aborts instead of joining
			t.Errorf("rank %d: aborted Barrier completed", c.Rank())
		})
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("abort of a 4096-rank world mid-collective did not unwind within 30s")
	}
	if !w.Aborted() {
		t.Fatal("world should report aborted")
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("mid-collective abort at 4k ranks took %v to unwind", elapsed)
	}
}

// TestDeadlockDetected: when every live rank is blocked on a peer, Run
// panics with a diagnostic instead of hanging (the old engine hung).
func TestDeadlockDetected(t *testing.T) {
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("deadlocked world did not panic")
		}
		msg, ok := p.(string)
		if !ok || !strings.Contains(msg, "deadlock") {
			t.Fatalf("panic %v, want a deadlock diagnostic", p)
		}
	}()
	w := NewWorld(2, machine.PlatformA())
	w.Run(func(c *Comm) {
		c.Recv(1-c.Rank(), 7) // both ranks wait; nobody sends
	})
}

// TestRunTwicePanics: worlds are single-use.
func TestRunTwicePanics(t *testing.T) {
	w := NewWorld(1, machine.PlatformA())
	w.Run(func(c *Comm) {})
	defer func() {
		if recover() == nil {
			t.Fatal("second Run should panic")
		}
	}()
	w.Run(func(c *Comm) {})
}

// TestManyRanks10k: the scale target — a 10k-rank world with skewed
// clocks and collectives completes. (The retired engine's ranks² mailbox
// matrix would need ~5 TB for this world.)
func TestManyRanks10k(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-rank world in -short mode")
	}
	const p = 10_000
	w := NewWorld(p, machine.PlatformA())
	var total int64
	w.Run(func(c *Comm) {
		c.Advance(int64(c.Rank()))
		c.Allreduce(8)
		c.SendRecv((c.Rank()+1)%p, (c.Rank()-1+p)%p, 3, 512, nil)
		c.Barrier()
		atomic.AddInt64(&total, 1)
	})
	if total != p {
		t.Fatalf("ran %d ranks, want %d", total, p)
	}
}
