package exp

import (
	"context"
	"errors"
	"strings"

	"fmt"
	"sync"
	"sync/atomic"

	"unimem/internal/app"
	"unimem/internal/machine"
	"unimem/internal/workloads"
)

// RunKey identifies one deterministic app.Run execution. Two runs with equal
// keys produce bit-identical *app.Result values (every stochastic input in
// the simulator flows from the seed through xrand), so the suite may execute
// the run once and share the result.
//
// The machine component is a performance fingerprint of the tier, CPU and
// network parameters rather than the Machine.Name: derivation chains such as
// dramMachineFor(PlatformA().WithNVMBandwidthFraction(0.5)) and
// dramMachineFor(PlatformA().WithNVMLatencyFactor(4)) yield differently
// named but physically identical platforms, and the cache must recognize
// them as the same DRAM-only baseline.
type RunKey struct {
	// Workload is name|class|ranks|iterations of the (prep-applied)
	// workload; for built-in workloads all content is a pure function of
	// those four.
	Workload string
	// Spec is the content digest of the declarative scenario spec the
	// workload was compiled from ("" for built-ins): two scenarios that
	// share a name but differ anywhere in their spec — one schedule
	// entry is enough — must never share a cache entry.
	Spec string
	// Machine is the performance fingerprint from machineFingerprint.
	Machine string
	// Strategy identifies the placement policy ("static:dram-only",
	// "static:pin:lhs", "xmem", ...).
	Strategy string
	// Ranks, RPN, Seed, MatCap and Chunk mirror the app.Options fields
	// that influence the run.
	Ranks  int
	RPN    int
	Seed   uint64
	MatCap int64
	Chunk  int64
}

// keyFor builds the cache key for running w on m under the named placement
// strategy with the given options. w must already have prep applied (the
// key captures Quick mode through the iteration count).
func keyFor(w *workloads.Workload, m *machine.Machine, strategy string, opts app.Options) RunKey {
	return RunKey{
		Workload: fmt.Sprintf("%s|%s|%d|%d", w.Name, w.Class, w.Ranks, w.Iterations),
		Spec:     w.SpecDigest,
		Machine:  machineFingerprint(m),
		Strategy: strategy,
		Ranks:    opts.Ranks,
		RPN:      opts.RanksPerNode,
		Seed:     opts.Seed,
		MatCap:   opts.MaterializeCap,
		Chunk:    opts.ChunkSize,
	}
}

// Fingerprint exposes the machine performance fingerprint to the public
// Session layer (legacy-wrapper sessions key on it).
func Fingerprint(m *machine.Machine) string { return machineFingerprint(m) }

// machineFingerprint renders every Machine parameter that influences
// simulated time or capacity, deliberately excluding the display Name. The
// full ordered tier list is hashed — tier count included — so platforms
// that share a DRAM/NVM pair but differ in depth or in a middle tier
// (e.g. HBM+DDR vs HBM+DDR+NVM) can never collide on a cached baseline.
func machineFingerprint(m *machine.Machine) string {
	tier := func(t machine.TierSpec) string {
		return fmt.Sprintf("%g/%g/%g/%d", t.ReadLatNS, t.WriteLatNS, t.BandwidthBps, t.CapacityBytes)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "T%d", m.NumTiers())
	for i, t := range m.Tiers {
		fmt.Fprintf(&b, " t%d=%s", i, tier(t))
	}
	fmt.Fprintf(&b, " cp=%g cpu=%g fl=%g si=%d nl=%g nb=%g",
		m.CopyBandwidthBps, m.CPUFreqHz, m.FlopsPerSec, m.SampleIntervalCycles,
		m.NetLatencyNS, m.NetBandwidthBps)
	return b.String()
}

// cacheEntry is one memoized run. The done channel gives singleflight
// semantics: concurrent requests for the same key block on the first
// executor instead of duplicating the run.
type cacheEntry struct {
	done chan struct{}
	res  *app.Result
	err  error
}

// RunCache memoizes deterministic app.Run executions by RunKey. It is safe
// for concurrent use by the worker pool; a nil *RunCache disables
// memoization (every Do executes its function).
//
// Results are shared by pointer: callers must treat a returned *app.Result
// as immutable. Errors are cached alongside results so a failing baseline
// fails every dependent cell identically in serial and parallel runs —
// except context cancellation: a run aborted by its caller's context is
// forgotten, never poisoning the key for callers with a live context.
type RunCache struct {
	mu      sync.Mutex
	entries map[RunKey]*cacheEntry

	hits   atomic.Int64
	misses atomic.Int64
}

// NewRunCache returns an empty cache.
func NewRunCache() *RunCache {
	return &RunCache{entries: map[RunKey]*cacheEntry{}}
}

// isCtxErr reports whether err is a context cancellation or deadline —
// the caller-induced failures that must not be memoized.
func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// Do returns the memoized result for key, executing run exactly once per
// key across all callers. A caller that arrives while another is executing
// the same key blocks until that execution finishes and counts as a hit,
// or until its own context is cancelled. When the executing caller is
// itself cancelled mid-run, the entry is dropped and the next caller with
// a live context re-executes the run.
func (c *RunCache) Do(ctx context.Context, key RunKey, run func() (*app.Result, error)) (*app.Result, error) {
	if c == nil {
		return run()
	}
	if ctx == nil {
		ctx = context.Background()
	}
	for {
		c.mu.Lock()
		e, ok := c.entries[key]
		if !ok {
			e = &cacheEntry{done: make(chan struct{})}
			c.entries[key] = e
			c.mu.Unlock()

			e.res, e.err = run()
			if isCtxErr(e.err) {
				c.mu.Lock()
				if c.entries[key] == e {
					delete(c.entries, key)
				}
				c.mu.Unlock()
			}
			close(e.done)
			c.misses.Add(1)
			return e.res, e.err
		}
		c.mu.Unlock()

		select {
		case <-e.done:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		if isCtxErr(e.err) {
			// The executor was cancelled and the entry dropped; retry under
			// our own context (which may itself be dead by now).
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			continue
		}
		c.hits.Add(1)
		return e.res, e.err
	}
}

// CacheStats is a point-in-time snapshot of cache effectiveness.
type CacheStats struct {
	// Hits counts Do calls served from a memoized (or in-flight) run.
	Hits int64
	// Misses counts Do calls that executed their run function.
	Misses int64
	// Entries is the number of distinct keys seen.
	Entries int
}

// Stats snapshots the hit/miss counters.
func (c *RunCache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	n := len(c.entries)
	c.mu.Unlock()
	return CacheStats{Hits: c.hits.Load(), Misses: c.misses.Load(), Entries: n}
}
