// Package unimem is a reproduction of "Unimem: Runtime Data Management on
// Non-Volatile Memory-based Heterogeneous Main Memory" (Wu, Huang, Li —
// SC 2017): a lightweight runtime that automatically and transparently
// decides which data objects of an iterative MPI application live in the
// small fast DRAM tier and which in the large slow NVM tier of a
// heterogeneous memory system.
//
// The package bundles the runtime (online counter-based profiling, the
// Eq. 1-4 performance models, knapsack placement via phase-local and
// cross-phase global search, proactive helper-thread migration) together
// with the simulated substrate it manages: an N-tier memory hierarchy
// with real byte backing (the paper's two-tier DRAM+NVM system as the
// degenerate case, plus HBM/DDR/CXL/NVM presets placed by a
// multiple-choice knapsack), an MPI-like world of goroutine ranks with
// virtual clocks, emulated sampling performance counters, the NPB/Nek5000
// evaluation workloads, the X-Mem baseline, and a harness that
// regenerates every table and figure of the paper's evaluation.
//
// # Quick start
//
// The entry point is a Session: a stateful, concurrent-safe handle bound
// to one machine that calibrates the platform once, memoizes baseline
// runs, and executes any workload under any placement Strategy:
//
//	m := unimem.PlatformA().WithNVMBandwidthFraction(0.5)
//	app := unimem.NewApp("myapp", 4, 50)
//	app.Object("field", 128<<20, unimem.WithHint(2e6))
//	app.ComputePhase("sweep", 20e6, unimem.Stream("field", 2e6, 0.5))
//	app.CommPhase("sum", unimem.Allreduce, 8, 1e6)
//	w := app.Build()
//
//	sess := unimem.New(m)
//	ctx := context.Background()
//	base, err := sess.Run(ctx, w, unimem.SlowestOnly())
//	uni, err := sess.Run(ctx, w, unimem.Unimem())
//	fmt.Println(float64(base.Result.TimeNS) / float64(uni.Result.TimeNS))
//
// Batches fan across the session's worker pool with deterministic result
// order, and the context cancels mid-fleet:
//
//	outs, err := sess.RunAll(ctx, []unimem.Job{
//		{Workload: w, Strategy: unimem.XMem()},
//		{Workload: w, Strategy: unimem.Unimem()},
//	})
//	for out := range sess.Stream(ctx, jobs) { ... }
//
// The free functions Run, RunTiered, RunDRAMOnly, RunNVMOnly,
// RunFastestOnly and RunXMem predate the Session API; they remain as
// deprecated wrappers over a shared per-machine default session.
//
// See the examples directory for complete programs, cmd/unimem-bench for
// the paper's experiments, and cmd/unimem-serve for the HTTP service
// front end (a session pool over a shared, bounded, disk-persistent run
// cache).
package unimem

import (
	"unimem/internal/app"
	"unimem/internal/core"
	"unimem/internal/exp"
	"unimem/internal/machine"
	"unimem/internal/model"
	"unimem/internal/obs"
	"unimem/internal/phase"
	"unimem/internal/scenario"
	"unimem/internal/workloads"
)

// Machine describes the simulated platform (tiers, CPU, network).
type Machine = machine.Machine

// TierSpec describes one memory tier's performance and capacity.
type TierSpec = machine.TierSpec

// TierKind indexes a tier in a machine's ordered hierarchy (0 fastest);
// DRAM and NVM name the two tiers of the paper's platforms.
type TierKind = machine.TierKind

// Pattern classifies an object's main-memory access behaviour.
type Pattern = machine.Pattern

// Tier and pattern constants, re-exported for workload construction.
const (
	DRAM = machine.DRAM
	NVM  = machine.NVM

	PatternStream       = machine.Stream
	PatternStencil      = machine.Stencil
	PatternRandom       = machine.Random
	PatternPointerChase = machine.PointerChase
)

// PlatformA returns the paper's 4-node evaluation cluster model; derive
// NVM configurations with WithNVMBandwidthFraction / WithNVMLatencyFactor.
func PlatformA() *Machine { return machine.PlatformA() }

// Edison returns the strong-scaling platform (NUMA-emulated NVM: 0.6x
// bandwidth, 1.89x latency).
func Edison() *Machine { return machine.Edison() }

// PlatformKNL returns a Knights-Landing-like HBM+DDR platform: a small,
// very-high-bandwidth on-package tier over large DDR.
func PlatformKNL() *Machine { return machine.PlatformKNL() }

// PlatformCXL returns a CXL-memory-expansion platform: local DDR over a
// large CXL-attached expander paying the link round trip.
func PlatformCXL() *Machine { return machine.PlatformCXL() }

// PlatformHBMDDRNVM returns the three-tier HBM+DDR+NVM stack (NVM at
// Table 1's STT-RAM performance point).
func PlatformHBMDDRNVM() *Machine { return machine.PlatformHBMDDRNVM() }

// Config selects Unimem runtime features and model parameters.
type Config = core.Config

// Runtime is the per-rank Unimem instance (exposed for inspection: plans,
// migration statistics, DRAM residency).
type Runtime = core.Runtime

// Calibration is the one-time platform measurement of CF_bw / CF_lat /
// BW_peak (§3.1.2).
type Calibration = model.Calibration

// DefaultConfig returns the full Unimem configuration: both searches,
// partitioning and initial placement enabled, the paper's thresholds.
func DefaultConfig() Config { return core.DefaultConfig() }

// Workload is a phase-structured iterative MPI application description.
type Workload = workloads.Workload

// Result is the outcome of running a workload: per-rank virtual times,
// migration statistics, phase profile.
type Result = app.Result

// Options configures a run (world size, seed, materialization cap,
// optional trace recorder).
type Options = app.Options

// Trace is a per-run span recorder: attach one via Options.Trace (or
// Job.Options.Trace) and the harness, the Unimem runtime and the engine
// record a timeline — setup, each phase and iteration, placement
// decisions, migrations, reprofile triggers — against both the simulated
// virtual clock and the wall clock. Export it with WriteChrome as Chrome
// trace-event JSON (loadable in chrome://tracing or Perfetto). Tracing
// never changes simulated time or results.
type Trace = obs.Trace

// NewTrace returns an empty trace recorder whose wall-clock origin is now.
func NewTrace() *Trace { return obs.NewTrace() }

// Explain is a per-run decision-attribution recorder: attach one via
// Options.Explain (or Job.Options.Explain) and the Unimem runtime records,
// for every placement decision, the Eq. 1-4 term breakdown behind the
// chosen placement and its rejected alternatives, every migration with its
// trigger and realized-vs-predicted cost, every re-profile, and a regret
// figure against the oracle-best static placement. Read the document with
// Doc (or from Outcome.Explain). Like Trace, attribution never changes
// simulated time or results; disabled it costs one pointer check.
type Explain = obs.Explain

// ExplainDoc is the exported attribution document (see Explain).
type ExplainDoc = obs.ExplainDoc

// DecisionRecord is one placement decision's attribution within an
// ExplainDoc.
type DecisionRecord = obs.DecisionRecord

// MigrationRecord is one migration's audit entry within an ExplainDoc.
type MigrationRecord = obs.MigrationRecord

// RegretRecord is an ExplainDoc's realized-vs-oracle regret figure.
type RegretRecord = obs.RegretRecord

// FastForwardRecord is one analytic fast-forward episode within an
// ExplainDoc: the iteration window skipped and the virtual time it
// advanced in one step.
type FastForwardRecord = obs.FastForwardRecord

// FastPathStats summarizes the analytic fast path's work in one run:
// phase-memo hits and misses, and how many iterations were simulated
// event-for-event versus computed analytically (see Outcome.FastPath and
// WithExactSim).
type FastPathStats = app.FastPathStats

// NewExplain returns an empty attribution recorder.
func NewExplain() *Explain { return obs.NewExplain() }

// Run executes the workload on machine m under the Unimem runtime and
// returns the result together with the per-rank runtimes (in rank order)
// for inspection. Repeated calls on the same machine share one default
// session, so the platform is calibrated once, not per call.
//
// Deprecated: Use Session.Run with the Unimem Strategy, which adds
// context cancellation, run memoization and batch execution:
// unimem.New(m).Run(ctx, w, unimem.Unimem()).
func Run(w *Workload, m *Machine, cfg Config) (*Result, []*Runtime, error) {
	return RunOpts(w, m, cfg, Options{})
}

// RunOpts is Run with explicit harness options.
//
// Deprecated: Use Session.RunJob with a Job carrying the Options:
// unimem.New(m).RunJob(ctx, unimem.Job{Workload: w, Strategy:
// unimem.Unimem(), Config: &cfg, Options: opts}).
func RunOpts(w *Workload, m *Machine, cfg Config, opts Options) (*Result, []*Runtime, error) {
	return defaultSession(m).legacyRun(w, Unimem(), &cfg, opts)
}

// RunNVMOnly executes the workload with every object pinned in the slowest
// tier — the NVM-only system of the paper's comparisons.
//
// Deprecated: Use Session.Run with the SlowestOnly Strategy:
// unimem.New(m).Run(ctx, w, unimem.SlowestOnly()).
func RunNVMOnly(w *Workload, m *Machine) (*Result, error) {
	return defaultSession(m).legacyResult(w, SlowestOnly())
}

// RunDRAMOnly executes the workload on the undegraded twin of m (NVM tier
// configured to DRAM parity) — the DRAM-only baseline all results
// normalize against.
//
// Deprecated: Use Session.Run with the DRAMOnly Strategy:
// unimem.New(m).Run(ctx, w, unimem.DRAMOnly()).
func RunDRAMOnly(w *Workload, m *Machine) (*Result, error) {
	return defaultSession(m).legacyResult(w, DRAMOnly())
}

// RunFastestOnly executes the workload on the FastTwin of m: every tier at
// the hierarchy's component-wise best performance (max bandwidth, min
// latency) — the upper-bound baseline multi-tier results normalize
// against (equivalent to RunDRAMOnly on two-tier machines).
//
// Deprecated: Use Session.Run with the FastestOnly Strategy:
// unimem.New(m).Run(ctx, w, unimem.FastestOnly()).
func RunFastestOnly(w *Workload, m *Machine) (*Result, error) {
	return defaultSession(m).legacyResult(w, FastestOnly())
}

// TierUsage summarizes one tier's residency and migration traffic for one
// rank of a tiered run.
type TierUsage struct {
	// Tier is the hierarchy index (0 fastest); Name its technology label.
	Tier int
	Name string
	// ResidentBytes is the rank's simulated bytes resident at run end.
	ResidentBytes int64
	// MovesIn counts migrations that arrived in this tier during the run.
	MovesIn int
}

// TieredResult is a Result annotated with per-tier residency/migration
// detail (rank 0).
type TieredResult struct {
	*Result
	// Tiers has one entry per tier of the machine, fastest first.
	Tiers []TierUsage
}

// RunTiered executes the workload on an N-tier machine under the Unimem
// runtime (the multiple-choice-knapsack placement on machines deeper than
// two tiers, the paper's exact pipeline on two-tier machines) and returns
// the result annotated with rank 0's per-tier residency and migration
// statistics, plus the per-rank runtimes for inspection.
//
// Deprecated: Use Session.Run with the Unimem Strategy and annotate the
// outcome with Outcome.Tiered: unimem.New(m).Run(ctx, w,
// unimem.Unimem()), then out.Tiered().
func RunTiered(w *Workload, m *Machine, cfg Config) (*TieredResult, []*Runtime, error) {
	return defaultSession(m).legacyTiered(w, &cfg)
}

// RunXMem executes the workload under the X-Mem baseline: an offline
// profiling pass followed by a static hotness placement.
//
// Deprecated: Use Session.Run with the XMem Strategy:
// unimem.New(m).Run(ctx, w, unimem.XMem()).
func RunXMem(w *Workload, m *Machine) (*Result, error) {
	return defaultSession(m).legacyResult(w, XMem())
}

// Calibrate performs the one-time platform calibration with STREAM and
// pointer-chasing microbenchmarks; install the result in Config.Calibration
// to share it across runs (as the paper does per platform).
func Calibrate(m *Machine) Calibration {
	return model.Calibrate(m, core.DefaultConfig().Counters, 0xCA1)
}

// Benchmarks returns the paper's evaluation workloads: the six NPB kernels
// plus Nek5000 at the given class and scale.
func Benchmarks(class string, ranks int) []*Workload {
	return workloads.EvalSuite(class, ranks)
}

// NewNPB builds one NPB kernel (CG, FT, BT, LU, SP, MG) by name.
func NewNPB(name, class string, ranks int) *Workload {
	return workloads.NewNPB(name, class, ranks)
}

// NewNek5000 builds the Nek5000 eddy production proxy.
func NewNek5000(class string, ranks int) *Workload {
	return workloads.NewNek5000(class, ranks)
}

// Experiment is a regenerated paper artifact.
type Experiment = exp.Table

// ExperimentSuite exposes the paper's tables and figures; see
// cmd/unimem-bench for the CLI.
type ExperimentSuite = exp.Suite

// NewExperimentSuite returns the experiment harness with paper defaults
// (Class C, 4 ranks).
func NewExperimentSuite() *ExperimentSuite { return exp.NewSuite() }

// Experiments returns the experiment IDs in presentation order and their
// runners.
func Experiments() ([]string, map[string]func(*ExperimentSuite) (*Experiment, error)) {
	order, reg := exp.Registry()
	out := make(map[string]func(*ExperimentSuite) (*Experiment, error), len(reg))
	for id, r := range reg {
		out[id] = r
	}
	return order, out
}

// Ref describes one object's per-phase traffic when building custom
// applications.
type Ref = phase.Ref

// WorkloadSpec is the declarative JSON description of a workload: objects,
// phases, comm kinds, static hints, and piecewise per-iteration traffic
// schedules. It round-trips every built-in workload exactly (see
// SaveWorkload) and is the schema behind the scenario generator.
type WorkloadSpec = scenario.Spec

// ScenarioArchetype names a synthetic-scenario family of the generator.
type ScenarioArchetype = scenario.Archetype

// ScenarioArchetypes returns the generator's archetypes in presentation
// order: pattern-drift, ws-growth, hot-rotation (time-varying traffic),
// load-imbalance, bursty-comm, and the stable control.
func ScenarioArchetypes() []ScenarioArchetype { return scenario.Archetypes() }

// LoadWorkload reads, validates and compiles a declarative workload spec
// from a JSON file; validation errors name the offending field. The
// compiled workload carries a content digest of its spec, which the
// experiment run cache keys on.
func LoadWorkload(path string) (*Workload, error) {
	spec, err := scenario.Load(path)
	if err != nil {
		return nil, err
	}
	return spec.Compile()
}

// SaveWorkload captures a workload — built-in or hand-assembled — into
// the declarative schema and writes it as JSON. The capture samples the
// workload's ground-truth traffic across every iteration, so
// Save -> Load -> Run is byte-identical to running the original.
func SaveWorkload(w *Workload, path string) error {
	spec, err := scenario.FromWorkload(w)
	if err != nil {
		return err
	}
	return spec.Save(path)
}

// GenerateScenario builds one synthetic scenario of the given archetype,
// deterministically from the seed, and returns its spec (save it, inspect
// it, or Compile it into a runnable workload).
func GenerateScenario(a ScenarioArchetype, seed uint64) (*WorkloadSpec, error) {
	return scenario.Generate(a, seed)
}
