// CG solver: runs the paper's conjugate-gradient benchmark (Fig. 1's phase
// structure) under all four systems of the evaluation — DRAM-only,
// NVM-only, the X-Mem offline baseline and Unimem — and dumps Unimem's
// decision internals: both candidate plans, the winning search strategy,
// and the migration log, mirroring the paper's Table 4 columns.
//
//	go run ./examples/cgsolver
//	go run ./examples/cgsolver -nvm lat4
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"unimem"
)

func main() {
	nvmCfg := flag.String("nvm", "halfbw", "halfbw or lat4")
	flag.Parse()

	m := unimem.PlatformA().WithNVMBandwidthFraction(0.5)
	if *nvmCfg == "lat4" {
		m = unimem.PlatformA().WithNVMLatencyFactor(4)
	}
	w := unimem.NewNPB("CG", "C", 4)

	// All four systems of the evaluation through one session entry point.
	sess := unimem.New(m)
	outs, err := sess.RunAll(context.Background(), []unimem.Job{
		{Workload: w, Strategy: unimem.DRAMOnly()},
		{Workload: w, Strategy: unimem.SlowestOnly()},
		{Workload: w, Strategy: unimem.XMem()},
		{Workload: w, Strategy: unimem.Unimem()},
	})
	must(err)
	dram, nvm, xm, uni := outs[0].Result, outs[1].Result, outs[2].Result, outs[3].Result

	fmt.Printf("CG Class C, 4 ranks, NVM=%s (paper Figs. 9/10 row)\n\n", *nvmCfg)
	norm := func(t int64) float64 { return float64(t) / float64(dram.TimeNS) }
	for _, row := range []struct {
		name string
		t    int64
	}{
		{"dram-only", dram.TimeNS}, {"nvm-only", nvm.TimeNS},
		{"x-mem", xm.TimeNS}, {"unimem", uni.TimeNS},
	} {
		fmt.Printf("  %-10s %9.1fms  %.2fx\n", row.name, float64(row.t)/1e6, norm(row.t))
	}

	rt := outs[3].Runtimes[0] // rank order: index 0 is rank 0
	fmt.Printf("\ndecision internals (rank 0):\n")
	for _, p := range rt.Candidates {
		marker := " "
		if p.Strategy == rt.Plan().Strategy {
			marker = "*"
		}
		fmt.Printf(" %s %-20s predicted iter %.2fms, %d recurring moves\n",
			marker, p.Strategy, p.PredictedIterNS/1e6, len(p.Schedule))
	}
	fmt.Printf("\nDRAM residents: %v\n", rt.DRAMResidents())

	// The paper's Table 4 row for CG.
	st := rt.MoverStats()
	r0 := uni.Ranks[0]
	fmt.Printf("\nTable-4 view: migrations=%d movedMB=%d runtimeCost=%.1f%% overlap=%.1f%%\n",
		r0.Migrations.Migrations, r0.Migrations.BytesMigrated>>20,
		r0.OverheadNS/float64(r0.TimeNS)*100, st.OverlapFrac()*100)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
