package mpisim_test

import (
	"bytes"
	"fmt"
	"testing"

	"unimem/internal/mpisim/simprog"
)

// FuzzRecvTagMatching decodes a fuzz byte stream into a 2-rank message
// program — rank 0 sends a burst of tagged messages (blocking and
// non-blocking mixed), rank 1 consumes the same tag multiset in a
// fuzz-chosen order through a mix of Recv and out-of-order Irecv/Wait
// completion — and asserts: the program terminates (the event scheduler
// panics on deadlock, so a hang is a failure, not a timeout), every
// message is delivered exactly once in FIFO-per-tag order, and the
// event-driven core's clocks match the goroutine oracle's.
func FuzzRecvTagMatching(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x01, 0x02, 0x03})
	f.Add([]byte{7, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13})
	f.Add([]byte{0xff, 0xee, 0xdd, 0xcc, 0xbb, 0xaa, 0x99, 0x88, 0x77, 0x66})
	f.Add(bytes.Repeat([]byte{0x5a}, 48))
	f.Fuzz(func(t *testing.T, raw []byte) {
		prog, want := decodeTagProgram(raw)
		m := simprog.PlatformFor()
		ev := prog.Run(simprog.Event, m)
		or := prog.Run(simprog.Oracle, m)

		// No message loss, FIFO within each (src, tag) stream: rank 1's
		// received payloads must be exactly the expected sequence.
		got := ev[1].Recvd
		if len(got) != len(want) {
			t.Fatalf("rank 1 received %d payloads, want %d", len(got), len(want))
		}
		for i := range want {
			if !bytes.Equal(got[i], want[i]) {
				t.Fatalf("completion %d: got %q, want %q", i, got[i], want[i])
			}
		}
		// Oracle-equal clocks on both ranks.
		for r := 0; r < 2; r++ {
			if ev[r].Clock != or[r].Clock || ev[r].CommNS != or[r].CommNS {
				t.Fatalf("rank %d: event (clock=%d, comm=%d) != oracle (clock=%d, comm=%d)",
					r, ev[r].Clock, ev[r].CommNS, or[r].Clock, or[r].CommNS)
			}
		}
	})
}

// decodeTagProgram turns a fuzz byte stream into a deadlock-free 2-rank
// program plus rank 1's expected payload sequence in completion order.
func decodeTagProgram(raw []byte) (*simprog.Program, [][]byte) {
	next := func(i int) byte {
		if len(raw) == 0 {
			return 0
		}
		return raw[i%len(raw)]
	}
	n := 1 + int(next(0))%24 // messages
	type msg struct {
		tag     int
		bytes   int64
		payload []byte
	}
	msgs := make([]msg, n)
	prog := &simprog.Program{P: 2, Ranks: make([][]simprog.Op, 2)}
	cursor := 1
	for i := range msgs {
		b1, b2 := next(cursor), next(cursor+1)
		cursor += 2
		msgs[i] = msg{
			tag:     int(b1) % 4, // few tags: force reorder-buffer traffic
			bytes:   1 + int64(b2)*97,
			payload: []byte(fmt.Sprintf("p%d.t%d", i, int(b1)%4)),
		}
		op := simprog.Op{Kind: simprog.OpSend, Peer: 1, Tag: msgs[i].tag,
			Bytes: msgs[i].bytes, Data: msgs[i].payload}
		if next(cursor)%2 == 1 {
			op.Kind = simprog.OpIsend
			op.Slot = 1000 + i
		}
		cursor++
		prog.Ranks[0] = append(prog.Ranks[0], op)
		// Sends are trivially complete; wait immediately when non-blocking.
		if op.Kind == simprog.OpIsend {
			prog.Ranks[0] = append(prog.Ranks[0], simprog.Op{Kind: simprog.OpWait, Slot: op.Slot})
		}
	}

	// Receiver: consume the same tag multiset in a fuzz-chosen order,
	// through blocking receives and batched Irecvs completed LIFO.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := int(next(cursor)) % (i + 1)
		cursor++
		order[i], order[j] = order[j], order[i]
	}
	// Expected matching: completions pop FIFO within each tag's sent
	// stream, in the order the receiver *completes* (Recv call or Wait).
	tagFIFO := map[int][][]byte{}
	for _, m := range msgs {
		tagFIFO[m.tag] = append(tagFIFO[m.tag], m.payload)
	}
	popTag := func(tag int) []byte {
		q := tagFIFO[tag]
		p := q[0]
		tagFIFO[tag] = q[1:]
		return p
	}
	var want [][]byte
	var pendingWaits []simprog.Op // LIFO-completed Irecvs
	var pendingTags []int
	flush := func() {
		for i := len(pendingWaits) - 1; i >= 0; i-- {
			prog.Ranks[1] = append(prog.Ranks[1], pendingWaits[i])
			want = append(want, popTag(pendingTags[i]))
		}
		pendingWaits = pendingWaits[:0]
		pendingTags = pendingTags[:0]
	}
	for k, i := range order {
		tag := msgs[i].tag
		switch next(cursor) % 3 {
		case 0, 1:
			prog.Ranks[1] = append(prog.Ranks[1], simprog.Op{Kind: simprog.OpRecv, Peer: 0, Tag: tag})
			want = append(want, popTag(tag))
		case 2:
			slot := 2000 + k
			prog.Ranks[1] = append(prog.Ranks[1], simprog.Op{Kind: simprog.OpIrecv, Peer: 0, Tag: tag, Slot: slot})
			pendingWaits = append(pendingWaits, simprog.Op{Kind: simprog.OpWait, Slot: slot})
			pendingTags = append(pendingTags, tag)
		}
		cursor++
		if next(cursor)%5 == 0 {
			flush()
		}
		cursor++
	}
	flush()
	return prog, want
}
