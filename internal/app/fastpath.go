package app

import (
	"sync/atomic"

	"unimem/internal/counters"
	"unimem/internal/machine"
	"unimem/internal/mpisim"
	"unimem/internal/obs"
	"unimem/internal/phase"
	"unimem/internal/workloads"
)

// This file is the harness half of the analytic fast path: per-rank
// phase-outcome memoization (content x placement x machine keys into
// phase.Memo) and steady-state fast-forward. When every rank votes — in
// lockstep, through the simulator's zero-cost Poll rendezvous — that its
// manager is quiescent, its phase keys have been stable for K iterations
// and its last two iteration clock deltas are equal, and all ranks'
// deltas agree, the remaining iterations of the stable window (bounded
// by a rank-independent forward scan over workload content keys) are
// skipped: clocks, CommNS, per-phase means and manager bookkeeping are
// advanced analytically in one step. Soundness: at a unanimous iteration
// boundary every inbox is empty and the run heap is quiescent, so with
// equal per-rank advances the relative clock offsets — the only
// cross-rank state — are preserved, and a skipped iteration would have
// replayed the previous one exactly, event for event.

// Fast-path engagement thresholds: polls begin once enough iterations
// have completed to compare two consecutive clock deltas, and a window
// counts as stable once every phase position has re-presented the same
// key for this many consecutive iterations.
const (
	fastPathMinIter     = 3
	fastPathStableIters = 3
)

// FastPather is the optional Manager extension the analytic fast path
// requires: a manager that can certify quiescence and adjust its
// bookkeeping when the harness skips iterations analytically. Managers
// that do not implement it run exact simulation unconditionally.
type FastPather interface {
	// SteadyState reports that the manager will not change placement,
	// charge variable overhead, or toggle profiling as long as upcoming
	// iterations repeat the current one.
	SteadyState() bool
	// FastForward advances the manager's iteration bookkeeping across n
	// skipped iterations, replaying any constant per-iteration overhead
	// accounting the simulated path would have recorded.
	FastForward(n int)
}

// FastPathStats summarizes the analytic fast path's work in one run.
// Memo counters aggregate across all ranks; the iteration counters are
// rank 0's view (skips are unanimous, so every rank's counts agree).
// All zeros when the fast path was disabled or never engaged.
type FastPathStats struct {
	MemoHits       int64 `json:"memo_hits"`
	MemoMisses     int64 `json:"memo_misses"`
	SimulatedIters int64 `json:"simulated_iters"`
	AnalyticIters  int64 `json:"analytic_iters"`
	FastForwards   int64 `json:"fastforwards"`
}

// add accumulates o into s; rank coroutines flush concurrently at rank
// end, so the adds are atomic. Safe on a nil receiver.
func (s *FastPathStats) add(o FastPathStats) {
	if s == nil {
		return
	}
	atomic.AddInt64(&s.MemoHits, o.MemoHits)
	atomic.AddInt64(&s.MemoMisses, o.MemoMisses)
	atomic.AddInt64(&s.SimulatedIters, o.SimulatedIters)
	atomic.AddInt64(&s.AnalyticIters, o.AnalyticIters)
	atomic.AddInt64(&s.FastForwards, o.FastForwards)
}

// fpTotals accumulates process-wide fast-path totals across every run,
// the monotonic source the serve layer bridges onto /metrics (mirroring
// mpisim's event-core totals).
var fpTotals FastPathStats

// ReadFastPathTotals returns a snapshot of the process-wide fast-path
// totals.
func ReadFastPathTotals() FastPathStats {
	return FastPathStats{
		MemoHits:       atomic.LoadInt64(&fpTotals.MemoHits),
		MemoMisses:     atomic.LoadInt64(&fpTotals.MemoMisses),
		SimulatedIters: atomic.LoadInt64(&fpTotals.SimulatedIters),
		AnalyticIters:  atomic.LoadInt64(&fpTotals.AnalyticIters),
		FastForwards:   atomic.LoadInt64(&fpTotals.FastForwards),
	}
}

// fastPath is one rank's fast-path tracker. Nil when the run opted out
// (Options.ExactSim) or the manager is not a FastPather — both
// rank-independent facts, so either every rank tracks or none does and
// the Poll counts stay matched.
type fastPath struct {
	rc   *RankCtx
	mgr  FastPather
	memo *phase.Memo
	// base is the key digest pre-seeded with the machine fingerprint.
	base phase.Digest

	// Last simulated iteration's per-position content keys and measured
	// durations — the extrapolation template for skipped iterations.
	lastContent []phase.Key
	lastDur     []float64
	// Rank 0 only: the run's per-phase accumulators, extrapolated by
	// repeated addition so a skipped window contributes the exact float
	// sums simulation would have.
	phaseNS    []float64
	phaseCount []int64

	iterStartClock int64
	iterStartComm  int64
	prevIterDelta  int64
	prevCommDelta  int64
	lastIterDelta  int64
	lastCommDelta  int64
	// simIters counts simulated iterations; steadyIters counts
	// consecutive iteration starts at which the manager was already
	// quiescent (the last simulated iteration's delta is only a valid
	// template if no migration or profile charge landed inside it).
	simIters    int
	steadyIters int

	stats FastPathStats
}

// newFastPath returns the rank's tracker, or nil when the fast path is
// off for this run.
func newFastPath(rc *RankCtx, mgr Manager, opts *Options, phaseNS []float64, phaseCount []int64) *fastPath {
	if opts.ExactSim {
		return nil
	}
	fpm, ok := mgr.(FastPather)
	if !ok {
		return nil
	}
	n := len(rc.W.Phases)
	fp := &fastPath{
		rc:          rc,
		mgr:         fpm,
		memo:        phase.NewMemo(),
		base:        machineDigest(rc.Mach),
		lastContent: make([]phase.Key, n),
		lastDur:     make([]float64, n),
	}
	if rc.Rank == 0 {
		fp.phaseNS, fp.phaseCount = phaseNS, phaseCount
	}
	return fp
}

// machineDigest folds the platform description once per rank; it seeds
// every phase key so memoized outcomes are canonical per (content,
// placement, machine) even though a single run never mixes machines.
func machineDigest(m *machine.Machine) phase.Digest {
	d := phase.NewDigest().String(m.Name).Int(len(m.Tiers))
	for _, t := range m.Tiers {
		d = d.String(t.Name).
			Float64(t.ReadLatNS).
			Float64(t.WriteLatNS).
			Float64(t.BandwidthBps).
			Int64(t.CapacityBytes)
	}
	return d.Float64(m.CopyBandwidthBps).
		Float64(m.CPUFreqHz).
		Float64(m.FlopsPerSec).
		Int64(m.SampleIntervalCycles).
		Float64(m.NetLatencyNS).
		Float64(m.NetBandwidthBps)
}

// beginIter snapshots the rank's clocks at a simulated iteration's start
// and advances the manager-quiescence streak.
func (fp *fastPath) beginIter(c *mpisim.Comm) {
	fp.iterStartClock = c.Clock()
	fp.iterStartComm = c.CommNS
	if fp.mgr.SteadyState() {
		fp.steadyIters++
	} else {
		fp.steadyIters = 0
	}
}

// observePhase keys one simulated phase execution into the memo: the
// workload content key folded with the placement-expanded traffic (chunk
// identity, accesses and tier-priced service time) over the machine
// fingerprint, valued by the measured duration.
func (fp *fastPath) observePhase(pi int, ph *workloads.Phase, iter int, durNS float64, traffic []counters.ChunkTraffic) {
	ck := ph.ContentKey(iter)
	d := fp.base.Int(pi).Uint64(uint64(ck))
	for _, t := range traffic {
		d = d.String(t.Chunk).
			Int64(t.Accesses).
			Float64(t.ServiceNS).
			Float64(t.ReadFrac).
			Int(int(t.Pattern))
	}
	fp.memo.Observe(pi, d.Key(), durNS)
	fp.lastContent[pi] = ck
	fp.lastDur[pi] = durNS
}

// endIter closes a simulated iteration, rolling the delta history.
func (fp *fastPath) endIter(c *mpisim.Comm) {
	fp.prevIterDelta, fp.prevCommDelta = fp.lastIterDelta, fp.lastCommDelta
	fp.lastIterDelta = c.Clock() - fp.iterStartClock
	fp.lastCommDelta = c.CommNS - fp.iterStartComm
	fp.simIters++
	fp.stats.SimulatedIters++
}

// steady is this rank's fast-forward vote: the manager has been
// quiescent since before the template iteration began, every phase
// position has presented the same (content x placement) key for K
// consecutive iterations, and the last two iteration deltas are equal —
// the rank's execution has provably settled into a fixed point.
func (fp *fastPath) steady() bool {
	return fp.simIters >= fastPathMinIter &&
		fp.steadyIters >= 2 &&
		fp.mgr.SteadyState() &&
		fp.memo.StableIters() >= fastPathStableIters &&
		fp.lastIterDelta > 0 &&
		fp.lastIterDelta == fp.prevIterDelta &&
		fp.lastCommDelta == fp.prevCommDelta
}

// scan returns how many consecutive iterations starting at iter present
// exactly the last simulated iteration's content. It reads only
// rank-independent workload ground truth, so every rank computes the
// same bound without further coordination. Workloads that declare their
// content epochs get an O(#epochs) bound; otherwise every candidate
// iteration's keys are verified individually.
func (fp *fastPath) scan(iter int) int {
	w := fp.rc.W
	if w.ContentEpochs != nil {
		// The window must match the template (the last simulated
		// iteration): verify iter itself, then extend to the declared
		// window's end — the first epoch boundary past iter.
		for pi := range w.Phases {
			if w.Phases[pi].ContentKey(iter) != fp.lastContent[pi] {
				return 0
			}
		}
		end := w.Iterations
		for _, e := range w.ContentEpochs {
			if e > iter {
				if e < end {
					end = e
				}
				break
			}
		}
		return end - iter
	}
	n := 0
	for j := iter; j < w.Iterations; j++ {
		for pi := range w.Phases {
			if w.Phases[pi].ContentKey(j) != fp.lastContent[pi] {
				return n
			}
		}
		n++
	}
	return n
}

// trySkip runs the lockstep skip protocol at an iteration start: poll
// all ranks (vote = this rank's steady state, payload = its last
// iteration delta, so unanimity implies cross-rank delta agreement), and
// on success fast-forward through the scanned stable window. Returns the
// number of iterations skipped (0: simulate this one). Every rank calls
// trySkip at the same iteration starts and returns the same value.
func (fp *fastPath) trySkip(c *mpisim.Comm, iter int) int {
	if !c.Poll(fp.steady(), fp.lastIterDelta) {
		return 0
	}
	n := fp.scan(iter)
	if n == 0 {
		return 0
	}
	entryClock := c.Clock()
	c.Advance(int64(n) * fp.lastIterDelta)
	c.CommNS += int64(n) * fp.lastCommDelta
	if fp.phaseNS != nil {
		for pi, d := range fp.lastDur {
			for k := 0; k < n; k++ {
				fp.phaseNS[pi] += d
			}
			fp.phaseCount[pi] += int64(n)
		}
	}
	fp.mgr.FastForward(n)
	fp.stats.AnalyticIters += int64(n)
	fp.stats.FastForwards++
	if fp.rc.Explain != nil {
		fp.rc.Explain.AddFastForward(iter, iter+n, c.Clock()-entryClock)
	}
	if fp.rc.Trace != nil {
		fp.rc.Trace.Span(obs.Virtual, fp.rc.Rank, "fastforward", "harness", entryClock, c.Clock(),
			map[string]any{"entry_iter": iter, "exit_iter": iter + n, "iters": n})
	}
	return n
}

// flush publishes the rank's counters into the caller's sink and the
// process totals. Memo counters flow from every rank; the iteration
// counters only from rank 0, whose view all ranks share.
func (fp *fastPath) flush(sink *FastPathStats) {
	out := FastPathStats{MemoHits: fp.memo.Hits(), MemoMisses: fp.memo.Misses()}
	if fp.rc.Rank == 0 {
		out.SimulatedIters = fp.stats.SimulatedIters
		out.AnalyticIters = fp.stats.AnalyticIters
		out.FastForwards = fp.stats.FastForwards
	}
	sink.add(out)
	fpTotals.add(out)
}
