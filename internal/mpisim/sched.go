package mpisim

import (
	"container/heap"
	"fmt"
)

// This file is the discrete-event scheduler behind World/Comm: the
// virtual-clock run queue, the coroutine handoff, point-to-point delivery
// and the collective rendezvous. The concurrency discipline is ownership
// transfer, not locking: exactly one rank coroutine is awake at any
// moment, it alone mutates scheduler state, and ownership moves with the
// dispatch token sent on the next rank's resume channel (channel
// send/receive pairs give the happens-before edges the race detector
// wants). Abort is the only external input; it never touches scheduler
// state — it closes abortCh and lets parked ranks unwind themselves.

type rankState uint8

const (
	stRunnable rankState = iota
	stRunning
	stBlockedRecv
	stBlockedColl
	stDone
)

// sched is one world's scheduler.
type sched struct {
	w     *World
	ranks []*Comm
	runq  runHeap
	live  int // ranks whose body has not returned
	coll  collState
	vote  pollState

	// Event-core tallies, mutated only by the owning coroutine and
	// flushed to package atomics after the world completes (stats.go).
	events       int64
	collectives  int64
	inboxScans   int64
	inboxScanned int64
	maxRunq      int64
}

// collState is the single in-flight collective rendezvous (MPI programs
// enter collectives in lockstep, so one suffices — same invariant the
// retired engine's collSync relied on).
type collState struct {
	count   int
	max     int64
	waiters []*Comm
}

func newSched(w *World) *sched {
	s := &sched{w: w, ranks: make([]*Comm, w.P), live: w.P}
	s.runq = make(runHeap, 0, w.P)
	for r := 0; r < w.P; r++ {
		s.ranks[r] = &Comm{world: w, rank: r, resume: make(chan struct{}, 1)}
	}
	return s
}

// start seeds the run queue with every rank at clock 0 (rank order) and
// dispatches the first. Called once, from Run's goroutine, before any rank
// owns the scheduler; the dispatch token transfers ownership.
func (s *sched) start() {
	for _, c := range s.ranks {
		c.state = stRunnable
		s.runq = append(s.runq, c)
	}
	heap.Init(&s.runq)
	s.noteRunq()
	s.dispatchNext()
}

// dispatchNext hands the scheduler to the earliest-clock runnable rank.
// If nothing is runnable but live ranks remain, every one of them is
// parked on a condition only another rank could satisfy — a true
// deadlock — and the world is torn down with a diagnostic.
func (s *sched) dispatchNext() {
	if len(s.runq) > 0 {
		next := heap.Pop(&s.runq).(*Comm)
		next.state = stRunning
		s.events++
		next.resume <- struct{}{}
		return
	}
	if s.w.aborted.Load() {
		// Teardown in progress: parked ranks are waking on abortCh on
		// their own; there is nobody to dispatch and nothing to diagnose.
		return
	}
	if s.live > 0 {
		s.failDeadlock()
	}
}

// yield parks the calling rank (whose blocked state and wake condition the
// caller has already recorded) after dispatching the next runnable rank,
// and returns when a peer's event completes it.
func (s *sched) yield(c *Comm) {
	s.dispatchNext()
	select {
	case <-c.resume:
		if s.w.aborted.Load() {
			panic(abortPanic{})
		}
	case <-s.w.abortCh:
		panic(abortPanic{})
	}
}

// finish retires a completed rank and dispatches the next.
func (s *sched) finish(c *Comm) {
	c.state = stDone
	s.live--
	if s.live > 0 || len(s.runq) > 0 {
		s.dispatchNext()
	}
}

// failDeadlock records a diagnostic, poisons the world so every parked
// rank unwinds, and unwinds the caller. If an external Abort won the race
// the diagnostic is dropped — an aborted world hanging on blocked ranks is
// the sanctioned teardown, not a deadlock.
func (s *sched) failDeadlock() {
	var recvs, colls int
	var example *Comm
	for _, c := range s.ranks {
		switch c.state {
		case stBlockedRecv:
			recvs++
			if example == nil {
				example = c
			}
		case stBlockedColl:
			colls++
			if example == nil {
				example = c
			}
		}
	}
	diag := fmt.Sprintf("mpisim: deadlock: all %d live ranks blocked (%d in Recv, %d in a collective)",
		s.live, recvs, colls)
	if example != nil && example.state == stBlockedRecv {
		diag += fmt.Sprintf("; e.g. rank %d waiting on Recv(src=%d, tag=%d)",
			example.rank, example.wantSrc, example.wantTag)
	} else if example != nil {
		diag += fmt.Sprintf("; e.g. rank %d waiting in a collective (%d of %d ranks arrived)",
			example.rank, s.coll.count, s.w.P)
	}
	s.w.abortOnce.Do(func() {
		s.w.deadlockDiag = diag
		s.w.aborted.Store(true)
		close(s.w.abortCh)
	})
	panic(abortPanic{})
}

// send charges the caller's injection overhead and delivers the message:
// directly completing the destination if it is parked on a matching
// receive, otherwise appending to the sparse per-pair queue. Never blocks.
func (c *Comm) send(dst, tag int, bytes int64, data []byte) {
	c.checkAbort()
	if dst < 0 || dst >= c.world.P {
		panic(fmt.Sprintf("mpisim: send to invalid rank %d", dst))
	}
	// Local injection overhead: half the latency term.
	inject := int64(c.world.Mach.NetLatencyNS / 2)
	c.clock += inject
	c.CommNS += inject
	m := message{tag: tag, bytes: bytes, data: data, depart: c.clock}
	s := c.world.sched
	d := s.ranks[dst]
	if d.state == stBlockedRecv && d.wantSrc == c.rank && d.wantTag == tag {
		d.got = m
		d.completeRecv(m)
		d.state = stRunnable
		heap.Push(&s.runq, d)
		s.noteRunq()
		return
	}
	if d.inbox == nil {
		d.inbox = make(map[int][]message)
	}
	d.inbox[c.rank] = append(d.inbox[c.rank], m)
}

// recv returns the first message from src matching tag, in arrival order
// (the reorder-buffer semantics: earlier-arrived messages with other tags
// stay queued), blocking the coroutine if none has arrived yet.
func (c *Comm) recv(src, tag int) []byte {
	c.checkAbort()
	if src < 0 || src >= c.world.P {
		panic(fmt.Sprintf("mpisim: recv from invalid rank %d", src))
	}
	if q := c.inbox[src]; len(q) > 0 {
		s := c.world.sched
		s.inboxScans++
		for i, m := range q {
			if m.tag == tag {
				s.inboxScanned += int64(i + 1)
				c.inbox[src] = append(q[:i], q[i+1:]...)
				c.completeRecv(m)
				return m.data
			}
		}
		s.inboxScanned += int64(len(q))
	}
	c.state = stBlockedRecv
	c.wantSrc, c.wantTag = src, tag
	c.world.sched.yield(c)
	m := c.got
	c.got = message{}
	return m.data
}

// completeRecv synchronizes the receiver's clock with the message: arrival
// is the departure plus the network model's transfer time, and any wait is
// charged to CommNS. (Identical formula to the oracle engine — this is
// what the differential suite pins.)
func (c *Comm) completeRecv(m message) {
	arrive := m.depart + int64(c.world.Mach.MsgTimeNS(m.bytes))
	wait := arrive - c.clock
	if wait > 0 {
		c.clock = arrive
		c.CommNS += wait
	}
}

// arrive is the collective rendezvous: the first P-1 arrivers park, the
// last computes the clock maximum, marks every waiter runnable with the
// result, and continues — O(P) work and P-1 coroutine switches total,
// against the retired engine's broadcast storm.
func (s *sched) arrive(c *Comm) int64 {
	cs := &s.coll
	if c.clock > cs.max {
		cs.max = c.clock
	}
	cs.count++
	if cs.count == s.w.P {
		s.collectives++
		res := cs.max
		for _, wtr := range cs.waiters {
			wtr.collMax = res
			wtr.state = stRunnable
			heap.Push(&s.runq, wtr)
		}
		s.noteRunq()
		cs.waiters = cs.waiters[:0]
		cs.count = 0
		cs.max = 0
		return res
	}
	cs.waiters = append(cs.waiters, c)
	c.state = stBlockedColl
	s.yield(c)
	return c.collMax
}

// pollState is the single in-flight zero-cost vote (polls are issued in
// lockstep at iteration boundaries, the same invariant collState relies
// on): the running AND of the votes and the payload-equality flag.
type pollState struct {
	count   int
	all     bool
	same    bool
	first   int64
	waiters []*Comm
}

// poll is the zero-cost unanimity rendezvous behind Comm.Poll. It mirrors
// arrive's park/wake discipline but touches neither clocks nor CommNS:
// the result is true iff every rank voted yes and every payload was equal.
func (s *sched) poll(c *Comm, yes bool, payload int64) bool {
	ps := &s.vote
	if ps.count == 0 {
		ps.all, ps.same, ps.first = true, true, payload
	} else if payload != ps.first {
		ps.same = false
	}
	if !yes {
		ps.all = false
	}
	ps.count++
	if ps.count == s.w.P {
		res := ps.all && ps.same
		for _, wtr := range ps.waiters {
			wtr.pollRes = res
			wtr.state = stRunnable
			heap.Push(&s.runq, wtr)
		}
		s.noteRunq()
		ps.waiters = ps.waiters[:0]
		ps.count = 0
		return res
	}
	ps.waiters = append(ps.waiters, c)
	c.state = stBlockedColl
	s.yield(c)
	return c.pollRes
}

// runHeap orders runnable ranks by (virtual clock, rank): the earliest
// clock runs first, ties broken by rank id, which makes the whole event
// order deterministic.
type runHeap []*Comm

func (h runHeap) Len() int { return len(h) }
func (h runHeap) Less(i, j int) bool {
	if h[i].clock != h[j].clock {
		return h[i].clock < h[j].clock
	}
	return h[i].rank < h[j].rank
}
func (h runHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *runHeap) Push(x interface{}) {
	*h = append(*h, x.(*Comm))
}
func (h *runHeap) Pop() interface{} {
	old := *h
	n := len(old)
	c := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return c
}
