package exp

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"unimem/internal/app"
	"unimem/internal/machine"
	"unimem/internal/workloads"
)

// mergeDoc marshals a snapshot document from explicit entries.
func mergeDoc(t *testing.T, version int, entries ...snapshotEntry) []byte {
	t.Helper()
	data, err := json.Marshal(&snapshotFile{Version: version, Entries: entries})
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestMergeSnapshotVersionGuard: an incompatible envelope version merges
// nothing and reports ErrSnapshotVersion.
func TestMergeSnapshotVersionGuard(t *testing.T) {
	c := NewRunCache()
	doc := mergeDoc(t, SnapshotVersion+1,
		snapshotEntry{Key: snapKey(1), Result: snapResult(1), CompletedAtNS: 10})
	if _, err := c.MergeSnapshot(doc); !errors.Is(err, ErrSnapshotVersion) {
		t.Fatalf("MergeSnapshot(version %d) err = %v, want ErrSnapshotVersion",
			SnapshotVersion+1, err)
	}
	if st := c.Stats(); st.Entries != 0 || st.Loaded != 0 {
		t.Fatalf("version-mismatched merge touched the cache: %+v", st)
	}
}

// TestMergeSnapshotCorruptPayloadUntouched: a payload that fails to decode
// leaves the local cache exactly as it was — entry count, stats and the
// resident results themselves.
func TestMergeSnapshotCorruptPayloadUntouched(t *testing.T) {
	c := NewRunCache()
	want := snapResult(7)
	if _, err := c.Do(context.Background(), snapKey(7), func() (*app.Result, error) { return want, nil }); err != nil {
		t.Fatal(err)
	}
	before := c.Stats()
	for _, payload := range [][]byte{
		[]byte("not json at all"),
		[]byte(`{"version":1,"entries":[{"key":`), // truncated mid-document
		[]byte(`{"version":1,"entries":"oops"}`),  // wrong entries shape
	} {
		if _, err := c.MergeSnapshot(payload); err == nil {
			t.Fatalf("MergeSnapshot(%q) succeeded, want decode error", payload)
		}
	}
	if after := c.Stats(); !reflect.DeepEqual(before, after) {
		t.Fatalf("corrupt merges changed stats: before %+v after %+v", before, after)
	}
	got, err := c.Do(context.Background(), snapKey(7), func() (*app.Result, error) {
		return nil, errors.New("should not execute")
	})
	if err != nil || !reflect.DeepEqual(got, want) {
		t.Fatalf("resident entry disturbed by corrupt merge: %v %+v", err, got)
	}
}

// TestMergeSnapshotNewerCompletedWins: between two completed runs of the
// same key, the one with the strictly newer completion stamp survives,
// regardless of merge direction; an equal or older stamp is skipped.
func TestMergeSnapshotNewerCompletedWins(t *testing.T) {
	key := snapKey(3)
	older, newer := snapResult(1), snapResult(2)

	c := NewRunCache()
	if st, err := c.MergeSnapshot(mergeDoc(t, SnapshotVersion,
		snapshotEntry{Key: key, Result: older, CompletedAtNS: 100})); err != nil || st.Added != 1 {
		t.Fatalf("initial merge = %+v, %v", st, err)
	}

	// Newer incoming stamp replaces the resident entry.
	st, err := c.MergeSnapshot(mergeDoc(t, SnapshotVersion,
		snapshotEntry{Key: key, Result: newer, CompletedAtNS: 200}))
	if err != nil || st.Replaced != 1 || st.Added != 0 {
		t.Fatalf("newer merge = %+v, %v; want exactly one replacement", st, err)
	}
	got, _ := c.Do(context.Background(), key, func() (*app.Result, error) {
		return nil, errors.New("should not execute")
	})
	if !reflect.DeepEqual(got, newer) {
		t.Fatalf("after newer merge, entry = %+v, want the newer result", got)
	}

	// Equal and older stamps are skipped; the resident result survives.
	for _, stamp := range []int64{200, 150} {
		st, err := c.MergeSnapshot(mergeDoc(t, SnapshotVersion,
			snapshotEntry{Key: key, Result: older, CompletedAtNS: stamp}))
		if err != nil || st.Skipped != 1 || st.Replaced != 0 {
			t.Fatalf("stale merge (stamp %d) = %+v, %v; want skipped", stamp, st, err)
		}
	}
	got, _ = c.Do(context.Background(), key, func() (*app.Result, error) {
		return nil, errors.New("should not execute")
	})
	if !reflect.DeepEqual(got, newer) {
		t.Fatalf("stale merge displaced the newer result: %+v", got)
	}
}

// TestMergeSnapshotNeverTouchesInFlight: an entry whose run is still
// executing (waiters parked on it) is never merged over — the merge skips
// it and the in-flight execution's result is what every caller sees.
func TestMergeSnapshotNeverTouchesInFlight(t *testing.T) {
	c := NewRunCache()
	key := snapKey(9)
	fresh := snapResult(42)

	started := make(chan struct{})
	release := make(chan struct{})
	done := make(chan *app.Result, 1)
	go func() {
		res, _ := c.Do(context.Background(), key, func() (*app.Result, error) {
			close(started)
			<-release
			return fresh, nil
		})
		done <- res
	}()
	<-started

	st, err := c.MergeSnapshot(mergeDoc(t, SnapshotVersion,
		snapshotEntry{Key: key, Result: snapResult(1), CompletedAtNS: 1 << 60}))
	if err != nil || st.Skipped != 1 || st.Added+st.Replaced != 0 {
		t.Fatalf("merge over in-flight entry = %+v, %v; want skipped", st, err)
	}
	close(release)
	if got := <-done; !reflect.DeepEqual(got, fresh) {
		t.Fatalf("in-flight execution returned %+v, want its own result", got)
	}
	got, _ := c.Do(context.Background(), key, func() (*app.Result, error) {
		return nil, errors.New("should not execute")
	})
	if !reflect.DeepEqual(got, fresh) {
		t.Fatalf("resident entry after in-flight completion = %+v, want the executed result", got)
	}
}

// TestMergeSnapshotWhileServing: merges race a storm of Do calls over the
// same key space under -race; every Do must observe some complete,
// internally-consistent result and the stats stay coherent.
func TestMergeSnapshotWhileServing(t *testing.T) {
	c := NewRunCache()
	const keys = 16
	docs := make([][]byte, 4)
	for d := range docs {
		entries := make([]snapshotEntry, keys)
		for i := 0; i < keys; i++ {
			entries[i] = snapshotEntry{
				Key: snapKey(i), Result: snapResult(100*d + i),
				CompletedAtNS: int64(1000 * (d + 1)),
			}
		}
		docs[d] = mergeDoc(t, SnapshotVersion, entries...)
	}

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := snapKey((w*7 + i) % keys)
				res, err := c.Do(context.Background(), k, func() (*app.Result, error) {
					return snapResult(i), nil
				})
				if err != nil || res == nil {
					panic(fmt.Sprintf("Do(%v) = %v, %v", k, res, err))
				}
			}
		}(w)
	}
	for d := range docs {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			if _, err := c.MergeSnapshot(docs[d]); err != nil {
				panic(err)
			}
		}(d)
	}
	wg.Wait()

	st := c.Stats()
	if st.Entries != keys {
		t.Fatalf("entries after racing merges = %d, want %d", st.Entries, keys)
	}
	if int64(st.Entries)+st.Evictions > st.Misses+st.Loaded {
		t.Fatalf("stats incoherent after racing merges: %+v", st)
	}
}

// TestRouteKeyStableAndCacheAligned: RouteKey must be a pure function of
// the request (two processes agree), must separate distinct runs, and must
// reflect the same Quick prep and target-machine derivation the cache key
// uses — the property that makes ring ownership line up with cache
// residency.
func TestRouteKeyStableAndCacheAligned(t *testing.T) {
	w := workloads.NewCG("C", 4)
	m := machine.PlatformA().WithNVMBandwidthFraction(0.5)

	a := RouteKey(w, m, StrategyXMem(), false, app.Options{Seed: 1})
	b := RouteKey(w, m, StrategyXMem(), false, app.Options{Seed: 1})
	if a == "" || a != b {
		t.Fatalf("RouteKey not stable: %q vs %q", a, b)
	}
	if c := RouteKey(w, m, StrategyXMem(), false, app.Options{Seed: 2}); c == a {
		t.Fatalf("RouteKey ignored the seed: %q", c)
	}
	if c := RouteKey(w, m, StrategyHintDensity(), false, app.Options{Seed: 1}); c == a {
		t.Fatalf("RouteKey ignored the strategy: %q", c)
	}
	if w.Iterations > 12 {
		if c := RouteKey(w, m, StrategyXMem(), true, app.Options{Seed: 1}); c == a {
			t.Fatalf("RouteKey ignored Quick prep: %q", c)
		}
	}
	// DRAM-only runs on a derived twin of the machine; the route key must
	// follow the same derivation or it would hash onto a different peer
	// than the peer whose cache holds the baseline.
	dram := RouteKey(w, m, StrategyDRAMOnly(), false, app.Options{Seed: 1})
	if dram == a {
		t.Fatalf("RouteKey did not apply the strategy's machine derivation")
	}
}
