package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"

	"unimem"
	"unimem/internal/cluster"
	"unimem/internal/exp"
	"unimem/internal/workloads"
)

// This file is the service's wire vocabulary: the JSON request/response
// types of /run, /batch, /fleet and /stats, plus their resolution into
// the library's Machine/Workload/Strategy values. Resolution never
// panics — every malformed field comes back as a 400 with the offending
// field named, in the spirit of the scenario schema's validation errors.

// PlatformSpec selects one of the registered platforms, optionally
// re-parameterized. It decodes from either a bare string ("a") or an
// object ({"name": "a", "nvm_latency_factor": 4}).
type PlatformSpec struct {
	// Name is the registered platform: "a" (the paper's 4-node cluster,
	// the default), "edison", "knl", "cxl" or "hbm-ddr-nvm".
	Name string `json:"name"`
	// NVMLatencyFactor / NVMBandwidthFraction derive an NVM
	// parameterization of the platform, exactly like the library's
	// WithNVMLatencyFactor / WithNVMBandwidthFraction (0: leave as is).
	NVMLatencyFactor     float64 `json:"nvm_latency_factor,omitempty"`
	NVMBandwidthFraction float64 `json:"nvm_bandwidth_fraction,omitempty"`
}

// UnmarshalJSON accepts both the string and the object form. The object
// branch rejects unknown fields like the outer request decoder does — a
// typoed knob must be a 400, not a silently-default platform.
func (p *PlatformSpec) UnmarshalJSON(data []byte) error {
	var name string
	if err := json.Unmarshal(data, &name); err == nil {
		*p = PlatformSpec{Name: name}
		return nil
	}
	type plain PlatformSpec
	var v plain
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&v); err != nil {
		return fmt.Errorf("platform: %w", err)
	}
	*p = PlatformSpec(v)
	return nil
}

// platformRegistry lists the served platforms in presentation order. The
// pool shards sessions by the resolved machine's performance fingerprint,
// so two spellings of the same parameterization share one session.
var platformRegistry = []struct {
	name  string
	build func() *unimem.Machine
}{
	{"a", unimem.PlatformA},
	{"edison", unimem.Edison},
	{"knl", unimem.PlatformKNL},
	{"cxl", unimem.PlatformCXL},
	{"hbm-ddr-nvm", unimem.PlatformHBMDDRNVM},
}

// Platforms returns the registered platform names.
func Platforms() []string {
	out := make([]string, len(platformRegistry))
	for i, p := range platformRegistry {
		out[i] = p.name
	}
	return out
}

// resolve builds the machine the spec describes.
func (p PlatformSpec) resolve() (*unimem.Machine, error) {
	name := strings.ToLower(strings.TrimSpace(p.Name))
	if name == "" {
		name = "a"
	}
	for _, reg := range platformRegistry {
		if reg.name != name {
			continue
		}
		m := reg.build()
		if p.NVMLatencyFactor < 0 || p.NVMBandwidthFraction < 0 || p.NVMBandwidthFraction > 1 {
			return nil, fmt.Errorf("platform: nvm_latency_factor must be >= 0 and nvm_bandwidth_fraction in [0, 1]")
		}
		if p.NVMLatencyFactor > 0 {
			m = m.WithNVMLatencyFactor(p.NVMLatencyFactor)
		}
		if p.NVMBandwidthFraction > 0 {
			m = m.WithNVMBandwidthFraction(p.NVMBandwidthFraction)
		}
		return m, nil
	}
	return nil, fmt.Errorf("platform: unknown name %q (want one of %s)",
		p.Name, strings.Join(Platforms(), ", "))
}

// NPBReq selects one NPB kernel.
type NPBReq struct {
	// Name is one of CG, FT, BT, LU, SP, MG (case-insensitive).
	Name string `json:"name"`
	// Class is the NPB problem class A/B/C/D (default A — the smallest
	// full-fidelity class; pass C for the paper's evaluation size).
	Class string `json:"class,omitempty"`
	// Ranks is the MPI world size (default 4, the paper's baseline).
	Ranks int `json:"ranks,omitempty"`
}

// NekReq selects the Nek5000 eddy production proxy.
type NekReq struct {
	Class string `json:"class,omitempty"`
	Ranks int    `json:"ranks,omitempty"`
}

// WorkloadReq names a workload: exactly one of the three forms.
type WorkloadReq struct {
	// NPB builds a built-in NPB kernel.
	NPB *NPBReq `json:"npb,omitempty"`
	// Nek builds the Nek5000 proxy.
	Nek *NekReq `json:"nek,omitempty"`
	// Scenario is an inline declarative workload spec — the same JSON
	// schema scenario files use (objects, phases, schedules).
	Scenario *unimem.WorkloadSpec `json:"scenario,omitempty"`
}

// npbClasses are the accepted NPB problem classes.
var npbClasses = map[string]bool{"A": true, "B": true, "C": true, "D": true}

// maxRanks caps any request-supplied world size. The event-driven
// simulator core is O(ranks) per world (sparse message queues — the old
// engine's ranks² mailbox matrix forced a 512 cap here), and a 10k-rank
// world completes in well under a second, so the cap now only bounds the
// per-rank harness state (a simulated heap and a parked coroutine each)
// an untrusted request can make one daemon allocate.
const maxRanks = 16384

// checkRanks validates one request-supplied world size (0 means "use the
// default", negatives would panic the simulator's world constructor).
func checkRanks(field string, n int) error {
	if n < 0 {
		return fmt.Errorf("%s: must be >= 0 (got %d)", field, n)
	}
	if n > maxRanks {
		return fmt.Errorf("%s: %d exceeds the %d-rank limit", field, n, maxRanks)
	}
	return nil
}

// build compiles the request into a runnable workload.
func (wr WorkloadReq) build() (*unimem.Workload, error) {
	set := 0
	for _, ok := range []bool{wr.NPB != nil, wr.Nek != nil, wr.Scenario != nil} {
		if ok {
			set++
		}
	}
	if set != 1 {
		return nil, fmt.Errorf("workload: exactly one of npb, nek, scenario must be set (got %d)", set)
	}
	switch {
	case wr.NPB != nil:
		if err := checkRanks("workload.npb.ranks", wr.NPB.Ranks); err != nil {
			return nil, err
		}
		name := strings.ToUpper(strings.TrimSpace(wr.NPB.Name))
		valid := false
		for _, n := range workloads.NPBNames {
			if n == name {
				valid = true
			}
		}
		if !valid {
			return nil, fmt.Errorf("workload.npb.name: unknown kernel %q (want one of %s)",
				wr.NPB.Name, strings.Join(workloads.NPBNames, ", "))
		}
		class := strings.ToUpper(strings.TrimSpace(wr.NPB.Class))
		if class == "" {
			class = "A"
		}
		if !npbClasses[class] {
			return nil, fmt.Errorf("workload.npb.class: unknown class %q (want A, B, C or D)", wr.NPB.Class)
		}
		return unimem.NewNPB(name, class, wr.NPB.Ranks), nil
	case wr.Nek != nil:
		if err := checkRanks("workload.nek.ranks", wr.Nek.Ranks); err != nil {
			return nil, err
		}
		class := strings.ToUpper(strings.TrimSpace(wr.Nek.Class))
		if class == "" {
			class = "A"
		}
		if !npbClasses[class] {
			return nil, fmt.Errorf("workload.nek.class: unknown class %q (want A, B, C or D)", wr.Nek.Class)
		}
		return unimem.NewNek5000(class, wr.Nek.Ranks), nil
	default:
		if err := wr.Scenario.Validate(); err != nil {
			return nil, fmt.Errorf("workload.scenario: %w", err)
		}
		if err := checkRanks("workload.scenario.ranks", wr.Scenario.Ranks); err != nil {
			return nil, err
		}
		w, err := wr.Scenario.Compile()
		if err != nil {
			return nil, fmt.Errorf("workload.scenario: %w", err)
		}
		return w, nil
	}
}

// JobReq is one unit of work: a workload under a strategy.
type JobReq struct {
	Workload WorkloadReq `json:"workload"`
	// Strategy is a ParseStrategy name: unimem, fastest-only,
	// slowest-only, dram-only, hint-density, xmem.
	Strategy string `json:"strategy"`
	// Seed overrides the server's harness seed for this job (0: server
	// default).
	Seed uint64 `json:"seed,omitempty"`
	// Ranks overrides the world size (0: the workload's own).
	Ranks int `json:"ranks,omitempty"`
}

// job resolves the request into a Session job.
func (jr JobReq) job() (unimem.Job, error) {
	if err := checkRanks("ranks", jr.Ranks); err != nil {
		return unimem.Job{}, err
	}
	w, err := jr.Workload.build()
	if err != nil {
		return unimem.Job{}, err
	}
	st, err := unimem.ParseStrategy(jr.Strategy)
	if err != nil {
		return unimem.Job{}, fmt.Errorf("strategy: %w", err)
	}
	return unimem.Job{
		Workload: w,
		Strategy: st,
		Options:  unimem.Options{Seed: jr.Seed, Ranks: jr.Ranks},
	}, nil
}

// RunRequest is /run's body: one job on one platform.
type RunRequest struct {
	Platform PlatformSpec `json:"platform"`
	JobReq
}

// BatchRequest is /batch's body: a job list on one platform, answered as
// NDJSON outcomes in job order.
type BatchRequest struct {
	Platform PlatformSpec `json:"platform"`
	Jobs     []JobReq     `json:"jobs"`
}

// FleetRequest is /fleet's body: generator-driven scenarios run under a
// strategy list.
type FleetRequest struct {
	Platform PlatformSpec `json:"platform"`
	// Archetype limits generation to one scenario archetype ("" runs all
	// six; see unimem.ScenarioArchetypes).
	Archetype string `json:"archetype,omitempty"`
	// Count is scenarios per archetype (default 2, max 32).
	Count int `json:"count,omitempty"`
	// Seed drives deterministic generation (default: the server seed).
	Seed uint64 `json:"seed,omitempty"`
	// Strategies to run each scenario under (default: hint-density and
	// unimem — the static-vs-adaptive race of the fleet experiment).
	Strategies []string `json:"strategies,omitempty"`
	// Ranks overrides each generated scenario's world size (0: as
	// generated).
	Ranks int `json:"ranks,omitempty"`
}

// TierJSON is one tier's residency/migration summary of a Unimem outcome.
type TierJSON struct {
	Tier          int    `json:"tier"`
	Name          string `json:"name"`
	ResidentBytes int64  `json:"resident_bytes"`
	MovesIn       int    `json:"moves_in"`
}

// OutcomeJSON is one job's result on the wire: /run's body, one /batch or
// /fleet NDJSON line.
type OutcomeJSON struct {
	// Index is the job's position in the batch (0 for /run); outcomes
	// arrive in index order.
	Index int `json:"index"`
	// Workload and Strategy echo what ran.
	Workload string `json:"workload"`
	Strategy string `json:"strategy"`
	// Archetype/Scenario/Seed annotate /fleet outcomes.
	Archetype string `json:"archetype,omitempty"`
	Scenario  string `json:"scenario,omitempty"`
	Seed      uint64 `json:"seed,omitempty"`
	// TimeNS is the application execution time (slowest rank).
	TimeNS int64 `json:"time_ns"`
	// RankNS is the per-rank execution time in rank order.
	RankNS []int64 `json:"rank_ns,omitempty"`
	// Migrations/BytesMigrated total the run's migration traffic.
	Migrations    int   `json:"migrations"`
	BytesMigrated int64 `json:"bytes_migrated"`
	// Tiers carries rank 0's per-tier residency (Unimem strategy only).
	Tiers []TierJSON `json:"tiers,omitempty"`
	// CacheHit reports whether this outcome was served from the run
	// cache (always false for the uncached Unimem strategy).
	CacheHit bool `json:"cache_hit,omitempty"`
	// Error is the job's failure, if any (other fields are zero then).
	Error string `json:"error,omitempty"`
}

// outcomeJSON shapes a Session outcome for the wire.
func outcomeJSON(o unimem.Outcome) OutcomeJSON {
	oj := OutcomeJSON{Index: o.Index, Strategy: o.Job.Strategy.Name(), CacheHit: o.CacheHit}
	if o.Job.Workload != nil {
		oj.Workload = o.Job.Workload.Name
	}
	if o.Err != nil {
		oj.Error = o.Err.Error()
		return oj
	}
	if o.Result == nil {
		oj.Error = "no result"
		return oj
	}
	oj.TimeNS = o.Result.TimeNS
	oj.Migrations = o.Result.TotalMigrations()
	oj.BytesMigrated = o.Result.TotalBytesMigrated()
	for _, rr := range o.Result.Ranks {
		oj.RankNS = append(oj.RankNS, rr.TimeNS)
	}
	if tr := o.Tiered(); tr != nil {
		for _, u := range tr.Tiers {
			oj.Tiers = append(oj.Tiers, TierJSON{
				Tier: u.Tier, Name: u.Name,
				ResidentBytes: u.ResidentBytes, MovesIn: u.MovesIn,
			})
		}
	}
	return oj
}

// RunResponse is /run's reply: the outcome plus the server-wide cache
// counters after the run (single-client flows read hit/miss deltas off
// it; concurrent clients should use /stats).
type RunResponse struct {
	OutcomeJSON
	Platform    string            `json:"platform"`
	Fingerprint string            `json:"fingerprint"`
	Cache       unimem.CacheStats `json:"cache"`
	// Trace is the run's span timeline as Chrome trace-event JSON
	// (loadable in chrome://tracing), present only on /run?trace=1.
	Trace json.RawMessage `json:"trace,omitempty"`
	// Explain is the run's decision-attribution document (per-phase cost
	// terms, migration audit trail, regret), present only on
	// /run?explain=1. Its run_id equals the response's X-Request-Id.
	Explain json.RawMessage `json:"explain,omitempty"`
}

// CalibrationJSON is the one-time platform measurement on the wire.
type CalibrationJSON struct {
	CFBw      float64 `json:"cf_bw"`
	CFLat     float64 `json:"cf_lat"`
	BWPeakBps float64 `json:"bw_peak_bps"`
}

// SessionJSON describes one pooled session.
type SessionJSON struct {
	// Platform is the display name of the session's machine.
	Platform string `json:"platform"`
	// Fingerprint is the machine performance fingerprint the pool shards
	// on (the same string that versions cache keys).
	Fingerprint string `json:"fingerprint"`
	// Tiers is the machine's hierarchy depth.
	Tiers int `json:"tiers"`
	// Runs counts jobs this session has resolved — executed, failed, or
	// cancelled before dispatch (a cancelled batch's undispatched jobs
	// still resolve to context-error outcomes).
	Runs int64 `json:"runs"`
	// Calibration is the session's memoized platform measurement,
	// computed on first use (§3.1.2).
	Calibration CalibrationJSON `json:"calibration"`
}

// SnapshotJSON describes the cache persistence state.
type SnapshotJSON struct {
	// Path is the snapshot file (inside -cache-dir).
	Path string `json:"path"`
	// LoadedEntries counts entries warm-started from the snapshot.
	LoadedEntries int `json:"loaded_entries"`
	// Version is the envelope format version the server reads/writes.
	Version int `json:"version"`
	// AgeSeconds is seconds since the on-disk snapshot was written (file
	// mtime, so meaningful across restarts); -1 when no file exists yet.
	AgeSeconds float64 `json:"age_seconds"`
	// LastSaveUnixNS / LastSaveEntries describe this process's most recent
	// SaveCache (zero/absent before the first save).
	LastSaveUnixNS  int64 `json:"last_save_unix_ns,omitempty"`
	LastSaveEntries int   `json:"last_save_entries,omitempty"`
}

// MergeJSON summarizes the snapshot merges this process has performed
// (POST /snapshot/merge and peer warm-starts).
type MergeJSON struct {
	// LastUnixNS stamps the most recent merge.
	LastUnixNS int64 `json:"last_unix_ns"`
	// Last is the most recent merge's added/replaced/skipped counts.
	Last exp.MergeStats `json:"last"`
	// Merges counts merges performed; TotalAdded/TotalReplaced accumulate
	// across them.
	Merges        int `json:"merges"`
	TotalAdded    int `json:"total_added"`
	TotalReplaced int `json:"total_replaced"`
}

// StatsResponse is /stats's reply: cache effectiveness, persistence
// state, and per-session calibration introspection.
type StatsResponse struct {
	Cache unimem.CacheStats `json:"cache"`
	// FastPath totals the analytic fast path's work across every run this
	// process has executed: phase-memo hits/misses and simulated versus
	// analytically computed iterations.
	FastPath unimem.FastPathStats `json:"fastpath"`
	// InFlight gauges the run/batch/fleet handlers executing right now,
	// read in the same critical section as Sessions so the two are
	// mutually consistent.
	InFlight int64 `json:"in_flight_requests"`
	// Uptime is seconds since the server started.
	Uptime float64 `json:"uptime_seconds"`
	// Build identifies the serving binary.
	Build    *BuildJSON    `json:"build,omitempty"`
	Snapshot *SnapshotJSON `json:"snapshot,omitempty"`
	// Merge summarizes snapshot merges performed (absent before the
	// first).
	Merge *MergeJSON `json:"merge,omitempty"`
	// Cluster reports ring membership and per-peer forward health (absent
	// when single-node).
	Cluster    *cluster.Status `json:"cluster,omitempty"`
	Sessions   []SessionJSON   `json:"sessions"`
	Platforms  []string        `json:"platforms"`
	Strategies []string        `json:"strategies"`
}

// BuildJSON identifies the serving binary (module version or VCS
// revision, plus the Go toolchain that built it).
type BuildJSON struct {
	Version string `json:"version"`
	Go      string `json:"go"`
}

// errorJSON is every non-2xx body.
type errorJSON struct {
	Error string `json:"error"`
	// RequestID matches the X-Request-Id header and the server's log
	// lines for this request ("" outside instrumented routes).
	RequestID string `json:"request_id,omitempty"`
}
