// Package trace generates synthetic address traces for the access patterns
// the paper characterizes (§2.2): streaming, stencil, random, and
// pointer-chasing — the same taxonomy whose memory-level parallelism makes
// an object bandwidth-sensitive or latency-sensitive (machine.Pattern.MLP,
// feeding the Eq. 2/3 benefit estimates). Traces address the stable
// simulated address range of a memsys chunk and are consumed by the
// cachesim validation tests and by the trace-driven profiling mode of the
// counter emulation.
//
// Generation is deterministic given the caller's xrand stream, like every
// other stochastic input in the repository.
package trace

import (
	"unimem/internal/cachesim"
	"unimem/internal/machine"
	"unimem/internal/memsys"
	"unimem/internal/xrand"
)

// Gen produces n accesses of the given pattern over the chunk's simulated
// address range. writeFrac of the accesses are writes. The generator is
// deterministic given rng.
func Gen(c *memsys.Chunk, p machine.Pattern, n int, writeFrac float64, rng *xrand.RNG) []cachesim.Access {
	out := make([]cachesim.Access, 0, n)
	base, size := c.SimAddr, c.Size
	if size <= 0 || n <= 0 {
		return out
	}
	isWrite := func() bool { return rng.Float64() < writeFrac }
	switch p {
	case machine.Stream:
		// Sequential 8-byte sweeps, wrapping around the extent.
		stride := int64(8)
		addr := base
		for i := 0; i < n; i++ {
			out = append(out, cachesim.Access{Addr: addr, Write: isWrite()})
			addr += stride
			if addr >= base+size {
				addr = base
			}
		}
	case machine.Stencil:
		// 5-point-style neighbourhood: a moving centre plus +/- one "row".
		row := size / 64
		if row < 64 {
			row = 64
		}
		centre := base
		for i := 0; i < n; i += 3 {
			for _, d := range []int64{0, -row, +row} {
				a := centre + d
				if a < base {
					a += size
				}
				if a >= base+size {
					a -= size
				}
				out = append(out, cachesim.Access{Addr: a, Write: isWrite()})
				if len(out) == n {
					return out
				}
			}
			centre += 8
			if centre >= base+size {
				centre = base
			}
		}
	case machine.Random:
		for i := 0; i < n; i++ {
			out = append(out, cachesim.Access{Addr: base + rng.Int63n(size), Write: isWrite()})
		}
	case machine.PointerChase:
		// Dependent chain: a full-period coprime-stride walk over the
		// chunk's cache lines, so the chain visits every line once before
		// repeating and consecutive accesses land on distant lines — the
		// access structure of a pointer-chasing ring built from a random
		// permutation.
		nlines := size / 64
		if nlines < 1 {
			nlines = 1
		}
		step := int64(float64(nlines)*0.6180339887) | 1
		if step <= 0 {
			step = 1
		}
		for gcd(step, nlines) != 1 {
			step += 2
		}
		pos := int64(0)
		for i := 0; i < n; i++ {
			out = append(out, cachesim.Access{Addr: base + pos*64, Write: isWrite()})
			pos = (pos + step) % nlines
		}
	}
	return out
}

func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// Interleave merges several traces round-robin, approximating the
// interleaving of accesses to multiple objects within one phase.
func Interleave(traces ...[]cachesim.Access) []cachesim.Access {
	total := 0
	for _, t := range traces {
		total += len(t)
	}
	out := make([]cachesim.Access, 0, total)
	idx := make([]int, len(traces))
	for len(out) < total {
		for i, t := range traces {
			if idx[i] < len(t) {
				out = append(out, t[idx[i]])
				idx[i]++
			}
		}
	}
	return out
}
