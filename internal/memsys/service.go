package memsys

import (
	"unimem/internal/machine"

	"fmt"
	"sync"
)

// NodeService is the user-level DRAM coordination service of §3.3: each
// node runs one instance, and every MPI rank on the node requests DRAM
// space through it, so the aggregate DRAM allocation of all ranks stays
// within the node's DRAM allowance.
//
// Accounting is page-budget based rather than extent based: a real
// user-level service hands out virtually contiguous mappings backed by
// whatever physical DRAM pages are free, so object-sized allocations never
// fail from physical fragmentation — only from budget exhaustion. (The
// per-rank NVM arena keeps a real extent allocator; see Arena.)
type NodeService struct {
	mu       sync.Mutex
	capacity int64
	used     int64
	allocs   int
}

// NewNodeService returns a service managing capacity bytes of node DRAM.
func NewNodeService(capacity int64) *NodeService {
	if capacity < 0 {
		panic("memsys: negative DRAM capacity")
	}
	return &NodeService{capacity: capacity}
}

// Alloc reserves size bytes of node DRAM, returning a placement cookie
// (always 0; kept for symmetry with Arena), or ErrNoSpace when the node's
// DRAM allowance is exhausted.
func (s *NodeService) Alloc(size int64) (int64, error) {
	if size <= 0 {
		return 0, fmt.Errorf("memsys: invalid DRAM allocation size %d", size)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.used+size > s.capacity {
		return 0, ErrNoSpace
	}
	s.used += size
	s.allocs++
	return 0, nil
}

// Free releases a reservation made with Alloc. The off cookie is ignored.
func (s *NodeService) Free(off, size int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if size <= 0 || s.used-size < 0 {
		panic(fmt.Sprintf("memsys: bad DRAM free of %d bytes (used %d)", size, s.used))
	}
	s.used -= size
	s.allocs--
}

// Used returns the bytes of node DRAM currently reserved.
func (s *NodeService) Used() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.used
}

// Capacity returns the node DRAM allowance.
func (s *NodeService) Capacity() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.capacity
}

// Avail returns the bytes of node DRAM not currently reserved.
func (s *NodeService) Avail() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.capacity - s.used
}

// Allocations returns the number of live reservations.
func (s *NodeService) Allocations() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.allocs
}

// NodeTiers is the per-node coordination state of an N-tier hierarchy: one
// NodeService per shared tier. Every tier except the slowest is
// node-coordinated (its capacity is a per-node allowance the ranks share,
// like the paper's DRAM service); the slowest tier is large and
// contention-free, so each rank keeps a private extent arena for it.
type NodeTiers struct {
	svcs []*NodeService
}

// NewNodeTiers returns the coordination services for one node of machine m:
// a NodeService for every tier but the slowest.
func NewNodeTiers(m *machine.Machine) *NodeTiers {
	n := m.NumTiers()
	svcs := make([]*NodeService, n)
	for t := 0; t < n-1; t++ {
		svcs[t] = NewNodeService(m.Tier(machine.TierKind(t)).CapacityBytes)
	}
	return &NodeTiers{svcs: svcs}
}

// Service returns tier k's node service, or nil when the tier is privately
// managed (the slowest tier, or an out-of-range index).
func (n *NodeTiers) Service(k machine.TierKind) *NodeService {
	if int(k) < 0 || int(k) >= len(n.svcs) {
		return nil
	}
	return n.svcs[k]
}
