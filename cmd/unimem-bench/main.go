// Command unimem-bench regenerates the paper's evaluation tables and
// figures. Each experiment prints the same rows/series the paper reports,
// normalized to DRAM-only execution time.
//
// Usage:
//
//	unimem-bench -list
//	unimem-bench -exp fig9
//	unimem-bench -exp all -class C -ranks 4
//	unimem-bench -exp table4 -csv out.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"unimem/internal/exp"
)

func main() {
	var (
		expID = flag.String("exp", "all", "experiment id (see -list) or 'all'")
		class = flag.String("class", "C", "NPB class for the basic tests (A/B/C/D)")
		ranks = flag.Int("ranks", 4, "MPI world size")
		seed  = flag.Uint64("seed", 0xD07, "deterministic seed")
		quick = flag.Bool("quick", false, "cap iteration counts (fast, less faithful)")
		csv   = flag.String("csv", "", "also write results as CSV to this file")
		list  = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	order, reg := exp.Registry()
	if *list {
		for _, id := range order {
			fmt.Println(id)
		}
		return
	}

	s := exp.NewSuite()
	s.Class = *class
	s.Ranks = *ranks
	s.Seed = *seed
	s.Quick = *quick

	var ids []string
	if *expID == "all" {
		ids = order
	} else {
		for _, id := range strings.Split(*expID, ",") {
			if _, ok := reg[id]; !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			ids = append(ids, id)
		}
	}

	var csvOut *os.File
	if *csv != "" {
		f, err := os.Create(*csv)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		csvOut = f
	}

	for _, id := range ids {
		start := time.Now()
		t, err := reg[id](s)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			os.Exit(1)
		}
		t.Render(os.Stdout)
		fmt.Printf("  (%s regenerated in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
		if csvOut != nil {
			fmt.Fprintf(csvOut, "# %s: %s\n", t.ID, t.Title)
			if err := t.WriteCSV(csvOut); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Fprintln(csvOut)
		}
	}
}
