// Package loadgen replays scenario-generator fleets against one or more
// unimem-serve nodes at a configured rate and reports the latency
// distribution, cache hit rate and per-node request split.
//
// Pacing is open-loop: every request has a fire time fixed up front
// (start + i/QPS), and latency is measured from that scheduled time, not
// from when a worker got around to sending. A server that stalls therefore
// shows up as tail latency on every request queued behind the stall —
// the coordinated-omission correction — instead of quietly shifting the
// whole schedule later.
//
// The generator is deterministic: the same seed, archetype selection and
// scenario count produce byte-identical request bodies, so two loadgen
// runs against different nodes populate the same key population and a
// repeat run measures pure cache-hit traffic.
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"unimem"
)

// nodeHeader is the response header unimem-serve sets to name the node
// that executed the request (the forwarding target, not the proxy).
// Mirrored here rather than imported so serve can import this package for
// its benchmark harness without a cycle.
const nodeHeader = "X-Unimem-Node"

// Target is one node under load.
type Target struct {
	// Name labels the target in reports (default: Base).
	Name string
	// Base is the node's base URL, e.g. "http://localhost:8080".
	Base string
}

// Config parameterizes one load run.
type Config struct {
	// Targets are the nodes to spread requests over, round-robin by
	// request index. At least one is required.
	Targets []Target
	// QPS is the aggregate open-loop request rate (required, > 0).
	QPS float64
	// Requests is the total request count. Zero derives it from
	// QPS*Duration; one of the two must be set.
	Requests int
	// Duration is the run length used when Requests is zero.
	Duration time.Duration
	// Workers is the sender-pool width (default 16). It bounds in-flight
	// requests, not the rate: when all workers are busy the schedule slips
	// and the slip is charged to latency.
	Workers int
	// Archetype restricts generation to one scenario archetype ("" cycles
	// all of them; see unimem.ScenarioArchetypes).
	Archetype string
	// Scenarios is the number of distinct scenarios generated per
	// archetype (default 4); requests cycle over the resulting bodies.
	Scenarios int
	// Seed drives deterministic scenario generation (default 1).
	Seed uint64
	// Strategy is the placement strategy each request runs under (default
	// xmem — a cached strategy, so repeat traffic can hit).
	Strategy string
	// Ranks overrides each scenario's world size (0: as generated).
	Ranks int
	// Platform is the platform name sent with each request (default "a").
	Platform string
	// Timeout bounds each request (default 60s).
	Timeout time.Duration
	// Client overrides the HTTP client (default: a fresh client with
	// Timeout). Useful for tests injecting a transport.
	Client *http.Client
	// Logf receives progress lines (nil: silent).
	Logf func(format string, args ...interface{})
}

// NodeStats is one executing node's share of the run, keyed by the
// X-Unimem-Node response header (so a forwarded request is credited to
// the node that executed it, not the one that proxied it).
type NodeStats struct {
	Requests int `json:"requests"`
	Hits     int `json:"hits"`
}

// Report is the run's result document.
type Report struct {
	// Targets are the node base URLs requests were sent to.
	Targets []string `json:"targets"`
	// Strategy/Archetype/Scenarios/Seed echo the request population.
	Strategy  string `json:"strategy"`
	Archetype string `json:"archetype,omitempty"`
	Scenarios int    `json:"scenarios"`
	Seed      uint64 `json:"seed"`
	// Requests is the number sent; Errors counts transport failures and
	// non-200 responses (error responses still contribute latency).
	Requests int `json:"requests"`
	Errors   int `json:"errors"`
	// Hits / HitRate count responses served from the run cache.
	Hits    int     `json:"hits"`
	HitRate float64 `json:"hit_rate"`
	// TargetQPS is the configured rate; AchievedQPS is requests divided
	// by the span from the first scheduled fire to the last completion.
	TargetQPS   float64 `json:"target_qps"`
	AchievedQPS float64 `json:"achieved_qps"`
	DurationNS  int64   `json:"duration_ns"`
	// Latency quantiles in microseconds, measured from each request's
	// scheduled fire time (open-loop; includes scheduling slip).
	P50US  float64 `json:"p50_us"`
	P99US  float64 `json:"p99_us"`
	P999US float64 `json:"p999_us"`
	MaxUS  float64 `json:"max_us"`
	// PerNode splits the run by executing node.
	PerNode map[string]NodeStats `json:"per_node"`
}

// runBody mirrors serve's /run request shape (platform as a bare string,
// an inline scenario workload) without importing the serve package.
type runBody struct {
	Platform string `json:"platform"`
	Workload struct {
		Scenario *unimem.WorkloadSpec `json:"scenario"`
	} `json:"workload"`
	Strategy string `json:"strategy"`
	Seed     uint64 `json:"seed,omitempty"`
	Ranks    int    `json:"ranks,omitempty"`
}

// runReply is the slice of serve's /run response this package reads.
type runReply struct {
	CacheHit bool   `json:"cache_hit"`
	Error    string `json:"error"`
}

// Bodies generates the deterministic request-body population for cfg:
// Scenarios specs per selected archetype, marshaled once. Exported so the
// serve benchmark can pre-warm a cluster with the exact population a
// measured run will replay.
func Bodies(cfg Config) ([][]byte, error) {
	archetypes := unimem.ScenarioArchetypes()
	if cfg.Archetype != "" {
		want := unimem.ScenarioArchetype(strings.ToLower(strings.TrimSpace(cfg.Archetype)))
		found := false
		for _, a := range archetypes {
			if a == want {
				archetypes = []unimem.ScenarioArchetype{a}
				found = true
				break
			}
		}
		if !found {
			names := make([]string, len(archetypes))
			for i, a := range archetypes {
				names[i] = string(a)
			}
			return nil, fmt.Errorf("unknown archetype %q (want one of %s)",
				cfg.Archetype, strings.Join(names, ", "))
		}
	}
	perArch := cfg.Scenarios
	if perArch <= 0 {
		perArch = 4
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	strategy := cfg.Strategy
	if strategy == "" {
		strategy = "xmem"
	}
	platform := cfg.Platform
	if platform == "" {
		platform = "a"
	}
	var bodies [][]byte
	for _, a := range archetypes {
		for i := 0; i < perArch; i++ {
			spec, err := unimem.GenerateScenario(a, seed+uint64(i))
			if err != nil {
				return nil, fmt.Errorf("generating %s scenario %d: %w", a, i, err)
			}
			var rb runBody
			rb.Platform = platform
			rb.Workload.Scenario = spec
			rb.Strategy = strategy
			rb.Seed = seed
			rb.Ranks = cfg.Ranks
			b, err := json.Marshal(rb)
			if err != nil {
				return nil, err
			}
			bodies = append(bodies, b)
		}
	}
	return bodies, nil
}

// Run executes one load run and returns its report. The context cancels
// scheduling: requests not yet fired are dropped (they do not count as
// errors), in-flight ones finish.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	if len(cfg.Targets) == 0 {
		return nil, fmt.Errorf("loadgen: at least one target required")
	}
	if cfg.QPS <= 0 {
		return nil, fmt.Errorf("loadgen: QPS must be > 0 (got %g)", cfg.QPS)
	}
	total := cfg.Requests
	if total <= 0 {
		if cfg.Duration <= 0 {
			return nil, fmt.Errorf("loadgen: set Requests or Duration")
		}
		total = int(cfg.QPS * cfg.Duration.Seconds())
		if total < 1 {
			total = 1
		}
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = 16
	}
	if workers > total {
		workers = total
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...interface{}) {}
	}
	client := cfg.Client
	if client == nil {
		timeout := cfg.Timeout
		if timeout <= 0 {
			timeout = 60 * time.Second
		}
		client = &http.Client{Timeout: timeout}
	}

	bodies, err := Bodies(cfg)
	if err != nil {
		return nil, err
	}
	targets := make([]Target, len(cfg.Targets))
	for i, t := range cfg.Targets {
		targets[i] = t
		targets[i].Base = strings.TrimRight(strings.TrimSpace(t.Base), "/")
		if targets[i].Name == "" {
			targets[i].Name = targets[i].Base
		}
	}

	logf("loadgen: %d requests at %.1f QPS over %d target(s), %d bodies, %d workers",
		total, cfg.QPS, len(targets), len(bodies), workers)

	interval := time.Duration(float64(time.Second) / cfg.QPS)
	start := time.Now()

	// Workers claim request indices off a shared counter; each index has a
	// fixed fire time on the open-loop schedule.
	var next int64
	type shard struct {
		latNS   []int64
		errs    int
		hits    int
		perNode map[string]NodeStats
	}
	shards := make([]shard, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(sh *shard) {
			defer wg.Done()
			sh.perNode = map[string]NodeStats{}
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= total {
					return
				}
				fire := start.Add(time.Duration(i) * interval)
				if d := time.Until(fire); d > 0 {
					select {
					case <-time.After(d):
					case <-ctx.Done():
						return
					}
				} else if ctx.Err() != nil {
					return
				}
				tgt := targets[i%len(targets)]
				hit, node, err := fireOne(ctx, client, tgt, bodies[i%len(bodies)])
				// Open-loop latency: charged from the scheduled fire time.
				sh.latNS = append(sh.latNS, time.Since(fire).Nanoseconds())
				if node == "" {
					node = tgt.Name
				}
				ns := sh.perNode[node]
				ns.Requests++
				if err != nil {
					sh.errs++
				} else if hit {
					sh.hits++
					ns.Hits++
				}
				sh.perNode[node] = ns
			}
		}(&shards[w])
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := &Report{
		Strategy:   cfg.Strategy,
		Archetype:  cfg.Archetype,
		Seed:       cfg.Seed,
		Scenarios:  len(bodies),
		TargetQPS:  cfg.QPS,
		DurationNS: elapsed.Nanoseconds(),
		PerNode:    map[string]NodeStats{},
	}
	if rep.Strategy == "" {
		rep.Strategy = "xmem"
	}
	if rep.Seed == 0 {
		rep.Seed = 1
	}
	for _, t := range targets {
		rep.Targets = append(rep.Targets, t.Base)
	}
	var lat []int64
	for i := range shards {
		sh := &shards[i]
		lat = append(lat, sh.latNS...)
		rep.Errors += sh.errs
		rep.Hits += sh.hits
		for node, ns := range sh.perNode {
			agg := rep.PerNode[node]
			agg.Requests += ns.Requests
			agg.Hits += ns.Hits
			rep.PerNode[node] = agg
		}
	}
	rep.Requests = len(lat)
	if rep.Requests > 0 {
		rep.HitRate = float64(rep.Hits) / float64(rep.Requests)
		if secs := elapsed.Seconds(); secs > 0 {
			rep.AchievedQPS = float64(rep.Requests) / secs
		}
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		q := func(p float64) float64 {
			return float64(lat[int(p*float64(len(lat)-1))]) / 1e3
		}
		rep.P50US, rep.P99US, rep.P999US = q(0.50), q(0.99), q(0.999)
		rep.MaxUS = float64(lat[len(lat)-1]) / 1e3
	}
	logf("loadgen: %d requests in %v (%.1f QPS achieved), %d errors, hit rate %.1f%%, p50 %.0fµs p99 %.0fµs p999 %.0fµs",
		rep.Requests, elapsed.Round(time.Millisecond), rep.AchievedQPS,
		rep.Errors, 100*rep.HitRate, rep.P50US, rep.P99US, rep.P999US)
	return rep, nil
}

// fireOne sends one /run request and reports whether it was a cache hit
// and which node executed it.
func fireOne(ctx context.Context, client *http.Client, tgt Target, body []byte) (hit bool, node string, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, tgt.Base+"/run", bytes.NewReader(body))
	if err != nil {
		return false, "", err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return false, "", err
	}
	defer resp.Body.Close()
	node = resp.Header.Get(nodeHeader)
	b, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return false, node, err
	}
	if resp.StatusCode != http.StatusOK {
		return false, node, fmt.Errorf("%s: status %d: %s", tgt.Name, resp.StatusCode, truncate(b, 200))
	}
	var rr runReply
	if err := json.Unmarshal(b, &rr); err != nil {
		return false, node, fmt.Errorf("%s: decoding response: %w", tgt.Name, err)
	}
	if rr.Error != "" {
		return false, node, fmt.Errorf("%s: job error: %s", tgt.Name, rr.Error)
	}
	return rr.CacheHit, node, nil
}

func truncate(b []byte, n int) string {
	if len(b) <= n {
		return string(b)
	}
	return string(b[:n]) + "..."
}
