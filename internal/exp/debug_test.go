package exp

import (
	"os"
	"sort"
	"testing"

	"unimem/internal/core"
	"unimem/internal/machine"
	"unimem/internal/workloads"
)

// TestDebugSPLat4 dumps Unimem's decision internals for SP under 4x
// latency NVM: which chunks the plan wants in DRAM and what strategy won.
// It is a development aid kept as a regression log; it has no assertions
// beyond successful execution.
func TestDebugSPLat4(t *testing.T) {
	s := NewSuite()
	var m *machine.Machine
	if os.Getenv("DBG_CFG") == "halfbw" {
		m = machine.PlatformA().WithNVMBandwidthFraction(0.5)
	} else {
		m = machine.PlatformA().WithNVMLatencyFactor(4)
	}
	name := os.Getenv("DBG_WL")
	var w *workloads.Workload
	switch name {
	case "", "SP":
		w = workloads.NewSP("C", 4)
	case "Nek5000":
		w = workloads.NewNek5000("C", 4)
	default:
		w = workloads.NewNPB(name, "C", 4)
	}
	cfg := s.unimemConfig(m)
	if os.Getenv("DBG_STEP2") != "" {
		cfg.EnableInitial = false
		cfg.EnablePartition = false
	}
	res, col, err := s.runUnimem(w, m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	dm := dramMachineFor(m)
	dres, err := s.runStatic(w, dm, "dram-only", nil)
	if err != nil {
		t.Fatal(err)
	}
	nres, err := s.runStatic(w, m, "nvm-only", nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("SP 4xlat: dram=%.0fms nvm=%.2fx unimem=%.2fx migrations(rank0)=%d",
		float64(dres.TimeNS)/1e6, norm(nres.TimeNS, dres.TimeNS), norm(res.TimeNS, dres.TimeNS),
		res.Ranks[0].Migrations.Migrations)
	var r0 *core.Runtime
	for _, r := range col.Runtimes {
		st := "nil"
		if p := r.Plan(); p != nil {
			st = string(p.Strategy)
		}
		t.Logf("rank %d: decisions=%d strategy=%s migrations=%d movedMB=%d failed=%d resident=%v",
			r.Rank(), r.Decisions, st,
			res.Ranks[r.Rank()].Migrations.Migrations,
			res.Ranks[r.Rank()].Migrations.BytesMigrated>>20,
			res.Ranks[r.Rank()].Migrations.FailedNoSpace,
			r.DRAMResidents())
		if r.Rank() == 0 {
			r0 = r
		}
	}
	plan := r0.Plan()
	if plan == nil {
		t.Fatal("no plan")
	}
	for _, c := range r0.Candidates {
		t.Logf("candidate %s: predicted=%.1fms schedule=%d", c.Strategy, c.PredictedIterNS/1e6, len(c.Schedule))
	}
	t.Logf("strategy=%s predicted=%.1fms adoption=%d schedule=%d decisions=%d",
		plan.Strategy, plan.PredictedIterNS/1e6, len(plan.Adoption), len(plan.Schedule), r0.Decisions)
	for p, set := range plan.Desired {
		names := make([]string, 0, len(set))
		for n := range set {
			names = append(names, n)
		}
		sort.Strings(names)
		t.Logf("phase %d desired DRAM: %v", p, names)
		if plan.Strategy == "cross-phase-global" {
			break
		}
	}
	for _, mv := range plan.Adoption {
		t.Logf("adoption: %v", mv)
	}
	for _, mv := range plan.Schedule {
		t.Logf("schedule: %v", mv)
	}
}
