package serve

import (
	"runtime/debug"
	"sync"
)

// Version returns the build's version string for /healthz, /stats and the
// build-info metric: the main module version when the binary was built
// from a tagged module, otherwise the VCS revision (12 chars, "+dirty"
// when the tree was modified), otherwise "dev". Computed once.
var Version = sync.OnceValue(func() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "dev"
	}
	if v := bi.Main.Version; v != "" && v != "(devel)" {
		return v
	}
	var rev string
	var dirty bool
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if rev == "" {
		return "dev"
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if dirty {
		rev += "+dirty"
	}
	return rev
})

// goVersion is the toolchain that built the binary.
var goVersion = sync.OnceValue(func() string {
	if bi, ok := debug.ReadBuildInfo(); ok && bi.GoVersion != "" {
		return bi.GoVersion
	}
	return "unknown"
})
