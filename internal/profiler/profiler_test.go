package profiler

import (
	"testing"

	"unimem/internal/machine"
	"unimem/internal/workloads"
)

// TestAnalyticModelAgreesWithCache replays the CG and MG reference streams
// through the LLC simulator and checks that the workloads' declared
// post-cache access counts agree with real cache behaviour within a factor
// of 2 for every significant stream/stencil object. (Pointer chases over
// huge objects agree trivially; small cache-resident objects sit on the
// attenuation floor and are excluded via the minDeclared threshold.)
func TestAnalyticModelAgreesWithCache(t *testing.T) {
	for _, w := range []*workloads.Workload{
		workloads.NewCG("C", 4),
		workloads.NewMG("C", 4),
	} {
		rep, err := Validate(w, Options{SampleRefs: 1 << 18})
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Checks) == 0 {
			t.Fatalf("%s: no checks produced", w.Name)
		}
		llc2x := int64(40 << 20)
		for _, c := range rep.Checks {
			if c.DeclaredAccesses < 200_000 {
				continue
			}
			if c.Pattern == machine.Random || c.Pattern == machine.PointerChase {
				// Irregular patterns' miss ratios depend on replay length
				// vs. set conflicts; the stream/stencil agreement is the
				// load-bearing check (they carry the bandwidth model).
				continue
			}
			if w.Object(c.Object).Size <= llc2x {
				// Cache-resident objects sit on the analytic attenuation
				// floor, and comm buffers deliberately declare full
				// (no-reuse) traffic because they carry fresh data every
				// iteration — both regimes where the analytic model
				// intentionally departs from a pure trace replay.
				continue
			}
			if r := c.Ratio(); r < 0.5 || r > 2.0 {
				t.Errorf("%s/%s/%s (%v): measured/declared = %.2f",
					w.Name, c.Phase, c.Object, c.Pattern, r)
			}
		}
	}
}

// TestWorstDeviationReported checks the report helper.
func TestWorstDeviationReported(t *testing.T) {
	rep := &Report{Checks: []ObjectCheck{
		{Object: "close", DeclaredAccesses: 1e6, MeasuredMisses: 1.05e6},
		{Object: "far", DeclaredAccesses: 1e6, MeasuredMisses: 3e6},
		{Object: "tiny", DeclaredAccesses: 10, MeasuredMisses: 100},
	}}
	worst, dev := rep.Worst(1000)
	if worst.Object != "far" {
		t.Fatalf("worst = %s", worst.Object)
	}
	if dev < 1.9 || dev > 2.1 {
		t.Fatalf("deviation %v", dev)
	}
}

// TestNominalRefsInverse checks the attenuation inversion.
func TestNominalRefsInverse(t *testing.T) {
	llc := int64(20 << 20)
	size := int64(120 << 20)
	att := float64(size-llc) / float64(size)
	declared := int64(1e6)
	nom := nominalRefs(declared, size, llc, machine.Random)
	back := int64(float64(nom) * att)
	if diff := back - declared; diff < -2 || diff > 2 {
		t.Fatalf("inversion off by %d", diff)
	}
	// Floor case.
	if nominalRefs(100, 1<<20, llc, machine.Random) != 2000 {
		t.Fatalf("floored inversion = %d", nominalRefs(100, 1<<20, llc, machine.Random))
	}
}
