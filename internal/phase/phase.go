// Package phase implements Unimem's phase abstraction (§2.1): the
// decomposition of an iterative MPI application into computation phases
// delineated by MPI operations and communication phases that are MPI
// operations, identified transparently through the PMPI interposition
// counter, plus the per-phase bookkeeping the runtime needs — profiles,
// reference maps, and the inter-phase dependence analysis that bounds how
// early a proactive migration may be triggered (Fig. 5).
package phase

import (
	"fmt"

	"unimem/internal/counters"
	"unimem/internal/machine"
)

// Kind distinguishes computation phases from MPI communication phases.
type Kind int

const (
	// Compute is code between MPI operations.
	Compute Kind = iota
	// Comm is an MPI collective, blocking point-to-point or completion op.
	Comm
)

// String returns "compute" or "comm".
func (k Kind) String() string {
	if k == Compute {
		return "compute"
	}
	return "comm"
}

// Ref describes one data object's main-memory traffic in one execution of a
// phase on one rank (ground truth from the workload; the runtime only ever
// sees its sampled image).
type Ref struct {
	Object   string
	Accesses int64
	ReadFrac float64
	Pattern  machine.Pattern
}

// Info is the runtime's record of one phase within the iteration structure.
type Info struct {
	ID   int
	Name string
	Kind Kind
	// MPIOp is the delimiting MPI operation observed through PMPI (empty
	// for compute phases).
	MPIOp string

	// Profile is the most recent sampled profile of the phase (nil until
	// the phase has been profiled).
	Profile *counters.PhaseSample
	// ProfiledNS is the duration observed while profiling.
	ProfiledNS float64
	// LastNS is the most recent measured duration (updated every
	// iteration; the variation monitor compares it against DecisionNS).
	LastNS float64
	// DecisionNS is the duration measured in the iteration whose profile
	// produced the current placement decision.
	DecisionNS float64

	// refs is the set of chunk names the profile observed traffic for.
	refs map[string]bool
}

// References reports whether the phase's profile observed traffic to the
// named chunk.
func (p *Info) References(chunk string) bool { return p.refs[chunk] }

// RefNames returns the chunk names referenced by the phase (unordered).
func (p *Info) RefNames() []string {
	out := make([]string, 0, len(p.refs))
	for n := range p.refs {
		out = append(out, n)
	}
	return out
}

// SetProfile installs a sampled profile and rebuilds the reference set.
func (p *Info) SetProfile(ps *counters.PhaseSample) {
	p.Profile = ps
	p.ProfiledNS = ps.DurNS
	p.refs = make(map[string]bool, len(ps.Objects))
	for _, o := range ps.Objects {
		p.refs[o.Chunk] = true
	}
}

// Registry tracks the iteration's phase structure. The first iteration
// after unimem_start defines the phase list; subsequent iterations are
// matched positionally, with iteration boundaries detected when the first
// phase's call site recurs — the PMPI global-counter scheme of Fig. 7.
type Registry struct {
	phases []*Info
	// pos is the index of the currently open phase (-1 between phases).
	pos int
	// posClosed is the index of the most recently closed phase.
	posClosed int
	// iter counts completed iterations since Start.
	iter   int
	sealed bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{pos: -1, posClosed: -1}
}

// Phases returns the phase list in iteration order.
func (r *Registry) Phases() []*Info { return r.phases }

// Len returns the number of phases per iteration.
func (r *Registry) Len() int { return len(r.phases) }

// Iter returns the number of completed iterations.
func (r *Registry) Iter() int { return r.iter }

// Sealed reports whether the first iteration completed, fixing the
// structure.
func (r *Registry) Sealed() bool { return r.sealed }

// Begin records the start of the next phase. name identifies the call
// site; during the first iteration it registers new phases, afterwards it
// matches them positionally and validates that the structure is stable
// (Unimem targets applications with an iterative structure, §2.1). It
// returns the phase record and whether this Begin started a new iteration.
func (r *Registry) Begin(name string, kind Kind, mpiOp string) (*Info, bool) {
	if r.pos != -1 {
		panic(fmt.Sprintf("phase: Begin(%q) while phase %d is open", name, r.pos))
	}
	if !r.sealed {
		if len(r.phases) > 0 && name == r.phases[0].Name {
			// The first call site recurred: iteration 1 is complete and
			// the structure is now fixed.
			r.sealed = true
			r.iter = 1
		} else {
			p := &Info{ID: len(r.phases), Name: name, Kind: kind, MPIOp: mpiOp}
			r.phases = append(r.phases, p)
			r.pos = p.ID
			return p, len(r.phases) == 1
		}
	}
	next := (r.posClosed + 1) % len(r.phases)
	p := r.phases[next]
	if p.Name != name {
		panic(fmt.Sprintf("phase: structure changed: expected %q at position %d, got %q", p.Name, next, name))
	}
	r.pos = next
	return p, next == 0
}

// End records the end of the currently open phase with its measured
// duration and returns its record.
func (r *Registry) End(durNS float64) *Info {
	if r.pos == -1 {
		panic("phase: End without Begin")
	}
	p := r.phases[r.pos]
	p.LastNS = durNS
	if r.sealed && r.pos == len(r.phases)-1 {
		r.iter++
	}
	r.posClosed = r.pos
	r.pos = -1
	return p
}

// FastForward advances the iteration counter by n without executing any
// phases — the registry-side half of the analytic fast path, called when
// the harness skips a stable window. It is only valid between
// iterations (no phase open) on a sealed structure; positional matching
// is untouched, so the next Begin continues the cycle exactly where a
// simulated iteration would have.
func (r *Registry) FastForward(n int) {
	if n < 0 {
		panic("phase: negative fast-forward")
	}
	if !r.sealed || r.pos != -1 {
		panic("phase: FastForward mid-phase or before the structure sealed")
	}
	r.iter += n
}

// IterDurNS returns the sum of the most recent measured durations across
// all phases — the runtime's estimate of one iteration's span.
func (r *Registry) IterDurNS() float64 {
	var s float64
	for _, p := range r.phases {
		if p.LastNS > 0 {
			s += p.LastNS
		} else {
			s += p.ProfiledNS
		}
	}
	return s
}

// OverlapWindowNS implements the mem_comp_overlap computation of Fig. 5:
// the amount of application execution time available to hide a migration of
// chunk targeted at phase target — the span from the end of the last
// preceding phase that references the chunk (data dependence) to the start
// of the target phase, walking the cyclic phase order backwards.
//
// When no other phase references the chunk, the window is the whole rest of
// the iteration.
func (r *Registry) OverlapWindowNS(chunk string, target int) float64 {
	n := len(r.phases)
	if n == 0 {
		return 0
	}
	var window float64
	for step := 1; step < n; step++ {
		j := ((target-step)%n + n) % n
		p := r.phases[j]
		if p.References(chunk) {
			break
		}
		d := p.ProfiledNS
		if p.LastNS > 0 {
			d = p.LastNS
		}
		window += d
	}
	return window
}

// TriggerPhase returns the phase index at whose start a migration of chunk
// targeted at phase target should be enqueued: the earliest phase after the
// last preceding reference (the yellow arrow of Fig. 5).
func (r *Registry) TriggerPhase(chunk string, target int) int {
	n := len(r.phases)
	if n == 0 {
		return target
	}
	trigger := target
	for step := 1; step < n; step++ {
		j := ((target-step)%n + n) % n
		if r.phases[j].References(chunk) {
			break
		}
		trigger = j
	}
	return trigger
}
