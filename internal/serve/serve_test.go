package serve_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"unimem"
	"unimem/internal/scenario"
	"unimem/internal/serve"
)

// newTestServer builds a serve.Server plus an httptest front end.
func newTestServer(t *testing.T, cfg serve.Config) (*serve.Server, *httptest.Server) {
	t.Helper()
	srv, err := serve.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

// postJSON posts body to url and decodes the response into out (when out
// is non-nil), failing the test on transport errors.
func postJSON(t *testing.T, url string, body any, out any) *http.Response {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s response: %v", url, err)
		}
	}
	return resp
}

// getStats fetches /stats.
func getStats(t *testing.T, base string) serve.StatsResponse {
	t.Helper()
	resp, err := http.Get(base + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st serve.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// cgRun builds the canonical small /run request.
func cgRun(strategy string) serve.RunRequest {
	return serve.RunRequest{
		Platform: serve.PlatformSpec{Name: "a", NVMBandwidthFraction: 0.5},
		JobReq: serve.JobReq{
			Workload: serve.WorkloadReq{NPB: &serve.NPBReq{Name: "CG", Class: "A", Ranks: 2}},
			Strategy: strategy,
		},
	}
}

// TestServeRunConcurrentClients hammers one server from many clients
// under -race: every identical request must observe the identical
// deterministic time, the memoized strategy must execute exactly once,
// and the /stats snapshot must stay coherent throughout.
func TestServeRunConcurrentClients(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{Quick: true, Workers: 2})

	var ref serve.RunResponse
	if resp := postJSON(t, ts.URL+"/run", cgRun("xmem"), &ref); resp.StatusCode != http.StatusOK {
		t.Fatalf("seed request status %d", resp.StatusCode)
	}
	if ref.TimeNS <= 0 || ref.Error != "" {
		t.Fatalf("seed request outcome: %+v", ref.OutcomeJSON)
	}

	const clients = 8
	var wg sync.WaitGroup
	times := make([]int64, clients)
	errs := make([]error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			// Even clients repeat the memoized request; odd clients
			// interleave /stats probes with a distinct strategy.
			req := cgRun("xmem")
			if c%2 == 1 {
				req = cgRun("slowest-only")
			}
			data, _ := json.Marshal(req)
			resp, err := http.Post(ts.URL+"/run", "application/json", bytes.NewReader(data))
			if err != nil {
				errs[c] = err
				return
			}
			defer resp.Body.Close()
			var rr serve.RunResponse
			if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
				errs[c] = err
				return
			}
			if rr.Error != "" {
				errs[c] = fmt.Errorf("run error: %s", rr.Error)
				return
			}
			times[c] = rr.TimeNS
		}(c)
	}
	wg.Wait()
	for c, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", c, err)
		}
	}
	var slowest int64
	for c := 0; c < clients; c++ {
		if c%2 == 0 && times[c] != ref.TimeNS {
			t.Errorf("client %d observed %d ns, want the deterministic %d ns", c, times[c], ref.TimeNS)
		}
		if c%2 == 1 {
			slowest = times[c]
		}
	}
	for c := 0; c < clients; c++ {
		if c%2 == 1 && times[c] != slowest {
			t.Errorf("slowest-only clients disagree: %d vs %d ns", times[c], slowest)
		}
	}

	st := getStats(t, ts.URL)
	// Two distinct cached runs total (xmem, slowest-only on one
	// workload+platform); everything else must have been a hit.
	if st.Cache.Misses != 2 {
		t.Errorf("cache executed %d runs, want 2 (one per distinct request)", st.Cache.Misses)
	}
	if st.Cache.Hits != clients-1 {
		t.Errorf("cache hits = %d, want %d", st.Cache.Hits, clients-1)
	}
	if len(st.Sessions) != 1 {
		t.Errorf("pool holds %d sessions, want 1 (all clients share one platform)", len(st.Sessions))
	} else {
		if st.Sessions[0].Calibration.CFBw <= 0 || st.Sessions[0].Calibration.BWPeakBps <= 0 {
			t.Errorf("session calibration not exposed: %+v", st.Sessions[0].Calibration)
		}
		if st.Sessions[0].Runs != clients+1 {
			t.Errorf("session runs = %d, want %d", st.Sessions[0].Runs, clients+1)
		}
	}
}

// TestServePoolShardsByFingerprint: different spellings of a physically
// identical platform share one pooled session; a physically different
// parameterization gets its own.
func TestServePoolShardsByFingerprint(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{Quick: true})
	spellings := []serve.PlatformSpec{
		{Name: "a"},
		{Name: "A"},
		{Name: " a ", NVMLatencyFactor: 1}, // factor 1 is the identity
	}
	for _, p := range spellings {
		req := cgRun("slowest-only")
		req.Platform = p
		if resp := postJSON(t, ts.URL+"/run", req, &serve.RunResponse{}); resp.StatusCode != http.StatusOK {
			t.Fatalf("platform %+v: status %d", p, resp.StatusCode)
		}
	}
	if st := getStats(t, ts.URL); len(st.Sessions) != 1 {
		t.Fatalf("pool holds %d sessions for one physical platform, want 1", len(st.Sessions))
	}
	req := cgRun("slowest-only")
	req.Platform = serve.PlatformSpec{Name: "a", NVMLatencyFactor: 4}
	postJSON(t, ts.URL+"/run", req, &serve.RunResponse{})
	if st := getStats(t, ts.URL); len(st.Sessions) != 2 {
		t.Fatalf("pool holds %d sessions after a distinct parameterization, want 2", len(st.Sessions))
	}
}

// TestServeBatchOrdered: /batch streams NDJSON outcomes in job order
// with per-job results, whatever the completion interleaving.
func TestServeBatchOrdered(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{Quick: true, Workers: 4})
	var jobs []serve.JobReq
	for _, st := range []string{"fastest-only", "slowest-only", "xmem", "unimem", "hint-density"} {
		jobs = append(jobs, serve.JobReq{
			Workload: serve.WorkloadReq{NPB: &serve.NPBReq{Name: "CG", Class: "A", Ranks: 2}},
			Strategy: st,
		})
	}
	body, _ := json.Marshal(serve.BatchRequest{Platform: serve.PlatformSpec{Name: "a"}, Jobs: jobs})
	resp, err := http.Post(ts.URL+"/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q, want application/x-ndjson", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	i := 0
	for sc.Scan() {
		var row serve.OutcomeJSON
		if err := json.Unmarshal(sc.Bytes(), &row); err != nil {
			t.Fatalf("row %d: %v", i, err)
		}
		if row.Index != i {
			t.Fatalf("row %d carries index %d; stream must be in job order", i, row.Index)
		}
		if row.Error != "" {
			t.Fatalf("row %d: %s", i, row.Error)
		}
		if row.TimeNS <= 0 {
			t.Fatalf("row %d: no time", i)
		}
		if jobs[i].Strategy == "unimem" && len(row.Tiers) == 0 {
			t.Errorf("unimem row %d carries no tier annotation", i)
		}
		i++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if i != len(jobs) {
		t.Fatalf("stream delivered %d rows, want %d", i, len(jobs))
	}
}

// TestServeBatchCancellation: a client that disconnects mid-/batch
// cancels the request context, which must abort the in-flight simulated
// worlds promptly and run the batch handler to completion — observable as
// the /stats in-flight gauge draining back to zero long before the
// full-length runs could have finished. The server must stay healthy for
// subsequent requests throughout.
func TestServeBatchCancellation(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{Workers: 2}) // no Quick: real run lengths
	// The long jobs are 4000-iteration Unimem runs (as inline scenario
	// specs — the declarative schema captures the built-in exactly): a
	// batch of 7 on 2 workers takes minutes uncancelled, so only a real
	// mid-run world abort can drain the handler before the deadline.
	slow := unimem.NewNPB("CG", "C", 4)
	cp := *slow
	cp.Iterations = 4000
	spec, err := scenario.FromWorkload(&cp)
	if err != nil {
		t.Fatal(err)
	}
	long := serve.JobReq{Workload: serve.WorkloadReq{Scenario: spec}, Strategy: "unimem"}
	jobs := []serve.JobReq{{
		Workload: serve.WorkloadReq{NPB: &serve.NPBReq{Name: "CG", Class: "A", Ranks: 2}},
		Strategy: "slowest-only",
	}}
	for i := 0; i < 7; i++ {
		jobs = append(jobs, long)
	}
	body, _ := json.Marshal(serve.BatchRequest{Platform: serve.PlatformSpec{Name: "a"}, Jobs: jobs})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/batch", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	start := time.Now()
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// Read the first streamed row, then walk away mid-batch.
	br := bufio.NewReader(resp.Body)
	if _, err := br.ReadString('\n'); err != nil {
		t.Fatalf("reading first row: %v", err)
	}
	cancel()
	io.Copy(io.Discard, br) // drains whatever arrives until the server notices
	resp.Body.Close()

	// The batch handler must drain (in-flight gauge back to zero) well
	// before the uncancelled fleet could finish.
	deadline := time.Now().Add(90 * time.Second)
	for {
		if st := getStats(t, ts.URL); st.InFlight == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("batch handler still in flight 90s after client disconnect; worlds did not abort")
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Logf("cancelled batch drained in %v", time.Since(start))

	// The server must stay responsive after the abort.
	var rr serve.RunResponse
	if resp := postJSON(t, ts.URL+"/run", cgRun("slowest-only"), &rr); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-cancel /run status %d", resp.StatusCode)
	}
	if rr.Error != "" || rr.TimeNS <= 0 {
		t.Fatalf("post-cancel /run outcome: %+v", rr.OutcomeJSON)
	}
}

// TestServeFleetDeterministic: /fleet rows carry archetype/scenario/seed
// annotations, arrive in deterministic order, and repeat byte-identically
// for the same request.
func TestServeFleetDeterministic(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{Quick: true, Workers: 2})
	freq := serve.FleetRequest{
		Platform:   serve.PlatformSpec{Name: "a", NVMLatencyFactor: 4},
		Archetype:  "stable",
		Count:      2,
		Seed:       7,
		Strategies: []string{"slowest-only", "unimem"},
	}
	fetch := func() []serve.OutcomeJSON {
		body, _ := json.Marshal(freq)
		resp, err := http.Post(ts.URL+"/fleet", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			msg, _ := io.ReadAll(resp.Body)
			t.Fatalf("/fleet status %d: %s", resp.StatusCode, msg)
		}
		var rows []serve.OutcomeJSON
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			var row serve.OutcomeJSON
			if err := json.Unmarshal(sc.Bytes(), &row); err != nil {
				t.Fatal(err)
			}
			rows = append(rows, row)
		}
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
		return rows
	}
	first := fetch()
	if len(first) != 4 { // 2 scenarios x 2 strategies
		t.Fatalf("fleet produced %d rows, want 4", len(first))
	}
	for i, row := range first {
		if row.Index != i {
			t.Fatalf("row %d carries index %d", i, row.Index)
		}
		if row.Archetype != "stable" || row.Scenario == "" || row.Seed == 0 {
			t.Fatalf("row %d missing fleet annotations: %+v", i, row)
		}
		if row.Error != "" {
			t.Fatalf("row %d: %s", i, row.Error)
		}
	}
	second := fetch()
	// The repeat fetch is served from the run cache, so its rows carry
	// cache_hit=true — the only field allowed to differ.
	norm := func(rows []serve.OutcomeJSON) []serve.OutcomeJSON {
		out := append([]serve.OutcomeJSON(nil), rows...)
		for i := range out {
			out[i].CacheHit = false
		}
		return out
	}
	if !reflect.DeepEqual(norm(first), norm(second)) {
		t.Error("repeated /fleet request produced different rows; fleet generation is not deterministic")
	}
}

// TestServeRestartWarmStart is the tentpole's restart contract: a new
// server over the same cache directory answers a previously-served
// request as a cache hit — same result, zero fresh executions.
func TestServeRestartWarmStart(t *testing.T) {
	dir := t.TempDir()
	cfg := serve.Config{Quick: true, CacheDir: dir}

	srv1, ts1 := newTestServer(t, cfg)
	var cold serve.RunResponse
	if resp := postJSON(t, ts1.URL+"/run", cgRun("xmem"), &cold); resp.StatusCode != http.StatusOK {
		t.Fatalf("cold run status %d", resp.StatusCode)
	}
	if cold.Error != "" || cold.TimeNS <= 0 {
		t.Fatalf("cold run outcome: %+v", cold.OutcomeJSON)
	}
	if st := getStats(t, ts1.URL); st.Cache.Misses == 0 {
		t.Fatal("cold run executed nothing?")
	}
	if err := srv1.Close(); err != nil {
		t.Fatalf("saving snapshot: %v", err)
	}
	ts1.Close()

	srv2, ts2 := newTestServer(t, cfg)
	if srv2.LoadedEntries() == 0 {
		t.Fatal("restarted server loaded no snapshot entries")
	}
	st := getStats(t, ts2.URL)
	if st.Snapshot == nil || st.Snapshot.LoadedEntries == 0 {
		t.Fatalf("/stats does not report the warm start: %+v", st.Snapshot)
	}
	if !strings.HasPrefix(st.Snapshot.Path, dir) {
		t.Errorf("snapshot path %q not under cache dir %q", st.Snapshot.Path, dir)
	}

	var warm serve.RunResponse
	if resp := postJSON(t, ts2.URL+"/run", cgRun("xmem"), &warm); resp.StatusCode != http.StatusOK {
		t.Fatalf("warm run status %d", resp.StatusCode)
	}
	if warm.TimeNS != cold.TimeNS {
		t.Errorf("warm result %d ns differs from cold %d ns", warm.TimeNS, cold.TimeNS)
	}
	after := getStats(t, ts2.URL)
	if after.Cache.Misses != 0 {
		t.Errorf("restarted server executed %d fresh runs for a persisted request, want 0", after.Cache.Misses)
	}
	if after.Cache.Hits < 1 {
		t.Errorf("restarted server recorded %d hits, want >= 1", after.Cache.Hits)
	}
}

// TestServeBadRequests: every malformed request is a 400 (or 405) with a
// JSON error naming the problem — the server never panics and never runs.
func TestServeBadRequests(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{Quick: true})
	post := func(path, body string) (int, string) {
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		msg, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(msg)
	}
	cases := []struct {
		name, path, body, wantInError string
	}{
		{"unknown platform", "/run", `{"platform":"pdp11","workload":{"npb":{"name":"CG"}},"strategy":"xmem"}`, "unknown name"},
		{"unknown kernel", "/run", `{"platform":"a","workload":{"npb":{"name":"ZZ"}},"strategy":"xmem"}`, "unknown kernel"},
		{"unknown strategy", "/run", `{"platform":"a","workload":{"npb":{"name":"CG"}},"strategy":"warp"}`, "unknown strategy"},
		{"no workload form", "/run", `{"platform":"a","workload":{},"strategy":"xmem"}`, "exactly one"},
		{"unknown field", "/run", `{"platform":"a","workloda":{}}`, "unknown field"},
		{"unknown platform field", "/run", `{"platform":{"name":"a","nvm_latency":4},"workload":{"npb":{"name":"CG"}},"strategy":"xmem"}`, "unknown field"},
		{"bad scenario", "/run", `{"platform":"a","workload":{"scenario":{"name":""}},"strategy":"xmem"}`, "name"},
		{"empty batch", "/batch", `{"platform":"a","jobs":[]}`, "empty"},
		{"bad batch job", "/batch", `{"platform":"a","jobs":[{"workload":{"npb":{"name":"CG"}},"strategy":"nope"}]}`, "jobs[0]"},
		{"bad archetype", "/fleet", `{"archetype":"weird"}`, "unknown"},
		{"oversized fleet", "/fleet", `{"count":1000}`, "limit"},
		{"negative ranks", "/run", `{"platform":"a","workload":{"npb":{"name":"CG"}},"strategy":"xmem","ranks":-1}`, "(got -1)"},
		{"oversized ranks", "/run", `{"platform":"a","workload":{"npb":{"name":"CG"}},"strategy":"xmem","ranks":100000}`, "rank limit"},
		{"oversized npb ranks", "/run", `{"platform":"a","workload":{"npb":{"name":"CG","ranks":100000}},"strategy":"xmem"}`, "rank limit"},
		{"oversized fleet strategies", "/fleet", `{"strategies":["xmem","xmem","xmem","xmem","xmem","xmem","xmem","xmem","xmem","xmem","xmem","xmem","xmem","xmem","xmem","xmem","xmem"]}`, "strategy limit"},
	}
	for _, tc := range cases {
		status, msg := post(tc.path, tc.body)
		if status != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", tc.name, status, msg)
		}
		if !strings.Contains(msg, tc.wantInError) {
			t.Errorf("%s: error %q does not name the problem (want %q)", tc.name, msg, tc.wantInError)
		}
	}
	resp, err := http.Get(ts.URL + "/run")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /run status %d, want 405", resp.StatusCode)
	}
}
