// Quickstart: describe a small iterative application with the public API,
// open a Session on the target machine, race the Unimem runtime against
// the DRAM-only and NVM-only baselines with one strategy-parameterized
// entry point, and print the normalized comparison plus the placement
// Unimem chose.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"unimem"
)

func main() {
	// An HMS whose NVM has half of DRAM's bandwidth, with 192 MiB of DRAM
	// per node — too small for all three objects below (3 x 96 MiB).
	m := unimem.PlatformA().
		WithNVMBandwidthFraction(0.5).
		WithDRAMCapacity(192 << 20)

	// The application: a field solver sweeping one array, gathering
	// through an index structure, and reducing a residual each iteration.
	app := unimem.NewApp("quickstart", 4, 40)
	app.Object("field", 96<<20, unimem.WithHint(2e6))
	app.Object("index", 96<<20, unimem.WithHint(4e5))
	app.Object("checkpoint", 96<<20) // touched rarely; should stay in NVM
	app.ComputePhase("sweep", 30e6,
		unimem.Stream("field", 2e6, 0.5),
		unimem.Chase("index", 4e5, 0))
	app.ComputePhase("snapshot", 2e6,
		unimem.Stream("checkpoint", 5e4, 1))
	app.CommPhase("residual", unimem.Allreduce, 64, 1e6)
	w := app.Build()

	// One session owns the calibration (measured once per platform) and a
	// cache of baseline runs; every policy is a Strategy value on the
	// same entry point.
	sess := unimem.New(m)
	ctx := context.Background()

	dram, err := sess.Run(ctx, w, unimem.DRAMOnly())
	must(err)
	nvm, err := sess.Run(ctx, w, unimem.SlowestOnly())
	must(err)
	uni, err := sess.Run(ctx, w, unimem.Unimem())
	must(err)

	norm := func(t int64) float64 { return float64(t) / float64(dram.Result.TimeNS) }
	fmt.Printf("%-10s %10s  %s\n", "config", "time", "vs DRAM-only")
	fmt.Printf("%-10s %8.1fms  %.2fx\n", "dram-only", float64(dram.Result.TimeNS)/1e6, 1.0)
	fmt.Printf("%-10s %8.1fms  %.2fx\n", "nvm-only", float64(nvm.Result.TimeNS)/1e6, norm(nvm.Result.TimeNS))
	fmt.Printf("%-10s %8.1fms  %.2fx\n\n", "unimem", float64(uni.Result.TimeNS)/1e6, norm(uni.Result.TimeNS))

	rt := uni.Runtimes[0] // rank order: index 0 is rank 0
	fmt.Printf("strategy: %s\n", rt.Plan().Strategy)
	fmt.Printf("rank 0 DRAM residents: %v\n", rt.DRAMResidents())
	fmt.Printf("migrations: %d (%d MiB), helper-thread overlap %.0f%%\n",
		uni.Result.Ranks[0].Migrations.Migrations,
		uni.Result.Ranks[0].Migrations.BytesMigrated>>20,
		rt.MoverStats().OverlapFrac()*100)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
