package exp

import (
	"unimem/internal/core"
	"unimem/internal/machine"
	"unimem/internal/workloads"
)

// Ablation evaluates the three model refinements this reproduction adds on
// top of the paper's literal formulas (EXPERIMENTS.md "Reproduction
// notes"), on the scenarios that motivated each:
//
//   - literal Eq. 3 (no MLP correction) on SP under 4x latency, where
//     pricing every access at full serialization misorders the knapsack;
//   - the naive per-move plan predictor (no helper-thread timeline) on BT
//     under 1/2 bandwidth, where FIFO queueing decides whether the local
//     rotation pays;
//   - no recurrence hysteresis on BT, where marginal candidates churn.
//
// Each row reports execution time normalized to DRAM-only, with the full
// runtime alongside each single-knob regression.
func (s *Suite) Ablation() (*Table, error) {
	t := &Table{
		ID:    "ablation",
		Title: "Model-refinement ablation (design choices from DESIGN.md)",
		Columns: []string{"Scenario", "NVM-only", "Unimem(full)",
			"literal Eq.3", "naive predictor", "no hysteresis"},
	}
	scenarios := []struct {
		name string
		w    *workloads.Workload
		m    *machine.Machine
	}{
		{"SP @4x lat", workloads.NewSP("C", s.Ranks), machine.PlatformA().WithNVMLatencyFactor(4)},
		{"BT @1/2 bw", workloads.NewBT("C", s.Ranks), machine.PlatformA().WithNVMBandwidthFraction(0.5)},
		{"Nek5000 @1/2 bw", workloads.NewNek5000("C", s.Ranks), machine.PlatformA().WithNVMBandwidthFraction(0.5)},
	}
	rows := make([][]interface{}, len(scenarios))
	err := forEachRow(s.ctx(), s.workers(), len(scenarios), func(i int) error {
		sc := scenarios[i]
		dram, err := s.runStatic(sc.w, dramMachineFor(sc.m), "dram-only", nil)
		if err != nil {
			return err
		}
		nvm, err := s.runStatic(sc.w, sc.m, "nvm-only", nil)
		if err != nil {
			return err
		}
		row := []interface{}{sc.name, norm(nvm.TimeNS, dram.TimeNS)}
		for _, knob := range []func(*core.Config){
			func(*core.Config) {},
			func(c *core.Config) { c.LiteralEq3 = true },
			func(c *core.Config) { c.NaivePredictor = true },
			func(c *core.Config) { c.NoHysteresis = true },
		} {
			cfg := s.unimemConfig(sc.m)
			knob(&cfg)
			res, _, err := s.runUnimem(sc.w, sc.m, cfg)
			if err != nil {
				return err
			}
			row = append(row, norm(res.TimeNS, dram.TimeNS))
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"each ablation column disables exactly one refinement; higher = worse placement")
	return t, nil
}
