// Package machine models the hardware platform underneath the Unimem
// runtime: a CPU, a network, and a two-tier main memory (DRAM + NVM).
//
// The paper evaluates on real clusters whose NVM is emulated by Quartz
// (bandwidth- or latency-throttled DRAM) or by remote NUMA memory. This
// package is the corresponding substrate in simulation form: it defines the
// tier characteristics the paper sweeps (fractional bandwidth, latency
// multipliers, Table 1 technology points) and a first-order timing model
// that converts post-cache memory traffic into virtual nanoseconds.
//
// All simulated time in the repository is int64 nanoseconds produced by this
// package; nothing in the simulation path reads the wall clock.
package machine

import "fmt"

// CacheLineBytes is the cache line size assumed throughout (matches the
// paper's Eq. 1, which multiplies access counts by the cache line size).
const CacheLineBytes = 64

// TierKind identifies one of the two main-memory tiers of the HMS.
type TierKind int

const (
	// DRAM is the small, fast tier.
	DRAM TierKind = iota
	// NVM is the large, slow tier where objects live by default.
	NVM
)

// String returns the conventional tier name.
func (k TierKind) String() string {
	switch k {
	case DRAM:
		return "DRAM"
	case NVM:
		return "NVM"
	default:
		return fmt.Sprintf("TierKind(%d)", int(k))
	}
}

// TierSpec describes one memory tier's performance and capacity.
type TierSpec struct {
	Kind TierKind
	// ReadLatNS and WriteLatNS are loaded access latencies in nanoseconds.
	ReadLatNS  float64
	WriteLatNS float64
	// BandwidthBps is the per-rank sustainable bandwidth in bytes/second.
	BandwidthBps float64
	// CapacityBytes is the per-rank capacity of the tier.
	CapacityBytes int64
}

// Latency returns the effective access latency in ns for a mix of reads and
// writes, where readFrac is the fraction of accesses that are reads.
func (t TierSpec) Latency(readFrac float64) float64 {
	if readFrac < 0 {
		readFrac = 0
	} else if readFrac > 1 {
		readFrac = 1
	}
	return readFrac*t.ReadLatNS + (1-readFrac)*t.WriteLatNS
}

// Pattern classifies the main-memory access behaviour of a data object in a
// phase. The pattern determines memory-level parallelism (MLP), which is what
// makes an object bandwidth-sensitive (many concurrent independent accesses)
// or latency-sensitive (dependent accesses), per §2.2 of the paper.
type Pattern int

const (
	// Stream is sequential, massively concurrent access (e.g. vector
	// sweeps); bandwidth-bound.
	Stream Pattern = iota
	// Stencil is near-neighbour access with good spatial locality and high
	// concurrency; mostly bandwidth-bound.
	Stencil
	// Random is independent accesses with poor locality and moderate
	// concurrency; sensitive to both bandwidth and latency.
	Random
	// PointerChase is dependent accesses (linked traversal, indexed
	// gather chains); latency-bound.
	PointerChase
)

var patternNames = [...]string{"stream", "stencil", "random", "pointer-chase"}

// String returns a short human-readable pattern name.
func (p Pattern) String() string {
	if int(p) < len(patternNames) {
		return patternNames[p]
	}
	return fmt.Sprintf("Pattern(%d)", int(p))
}

// MLP returns the memory-level parallelism assumed for the pattern: the
// effective number of main-memory accesses in flight (hardware prefetchers
// give streaming sweeps very deep pipelines; dependent chains have none).
func (p Pattern) MLP() float64 {
	switch p {
	case Stream:
		return 320
	case Stencil:
		return 32
	case Random:
		return 8
	case PointerChase:
		return 1
	default:
		return 1
	}
}

// Machine is the full platform description. The zero value is not usable;
// construct with PlatformA or Edison and derive NVM variants with the
// With* methods (which return copies, so a base machine can be reused
// across experiment sweeps).
type Machine struct {
	Name string

	DRAMSpec TierSpec
	NVMSpec  TierSpec

	// CopyBandwidthBps is the achievable NVM<->DRAM memcpy bandwidth used
	// for data migration (Eq. 4's mem_copy_bw).
	CopyBandwidthBps float64

	// CPUFreqHz is the core clock; together with SampleIntervalCycles it
	// sets the emulated performance-counter sampling period.
	CPUFreqHz float64
	// FlopsPerSec is the per-rank achievable compute throughput used to
	// convert a phase's flop count into compute time.
	FlopsPerSec float64
	// SampleIntervalCycles is the counter sampling interval (paper: 1000).
	SampleIntervalCycles int64

	// NetLatencyNS and NetBandwidthBps parametrize the interconnect model
	// used by the MPI substrate.
	NetLatencyNS    float64
	NetBandwidthBps float64
}

// PlatformA returns the paper's "Platform A": a small cluster with two
// eight-core Xeon E5-2630 per node and 32 GB DDR4. The DRAM numbers are
// first-order per-rank figures; the experiments only depend on NVM/DRAM
// ratios, which the With* methods set exactly as the paper's sweeps do.
// The default NVM tier equals DRAM performance (i.e. not yet degraded);
// experiments always derive a degraded variant.
func PlatformA() *Machine {
	dram := TierSpec{
		Kind:          DRAM,
		ReadLatNS:     80,
		WriteLatNS:    80,
		BandwidthBps:  12.8e9,
		CapacityBytes: 256 << 20, // paper's default HMS DRAM: 256MB
	}
	nvm := dram
	nvm.Kind = NVM
	nvm.CapacityBytes = 16 << 30 // paper's default NVM: 16GB
	m := &Machine{
		Name:                 "PlatformA",
		DRAMSpec:             dram,
		NVMSpec:              nvm,
		CPUFreqHz:            2.4e9,
		FlopsPerSec:          4.8e9,
		SampleIntervalCycles: 1000,
		NetLatencyNS:         1500,
		NetBandwidthBps:      5.0e9,
	}
	m.recomputeCopyBW()
	return m
}

// Edison returns the LBNL Edison-like platform used for strong scaling
// (two 12-core Ivy Bridge, 64 GB DDR3), with NVM emulated by remote NUMA:
// 60% of DRAM bandwidth and 1.89x DRAM latency, and 32GB NVM / 256MB DRAM
// per the paper's strong-scaling configuration.
func Edison() *Machine {
	m := PlatformA()
	m.Name = "Edison"
	m.DRAMSpec.BandwidthBps = 14.0e9
	m.NVMSpec.BandwidthBps = 14.0e9
	m.NVMSpec.CapacityBytes = 32 << 30
	m.NetLatencyNS = 1100
	m.NetBandwidthBps = 8.0e9
	mm := m.WithNVMBandwidthFraction(0.60)
	mm = mm.WithNVMLatencyFactor(1.89)
	mm.Name = "Edison"
	return mm
}

// clone returns a deep copy of m.
func (m *Machine) clone() *Machine {
	c := *m
	return &c
}

// recomputeCopyBW sets the migration copy bandwidth to a fixed fraction of
// the slower tier's bandwidth: a DRAM<->NVM memcpy is limited by the NVM
// side once NVM is degraded.
func (m *Machine) recomputeCopyBW() {
	slow := m.NVMSpec.BandwidthBps
	if m.DRAMSpec.BandwidthBps < slow {
		slow = m.DRAMSpec.BandwidthBps
	}
	m.CopyBandwidthBps = 0.85 * slow
}

// WithNVMBandwidthFraction returns a copy of m whose NVM tier has
// frac x DRAM bandwidth (latency unchanged). frac must be in (0, 1].
func (m *Machine) WithNVMBandwidthFraction(frac float64) *Machine {
	if frac <= 0 || frac > 1 {
		panic(fmt.Sprintf("machine: bandwidth fraction %v out of (0,1]", frac))
	}
	c := m.clone()
	c.NVMSpec.BandwidthBps = m.DRAMSpec.BandwidthBps * frac
	c.Name = fmt.Sprintf("%s/NVM-bw=%gx", m.Name, frac)
	c.recomputeCopyBW()
	return c
}

// WithNVMLatencyFactor returns a copy of m whose NVM tier has factor x DRAM
// latency (bandwidth unchanged). factor must be >= 1.
func (m *Machine) WithNVMLatencyFactor(factor float64) *Machine {
	if factor < 1 {
		panic(fmt.Sprintf("machine: latency factor %v < 1", factor))
	}
	c := m.clone()
	c.NVMSpec.ReadLatNS = m.DRAMSpec.ReadLatNS * factor
	c.NVMSpec.WriteLatNS = m.DRAMSpec.WriteLatNS * factor
	c.Name = fmt.Sprintf("%s/NVM-lat=%gx", m.Name, factor)
	c.recomputeCopyBW()
	return c
}

// WithDRAMCapacity returns a copy of m with the given per-rank DRAM capacity.
func (m *Machine) WithDRAMCapacity(bytes int64) *Machine {
	c := m.clone()
	c.DRAMSpec.CapacityBytes = bytes
	return c
}

// WithNVMCapacity returns a copy of m with the given per-rank NVM capacity.
func (m *Machine) WithNVMCapacity(bytes int64) *Machine {
	c := m.clone()
	c.NVMSpec.CapacityBytes = bytes
	return c
}

// Tier returns the spec for the given tier kind.
func (m *Machine) Tier(k TierKind) TierSpec {
	if k == DRAM {
		return m.DRAMSpec
	}
	return m.NVMSpec
}

// SamplePeriodNS returns the emulated counter sampling period in ns.
func (m *Machine) SamplePeriodNS() float64 {
	return float64(m.SampleIntervalCycles) / m.CPUFreqHz * 1e9
}

// MemTimeNS returns the virtual time, in nanoseconds, to service accesses
// main-memory accesses of the given pattern against tier k, with readFrac
// of them reads. The model is additive: a bandwidth term (bytes moved over
// tier bandwidth) plus a latency term (serialized access chains of depth
// accesses/MLP). Deep-MLP streams are bandwidth-bound and nearly latency-
// insensitive; dependent chains are the reverse; mid-MLP random access
// pays both — which is exactly the sensitivity taxonomy of §2.2 (and lets
// an object be "sensitive to both", like SP's rhs in Fig. 4).
func (m *Machine) MemTimeNS(k TierKind, accesses int64, p Pattern, readFrac float64) float64 {
	if accesses <= 0 {
		return 0
	}
	t := m.Tier(k)
	bwTerm := float64(accesses*CacheLineBytes) / t.BandwidthBps * 1e9
	latTerm := float64(accesses) * t.Latency(readFrac) / p.MLP()
	return bwTerm + latTerm
}

// ComputeTimeNS converts a flop count into compute time.
func (m *Machine) ComputeTimeNS(flops float64) float64 {
	if flops <= 0 {
		return 0
	}
	return flops / m.FlopsPerSec * 1e9
}

// CopyTimeNS returns the virtual time to migrate bytes between tiers.
func (m *Machine) CopyTimeNS(bytes int64) float64 {
	if bytes <= 0 {
		return 0
	}
	return float64(bytes) / m.CopyBandwidthBps * 1e9
}

// MsgTimeNS returns the virtual time for a point-to-point message of the
// given size: a latency term plus a bandwidth term.
func (m *Machine) MsgTimeNS(bytes int64) float64 {
	return m.NetLatencyNS + float64(bytes)/m.NetBandwidthBps*1e9
}
