package serve

// This file is the server's cluster face: request forwarding to ring
// owners with graceful local fallback, the snapshot exchange endpoints
// (GET /snapshot, POST /snapshot/merge), peer warm-start, and the
// readiness probe that load balancers watch while snapshots merge or the
// daemon drains.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"os"
	"time"

	"unimem"
	"unimem/internal/cluster"
	"unimem/internal/exp"
)

// forwardedHeader marks a request that already crossed one node hop. A
// forwarded request always executes where it lands — one hop maximum, so
// two nodes with momentarily divergent ring views can never bounce a
// request between each other.
const forwardedHeader = "X-Unimem-Forwarded"

// nodeHeader names the node that executed the request; on a proxied
// response it carries the owner's name through to the client.
const nodeHeader = "X-Unimem-Node"

// maxSnapshotBytes bounds one POST /snapshot/merge body. Snapshot entries
// are a few KB each; 256 MiB covers any cache the entry budget allows
// while still bounding what an untrusted peer can make this node buffer.
const maxSnapshotBytes = 256 << 20

// forwardBuckets shape the forward-latency histogram: forwards are
// cache-hit-sized (sub-millisecond plus a network hop) far more often
// than cold-run-sized, so the resolution concentrates low.
var forwardBuckets = []float64{
	.0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10, 30,
}

// SetCluster installs the cluster: /run requests whose route key hashes
// to a peer are forwarded there, and the peer-health instruments register
// on the /metrics registry. Call once, before serving; a nil cluster (or
// never calling) leaves the server single-node.
func (s *Server) SetCluster(c *cluster.Cluster) {
	s.cluster = c
	if c == nil || s.metrics.reg == nil {
		return
	}
	c.Requests = s.metrics.reg.CounterVec("unimem_cluster_peer_requests_total",
		"Cluster forward outcomes by peer: ok (owner answered), error (failed attempt), "+
			"fallback (owner unreachable, executed locally), skipped (circuit open, executed locally).",
		"peer", "outcome")
	c.ForwardSeconds = s.metrics.reg.HistogramVec("unimem_cluster_forward_seconds",
		"Latency of forward attempts to cluster peers.", forwardBuckets, "peer")
	s.metrics.reg.GaugeFunc("unimem_cluster_peers",
		"Peers on the consistent-hash ring (including this node).",
		func() float64 { return float64(len(c.Peers())) })
	s.metrics.reg.GaugeFunc("unimem_cluster_peers_healthy",
		"Remote peers whose circuit breaker is currently closed.",
		func() float64 {
			n := 0
			for _, p := range c.Peers() {
				if p != c.Self() && c.Available(p) {
					n++
				}
			}
			return float64(n)
		})
}

// Cluster returns the installed cluster (nil when single-node).
func (s *Server) Cluster() *cluster.Cluster { return s.cluster }

// routeKey computes the request's ring key: the exact string form of the
// cache key the run would occupy, including the session-level seed
// fallback and Quick prep the engine applies — so the ring owner of a key
// is the peer whose cache holds (or will hold) its result.
func (s *Server) routeKey(m *unimem.Machine, job unimem.Job) string {
	opts := job.Options
	if opts.Seed == 0 {
		opts.Seed = s.cfg.Seed
	}
	return exp.RouteKey(job.Workload, m, job.Strategy, s.cfg.Quick, opts)
}

// forwardToOwner routes one decoded /run request: if a cluster is
// installed and the route key belongs to a reachable peer, the raw body
// is forwarded there and the peer's response proxied back (true). Every
// other case — single-node, locally-owned key, already-forwarded request,
// circuit-broken or unreachable owner — returns false and the caller
// executes locally: the degraded cluster answers everything.
func (s *Server) forwardToOwner(w http.ResponseWriter, r *http.Request, m *unimem.Machine, job unimem.Job, body []byte) bool {
	c := s.cluster
	if c == nil {
		return false
	}
	w.Header().Set(nodeHeader, c.Self())
	if r.Header.Get(forwardedHeader) != "" {
		return false // terminal hop: forwarded requests execute where they land
	}
	peer, local := c.Owner(s.routeKey(m, job))
	if local {
		return false
	}
	if !c.Available(peer) {
		c.RecordFallback(peer, true)
		return false
	}
	hdr := http.Header{
		"Content-Type":  {"application/json"},
		forwardedHeader: {"1"},
	}
	pathq := r.URL.Path
	if r.URL.RawQuery != "" {
		pathq += "?" + r.URL.RawQuery
	}
	resp, err := c.Forward(r.Context(), peer, http.MethodPost, pathq, hdr, body)
	if err != nil {
		s.cfg.Logf("serve: forward to %s failed, executing locally: %v", peer, err)
		c.RecordFallback(peer, false)
		return false
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if node := resp.Header.Get(nodeHeader); node != "" {
		w.Header().Set(nodeHeader, node)
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
	return true
}

// readDecodeJSON reads a bounded request body and strictly decodes it
// (unknown fields rejected), answering 400 itself on failure. Unlike
// decodeJSON it returns the raw bytes, so the caller can replay the
// request to a cluster peer verbatim.
func readDecodeJSON(w http.ResponseWriter, r *http.Request, dst any) ([]byte, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 8<<20))
	if err != nil {
		httpError(w, http.StatusBadRequest, "reading request: %v", err)
		return nil, false
	}
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		httpError(w, http.StatusBadRequest, "decoding request: %v", err)
		return nil, false
	}
	return body, true
}

// blockReady registers a named readiness blocker; the returned func
// releases it. /readyz answers 503 while any blocker is held.
func (s *Server) blockReady(reason string) func() {
	s.readyMu.Lock()
	s.readyBlockers[reason]++
	s.readyMu.Unlock()
	return func() {
		s.readyMu.Lock()
		s.readyBlockers[reason]--
		if s.readyBlockers[reason] <= 0 {
			delete(s.readyBlockers, reason)
		}
		s.readyMu.Unlock()
	}
}

// SetDraining flips the draining state: the SIGTERM handler sets it
// before http.Server.Shutdown so /readyz goes 503 while in-flight
// requests finish. /healthz (liveness) is unaffected — the process is up.
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

// handleReadyz is the readiness probe: 200 when the node should receive
// traffic, 503 (with the blocking reasons) while draining or while a
// snapshot load/merge holds a readiness blocker.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	var reasons []string
	if s.draining.Load() {
		reasons = append(reasons, "draining")
	}
	s.readyMu.Lock()
	for reason := range s.readyBlockers {
		reasons = append(reasons, reason)
	}
	s.readyMu.Unlock()
	if len(reasons) > 0 {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(map[string]any{"ready": false, "reasons": reasons})
		return
	}
	writeJSON(w, map[string]any{"ready": true, "version": Version()})
}

// handleSnapshot streams the run cache as a snapshot document — the same
// bytes SaveSnapshot writes to disk — for peers (and operators) to merge.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if _, err := s.cache.WriteSnapshot(w); err != nil {
		// Headers are gone; all we can do is log.
		s.cfg.Logf("serve: writing snapshot: %v", err)
	}
}

// MergeResponse is POST /snapshot/merge's reply.
type MergeResponse struct {
	exp.MergeStats
	// Entries is the resident cache entry count after the merge.
	Entries int `json:"entries"`
}

// handleSnapshotMerge merges a posted snapshot document into the live
// cache. The cache's own guarantees make this safe mid-serve: the whole
// payload decodes and version-checks before anything is touched (corrupt
// peer data leaves the cache exactly as it was → 400), in-flight entries
// are never merged over, and same-key conflicts resolve newer-completed-
// wins. A readiness blocker is held for the duration.
func (s *Server) handleSnapshotMerge(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxSnapshotBytes))
	if err != nil {
		httpError(w, http.StatusBadRequest, "reading snapshot: %v", err)
		return
	}
	unblock := s.blockReady("snapshot-merge")
	defer unblock()
	st, err := s.cache.MergeSnapshot(body)
	if err != nil {
		if errors.Is(err, exp.ErrSnapshotVersion) {
			httpError(w, http.StatusBadRequest, "%v", err)
		} else {
			httpError(w, http.StatusBadRequest, "merging snapshot: %v", err)
		}
		return
	}
	s.recordMerge(st)
	writeJSON(w, MergeResponse{MergeStats: st, Entries: s.cache.Stats().Entries})
}

// recordMerge folds one merge's stats into the /stats bookkeeping.
func (s *Server) recordMerge(st exp.MergeStats) {
	s.readyMu.Lock()
	s.lastMerge = time.Now()
	s.lastMergeSt = st
	s.mergeCount++
	s.mergeAdded += st.Added
	s.mergeReplaced += st.Replaced
	s.readyMu.Unlock()
}

// WarmStartFromPeers fetches and merges every remote peer's snapshot —
// the cluster cold-start path (-warm-from-peers): a node joining an
// established fleet begins its life already holding the fleet's completed
// runs. Unreachable peers are skipped with a log line; the node starts
// regardless. Returns the number of entries added or refreshed. A
// readiness blocker is held for the duration.
func (s *Server) WarmStartFromPeers(ctx context.Context) int {
	c := s.cluster
	if c == nil {
		return 0
	}
	unblock := s.blockReady("peer-warm-start")
	defer unblock()
	total := 0
	for _, p := range c.Peers() {
		if p == c.Self() {
			continue
		}
		data, err := c.FetchSnapshot(ctx, p)
		if err != nil {
			s.cfg.Logf("serve: warm-start from %s: %v", p, err)
			continue
		}
		st, err := s.cache.MergeSnapshot(data)
		if err != nil {
			s.cfg.Logf("serve: warm-start from %s: merging: %v", p, err)
			continue
		}
		s.recordMerge(st)
		s.cfg.Logf("serve: warm-started from %s: %d added, %d replaced, %d skipped",
			p, st.Added, st.Replaced, st.Skipped)
		total += st.Added + st.Replaced
	}
	return total
}

// snapshotAge reports seconds since the on-disk snapshot was written
// (from the file's mtime, so it is meaningful across restarts), or -1
// when no snapshot file exists.
func (s *Server) snapshotAge() float64 {
	path := s.SnapshotPath()
	if path == "" {
		return -1
	}
	fi, err := os.Stat(path)
	if err != nil {
		return -1
	}
	return time.Since(fi.ModTime()).Seconds()
}

// statsCluster fills the cluster/merge/snapshot-age blocks of /stats.
func (s *Server) statsCluster(resp *StatsResponse) {
	if resp.Snapshot != nil {
		if age := s.snapshotAge(); age >= 0 {
			resp.Snapshot.AgeSeconds = age
		} else {
			resp.Snapshot.AgeSeconds = -1
		}
	}
	s.readyMu.Lock()
	if resp.Snapshot != nil && !s.lastSave.IsZero() {
		resp.Snapshot.LastSaveUnixNS = s.lastSave.UnixNano()
		resp.Snapshot.LastSaveEntries = s.lastSaveCount
	}
	if s.mergeCount > 0 {
		resp.Merge = &MergeJSON{
			LastUnixNS:    s.lastMerge.UnixNano(),
			Last:          s.lastMergeSt,
			Merges:        s.mergeCount,
			TotalAdded:    s.mergeAdded,
			TotalReplaced: s.mergeReplaced,
		}
	}
	s.readyMu.Unlock()
	if s.cluster != nil {
		st := s.cluster.Status()
		resp.Cluster = &st
	}
}
