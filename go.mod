module unimem

go 1.24
