// Command unimem-bench regenerates the paper's evaluation tables and
// figures. Each experiment prints the same rows/series the paper reports,
// normalized to DRAM-only execution time.
//
// Rendered tables go to stdout; progress, timing and the run-cache summary
// go to stderr, so stdout is byte-identical between serial and parallel
// runs of the same experiments.
//
// Usage:
//
//	unimem-bench -list
//	unimem-bench -exp fig9
//	unimem-bench -exp all -class C -ranks 4
//	unimem-bench -exp all -quick -parallel
//	unimem-bench -exp fig9,table4 -workers 8 -json results.json
//	unimem-bench -exp table4 -csv out.csv
//	unimem-bench -exp scenariofleet -quick -fleet 8 -parallel
//	unimem-bench -exp all -parallel -timeout 10m
//	unimem-bench -bench mpisim -quick -bench-out BENCH_mpisim.json
//	unimem-bench -bench serve -quick -bench-out BENCH_serve.json
//	unimem-bench -bench fastpath -quick -check
//
// -timeout bounds the whole run: on expiry, in-flight simulated worlds
// abort, the partial cache statistics are printed to stderr, and the
// process exits nonzero.
//
// -bench mpisim switches to the simulator micro/macro benchmark mode: it
// runs ping-pong, allreduce at 64/1k/10k ranks and the CG/SP/MG comm
// skeletons on the event-driven mpisim core and (where its ranks²
// allocation is feasible) the retired goroutine oracle engine, and writes
// the before/after comparison to -bench-out as JSON — the repo's perf
// trajectory artifact. A 10k-rank world that cannot complete fails the
// run, which is the scale gate CI enforces.
//
// -bench serve measures the HTTP observability layer's request-path
// overhead: matched cache-hit request storms against a metrics-disabled
// and a metrics-enabled server, reported as a relative slowdown — the
// ≤2% budget artifact (BENCH_serve.json).
//
// -bench fastpath measures the analytic fast path's wall-clock speedup
// over exact event-driven simulation on long stationary runs, while
// differentially verifying the two produce identical results — the
// BENCH_fastpath.json artifact. -check gates the worst cell against an
// absolute speedup floor and fails on any result divergence.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"unimem/internal/exp"
	"unimem/internal/mpisim/simprog"
	"unimem/internal/serve"
)

// summary is the machine-readable run report of the JSON output mode.
type summary struct {
	Experiments []string `json:"experiments"`
	Class       string   `json:"class"`
	Ranks       int      `json:"ranks"`
	Seed        uint64   `json:"seed"`
	Quick       bool     `json:"quick"`
	Workers     int      `json:"workers"`
	CacheHits   int64    `json:"cache_hits"`
	CacheMisses int64    `json:"cache_misses"`
	CacheRuns   int      `json:"cache_entries"`
}

// document is the top-level JSON output: every regenerated table plus the
// run summary.
type document struct {
	Tables  []*exp.Table `json:"tables"`
	Summary summary      `json:"summary"`
}

// writeBenchDoc encodes a benchmark document to out ("-" for stdout, ""
// to skip writing — the -check default).
func writeBenchDoc(doc interface{}, out string) error {
	if out == "" {
		return nil
	}
	f := os.Stdout
	if out != "-" {
		var err error
		if f, err = os.Create(out); err != nil {
			return err
		}
		defer f.Close()
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// runBenchMode dispatches -bench: "mpisim" runs the simulator
// micro/macro benchmarks on both engines, "serve" runs the HTTP
// observability-overhead comparison. Progress goes to stderr; stdout
// stays silent (the experiment-golden discipline).
func runBenchMode(mode string, quick bool, out string, check bool, baseline string) int {
	logf := func(format string, args ...interface{}) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}
	start := time.Now()
	switch mode {
	case "mpisim":
		doc, err := simprog.RunBenchSuite(quick, logf)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if err := writeBenchDoc(doc, out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "%d benchmark cells in %v; per-core speedups event-vs-oracle: %v\n",
			len(doc.Results), time.Since(start).Round(time.Millisecond), doc.SpeedupPerCore)
		if check {
			return runCheck(mode, doc, baseline)
		}
		return 0
	case "serve":
		doc, err := serve.RunServeBench(quick, logf)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if err := writeBenchDoc(doc, out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "serve bench done in %v; metrics overhead %.2f%%\n",
			time.Since(start).Round(time.Millisecond), doc.OverheadPct)
		if check {
			return runCheck(mode, doc, baseline)
		}
		return 0
	case "fastpath":
		doc, err := exp.RunFastpathBench(quick, logf)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if err := writeBenchDoc(doc, out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "fastpath bench done in %v; worst-cell speedup %.1fx\n",
			time.Since(start).Round(time.Millisecond), doc.MinSpeedup)
		if check {
			return runCheck(mode, doc, baseline)
		}
		return 0
	default:
		fmt.Fprintf(os.Stderr, "unknown -bench mode %q (want mpisim, serve or fastpath)\n", mode)
		return 2
	}
}

func main() {
	var (
		expID     = flag.String("exp", "all", "experiment id (see -list), comma-separated list, or 'all'")
		class     = flag.String("class", "C", "NPB class for the basic tests (A/B/C/D)")
		ranks     = flag.Int("ranks", 4, "MPI world size")
		seed      = flag.Uint64("seed", 0xD07, "deterministic seed")
		quick     = flag.Bool("quick", false, "cap iteration counts (fast, less faithful)")
		fleet     = flag.Int("fleet", 0, "scenarios per archetype for -exp scenariofleet (0: default 4)")
		parallel  = flag.Bool("parallel", false, "fan experiment cells across GOMAXPROCS workers")
		workersN  = flag.Int("workers", 0, "worker-pool width (overrides -parallel; 1 = serial)")
		csv       = flag.String("csv", "", "also write results as CSV to this file")
		jsonOut   = flag.String("json", "", "write results as JSON to this file ('-' for stdout, suppressing tables)")
		timeout   = flag.Duration("timeout", 0, "abort the whole run after this duration (0: no limit)")
		list      = flag.Bool("list", false, "list experiment ids and exit")
		bench     = flag.String("bench", "", "benchmark mode instead of experiments: 'mpisim' (engine), 'serve' (HTTP observability overhead) or 'fastpath' (analytic fast-path speedup)")
		benchOut  = flag.String("bench-out", "", "benchmark JSON destination for -bench (default BENCH_<mode>.json)")
		check     = flag.Bool("check", false, "with -bench: gate the fresh run against the committed baseline and exit 1 on regression")
		checkBase = flag.String("check-baseline", "", "baseline JSON for -check (default BENCH_<mode>.json)")
	)
	flag.Parse()

	if *check && *bench == "" {
		fmt.Fprintln(os.Stderr, "-check requires -bench mpisim, serve or fastpath")
		os.Exit(2)
	}
	if *bench != "" {
		out := *benchOut
		if out == "" && !*check {
			// In -check mode the default is to write nothing: the committed
			// BENCH_<mode>.json is the baseline being compared against, and
			// defaulting the output onto it would overwrite the baseline
			// before the comparison reads it.
			out = "BENCH_" + *bench + ".json"
		}
		baseline := *checkBase
		if baseline == "" {
			baseline = "BENCH_" + *bench + ".json"
		}
		if *check && out == baseline {
			fmt.Fprintf(os.Stderr, "-bench-out and -check-baseline are both %s; the fresh run would overwrite its own baseline\n", out)
			os.Exit(2)
		}
		os.Exit(runBenchMode(*bench, *quick, out, *check, baseline))
	}

	order, reg := exp.Registry()
	if *list {
		for _, id := range order {
			fmt.Println(id)
		}
		return
	}

	workers := 1
	switch {
	case *workersN > 0:
		workers = *workersN
	case *parallel:
		workers = runtime.GOMAXPROCS(0)
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	s := exp.NewSuite()
	s.Class = *class
	s.Ranks = *ranks
	s.Seed = *seed
	s.Quick = *quick
	s.Fleet = *fleet
	s.Workers = workers
	s.Ctx = ctx

	var ids []string
	if *expID == "all" {
		ids = order
	} else {
		for _, id := range strings.Split(*expID, ",") {
			if _, ok := reg[id]; !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			ids = append(ids, id)
		}
	}

	var csvOut *os.File
	if *csv != "" {
		f, err := os.Create(*csv)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		csvOut = f
	}

	// Open the JSON destination up front so a bad path fails before the
	// experiments run, like -csv does.
	jsonFile := os.Stdout
	if *jsonOut != "" && *jsonOut != "-" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		jsonFile = f
	}

	renderTables := *jsonOut != "-"
	var tables []*exp.Table
	start := time.Now()
	for _, id := range ids {
		expStart := time.Now()
		t, err := reg[id](s)
		if err != nil {
			if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
				stats := s.CacheStats()
				fmt.Fprintf(os.Stderr, "%s: timed out after %v (%v); partial cache: %d hits, %d misses (%d runs memoized)\n",
					id, *timeout, err, stats.Hits, stats.Misses, stats.Entries)
				os.Exit(3)
			}
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			os.Exit(1)
		}
		tables = append(tables, t)
		if renderTables {
			t.Render(os.Stdout)
		}
		fmt.Fprintf(os.Stderr, "  (%s regenerated in %v)\n", id, time.Since(expStart).Round(time.Millisecond))
		if csvOut != nil {
			fmt.Fprintf(csvOut, "# %s: %s\n", t.ID, t.Title)
			if err := t.WriteCSV(csvOut); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Fprintln(csvOut)
		}
	}

	stats := s.CacheStats()
	fmt.Fprintf(os.Stderr, "%d experiment(s) in %v; workers=%d; baseline cache: %d hits, %d misses (%d runs memoized)\n",
		len(ids), time.Since(start).Round(time.Millisecond),
		workers, stats.Hits, stats.Misses, stats.Entries)

	if *jsonOut != "" {
		doc := document{
			Tables: tables,
			Summary: summary{
				Experiments: ids,
				Class:       *class,
				Ranks:       *ranks,
				Seed:        *seed,
				Quick:       *quick,
				Workers:     workers,
				CacheHits:   stats.Hits,
				CacheMisses: stats.Misses,
				CacheRuns:   stats.Entries,
			},
		}
		enc := json.NewEncoder(jsonFile)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
