package machine

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPlatformADefaults(t *testing.T) {
	m := PlatformA()
	if m.Tier(DRAM).CapacityBytes != 256<<20 {
		t.Errorf("default DRAM capacity = %d, want 256MiB", m.Tier(DRAM).CapacityBytes)
	}
	if m.Tier(NVM).CapacityBytes != 16<<30 {
		t.Errorf("default NVM capacity = %d, want 16GiB", m.Tier(NVM).CapacityBytes)
	}
	if m.Tier(NVM).BandwidthBps != m.Tier(DRAM).BandwidthBps {
		t.Error("base machine should have undegraded NVM")
	}
	if m.SampleIntervalCycles != 1000 {
		t.Errorf("sampling interval = %d cycles, want the paper's 1000", m.SampleIntervalCycles)
	}
}

func TestWithNVMBandwidthFraction(t *testing.T) {
	m := PlatformA()
	h := m.WithNVMBandwidthFraction(0.5)
	if h.Tier(NVM).BandwidthBps != m.Tier(DRAM).BandwidthBps/2 {
		t.Error("half-bandwidth NVM wrong")
	}
	if h.Tier(NVM).ReadLatNS != m.Tier(DRAM).ReadLatNS {
		t.Error("bandwidth knob must not change latency")
	}
	// The base machine must be unmodified (With* returns copies).
	if m.Tier(NVM).BandwidthBps != m.Tier(DRAM).BandwidthBps {
		t.Error("WithNVMBandwidthFraction mutated the receiver")
	}
}

func TestWithNVMLatencyFactor(t *testing.T) {
	m := PlatformA()
	l := m.WithNVMLatencyFactor(4)
	if l.Tier(NVM).ReadLatNS != 4*m.Tier(DRAM).ReadLatNS {
		t.Error("4x latency NVM wrong")
	}
	if l.Tier(NVM).BandwidthBps != m.Tier(DRAM).BandwidthBps {
		t.Error("latency knob must not change bandwidth")
	}
}

func TestWithPanicsOnBadArgs(t *testing.T) {
	for _, fn := range []func(){
		func() { PlatformA().WithNVMBandwidthFraction(0) },
		func() { PlatformA().WithNVMBandwidthFraction(1.5) },
		func() { PlatformA().WithNVMLatencyFactor(0.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic on invalid tier knob")
				}
			}()
			fn()
		}()
	}
}

func TestUndoDegradation(t *testing.T) {
	m := PlatformA().WithNVMBandwidthFraction(0.25).WithNVMLatencyFactor(8)
	back := m.WithNVMLatencyFactor(1).WithNVMBandwidthFraction(1)
	if back.Tier(NVM).BandwidthBps != back.Tier(DRAM).BandwidthBps ||
		back.Tier(NVM).ReadLatNS != back.Tier(DRAM).ReadLatNS {
		t.Error("resetting knobs to 1 should restore DRAM parity")
	}
}

func TestEdison(t *testing.T) {
	m := Edison()
	if got := m.Tier(NVM).BandwidthBps / m.Tier(DRAM).BandwidthBps; math.Abs(got-0.6) > 1e-9 {
		t.Errorf("Edison NVM bandwidth ratio = %v, want 0.6", got)
	}
	if got := m.Tier(NVM).ReadLatNS / m.Tier(DRAM).ReadLatNS; math.Abs(got-1.89) > 1e-9 {
		t.Errorf("Edison NVM latency ratio = %v, want 1.89", got)
	}
	if m.Tier(NVM).CapacityBytes != 32<<30 {
		t.Errorf("Edison NVM capacity = %d, want 32GiB", m.Tier(NVM).CapacityBytes)
	}
}

func TestLatencyMix(t *testing.T) {
	ts := TierSpec{ReadLatNS: 100, WriteLatNS: 300}
	if got := ts.Latency(1.0); got != 100 {
		t.Errorf("pure-read latency = %v", got)
	}
	if got := ts.Latency(0); got != 300 {
		t.Errorf("pure-write latency = %v", got)
	}
	if got := ts.Latency(0.5); got != 200 {
		t.Errorf("mixed latency = %v", got)
	}
	// Out-of-range fractions clamp.
	if got := ts.Latency(2); got != 100 {
		t.Errorf("clamped latency = %v", got)
	}
}

func TestMemTimeStreamIsBandwidthBound(t *testing.T) {
	m := PlatformA()
	const acc = 1 << 20
	dram := m.MemTimeNS(DRAM, acc, Stream, 1)
	// Halving NVM bandwidth must roughly double stream time.
	half := m.WithNVMBandwidthFraction(0.5)
	ratioBW := half.MemTimeNS(NVM, acc, Stream, 1) / dram
	if ratioBW < 1.8 {
		t.Errorf("stream at 1/2 bw only %vx slower; should be bandwidth-bound", ratioBW)
	}
	// Quadrupling latency must barely move stream time (deep MLP).
	lat4 := m.WithNVMLatencyFactor(4)
	ratioLat := lat4.MemTimeNS(NVM, acc, Stream, 1) / dram
	if ratioLat > 1.3 {
		t.Errorf("stream at 4x lat %vx slower; streams should hide latency", ratioLat)
	}
}

func TestMemTimePointerChaseIsLatencyBound(t *testing.T) {
	m := PlatformA()
	const acc = 1 << 20
	dram := m.MemTimeNS(DRAM, acc, PointerChase, 1)
	lat4 := m.WithNVMLatencyFactor(4).MemTimeNS(NVM, acc, PointerChase, 1)
	if lat4/dram < 3 {
		t.Errorf("pointer chase at 4x lat only %vx slower", lat4/dram)
	}
	half := m.WithNVMBandwidthFraction(0.5).MemTimeNS(NVM, acc, PointerChase, 1)
	if half/dram > 1.2 {
		t.Errorf("pointer chase at 1/2 bw %vx slower; chains should not care", half/dram)
	}
}

func TestMemTimeRandomIsSensitiveToBoth(t *testing.T) {
	m := PlatformA()
	const acc = 1 << 20
	dram := m.MemTimeNS(DRAM, acc, Random, 1)
	half := m.WithNVMBandwidthFraction(0.5).MemTimeNS(NVM, acc, Random, 1)
	lat4 := m.WithNVMLatencyFactor(4).MemTimeNS(NVM, acc, Random, 1)
	if half/dram < 1.15 {
		t.Errorf("random at 1/2 bw only %vx slower; should feel bandwidth", half/dram)
	}
	if lat4/dram < 1.5 {
		t.Errorf("random at 4x lat only %vx slower; should feel latency", lat4/dram)
	}
}

func TestMemTimeProperties(t *testing.T) {
	m := PlatformA()
	if err := quick.Check(func(acc int64, pat uint8, rf float64) bool {
		if acc < 0 {
			acc = -acc
		}
		acc %= 1 << 30
		p := Pattern(int(pat) % 4)
		rf = math.Mod(math.Abs(rf), 1)
		tns := m.MemTimeNS(NVM, acc, p, rf)
		if acc == 0 {
			return tns == 0
		}
		// Monotone in access count and never negative.
		return tns >= 0 && m.MemTimeNS(NVM, acc+1, p, rf) >= tns
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestComputeAndCopyTime(t *testing.T) {
	m := PlatformA()
	if m.ComputeTimeNS(0) != 0 || m.CopyTimeNS(0) != 0 {
		t.Error("zero work should cost zero time")
	}
	if m.ComputeTimeNS(m.FlopsPerSec) != 1e9 {
		t.Error("FlopsPerSec flops should take one second")
	}
	if got := m.CopyTimeNS(int64(m.CopyBandwidthBps)); math.Abs(got-1e9) > 1 {
		t.Errorf("copy of one bandwidth-second = %v ns", got)
	}
}

func TestCopyBWTracksSlowTier(t *testing.T) {
	m := PlatformA()
	h := m.WithNVMBandwidthFraction(0.25)
	if h.CopyBandwidthBps >= m.CopyBandwidthBps {
		t.Error("degrading NVM bandwidth must degrade migration bandwidth")
	}
}

func TestTable1Shape(t *testing.T) {
	rows := Table1()
	if len(rows) != 4 {
		t.Fatalf("Table1 has %d rows, want 4", len(rows))
	}
	if rows[0].Name != "DRAM" {
		t.Error("first Table1 row should be DRAM")
	}
	for _, r := range rows[1:] {
		if r.ReadNSMin < rows[0].ReadNSMin {
			t.Errorf("%s reads faster than DRAM?", r.Name)
		}
	}
}

func TestTechMachine(t *testing.T) {
	base := PlatformA()
	for _, tech := range Table1()[1:] {
		m := TechMachine(base, tech)
		if m.Tier(NVM).ReadLatNS <= base.Tier(DRAM).ReadLatNS {
			t.Errorf("%s: NVM latency should exceed DRAM", tech.Name)
		}
		if m.Tier(NVM).BandwidthBps > base.Tier(DRAM).BandwidthBps {
			t.Errorf("%s: NVM bandwidth should not exceed DRAM", tech.Name)
		}
	}
}

func TestMsgTime(t *testing.T) {
	m := PlatformA()
	small := m.MsgTimeNS(8)
	big := m.MsgTimeNS(1 << 20)
	if small < m.NetLatencyNS {
		t.Error("message time must include latency")
	}
	if big <= small {
		t.Error("bigger messages must take longer")
	}
}

func TestTierKindString(t *testing.T) {
	if DRAM.String() != "DRAM" || NVM.String() != "NVM" {
		t.Error("tier names wrong")
	}
	if Stream.String() != "stream" || PointerChase.String() != "pointer-chase" {
		t.Error("pattern names wrong")
	}
}

func TestMultiTierPresets(t *testing.T) {
	for _, tc := range []struct {
		m     *Machine
		tiers []string
	}{
		{PlatformKNL(), []string{"HBM", "DDR"}},
		{PlatformCXL(), []string{"DDR", "CXL"}},
		{PlatformHBMDDRNVM(), []string{"HBM", "DDR", "NVM"}},
	} {
		if tc.m.NumTiers() != len(tc.tiers) {
			t.Fatalf("%s: %d tiers, want %d", tc.m.Name, tc.m.NumTiers(), len(tc.tiers))
		}
		for i, name := range tc.tiers {
			if got := tc.m.TierName(TierKind(i)); got != name {
				t.Errorf("%s tier %d = %q, want %q", tc.m.Name, i, got, name)
			}
		}
		// Capacities must grow down the hierarchy; the fast tier must be
		// small enough that placement is a real decision.
		for i := 1; i < tc.m.NumTiers(); i++ {
			if tc.m.Tier(TierKind(i)).CapacityBytes < tc.m.Tier(TierKind(i-1)).CapacityBytes {
				t.Errorf("%s: tier %d smaller than tier %d", tc.m.Name, i, i-1)
			}
		}
	}
}

func TestCloneDoesNotAliasTiers(t *testing.T) {
	m := PlatformA()
	d := m.WithTierCapacity(0, 1<<30)
	if m.Tier(DRAM).CapacityBytes == d.Tier(DRAM).CapacityBytes {
		t.Error("WithTierCapacity mutated the receiver's tier slice")
	}
}

func TestFastTwin(t *testing.T) {
	m := PlatformHBMDDRNVM()
	tw := m.FastTwin()
	// Component-wise best of the 3-tier stack: HBM's bandwidth, DDR's
	// latency.
	for i := 0; i < tw.NumTiers(); i++ {
		ts := tw.Tier(TierKind(i))
		if ts.BandwidthBps != 51.2e9 || ts.ReadLatNS != 80 {
			t.Errorf("fast twin tier %d not at component-wise best: %+v", i, ts)
		}
		if ts.CapacityBytes != m.Tier(TierKind(i)).CapacityBytes {
			t.Errorf("fast twin tier %d capacity changed", i)
		}
	}
	// On KNL (HBM faster in bandwidth, DDR faster in latency) the twin
	// must dominate both real tiers, so no workload can beat it.
	knl := PlatformKNL().FastTwin()
	if knl.Tiers[0].ReadLatNS != 80 || knl.Tiers[0].BandwidthBps != 51.2e9 {
		t.Errorf("KNL fast twin must combine DDR latency with HBM bandwidth: %+v", knl.Tiers[0])
	}
	// On a two-tier machine FastTwin must equal the paper's undegraded
	// DRAM-only twin derivation.
	b := PlatformA().WithNVMBandwidthFraction(0.5)
	viaKnobs := b.WithNVMLatencyFactor(1).WithNVMBandwidthFraction(1)
	viaTwin := b.FastTwin()
	for i := range viaTwin.Tiers {
		if viaTwin.Tiers[i] != viaKnobs.Tiers[i] {
			t.Errorf("two-tier fast twin tier %d diverges from knob-derived twin", i)
		}
	}
}

func TestCopyBandwidthBetween(t *testing.T) {
	m := PlatformHBMDDRNVM()
	// Pairwise copy bandwidth is limited by the slower endpoint.
	hbmDDR := m.CopyBandwidthBetweenBps(0, 1)
	ddrNVM := m.CopyBandwidthBetweenBps(1, 2)
	if hbmDDR <= ddrNVM {
		t.Errorf("HBM<->DDR copy bw %v should beat DDR<->NVM %v", hbmDDR, ddrNVM)
	}
	if m.CopyBandwidthBetweenBps(0, 2) != ddrNVM {
		t.Error("HBM<->NVM edge should be NVM-limited like DDR<->NVM")
	}
	// Symmetric edges.
	if m.CopyBandwidthBetweenBps(2, 0) != m.CopyBandwidthBetweenBps(0, 2) {
		t.Error("tier-graph edges must be symmetric")
	}
	// Two-tier: the only edge equals the legacy global copy bandwidth.
	a := PlatformA().WithNVMBandwidthFraction(0.5)
	if a.CopyBandwidthBetweenBps(DRAM, NVM) != a.CopyBandwidthBps {
		t.Error("two-tier edge bandwidth diverges from CopyBandwidthBps")
	}
	if got, want := a.CopyTimeBetweenNS(DRAM, NVM, 1<<20), a.CopyTimeNS(1<<20); got != want {
		t.Errorf("two-tier CopyTimeBetweenNS %v != CopyTimeNS %v", got, want)
	}
}
