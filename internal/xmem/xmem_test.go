package xmem

import (
	"context"

	"testing"

	"unimem/internal/app"
	"unimem/internal/machine"
	"unimem/internal/workloads"
)

func TestProfileRecordsOneIteration(t *testing.T) {
	w := workloads.NewCG("C", 4)
	m := machine.PlatformA().WithNVMBandwidthFraction(0.5)
	prof, err := Profile(context.Background(), w, m, app.Options{Ranks: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(prof.Phases) != len(w.Phases) {
		t.Fatalf("profiled %d phases, want %d", len(prof.Phases), len(w.Phases))
	}
	for i, ph := range prof.Phases {
		if ph.Name != w.Phases[i].Name {
			t.Fatalf("phase %d name %q, want %q", i, ph.Name, w.Phases[i].Name)
		}
	}
}

func TestBuildPlacementPicksHotObjects(t *testing.T) {
	w := workloads.NewCG("C", 4)
	m := machine.PlatformA().WithNVMBandwidthFraction(0.5)
	prof, err := Profile(context.Background(), w, m, app.Options{Ranks: 4})
	if err != nil {
		t.Fatal(err)
	}
	set := BuildPlacement(w, m, prof)
	if !set["a"] {
		t.Errorf("CG's matrix a must be placed: %v", set)
	}
	var bytes int64
	for name := range set {
		bytes += w.Object(name).Size
	}
	if bytes > m.Fastest().CapacityBytes {
		t.Fatalf("placement %d bytes exceeds DRAM %d", bytes, m.Fastest().CapacityBytes)
	}
}

func TestXMemBeatsNVMOnly(t *testing.T) {
	w := workloads.NewCG("C", 4)
	m := machine.PlatformA().WithNVMBandwidthFraction(0.5)
	prof, err := Profile(context.Background(), w, m, app.Options{Ranks: 4})
	if err != nil {
		t.Fatal(err)
	}
	set := BuildPlacement(w, m, prof)
	xres, err := app.Run(w, m, app.Options{Ranks: 4}, Factory(set))
	if err != nil {
		t.Fatal(err)
	}
	nres, err := app.Run(w, m, app.Options{Ranks: 4}, app.NewStaticFactory("nvm", nil))
	if err != nil {
		t.Fatal(err)
	}
	if xres.TimeNS >= nres.TimeNS {
		t.Fatalf("X-Mem %d not better than NVM-only %d", xres.TimeNS, nres.TimeNS)
	}
	if xres.TotalMigrations() != 0 {
		t.Fatal("X-Mem is static: no runtime migrations")
	}
}

func TestXMemMissesDrift(t *testing.T) {
	// The offline profile sees iteration 0's hot set only; the placement
	// must not contain late-appearing work arrays.
	w := workloads.NewNek5000("C", 4)
	m := machine.PlatformA().WithNVMBandwidthFraction(0.5)
	prof, err := Profile(context.Background(), w, m, app.Options{Ranks: 4})
	if err != nil {
		t.Fatal(err)
	}
	set := BuildPlacement(w, m, prof)
	// Iteration-0 hot work arrays start at wk01; arrays from late drift
	// periods (e.g. wk10+) are invisible to the offline profile.
	if set["wk10"] || set["wk11"] || set["wk12"] {
		t.Fatalf("offline profile cannot know late-drift work arrays: %v", set)
	}
}
