package serve_test

import (
	"net/http"
	"strconv"
	"strings"
	"testing"

	"unimem/internal/serve"
)

// TestStatsAndMetricsFastPath asserts the daemon surfaces the analytic
// fast path's counters on both observability endpoints: /stats carries
// the fastpath block, and /metrics renders every unimem_fastpath_*
// family (the scrape helper validates the whole exposition, including
// the labeled per-mode iteration counters).
func TestStatsAndMetricsFastPath(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{Quick: true})

	// A Unimem run executes fresh (never cached), so the process-wide
	// fast-path totals must move.
	if resp := postJSON(t, ts.URL+"/run", cgRun("unimem"), nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("run status %d", resp.StatusCode)
	}

	st := getStats(t, ts.URL)
	fp := st.FastPath
	if fp.SimulatedIters == 0 {
		t.Fatalf("/stats fastpath saw no simulated iterations: %+v", fp)
	}
	if fp.MemoHits+fp.MemoMisses == 0 {
		t.Fatalf("/stats fastpath saw no memo traffic: %+v", fp)
	}
	if fp.AnalyticIters == 0 || fp.FastForwards == 0 {
		t.Fatalf("fast path never engaged on the quick CG run: %+v", fp)
	}

	exposition := scrape(t, ts.URL) // validates the full exposition
	for _, want := range []string{
		"unimem_fastpath_memo_hits_total",
		"unimem_fastpath_memo_misses_total",
		"unimem_fastpath_ff_total",
		`unimem_fastpath_iters_total{mode="analytic"}`,
		`unimem_fastpath_iters_total{mode="simulated"}`,
	} {
		if !strings.Contains(exposition, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// The scrape-time bridges read the same totals /stats reported; the
	// counters are monotonic, so the later scrape is at least as large.
	if v := metricValue(t, exposition, `unimem_fastpath_iters_total{mode="analytic"}`); v < float64(fp.AnalyticIters) {
		t.Errorf("metric analytic iters %v < /stats %d", v, fp.AnalyticIters)
	}
	if v := metricValue(t, exposition, "unimem_fastpath_memo_hits_total"); v < float64(fp.MemoHits) {
		t.Errorf("metric memo hits %v < /stats %d", v, fp.MemoHits)
	}
}

// metricValue extracts one sample value from an exposition by exact
// series name (including labels).
func metricValue(t *testing.T, exposition, series string) float64 {
	t.Helper()
	for _, line := range strings.Split(exposition, "\n") {
		if strings.HasPrefix(line, series+" ") {
			v, err := strconv.ParseFloat(strings.TrimSpace(line[len(series)+1:]), 64)
			if err != nil {
				t.Fatalf("parsing %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("series %q not in exposition", series)
	return 0
}
