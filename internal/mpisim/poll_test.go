package mpisim

import (
	"sync/atomic"
	"testing"
)

// TestPollUnanimity: Poll returns true everywhere iff every rank voted
// yes with an equal payload; any veto or payload mismatch fails the
// vote on every rank symmetrically.
func TestPollUnanimity(t *testing.T) {
	cases := []struct {
		name    string
		yes     func(rank int) bool
		payload func(rank int) int64
		want    bool
	}{
		{"all yes equal payload", func(int) bool { return true }, func(int) int64 { return 7 }, true},
		{"one veto", func(r int) bool { return r != 2 }, func(int) int64 { return 7 }, false},
		{"payload mismatch", func(int) bool { return true }, func(r int) int64 { return int64(r) }, false},
		{"veto with mismatched payload ignored", func(r int) bool { return r == 0 }, func(r int) int64 { return 9 }, false},
	}
	for _, tc := range cases {
		var agree, disagree int32
		world(4).Run(func(c *Comm) {
			if c.Poll(tc.yes(c.Rank()), tc.payload(c.Rank())) {
				atomic.AddInt32(&agree, 1)
			} else {
				atomic.AddInt32(&disagree, 1)
			}
		})
		if tc.want && (agree != 4 || disagree != 0) {
			t.Errorf("%s: %d/%d agree, want unanimous true", tc.name, agree, disagree)
		}
		if !tc.want && (agree != 0 || disagree != 4) {
			t.Errorf("%s: %d/%d agree, want unanimous false", tc.name, agree, disagree)
		}
	}
}

// TestPollIsZeroCost: a Poll must not advance any clock, charge CommNS,
// or fire the PMPI hook — it is pure control-plane agreement, invisible
// to every timing observable.
func TestPollIsZeroCost(t *testing.T) {
	var hooked int32
	w := world(3)
	clocks := make([]int64, 3)
	comms := make([]int64, 3)
	w.Run(func(c *Comm) {
		c.SetHook(HookFunc(func(int, string) { atomic.AddInt32(&hooked, 1) }))
		c.Advance(int64(c.Rank()) * 1000) // skewed clocks survive the vote
		before := c.Clock()
		for i := 0; i < 5; i++ {
			c.Poll(true, 42)
		}
		clocks[c.Rank()] = c.Clock() - before
		comms[c.Rank()] = c.CommNS
	})
	for r := 0; r < 3; r++ {
		if clocks[r] != 0 {
			t.Errorf("rank %d clock advanced %d ns across polls", r, clocks[r])
		}
		if comms[r] != 0 {
			t.Errorf("rank %d charged %d CommNS", r, comms[r])
		}
	}
	if hooked != 0 {
		t.Errorf("PMPI hook fired %d times during polls", hooked)
	}
}

// TestPollSequenceIndependent: consecutive polls are independent votes —
// a failed vote must not poison the next one.
func TestPollSequenceIndependent(t *testing.T) {
	var got [3]bool
	world(2).Run(func(c *Comm) {
		a := c.Poll(c.Rank() == 0, 1)      // split vote: false
		b := c.Poll(true, 5)               // unanimous: true
		d := c.Poll(true, int64(c.Rank())) // payload mismatch: false
		if c.Rank() == 0 {
			got = [3]bool{a, b, d}
		}
	})
	if got != [3]bool{false, true, false} {
		t.Fatalf("vote sequence = %v, want [false true false]", got)
	}
}
