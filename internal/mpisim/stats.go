package mpisim

import "sync/atomic"

// Event-core counters. Each world's scheduler tallies into plain fields —
// safe under the single-owner discipline (exactly one rank coroutine
// mutates scheduler state at a time) — and World.Run flushes them into
// these package atomics exactly once, after the last rank returns. That
// keeps the dispatch/receive hot paths free of atomic traffic while still
// giving the observability layer live totals across all worlds in the
// process.
var (
	statWorlds       atomic.Int64
	statEvents       atomic.Int64
	statCollectives  atomic.Int64
	statInboxScans   atomic.Int64
	statInboxScanned atomic.Int64
	statMaxRunq      atomic.Int64 // process-wide high-water mark
)

// CoreStats is a snapshot of the discrete-event core's cumulative
// counters since process start, across every World that has completed
// (including aborted ones — their events were still dispatched).
type CoreStats struct {
	// Worlds is the number of World.Run calls that have finished.
	Worlds int64 `json:"worlds"`
	// Events is the number of scheduler dispatches (run-queue pops).
	Events int64 `json:"events"`
	// Collectives is the number of completed collective rendezvous.
	Collectives int64 `json:"collectives"`
	// InboxScans is the number of linear tag-match scans over a
	// non-empty per-source receive queue.
	InboxScans int64 `json:"inbox_scans"`
	// InboxScanned is the total messages examined by those scans; the
	// ratio InboxScanned/InboxScans is the mean scan length — the number
	// a future indexed-inbox optimization would drive toward 1.
	InboxScanned int64 `json:"inbox_scanned"`
	// MaxRunqDepth is the deepest run queue observed in any world.
	MaxRunqDepth int64 `json:"max_runq_depth"`
}

// ReadCoreStats returns the current process-wide event-core counters.
func ReadCoreStats() CoreStats {
	return CoreStats{
		Worlds:       statWorlds.Load(),
		Events:       statEvents.Load(),
		Collectives:  statCollectives.Load(),
		InboxScans:   statInboxScans.Load(),
		InboxScanned: statInboxScanned.Load(),
		MaxRunqDepth: statMaxRunq.Load(),
	}
}

// noteRunq records the run-queue depth high-water mark; called after
// pushes, by the owning coroutine.
func (s *sched) noteRunq() {
	if n := int64(len(s.runq)); n > s.maxRunq {
		s.maxRunq = n
	}
}

// flushStats publishes the world's tallies to the package atomics.
// Called once from Run after wg.Wait() — the goroutine join gives the
// happens-before edge from the last scheduler mutation.
func (s *sched) flushStats() {
	statWorlds.Add(1)
	statEvents.Add(s.events)
	statCollectives.Add(s.collectives)
	statInboxScans.Add(s.inboxScans)
	statInboxScanned.Add(s.inboxScanned)
	for {
		cur := statMaxRunq.Load()
		if s.maxRunq <= cur || statMaxRunq.CompareAndSwap(cur, s.maxRunq) {
			return
		}
	}
}
