package serve_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"unimem/internal/cluster"
	"unimem/internal/serve"
)

// clusterNode is one node of an in-process test cluster.
type clusterNode struct {
	srv *serve.Server
	ts  *httptest.Server
	url string // normalized peer name
}

// newClusterNodes builds n serve.Servers behind httptest front ends and
// wires them into one cluster with fast timeouts. extraPeers (e.g. a dead
// node's URL) join the ring without a live server.
func newClusterNodes(t *testing.T, n int, cfg serve.Config, extraPeers ...string) []*clusterNode {
	t.Helper()
	nodes := make([]*clusterNode, n)
	peers := append([]string(nil), extraPeers...)
	for i := range nodes {
		srv, err := serve.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		nodes[i] = &clusterNode{srv: srv, ts: ts, url: cluster.NormalizePeer(ts.URL)}
		peers = append(peers, ts.URL)
	}
	for _, n := range nodes {
		n.srv.SetCluster(cluster.New(cluster.Config{
			Self:            n.url,
			Peers:           peers,
			ForwardTimeout:  5 * time.Second,
			Retries:         1,
			Backoff:         5 * time.Millisecond,
			BreakerCooldown: 100 * time.Millisecond,
		}))
	}
	return nodes
}

// seededRun is cgRun with a per-request seed, so requests spread across
// the ring.
func seededRun(strategy string, seed uint64) serve.RunRequest {
	req := cgRun(strategy)
	req.Seed = seed
	return req
}

// postRun posts one /run request and decodes the response, returning the
// responding node's X-Unimem-Node header.
func postRun(t *testing.T, base string, req serve.RunRequest) (serve.RunResponse, string, int) {
	t.Helper()
	data, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/run", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rr serve.RunResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
			t.Fatalf("decoding /run response: %v", err)
		}
	}
	return rr, resp.Header.Get("X-Unimem-Node"), resp.StatusCode
}

// TestClusterForwardsToOwner: on a two-node cluster, every request is
// answered correctly through whichever node receives it; remotely-owned
// requests are forwarded (the response names the owner) and execute
// exactly once cluster-wide, so a repeat through the other node is a hit.
func TestClusterForwardsToOwner(t *testing.T) {
	nodes := newClusterNodes(t, 2, serve.Config{Quick: true, Workers: 2})
	a, b := nodes[0], nodes[1]

	forwarded := ""
	for seed := uint64(1); seed <= 8; seed++ {
		rr, node, status := postRun(t, a.ts.URL, seededRun("xmem", seed))
		if status != http.StatusOK || rr.Error != "" {
			t.Fatalf("seed %d: status %d error %q", seed, status, rr.Error)
		}
		if rr.TimeNS <= 0 {
			t.Fatalf("seed %d: empty outcome %+v", seed, rr.OutcomeJSON)
		}
		if node != a.url && node != b.url {
			t.Fatalf("seed %d: X-Unimem-Node = %q, want one of the two nodes", seed, node)
		}
		if node == b.url && forwarded == "" {
			forwarded = fmt.Sprint(seed)
		}
	}
	if forwarded == "" {
		t.Fatal("no request out of 8 was forwarded to the peer — ring routing is not happening")
	}

	// Cluster-wide, each of the 8 distinct runs executed exactly once.
	missesA := getStats(t, a.ts.URL).Cache.Misses
	missesB := getStats(t, b.ts.URL).Cache.Misses
	if missesA+missesB != 8 {
		t.Fatalf("cluster-wide misses = %d + %d, want 8 (one execution per distinct run)",
			missesA, missesB)
	}

	// A repeat through node B routes to the same owner and hits its cache.
	for seed := uint64(1); seed <= 8; seed++ {
		rr, _, status := postRun(t, b.ts.URL, seededRun("xmem", seed))
		if status != http.StatusOK || rr.Error != "" || !rr.CacheHit {
			t.Fatalf("repeat seed %d: status %d hit %v error %q", seed, status, rr.CacheHit, rr.Error)
		}
	}
	if mA, mB := getStats(t, a.ts.URL).Cache.Misses, getStats(t, b.ts.URL).Cache.Misses; mA+mB != 8 {
		t.Fatalf("repeats re-executed: misses now %d + %d", mA, mB)
	}

	// The forward counters surfaced on /stats and /metrics.
	st := getStats(t, a.ts.URL)
	if st.Cluster == nil || st.Cluster.Self != a.url || len(st.Cluster.Peers) != 1 {
		t.Fatalf("/stats cluster block = %+v", st.Cluster)
	}
	resp, err := http.Get(a.ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	for _, want := range []string{
		"# TYPE unimem_cluster_peer_requests_total counter",
		"# TYPE unimem_cluster_forward_seconds histogram",
		`outcome="ok"`,
		"unimem_cluster_peers 2",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestClusterOwnerDownFallsBackLocally is the degraded-mode acceptance
// check: with one ring peer dead, every request to the live node still
// answers 200 with a real result — remotely-owned keys just execute
// locally — and the fallback is visible in the peer counters.
func TestClusterOwnerDownFallsBackLocally(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close() // connection refused from now on

	nodes := newClusterNodes(t, 1, serve.Config{Quick: true, Workers: 2}, deadURL)
	a := nodes[0]

	for seed := uint64(1); seed <= 8; seed++ {
		rr, node, status := postRun(t, a.ts.URL, seededRun("xmem", seed))
		if status != http.StatusOK || rr.Error != "" || rr.TimeNS <= 0 {
			t.Fatalf("seed %d with dead peer: status %d error %q", seed, status, rr.Error)
		}
		if node != a.url {
			t.Fatalf("seed %d: answered by %q, want the live node", seed, node)
		}
	}

	st := getStats(t, a.ts.URL)
	if st.Cluster == nil || len(st.Cluster.Peers) != 1 {
		t.Fatalf("/stats cluster block = %+v", st.Cluster)
	}
	peer := st.Cluster.Peers[0]
	if peer.URL != cluster.NormalizePeer(deadURL) {
		t.Fatalf("peer URL = %q", peer.URL)
	}
	if peer.Fallbacks == 0 {
		t.Fatalf("no fallbacks recorded against the dead peer: %+v (8 seeds should spread across 2 peers)", peer)
	}
	if peer.Errors == 0 || peer.LastError == "" {
		t.Fatalf("dead peer's failures not recorded: %+v", peer)
	}
}

// TestSnapshotExchangeOverHTTP: GET /snapshot from a warm node, POST it
// to a cold node's /snapshot/merge, and the repeat request is a hit with
// zero fresh executions on the cold node.
func TestSnapshotExchangeOverHTTP(t *testing.T) {
	_, tsA := newTestServer(t, serve.Config{Quick: true, Workers: 2})
	_, tsB := newTestServer(t, serve.Config{Quick: true, Workers: 2})

	var warm serve.RunResponse
	if resp := postJSON(t, tsA.URL+"/run", cgRun("xmem"), &warm); resp.StatusCode != http.StatusOK {
		t.Fatalf("warm run status %d", resp.StatusCode)
	}
	if warm.Error != "" || warm.CacheHit {
		t.Fatalf("warm run = %+v", warm.OutcomeJSON)
	}

	snapResp, err := http.Get(tsA.URL + "/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	snap, err := io.ReadAll(snapResp.Body)
	snapResp.Body.Close()
	if err != nil || snapResp.StatusCode != http.StatusOK {
		t.Fatalf("GET /snapshot: status %d err %v", snapResp.StatusCode, err)
	}

	mergeResp, err := http.Post(tsB.URL+"/snapshot/merge", "application/json", bytes.NewReader(snap))
	if err != nil {
		t.Fatal(err)
	}
	var mr serve.MergeResponse
	if err := json.NewDecoder(mergeResp.Body).Decode(&mr); err != nil {
		t.Fatal(err)
	}
	mergeResp.Body.Close()
	if mergeResp.StatusCode != http.StatusOK || mr.Added < 1 {
		t.Fatalf("merge: status %d %+v", mergeResp.StatusCode, mr)
	}

	var cold serve.RunResponse
	if resp := postJSON(t, tsB.URL+"/run", cgRun("xmem"), &cold); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-merge run status %d", resp.StatusCode)
	}
	if !cold.CacheHit || cold.Error != "" {
		t.Fatalf("post-merge run not a hit: %+v", cold.OutcomeJSON)
	}
	if cold.TimeNS != warm.TimeNS {
		t.Fatalf("merged result diverges: %d vs %d", cold.TimeNS, warm.TimeNS)
	}
	st := getStats(t, tsB.URL)
	if st.Cache.Misses != 0 {
		t.Fatalf("cold node executed %d fresh runs, want 0", st.Cache.Misses)
	}
	if st.Merge == nil || st.Merge.Merges != 1 || st.Merge.TotalAdded != mr.Added || st.Merge.LastUnixNS == 0 {
		t.Fatalf("/stats merge block = %+v", st.Merge)
	}
}

// TestSnapshotMergeRejects: version-mismatched and corrupt payloads are
// 400s that leave the local cache untouched.
func TestSnapshotMergeRejects(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{Quick: true})

	var seedRun serve.RunResponse
	if resp := postJSON(t, ts.URL+"/run", cgRun("xmem"), &seedRun); resp.StatusCode != http.StatusOK {
		t.Fatalf("seed run status %d", resp.StatusCode)
	}
	before := getStats(t, ts.URL).Cache

	for _, tc := range []struct{ name, payload, wantErr string }{
		{"version", `{"version":99,"entries":[]}`, "version"},
		{"corrupt", `{"version":1,"entries":[{"key":`, "decoding"},
		{"garbage", `not a snapshot`, "decoding"},
	} {
		resp, err := http.Post(ts.URL+"/snapshot/merge", "application/json", strings.NewReader(tc.payload))
		if err != nil {
			t.Fatal(err)
		}
		var e struct {
			Error string `json:"error"`
		}
		json.NewDecoder(resp.Body).Decode(&e)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", tc.name, resp.StatusCode)
		}
		if !strings.Contains(e.Error, tc.wantErr) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, e.Error, tc.wantErr)
		}
	}
	if after := getStats(t, ts.URL).Cache; !reflect.DeepEqual(before, after) {
		t.Fatalf("rejected merges changed the cache: %+v -> %+v", before, after)
	}
	// The seeded entry still answers as a hit.
	var again serve.RunResponse
	postJSON(t, ts.URL+"/run", cgRun("xmem"), &again)
	if !again.CacheHit {
		t.Fatal("resident entry lost after rejected merges")
	}
}

// TestMergeWhileServing races /run traffic against /snapshot/merge posts
// through the full HTTP stack under -race.
func TestMergeWhileServing(t *testing.T) {
	_, warmTS := newTestServer(t, serve.Config{Quick: true, Workers: 2})
	for seed := uint64(1); seed <= 4; seed++ {
		var rr serve.RunResponse
		if resp := postJSON(t, warmTS.URL+"/run", seededRun("xmem", seed), &rr); resp.StatusCode != http.StatusOK {
			t.Fatalf("warm seed %d: status %d", seed, resp.StatusCode)
		}
	}
	snapResp, err := http.Get(warmTS.URL + "/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	snap, _ := io.ReadAll(snapResp.Body)
	snapResp.Body.Close()

	_, ts := newTestServer(t, serve.Config{Quick: true, Workers: 2})
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for seed := uint64(1); seed <= 4; seed++ {
				data, _ := json.Marshal(seededRun("xmem", seed))
				resp, err := http.Post(ts.URL+"/run", "application/json", bytes.NewReader(data))
				if err != nil {
					panic(err)
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					panic(fmt.Sprintf("run status %d", resp.StatusCode))
				}
			}
		}(w)
	}
	for m := 0; m < 3; m++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/snapshot/merge", "application/json", bytes.NewReader(snap))
			if err != nil {
				panic(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				panic(fmt.Sprintf("merge status %d", resp.StatusCode))
			}
		}()
	}
	wg.Wait()
	st := getStats(t, ts.URL)
	if st.Cache.Entries == 0 {
		t.Fatal("no entries after racing merges and runs")
	}
}

// TestReadyzLifecycle: /readyz is the readiness probe — 200 when
// serving, 503 with a reason while draining — and /healthz stays a pure
// liveness probe throughout.
func TestReadyzLifecycle(t *testing.T) {
	srv, ts := newTestServer(t, serve.Config{Quick: true})

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := get("/readyz"); code != http.StatusOK || !strings.Contains(body, `"ready":true`) {
		t.Fatalf("fresh /readyz = %d %q", code, body)
	}
	srv.SetDraining(true)
	if code, body := get("/readyz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "draining") {
		t.Fatalf("draining /readyz = %d %q", code, body)
	}
	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Fatalf("draining /healthz = %d, liveness must be unaffected", code)
	}
	srv.SetDraining(false)
	if code, _ := get("/readyz"); code != http.StatusOK {
		t.Fatalf("undrained /readyz = %d", code)
	}
}

// TestForwardedRequestIsTerminal: a request carrying the forward marker
// executes where it lands even when the ring says another node owns it —
// the loop-prevention property.
func TestForwardedRequestIsTerminal(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()

	nodes := newClusterNodes(t, 1, serve.Config{Quick: true, Workers: 2}, deadURL)
	a := nodes[0]

	// Find a seed owned by the dead peer, then send it pre-marked: it must
	// execute locally without even trying the (dead) owner.
	for seed := uint64(1); seed <= 64; seed++ {
		data, _ := json.Marshal(seededRun("xmem", seed))
		req, _ := http.NewRequest(http.MethodPost, a.ts.URL+"/run", bytes.NewReader(data))
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Unimem-Forwarded", "1")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var rr serve.RunResponse
		json.NewDecoder(resp.Body).Decode(&rr)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || rr.Error != "" {
			t.Fatalf("forward-marked seed %d: status %d error %q", seed, resp.StatusCode, rr.Error)
		}
	}
	// No fallbacks were recorded: the marked requests never consulted the
	// ring, so the dead peer was never an owner to fall back from.
	st := getStats(t, a.ts.URL)
	if st.Cluster.Peers[0].Fallbacks != 0 || st.Cluster.Peers[0].Errors != 0 {
		t.Fatalf("forward-marked requests touched the dead peer: %+v", st.Cluster.Peers[0])
	}
}
