// Stencil: a 2-D heat-equation style solver with halo exchange — the
// canonical HPC pattern the paper's introduction motivates. Two grids
// (current and next) are swept each step; halo pack/unpack buffers stream
// through the NIC path; a convergence test reduces every step.
//
// The example shows how DRAM capacity pressure shapes Unimem's choice:
// both grids cannot fit, so the runtime must pick the more profitable one
// and leave the halo buffers behind — and it still closes most of the
// NVM-only gap.
//
//	go run ./examples/stencil
package main

import (
	"context"
	"fmt"
	"log"

	"unimem"
)

func main() {
	const (
		ranks  = 8
		steps  = 60
		gridMB = 160 // per-rank grid footprint
	)
	m := unimem.PlatformA().
		WithNVMBandwidthFraction(0.5).
		WithDRAMCapacity(224 << 20)

	grid := int64(gridMB) << 20
	lines := grid / 64
	app := unimem.NewApp("heat2d", ranks, steps)
	app.Object("grid_cur", grid, unimem.WithHint(float64(2*lines)))
	app.Object("grid_next", grid, unimem.WithHint(float64(lines)))
	app.Object("halo_in", 8<<20)
	app.Object("halo_out", 8<<20)
	app.Object("coeff", 24<<20, unimem.WithHint(float64(24<<20/64)))

	// One time step: stencil sweep (read cur + coefficients, write next),
	// halo exchange of boundary rows, pointer swap (cheap), convergence
	// reduction.
	app.ComputePhase("apply_stencil", 120e6,
		unimem.Stencil("grid_cur", 2*lines*85/100, 0), // ~85% reach memory
		unimem.Stencil("grid_next", lines*85/100, 1),
		unimem.Stream("coeff", 24<<20/64/4, 0))
	app.CommPhase("halo_exchange", unimem.Halo, 2<<20, 2e6,
		unimem.Stream("halo_out", 2*(8<<20)/64, 0.5),
		unimem.Stream("halo_in", 2*(8<<20)/64, 0.5))
	app.ComputePhase("swap_and_norm", 10e6,
		unimem.Stream("grid_next", lines/8, 0))
	app.CommPhase("converged", unimem.Allreduce, 16, 1e6)
	w := app.Build()

	// One session, three strategies: the baselines memoize in the
	// session's run cache and the platform is calibrated exactly once.
	sess := unimem.New(m)
	outs, err := sess.RunAll(context.Background(), []unimem.Job{
		{Workload: w, Strategy: unimem.DRAMOnly()},
		{Workload: w, Strategy: unimem.SlowestOnly()},
		{Workload: w, Strategy: unimem.Unimem()},
	})
	must(err)
	dram, nvm, uni := outs[0].Result, outs[1].Result, outs[2].Result

	fmt.Printf("2-D heat stencil, %d ranks, %d steps, %d MiB grids, DRAM %d MiB/node\n\n",
		ranks, steps, gridMB, m.Fastest().CapacityBytes>>20)
	norm := func(t int64) float64 { return float64(t) / float64(dram.TimeNS) }
	fmt.Printf("  dram-only  %.2fx\n", 1.0)
	fmt.Printf("  nvm-only   %.2fx\n", norm(nvm.TimeNS))
	fmt.Printf("  unimem     %.2fx\n\n", norm(uni.TimeNS))

	gap := float64(nvm.TimeNS - dram.TimeNS)
	closed := float64(nvm.TimeNS-uni.TimeNS) / gap * 100
	rt := outs[2].Runtimes[0] // rank order: index 0 is rank 0
	fmt.Printf("Unimem closed %.0f%% of the NVM-only gap.\n", closed)
	fmt.Printf("rank 0 placement (%s): %v\n",
		rt.Plan().Strategy, rt.DRAMResidents())
	fmt.Printf("per-phase mean times (ms): ")
	for i, d := range uni.PhaseNS {
		fmt.Printf("%s=%.1f ", w.Phases[i].Name, d/1e6)
	}
	fmt.Println()
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
