package simprog

import (
	"bytes"
	"fmt"
	"testing"
)

// TestDifferentialEnginesAgree is the oracle suite: seeded random programs
// (mixed Send/Recv/Isend/Irecv/SendRecv/collectives with random tags,
// sizes and skews) run on both the event-driven core and the retired
// goroutine engine, asserting identical per-rank final Clock() and CommNS
// and identical received-payload sequences. Run under -race in CI.
func TestDifferentialEnginesAgree(t *testing.T) {
	m := PlatformFor()
	for _, p := range []int{1, 2, 3, 4, 8, 16, 33} {
		for seed := uint64(1); seed <= 12; seed++ {
			p, seed := p, seed
			t.Run(fmt.Sprintf("p%d_seed%d", p, seed), func(t *testing.T) {
				t.Parallel()
				prog := Generate(seed, p, 12)
				ev := prog.Run(Event, m)
				or := prog.Run(Oracle, m)
				for r := 0; r < p; r++ {
					if ev[r].Clock != or[r].Clock {
						t.Errorf("rank %d: event clock %d != oracle clock %d",
							r, ev[r].Clock, or[r].Clock)
					}
					if ev[r].CommNS != or[r].CommNS {
						t.Errorf("rank %d: event CommNS %d != oracle CommNS %d",
							r, ev[r].CommNS, or[r].CommNS)
					}
					if len(ev[r].Recvd) != len(or[r].Recvd) {
						t.Fatalf("rank %d: event received %d payloads, oracle %d",
							r, len(ev[r].Recvd), len(or[r].Recvd))
					}
					for i := range ev[r].Recvd {
						if !bytes.Equal(ev[r].Recvd[i], or[r].Recvd[i]) {
							t.Errorf("rank %d: payload %d: event %q != oracle %q",
								r, i, ev[r].Recvd[i], or[r].Recvd[i])
						}
					}
				}
			})
		}
	}
}

// TestDifferentialDeterministic pins the event engine's scheduling
// determinism: the same program run twice produces bit-identical traces.
func TestDifferentialDeterministic(t *testing.T) {
	m := PlatformFor()
	prog := Generate(0xD1CE, 8, 20)
	a := prog.Run(Event, m)
	b := prog.Run(Event, m)
	for r := range a {
		if a[r].Clock != b[r].Clock || a[r].CommNS != b[r].CommNS {
			t.Fatalf("rank %d diverged across identical runs: (%d,%d) vs (%d,%d)",
				r, a[r].Clock, a[r].CommNS, b[r].Clock, b[r].CommNS)
		}
	}
}
