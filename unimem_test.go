package unimem_test

import (
	"testing"

	"unimem"
)

func buildApp(iters int) *unimem.Workload {
	app := unimem.NewApp("demo", 2, iters)
	app.Object("field", 96<<20, unimem.WithHint(2e6))
	app.Object("index", 96<<20)
	app.Object("scratch", 96<<20)
	app.ComputePhase("sweep", 20e6,
		unimem.Stream("field", 2e6, 0.5),
		unimem.Chase("index", 4e5, 0))
	app.CommPhase("sum", unimem.Allreduce, 64, 1e6)
	return app.Build()
}

func TestPublicAPIEndToEnd(t *testing.T) {
	m := unimem.PlatformA().WithNVMBandwidthFraction(0.5).WithDRAMCapacity(224 << 20)
	w := buildApp(15)

	dram, err := unimem.RunDRAMOnly(w, m)
	if err != nil {
		t.Fatal(err)
	}
	nvm, err := unimem.RunNVMOnly(w, m)
	if err != nil {
		t.Fatal(err)
	}
	cfg := unimem.DefaultConfig()
	cfg.Calibration = unimem.Calibrate(m)
	uni, rts, err := unimem.Run(w, m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rts) != 2 {
		t.Fatalf("expected 2 runtimes, got %d", len(rts))
	}
	if !(dram.TimeNS <= uni.TimeNS && uni.TimeNS < nvm.TimeNS) {
		t.Fatalf("ordering violated: dram=%d uni=%d nvm=%d", dram.TimeNS, uni.TimeNS, nvm.TimeNS)
	}
	for _, rt := range rts {
		if rt.Plan() == nil {
			t.Fatal("runtime has no plan")
		}
	}
}

func TestXMemComparable(t *testing.T) {
	m := unimem.PlatformA().WithNVMBandwidthFraction(0.5)
	w := unimem.NewNPB("CG", "C", 4)
	xm, err := unimem.RunXMem(w, m)
	if err != nil {
		t.Fatal(err)
	}
	nvm, err := unimem.RunNVMOnly(w, m)
	if err != nil {
		t.Fatal(err)
	}
	if xm.TimeNS >= nvm.TimeNS {
		t.Fatal("X-Mem should beat NVM-only on CG")
	}
}

func TestBenchmarksSuite(t *testing.T) {
	suite := unimem.Benchmarks("C", 4)
	if len(suite) != 7 {
		t.Fatalf("suite size %d", len(suite))
	}
}

func TestExperimentsRegistry(t *testing.T) {
	order, reg := unimem.Experiments()
	if len(order) == 0 || len(reg) != len(order) {
		t.Fatal("experiment registry incomplete")
	}
	s := unimem.NewExperimentSuite()
	tbl, err := reg["table1"](s)
	if err != nil || len(tbl.Rows) == 0 {
		t.Fatalf("table1 runner: %v", err)
	}
}

func TestBuilderValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { unimem.NewApp("x", 0, 1) },
		func() {
			a := unimem.NewApp("x", 1, 1)
			a.Object("o", 1<<20)
			a.Object("o", 1<<20)
		},
		func() {
			a := unimem.NewApp("x", 1, 1)
			a.ComputePhase("p", 1, unimem.Stream("ghost", 100, 0))
			a.Build()
		},
		func() { unimem.NewApp("x", 1, 1).Build() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected builder panic")
				}
			}()
			fn()
		}()
	}
}

// TestRunTieredEndToEnd drives the public N-tier API: RunTiered on the
// three-tier platform must produce a multiple-choice-knapsack plan, beat
// slowest-only, and report per-tier usage consistent with the machine.
func TestRunTieredEndToEnd(t *testing.T) {
	m := unimem.PlatformHBMDDRNVM()
	w := buildApp(15)

	fast, err := unimem.RunFastestOnly(w, m)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := unimem.RunNVMOnly(w, m)
	if err != nil {
		t.Fatal(err)
	}
	cfg := unimem.DefaultConfig()
	cfg.Calibration = unimem.Calibrate(m)
	res, rts, err := unimem.RunTiered(w, m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !(fast.TimeNS <= res.TimeNS && res.TimeNS < slow.TimeNS) {
		t.Fatalf("ordering violated: fast=%d tiered=%d slow=%d", fast.TimeNS, res.TimeNS, slow.TimeNS)
	}
	if len(res.Tiers) != m.NumTiers() {
		t.Fatalf("tier usage entries %d, want %d", len(res.Tiers), m.NumTiers())
	}
	var resident int64
	for i, u := range res.Tiers {
		if u.Tier != i || u.Name != m.TierName(unimem.TierKind(i)) {
			t.Fatalf("tier usage %d mislabeled: %+v", i, u)
		}
		resident += u.ResidentBytes
	}
	if resident != w.TotalObjectBytes() {
		t.Fatalf("per-tier residency sums to %d, want total footprint %d", resident, w.TotalObjectBytes())
	}
	for _, rt := range rts {
		if rt.TierPlan() == nil {
			t.Fatal("multi-tier runtime has no tier plan")
		}
		if rt.Plan() != nil {
			t.Fatal("multi-tier runtime should not carry a two-tier plan")
		}
	}
	// The streamed object must land in a faster tier than the chased one
	// stays out of: field is bandwidth-bound (HBM), index latency-bound.
	tp := rts[0].TierPlan()
	if tp.Assign["field"] >= m.NumTiers()-1 {
		t.Errorf("bandwidth-bound object left in the slowest tier: %v", tp.Assign)
	}
}
