package exp

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"unimem/internal/machine"
	"unimem/internal/scenario"
	"unimem/internal/workloads"
)

// FleetStat is one (scenario, platform) cell of the scenario-fleet
// experiment: execution times per strategy (ns), the Unimem-vs-static
// speedup, and the adaptation counters — the machine-readable form of a
// table row.
type FleetStat struct {
	Archetype string `json:"archetype"`
	Scenario  string `json:"scenario"`
	Seed      uint64 `json:"seed"`
	Platform  string `json:"platform"`
	FastestNS int64  `json:"fastest_ns"`
	StaticNS  int64  `json:"static_ns"`
	XMemNS    int64  `json:"xmem_ns"`
	UnimemNS  int64  `json:"unimem_ns"`
	// SpeedupVsStatic is StaticNS/UnimemNS: > 1 means the online runtime
	// beat the hint-density static placement.
	SpeedupVsStatic float64 `json:"speedup_vs_static"`
	// RegretFrac is UnimemNS over the best offline-static time this cell
	// measured (min of hint-density and X-Mem), minus 1: what adapting
	// online cost relative to the oracle-best static placement. Negative
	// when Unimem beat every static policy.
	RegretFrac float64 `json:"regret_frac"`
	Migrations int     `json:"migrations"`
	// Decisions is rank 0's placement-decision count (1 + re-profiles):
	// how often the runtime adapted.
	Decisions int `json:"decisions"`
}

// FleetAggregate summarizes one archetype across its sampled scenarios
// and platforms.
type FleetAggregate struct {
	Archetype string `json:"archetype"`
	N         int    `json:"n"`
	// Geomean/Min/Max summarize SpeedupVsStatic across the archetype's
	// cells.
	Geomean float64 `json:"geomean_speedup"`
	Min     float64 `json:"min_speedup"`
	Max     float64 `json:"max_speedup"`
	// Wins/Losses/Ties count cells where Unimem beat / lost to / tied
	// static placement (±1% band).
	Wins   int `json:"wins"`
	Losses int `json:"losses"`
	Ties   int `json:"ties"`
	// Worst names the tail cell (lowest speedup) for diagnosis.
	Worst        string  `json:"worst"`
	WorstSpeedup float64 `json:"worst_speedup"`
	// MeanRegretFrac averages RegretFrac across the archetype's cells —
	// the figure the serve layer exports as unimem_fleet_regret.
	MeanRegretFrac float64 `json:"mean_regret_frac"`
}

// fleetPlatforms returns the platforms each sampled scenario runs on: the
// paper's two-tier machine at its harshest NVM point (4x latency, where
// placement matters most) and a capacity-tightened three-tier HBM+DDR+NVM
// stack (the multiple-choice-knapsack path). The stock three-tier preset's
// 384 MiB of combined fast capacity swallows a generated scenario whole;
// shrinking HBM to 96 MiB and DDR to 160 MiB restores placement tension
// at the generator's object scale.
func fleetPlatforms() []*machine.Machine {
	tight := machine.PlatformHBMDDRNVM().
		WithTierCapacity(0, 96<<20).
		WithTierCapacity(1, 160<<20)
	tight.Name = "HBM+DDR+NVM/tight"
	return []*machine.Machine{
		machine.PlatformA().WithNVMLatencyFactor(4),
		tight,
	}
}

// fleet returns the effective scenarios-per-archetype count.
func (s *Suite) fleet() int {
	if s.Fleet > 0 {
		return s.Fleet
	}
	return 4
}

// fleetTieBand is the ±band on SpeedupVsStatic inside which a cell counts
// as a tie.
const fleetTieBand = 0.01

// ScenarioFleet is the randomized fleet experiment: sample Fleet scenarios
// per generator archetype, run each on every fleet platform under four
// strategies — fastest-tier-only (normalization baseline), hint-density
// static placement, the X-Mem offline profile, and the full Unimem
// runtime — and aggregate per archetype: geomean/min/max Unimem-vs-static
// speedup, win/loss counts, and the tail scenarios where Unimem loses.
// Cells fan across the worker pool; the baseline runs are memoized in the
// run cache under keys that hash each scenario's spec digest.
func (s *Suite) ScenarioFleet() (*Table, error) {
	t := &Table{
		ID: "scenariofleet",
		Title: fmt.Sprintf("Scenario fleet: %d scenarios/archetype x platforms x strategies",
			s.fleet()),
		Columns: []string{"Archetype", "Scenario", "Platform", "Static", "X-Mem",
			"Unimem", "Speedup vs static", "Migrations", "Decisions"},
	}
	// regret_frac rides along in the CSV output only (the JSON FleetStats
	// always carried it; the rendered table stays pinned by goldens).
	t.CSVExtraColumns("regret_frac")
	platforms := fleetPlatforms()
	archetypes := scenario.Archetypes()

	type cell struct {
		arch scenario.Archetype
		seed uint64
		spec *scenario.Spec
		w    *workloads.Workload
		m    *machine.Machine
	}
	var cells []cell
	for _, a := range archetypes {
		for i := 0; i < s.fleet(); i++ {
			seed := s.Seed + uint64(i)
			spec, err := scenario.Generate(a, seed)
			if err != nil {
				return nil, err
			}
			// Size the world to the suite's -ranks so the spec, its digest
			// and the runs below all agree (cells run at opts.Ranks).
			spec.Ranks = s.Ranks
			// Compile once per scenario; the platform cells share the
			// workload (runs never mutate it).
			w, err := spec.Compile()
			if err != nil {
				return nil, err
			}
			for _, m := range platforms {
				cells = append(cells, cell{arch: a, seed: seed, spec: spec, w: w, m: m})
			}
		}
	}

	stats := make([]FleetStat, len(cells))
	err := forEachRow(s.ctx(), s.workers(), len(cells), func(i int) error {
		c := cells[i]
		w := c.w
		fast, err := s.runStatic(w, c.m.FastTwin(), "fast-only", nil)
		if err != nil {
			return err
		}
		static, err := s.runTieredStatic(w, c.m)
		if err != nil {
			return err
		}
		xm, err := s.runXMem(w, c.m)
		if err != nil {
			return err
		}
		uni, col, err := s.runUnimem(w, c.m, s.unimemConfig(c.m))
		if err != nil {
			return err
		}
		bestStatic := static.TimeNS
		if xm.TimeNS < bestStatic {
			bestStatic = xm.TimeNS
		}
		stats[i] = FleetStat{
			Archetype:       string(c.arch),
			Scenario:        c.spec.Name,
			Seed:            c.seed,
			Platform:        c.m.Name,
			FastestNS:       fast.TimeNS,
			StaticNS:        static.TimeNS,
			XMemNS:          xm.TimeNS,
			UnimemNS:        uni.TimeNS,
			SpeedupVsStatic: float64(static.TimeNS) / float64(uni.TimeNS),
			RegretFrac:      float64(uni.TimeNS)/float64(bestStatic) - 1,
			Migrations:      uni.TotalMigrations(),
			Decisions:       col.Decisions(),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Per-scenario rows (deterministic cell order), then one aggregate row
	// per archetype so CSV/rendered output carries the stats block too.
	perArch := make(map[string][]FleetStat, len(archetypes))
	for _, st := range stats {
		fastNS := float64(st.FastestNS)
		t.AddRow(st.Archetype, st.Scenario, st.Platform,
			float64(st.StaticNS)/fastNS,
			float64(st.XMemNS)/fastNS,
			float64(st.UnimemNS)/fastNS,
			st.SpeedupVsStatic,
			st.Migrations, st.Decisions)
		t.AddCSVExtra(strconv.FormatFloat(st.RegretFrac, 'g', -1, 64))
		perArch[st.Archetype] = append(perArch[st.Archetype], st)
	}
	t.FleetStats = stats

	var tails []string
	for _, a := range archetypes {
		agg := aggregateFleet(string(a), perArch[string(a)])
		t.FleetAggregates = append(t.FleetAggregates, agg)
		t.AddRow(agg.Archetype, "aggregate", fmt.Sprintf("n=%d", agg.N), "", "", "",
			fmt.Sprintf("geo=%.3f min=%.3f max=%.3f", agg.Geomean, agg.Min, agg.Max),
			fmt.Sprintf("wins=%d losses=%d ties=%d", agg.Wins, agg.Losses, agg.Ties), "")
		t.AddCSVExtra(strconv.FormatFloat(agg.MeanRegretFrac, 'g', -1, 64))
		if agg.Losses > 0 {
			tails = append(tails, fmt.Sprintf("%s: worst %s (%.3fx)",
				agg.Archetype, agg.Worst, agg.WorstSpeedup))
		}
	}
	t.Notes = append(t.Notes,
		"times normalized to the fastest-tier-only twin; speedup = static time / Unimem time",
		"static = hint-density tier fill from the spec's compile-time hints (stale under drift); X-Mem = one-shot offline profile into the fastest tier",
		fmt.Sprintf("win/loss band: ±%.0f%%; scenarios are regenerated deterministically from seed %#x", fleetTieBand*100, s.Seed))
	if len(tails) > 0 {
		t.Notes = append(t.Notes, "tail scenarios (Unimem loses): "+strings.Join(tails, "; "))
	}
	return t, nil
}

// aggregateFleet folds one archetype's cells into its aggregate record.
func aggregateFleet(arch string, cells []FleetStat) FleetAggregate {
	agg := FleetAggregate{Archetype: arch, N: len(cells), Min: math.Inf(1), Max: math.Inf(-1)}
	if len(cells) == 0 {
		agg.Min, agg.Max = 0, 0
		return agg
	}
	var logSum, regretSum float64
	for _, st := range cells {
		sp := st.SpeedupVsStatic
		logSum += math.Log(sp)
		regretSum += st.RegretFrac
		if sp < agg.Min {
			agg.Min = sp
			agg.Worst = st.Scenario + "@" + st.Platform
			agg.WorstSpeedup = sp
		}
		if sp > agg.Max {
			agg.Max = sp
		}
		switch {
		case sp > 1+fleetTieBand:
			agg.Wins++
		case sp < 1-fleetTieBand:
			agg.Losses++
		default:
			agg.Ties++
		}
	}
	agg.Geomean = math.Exp(logSum / float64(len(cells)))
	agg.MeanRegretFrac = regretSum / float64(len(cells))
	return agg
}
