package workloads

import (
	"strings"
	"testing"

	"unimem/internal/machine"
)

// table3 lists the paper's Table 3 object inventories.
var table3 = map[string][]string{
	"CG": {"col_idx", "a", "w", "z", "p", "q", "r", "rowstr", "x"},
	"FT": {"u", "u0", "u1", "u2", "twiddle"},
	"BT": {"rhs", "forcing", "u", "us", "vs", "ws", "qs", "rho_i", "square",
		"out_buffer", "in_buffer", "fjac", "njac", "lhsa", "lhsb", "lhsc"},
	"LU": {"u", "rsd", "frct", "flux", "a", "b", "c", "d", "buf", "buf1"},
	"SP": {"u", "us", "vs", "ws", "qs", "rho_i", "square", "rhs", "forcing",
		"out_buffer", "in_buffer", "lhs"},
	"MG": {"buff", "u", "v", "r"},
}

func TestTable3Inventories(t *testing.T) {
	for name, want := range table3 {
		w := NewNPB(name, "C", 4)
		for _, objName := range want {
			if w.Object(objName) == nil {
				t.Errorf("%s: missing Table 3 object %q", name, objName)
			}
		}
	}
}

func TestNek5000Has48Objects(t *testing.T) {
	w := NewNek5000("C", 4)
	if len(w.Objects) != 48 {
		t.Fatalf("Nek5000 has %d target objects, paper Table 3 says 48", len(w.Objects))
	}
	if w.FootprintFrac != 0.35 {
		t.Fatalf("Nek5000 footprint fraction %v, paper says 35%%", w.FootprintFrac)
	}
}

func TestAllRefsResolve(t *testing.T) {
	for _, w := range append(EvalSuite("C", 4), NewSTREAM(4), NewPointerChase(4)) {
		for _, ph := range w.Phases {
			for iter := 0; iter < w.Iterations; iter += 7 {
				for _, r := range ph.Refs(iter) {
					if w.Object(r.Object) == nil {
						t.Fatalf("%s/%s: ref to unknown object %q", w.Name, ph.Name, r.Object)
					}
					if r.Accesses < 1 {
						t.Fatalf("%s/%s/%s: non-positive accesses", w.Name, ph.Name, r.Object)
					}
					if r.ReadFrac < 0 || r.ReadFrac > 1 {
						t.Fatalf("%s/%s/%s: read fraction %v", w.Name, ph.Name, r.Object, r.ReadFrac)
					}
				}
			}
		}
	}
}

func TestClassScaling(t *testing.T) {
	c := NewCG("C", 4)
	d := NewCG("D", 4)
	if d.Object("a").Size != 3*c.Object("a").Size {
		t.Fatalf("class D should be 3x class C: %d vs %d",
			d.Object("a").Size, c.Object("a").Size)
	}
}

func TestStrongScalingShrinksPerRank(t *testing.T) {
	w4 := NewCG("D", 4)
	w16 := NewCG("D", 16)
	if w16.Object("a").Size*4 != w4.Object("a").Size {
		t.Fatalf("per-rank size should scale 1/ranks: %d vs %d",
			w16.Object("a").Size, w4.Object("a").Size)
	}
	// And caching attenuation means post-cache accesses shrink
	// superlinearly (the Fig. 12 effect).
	a4 := w4.Phases[0].Refs(0)[0].Accesses
	a16 := w16.Phases[0].Refs(0)[0].Accesses
	if a16*4 >= a4 {
		t.Fatalf("caching should attenuate accesses superlinearly: 4r=%d 16r=%d", a4, a16)
	}
}

func TestAttenuation(t *testing.T) {
	if atten(0) != 0 {
		t.Error("atten(0)")
	}
	if a := atten(1 << 20); a != 0.05 {
		t.Errorf("cache-resident object attenuation %v, want floor 0.05", a)
	}
	if a := atten(1 << 30); a < 0.95 {
		t.Errorf("huge object attenuation %v, want ~1", a)
	}
	// Monotone in size.
	prev := 0.0
	for _, mb := range []int64{1, 10, 25, 50, 100, 500} {
		a := atten(mb << 20)
		if a < prev {
			t.Fatalf("attenuation not monotone at %dMB", mb)
		}
		prev = a
	}
}

func TestRefHintsComputed(t *testing.T) {
	w := NewCG("C", 4)
	if w.Object("a").RefHint <= 0 {
		t.Error("a must have a static hint")
	}
	if w.Object("p").RefHint != 0 {
		t.Error("p's count is convergence-dependent; no hint (paper limitation)")
	}
	// Nek work arrays are unhintable; geometry is.
	nek := NewNek5000("C", 4)
	if nek.Object("wk01").RefHint != 0 {
		t.Error("Krylov work arrays must have no static hint")
	}
	if nek.Object("xm1").RefHint <= 0 {
		t.Error("geometry arrays must have static hints")
	}
}

func TestNekDrift(t *testing.T) {
	w := NewNek5000("C", 4)
	var pressure *Phase
	for i := range w.Phases {
		if w.Phases[i].Name == "pressure_solve" {
			pressure = &w.Phases[i]
		}
	}
	if pressure == nil {
		t.Fatal("no pressure_solve phase")
	}
	objsAt := func(iter int) string {
		var names []string
		for _, r := range pressure.Refs(iter) {
			if strings.HasPrefix(r.Object, "wk") {
				names = append(names, r.Object)
			}
		}
		return strings.Join(names, ",")
	}
	if objsAt(0) == objsAt(30) {
		t.Fatal("hot Krylov set must drift across iterations")
	}
	if objsAt(0) != objsAt(5) {
		t.Fatal("hot set must be stable within a drift period")
	}
}

func TestFTPartitionableArrays(t *testing.T) {
	w := NewFT("C", 4)
	for _, n := range []string{"u0", "u1", "u2"} {
		if !w.Object(n).Partitionable {
			t.Errorf("%s must be partitionable (1-D regular)", n)
		}
	}
	m := machine.PlatformA()
	for _, n := range []string{"u0", "u1", "u2"} {
		if w.Object(n).Size <= m.Fastest().CapacityBytes {
			t.Errorf("%s must exceed default DRAM to exercise chunking", n)
		}
	}
}

func TestMGUnpartitionable(t *testing.T) {
	w := NewMG("C", 4)
	for _, o := range w.Objects {
		if o.Partitionable {
			t.Errorf("MG's %s must not be partitionable (memory aliasing)", o.Name)
		}
	}
}

func TestSPSensitivityPatterns(t *testing.T) {
	w := NewSP("C", 4)
	pats := map[string]machine.Pattern{}
	for _, ph := range w.Phases {
		for _, r := range ph.Refs(0) {
			pats[r.Object+"/"+ph.Name] = r.Pattern
		}
	}
	if pats["lhs/x_solve"] != machine.PointerChase {
		t.Error("lhs must be latency-bound in solves (Fig. 4)")
	}
	if pats["in_buffer/copy_faces"] != machine.Stream {
		t.Error("in_buffer must be a pure stream (Fig. 4)")
	}
	if pats["rhs/compute_rhs"] != machine.Random {
		t.Error("rhs must be mid-MLP random (sensitive to both, Fig. 4)")
	}
}

func TestEvalSuite(t *testing.T) {
	suite := EvalSuite("D", 4)
	if len(suite) != 7 {
		t.Fatalf("suite has %d workloads, want 7", len(suite))
	}
	for _, w := range suite {
		if w.Name == "FT" && w.Class != "C" {
			t.Error("FT must run Class C even in a Class D suite (paper §5)")
		}
	}
}

func TestUnknownBenchmarkPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown benchmark should panic")
		}
	}()
	NewNPB("EP", "C", 4)
}

func TestTotalObjectBytes(t *testing.T) {
	w := NewMG("C", 4)
	want := w.Object("u").Size + w.Object("r").Size + w.Object("v").Size + w.Object("buff").Size
	if w.TotalObjectBytes() != want {
		t.Fatalf("TotalObjectBytes = %d, want %d", w.TotalObjectBytes(), want)
	}
}

func TestCommKindStrings(t *testing.T) {
	if CommAllreduce.String() != "Allreduce" || CommHalo.String() != "SendRecv" ||
		CommNone.String() != "" || CommWaitHalo.String() != "Wait" {
		t.Error("comm kind names wrong")
	}
}

func TestMicrobenchmarks(t *testing.T) {
	s := NewSTREAM(4)
	if len(s.Phases) != 4 {
		t.Fatalf("STREAM has %d kernels, want copy/scale/add/triad", len(s.Phases))
	}
	p := NewPointerChase(4)
	if p.Phases[0].Refs(0)[0].Pattern != machine.PointerChase {
		t.Fatal("pChase must chase pointers")
	}
}
