// Package machine models the hardware platform underneath the Unimem
// runtime: a CPU, a network, and an ordered heterogeneous main-memory
// hierarchy of N tiers (tier 0 fastest).
//
// The paper evaluates on real clusters whose NVM is emulated by Quartz
// (bandwidth- or latency-throttled DRAM) or by remote NUMA memory; its
// memory system is exactly two tiers, DRAM + NVM. This package keeps that
// configuration as the degenerate case (PlatformA, Edison) and generalizes
// it to the heterogeneous main memories the paper's introduction
// anticipates: HBM on-package memory (PlatformKNL), CXL-attached expanders
// (PlatformCXL), and three-deep HBM+DDR+NVM stacks (PlatformHBMDDRNVM).
// The tier hierarchy is the ordered Tiers slice; the tier graph's migration
// edges are the pairwise copy bandwidths of CopyBandwidthBetweenBps.
//
// All simulated time in the repository is int64 nanoseconds produced by this
// package; nothing in the simulation path reads the wall clock.
package machine

import "fmt"

// CacheLineBytes is the cache line size assumed throughout (matches the
// paper's Eq. 1, which multiplies access counts by the cache line size).
const CacheLineBytes = 64

// TierKind indexes a tier in a Machine's ordered hierarchy: tier 0 is the
// fastest, higher indices are progressively slower/larger. On the paper's
// two-tier platforms index 0 is DRAM and index 1 is NVM, which the named
// constants preserve.
type TierKind int

const (
	// DRAM is the small, fast tier of the two-tier presets (index 0; the
	// fastest tier of any hierarchy).
	DRAM TierKind = iota
	// NVM is the large, slow tier of the two-tier presets (index 1).
	NVM
)

// String returns the conventional two-tier name for indices 0 and 1 and a
// generic tier label beyond.
func (k TierKind) String() string {
	switch k {
	case DRAM:
		return "DRAM"
	case NVM:
		return "NVM"
	default:
		return fmt.Sprintf("tier%d", int(k))
	}
}

// TierSpec describes one memory tier's performance and capacity.
type TierSpec struct {
	// Name labels the tier's technology ("DRAM", "NVM", "HBM", "CXL", ...).
	Name string
	// ReadLatNS and WriteLatNS are loaded access latencies in nanoseconds.
	ReadLatNS  float64
	WriteLatNS float64
	// BandwidthBps is the per-rank sustainable bandwidth in bytes/second.
	BandwidthBps float64
	// CapacityBytes is the per-rank capacity of the tier.
	CapacityBytes int64
}

// Latency returns the effective access latency in ns for a mix of reads and
// writes, where readFrac is the fraction of accesses that are reads.
func (t TierSpec) Latency(readFrac float64) float64 {
	if readFrac < 0 {
		readFrac = 0
	} else if readFrac > 1 {
		readFrac = 1
	}
	return readFrac*t.ReadLatNS + (1-readFrac)*t.WriteLatNS
}

// Pattern classifies the main-memory access behaviour of a data object in a
// phase. The pattern determines memory-level parallelism (MLP), which is what
// makes an object bandwidth-sensitive (many concurrent independent accesses)
// or latency-sensitive (dependent accesses), per §2.2 of the paper.
type Pattern int

const (
	// Stream is sequential, massively concurrent access (e.g. vector
	// sweeps); bandwidth-bound.
	Stream Pattern = iota
	// Stencil is near-neighbour access with good spatial locality and high
	// concurrency; mostly bandwidth-bound.
	Stencil
	// Random is independent accesses with poor locality and moderate
	// concurrency; sensitive to both bandwidth and latency.
	Random
	// PointerChase is dependent accesses (linked traversal, indexed
	// gather chains); latency-bound.
	PointerChase
)

var patternNames = [...]string{"stream", "stencil", "random", "pointer-chase"}

// String returns a short human-readable pattern name.
func (p Pattern) String() string {
	if int(p) < len(patternNames) {
		return patternNames[p]
	}
	return fmt.Sprintf("Pattern(%d)", int(p))
}

// MLP returns the memory-level parallelism assumed for the pattern: the
// effective number of main-memory accesses in flight (hardware prefetchers
// give streaming sweeps very deep pipelines; dependent chains have none).
func (p Pattern) MLP() float64 {
	switch p {
	case Stream:
		return 320
	case Stencil:
		return 32
	case Random:
		return 8
	case PointerChase:
		return 1
	default:
		return 1
	}
}

// Machine is the full platform description. The zero value is not usable;
// construct with one of the Platform* presets or Edison and derive variants
// with the With* methods (which return copies, so a base machine can be
// reused across experiment sweeps).
type Machine struct {
	Name string

	// Tiers is the ordered memory hierarchy, tier 0 fastest. Every preset
	// has at least two tiers; the paper's platforms have exactly two
	// (DRAM at index 0, NVM at index 1).
	Tiers []TierSpec

	// CopyBandwidthBps is the achievable tier-to-tier memcpy bandwidth used
	// for data migration (Eq. 4's mem_copy_bw), limited by the slowest tier
	// of the hierarchy; CopyBandwidthBetweenBps gives the per-edge figure.
	CopyBandwidthBps float64

	// CPUFreqHz is the core clock; together with SampleIntervalCycles it
	// sets the emulated performance-counter sampling period.
	CPUFreqHz float64
	// FlopsPerSec is the per-rank achievable compute throughput used to
	// convert a phase's flop count into compute time.
	FlopsPerSec float64
	// SampleIntervalCycles is the counter sampling interval (paper: 1000).
	SampleIntervalCycles int64

	// NetLatencyNS and NetBandwidthBps parametrize the interconnect model
	// used by the MPI substrate.
	NetLatencyNS    float64
	NetBandwidthBps float64
}

// PlatformA returns the paper's "Platform A": a small cluster with two
// eight-core Xeon E5-2630 per node and 32 GB DDR4. The DRAM numbers are
// first-order per-rank figures; the experiments only depend on NVM/DRAM
// ratios, which the With* methods set exactly as the paper's sweeps do.
// The default NVM tier equals DRAM performance (i.e. not yet degraded);
// experiments always derive a degraded variant.
func PlatformA() *Machine {
	dram := TierSpec{
		Name:          "DRAM",
		ReadLatNS:     80,
		WriteLatNS:    80,
		BandwidthBps:  12.8e9,
		CapacityBytes: 256 << 20, // paper's default HMS DRAM: 256MB
	}
	nvm := dram
	nvm.Name = "NVM"
	nvm.CapacityBytes = 16 << 30 // paper's default NVM: 16GB
	m := &Machine{
		Name:                 "PlatformA",
		Tiers:                []TierSpec{dram, nvm},
		CPUFreqHz:            2.4e9,
		FlopsPerSec:          4.8e9,
		SampleIntervalCycles: 1000,
		NetLatencyNS:         1500,
		NetBandwidthBps:      5.0e9,
	}
	m.recomputeCopyBW()
	return m
}

// Edison returns the LBNL Edison-like platform used for strong scaling
// (two 12-core Ivy Bridge, 64 GB DDR3), with NVM emulated by remote NUMA:
// 60% of DRAM bandwidth and 1.89x DRAM latency, and 32GB NVM / 256MB DRAM
// per the paper's strong-scaling configuration.
func Edison() *Machine {
	m := PlatformA()
	m.Name = "Edison"
	m.Tiers[0].BandwidthBps = 14.0e9
	m.Tiers[1].BandwidthBps = 14.0e9
	m.Tiers[1].CapacityBytes = 32 << 30
	m.NetLatencyNS = 1100
	m.NetBandwidthBps = 8.0e9
	mm := m.WithNVMBandwidthFraction(0.60)
	mm = mm.WithNVMLatencyFactor(1.89)
	mm.Name = "Edison"
	return mm
}

// PlatformKNL returns a Knights-Landing-like two-tier platform: on-package
// HBM (MCDRAM) as the small fast tier over DDR as the large slow tier. HBM
// trades ~4x the stream bandwidth for slightly worse loaded latency, which
// is what makes placement interesting: bandwidth-bound objects want HBM,
// dependent chains prefer DDR. Capacities follow the repository's simulated
// scale (fast tier 256MB per rank, like Platform A's DRAM allowance).
func PlatformKNL() *Machine {
	m := PlatformA()
	m.Name = "KNL"
	hbm := TierSpec{
		Name:          "HBM",
		ReadLatNS:     90,
		WriteLatNS:    90,
		BandwidthBps:  51.2e9,
		CapacityBytes: 256 << 20,
	}
	ddr := TierSpec{
		Name:          "DDR",
		ReadLatNS:     80,
		WriteLatNS:    80,
		BandwidthBps:  12.8e9,
		CapacityBytes: 16 << 30,
	}
	m.Tiers = []TierSpec{hbm, ddr}
	m.recomputeCopyBW()
	return m
}

// PlatformCXL returns a CXL-memory-expansion platform: local DDR as the
// small fast tier and a CXL-attached expander as the large slow tier, with
// the expander paying the link round trip (~2.5x loaded latency) and half
// the local bandwidth — the regime CXL type-3 devices land in.
func PlatformCXL() *Machine {
	m := PlatformA()
	m.Name = "CXL"
	ddr := TierSpec{
		Name:          "DDR",
		ReadLatNS:     80,
		WriteLatNS:    80,
		BandwidthBps:  12.8e9,
		CapacityBytes: 256 << 20,
	}
	cxl := TierSpec{
		Name:          "CXL",
		ReadLatNS:     200,
		WriteLatNS:    200,
		BandwidthBps:  6.4e9,
		CapacityBytes: 16 << 30,
	}
	m.Tiers = []TierSpec{ddr, cxl}
	m.recomputeCopyBW()
	return m
}

// PlatformHBMDDRNVM returns a three-tier platform: a small HBM tier over a
// mid-size DDR tier over a large NVM tier whose performance point follows
// Table 1's STT-RAM row (6x/8x read/write latency, 0.7x bandwidth vs DRAM),
// the same technology scaling TechMachine applies to the two-tier sweeps.
func PlatformHBMDDRNVM() *Machine {
	m := PlatformA()
	m.Name = "HBM+DDR+NVM"
	hbm := TierSpec{
		Name:          "HBM",
		ReadLatNS:     90,
		WriteLatNS:    90,
		BandwidthBps:  51.2e9,
		CapacityBytes: 128 << 20,
	}
	ddr := TierSpec{
		Name:          "DDR",
		ReadLatNS:     80,
		WriteLatNS:    80,
		BandwidthBps:  12.8e9,
		CapacityBytes: 256 << 20,
	}
	nvm := TierSpec{
		Name:          "NVM",
		ReadLatNS:     80 * 6,
		WriteLatNS:    80 * 8,
		BandwidthBps:  12.8e9 * 0.7,
		CapacityBytes: 16 << 30,
	}
	m.Tiers = []TierSpec{hbm, ddr, nvm}
	m.recomputeCopyBW()
	return m
}

// clone returns a deep copy of m (the tier slice is copied, so derived
// machines never alias their base).
func (m *Machine) clone() *Machine {
	c := *m
	c.Tiers = append([]TierSpec(nil), m.Tiers...)
	return &c
}

// NumTiers returns the depth of the memory hierarchy.
func (m *Machine) NumTiers() int { return len(m.Tiers) }

// Tier returns the spec of tier k (0 fastest).
func (m *Machine) Tier(k TierKind) TierSpec {
	if int(k) < 0 || int(k) >= len(m.Tiers) {
		panic(fmt.Sprintf("machine: tier %d out of range (machine has %d tiers)", int(k), len(m.Tiers)))
	}
	return m.Tiers[k]
}

// Fastest returns the spec of tier 0.
func (m *Machine) Fastest() TierSpec { return m.Tiers[0] }

// Slowest returns the spec of the last tier.
func (m *Machine) Slowest() TierSpec { return m.Tiers[len(m.Tiers)-1] }

// SlowestIdx returns the index of the last (slowest) tier — NVM on the
// two-tier presets.
func (m *Machine) SlowestIdx() TierKind { return TierKind(len(m.Tiers) - 1) }

// TierName returns tier k's technology label.
func (m *Machine) TierName(k TierKind) string { return m.Tier(k).Name }

// recomputeCopyBW sets the migration copy bandwidth to a fixed fraction of
// the slowest tier's bandwidth: a cross-tier memcpy is limited by its
// slower side once a tier is degraded.
func (m *Machine) recomputeCopyBW() {
	slow := m.Tiers[0].BandwidthBps
	for _, t := range m.Tiers[1:] {
		if t.BandwidthBps < slow {
			slow = t.BandwidthBps
		}
	}
	m.CopyBandwidthBps = 0.85 * slow
}

// WithNVMBandwidthFraction returns a copy of m whose slowest tier has
// frac x fastest-tier bandwidth (latency unchanged). frac must be in (0, 1].
func (m *Machine) WithNVMBandwidthFraction(frac float64) *Machine {
	if frac <= 0 || frac > 1 {
		panic(fmt.Sprintf("machine: bandwidth fraction %v out of (0,1]", frac))
	}
	c := m.clone()
	c.Tiers[len(c.Tiers)-1].BandwidthBps = m.Tiers[0].BandwidthBps * frac
	c.Name = fmt.Sprintf("%s/NVM-bw=%gx", m.Name, frac)
	c.recomputeCopyBW()
	return c
}

// WithNVMLatencyFactor returns a copy of m whose slowest tier has factor x
// fastest-tier latency (bandwidth unchanged). factor must be >= 1.
func (m *Machine) WithNVMLatencyFactor(factor float64) *Machine {
	if factor < 1 {
		panic(fmt.Sprintf("machine: latency factor %v < 1", factor))
	}
	c := m.clone()
	last := len(c.Tiers) - 1
	c.Tiers[last].ReadLatNS = m.Tiers[0].ReadLatNS * factor
	c.Tiers[last].WriteLatNS = m.Tiers[0].WriteLatNS * factor
	c.Name = fmt.Sprintf("%s/NVM-lat=%gx", m.Name, factor)
	c.recomputeCopyBW()
	return c
}

// WithDRAMCapacity returns a copy of m with the given per-rank capacity on
// the fastest tier.
func (m *Machine) WithDRAMCapacity(bytes int64) *Machine {
	return m.WithTierCapacity(0, bytes)
}

// WithNVMCapacity returns a copy of m with the given per-rank capacity on
// the slowest tier.
func (m *Machine) WithNVMCapacity(bytes int64) *Machine {
	return m.WithTierCapacity(m.SlowestIdx(), bytes)
}

// WithTierCapacity returns a copy of m with tier k's per-rank capacity set.
func (m *Machine) WithTierCapacity(k TierKind, bytes int64) *Machine {
	c := m.clone()
	c.Tiers[k] = c.Tier(k) // bounds check
	c.Tiers[k].CapacityBytes = bytes
	return c
}

// FastTwin returns a copy of m in which every tier has the component-wise
// best performance of the hierarchy — the maximum bandwidth and minimum
// latency over all tiers (capacities unchanged). This is the
// fastest-memory-only system multi-tier results normalize against,
// generalizing the paper's DRAM-only baseline: a true upper bound even
// when tier 0 trades latency for bandwidth (KNL's HBM has 4x DDR's
// bandwidth but worse loaded latency, so neither real tier dominates).
// On the two-tier presets, where DRAM dominates NVM on every axis, this
// is exactly the paper's undegraded twin.
func (m *Machine) FastTwin() *Machine {
	c := m.clone()
	best := c.Tiers[0]
	for _, t := range c.Tiers[1:] {
		if t.BandwidthBps > best.BandwidthBps {
			best.BandwidthBps = t.BandwidthBps
		}
		if t.ReadLatNS < best.ReadLatNS {
			best.ReadLatNS = t.ReadLatNS
		}
		if t.WriteLatNS < best.WriteLatNS {
			best.WriteLatNS = t.WriteLatNS
		}
	}
	for i := range c.Tiers {
		c.Tiers[i].ReadLatNS = best.ReadLatNS
		c.Tiers[i].WriteLatNS = best.WriteLatNS
		c.Tiers[i].BandwidthBps = best.BandwidthBps
	}
	c.Name = m.Name + "/fast-twin"
	c.recomputeCopyBW()
	return c
}

// SamplePeriodNS returns the emulated counter sampling period in ns.
func (m *Machine) SamplePeriodNS() float64 {
	return float64(m.SampleIntervalCycles) / m.CPUFreqHz * 1e9
}

// MemTimeNS returns the virtual time, in nanoseconds, to service accesses
// main-memory accesses of the given pattern against tier k, with readFrac
// of them reads. The model is additive: a bandwidth term (bytes moved over
// tier bandwidth) plus a latency term (serialized access chains of depth
// accesses/MLP). Deep-MLP streams are bandwidth-bound and nearly latency-
// insensitive; dependent chains are the reverse; mid-MLP random access
// pays both — which is exactly the sensitivity taxonomy of §2.2 (and lets
// an object be "sensitive to both", like SP's rhs in Fig. 4).
func (m *Machine) MemTimeNS(k TierKind, accesses int64, p Pattern, readFrac float64) float64 {
	if accesses <= 0 {
		return 0
	}
	t := m.Tier(k)
	bwTerm := float64(accesses*CacheLineBytes) / t.BandwidthBps * 1e9
	latTerm := float64(accesses) * t.Latency(readFrac) / p.MLP()
	return bwTerm + latTerm
}

// ComputeTimeNS converts a flop count into compute time.
func (m *Machine) ComputeTimeNS(flops float64) float64 {
	if flops <= 0 {
		return 0
	}
	return flops / m.FlopsPerSec * 1e9
}

// CopyTimeNS returns the virtual time to migrate bytes across the
// hierarchy's slowest migration edge (the DRAM<->NVM edge on the two-tier
// presets). Tier-pair-aware callers should use CopyTimeBetweenNS.
func (m *Machine) CopyTimeNS(bytes int64) float64 {
	if bytes <= 0 {
		return 0
	}
	return float64(bytes) / m.CopyBandwidthBps * 1e9
}

// CopyBandwidthBetweenBps returns the migration bandwidth of the tier-graph
// edge between tiers a and b: a memcpy runs at a fixed efficiency of the
// slower endpoint's bandwidth. On two-tier machines this equals
// CopyBandwidthBps for the only edge.
func (m *Machine) CopyBandwidthBetweenBps(a, b TierKind) float64 {
	slow := m.Tier(a).BandwidthBps
	if bw := m.Tier(b).BandwidthBps; bw < slow {
		slow = bw
	}
	return 0.85 * slow
}

// CopyTimeBetweenNS returns the virtual time to migrate bytes from tier a
// to tier b.
func (m *Machine) CopyTimeBetweenNS(a, b TierKind, bytes int64) float64 {
	if bytes <= 0 {
		return 0
	}
	return float64(bytes) / m.CopyBandwidthBetweenBps(a, b) * 1e9
}

// MsgTimeNS returns the virtual time for a point-to-point message of the
// given size: a latency term plus a bandwidth term.
func (m *Machine) MsgTimeNS(bytes int64) float64 {
	return m.NetLatencyNS + float64(bytes)/m.NetBandwidthBps*1e9
}
