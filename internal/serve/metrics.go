package serve

import (
	"net/http"
	"strconv"
	"time"

	"unimem"
	"unimem/internal/app"
	"unimem/internal/mpisim"
	"unimem/internal/obs"
)

// serverMetrics owns the Prometheus registry behind GET /metrics. All
// fields are nil when metrics are disabled (Config.DisableMetrics);
// every obs instrument no-ops on nil, so call sites stay unconditional.
type serverMetrics struct {
	reg *obs.Registry

	// requests/duration are labeled per endpoint; duration additionally
	// by cache attribution: "hit" (served entirely from the run cache),
	// "miss" (at least one fresh execution), or "none" (no run executed —
	// errors, or endpoints that don't run jobs).
	requests *obs.CounterVec
	duration *obs.HistogramVec
	// slow counts requests that crossed the -slow-request threshold (the
	// metric twin of the Warn log line).
	slow *obs.CounterVec

	// Fleet policy-quality telemetry, fed by /fleet's per-row attribution
	// documents (Unimem-strategy rows only): the latest sweep's mean
	// regret fraction per archetype, the per-scenario regret distribution,
	// and realized/predicted migration-time ratios.
	fleetRegret     *obs.GaugeVec
	fleetRegretHist *obs.HistogramVec
	migBenefit      *obs.HistogramVec
}

// endpointMetrics is one instrumented route's pre-resolved metric
// children: resolving the labeled children once at route registration
// makes the per-request hot path two atomic updates instead of two
// labeled map lookups. Every child is nil when metrics are disabled,
// and every obs update no-ops on nil.
type endpointMetrics struct {
	m        *serverMetrics
	endpoint string

	ok, badReq, fail         *obs.Counter
	durHit, durMiss, durNone *obs.Histogram
	slow                     *obs.Counter
}

// forEndpoint pre-resolves the endpoint's children for the common
// status codes and every cache-attribution label; uncommon codes fall
// back to the labeled lookup.
func (m *serverMetrics) forEndpoint(endpoint string) *endpointMetrics {
	return &endpointMetrics{
		m:        m,
		endpoint: endpoint,
		ok:       m.requests.With(endpoint, "200"),
		badReq:   m.requests.With(endpoint, "400"),
		fail:     m.requests.With(endpoint, "500"),
		durHit:   m.duration.With(endpoint, "hit"),
		durMiss:  m.duration.With(endpoint, "miss"),
		durNone:  m.duration.With(endpoint, "none"),
		slow:     m.slow.With(endpoint),
	}
}

// observe records one completed request.
func (e *endpointMetrics) observe(status int, cache string, seconds float64) {
	switch status {
	case http.StatusOK:
		e.ok.Inc()
	case http.StatusBadRequest:
		e.badReq.Inc()
	case http.StatusInternalServerError:
		e.fail.Inc()
	default:
		e.m.requests.With(e.endpoint, strconv.Itoa(status)).Inc()
	}
	switch cache {
	case "hit":
		e.durHit.Observe(seconds)
	case "miss":
		e.durMiss.Observe(seconds)
	default:
		e.durNone.Observe(seconds)
	}
}

// regretBuckets cover the regret-fraction range: negative values (the
// online runtime beat the static oracle's model prediction) through
// multiples of the oracle time.
var regretBuckets = []float64{-0.25, -0.1, -0.05, -0.02, -0.01, 0, 0.01, 0.02, 0.05, 0.1, 0.25, 0.5, 1, 2.5}

// ratioBuckets cover realized/predicted migration-time ratios around the
// break-even point 1.
var ratioBuckets = []float64{0.25, 0.5, 0.75, 0.9, 1, 1.1, 1.25, 1.5, 2, 3, 5, 10}

// observeFleetRow feeds one /fleet Unimem row's attribution document into
// the policy-quality instruments; meanRegret is the sweep's running
// per-archetype mean, maintained by the caller.
func (m *serverMetrics) observeFleetRow(archetype string, doc *unimem.ExplainDoc, meanRegret float64) {
	if m.reg == nil || doc == nil {
		return
	}
	if doc.Regret != nil {
		m.fleetRegret.With(archetype).Set(meanRegret)
		m.fleetRegretHist.With(archetype).Observe(doc.Regret.RegretFrac)
	}
	for _, mg := range doc.Migrations {
		if mg.PredictedNS > 0 && !mg.Failed {
			m.migBenefit.With(archetype).Observe(float64(mg.RealizedNS) / mg.PredictedNS)
		}
	}
}

// newServerMetrics builds the registry and registers the scrape-time
// bridges into the server's live state (cache shards, session pool,
// worker pools, the mpisim event core). Returns an all-nil value when
// disabled.
func newServerMetrics(s *Server, disabled bool) *serverMetrics {
	if disabled {
		return &serverMetrics{}
	}
	r := obs.NewRegistry()
	m := &serverMetrics{
		reg: r,
		requests: r.CounterVec("unimem_http_requests_total",
			"HTTP requests completed, by endpoint and status code.", "endpoint", "code"),
		duration: r.HistogramVec("unimem_http_request_duration_seconds",
			"HTTP request latency, by endpoint and run-cache attribution (hit/miss/none).",
			nil, "endpoint", "cache"),
		slow: r.CounterVec("unimem_serve_slow_requests_total",
			"Requests slower than the -slow-request threshold, by endpoint.", "endpoint"),
		fleetRegret: r.GaugeVec("unimem_fleet_regret",
			"Latest /fleet sweep's mean regret fraction (realized vs oracle-best static placement) per archetype.",
			"archetype"),
		fleetRegretHist: r.HistogramVec("unimem_fleet_regret_frac",
			"Per-scenario regret fraction of /fleet Unimem runs, by archetype.",
			regretBuckets, "archetype"),
		migBenefit: r.HistogramVec("unimem_fleet_migration_benefit_ratio",
			"Realized/predicted migration-time ratio of /fleet Unimem runs, by archetype (>1: queueing or contention ate the predicted benefit).",
			ratioBuckets, "archetype"),
	}

	buildInfo := r.CounterVec("unimem_build_info",
		"Build metadata; value is always 1.", "version", "go")
	buildInfo.With(Version(), goVersion()).Inc()
	r.GaugeFunc("unimem_uptime_seconds", "Seconds since the server started.",
		func() float64 { return time.Since(s.started).Seconds() })
	r.GaugeFunc("unimem_http_inflight_requests",
		"run/batch/fleet handlers executing right now.",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(s.inflight)
		})

	// Run cache: counters are monotonic totals read from the sharded
	// cache's coherent snapshot; entries/bytes are gauges.
	cache := func(f func() float64, name, help, typ string) {
		if typ == "counter" {
			r.CounterFunc(name, help, f)
		} else {
			r.GaugeFunc(name, help, f)
		}
	}
	cache(func() float64 { return float64(s.cache.Stats().Hits) },
		"unimem_cache_hits_total", "Run-cache hits.", "counter")
	cache(func() float64 { return float64(s.cache.Stats().Misses) },
		"unimem_cache_misses_total", "Run-cache misses (fresh executions).", "counter")
	cache(func() float64 { return float64(s.cache.Stats().Evictions) },
		"unimem_cache_evictions_total", "Run-cache LRU evictions.", "counter")
	cache(func() float64 { return float64(s.cache.Stats().Loaded) },
		"unimem_cache_loaded_total", "Run-cache entries warm-started from snapshots.", "counter")
	cache(func() float64 { return float64(s.cache.Stats().Entries) },
		"unimem_cache_entries", "Resident run-cache entries (including in-flight).", "gauge")
	cache(func() float64 { return float64(s.cache.Stats().Bytes) },
		"unimem_cache_bytes", "Approximate resident run-cache footprint.", "gauge")

	// Session pool and its worker pools.
	r.GaugeFunc("unimem_sessions", "Pooled sessions (one per distinct platform).",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(s.sessions.Len())
		})
	pool := func(queued bool) func() float64 {
		return func() float64 {
			var total int64
			for _, e := range s.poolSnapshot() {
				q, run := e.sess.PoolStats()
				if queued {
					total += q
				} else {
					total += run
				}
			}
			return float64(total)
		}
	}
	r.GaugeFunc("unimem_pool_jobs_queued",
		"Batch jobs accepted but not yet dispatched, across all sessions.", pool(true))
	r.GaugeFunc("unimem_pool_jobs_running",
		"Batch jobs executing right now, across all sessions.", pool(false))

	// Analytic fast-path totals (process-wide, from internal/app).
	fp := app.ReadFastPathTotals
	r.CounterFunc("unimem_fastpath_memo_hits_total",
		"Phase-memo hits across all executed runs.",
		func() float64 { return float64(fp().MemoHits) })
	r.CounterFunc("unimem_fastpath_memo_misses_total",
		"Phase-memo misses across all executed runs.",
		func() float64 { return float64(fp().MemoMisses) })
	r.CounterFunc("unimem_fastpath_ff_total",
		"Fast-forward episodes entered (steady windows skipped analytically).",
		func() float64 { return float64(fp().FastForwards) })
	iters := r.CounterFuncVec("unimem_fastpath_iters_total",
		"Workload iterations completed, by mode: simulated event-for-event or computed analytically.",
		"mode")
	iters.With(func() float64 { return float64(fp().SimulatedIters) }, "simulated")
	iters.With(func() float64 { return float64(fp().AnalyticIters) }, "analytic")

	// Discrete-event core totals (process-wide, from internal/mpisim).
	core := mpisim.ReadCoreStats
	r.CounterFunc("unimem_mpisim_worlds_total",
		"Simulated MPI worlds completed.", func() float64 { return float64(core().Worlds) })
	r.CounterFunc("unimem_mpisim_events_total",
		"Discrete-event scheduler dispatches.", func() float64 { return float64(core().Events) })
	r.CounterFunc("unimem_mpisim_collectives_total",
		"Completed collective rendezvous.", func() float64 { return float64(core().Collectives) })
	r.CounterFunc("unimem_mpisim_inbox_scans_total",
		"Linear tag-match scans over non-empty receive queues.",
		func() float64 { return float64(core().InboxScans) })
	r.CounterFunc("unimem_mpisim_inbox_scanned_total",
		"Messages examined by inbox scans (ratio to scans = mean scan length).",
		func() float64 { return float64(core().InboxScanned) })
	r.GaugeFunc("unimem_mpisim_max_runq_depth",
		"Deepest scheduler run queue observed in any world.",
		func() float64 { return float64(core().MaxRunqDepth) })

	return m
}
