package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed generators diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split(1)
	c2 := parent.Split(2)
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("children with different salts should diverge")
	}
}

func TestIntnRange(t *testing.T) {
	if err := quick.Check(func(seed uint64, n int) bool {
		if n <= 0 {
			n = -n + 1
		}
		if n > 1<<30 {
			n %= 1 << 30
			n++
		}
		v := New(seed).Intn(n)
		return v >= 0 && v < n
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestInt63nRange(t *testing.T) {
	if err := quick.Check(func(seed uint64, n int64) bool {
		if n <= 0 {
			n = -n + 1
		}
		v := New(seed).Int63n(n)
		return v >= 0 && v < n
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) should panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(99)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(123)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %v too far from 0.5", mean)
	}
}

func TestNormMoments(t *testing.T) {
	r := New(5)
	var sum, sum2 float64
	const n = 100000
	for i := 0; i < n; i++ {
		v := r.Norm()
		sum += v
		sum2 += v * v
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("Norm mean %v too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("Norm variance %v too far from 1", variance)
	}
}

func TestJitterBounds(t *testing.T) {
	r := New(11)
	const sigma = 0.05
	for i := 0; i < 10000; i++ {
		j := r.Jitter(sigma)
		if j < 1-3*sigma-1e-12 || j > 1+3*sigma+1e-12 {
			t.Fatalf("Jitter %v outside 3-sigma truncation", j)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(3)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestZeroValueUsable(t *testing.T) {
	var r RNG
	_ = r.Uint64() // must not panic
}
