package memsys

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"

	"unimem/internal/machine"
)

// DefaultMaterializeCap bounds the real backing bytes per chunk so that
// multi-gigabyte simulated objects stay runnable; kernels index into the
// materialized prefix modulo its length.
const DefaultMaterializeCap = 1 << 20

// ObjectID identifies a registered data object within one heap (rank).
type ObjectID int

// Chunk is the unit of placement and migration. Unpartitioned objects have
// exactly one chunk covering the whole object; partitionable objects have
// fixed-size chunks (§3.2 "Handling large data objects").
type Chunk struct {
	Obj   *Object
	Index int
	// Size is the simulated size in bytes.
	Size int64
	// SimAddr is the chunk's stable simulated virtual address, used by the
	// trace generators and counter emulation to attribute samples.
	SimAddr int64

	tier   machine.TierKind
	offset int64 // offset within the current tier's arena
	data   []byte
}

// Tier returns the tier the chunk currently resides in.
func (c *Chunk) Tier() machine.TierKind { return c.tier }

// Name returns "object" for single-chunk objects and "object[i]" otherwise.
func (c *Chunk) Name() string {
	if len(c.Obj.Chunks) == 1 {
		return c.Obj.Name
	}
	return fmt.Sprintf("%s[%d]", c.Obj.Name, c.Index)
}

// Data returns the chunk's current real backing bytes (the materialized
// prefix of the simulated extent). The slice identity changes on migration,
// mirroring the paper's pointer-rewrite semantics.
func (c *Chunk) Data() []byte { return c.data }

// LoadF64 reads the float64 at element index i of the chunk, wrapping into
// the materialized prefix for indices beyond it.
func (c *Chunk) LoadF64(i int64) float64 {
	n := int64(len(c.data)) / 8
	if n == 0 {
		return 0
	}
	off := (i % n) * 8
	if off < 0 {
		off += int64(len(c.data))
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(c.data[off:]))
}

// StoreF64 writes the float64 at element index i, wrapping like LoadF64.
func (c *Chunk) StoreF64(i int64, v float64) {
	n := int64(len(c.data)) / 8
	if n == 0 {
		return
	}
	off := (i % n) * 8
	if off < 0 {
		off += int64(len(c.data))
	}
	binary.LittleEndian.PutUint64(c.data[off:], math.Float64bits(v))
}

// Object is a registered target data object (§3: allocated via
// unimem_malloc). Its placement state is per chunk.
type Object struct {
	ID   ObjectID
	Name string
	// Size is the simulated total size in bytes.
	Size int64
	// Partitionable marks one-dimensional arrays with regular references
	// that Unimem's conservative chunking rule may split.
	Partitionable bool
	// RefHint is the static (compiler-analysis style) per-iteration
	// reference count estimate used for initial placement; zero means
	// "unknown before the main loop" (e.g. convergence-dependent counts).
	RefHint float64
	Chunks  []*Chunk

	heap *Heap
}

// BytesIn returns the number of the object's simulated bytes currently
// resident in tier k.
func (o *Object) BytesIn(k machine.TierKind) int64 {
	var n int64
	for _, c := range o.Chunks {
		if c.tier == k {
			n += c.Size
		}
	}
	return n
}

// InDRAM reports whether the entire object resides in the fastest tier.
func (o *Object) InDRAM() bool { return o.BytesIn(0) == o.Size }

// AllocOptions configures Heap.Alloc.
type AllocOptions struct {
	// Partitionable marks the object as chunkable; ChunkSize then gives the
	// chunk granularity (0 means the heap's default).
	Partitionable bool
	ChunkSize     int64
	// InitialTier is where the object is first placed; a full tier falls
	// back down the hierarchy toward the slowest. The paper's default is
	// the slowest tier (NVM); initial data placement (§3.2) may choose a
	// faster one.
	InitialTier machine.TierKind
	// RefHint is the static reference-count estimate (see Object.RefHint).
	RefHint float64
}

// MigrationStats accumulates the migration activity of one heap; the
// experiment harness aggregates them into the paper's Table 4.
type MigrationStats struct {
	Migrations    int
	BytesMigrated int64
	// ToDRAM counts promotions (moves to a faster tier) and ToNVM
	// demotions (moves to a slower tier); on two-tier machines these are
	// exactly the DRAM-bound and NVM-bound move counts.
	ToDRAM, ToNVM int
	// ToTier counts arrivals per destination tier (index = tier).
	ToTier         []int
	FailedNoSpace  int
	PointerRewrite int
}

// Heap is the per-rank object table and placement engine. Space in the
// faster, contended tiers is obtained through the shared per-node services;
// the slowest tier uses a private extent arena (it is large and
// contention-free in the paper's configurations).
type Heap struct {
	Mach *machine.Machine
	node *NodeTiers
	// allocs[t] is tier t's space manager: the node's shared service where
	// one exists, a private arena otherwise.
	allocs []tierAlloc
	// slowest is the private arena backing the last tier.
	slowest *Arena

	// mu guards placement state (chunk tiers/offsets, arenas, stats): the
	// helper thread migrates chunks concurrently with the main thread
	// reading residency.
	mu sync.RWMutex

	objects        []*Object
	byName         map[string]*Object
	nextSimAddr    int64
	materializeCap int64
	defaultChunk   int64

	Stats MigrationStats
}

// tierAlloc is one tier's space manager; both the shared NodeService and
// the private Arena satisfy it.
type tierAlloc interface {
	Alloc(size int64) (int64, error)
	Free(off, size int64)
}

// HeapOptions configures NewHeap.
type HeapOptions struct {
	// MaterializeCap bounds real backing bytes per chunk
	// (default DefaultMaterializeCap). Set to a large value in examples to
	// make all data fully real.
	MaterializeCap int64
	// DefaultChunkSize is used for partitionable objects whose AllocOptions
	// leave ChunkSize zero (default 32 MiB).
	DefaultChunkSize int64
}

// NewHeap returns a heap for one rank on a node whose shared tiers are
// coordinated by node.
func NewHeap(m *machine.Machine, node *NodeTiers, opts HeapOptions) *Heap {
	if opts.MaterializeCap == 0 {
		opts.MaterializeCap = DefaultMaterializeCap
	}
	if opts.DefaultChunkSize == 0 {
		opts.DefaultChunkSize = 32 << 20
	}
	h := &Heap{
		Mach:           m,
		node:           node,
		byName:         make(map[string]*Object),
		materializeCap: opts.MaterializeCap,
		defaultChunk:   opts.DefaultChunkSize,
		nextSimAddr:    1 << 12, // skip the simulated null page
	}
	h.allocs = make([]tierAlloc, m.NumTiers())
	for t := range h.allocs {
		if svc := node.Service(machine.TierKind(t)); svc != nil {
			h.allocs[t] = svc
			continue
		}
		a := NewArena(m.Tier(machine.TierKind(t)).CapacityBytes)
		h.allocs[t] = a
		if t == m.NumTiers()-1 {
			h.slowest = a
		}
	}
	h.Stats.ToTier = make([]int, m.NumTiers())
	return h
}

// DRAMService returns the node coordination service of the fastest tier.
func (h *Heap) DRAMService() *NodeService { return h.node.Service(0) }

// Objects returns the registered objects in allocation order.
func (h *Heap) Objects() []*Object { return h.objects }

// Lookup returns the object with the given name, or nil.
func (h *Heap) Lookup(name string) *Object { return h.byName[name] }

// Alloc registers a data object of size simulated bytes and places its
// chunks in opts.InitialTier, falling back tier by tier toward the slowest
// when a tier is full (which matches the runtime's slow-tier-by-default
// policy: on two-tier machines a full DRAM falls back to NVM).
func (h *Heap) Alloc(name string, size int64, opts AllocOptions) (*Object, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if size <= 0 {
		return nil, fmt.Errorf("memsys: object %q has invalid size %d", name, size)
	}
	if int(opts.InitialTier) < 0 || int(opts.InitialTier) >= h.Mach.NumTiers() {
		return nil, fmt.Errorf("memsys: object %q requests unknown tier %v (machine has %d tiers)",
			name, opts.InitialTier, h.Mach.NumTiers())
	}
	if _, dup := h.byName[name]; dup {
		return nil, fmt.Errorf("memsys: object %q already allocated", name)
	}
	o := &Object{
		ID:            ObjectID(len(h.objects)),
		Name:          name,
		Size:          size,
		Partitionable: opts.Partitionable,
		RefHint:       opts.RefHint,
		heap:          h,
	}
	chunkSize := size
	if opts.Partitionable {
		chunkSize = opts.ChunkSize
		if chunkSize == 0 {
			chunkSize = h.defaultChunk
		}
		if chunkSize > size {
			chunkSize = size
		}
	}
	for off := int64(0); off < size; off += chunkSize {
		cs := chunkSize
		if off+cs > size {
			cs = size - off
		}
		c := &Chunk{
			Obj:     o,
			Index:   len(o.Chunks),
			Size:    cs,
			SimAddr: h.nextSimAddr,
		}
		h.nextSimAddr += cs
		mat := cs
		if mat > h.materializeCap {
			mat = h.materializeCap
		}
		c.data = make([]byte, mat)
		placed := false
		var err error
		for k := opts.InitialTier; int(k) < h.Mach.NumTiers(); k++ {
			if err = h.place(c, k); err == nil {
				placed = true
				break
			}
		}
		if !placed {
			return nil, err
		}
		o.Chunks = append(o.Chunks, c)
	}
	h.objects = append(h.objects, o)
	h.byName[name] = o
	return o, nil
}

// place reserves tier space for a chunk that currently owns none.
func (h *Heap) place(c *Chunk, k machine.TierKind) error {
	if int(k) < 0 || int(k) >= len(h.allocs) {
		return fmt.Errorf("memsys: unknown tier %v", k)
	}
	off, err := h.allocs[k].Alloc(c.Size)
	if err != nil {
		return err
	}
	c.tier, c.offset = k, off
	return nil
}

// release returns the chunk's current tier reservation.
func (h *Heap) release(c *Chunk) {
	h.allocs[c.tier].Free(c.offset, c.Size)
}

// Free releases every chunk of the object and removes it from the table.
func (h *Heap) Free(o *Object) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.byName[o.Name] != o {
		panic(fmt.Sprintf("memsys: freeing unknown object %q", o.Name))
	}
	for _, c := range o.Chunks {
		h.release(c)
		c.data = nil
	}
	delete(h.byName, o.Name)
	for i, oo := range h.objects {
		if oo == o {
			h.objects = append(h.objects[:i], h.objects[i+1:]...)
			break
		}
	}
}

// MoveChunk migrates the chunk to tier k: reserves space in the target
// tier, copies the real backing bytes into a fresh buffer (the pointer
// rewrite the runtime performs on behalf of the application), and releases
// the old reservation. It returns the simulated bytes moved (0 if already
// resident) or ErrNoSpace if the target tier cannot hold the chunk.
func (h *Heap) MoveChunk(c *Chunk, k machine.TierKind) (int64, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if c.tier == k {
		return 0, nil
	}
	oldTier, oldOff := c.tier, c.offset
	if err := h.place(c, k); err != nil {
		c.tier, c.offset = oldTier, oldOff
		h.Stats.FailedNoSpace++
		return 0, err
	}
	// Real copy into the new residence; the old buffer becomes garbage,
	// which is exactly the lifetime the runtime's pointer update implies.
	newData := make([]byte, len(c.data))
	copy(newData, c.data)
	c.data = newData
	h.Stats.PointerRewrite++
	h.allocs[oldTier].Free(oldOff, c.Size)
	h.Stats.Migrations++
	h.Stats.BytesMigrated += c.Size
	if k < oldTier {
		h.Stats.ToDRAM++
	} else {
		h.Stats.ToNVM++
	}
	h.Stats.ToTier[k]++
	return c.Size, nil
}

// MoveObject migrates every chunk of the object to tier k, stopping at the
// first failure. It returns the simulated bytes moved.
func (h *Heap) MoveObject(o *Object, k machine.TierKind) (int64, error) {
	var moved int64
	for _, c := range o.Chunks {
		n, err := h.MoveChunk(c, k)
		moved += n
		if err != nil {
			return moved, err
		}
	}
	return moved, nil
}

// TierOf returns the chunk's current tier under the placement lock; use it
// instead of Chunk.Tier when the helper thread may be migrating.
func (h *Heap) TierOf(c *Chunk) machine.TierKind {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return c.tier
}

// ResidencySnapshot returns chunk name -> fastest-tier residency for every
// chunk, taken atomically under the placement lock.
func (h *Heap) ResidencySnapshot() map[string]bool {
	h.mu.RLock()
	defer h.mu.RUnlock()
	out := make(map[string]bool)
	for _, o := range h.objects {
		for _, c := range o.Chunks {
			out[c.Name()] = c.tier == 0
		}
	}
	return out
}

// TierSnapshot returns chunk name -> current tier for every chunk, taken
// atomically under the placement lock.
func (h *Heap) TierSnapshot() map[string]machine.TierKind {
	h.mu.RLock()
	defer h.mu.RUnlock()
	out := make(map[string]machine.TierKind)
	for _, o := range h.objects {
		for _, c := range o.Chunks {
			out[c.Name()] = c.tier
		}
	}
	return out
}

// TierResidencyBytes returns the simulated bytes of registered objects
// resident per tier (index = tier), under the placement lock.
func (h *Heap) TierResidencyBytes() []int64 {
	h.mu.RLock()
	defer h.mu.RUnlock()
	out := make([]int64, h.Mach.NumTiers())
	for _, o := range h.objects {
		for _, c := range o.Chunks {
			out[c.tier] += c.Size
		}
	}
	return out
}

// StatsSnapshot returns a copy of the migration statistics under the lock.
func (h *Heap) StatsSnapshot() MigrationStats {
	h.mu.RLock()
	defer h.mu.RUnlock()
	s := h.Stats
	s.ToTier = append([]int(nil), h.Stats.ToTier...)
	return s
}

// NVMUsed returns bytes currently allocated in this rank's private
// slowest-tier arena.
func (h *Heap) NVMUsed() int64 { return h.slowest.Used() }

// ChunkAt returns the chunk containing the simulated address, or nil.
func (h *Heap) ChunkAt(addr int64) *Chunk {
	for _, o := range h.objects {
		for _, c := range o.Chunks {
			if addr >= c.SimAddr && addr < c.SimAddr+c.Size {
				return c
			}
		}
	}
	return nil
}
