package exp

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"

	"unimem/internal/app"
)

// snapKey builds a distinct key for persistence tests.
func snapKey(i int) RunKey {
	return RunKey{Workload: "W|C|4|12", Machine: "m", Strategy: "static:x", Seed: uint64(i), Ranks: 4}
}

// snapResult builds a result with enough structure to catch lossy
// round-trips (nested slices, floats).
func snapResult(i int) *app.Result {
	return &app.Result{
		Workload: "W",
		Manager:  "static",
		TimeNS:   int64(1000 + i),
		PhaseNS:  []float64{1.5, 2.25},
		Ranks: []app.RankResult{
			{Rank: 0, TimeNS: int64(100 + i), CommNS: 7},
			{Rank: 1, TimeNS: int64(200 + i)},
		},
	}
}

// TestSnapshotRoundTrip: save a populated cache, load into a fresh one,
// and assert the loaded entries hit without executing, with results
// structurally equal to the originals.
func TestSnapshotRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache", "runcache.json")
	c := NewRunCache()
	const n = 5
	want := make([]*app.Result, n)
	for i := 0; i < n; i++ {
		want[i] = snapResult(i)
		res := want[i]
		if _, err := c.Do(context.Background(), snapKey(i), func() (*app.Result, error) { return res, nil }); err != nil {
			t.Fatal(err)
		}
	}
	saved, err := c.SaveSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if saved != n {
		t.Fatalf("saved %d entries, want %d", saved, n)
	}

	warm := NewRunCache()
	loaded, err := warm.LoadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded != n {
		t.Fatalf("loaded %d entries, want %d", loaded, n)
	}
	if st := warm.Stats(); st.Loaded != n || st.Misses != 0 {
		t.Fatalf("stats after load = %+v, want Loaded=%d Misses=0", st, n)
	}
	var calls atomic.Int64
	for i := 0; i < n; i++ {
		got, err := warm.Do(context.Background(), snapKey(i), func() (*app.Result, error) {
			calls.Add(1)
			return nil, errors.New("should not execute")
		})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want[i]) {
			t.Errorf("entry %d round-tripped lossily:\n got %+v\nwant %+v", i, got, want[i])
		}
	}
	if calls.Load() != 0 {
		t.Errorf("warm cache executed %d runs, want 0 (all hits)", calls.Load())
	}
	if st := warm.Stats(); st.Hits != n {
		t.Errorf("warm cache hits = %d, want %d", st.Hits, n)
	}
}

// TestSnapshotSkipsErrors: cached errors are process-local (a failing
// baseline may be transient across restarts) and must not persist.
func TestSnapshotSkipsErrors(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runcache.json")
	c := NewRunCache()
	if _, err := c.Do(context.Background(), snapKey(0), func() (*app.Result, error) {
		return nil, errors.New("boom")
	}); err == nil {
		t.Fatal("expected cached error")
	}
	if _, err := c.Do(context.Background(), snapKey(1), func() (*app.Result, error) {
		return snapResult(1), nil
	}); err != nil {
		t.Fatal(err)
	}
	saved, err := c.SaveSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if saved != 1 {
		t.Fatalf("saved %d entries, want 1 (error entry skipped)", saved)
	}
}

// TestSnapshotMissingFileIsColdStart: loading a nonexistent path is a
// clean cold start, not an error.
func TestSnapshotMissingFileIsColdStart(t *testing.T) {
	c := NewRunCache()
	n, err := c.LoadSnapshot(filepath.Join(t.TempDir(), "nope.json"))
	if err != nil || n != 0 {
		t.Fatalf("LoadSnapshot(missing) = %d, %v; want 0, nil", n, err)
	}
}

// TestSnapshotVersionGuard: an envelope with a different version is
// rejected with ErrSnapshotVersion and loads nothing.
func TestSnapshotVersionGuard(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runcache.json")
	data, _ := json.Marshal(map[string]any{
		"version": SnapshotVersion + 1,
		"entries": []any{map[string]any{"key": snapKey(0), "result": snapResult(0)}},
	})
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	c := NewRunCache()
	n, err := c.LoadSnapshot(path)
	if !errors.Is(err, ErrSnapshotVersion) {
		t.Fatalf("err = %v, want ErrSnapshotVersion", err)
	}
	if n != 0 || c.Stats().Loaded != 0 {
		t.Error("version-mismatched snapshot leaked entries into the cache")
	}
}

// TestSnapshotCorruptFile: a truncated file is a decode error, not a
// partial load.
func TestSnapshotCorruptFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runcache.json")
	if err := os.WriteFile(path, []byte(`{"version":1,"entries":[{`), 0o644); err != nil {
		t.Fatal(err)
	}
	c := NewRunCache()
	if _, err := c.LoadSnapshot(path); err == nil {
		t.Fatal("corrupt snapshot loaded without error")
	}
	if c.Stats().Loaded != 0 {
		t.Error("corrupt snapshot leaked entries into the cache")
	}
}

// TestSnapshotAtomicOverwrite: saving over an existing snapshot leaves no
// temp droppings and the new content wins.
func TestSnapshotAtomicOverwrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "runcache.json")
	c := NewRunCache()
	if _, err := c.Do(context.Background(), snapKey(0), func() (*app.Result, error) { return snapResult(0), nil }); err != nil {
		t.Fatal(err)
	}
	if _, err := c.SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Do(context.Background(), snapKey(1), func() (*app.Result, error) { return snapResult(1), nil }); err != nil {
		t.Fatal(err)
	}
	if _, err := c.SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "runcache.json" {
		names := make([]string, 0, len(entries))
		for _, e := range entries {
			names = append(names, e.Name())
		}
		t.Fatalf("snapshot dir holds %v, want only runcache.json", names)
	}
	warm := NewRunCache()
	if n, err := warm.LoadSnapshot(path); err != nil || n != 2 {
		t.Fatalf("reloaded %d entries (%v), want 2", n, err)
	}
}

// TestSnapshotLoadRespectsBudget: loading an over-budget snapshot keeps
// the most recently used entries and evicts the rest.
func TestSnapshotLoadRespectsBudget(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runcache.json")
	big := NewRunCache()
	for i := 0; i < 64; i++ {
		res := snapResult(i)
		if _, err := big.Do(context.Background(), snapKey(i), func() (*app.Result, error) { return res, nil }); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := big.SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}
	small := NewRunCacheBounded(16, 0)
	if _, err := small.LoadSnapshot(path); err != nil {
		t.Fatal(err)
	}
	st := small.Stats()
	if st.Entries > 16 {
		t.Errorf("bounded cache holds %d entries after load, want <= 16", st.Entries)
	}
	if st.Loaded != 64 {
		t.Errorf("loaded counter = %d, want 64 (all seeded, some evicted)", st.Loaded)
	}
	if st.Evictions == 0 {
		t.Error("over-budget load evicted nothing")
	}
}
