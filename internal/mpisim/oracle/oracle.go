// Package oracle is the retired goroutine-per-rank MPI engine, kept as the
// reference implementation for differential validation of the event-driven
// core in package mpisim (the Quartz discipline: an emulation layer is only
// trustworthy when checked against a reference).
//
// Every rank is a real goroutine; point-to-point messages travel over an
// eagerly allocated ranks² matrix of 1024-buffered channels and collectives
// rendezvous on a sync.Cond. Those two choices are exactly why it was
// retired: NewWorld is O(ranks²) in memory, a send blocks once 1024 messages
// are in flight to one destination (the latent SendRecv deadlock), and
// collective broadcasts thrash the Go scheduler. Its virtual-clock
// *semantics*, however, are the contract: per-rank final Clock() and CommNS
// are dataflow-deterministic, so the event core must reproduce them exactly.
// The differential suite (mpisim's diff and fuzz tests) and the
// `unimem-bench -bench` before/after harness are the only intended
// importers; production code must use package mpisim.
package oracle

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"unimem/internal/machine"
)

// Hook is the PMPI interposition callback: op is the MPI operation name
// ("Send", "Allreduce", ...), invoked on the calling rank's goroutine before
// the operation executes.
type Hook interface {
	MPICall(rank int, op string)
}

// HookFunc adapts a function to the Hook interface.
type HookFunc func(rank int, op string)

// MPICall implements Hook.
func (f HookFunc) MPICall(rank int, op string) { f(rank, op) }

// message is one point-to-point payload. Data is optional real bytes; the
// clock synchronization uses Bytes (simulated size) and the departure time.
type message struct {
	tag    int
	bytes  int64
	data   []byte
	depart int64 // sender virtual time when the message left
}

// World is a fixed-size communicator of P ranks.
type World struct {
	P    int
	Mach *machine.Machine

	// mail[src][dst] carries messages; buffered so Isend never blocks the
	// sender goroutine for the eager sizes our workloads use.
	mail [][]chan message
	coll *collSync

	// abortCh is closed by Abort; every blocking communication primitive
	// selects on it so no rank stays parked after the world is torn down.
	abortCh   chan struct{}
	abortOnce sync.Once
	aborted   atomic.Bool
}

// NewWorld creates a world of p ranks over the given machine.
func NewWorld(p int, m *machine.Machine) *World {
	if p <= 0 {
		panic("mpisim: world size must be positive")
	}
	mail := make([][]chan message, p)
	for s := range mail {
		mail[s] = make([]chan message, p)
		for d := range mail[s] {
			mail[s][d] = make(chan message, 1024)
		}
	}
	return &World{P: p, Mach: m, mail: mail, coll: newCollSync(p), abortCh: make(chan struct{})}
}

// Abort poisons the world: every blocked or future communication operation
// returns immediately instead of waiting for peers, and Aborted reports
// true. Rank bodies are expected to notice the flag at their next
// decision point and unwind; results of an aborted run are meaningless and
// must be discarded. Abort is idempotent and safe from any goroutine — it
// is how a context cancellation reaches ranks parked inside collectives.
func (w *World) Abort() {
	w.abortOnce.Do(func() {
		w.aborted.Store(true)
		close(w.abortCh)
		w.coll.abort()
	})
}

// Aborted reports whether Abort has been called.
func (w *World) Aborted() bool { return w.aborted.Load() }

// Run spawns one goroutine per rank executing body and blocks until all
// ranks return. Panics in rank bodies propagate after all ranks finish or
// the panicking rank unwinds (fail-fast for tests).
func (w *World) Run(body func(c *Comm)) {
	var wg sync.WaitGroup
	panics := make(chan interface{}, w.P)
	for r := 0; r < w.P; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					panics <- fmt.Sprintf("rank %d: %v", rank, p)
				}
			}()
			body(&Comm{world: w, rank: rank})
		}(r)
	}
	wg.Wait()
	select {
	case p := <-panics:
		panic(p)
	default:
	}
}

// Comm is one rank's endpoint: rank id, virtual clock, pending-message
// reorder buffers and the PMPI hook.
type Comm struct {
	world *World
	rank  int
	clock int64
	hook  Hook
	// pending holds messages received from a source ahead of the tag the
	// caller asked for (tag-matching reorder buffer).
	pending map[int][]message

	// CommNS accumulates virtual time spent inside MPI operations
	// (communication + synchronization wait), for reporting.
	CommNS int64
}

// Rank returns this endpoint's rank.
func (c *Comm) Rank() int { return c.rank }

// Size returns the world size.
func (c *Comm) Size() int { return c.world.P }

// World returns the communicator's world.
func (c *Comm) World() *World { return c.world }

// Clock returns the rank's current virtual time in ns.
func (c *Comm) Clock() int64 { return c.clock }

// Advance moves the rank's virtual clock forward by d ns (compute time,
// memory time, runtime overhead — anything local).
func (c *Comm) Advance(d int64) {
	if d < 0 {
		panic("mpisim: negative clock advance")
	}
	c.clock += d
}

// AdvanceTo moves the clock to t if t is later.
func (c *Comm) AdvanceTo(t int64) {
	if t > c.clock {
		c.clock = t
	}
}

// SetHook registers the PMPI interposition hook (nil disables).
func (c *Comm) SetHook(h Hook) { c.hook = h }

func (c *Comm) callHook(op string) {
	if c.hook != nil {
		c.hook.MPICall(c.rank, op)
	}
}

// Send transmits bytes simulated bytes (with optional real payload) to dst
// with the given tag. The sender is charged the local injection overhead.
func (c *Comm) Send(dst, tag int, bytes int64, data []byte) {
	c.callHook("Send")
	c.send(dst, tag, bytes, data)
}

func (c *Comm) send(dst, tag int, bytes int64, data []byte) {
	if dst < 0 || dst >= c.world.P {
		panic(fmt.Sprintf("mpisim: send to invalid rank %d", dst))
	}
	// Local injection overhead: half the latency term.
	inject := int64(c.world.Mach.NetLatencyNS / 2)
	c.clock += inject
	c.CommNS += inject
	select {
	case c.world.mail[c.rank][dst] <- message{tag: tag, bytes: bytes, data: data, depart: c.clock}:
	case <-c.world.abortCh:
	}
}

// Recv blocks until a message with the tag arrives from src, synchronizes
// the virtual clock with the sender, and returns the payload.
func (c *Comm) Recv(src, tag int) []byte {
	c.callHook("Recv")
	return c.recv(src, tag)
}

func (c *Comm) recv(src, tag int) []byte {
	if src < 0 || src >= c.world.P {
		panic(fmt.Sprintf("mpisim: recv from invalid rank %d", src))
	}
	if c.pending == nil {
		c.pending = make(map[int][]message)
	}
	// Check the reorder buffer first.
	q := c.pending[src]
	for i, m := range q {
		if m.tag == tag {
			c.pending[src] = append(q[:i], q[i+1:]...)
			c.completeRecv(m)
			return m.data
		}
	}
	for {
		select {
		case m := <-c.world.mail[src][c.rank]:
			if m.tag == tag {
				c.completeRecv(m)
				return m.data
			}
			c.pending[src] = append(c.pending[src], m)
		case <-c.world.abortCh:
			return nil
		}
	}
}

func (c *Comm) completeRecv(m message) {
	arrive := m.depart + int64(c.world.Mach.MsgTimeNS(m.bytes))
	wait := arrive - c.clock
	if wait > 0 {
		c.clock = arrive
		c.CommNS += wait
	}
}

// Request is a handle for a non-blocking operation, completed by Wait.
type Request struct {
	comm *Comm
	done bool
	// recv fields
	isRecv   bool
	src, tag int
	data     []byte
}

// Isend starts a non-blocking send. With buffered channels the payload is
// injected immediately; the returned request completes trivially, matching
// MPI's eager protocol for the message sizes the workloads use. Per the
// paper's phase definition, a non-blocking call is not a phase boundary, so
// Isend does not invoke the PMPI hook; the completion (Wait) does.
func (c *Comm) Isend(dst, tag int, bytes int64, data []byte) *Request {
	c.send(dst, tag, bytes, data)
	return &Request{comm: c, done: true}
}

// Irecv starts a non-blocking receive, completed (and clock-synchronized)
// by Wait.
func (c *Comm) Irecv(src, tag int) *Request {
	return &Request{comm: c, isRecv: true, src: src, tag: tag}
}

// Wait completes a non-blocking operation. It is a communication-completion
// operation and therefore a phase boundary (invokes the PMPI hook).
func (r *Request) Wait() []byte {
	r.comm.callHook("Wait")
	if r.done {
		return r.data
	}
	r.done = true
	if r.isRecv {
		r.data = r.comm.recv(r.src, r.tag)
	}
	return r.data
}

// collSync implements clock-maximizing rendezvous for collectives.
type collSync struct {
	mu    sync.Mutex
	cond  *sync.Cond
	p     int
	count int
	gen   int
	max   int64
	prev  int64 // result of the last completed generation
	// down is set by abort: arrive stops waiting for absent peers and
	// returns the caller's own clock (the run's results are discarded).
	down bool
}

func newCollSync(p int) *collSync {
	cs := &collSync{p: p}
	cs.cond = sync.NewCond(&cs.mu)
	return cs
}

// arrive blocks until all p ranks have arrived and returns the maximum
// clock among them.
func (cs *collSync) arrive(clock int64) int64 {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if cs.down {
		return clock
	}
	gen := cs.gen
	if clock > cs.max {
		cs.max = clock
	}
	cs.count++
	if cs.count == cs.p {
		cs.prev = cs.max
		cs.count = 0
		cs.max = 0
		cs.gen++
		cs.cond.Broadcast()
		return cs.prev
	}
	for cs.gen == gen && !cs.down {
		cs.cond.Wait()
	}
	if cs.down {
		return clock
	}
	return cs.prev
}

// abort wakes every waiter and makes all future rendezvous non-blocking.
func (cs *collSync) abort() {
	cs.mu.Lock()
	cs.down = true
	cs.cond.Broadcast()
	cs.mu.Unlock()
}

// logP returns ceil(log2(P)), minimum 1.
func (w *World) logP() float64 {
	if w.P <= 1 {
		return 1
	}
	return math.Ceil(math.Log2(float64(w.P)))
}

// collective aligns all ranks on the latest arrival, then charges cost ns.
func (c *Comm) collective(op string, cost float64) {
	c.callHook(op)
	before := c.clock
	max := c.world.coll.arrive(c.clock)
	c.clock = max + int64(cost)
	c.CommNS += c.clock - before
}

// Barrier synchronizes all ranks (log P latency exchanges).
func (c *Comm) Barrier() {
	c.collective("Barrier", 2*c.world.logP()*c.world.Mach.NetLatencyNS)
}

// Allreduce models a recursive-doubling allreduce of bytes per rank.
func (c *Comm) Allreduce(bytes int64) {
	per := c.world.Mach.MsgTimeNS(bytes)
	c.collective("Allreduce", 2*c.world.logP()*per)
}

// Bcast models a binomial-tree broadcast of bytes.
func (c *Comm) Bcast(bytes int64) {
	per := c.world.Mach.MsgTimeNS(bytes)
	c.collective("Bcast", c.world.logP()*per)
}

// Reduce models a binomial-tree reduction of bytes.
func (c *Comm) Reduce(bytes int64) {
	per := c.world.Mach.MsgTimeNS(bytes)
	c.collective("Reduce", c.world.logP()*per)
}

// Alltoall models a personalized all-to-all exchanging bytes per rank pair.
func (c *Comm) Alltoall(bytesPerPair int64) {
	per := c.world.Mach.MsgTimeNS(bytesPerPair)
	c.collective("Alltoall", float64(c.world.P-1)*per)
}

// SendRecv performs a blocking exchange with the two peers: sends to dst and
// receives from src (the classic halo-exchange primitive). It uses the
// non-blocking forms internally so opposing pairs cannot deadlock.
func (c *Comm) SendRecv(dst, src, tag int, bytes int64, data []byte) []byte {
	c.callHook("SendRecv")
	c.send(dst, tag, bytes, data)
	return c.recv(src, tag)
}
