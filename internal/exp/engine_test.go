package exp

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"unimem/internal/app"
	"unimem/internal/core"
	"unimem/internal/counters"
	"unimem/internal/machine"
	"unimem/internal/workloads"
)

// TestEngineStrategiesMatchLegacyHelpers: every strategy produces the
// manager name and result its pre-engine Suite helper produced, and
// baseline strategies land in the cache under their historical keys.
func TestEngineStrategiesMatchLegacyHelpers(t *testing.T) {
	e := NewEngine(true, NewRunCache())
	m := machine.PlatformA().WithNVMBandwidthFraction(0.5)
	w := workloads.NewCG("A", 2)
	ctx := context.Background()
	opts := app.Options{Ranks: 2, Seed: 1}

	for _, tc := range []struct {
		st      Strategy
		manager string
	}{
		{StrategySlowestOnly(), "nvm-only"},
		{StrategyDRAMOnly(), "dram-only"},
		{StrategyFastestOnly(), "fast-only"},
		{StrategyHintDensity(), "tiered-static"},
		{StrategyXMem(), "xmem"},
		{StrategyUnimem(), "unimem"},
	} {
		res, rts, err := e.Execute(ctx, w, m, tc.st, core.DefaultConfig(), opts)
		if err != nil {
			t.Fatalf("%s: %v", tc.st.Name(), err)
		}
		if res.Manager != tc.manager {
			t.Errorf("%s: manager %q, want %q", tc.st.Name(), res.Manager, tc.manager)
		}
		if tc.st.IsUnimem() != (rts != nil) {
			t.Errorf("%s: runtimes presence mismatch (unimem=%v, rts=%d)", tc.st.Name(), tc.st.IsUnimem(), len(rts))
		}
	}
	// Five cacheable strategies -> five entries; the Unimem run stays out
	// of the cache (fresh runtimes per call).
	if st := e.Stats(); st.Entries != 5 {
		t.Errorf("cache holds %d entries, want 5", st.Entries)
	}
}

// TestEngineCalibrationSharedAcrossTwins: physically identical machines
// share one memoized calibration regardless of derivation chain.
func TestEngineCalibrationSharedAcrossTwins(t *testing.T) {
	e := NewEngine(false, nil)
	a := machine.PlatformA().WithNVMBandwidthFraction(0.5).FastTwin()
	b := machine.PlatformA().WithNVMLatencyFactor(4).WithNVMLatencyFactor(1).WithNVMBandwidthFraction(1)
	ca := e.Calibration(a, counters.Default(), 7)
	cb := e.Calibration(b, counters.Default(), 7)
	if ca != cb {
		t.Error("fingerprint-identical twins did not share a calibration")
	}
	if ca == e.Calibration(a, counters.Default(), 8) {
		t.Error("different seeds must calibrate separately")
	}
}

// TestRunCacheCancellationNotPoisoned: a Do whose run is aborted by
// context cancellation must not memoize the failure — the next caller
// with a live context re-executes and gets the real result.
func TestRunCacheCancellationNotPoisoned(t *testing.T) {
	c := NewRunCache()
	key := testKey("cancellable")

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Do(ctx, key, func() (*app.Result, error) {
		return nil, ctx.Err()
	}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Do: err = %v", err)
	}

	res, err := c.Do(context.Background(), key, func() (*app.Result, error) {
		return &app.Result{TimeNS: 9}, nil
	})
	if err != nil || res.TimeNS != 9 {
		t.Fatalf("post-cancellation Do = %v, %v; cancellation poisoned the key", res, err)
	}
}

// TestRunCacheWaiterHonorsOwnContext: a waiter blocked on another
// caller's in-flight run gives up when its own context dies.
func TestRunCacheWaiterHonorsOwnContext(t *testing.T) {
	c := NewRunCache()
	key := testKey("slow")
	started := make(chan struct{})
	release := make(chan struct{})
	go func() {
		c.Do(context.Background(), key, func() (*app.Result, error) {
			close(started)
			<-release
			return &app.Result{}, nil
		})
	}()
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := c.Do(ctx, key, func() (*app.Result, error) {
		t.Error("waiter executed the run")
		return nil, nil
	}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("waiter err = %v, want deadline exceeded", err)
	}
	close(release)
}

// TestSuiteHonorsContext: a dead suite context aborts a whole experiment
// runner with the context's error.
func TestSuiteHonorsContext(t *testing.T) {
	s := quickSuite()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s.Ctx = ctx
	if _, err := s.Fig9(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Fig9 under dead context: err = %v", err)
	}
	// Fleet path too (generation happens before the pool; the pool must
	// still refuse to run cells).
	if _, err := s.ScenarioFleet(); !errors.Is(err, context.Canceled) {
		t.Fatalf("ScenarioFleet under dead context: err = %v", err)
	}
}

// TestForEachRowContextCancel: the pool stops dispatching once the
// context dies and reports the context error.
func TestForEachRowContextCancel(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var ran atomic.Int64
		err := forEachRow(ctx, workers, 100, func(i int) error {
			if i == 0 {
				cancel()
			}
			ran.Add(1)
			return nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if ran.Load() == 100 {
			t.Errorf("workers=%d: pool dispatched every cell after cancellation", workers)
		}
	}
}
