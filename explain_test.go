package unimem_test

import (
	"context"
	"encoding/json"
	"testing"

	"unimem"
)

// TestExplainDoesNotPerturbRun extends the trace invariant to the
// attribution layer: attaching an Explain recorder must not change the
// simulation by one nanosecond. The full Result documents of an
// explained and a plain run must be identical.
func TestExplainDoesNotPerturbRun(t *testing.T) {
	m := unimem.PlatformA().WithNVMBandwidthFraction(0.5)
	w := unimem.NewNPB("CG", "A", 2)
	sess := unimem.New(m, unimem.WithQuick())
	ctx := context.Background()

	plain, err := sess.RunJob(ctx, unimem.Job{Workload: w, Strategy: unimem.Unimem()})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Explain != nil {
		t.Fatal("plain run carries an explain document")
	}
	ex := unimem.NewExplain()
	explained, err := sess.RunJob(ctx, unimem.Job{
		Workload: w,
		Strategy: unimem.Unimem(),
		Options:  unimem.Options{Explain: ex},
	})
	if err != nil {
		t.Fatal(err)
	}

	if plain.Result.TimeNS != explained.Result.TimeNS {
		t.Fatalf("explained run changed simulated time: %d != %d",
			explained.Result.TimeNS, plain.Result.TimeNS)
	}
	a, err := json.Marshal(plain.Result)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(explained.Result)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatalf("explained run produced a different Result document:\nplain:     %s\nexplained: %s", a, b)
	}

	// The outcome's snapshot and the recorder agree, and the document
	// carries the attribution a CG run must produce: at least one
	// placement decision with per-chunk term breakdowns and at least one
	// scored alternative, migrations with triggers, and a regret record
	// against the oracle-best static placement.
	doc := explained.Explain
	if doc == nil {
		t.Fatal("explained run carries no explain document")
	}
	if len(doc.Decisions) == 0 {
		t.Fatal("no placement decisions recorded")
	}
	d := doc.Decisions[0]
	var chunkTerms int
	for _, ph := range d.Phases {
		chunkTerms += len(ph.Chunks)
	}
	if chunkTerms == 0 {
		t.Error("decision has no per-chunk term breakdowns")
	}
	if len(d.Alternatives) == 0 && len(d.Rejected) == 0 {
		t.Error("no rejected alternatives recorded")
	}
	if len(doc.Migrations) == 0 {
		t.Fatal("no migrations recorded")
	}
	for _, mg := range doc.Migrations {
		if mg.Trigger == "" {
			t.Errorf("migration of %q has no trigger", mg.Chunk)
		}
	}
	if doc.Regret == nil {
		t.Fatal("no regret record")
	}
	if doc.Regret.RealizedNS != explained.Result.TimeNS {
		t.Errorf("regret realized = %d, want the run's %d",
			doc.Regret.RealizedNS, explained.Result.TimeNS)
	}
	if doc.Regret.OracleNS <= 0 {
		t.Errorf("oracle-best static time = %d, want > 0", doc.Regret.OracleNS)
	}
}

// TestExplainBaselineStrategies asserts baseline (cached) strategies also
// finish their document: no decisions or migrations, but workload
// identity and realized time are attributed.
func TestExplainBaselineStrategies(t *testing.T) {
	m := unimem.PlatformA().WithNVMBandwidthFraction(0.5)
	w := unimem.NewNPB("CG", "A", 2)
	sess := unimem.New(m, unimem.WithQuick())

	ex := unimem.NewExplain()
	out, err := sess.RunJob(context.Background(), unimem.Job{
		Workload: w,
		Strategy: unimem.DRAMOnly(),
		Options:  unimem.Options{Explain: ex},
	})
	if err != nil {
		t.Fatal(err)
	}
	doc := out.Explain
	if doc == nil {
		t.Fatal("baseline run carries no explain document")
	}
	if doc.Workload != "CG" {
		t.Errorf("workload = %q, want CG", doc.Workload)
	}
	if doc.RealizedNS != out.Result.TimeNS {
		t.Errorf("realized = %d, want %d", doc.RealizedNS, out.Result.TimeNS)
	}
	if len(doc.Decisions) != 0 || len(doc.Migrations) != 0 {
		t.Errorf("baseline run recorded %d decisions and %d migrations, want none",
			len(doc.Decisions), len(doc.Migrations))
	}
}
