package exp

import (
	"fmt"
	"sort"
	"strings"

	"unimem/internal/app"
	"unimem/internal/core"
	"unimem/internal/machine"
	"unimem/internal/workloads"
)

// tierPlatforms returns the multi-tier evaluation platforms of the
// tierscape experiment: a KNL-like HBM+DDR machine, a CXL-expander
// DDR+CXL machine, and the three-tier HBM+DDR+NVM stack.
func tierPlatforms() []*machine.Machine {
	return []*machine.Machine{
		machine.PlatformKNL(),
		machine.PlatformCXL(),
		machine.PlatformHBMDDRNVM(),
	}
}

// TieredStaticAssign derives a profile-free static placement for an N-tier
// machine: objects ranked by static reference-hint density (RefHint/size)
// fill the constrained tiers fastest-first; hintless objects and overflow
// land in the slowest tier. This is the natural N-tier analogue of
// "numactl-style" static tiering: no profiling run, no migration.
func TieredStaticAssign(w *workloads.Workload, m *machine.Machine) map[string]machine.TierKind {
	type cand struct {
		name    string
		size    int64
		density float64
	}
	var cands []cand
	for _, o := range w.Objects {
		if o.RefHint > 0 && o.Size > 0 {
			cands = append(cands, cand{o.Name, o.Size, o.RefHint / float64(o.Size)})
		}
	}
	sort.SliceStable(cands, func(a, b int) bool {
		if cands[a].density != cands[b].density {
			return cands[a].density > cands[b].density
		}
		return cands[a].name < cands[b].name
	})
	remaining := make([]int64, m.NumTiers()-1)
	for t := range remaining {
		remaining[t] = m.Tier(machine.TierKind(t)).CapacityBytes
	}
	assign := make(map[string]machine.TierKind)
	for _, c := range cands {
		for t := range remaining {
			if c.size <= remaining[t] {
				assign[c.name] = machine.TierKind(t)
				remaining[t] -= c.size
				break
			}
		}
	}
	return assign
}

// runTieredStatic executes the workload under the hint-density static
// placement, memoized in the run cache.
func (s *Suite) runTieredStatic(w *workloads.Workload, m *machine.Machine) (*app.Result, error) {
	res, _, err := s.engine().Execute(s.ctx(), w, m, StrategyHintDensity(), core.Config{}, s.opts())
	return res, err
}

// Tierscape evaluates the N-tier memory subsystem end to end: on each
// multi-tier platform, each benchmark runs fastest-tier-only (the FastTwin
// normalization baseline), slowest-tier-only, under the hint-density
// static placement, and under Unimem's multiple-choice-knapsack runtime
// placement. The residency column reports rank 0's final per-tier
// resident megabytes under Unimem; per-tier detail lands in the table's
// TierStats (JSON output).
func (s *Suite) Tierscape() (*Table, error) {
	t := &Table{
		ID:    "tierscape",
		Title: "N-tier platforms: fastest-only / slowest-only / static / Unimem",
		Columns: []string{"Platform", "Benchmark", "Fastest-only", "Slowest-only",
			"Static", "Unimem", "Migrations", "Unimem residency (rank 0)"},
	}
	platforms := tierPlatforms()
	bench := []*workloads.Workload{
		workloads.NewCG(s.Class, s.Ranks),
		workloads.NewSP(s.Class, s.Ranks),
		workloads.NewMG(s.Class, s.Ranks),
	}
	type cell struct {
		m *machine.Machine
		w *workloads.Workload
	}
	var cells []cell
	for _, m := range platforms {
		for _, w := range bench {
			cells = append(cells, cell{m, w})
		}
	}
	rows := make([][]interface{}, len(cells))
	stats := make([][]TierStat, len(cells))
	err := forEachRow(s.ctx(), s.workers(), len(cells), func(i int) error {
		c := cells[i]
		fast, err := s.runStatic(c.w, c.m.FastTwin(), "fast-only", nil)
		if err != nil {
			return err
		}
		slow, err := s.runStatic(c.w, c.m, "slow-only", nil)
		if err != nil {
			return err
		}
		st, err := s.runTieredStatic(c.w, c.m)
		if err != nil {
			return err
		}
		uni, col, err := s.runUnimem(c.w, c.m, s.unimemConfig(c.m))
		if err != nil {
			return err
		}
		r0 := uni.Ranks[0]
		resident := tierResidency(col, c.m)
		rows[i] = []interface{}{c.m.Name, c.w.Name, 1.00,
			norm(slow.TimeNS, fast.TimeNS),
			norm(st.TimeNS, fast.TimeNS),
			norm(uni.TimeNS, fast.TimeNS),
			r0.Migrations.Migrations,
			residencyString(c.m, resident)}
		stats[i] = make([]TierStat, c.m.NumTiers())
		for tr := 0; tr < c.m.NumTiers(); tr++ {
			movesIn := 0
			if tr < len(r0.Migrations.ToTier) {
				movesIn = r0.Migrations.ToTier[tr]
			}
			var res int64
			if tr < len(resident) {
				res = resident[tr]
			}
			stats[i][tr] = TierStat{
				Platform:      c.m.Name,
				Benchmark:     c.w.Name,
				Tier:          tr,
				Name:          c.m.TierName(machine.TierKind(tr)),
				ResidentBytes: res,
				MovesIn:       movesIn,
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, row := range rows {
		t.AddRow(row...)
		t.TierStats = append(t.TierStats, stats[i]...)
	}
	t.Notes = append(t.Notes,
		"times normalized to the fastest-tier-only twin (FastTwin); static = hint-density fill, no migration",
		"Unimem decisions use the multiple-choice knapsack: each chunk assigned exactly one tier under per-tier capacities")
	return t, nil
}

// tierResidency returns rank 0's final per-tier resident bytes.
func tierResidency(col *Collector, m *machine.Machine) []int64 {
	if r := col.Rank0TierResidency(); r != nil {
		return r
	}
	return make([]int64, m.NumTiers())
}

// residencyString renders per-tier resident bytes as "HBM:96M DDR:240M ...".
func residencyString(m *machine.Machine, resident []int64) string {
	parts := make([]string, len(resident))
	for t, b := range resident {
		parts[t] = fmt.Sprintf("%s:%dM", m.TierName(machine.TierKind(t)), b>>20)
	}
	return strings.Join(parts, " ")
}
