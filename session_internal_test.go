package unimem

import (
	"fmt"
	"testing"
)

// TestDefaultSessionLRUSurvivesChurn is the regression for the legacy
// default-session table's eviction policy: the table is bounded, and when
// a sweep of machine variants overflows it, eviction must be
// least-recently-used — a hot machine the program keeps returning to must
// keep its session (and thus its memoized calibration) across the churn.
// The first bounded implementation stopped admitting entries once full;
// an arbitrary-order (map iteration) eviction would drop the hot session
// with probability ~1 over a long sweep. Both fail this test.
func TestDefaultSessionLRUSurvivesChurn(t *testing.T) {
	hot := PlatformA()
	hotSess := defaultSession(hot)

	// A cold variant admitted before the churn: with LRU eviction it must
	// be gone afterwards (it is never touched again).
	cold := PlatformA().WithDRAMCapacity(333 << 20)
	coldSess := defaultSession(cold)

	// Churn: far more distinct variants than the table holds, touching
	// the hot machine between insertions so it is always recently used.
	for i := 0; i < 3*maxDefaultSessions; i++ {
		variant := PlatformA().WithDRAMCapacity(int64(i+1) << 20)
		variant.Name = fmt.Sprintf("churn-%d", i)
		defaultSession(variant)
		if got := defaultSession(hot); got != hotSess {
			t.Fatalf("hot machine lost its session after %d insertions; eviction is not LRU", i+1)
		}
	}

	defaultMu.Lock()
	size := defaultSessions.Len()
	defaultMu.Unlock()
	if size > maxDefaultSessions {
		t.Errorf("table holds %d entries, want <= %d", size, maxDefaultSessions)
	}

	if got := defaultSession(hot); got != hotSess {
		t.Error("hot machine's session did not survive the churn")
	}
	if got := defaultSession(cold); got == coldSess {
		t.Error("cold (never-touched) session survived 3x-capacity churn; eviction order is wrong")
	}
}
