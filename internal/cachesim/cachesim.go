// Package cachesim implements a set-associative, write-back, write-allocate
// last-level cache simulator with LRU replacement.
//
// The Unimem runtime itself never sees the cache — it only observes
// post-cache main-memory traffic through sampled performance counters. The
// simulator's role in this repository is to *derive and validate* the
// post-cache access descriptors the workloads declare: tests drive the
// synthetic address traces of internal/trace through the simulator and
// check that the miss ratios assumed by the workload models (streaming
// sweeps missing once per line, pointer chases missing almost always,
// cache-resident vectors barely missing) actually emerge from a realistic
// cache.
package cachesim

import "fmt"

// Access is one memory reference in a trace.
type Access struct {
	Addr  int64
	Write bool
}

// Config describes the simulated cache geometry.
type Config struct {
	SizeBytes int64 // total capacity
	LineBytes int64 // line size (typically 64)
	Ways      int   // associativity
}

// DefaultLLC returns a 20 MiB, 16-way, 64 B-line cache, a typical LLC for
// the Xeon E5-2630 class nodes of the paper's Platform A.
func DefaultLLC() Config {
	return Config{SizeBytes: 20 << 20, LineBytes: 64, Ways: 16}
}

// Stats reports the simulator's counters.
type Stats struct {
	Accesses   int64
	Misses     int64
	Evictions  int64
	Writebacks int64
}

// MissRatio returns misses/accesses (0 when no accesses were made).
func (s Stats) MissRatio() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

type line struct {
	tag   int64
	valid bool
	dirty bool
	// lastUse is a per-set LRU timestamp.
	lastUse int64
}

// Cache is a set-associative LRU cache simulator. Not safe for concurrent
// use; each simulated rank owns its own instance.
type Cache struct {
	cfg   Config
	sets  [][]line
	nsets int64
	tick  int64
	stats Stats

	// onMiss, when non-nil, is invoked with the missing address; the
	// counter emulation uses it to attribute misses to objects.
	onMiss func(addr int64, write bool)
}

// New returns a cache with the given geometry. It panics on degenerate
// configurations (non-power-of-two handling is supported; zero sizes are
// not).
func New(cfg Config) *Cache {
	if cfg.LineBytes <= 0 || cfg.SizeBytes <= 0 || cfg.Ways <= 0 {
		panic(fmt.Sprintf("cachesim: invalid config %+v", cfg))
	}
	nlines := cfg.SizeBytes / cfg.LineBytes
	nsets := nlines / int64(cfg.Ways)
	if nsets == 0 {
		nsets = 1
	}
	sets := make([][]line, nsets)
	for i := range sets {
		sets[i] = make([]line, cfg.Ways)
	}
	return &Cache{cfg: cfg, sets: sets, nsets: nsets}
}

// OnMiss registers a callback invoked for every miss (after the line is
// filled). Pass nil to disable.
func (c *Cache) OnMiss(fn func(addr int64, write bool)) { c.onMiss = fn }

// Stats returns a copy of the current counters.
func (c *Cache) Stats() Stats { return c.stats }

// Reset clears the cache contents and counters.
func (c *Cache) Reset() {
	for i := range c.sets {
		for j := range c.sets[i] {
			c.sets[i][j] = line{}
		}
	}
	c.stats = Stats{}
	c.tick = 0
}

// Touch performs one access and reports whether it missed.
func (c *Cache) Touch(a Access) bool {
	c.tick++
	c.stats.Accesses++
	lineAddr := a.Addr / c.cfg.LineBytes
	set := c.sets[lineAddr%c.nsets]
	tag := lineAddr / c.nsets

	// Hit?
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].lastUse = c.tick
			if a.Write {
				set[i].dirty = true
			}
			return false
		}
	}
	// Miss: pick victim (invalid first, else LRU).
	c.stats.Misses++
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			goto fill
		}
		if set[i].lastUse < set[victim].lastUse {
			victim = i
		}
	}
	c.stats.Evictions++
	if set[victim].dirty {
		c.stats.Writebacks++
	}
fill:
	set[victim] = line{tag: tag, valid: true, dirty: a.Write, lastUse: c.tick}
	if c.onMiss != nil {
		c.onMiss(a.Addr, a.Write)
	}
	return true
}

// Run drives a whole trace through the cache and returns the number of
// misses it produced.
func (c *Cache) Run(trace []Access) int64 {
	before := c.stats.Misses
	for _, a := range trace {
		c.Touch(a)
	}
	return c.stats.Misses - before
}
