package scenario

import (
	"fmt"

	"unimem/internal/workloads"
	"unimem/internal/xrand"
)

// Archetype names a family of synthetic scenarios the generator can
// produce. The first three are *drift* archetypes whose ground-truth
// traffic evolves across iterations — the regime where online re-profiling
// should beat one-shot static tiering; the last three keep their hot set
// fixed and stress other axes (rank imbalance, comm burstiness) or serve
// as the control (stable).
type Archetype string

const (
	// ArchPatternDrift: an object's access pattern migrates stream ->
	// random over iterations, turning it latency-critical mid-run, while
	// a stream-swept decoy with higher static hint density occupies the
	// fast tier under hint-ranked placement.
	ArchPatternDrift Archetype = "pattern-drift"
	// ArchWSGrowth: AMR-style working-set evolution — one object's
	// traffic grows through piecewise windows while the initially hot
	// object fades.
	ArchWSGrowth Archetype = "ws-growth"
	// ArchHotRotation: a pool of equally sized work arrays through which
	// a small hot set rotates every few iterations (Nek5000-style Krylov
	// churn).
	ArchHotRotation Archetype = "hot-rotation"
	// ArchLoadImbalance: stationary traffic with a linear per-rank skew
	// on the compute phases, so the critical path concentrates on the
	// last rank.
	ArchLoadImbalance Archetype = "load-imbalance"
	// ArchBurstyComm: stationary compute traffic with scheduled
	// communication-volume spikes (checkpoint/exchange bursts).
	ArchBurstyComm Archetype = "bursty-comm"
	// ArchStable: the control — iteration-invariant traffic with uniform
	// patterns and accurate hints, where static placement is already
	// near-optimal and Unimem should tie within noise.
	ArchStable Archetype = "stable"
)

// Archetypes returns every generator archetype in presentation order.
func Archetypes() []Archetype {
	return []Archetype{
		ArchPatternDrift, ArchWSGrowth, ArchHotRotation,
		ArchLoadImbalance, ArchBurstyComm, ArchStable,
	}
}

// IsDrift reports whether the archetype's ground-truth traffic varies
// across iterations.
func (a Archetype) IsDrift() bool {
	switch a {
	case ArchPatternDrift, ArchWSGrowth, ArchHotRotation:
		return true
	}
	return false
}

// genIterations is the generated scenarios' iteration count; Quick-mode
// experiments cap it (to 12), so drift events are placed early enough to
// land inside a capped run as well.
const genIterations = 36

// mib converts mebibytes to bytes.
func mib(n int64) int64 { return n << 20 }

// gen carries the seeded stream the generator draws from.
type gen struct {
	rng *xrand.RNG
}

// between returns a deterministic draw in [lo, hi].
func (g *gen) between(lo, hi int) int {
	if hi <= lo {
		return lo
	}
	return lo + g.rng.Intn(hi-lo+1)
}

// Generate builds one scenario of the given archetype, deterministically
// from the seed: equal (archetype, seed) pairs produce identical specs.
// Scenarios are sized for the repository's simulated platforms (256 MiB
// fast tier per rank): the objects worth placing always exceed the fast
// tier together, so placement has real tension.
func Generate(a Archetype, seed uint64) (*Spec, error) {
	g := &gen{rng: xrand.New(seed ^ archSalt(a))}
	s := &Spec{
		Name:          fmt.Sprintf("%s-%04x", a, seed&0xFFFF),
		Class:         "synthetic",
		Ranks:         4,
		Iterations:    genIterations,
		FootprintFrac: 1,
	}
	switch a {
	case ArchStable:
		g.stable(s, 0, 0)
	case ArchLoadImbalance:
		g.stable(s, 0.4+0.8*g.rng.Float64(), 0)
	case ArchBurstyComm:
		g.stable(s, 0, float64(g.between(8, 16)))
	case ArchPatternDrift:
		g.patternDrift(s)
	case ArchWSGrowth:
		g.wsGrowth(s)
	case ArchHotRotation:
		g.hotRotation(s)
	default:
		return nil, fmt.Errorf("scenario: unknown archetype %q", a)
	}
	setHints(s)
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("scenario: generated %s: %w", s.Name, err)
	}
	return s, nil
}

// archSalt decorrelates the per-archetype random streams.
func archSalt(a Archetype) uint64 {
	var h uint64 = 0xA5C3
	for _, c := range string(a) {
		h = h*0x100000001B3 ^ uint64(c)
	}
	return h
}

// setHints installs the static reference-count estimates a compiler
// analysis would derive before the main loop: the first iteration's
// per-object access totals. For drifting scenarios these hints are
// *accurately wrong* — faithful to the program text at loop entry and
// stale the moment traffic evolves, which is precisely the failure mode of
// offline/static placement the fleet experiment measures.
func setHints(s *Spec) {
	hints := make(map[string]float64)
	for i := range s.Phases {
		for _, r := range s.Phases[i].refsAt(0) {
			hints[r.Object] += float64(r.Accesses)
		}
	}
	for i := range s.Objects {
		s.Objects[i].RefHint = hints[s.Objects[i].Name]
	}
}

// scaffold appends the shared phase skeleton: aux stream objects, a halo
// exchange with a pack buffer, and a closing reduction. mainRefs becomes
// the "sweep" compute phase's reference list.
func (g *gen) scaffold(s *Spec, mainRefs []RefSpec, rankSkew, commBurst float64) {
	s.Objects = append(s.Objects,
		ObjectSpec{Name: "aux_a", SizeBytes: mib(int64(g.between(8, 16)))},
		ObjectSpec{Name: "aux_b", SizeBytes: mib(int64(g.between(8, 16)))},
		ObjectSpec{Name: "halo_buf", SizeBytes: mib(8)},
	)
	// Aux sweeps run at 0.3 passes so their hint density stays below every
	// deliberately hot object: the hint-density static ranking then orders
	// the objects the generator means to be contended, not the scaffolding.
	auxRef := func(name string) RefSpec {
		o := findObject(s, name)
		return RefSpec{Object: name, Accesses: o.SizeBytes / 64 * 3 / 10, ReadFrac: 0.5, Pattern: "stream"}
	}
	sweep := PhaseSpec{
		Name:     "sweep",
		Flops:    20e6,
		RankSkew: rankSkew,
		Refs:     append(mainRefs, auxRef("aux_a")),
	}
	exchange := PhaseSpec{
		Name:      "exchange",
		Comm:      "halo",
		CommBytes: 512 << 10,
		Refs:      []RefSpec{auxRef("halo_buf")},
	}
	if commBurst > 0 {
		// Two or three scheduled spikes of a few iterations each.
		n := g.between(2, 3)
		from := g.between(4, 6)
		for i := 0; i < n; i++ {
			dur := g.between(2, 3)
			exchange.CommSchedule = append(exchange.CommSchedule,
				workloads.ScaleWindow{From: from, To: from + dur, Scale: commBurst})
			from += dur + g.between(4, 7)
		}
	}
	update := PhaseSpec{
		Name:     "update",
		Flops:    8e6,
		RankSkew: rankSkew,
		Refs:     []RefSpec{auxRef("aux_b")},
	}
	reduce := PhaseSpec{Name: "reduce", Comm: "allreduce", CommBytes: 8 << 10, Flops: 2e6}
	s.Phases = append(s.Phases, sweep, exchange, update, reduce)
}

// findObject returns the named object spec (the generator only looks up
// objects it just created).
func findObject(s *Spec, name string) *ObjectSpec {
	for i := range s.Objects {
		if s.Objects[i].Name == name {
			return &s.Objects[i]
		}
	}
	panic("scenario: generator lookup of unknown object " + name)
}

// stable emits the stationary archetypes: 4-5 equally sized hot objects
// with uniform pattern and read mix (so hint-density ranking equals
// benefit ranking and static placement is near-optimal), optionally with
// rank skew or comm bursts layered on. The hot set always exceeds the
// 256 MiB fast tier, so placement still has tension.
func (g *gen) stable(s *Spec, rankSkew, commBurst float64) {
	n := g.between(4, 5)
	var refs []RefSpec
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("field%d", i)
		s.Objects = append(s.Objects, ObjectSpec{Name: name, SizeBytes: mib(72)})
		acc := int64(1.6e6) - int64(i)*int64(250e3) - int64(g.rng.Intn(50_000))
		refs = append(refs, RefSpec{Object: name, Accesses: acc, ReadFrac: 0.6, Pattern: "random"})
	}
	g.scaffold(s, refs, rankSkew, commBurst)
}

// patternDrift emits the stream->random pattern-migration archetype: a
// stream-swept decoy tops the static hint-density ranking and a stably hot
// random object rides along, while the drifter starts as a quiet stream
// sweep (low hint density, so static leaves it in the slow tier) and
// migrates to intensifying random access in two steps mid-run. Post-drift
// the fast tier cannot hold both the decoy and the drifter, so a stale
// placement keeps paying the drifter's latency-bound slow-tier cost.
func (g *gen) patternDrift(s *Spec) {
	d := g.between(4, 5)
	decoySize := mib(int64(g.between(110, 140)))
	drifterSize := mib(int64(g.between(96, 112)))
	s.Objects = append(s.Objects,
		ObjectSpec{Name: "decoy", SizeBytes: decoySize},
		ObjectSpec{Name: "drifter", SizeBytes: drifterSize},
		ObjectSpec{Name: "hotstable", SizeBytes: mib(64)},
	)
	refs := []RefSpec{
		// One full pass: density 1 access/line, the top static rank.
		{Object: "decoy", Accesses: decoySize / 64, ReadFrac: 0.7, Pattern: "stream"},
		{Object: "drifter", Accesses: drifterSize / 64, ReadFrac: 0.6, Pattern: "stream",
			Schedule: []RefWindow{
				{From: 0, To: d, Scale: 0.3},
				{From: d, To: 2 * d, Scale: 0.5, Pattern: "random"},
				{From: 2 * d, Scale: 0.75, Pattern: "random"},
			}},
		{Object: "hotstable", Accesses: 800e3, ReadFrac: 0.6, Pattern: "random"},
	}
	g.scaffold(s, refs, 0, 0)
}

// wsGrowth emits the AMR-style working-set evolution: the grower's traffic
// ramps up through piecewise windows while the initially hot shrinker
// fades after the refinement point.
func (g *gen) wsGrowth(s *Spec) {
	a := g.between(3, 5)
	b := g.between(6, 8)
	growerSize := mib(int64(g.between(96, 120)))
	shrinkerSize := mib(int64(g.between(96, 120)))
	s.Objects = append(s.Objects,
		ObjectSpec{Name: "grower", SizeBytes: growerSize},
		ObjectSpec{Name: "shrinker", SizeBytes: shrinkerSize},
		ObjectSpec{Name: "warm", SizeBytes: mib(64)},
	)
	refs := []RefSpec{
		{Object: "grower", Accesses: 1.5e6, ReadFrac: 0.6, Pattern: "random",
			Schedule: []RefWindow{
				{From: 0, To: a, Scale: 0.05},
				{From: a, To: b, Scale: 0.4},
			}},
		{Object: "shrinker", Accesses: 1.3e6, ReadFrac: 0.6, Pattern: "random",
			Schedule: []RefWindow{
				{From: b, Scale: 0.08},
			}},
		{Object: "warm", Accesses: 300e3, ReadFrac: 0.6, Pattern: "random"},
	}
	g.scaffold(s, refs, 0, 0)
}

// hotRotation emits the Krylov-churn archetype: w equally sized work
// arrays; in rotation epoch k (p iterations each) the hot pair is
// {-k mod w, -k+1 mod w} — the rotation runs *backwards* through the
// array indices, so the object entering the hot set each epoch is the one
// the hint ranking (and any stale placement) left in the slowest tier,
// and every epoch boundary is a genuine placement cliff. Each array is
// hot for two consecutive epochs and cold otherwise (expressed as merged
// cold windows that silence it down to residual traffic).
func (g *gen) hotRotation(s *Spec) {
	w := g.between(4, 6)
	p := 6
	epochs := (genIterations + p - 1) / p
	var refs []RefSpec
	for j := 0; j < w; j++ {
		name := fmt.Sprintf("work%d", j)
		// 96 MiB each: the 256 MiB fast tier holds exactly the hot pair,
		// so every rotation step forces a placement change.
		s.Objects = append(s.Objects, ObjectSpec{Name: name, SizeBytes: mib(96)})
		hot := func(k int) bool { m := (j + k) % w; return m == 0 || m == 1 }
		var windows []RefWindow
		for k := 0; k < epochs; k++ {
			if hot(k) {
				continue
			}
			from, to := k*p, (k+1)*p
			if n := len(windows); n > 0 && windows[n-1].To == from {
				windows[n-1].To = to // merge consecutive cold epochs
			} else {
				windows = append(windows, RefWindow{From: from, To: to, Scale: 0.04})
			}
		}
		if n := len(windows); n > 0 && windows[n-1].To >= genIterations {
			windows[n-1].To = 0 // open-ended tail
		}
		refs = append(refs, RefSpec{
			Object: name, Accesses: 1.3e6, ReadFrac: 0.6, Pattern: "random",
			Schedule: windows,
		})
	}
	g.scaffold(s, refs, 0, 0)
}
