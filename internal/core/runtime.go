// Package core implements the Unimem runtime — the paper's primary
// contribution. One Runtime instance manages one MPI rank's data placement
// through the workflow of §3.1 (Fig. 8):
//
//  1. Phase profiling: during the first iteration of the main computation
//     loop, sampled performance counters capture per-object main-memory
//     traffic for every phase (package counters).
//  2. Performance modeling: at the end of the first iteration, Eq. 1-4
//     classify each object's sensitivity and price the benefit and cost of
//     moving it (package model).
//  3. Placement decision and enforcement: a 0-1 knapsack per phase, solved
//     by phase-local and cross-phase global search, picks the DRAM-resident
//     sets (package placement); from the second iteration a helper thread
//     proactively migrates objects ahead of the phases that need them
//     (package mover).
//
// The optimizations of §3.2 are all present and individually switchable
// for the Fig. 11 ablation: initial data placement from static reference
// hints, large-object partitioning, the local/global search pair, and the
// >10% variation monitor that triggers re-profiling.
package core

import (
	"sort"

	"unimem/internal/app"
	"unimem/internal/counters"
	"unimem/internal/machine"
	"unimem/internal/memsys"
	"unimem/internal/model"
	"unimem/internal/mover"
	"unimem/internal/obs"
	"unimem/internal/phase"
	"unimem/internal/placement"
)

// Config selects Unimem features and model parameters.
type Config struct {
	// EnableGlobal/EnableLocal enable the two placement searches.
	EnableGlobal bool
	EnableLocal  bool
	// EnablePartition enables large-object chunking (§3.2).
	EnablePartition bool
	// EnableInitial enables static-hint initial data placement (§3.2).
	EnableInitial bool

	// Counters configures the emulated sampling infrastructure.
	Counters counters.Config
	// Calibration carries the platform's one-time CF/BW_peak measurement;
	// zero value means "calibrate lazily at Init" (the paper computes it
	// once per platform and reuses it).
	Calibration model.Calibration

	// VariationThreshold is the re-profiling trigger (paper: 0.10).
	VariationThreshold float64
	// PartitionMinBytes: objects at least this large are chunked when
	// partitionable; 0 means 90% of DRAM capacity (an object that almost
	// fills or exceeds DRAM cannot usefully move whole).
	PartitionMinBytes int64
	// ChunkSize is the partition granularity (0: memsys default, 32 MiB).
	ChunkSize int64
	// AmortizeIters spreads adoption cost in the global search score.
	AmortizeIters int
	// Seed derives all per-rank sampling streams.
	Seed uint64

	// Ablation knobs for the model refinements this reproduction adds on
	// top of the paper's formulas (see EXPERIMENTS.md "Reproduction
	// notes"); all default off, i.e. refinements active.
	LiteralEq3     bool // price Eq. 3 without the MLP correction
	NaivePredictor bool // score plans without the helper-thread timeline
	NoHysteresis   bool // drop the local search's recurrence charge
}

// DefaultConfig returns the full Unimem configuration (all techniques on).
func DefaultConfig() Config {
	return Config{
		EnableGlobal:       true,
		EnableLocal:        true,
		EnablePartition:    true,
		EnableInitial:      true,
		Counters:           counters.Default(),
		VariationThreshold: 0.10,
		AmortizeIters:      10,
		Seed:               0x0C0FFEE,
	}
}

// Runtime is the per-rank Unimem instance, implementing app.Manager. The
// paper's Table 2 API maps onto the Manager lifecycle: Setup performs
// unimem_init and the unimem_malloc calls, LoopStart/LoopEnd are
// unimem_start/unimem_end, and heap teardown (unimem_free) happens when
// the harness drops the heap.
type Runtime struct {
	cfg  Config
	rank int

	mach    *machine.Machine
	heap    *memsys.Heap
	sampler *counters.Sampler
	mov     *mover.Mover
	reg     *phase.Registry
	mcfg    model.Config

	profiling bool
	// reprofileNext schedules a full-iteration re-profile (variation >10%).
	reprofileNext bool

	plan *placement.Plan
	// tierPlan is the multiple-choice-knapsack decision taken on machines
	// with more than two tiers (nil on two-tier machines, whose decisions
	// go through the paper's exact two-search pipeline above).
	tierPlan *placement.TieredPlan
	// pendingSeq[phase index] is the latest mover ticket that must complete
	// before that phase executes.
	pendingSeq map[int]uint64
	// oneShot holds adoption migrations deferred to their dependence-
	// derived trigger phases (so they overlap like scheduled moves do);
	// drained the first time each trigger phase begins.
	oneShot map[int][]placement.Move
	// oneShotTiered is oneShot's N-tier counterpart: deferred promotions
	// of the multi-tier adoption.
	oneShotTiered map[int][]tieredMove
	// decisionIter is the completed-iteration count when the latest
	// decision was taken; the variation monitor stays quiet for two
	// iterations afterwards while migrations settle and the baseline
	// re-forms.
	decisionIter int

	chunkByName map[string]*memsys.Chunk
	chunkSize   map[string]int64

	overheadNS float64
	// Decisions counts placement decisions taken (1 + re-profiles).
	Decisions int
	// ReprofileIters records the completed-iteration counts at which the
	// variation monitor (>10% drift, §3.2) scheduled a re-profile — the
	// adaptation timeline under drifting workloads, for inspection
	// tooling and the scenario-fleet diagnostics.
	ReprofileIters []int
	// Candidates holds every plan the latest decision considered (for
	// inspection tooling).
	Candidates []*placement.Plan
	// explicitDeps holds programmer-declared cross-phase dependences
	// (directive API, §3.3): chunk -> extra phase IDs that reference it.
	explicitDeps map[string][]int

	// expl receives this rank's decision attribution (nil when disabled:
	// every capture site below guards on it, so the disabled path costs
	// one pointer check).
	expl *obs.Explain
	// adoptTrigger classifies the current decision's one-time moves for
	// the migration audit trail: "adoption" for the first decision,
	// "reprofile" for re-decisions after drift.
	adoptTrigger string
	// moveMeta joins mover tickets to their enqueue-time audit metadata
	// (trigger kind, Eq. 4 predicted copy time); entries are consumed by
	// the completion observer. Enqueues and completions both happen on
	// the main rank goroutine (completions apply at Drain/Sync/Stop), so
	// the map needs no lock.
	moveMeta map[uint64]moveMeta
}

// moveMeta is the enqueue-time metadata of one audited migration.
type moveMeta struct {
	trigger     string
	predictedNS float64
}

// NewRuntime returns a Unimem runtime for one rank.
func NewRuntime(rank int, cfg Config) *Runtime {
	if cfg.VariationThreshold == 0 {
		cfg.VariationThreshold = 0.10
	}
	if cfg.AmortizeIters == 0 {
		cfg.AmortizeIters = 10
	}
	return &Runtime{
		cfg:           cfg,
		rank:          rank,
		pendingSeq:    make(map[int]uint64),
		oneShot:       make(map[int][]placement.Move),
		oneShotTiered: make(map[int][]tieredMove),
		chunkByName:   make(map[string]*memsys.Chunk),
		chunkSize:     make(map[string]int64),
		explicitDeps:  make(map[string][]int),
		moveMeta:      make(map[uint64]moveMeta),
	}
}

// Factory adapts NewRuntime to app.ManagerFactory.
func Factory(cfg Config) app.ManagerFactory {
	return func(rank int) app.Manager { return NewRuntime(rank, cfg) }
}

// Name implements app.Manager.
func (r *Runtime) Name() string { return "unimem" }

// Rank returns the MPI rank this runtime instance manages.
func (r *Runtime) Rank() int { return r.rank }

// DRAMResidents returns the names of chunks currently resident in DRAM,
// sorted; an introspection hook for tooling and tests.
func (r *Runtime) DRAMResidents() []string {
	var out []string
	for name, in := range r.heap.ResidencySnapshot() {
		if in {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Plan exposes the current placement plan (nil before the first decision,
// and nil on machines with more than two tiers — see TierPlan); used by
// the inspection tooling and tests.
func (r *Runtime) Plan() *placement.Plan { return r.plan }

// TierPlan exposes the multiple-choice-knapsack assignment taken on
// machines with more than two tiers (nil before the first decision and on
// two-tier machines).
func (r *Runtime) TierPlan() *placement.TieredPlan { return r.tierPlan }

// TierResidencyBytes returns this rank's current resident bytes per tier.
func (r *Runtime) TierResidencyBytes() []int64 { return r.heap.TierResidencyBytes() }

// TierResidents returns chunk name -> current tier for this rank.
func (r *Runtime) TierResidents() map[string]machine.TierKind { return r.heap.TierSnapshot() }

// MoverStats exposes the helper thread's accounting.
func (r *Runtime) MoverStats() mover.Stats { return r.mov.Stats() }

// DeclareDep records a programmer directive that chunk is referenced by the
// given phase ID even though profiling may not observe it (the paper's
// directive-based dependency escape hatch). It conservatively shrinks
// overlap windows for that chunk.
func (r *Runtime) DeclareDep(chunk string, phaseID int) {
	r.explicitDeps[chunk] = append(r.explicitDeps[chunk], phaseID)
}

// Setup implements app.Manager: unimem_init + the unimem_malloc calls,
// applying the partitioning rule and initial data placement.
func (r *Runtime) Setup(ctx *app.RankCtx) error {
	r.mach = ctx.Mach
	r.heap = ctx.Heap
	r.sampler = counters.NewSampler(ctx.Mach, r.cfg.Counters, r.cfg.Seed^uint64(r.rank)*0x9E37)
	r.mov = mover.New(ctx.Heap)
	r.expl = ctx.Explain
	if tr, ex := ctx.Trace, ctx.Explain; tr != nil || ex != nil {
		rank := r.rank
		r.mov.SetObserver(func(c mover.Completion) {
			if ex != nil {
				meta := r.moveMeta[c.Req.Seq()]
				delete(r.moveMeta, c.Req.Seq())
				rec := obs.MigrationRecord{
					Chunk: c.Req.Chunk.Name(), From: c.From.String(), To: c.Req.To.String(),
					Bytes: c.BytesMoved, Trigger: meta.trigger,
					StartNS: c.StartNS, EndNS: c.EndNS,
					PredictedNS: meta.predictedNS, RealizedNS: c.EndNS - c.StartNS,
				}
				if c.Err != nil {
					rec.Failed = true
					rec.Error = c.Err.Error()
				}
				ex.AddMigration(rec)
			}
			if c.Err != nil {
				tr.Instant(obs.Virtual, rank, "migration failed", "mover", c.StartNS,
					map[string]any{"chunk": c.Req.Chunk.Name(), "error": c.Err.Error()})
				return
			}
			tr.Span(obs.Virtual, rank, "migrate "+c.Req.Chunk.Name(), "mover", c.StartNS, c.EndNS,
				map[string]any{"from": c.From.String(), "to": c.Req.To.String(), "bytes": c.BytesMoved})
		})
	}
	r.mov.Start()
	r.reg = phase.NewRegistry()

	if r.cfg.Calibration == (model.Calibration{}) {
		r.cfg.Calibration = model.Calibrate(ctx.Mach, r.cfg.Counters, r.cfg.Seed^0xCA11B)
	}
	r.mcfg = model.DefaultThresholds()
	r.mcfg.Apply(r.cfg.Calibration)
	r.mcfg.LiteralEq3 = r.cfg.LiteralEq3

	dramCap := ctx.Mach.Fastest().CapacityBytes
	partitionMin := r.cfg.PartitionMinBytes
	if partitionMin == 0 {
		partitionMin = dramCap * 9 / 10
	}

	// Initial data placement (§3.2): rank objects by their static
	// reference-count hint and fill the fast tiers greedily, fastest
	// first. Objects without a hint (count unknown before the loop) stay
	// in the slowest tier. On two-tier machines this is exactly the
	// paper's DRAM fill.
	slowest := ctx.Mach.SlowestIdx()
	initialTier := make(map[string]machine.TierKind)
	if r.cfg.EnableInitial {
		order := make([]int, 0, len(ctx.W.Objects))
		for i, o := range ctx.W.Objects {
			if o.RefHint > 0 {
				order = append(order, i)
			}
		}
		sort.SliceStable(order, func(a, b int) bool {
			return ctx.W.Objects[order[a]].RefHint > ctx.W.Objects[order[b]].RefHint
		})
		remaining := make([]int64, int(slowest))
		for t := range remaining {
			remaining[t] = ctx.Mach.Tier(machine.TierKind(t)).CapacityBytes
		}
		for _, i := range order {
			o := ctx.W.Objects[i]
			for t := range remaining {
				if o.Size <= remaining[t] {
					initialTier[o.Name] = machine.TierKind(t)
					remaining[t] -= o.Size
					break
				}
			}
		}
	}

	for _, os := range ctx.W.Objects {
		opts := memsys.AllocOptions{
			InitialTier: slowest,
			RefHint:     os.RefHint,
		}
		if t, ok := initialTier[os.Name]; ok {
			opts.InitialTier = t
		}
		if r.cfg.EnablePartition && os.Partitionable && os.Size >= partitionMin {
			opts.Partitionable = true
			opts.ChunkSize = r.cfg.ChunkSize
		}
		obj, err := ctx.Heap.Alloc(os.Name, os.Size, opts)
		if err != nil {
			return err
		}
		for _, c := range obj.Chunks {
			r.chunkByName[c.Name()] = c
			r.chunkSize[c.Name()] = c.Size
		}
	}
	return nil
}

// LoopStart implements app.Manager: unimem_start — begin profiling the
// first iteration of the main computation loop.
func (r *Runtime) LoopStart(ctx *app.RankCtx) {
	r.sampler.Enable()
	r.profiling = true
}

// PhaseBegin implements app.Manager: identify the phase (PMPI counter),
// take placement decisions at iteration boundaries, enqueue scheduled
// proactive migrations, and synchronize with the helper thread for moves
// this phase depends on.
func (r *Runtime) PhaseBegin(ctx *app.RankCtx, name string, kind phase.Kind, mpiOp string) {
	// Apply every migration enqueued before this boundary to the heap now,
	// so placement visibility is a deterministic function of the virtual
	// schedule (enqueue at phase p => tier change observed from phase p+1)
	// rather than of goroutine scheduling. Costs no virtual time; exposed
	// stalls are still charged at the Sync below.
	r.mov.Drain()

	p, newIter := r.reg.Begin(name, kind, mpiOp)

	if newIter && r.reg.Sealed() {
		if r.profiling {
			// A full profiled iteration just completed (the first, or a
			// re-profile): model and decide.
			r.decide(ctx)
		} else if r.reprofileNext {
			r.reprofileNext = false
			r.sampler.Enable()
			r.profiling = true
		}
	}

	if (r.plan != nil || r.tierPlan != nil) && !r.profilingBlocksEnforcement() {
		r.enforceAt(ctx, p.ID)
	}

	// Queue-status check at the beginning of each phase (§3.3).
	if seq := r.pendingSeq[p.ID]; seq > 0 || r.plan != nil || r.tierPlan != nil {
		stall := r.mov.Sync(seq, ctx.Comm.Clock())
		delete(r.pendingSeq, p.ID)
		ctx.Comm.Advance(stall + mover.SyncCheckNS)
		r.overheadNS += mover.SyncCheckNS
	}
}

// profilingBlocksEnforcement reports whether enforcement should pause.
// Re-profiling runs concurrently with the existing plan (the paper keeps
// serving the old decision while collecting a fresh profile), so it never
// blocks; only the very first profile (no plan yet) executes unenforced.
func (r *Runtime) profilingBlocksEnforcement() bool {
	return r.plan == nil && r.tierPlan == nil
}

// enforceAt enqueues every scheduled move triggered at phase pid (plus any
// pending one-shot adoption moves), skipping chunks already in their
// desired tier.
func (r *Runtime) enforceAt(ctx *app.RankCtx, pid int) {
	if moves := r.oneShot[pid]; len(moves) > 0 {
		delete(r.oneShot, pid)
		for _, mv := range moves {
			r.enqueueMove(ctx, mv, r.adoptTrigger)
		}
	}
	if moves := r.oneShotTiered[pid]; len(moves) > 0 {
		delete(r.oneShotTiered, pid)
		for _, mv := range moves {
			r.enqueueTieredMove(ctx, mv, r.adoptTrigger)
		}
	}
	if r.plan == nil {
		return
	}
	for _, mv := range r.plan.Schedule {
		if mv.TriggerPhase != pid {
			continue
		}
		r.enqueueMove(ctx, mv, "steady-state")
	}
}

// tieredMove is one adoption move of the N-tier placement: migrate chunk
// to tier `to`, required complete before phase `target` (-1: no deadline).
type tieredMove struct {
	chunk  string
	to     machine.TierKind
	target int
}

// enqueueTieredMove posts a tiered adoption move to the helper thread,
// skipping chunks already in place. trigger classifies the move for the
// migration audit trail.
func (r *Runtime) enqueueTieredMove(ctx *app.RankCtx, mv tieredMove, trigger string) {
	c := r.chunkByName[mv.chunk]
	if c == nil {
		return
	}
	from := r.heap.TierOf(c)
	if from == mv.to {
		return
	}
	seq := r.mov.Enqueue(c, mv.to, ctx.Comm.Clock())
	if r.expl != nil {
		r.moveMeta[seq] = moveMeta{trigger: trigger,
			predictedNS: r.mach.CopyTimeBetweenNS(from, mv.to, c.Size)}
	}
	if mv.target >= 0 && seq > r.pendingSeq[mv.target] {
		r.pendingSeq[mv.target] = seq
	}
}

func (r *Runtime) enqueueMove(ctx *app.RankCtx, mv placement.Move, trigger string) {
	c := r.chunkByName[mv.Chunk]
	if c == nil {
		return
	}
	want := machine.NVM
	if mv.ToDRAM {
		want = machine.DRAM
	}
	from := r.heap.TierOf(c)
	if from == want {
		return
	}
	seq := r.mov.Enqueue(c, want, ctx.Comm.Clock())
	if r.expl != nil {
		r.moveMeta[seq] = moveMeta{trigger: trigger,
			predictedNS: r.mach.CopyTimeBetweenNS(from, want, c.Size)}
	}
	if mv.ToDRAM {
		if seq > r.pendingSeq[mv.TargetPhase] {
			r.pendingSeq[mv.TargetPhase] = seq
		}
	}
}

// PhaseEnd implements app.Manager: close the phase, sample its profile
// while profiling, and run the variation monitor afterwards.
func (r *Runtime) PhaseEnd(ctx *app.RankCtx, durNS float64, traffic []counters.ChunkTraffic) {
	p := r.reg.End(durNS)
	if r.profiling {
		ps := r.sampler.Sample(durNS, traffic)
		p.SetProfile(ps)
		ctx.Comm.Advance(int64(ps.OverheadNS))
		r.overheadNS += ps.OverheadNS
		return
	}
	// Variation monitor (§3.2): compare against the post-decision baseline.
	// Only computation phases are monitored — a communication phase's
	// duration is dominated by synchronization waits on other ranks, which
	// shift whenever any rank migrates and would trigger spurious
	// re-profiling. For two iterations after a decision the baseline keeps
	// re-forming: the plan's own migrations change phase durations, and
	// reacting to that would loop profiling forever.
	if p.Kind == phase.Comm {
		return
	}
	if r.reg.Iter() <= r.decisionIter+1 || p.DecisionNS == 0 {
		p.DecisionNS = durNS
		return
	}
	rel := (durNS - p.DecisionNS) / p.DecisionNS
	if rel < 0 {
		rel = -rel
	}
	if rel > r.cfg.VariationThreshold && !r.reprofileNext {
		r.reprofileNext = true
		r.ReprofileIters = append(r.ReprofileIters, r.reg.Iter())
		if ctx.Trace != nil {
			ctx.Trace.Instant(obs.Virtual, r.rank, "reprofile scheduled", "unimem",
				ctx.Comm.Clock(), map[string]any{"iter": r.reg.Iter(), "variation": rel})
		}
		r.expl.AddReprofile(obs.ReprofileRecord{
			Iter: r.reg.Iter(), Phase: p.Name,
			Variation: rel, Threshold: r.cfg.VariationThreshold,
		})
	}
}

// decide runs step 2 and 3 of the workflow: build model estimates from the
// profiled iteration, search placements, adopt the best plan, and enqueue
// adoption migrations. Machines with more than two tiers take the
// multiple-choice-knapsack path; two-tier machines run the paper's exact
// two-search pipeline.
func (r *Runtime) decide(ctx *app.RankCtx) {
	if ctx.Mach.NumTiers() > 2 {
		r.decideTiered(ctx)
		return
	}
	r.sampler.Disable()
	r.profiling = false
	r.Decisions++

	phases := r.reg.Phases()
	in := &placement.Input{
		DRAMCapacity:   ctx.Mach.Fastest().CapacityBytes,
		ChunkSize:      r.chunkSize,
		Phases:         make([]placement.PhaseData, len(phases)),
		Resident:       r.heap.ResidencySnapshot(),
		CopyTimeNS:     ctx.Mach.CopyTimeNS,
		OverlapNS:      r.overlapNS,
		TriggerPhase:   r.triggerPhase,
		References:     r.references,
		AmortizeIters:  r.cfg.AmortizeIters,
		NaivePredictor: r.cfg.NaivePredictor,
		NoHysteresis:   r.cfg.NoHysteresis,
	}
	var modelOps int
	var terms [][]obs.ChunkTerm
	if r.expl != nil {
		terms = make([][]obs.ChunkTerm, len(phases))
	}
	for i, p := range phases {
		pd := placement.PhaseData{DurNS: p.ProfiledNS, Benefit: make(map[string]float64)}
		if p.Profile != nil {
			for _, s := range p.Profile.Objects {
				tier := machine.NVM
				if c := r.chunkByName[s.Chunk]; c != nil {
					tier = r.heap.TierOf(c)
				}
				est := r.mcfg.EstimateChunk(ctx.Mach, s, p.Profile, tier)
				if est.BenefitNS > 0 {
					pd.Benefit[s.Chunk] += est.BenefitNS
				}
				modelOps++
				if terms != nil {
					terms[i] = append(terms[i], obs.ChunkTerm{
						Chunk: s.Chunk, Sensitivity: est.Sens.String(),
						BWBps: est.BWBps, BenefitNS: est.BenefitNS,
					})
				}
			}
		}
		in.Phases[i] = pd
	}
	// A new decision supersedes any not-yet-triggered adoption moves from
	// the previous one; stale deferred moves would drag outdated chunks
	// back into DRAM.
	r.oneShot = make(map[int][]placement.Move)
	r.plan, r.Candidates = placement.DecideAll(in, r.cfg.EnableLocal, r.cfg.EnableGlobal)

	// Modeling cost: estimates plus the knapsack DP cells, charged to the
	// critical path (part of "pure runtime cost").
	capUnits := int(ctx.Mach.Fastest().CapacityBytes >> 20)
	modelNS := float64(modelOps)*200 + float64(capUnits*len(r.chunkSize))*20
	decideAt := ctx.Comm.Clock()
	ctx.Comm.Advance(int64(modelNS))
	r.overheadNS += modelNS
	if ctx.Trace != nil {
		ctx.Trace.Span(obs.Virtual, r.rank, "placement decision", "unimem", decideAt, ctx.Comm.Clock(),
			map[string]any{"solver": string(r.plan.Strategy), "model_ops": modelOps,
				"decision": r.Decisions, "adoption_moves": len(r.plan.Adoption)})
	}
	r.adoptTrigger = decisionTrigger(r.Decisions)
	if r.expl != nil {
		rec := obs.DecisionRecord{
			Decision: r.Decisions, Iter: r.reg.Iter(), Trigger: r.adoptTrigger,
			Solver: string(r.plan.Strategy), PredictedIterNS: r.plan.PredictedIterNS,
			OracleIterNS: placement.OracleStaticNS(in), ModelNS: modelNS,
		}
		for i, p := range phases {
			tb := obs.TermBreakdown{Phase: p.ID, Name: p.Name, Kind: p.Kind.String(), DurNS: p.ProfiledNS}
			for _, ct := range terms[i] {
				ct.Chosen = r.plan.Desired[i][ct.Chunk]
				if ct.Chosen {
					tb.BenefitNS += ct.BenefitNS
				}
				tb.Chunks = append(tb.Chunks, ct)
			}
			rec.Phases = append(rec.Phases, tb)
		}
		for _, p := range r.Candidates {
			rec.Alternatives = append(rec.Alternatives, obs.AlternativeRecord{
				Strategy: string(p.Strategy), PredictedIterNS: p.PredictedIterNS,
				DeltaNS: p.PredictedIterNS - r.plan.PredictedIterNS,
				Moves:   len(p.Adoption) + len(p.Schedule), Chosen: p == r.plan,
			})
		}
		r.expl.AddDecision(rec)
	}

	// Rebaseline the variation monitor: durations will shift under the new
	// placement.
	r.decisionIter = r.reg.Iter()
	for _, p := range phases {
		p.DecisionNS = 0
	}

	// Adoption: evictions go to the helper thread immediately (freeing
	// DRAM early is always safe); insertions are deferred to their
	// dependence-derived trigger phases so the copies overlap with the
	// enforcing iteration's execution (Fig. 5), arriving in time for the
	// first referencing phase of the iteration after.
	for _, mv := range r.plan.Adoption {
		if !mv.ToDRAM {
			r.enqueueMove(ctx, mv, r.adoptTrigger)
			continue
		}
		target := r.firstReferencing(mv.Chunk)
		trigger := r.reg.TriggerPhase(mv.Chunk, target)
		r.oneShot[trigger] = append(r.oneShot[trigger], placement.Move{
			Chunk: mv.Chunk, ToDRAM: true,
			TriggerPhase: trigger, TargetPhase: target,
		})
	}
}

// decideTiered is the N-tier placement decision: evaluate the Eq. 1-4
// models against every tier's spec (benefit relative to the slowest tier,
// movement cost on the tier graph's edges amortized over AmortizeIters
// iterations, mirroring the cross-phase global search), assign every chunk
// exactly one tier with the multiple-choice knapsack under per-tier
// capacities, and adopt the assignment: demotions free shared-tier space
// immediately, promotions are deferred to their dependence-derived trigger
// phases so the copies overlap with computation. The assignment is static
// until the variation monitor triggers a re-profile.
//
// Of the Config knobs, EnableGlobal/EnableLocal gate the decision as a
// whole (both off: keep everything where it is, like the two-tier "none"
// plan); the two-tier-specific ablations (NaivePredictor — there is no
// recurring-schedule timeline here — and NoHysteresis — no phase-local
// churn to damp) have no N-tier counterpart and are ignored.
func (r *Runtime) decideTiered(ctx *app.RankCtx) {
	r.sampler.Disable()
	r.profiling = false
	r.Decisions++

	m := ctx.Mach
	nTiers := m.NumTiers()
	slow := m.SlowestIdx()
	phases := r.reg.Phases()
	current := r.heap.TierSnapshot()

	if !r.cfg.EnableGlobal && !r.cfg.EnableLocal {
		// Placement disabled: adopt the current residency unchanged so
		// enforcement and the variation monitor behave like the two-tier
		// "none" plan.
		assign := make(map[string]int, len(current))
		for c, tk := range current {
			assign[c] = int(tk)
		}
		r.tierPlan = &placement.TieredPlan{Assign: assign, Solver: "none"}
		r.decisionIter = r.reg.Iter()
		for _, p := range phases {
			p.DecisionNS = 0
		}
		return
	}

	// Per-chunk per-tier benefit totals across the profiled iteration.
	benefit := make(map[string][]float64)
	var iterNS float64
	var modelOps int
	var terms [][]obs.ChunkTerm
	if r.expl != nil {
		terms = make([][]obs.ChunkTerm, len(phases))
	}
	for pi, p := range phases {
		iterNS += p.ProfiledNS
		if p.Profile == nil {
			continue
		}
		for _, s := range p.Profile.Objects {
			profTier := slow
			if tk, ok := current[s.Chunk]; ok {
				profTier = tk
			}
			b := benefit[s.Chunk]
			if b == nil {
				b = make([]float64, nTiers)
				benefit[s.Chunk] = b
			}
			for t := 0; t < nTiers-1; t++ {
				est := r.mcfg.EstimateChunkAt(m, s, p.Profile, profTier, slow, machine.TierKind(t))
				b[t] += est.BenefitNS
				modelOps++
				if terms != nil && t == 0 {
					// Attribution records the fastest-tier estimate: the
					// Eq. 1 classification is tier-independent, and the
					// fastest tier's Eq. 2/3 figure is the chunk's benefit
					// ceiling.
					terms[pi] = append(terms[pi], obs.ChunkTerm{
						Chunk: s.Chunk, Sensitivity: est.Sens.String(),
						BWBps: est.BWBps, BenefitNS: est.BenefitNS,
					})
				}
			}
		}
	}

	// Every chunk is a knapsack item — including never-profiled ones,
	// whose zero benefit lets the solver demote them out of contended
	// fast tiers when the space earns more elsewhere.
	names := make([]string, 0, len(r.chunkSize))
	for c := range r.chunkSize {
		names = append(names, c)
	}
	sort.Strings(names)
	items := make([]placement.TieredItem, 0, len(names))
	for _, c := range names {
		size := r.chunkSize[c]
		cur := current[c]
		w := make([]float64, nTiers)
		for t := range w {
			if b := benefit[c]; b != nil {
				w[t] = b[t]
			}
			if machine.TierKind(t) != cur {
				// Eq. 4 on the (cur, t) tier-graph edge: adoption copies
				// overlap with the whole iteration; the exposed remainder
				// is paid once and amortized.
				cost := m.CopyTimeBetweenNS(cur, machine.TierKind(t), size) - iterNS
				if cost < 0 {
					cost = 0
				}
				w[t] -= cost / float64(r.cfg.AmortizeIters)
			}
		}
		items = append(items, placement.TieredItem{Chunk: c, Size: size, WeightNS: w})
	}
	caps := make([]int64, nTiers)
	for t := 0; t < nTiers-1; t++ {
		caps[t] = m.Tier(machine.TierKind(t)).CapacityBytes
	}
	caps[slow] = -1
	r.tierPlan = placement.SolveTiered(items, caps)

	// Modeling cost: estimates plus the table cells the solver actually
	// evaluated (the 2D DP's state space is the capacity product, not the
	// sum), charged to the critical path like the two-tier decision.
	modelNS := float64(modelOps)*200 + float64(r.tierPlan.Work)*20
	decideAt := ctx.Comm.Clock()
	ctx.Comm.Advance(int64(modelNS))
	r.overheadNS += modelNS
	if ctx.Trace != nil {
		ctx.Trace.Span(obs.Virtual, r.rank, "placement decision", "unimem", decideAt, ctx.Comm.Clock(),
			map[string]any{"solver": r.tierPlan.Solver, "model_ops": modelOps,
				"decision": r.Decisions, "tiers": nTiers})
	}
	r.adoptTrigger = decisionTrigger(r.Decisions)
	if r.expl != nil {
		r.explainTiered(phases, terms, items, benefit, current, caps, iterNS, modelNS)
	}

	// Rebaseline the variation monitor.
	r.decisionIter = r.reg.Iter()
	for _, p := range phases {
		p.DecisionNS = 0
	}

	// Adoption.
	r.oneShotTiered = make(map[int][]tieredMove)
	for _, it := range items {
		want := machine.TierKind(r.tierPlan.Assign[it.Chunk])
		cur := current[it.Chunk]
		if want == cur {
			continue
		}
		if want > cur {
			// Demotion: freeing contended fast-tier space early is always
			// safe.
			r.enqueueTieredMove(ctx, tieredMove{chunk: it.Chunk, to: want, target: -1}, r.adoptTrigger)
			continue
		}
		target := r.firstReferencing(it.Chunk)
		trigger := r.reg.TriggerPhase(it.Chunk, target)
		r.oneShotTiered[trigger] = append(r.oneShotTiered[trigger],
			tieredMove{chunk: it.Chunk, to: want, target: target})
	}
}

// decisionTrigger classifies what prompted the n-th decision: the first
// profiled iteration, or the variation monitor's drift detection.
func decisionTrigger(n int) string {
	if n <= 1 {
		return "profile"
	}
	return "drift"
}

// explainTiered records the N-tier decision's attribution: the per-phase
// term breakdown, the chunk assignments the knapsack priced out of their
// individually best tier, and the oracle-static regret baseline (the same
// knapsack re-solved with pure benefits and zero movement cost — the
// clairvoyant placement from t=0).
func (r *Runtime) explainTiered(phases []*phase.Info, terms [][]obs.ChunkTerm,
	items []placement.TieredItem, benefit map[string][]float64,
	current map[string]machine.TierKind, caps []int64, iterNS, modelNS float64) {
	nTiers := len(caps)
	slow := nTiers - 1
	rec := obs.DecisionRecord{
		Decision: r.Decisions, Iter: r.reg.Iter(), Trigger: decisionTrigger(r.Decisions),
		Solver: r.tierPlan.Solver, TotalWeightNS: r.tierPlan.TotalWeightNS, ModelNS: modelNS,
	}

	// Oracle baseline: an all-slowest iteration costs the profiled time
	// plus the benefit baked in by the tiers chunks profiled at; the
	// oracle's pure-benefit knapsack earns its total weight back off that.
	oItems := make([]placement.TieredItem, 0, len(items))
	baseAllSlow := iterNS
	for _, it := range items {
		w := make([]float64, nTiers)
		if b := benefit[it.Chunk]; b != nil {
			copy(w, b)
			baseAllSlow += b[int(current[it.Chunk])]
		}
		oItems = append(oItems, placement.TieredItem{Chunk: it.Chunk, Size: it.Size, WeightNS: w})
	}
	oracle := placement.SolveTiered(oItems, caps)
	rec.OracleIterNS = baseAllSlow - oracle.TotalWeightNS

	for pi, p := range phases {
		tb := obs.TermBreakdown{Phase: p.ID, Name: p.Name, Kind: p.Kind.String(), DurNS: p.ProfiledNS}
		for _, ct := range terms[pi] {
			ct.Chosen = r.tierPlan.Assign[ct.Chunk] < slow
			if ct.Chosen {
				tb.BenefitNS += ct.BenefitNS
			}
			tb.Chunks = append(tb.Chunks, ct)
		}
		rec.Phases = append(rec.Phases, tb)
	}

	// Rejected alternatives: the top chunks denied their individually
	// best tier (the marginal delta the capacity constraint cost them).
	var rej []obs.RejectedChoice
	for _, it := range items {
		best := 0
		for t := range it.WeightNS {
			if it.WeightNS[t] > it.WeightNS[best] {
				best = t
			}
		}
		got := r.tierPlan.Assign[it.Chunk]
		if got != best && it.WeightNS[best] > it.WeightNS[got] {
			rej = append(rej, obs.RejectedChoice{
				Chunk: it.Chunk, ChosenTier: got, BestTier: best,
				DeltaNS: it.WeightNS[best] - it.WeightNS[got],
			})
		}
	}
	sort.SliceStable(rej, func(a, b int) bool { return rej[a].DeltaNS > rej[b].DeltaNS })
	if len(rej) > maxRejectedChoices {
		rej = rej[:maxRejectedChoices]
	}
	rec.Rejected = rej
	r.expl.AddDecision(rec)
}

// maxRejectedChoices caps the N-tier rejected-alternatives list per
// decision (top-k by marginal delta).
const maxRejectedChoices = 8

// firstReferencing returns the first phase (iteration order) whose profile
// references the chunk, defaulting to 0.
func (r *Runtime) firstReferencing(chunk string) int {
	for _, p := range r.reg.Phases() {
		if p.References(chunk) {
			return p.ID
		}
	}
	return 0
}

// overlapNS is the registry window shrunk by explicit dependence
// directives.
func (r *Runtime) overlapNS(chunk string, target int) float64 {
	w := r.reg.OverlapWindowNS(chunk, target)
	if len(r.explicitDeps[chunk]) > 0 {
		// Conservative: any declared dependence halves the usable window.
		w /= 2
	}
	return w
}

func (r *Runtime) triggerPhase(chunk string, target int) int {
	return r.reg.TriggerPhase(chunk, target)
}

// references exposes the registry's profiled reference map (plus explicit
// directives) to the placement searches.
func (r *Runtime) references(chunk string, phaseID int) bool {
	phases := r.reg.Phases()
	if phaseID < 0 || phaseID >= len(phases) {
		return false
	}
	if phases[phaseID].References(chunk) {
		return true
	}
	for _, pid := range r.explicitDeps[chunk] {
		if pid == phaseID {
			return true
		}
	}
	return false
}

// SteadyState implements app.FastPather: the runtime certifies a
// quiescent fixed point — a decision is in force, profiling is off and
// no re-profile is scheduled, no adoption or dependence-tracked moves
// are outstanding, the plan carries no recurring migration schedule, the
// helper thread is idle, the variation monitor's post-decision settling
// window has elapsed, and every computation phase has a baseline. Under
// these conditions an iteration that repeats the previous one charges
// exactly the same costs, so the harness may extrapolate it.
func (r *Runtime) SteadyState() bool {
	if r.profiling || r.reprofileNext {
		return false
	}
	if r.plan == nil && r.tierPlan == nil {
		return false
	}
	if len(r.oneShot) > 0 || len(r.oneShotTiered) > 0 || len(r.pendingSeq) > 0 {
		return false
	}
	if r.plan != nil && len(r.plan.Schedule) > 0 {
		return false
	}
	if !r.mov.Idle() {
		return false
	}
	if r.reg.Iter() <= r.decisionIter+1 {
		return false
	}
	for _, p := range r.reg.Phases() {
		if p.Kind == phase.Compute && p.DecisionNS == 0 {
			return false
		}
	}
	return true
}

// FastForward implements app.FastPather: replay the bookkeeping of n
// skipped steady-state iterations. The iteration counter advances (so
// the variation monitor's settling arithmetic and the decision audit
// keep real iteration numbers), and the per-phase queue-status check
// PhaseBegin charges once a plan is enforced is accumulated with the
// same sequence of float additions the simulated path would have made.
// Decision state — plan, baselines, DecisionNS, ReprofileIters — is
// untouched: a skipped window is by construction one the monitor would
// have stayed quiet through.
func (r *Runtime) FastForward(n int) {
	r.reg.FastForward(n)
	for i := 0; i < n; i++ {
		for range r.reg.Phases() {
			r.overheadNS += mover.SyncCheckNS
		}
	}
}

// LoopEnd implements app.Manager: unimem_end — stop the helper thread.
func (r *Runtime) LoopEnd(ctx *app.RankCtx) {
	r.mov.Stop()
}

// RuntimeOverheadNS implements app.Manager.
func (r *Runtime) RuntimeOverheadNS(int) float64 { return r.overheadNS }
