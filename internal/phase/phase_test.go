package phase

import (
	"testing"

	"unimem/internal/counters"
)

// profiled installs a synthetic profile referencing the given chunks.
func profiled(p *Info, durNS float64, chunks ...string) {
	ps := &counters.PhaseSample{DurNS: durNS, TotalSamples: 1000}
	for _, c := range chunks {
		ps.Objects = append(ps.Objects, counters.ObjSample{
			Chunk: c, Object: c, SampledAccesses: 100, BusySamples: 10,
		})
	}
	p.SetProfile(ps)
}

// drive walks the registry through one iteration of the given phase names.
func drive(r *Registry, names []string, dur float64) {
	for _, n := range names {
		r.Begin(n, Compute, "")
		r.End(dur)
	}
}

func TestDiscoveryAndSealing(t *testing.T) {
	r := NewRegistry()
	names := []string{"a", "b", "c"}
	drive(r, names, 10)
	if r.Sealed() {
		t.Fatal("sealed before the first call site recurred")
	}
	if r.Len() != 3 {
		t.Fatalf("registered %d phases", r.Len())
	}
	// Second iteration: the recurrence of "a" seals the structure.
	p, newIter := r.Begin("a", Compute, "")
	if !r.Sealed() || !newIter || p.ID != 0 {
		t.Fatalf("sealing failed: sealed=%v newIter=%v id=%d", r.Sealed(), newIter, p.ID)
	}
	if r.Iter() != 1 {
		t.Fatalf("iterations completed = %d, want 1", r.Iter())
	}
	r.End(10)
}

func TestIterationCounting(t *testing.T) {
	r := NewRegistry()
	names := []string{"x", "y"}
	for i := 0; i < 5; i++ {
		drive(r, names, 5)
	}
	if r.Iter() != 5 {
		t.Fatalf("iterations = %d, want 5", r.Iter())
	}
}

func TestPositionalMatchingPanicsOnDrift(t *testing.T) {
	r := NewRegistry()
	drive(r, []string{"a", "b"}, 5)
	r.Begin("a", Compute, "")
	r.End(5)
	defer func() {
		if recover() == nil {
			t.Fatal("structure drift should panic")
		}
	}()
	r.Begin("zzz", Compute, "")
}

func TestBeginWhileOpenPanics(t *testing.T) {
	r := NewRegistry()
	r.Begin("a", Compute, "")
	defer func() {
		if recover() == nil {
			t.Fatal("nested Begin should panic")
		}
	}()
	r.Begin("b", Compute, "")
}

func TestEndWithoutBeginPanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("End without Begin should panic")
		}
	}()
	r.End(1)
}

func TestProfileReferenceSet(t *testing.T) {
	p := &Info{}
	profiled(p, 100, "u", "v[2]")
	if !p.References("u") || !p.References("v[2]") || p.References("w") {
		t.Fatal("reference set wrong")
	}
	names := p.RefNames()
	if len(names) != 2 {
		t.Fatalf("RefNames = %v", names)
	}
	if p.ProfiledNS != 100 {
		t.Fatalf("ProfiledNS = %v", p.ProfiledNS)
	}
}

// buildProfiled makes a sealed 5-phase registry with known references:
// phase 0 and 3 touch "hot"; nothing else does.
func buildProfiled(t *testing.T) *Registry {
	t.Helper()
	r := NewRegistry()
	names := []string{"p0", "p1", "p2", "p3", "p4"}
	drive(r, names, 100)
	refs := map[int][]string{0: {"hot"}, 3: {"hot"}}
	for i, p := range r.Phases() {
		profiled(p, 100, refs[i]...)
	}
	drive(r, names, 100) // seal
	return r
}

func TestOverlapWindow(t *testing.T) {
	r := buildProfiled(t)
	// Migration of "hot" for phase 3: last prior reference is phase 0, so
	// the window spans phases 1 and 2 = 200ns.
	if w := r.OverlapWindowNS("hot", 3); w != 200 {
		t.Fatalf("window = %v, want 200", w)
	}
	// For phase 0 (wrapping): last prior reference is phase 3 -> window is
	// phase 4 = 100ns.
	if w := r.OverlapWindowNS("hot", 0); w != 100 {
		t.Fatalf("wrapped window = %v, want 100", w)
	}
	// Unreferenced chunk: the whole rest of the iteration (4 phases).
	if w := r.OverlapWindowNS("cold", 2); w != 400 {
		t.Fatalf("cold window = %v, want 400", w)
	}
}

func TestTriggerPhase(t *testing.T) {
	r := buildProfiled(t)
	if tr := r.TriggerPhase("hot", 3); tr != 1 {
		t.Fatalf("trigger for phase 3 = %d, want 1 (just after phase 0's use)", tr)
	}
	if tr := r.TriggerPhase("hot", 0); tr != 4 {
		t.Fatalf("wrapped trigger = %d, want 4", tr)
	}
	if tr := r.TriggerPhase("cold", 2); tr != 3 {
		t.Fatalf("cold trigger = %d, want 3 (earliest possible)", tr)
	}
}

func TestIterDur(t *testing.T) {
	r := buildProfiled(t)
	if d := r.IterDurNS(); d != 500 {
		t.Fatalf("iteration duration = %v, want 500", d)
	}
}

func TestCommPhaseKind(t *testing.T) {
	r := NewRegistry()
	p, _ := r.Begin("allreduce", Comm, "Allreduce")
	if p.Kind != Comm || p.MPIOp != "Allreduce" {
		t.Fatalf("comm phase metadata %+v", p)
	}
	r.End(1)
	if Comm.String() != "comm" || Compute.String() != "compute" {
		t.Fatal("kind names wrong")
	}
}
