package serve_test

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"unimem"
	"unimem/internal/serve"
)

// TestRunExplainResponse asserts /run?explain=1 returns an attribution
// document whose run_id matches the response's X-Request-Id, with
// decisions, migrations and a regret figure for a Unimem run — and that
// the same request without the flag carries none.
func TestRunExplainResponse(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{Quick: true})
	req := cgRun("unimem")

	data, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/run?explain=1", "application/json", strings.NewReader(string(data)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	reqID := resp.Header.Get("X-Request-Id")
	if reqID == "" {
		t.Fatal("no X-Request-Id header")
	}
	var out serve.RunResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Explain) == 0 {
		t.Fatal("no explain document in response")
	}
	var doc unimem.ExplainDoc
	if err := json.Unmarshal(out.Explain, &doc); err != nil {
		t.Fatalf("explain does not parse: %v", err)
	}
	if doc.RunID != reqID {
		t.Errorf("explain run_id = %q, want the request ID %q", doc.RunID, reqID)
	}
	if len(doc.Decisions) == 0 {
		t.Error("explain document has no decisions")
	}
	if len(doc.Migrations) == 0 {
		t.Error("explain document has no migrations")
	}
	if doc.Regret == nil {
		t.Error("explain document has no regret record")
	}

	// Without the flag: no document.
	var plain serve.RunResponse
	if r := postJSON(t, ts.URL+"/run", req, &plain); r.StatusCode != http.StatusOK {
		t.Fatalf("plain status %d", r.StatusCode)
	}
	if len(plain.Explain) != 0 {
		t.Errorf("unexplained run carries an explain document (%d bytes)", len(plain.Explain))
	}
}

// TestDebugRuns asserts the /debug/runs ring records executed requests
// newest-first with request IDs and run metadata, and is absent (like
// /metrics) when metrics are disabled.
func TestDebugRuns(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{Quick: true, DebugRunHistory: 8})

	var first serve.RunResponse
	if r := postJSON(t, ts.URL+"/run", cgRun("xmem"), &first); r.StatusCode != http.StatusOK {
		t.Fatalf("status %d", r.StatusCode)
	}
	var second serve.RunResponse
	if r := postJSON(t, ts.URL+"/run?explain=1", cgRun("unimem"), &second); r.StatusCode != http.StatusOK {
		t.Fatalf("status %d", r.StatusCode)
	}

	resp, err := http.Get(ts.URL + "/debug/runs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/runs status %d", resp.StatusCode)
	}
	var page struct {
		Capacity int `json:"capacity"`
		Total    int64
		Runs     []struct {
			RequestID  string   `json:"request_id"`
			Endpoint   string   `json:"endpoint"`
			At         string   `json:"at"`
			DurationMS float64  `json:"duration_ms"`
			Status     int      `json:"status"`
			Cache      string   `json:"cache"`
			Workload   string   `json:"workload"`
			Strategy   string   `json:"strategy"`
			TimeNS     int64    `json:"time_ns"`
			RegretFrac *float64 `json:"regret_frac"`
		} `json:"runs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
		t.Fatal(err)
	}
	if page.Capacity != 8 {
		t.Errorf("capacity = %d, want 8", page.Capacity)
	}
	if len(page.Runs) != 2 {
		t.Fatalf("recorded %d runs, want 2", len(page.Runs))
	}
	// Newest first: the explained unimem run leads.
	newest, oldest := page.Runs[0], page.Runs[1]
	if newest.Strategy != "unimem" || oldest.Strategy != "xmem" {
		t.Errorf("order = [%s, %s], want [unimem, xmem]", newest.Strategy, oldest.Strategy)
	}
	if newest.Workload != "CG" || newest.TimeNS <= 0 || newest.Status != http.StatusOK {
		t.Errorf("newest record incomplete: %+v", newest)
	}
	if newest.RequestID == "" {
		t.Error("newest record has no request ID")
	}
	if newest.RegretFrac == nil {
		t.Error("explained run recorded no regret_frac")
	}
	if oldest.RegretFrac != nil {
		t.Error("unexplained run recorded a regret_frac")
	}
	if oldest.Cache != "miss" {
		t.Errorf("cold xmem run cache = %q, want miss", oldest.Cache)
	}
	if _, err := time.Parse(time.RFC3339Nano, newest.At); err != nil {
		t.Errorf("at %q is not RFC 3339: %v", newest.At, err)
	}

	// Disabled metrics: the route must not exist.
	_, tsOff := newTestServer(t, serve.Config{Quick: true, DisableMetrics: true})
	off, err := http.Get(tsOff.URL + "/debug/runs")
	if err != nil {
		t.Fatal(err)
	}
	off.Body.Close()
	if off.StatusCode != http.StatusNotFound {
		t.Errorf("/debug/runs with -no-metrics: status %d, want 404", off.StatusCode)
	}
}

// TestSlowRequestCounter asserts requests over the -slow-request
// threshold increment the per-endpoint counter.
func TestSlowRequestCounter(t *testing.T) {
	// A 1ns threshold makes every request slow.
	_, ts := newTestServer(t, serve.Config{Quick: true, SlowRequest: time.Nanosecond})
	var out serve.RunResponse
	if r := postJSON(t, ts.URL+"/run", cgRun("xmem"), &out); r.StatusCode != http.StatusOK {
		t.Fatalf("status %d", r.StatusCode)
	}
	exposition := scrape(t, ts.URL)
	if !strings.Contains(exposition, `unimem_serve_slow_requests_total{endpoint="/run"} 1`) {
		t.Errorf("slow-request counter missing from exposition:\n%s",
			grepLines(exposition, "slow"))
	}
}

// TestFleetRegretTelemetry asserts a /fleet sweep under the Unimem
// strategy populates the per-archetype regret gauge and the migration
// benefit histogram.
func TestFleetRegretTelemetry(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{Quick: true, Workers: 2})
	body := map[string]any{
		"platform":   map[string]any{"name": "a", "nvm_latency_factor": 4},
		"archetype":  "pattern-drift",
		"count":      1,
		"ranks":      2,
		"strategies": []string{"unimem"},
	}
	resp := postJSON(t, ts.URL+"/fleet", body, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/fleet status %d", resp.StatusCode)
	}
	exposition := scrape(t, ts.URL)
	if !strings.Contains(exposition, `unimem_fleet_regret{archetype="pattern-drift"}`) {
		t.Errorf("fleet regret gauge missing:\n%s", grepLines(exposition, "fleet"))
	}
	if !strings.Contains(exposition, `unimem_fleet_regret_frac_count{archetype="pattern-drift"} 1`) {
		t.Errorf("fleet regret histogram missing:\n%s", grepLines(exposition, "fleet"))
	}
	if !strings.Contains(exposition, `unimem_fleet_migration_benefit_ratio_count{archetype="pattern-drift"}`) {
		t.Errorf("migration benefit histogram missing:\n%s", grepLines(exposition, "fleet"))
	}
}

// TestMetricsHEAD asserts the daemon's /metrics answers HEAD with the
// GET body's Content-Length and no body.
func TestMetricsHEAD(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{Quick: true})
	get, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(get.Body)
	get.Body.Close()

	head, err := http.Head(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	head.Body.Close()
	if head.StatusCode != http.StatusOK {
		t.Fatalf("HEAD /metrics status %d", head.StatusCode)
	}
	if got := head.ContentLength; got <= 0 || got != int64(len(body)) {
		t.Errorf("HEAD Content-Length = %d, GET body = %d bytes", got, len(body))
	}
}

// grepLines filters an exposition to lines containing needle, for
// readable failure messages.
func grepLines(s, needle string) string {
	var out []string
	for _, line := range strings.Split(s, "\n") {
		if strings.Contains(line, needle) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}
