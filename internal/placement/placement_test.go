package placement

import (
	"testing"
	"testing/quick"
)

func TestKnapsackBasics(t *testing.T) {
	items := []Item{
		{Chunk: "a", Size: 10 << 20, WeightNS: 100},
		{Chunk: "b", Size: 20 << 20, WeightNS: 150},
		{Chunk: "c", Size: 30 << 20, WeightNS: 120},
	}
	chosen, w := Knapsack(items, 32<<20)
	// Best: a+b = 250 within 32 MiB (30 granules used).
	if len(chosen) != 2 || items[chosen[0]].Chunk != "a" || items[chosen[1]].Chunk != "b" {
		t.Fatalf("chosen %v", chosen)
	}
	if w != 250 {
		t.Fatalf("weight %v, want 250", w)
	}
}

func TestKnapsackSkipsNonPositiveAndOversize(t *testing.T) {
	items := []Item{
		{Chunk: "neg", Size: 1 << 20, WeightNS: -5},
		{Chunk: "zero", Size: 1 << 20, WeightNS: 0},
		{Chunk: "big", Size: 100 << 20, WeightNS: 1000},
		{Chunk: "ok", Size: 2 << 20, WeightNS: 10},
	}
	chosen, w := Knapsack(items, 10<<20)
	if len(chosen) != 1 || items[chosen[0]].Chunk != "ok" || w != 10 {
		t.Fatalf("chosen %v w %v", chosen, w)
	}
}

func TestKnapsackEmptyAndZeroCapacity(t *testing.T) {
	if c, w := Knapsack(nil, 1<<30); c != nil || w != 0 {
		t.Fatal("empty items")
	}
	if c, _ := Knapsack([]Item{{Chunk: "a", Size: 1, WeightNS: 1}}, 0); c != nil {
		t.Fatal("zero capacity")
	}
}

// TestKnapsackOptimalSmall brute-forces small instances and compares.
func TestKnapsackOptimalSmall(t *testing.T) {
	type tItem struct {
		Size   uint8
		Weight uint8
	}
	f := func(raw []tItem, capMB uint8) bool {
		if len(raw) > 12 {
			raw = raw[:12]
		}
		items := make([]Item, len(raw))
		for i, r := range raw {
			items[i] = Item{
				Chunk:    string(rune('a' + i)),
				Size:     (int64(r.Size%20) + 1) << 20,
				WeightNS: float64(r.Weight % 50),
			}
		}
		capacity := (int64(capMB%40) + 1) << 20
		_, got := Knapsack(items, capacity)
		// Brute force over all subsets.
		var best float64
		for mask := 0; mask < 1<<len(items); mask++ {
			var size int64
			var w float64
			for i := range items {
				if mask&(1<<i) != 0 && items[i].WeightNS > 0 {
					size += items[i].Size
					w += items[i].WeightNS
				}
			}
			if size <= capacity && w > best {
				best = w
			}
		}
		return got == best
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestKnapsackRespectsCapacity(t *testing.T) {
	f := func(sizes []uint8, capMB uint8) bool {
		if len(sizes) > 20 {
			sizes = sizes[:20]
		}
		items := make([]Item, len(sizes))
		for i, s := range sizes {
			items[i] = Item{Chunk: string(rune('a' + i)), Size: (int64(s%30) + 1) << 20, WeightNS: 1}
		}
		capacity := (int64(capMB%64) + 1) << 20
		chosen, _ := Knapsack(items, capacity)
		var total int64
		for _, i := range chosen {
			total += items[i].Size
		}
		return total <= capacity
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// testInput builds a 4-phase scenario: "hot" is beneficial everywhere,
// "ph0" only in phase 0, "ph2" only in phase 2; DRAM fits two of the three.
func testInput() *Input {
	mb := func(n int64) int64 { return n << 20 }
	copyBW := 5.0e9
	return &Input{
		DRAMCapacity: mb(64),
		ChunkSize:    map[string]int64{"hot": mb(30), "ph0": mb(30), "ph2": mb(30), "tiny": mb(1)},
		Phases: []PhaseData{
			// ph0/ph2 benefits (15 ms) clear the recurrence bar: a 30 MiB
			// round trip at 5 GB/s costs ~12.6 ms of helper occupancy.
			{DurNS: 30e6, Benefit: map[string]float64{"hot": 3e6, "ph0": 15e6, "tiny": 0.1e6}},
			{DurNS: 30e6, Benefit: map[string]float64{"hot": 3e6}},
			{DurNS: 30e6, Benefit: map[string]float64{"hot": 3e6, "ph2": 15e6}},
			{DurNS: 30e6, Benefit: map[string]float64{"hot": 3e6}},
		},
		Resident:   map[string]bool{},
		CopyTimeNS: func(size int64) float64 { return float64(size) / copyBW * 1e9 },
		OverlapNS:  func(chunk string, target int) float64 { return 10e6 },
		TriggerPhase: func(chunk string, target int) int {
			return (target + 3) % 4 // one phase of lead time
		},
		References: func(chunk string, ph int) bool {
			switch chunk {
			case "hot", "tiny":
				return true
			case "ph0":
				return ph == 0
			case "ph2":
				return ph == 2
			}
			return false
		},
		AmortizeIters: 10,
	}
}

func TestGlobalPicksBestStaticSet(t *testing.T) {
	plan := SearchGlobal(testInput())
	// Totals: hot 12e6, ph0 15e6, ph2 15e6; capacity 64MB fits two 30MB
	// objects plus tiny, so the best static set is {ph0, ph2}.
	if !plan.Desired[0]["ph0"] || !plan.Desired[0]["ph2"] {
		t.Fatalf("global should keep the two heaviest objects: %v", plan.Desired[0])
	}
	if len(plan.Schedule) != 0 {
		t.Fatal("global plans have no recurring schedule")
	}
	for p := 1; p < 4; p++ {
		for c := range plan.Desired[0] {
			if !plan.Desired[p][c] {
				t.Fatal("global desired sets must be identical across phases")
			}
		}
	}
}

func TestLocalSwapsPhaseExclusiveObjects(t *testing.T) {
	in := testInput()
	plan := SearchLocal(in)
	if !plan.Desired[0]["ph0"] {
		t.Errorf("local should hold ph0 during phase 0: %v", plan.Desired[0])
	}
	if !plan.Desired[2]["ph2"] {
		t.Errorf("local should hold ph2 during phase 2: %v", plan.Desired[2])
	}
	if !plan.Desired[1]["hot"] || !plan.Desired[3]["hot"] {
		t.Errorf("local should keep hot resident")
	}
}

func TestDecidePrefersBetterPrediction(t *testing.T) {
	in := testInput()
	best, all := DecideAll(in, true, true)
	if len(all) != 2 {
		t.Fatalf("expected 2 candidates, got %d", len(all))
	}
	for _, p := range all {
		if best.PredictedIterNS > p.PredictedIterNS {
			t.Fatalf("Decide picked %s (%v) over better %s (%v)",
				best.Strategy, best.PredictedIterNS, p.Strategy, p.PredictedIterNS)
		}
	}
}

func TestDecideNoneKeepsResidency(t *testing.T) {
	in := testInput()
	in.Resident = map[string]bool{"hot": true}
	plan := Decide(in, false, false)
	if plan.Strategy != "none" {
		t.Fatalf("strategy %s", plan.Strategy)
	}
	for p := range plan.Desired {
		if !plan.Desired[p]["hot"] {
			t.Fatal("none-plan must keep current residency")
		}
	}
	if len(plan.Adoption) != 0 || len(plan.Schedule) != 0 {
		t.Fatal("none-plan must not move anything")
	}
}

func TestAdoptionMovesReachDesired0(t *testing.T) {
	in := testInput()
	in.Resident = map[string]bool{"stale": true}
	in.ChunkSize["stale"] = 30 << 20
	plan := SearchGlobal(in)
	foundEvict := false
	for _, mv := range plan.Adoption {
		if mv.Chunk == "stale" && !mv.ToDRAM {
			foundEvict = true
		}
		if mv.ToDRAM && !plan.Desired[0][mv.Chunk] {
			t.Errorf("adoption inserts %s which is not desired", mv.Chunk)
		}
	}
	if !foundEvict {
		t.Error("stale resident must be evicted at adoption")
	}
}

func TestScheduleEvictionsBeforeInsertionsPerPhase(t *testing.T) {
	plan := SearchLocal(testInput())
	seenInsert := map[int]bool{}
	for _, mv := range plan.Schedule {
		if mv.ToDRAM {
			seenInsert[mv.TriggerPhase] = true
		} else if seenInsert[mv.TriggerPhase] {
			t.Fatalf("eviction after insertion at phase %d: %v", mv.TriggerPhase, plan.Schedule)
		}
	}
}

func TestScheduleTriggerPrecedesTarget(t *testing.T) {
	plan := SearchLocal(testInput())
	n := len(plan.Desired)
	for _, mv := range plan.Schedule {
		if !mv.ToDRAM {
			continue
		}
		// The chunk must be out of the desired set at the trigger phase
		// (it cannot arrive before its own departure).
		if mv.TriggerPhase != mv.TargetPhase && plan.Desired[mv.TriggerPhase][mv.Chunk] {
			t.Errorf("move %v triggered while still desired-resident", mv)
		}
		steps := ((mv.TargetPhase-mv.TriggerPhase)%n + n) % n
		if steps >= n {
			t.Errorf("move %v trigger wraps a full cycle", mv)
		}
	}
}

func TestLocalHysteresisAvoidsMarginalChurn(t *testing.T) {
	in := testInput()
	// Make ph0/ph2 benefits marginal: below round-trip copy cost (30MB at
	// 5GB/s = 6ms each way).
	in.Phases[0].Benefit["ph0"] = 2e6
	in.Phases[2].Benefit["ph2"] = 2e6
	plan := SearchLocal(in)
	for _, mv := range plan.Schedule {
		if mv.Chunk == "ph0" || mv.Chunk == "ph2" {
			t.Fatalf("marginal object scheduled for churn: %v", mv)
		}
	}
}

func TestPredictIterIncludesStalls(t *testing.T) {
	in := testInput()
	// Zero-lead triggers: every insertion is late by its copy time.
	in.TriggerPhase = func(chunk string, target int) int { return target }
	local := SearchLocal(in)
	if len(local.Schedule) > 0 {
		// Stalls must be reflected: predicted must exceed the no-move sum
		// of (base - benefits).
		base := 0.0
		for p, pd := range in.Phases {
			base += pd.DurNS
			for c, b := range pd.Benefit {
				if local.Desired[p][c] {
					base -= b
				}
			}
		}
		if local.PredictedIterNS < base {
			t.Fatalf("prediction %v below benefit-only bound %v", local.PredictedIterNS, base)
		}
	}
}

func TestMoveString(t *testing.T) {
	mv := Move{Chunk: "x", ToDRAM: true, TriggerPhase: 1, TargetPhase: 2}
	if mv.String() != "x->DRAM@p1(for p2)" {
		t.Fatalf("String() = %q", mv.String())
	}
}

func TestSinglePhaseWorkload(t *testing.T) {
	in := &Input{
		DRAMCapacity: 64 << 20,
		ChunkSize:    map[string]int64{"a": 32 << 20},
		Phases:       []PhaseData{{DurNS: 20e6, Benefit: map[string]float64{"a": 10e6}}},
		Resident:     map[string]bool{},
		CopyTimeNS:   func(size int64) float64 { return float64(size) / 5 },
		OverlapNS:    func(string, int) float64 { return 0 },
	}
	for _, plan := range []*Plan{SearchGlobal(in), SearchLocal(in)} {
		if !plan.Desired[0]["a"] {
			t.Errorf("%s: single-phase hot object not placed", plan.Strategy)
		}
		if len(plan.Schedule) != 0 {
			t.Errorf("%s: single-phase plan should have no recurring moves", plan.Strategy)
		}
	}
}
