// Package mover implements Unimem's proactive data movement mechanism
// (§3.1.2 "Calculation of data movement cost" and §3.3): a helper thread —
// a real goroutine — that runs in parallel with the application, consuming
// migration requests from a shared FIFO queue, and serving as the
// synchronization point the main thread checks at the beginning of each
// phase. The byte copies themselves are applied to the simulated heap at
// those synchronization points, in queue order, so simulated results do
// not depend on goroutine scheduling (see Mover's determinism contract).
//
// Time accounting is in virtual nanoseconds: a migration occupies the
// helper thread for the (fromTier, toTier) edge's copy time on the
// machine's tier graph, starting no earlier than both its enqueue point
// and the helper's previous completion. The portion of a migration not
// finished by the time the main thread needs it is the exposed
// (non-overlapped) cost — Eq. 4's COST after overlap.
package mover

import (
	"sync"

	"unimem/internal/machine"
	"unimem/internal/memsys"
)

// Request asks the helper thread to migrate one chunk.
type Request struct {
	Chunk *memsys.Chunk
	To    machine.TierKind
	// EnqueueNS is the main thread's virtual time at enqueue (the earliest
	// the copy may begin).
	EnqueueNS int64
	seq       uint64
}

// Seq returns the request's ticket number (the value Enqueue returned) —
// the join key observers use to match completions against metadata the
// enqueuer recorded, e.g. the explain layer's migration triggers.
func (r Request) Seq() uint64 { return r.seq }

// Completion records a finished (or failed) migration.
type Completion struct {
	Req Request
	// From is the tier the chunk occupied when the copy was applied (the
	// source edge of the tier graph; equals Req.To for no-op moves).
	From       machine.TierKind
	StartNS    int64
	EndNS      int64
	BytesMoved int64
	Err        error
}

// Stats aggregates the mover's activity for Table 4.
type Stats struct {
	Enqueued   int
	Completed  int
	Failed     int
	BytesMoved int64
	// CopyNS is the total virtual time spent copying.
	CopyNS float64
	// ExposedNS is the total virtual stall charged to the main thread at
	// sync points (the non-overlapped migration cost).
	ExposedNS float64
	// SyncChecks counts queue-status checks (each costs SyncCheckNS on the
	// main thread's critical path; part of "pure runtime cost").
	SyncChecks int
}

// OverlapFrac returns the fraction of copy time hidden by computation.
func (s Stats) OverlapFrac() float64 {
	if s.CopyNS <= 0 {
		return 1
	}
	f := 1 - s.ExposedNS/s.CopyNS
	if f < 0 {
		return 0
	}
	return f
}

// SyncCheckNS is the main-thread cost of one queue-status check.
const SyncCheckNS = 200

// Mover owns the helper thread for one rank.
//
// Determinism contract: the helper goroutine consumes the FIFO, but a
// request's effect on the simulated heap (the tier change TierOf observes)
// is applied only at the main thread's synchronization points — Drain at
// each phase boundary, Sync for dependence-required tickets, Stop at loop
// end — in FIFO order. The virtual copy timeline (freeAtNS, exposed
// stalls) depends only on enqueue times and queue order, so results are
// bit-identical regardless of how the goroutines are scheduled; this is
// what lets the experiment engine run many simulated worlds concurrently.
type Mover struct {
	heap *memsys.Heap
	reqs chan Request

	mu          sync.Mutex
	cond        *sync.Cond
	freeAtNS    int64  // helper's virtual availability
	nextSeq     uint64 // last ticket handed out by Enqueue
	recvSeq     uint64 // last ticket the helper pulled off the FIFO
	doneSeq     uint64 // last ticket applied to the heap
	pending     []Request
	completions map[uint64]Completion
	stats       Stats
	running     bool
	wg          sync.WaitGroup
	observer    func(Completion)
}

// SetObserver registers a callback invoked (under the mover's lock, at
// the deterministic apply points) for every completion — the tracing
// hook that turns migrations into timeline spans. Must be set before
// Start; nil disables. The callback must not call back into the Mover.
func (m *Mover) SetObserver(fn func(Completion)) {
	m.mu.Lock()
	m.observer = fn
	m.mu.Unlock()
}

// New returns a mover for the heap. Start must be called before Enqueue.
func New(h *memsys.Heap) *Mover {
	m := &Mover{
		heap:        h,
		reqs:        make(chan Request, 256),
		completions: make(map[uint64]Completion),
	}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// Start launches the helper thread (invoked from unimem_init in the paper).
func (m *Mover) Start() {
	m.mu.Lock()
	if m.running {
		m.mu.Unlock()
		return
	}
	m.running = true
	m.mu.Unlock()
	m.wg.Add(1)
	go m.run()
}

// Stop drains the queue, applies every outstanding move, and terminates
// the helper thread.
func (m *Mover) Stop() {
	m.mu.Lock()
	if !m.running {
		m.mu.Unlock()
		return
	}
	m.running = false
	upto := m.nextSeq
	m.mu.Unlock()
	close(m.reqs)
	m.wg.Wait()
	m.mu.Lock()
	m.applyLocked(upto)
	m.mu.Unlock()
}

// run is the helper thread's loop: pull requests off the FIFO into the
// pending queue and wake any synchronization-point waiter.
func (m *Mover) run() {
	defer m.wg.Done()
	for req := range m.reqs {
		m.mu.Lock()
		m.pending = append(m.pending, req)
		m.recvSeq = req.seq
		m.cond.Broadcast()
		m.mu.Unlock()
	}
}

// applyLocked pops pending requests with seq <= upto and applies them in
// FIFO order: perform the real copy, advance the virtual copy timeline,
// post the completion. Caller holds m.mu and must have waited for
// recvSeq >= upto.
func (m *Mover) applyLocked(upto uint64) {
	for len(m.pending) > 0 && m.pending[0].seq <= upto {
		req := m.pending[0]
		m.pending = m.pending[1:]
		from := m.heap.TierOf(req.Chunk)
		bytes, err := m.heap.MoveChunk(req.Chunk, req.To)
		start := req.EnqueueNS
		if m.freeAtNS > start {
			start = m.freeAtNS
		}
		var end int64
		if err != nil {
			end = start // failed moves occupy no copy time
			m.stats.Failed++
		} else {
			// The copy runs on the tier graph's (from, to) edge; on
			// two-tier machines this is the hierarchy-wide copy bandwidth.
			copyNS := m.heap.Mach.CopyTimeBetweenNS(from, req.To, bytes)
			end = start + int64(copyNS)
			m.stats.CopyNS += copyNS
			m.stats.Completed++
			m.stats.BytesMoved += bytes
		}
		m.freeAtNS = end
		comp := Completion{Req: req, From: from, StartNS: start, EndNS: end, BytesMoved: bytes, Err: err}
		m.completions[req.seq] = comp
		m.doneSeq = req.seq
		if m.observer != nil {
			m.observer(comp)
		}
	}
}

// Enqueue posts a migration request at the main thread's virtual time nowNS
// and returns a ticket to wait on. The put itself is lightweight (paper:
// "checking the queue status and putting data movement requests into the
// queue is lightweight").
func (m *Mover) Enqueue(c *memsys.Chunk, to machine.TierKind, nowNS int64) uint64 {
	m.mu.Lock()
	m.nextSeq++
	seq := m.nextSeq
	m.stats.Enqueued++
	m.mu.Unlock()
	m.reqs <- Request{Chunk: c, To: to, EnqueueNS: nowNS, seq: seq}
	return seq
}

// Sync blocks (in real time) until all requests up to and including seq
// have been processed, then returns the virtual stall the main thread
// suffers at virtual time nowNS: how far the last relevant completion lies
// in the virtual future. A fully overlapped migration returns 0.
//
// Pass seq 0 to just perform the per-phase queue-status check (which still
// costs SyncCheckNS on the critical path).
func (m *Mover) Sync(seq uint64, nowNS int64) (stallNS int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stats.SyncChecks++
	for m.recvSeq < seq {
		m.cond.Wait()
	}
	m.applyLocked(seq)
	var latest int64
	for s := seq; s > 0; s-- {
		c, ok := m.completions[s]
		if !ok {
			break
		}
		if c.EndNS > latest {
			latest = c.EndNS
		}
		delete(m.completions, s)
	}
	if latest > nowNS {
		stall := latest - nowNS
		m.stats.ExposedNS += float64(stall)
		return stall
	}
	return 0
}

// Drain blocks (in real time) until every request enqueued so far has been
// applied to the heap, without charging any virtual time. The runtime
// calls it at each phase boundary so that a migration's heap-state effect
// becomes visible at a deterministic virtual point (the boundary after its
// enqueue) instead of whenever the helper goroutine happens to be
// scheduled — the virtual copy timeline (freeAtNS, exposed stalls) is
// unaffected.
func (m *Mover) Drain() {
	m.mu.Lock()
	upto := m.nextSeq
	for m.recvSeq < upto {
		m.cond.Wait()
	}
	m.applyLocked(upto)
	m.mu.Unlock()
}

// Idle reports whether the helper thread has nothing in flight: every
// ticket handed out has been applied to the heap and the FIFO is empty.
// The analytic fast path requires an idle mover before fast-forwarding —
// an in-flight migration's exposed cost would otherwise be extrapolated
// into iterations that should have absorbed it once.
func (m *Mover) Idle() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.doneSeq == m.nextSeq && len(m.pending) == 0
}

// Stats returns a snapshot of the mover's accounting.
func (m *Mover) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}
