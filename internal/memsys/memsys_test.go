package memsys

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"

	"unimem/internal/machine"
)

func TestArenaAllocFree(t *testing.T) {
	a := NewArena(1000)
	off1, err := a.Alloc(100)
	if err != nil || off1 != 0 {
		t.Fatalf("first alloc: off=%d err=%v", off1, err)
	}
	off2, err := a.Alloc(200)
	if err != nil || off2 != 100 {
		t.Fatalf("second alloc: off=%d err=%v", off2, err)
	}
	if a.Used() != 300 || a.Avail() != 700 {
		t.Fatalf("used=%d avail=%d", a.Used(), a.Avail())
	}
	a.Free(off1, 100)
	if a.Used() != 200 {
		t.Fatalf("used after free = %d", a.Used())
	}
	// First-fit should reuse the hole.
	off3, err := a.Alloc(50)
	if err != nil || off3 != 0 {
		t.Fatalf("hole reuse: off=%d err=%v", off3, err)
	}
}

func TestArenaExhaustion(t *testing.T) {
	a := NewArena(100)
	if _, err := a.Alloc(101); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("oversized alloc: %v", err)
	}
	if _, err := a.Alloc(100); err != nil {
		t.Fatalf("exact-fit alloc failed: %v", err)
	}
	if _, err := a.Alloc(1); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("alloc from full arena: %v", err)
	}
}

func TestArenaFragmentationAndCoalescing(t *testing.T) {
	a := NewArena(300)
	o1, _ := a.Alloc(100)
	o2, _ := a.Alloc(100)
	o3, _ := a.Alloc(100)
	a.Free(o1, 100)
	a.Free(o3, 100)
	if a.FreeRuns() != 2 {
		t.Fatalf("free runs = %d, want 2 (fragmented)", a.FreeRuns())
	}
	// A 200-byte request cannot be satisfied despite 200 free bytes.
	if _, err := a.Alloc(200); !errors.Is(err, ErrNoSpace) {
		t.Fatal("fragmented arena should refuse contiguous 200")
	}
	a.Free(o2, 100)
	if a.FreeRuns() != 1 {
		t.Fatalf("free runs after coalescing = %d, want 1", a.FreeRuns())
	}
	if _, err := a.Alloc(300); err != nil {
		t.Fatalf("full-capacity alloc after coalesce: %v", err)
	}
}

func TestArenaDoubleFreePanics(t *testing.T) {
	a := NewArena(100)
	off, _ := a.Alloc(50)
	a.Free(off, 50)
	defer func() {
		if recover() == nil {
			t.Fatal("double free should panic")
		}
	}()
	a.Free(off, 50)
}

// TestArenaInvariant property-checks that any interleaving of allocs and
// frees preserves used+free accounting and never hands out overlapping
// extents.
func TestArenaInvariant(t *testing.T) {
	type op struct {
		Size uint16
	}
	f := func(ops []op) bool {
		a := NewArena(1 << 16)
		type ext struct{ off, size int64 }
		var live []ext
		for i, o := range ops {
			size := int64(o.Size%2048) + 1
			if i%3 == 2 && len(live) > 0 {
				// Free the oldest live extent.
				e := live[0]
				live = live[1:]
				a.Free(e.off, e.size)
				continue
			}
			off, err := a.Alloc(size)
			if errors.Is(err, ErrNoSpace) {
				continue
			}
			if err != nil {
				return false
			}
			for _, e := range live {
				if off < e.off+e.size && e.off < off+size {
					return false // overlap
				}
			}
			live = append(live, ext{off, size})
		}
		var used int64
		for _, e := range live {
			used += e.size
		}
		return used == a.Used()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestNodeServiceBudget(t *testing.T) {
	s := NewNodeService(1000)
	if _, err := s.Alloc(600); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Alloc(500); !errors.Is(err, ErrNoSpace) {
		t.Fatal("over-budget alloc should fail")
	}
	// Page-budget accounting: no fragmentation — 400 still fits.
	if _, err := s.Alloc(400); err != nil {
		t.Fatalf("budget has room: %v", err)
	}
	s.Free(0, 600)
	if s.Used() != 400 || s.Avail() != 600 {
		t.Fatalf("used=%d avail=%d", s.Used(), s.Avail())
	}
}

func TestNodeServiceConcurrentRanks(t *testing.T) {
	// Many goroutine "ranks" hammer one node service; the invariant is
	// that the budget never goes negative or over capacity.
	s := NewNodeService(1 << 20)
	var wg sync.WaitGroup
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				if _, err := s.Alloc(128); err == nil {
					s.Free(0, 128)
				}
			}
		}()
	}
	wg.Wait()
	if s.Used() != 0 {
		t.Fatalf("leaked %d bytes", s.Used())
	}
}

func newTestHeap(t *testing.T, dram int64) *Heap {
	t.Helper()
	m := machine.PlatformA().WithDRAMCapacity(dram)
	return NewHeap(m, NewNodeTiers(m), HeapOptions{})
}

func TestHeapAllocAndLookup(t *testing.T) {
	h := newTestHeap(t, 64<<20)
	o, err := h.Alloc("x", 10<<20, AllocOptions{InitialTier: machine.NVM})
	if err != nil {
		t.Fatal(err)
	}
	if h.Lookup("x") != o {
		t.Fatal("lookup failed")
	}
	if len(o.Chunks) != 1 {
		t.Fatalf("unpartitioned object has %d chunks", len(o.Chunks))
	}
	if o.Chunks[0].Tier() != machine.NVM {
		t.Fatal("initial tier wrong")
	}
	if _, err := h.Alloc("x", 1<<20, AllocOptions{}); err == nil {
		t.Fatal("duplicate name should fail")
	}
}

func TestHeapDRAMFallback(t *testing.T) {
	h := newTestHeap(t, 8<<20)
	// Requesting DRAM beyond capacity falls back to NVM.
	o, err := h.Alloc("big", 32<<20, AllocOptions{InitialTier: machine.DRAM})
	if err != nil {
		t.Fatal(err)
	}
	if o.Chunks[0].Tier() != machine.NVM {
		t.Fatal("oversized DRAM request should fall back to NVM")
	}
}

func TestHeapPartitioning(t *testing.T) {
	h := newTestHeap(t, 64<<20)
	o, err := h.Alloc("p", 100<<20, AllocOptions{
		Partitionable: true, ChunkSize: 32 << 20, InitialTier: machine.NVM,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(o.Chunks) != 4 { // 32+32+32+4
		t.Fatalf("chunk count = %d, want 4", len(o.Chunks))
	}
	var total int64
	for i, c := range o.Chunks {
		total += c.Size
		if c.Index != i {
			t.Errorf("chunk %d has index %d", i, c.Index)
		}
		if c.Name() == o.Name {
			t.Error("partitioned chunks need indexed names")
		}
	}
	if total != o.Size {
		t.Fatalf("chunk sizes sum to %d, want %d", total, o.Size)
	}
	if o.Chunks[3].Size != 4<<20 {
		t.Fatalf("tail chunk size = %d", o.Chunks[3].Size)
	}
}

func TestMoveChunkRealCopy(t *testing.T) {
	h := newTestHeap(t, 64<<20)
	o, _ := h.Alloc("m", 1<<20, AllocOptions{InitialTier: machine.NVM})
	c := o.Chunks[0]
	c.StoreF64(7, 3.25)
	oldData := c.Data()

	n, err := h.MoveChunk(c, machine.DRAM)
	if err != nil || n != 1<<20 {
		t.Fatalf("move: n=%d err=%v", n, err)
	}
	if c.Tier() != machine.DRAM {
		t.Fatal("tier not updated")
	}
	if &c.Data()[0] == &oldData[0] {
		t.Fatal("migration must rewrite the backing pointer")
	}
	if got := c.LoadF64(7); got != 3.25 {
		t.Fatalf("data lost in migration: %v", got)
	}
	// Idempotent move.
	n, err = h.MoveChunk(c, machine.DRAM)
	if n != 0 || err != nil {
		t.Fatalf("no-op move: n=%d err=%v", n, err)
	}
	st := h.StatsSnapshot()
	if st.Migrations != 1 || st.BytesMigrated != 1<<20 || st.ToDRAM != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestMoveChunkNoSpace(t *testing.T) {
	h := newTestHeap(t, 4<<20)
	o, _ := h.Alloc("m", 8<<20, AllocOptions{InitialTier: machine.NVM})
	_, err := h.MoveChunk(o.Chunks[0], machine.DRAM)
	if !errors.Is(err, ErrNoSpace) {
		t.Fatalf("want ErrNoSpace, got %v", err)
	}
	if o.Chunks[0].Tier() != machine.NVM {
		t.Fatal("failed move must leave chunk in place")
	}
	if h.StatsSnapshot().FailedNoSpace != 1 {
		t.Fatal("failure not counted")
	}
}

func TestMoveObjectAllChunks(t *testing.T) {
	h := newTestHeap(t, 64<<20)
	o, _ := h.Alloc("p", 48<<20, AllocOptions{
		Partitionable: true, ChunkSize: 16 << 20, InitialTier: machine.NVM,
	})
	n, err := h.MoveObject(o, machine.DRAM)
	if err != nil || n != 48<<20 {
		t.Fatalf("move object: n=%d err=%v", n, err)
	}
	if !o.InDRAM() {
		t.Fatal("object should be fully DRAM-resident")
	}
	if o.BytesIn(machine.NVM) != 0 {
		t.Fatal("no bytes should remain in NVM")
	}
}

func TestFreeReleasesSpace(t *testing.T) {
	h := newTestHeap(t, 16<<20)
	o, _ := h.Alloc("f", 12<<20, AllocOptions{InitialTier: machine.DRAM})
	if h.DRAMService().Used() != 12<<20 {
		t.Fatal("DRAM not reserved")
	}
	h.Free(o)
	if h.DRAMService().Used() != 0 {
		t.Fatal("Free must release DRAM")
	}
	if h.Lookup("f") != nil {
		t.Fatal("freed object still registered")
	}
	if _, err := h.Alloc("f", 1<<20, AllocOptions{}); err != nil {
		t.Fatalf("name should be reusable after Free: %v", err)
	}
}

func TestMaterializationCap(t *testing.T) {
	m := machine.PlatformA()
	h := NewHeap(m, NewNodeTiers(m), HeapOptions{MaterializeCap: 4096})
	o, _ := h.Alloc("huge", 1<<30, AllocOptions{InitialTier: machine.NVM})
	if len(o.Chunks[0].Data()) != 4096 {
		t.Fatalf("materialized %d bytes, want cap 4096", len(o.Chunks[0].Data()))
	}
	// Loads/stores wrap into the materialized prefix.
	c := o.Chunks[0]
	c.StoreF64(1<<20, 9.5)
	if c.LoadF64(1<<20) != 9.5 {
		t.Fatal("wrapped store/load failed")
	}
}

func TestChunkAt(t *testing.T) {
	h := newTestHeap(t, 64<<20)
	o1, _ := h.Alloc("a", 1<<20, AllocOptions{})
	o2, _ := h.Alloc("b", 1<<20, AllocOptions{})
	if h.ChunkAt(o1.Chunks[0].SimAddr) != o1.Chunks[0] {
		t.Fatal("ChunkAt(a) wrong")
	}
	if h.ChunkAt(o2.Chunks[0].SimAddr+100) != o2.Chunks[0] {
		t.Fatal("ChunkAt(b interior) wrong")
	}
	if h.ChunkAt(1) != nil {
		t.Fatal("ChunkAt(null page) should be nil")
	}
}

func TestResidencySnapshot(t *testing.T) {
	h := newTestHeap(t, 64<<20)
	o1, _ := h.Alloc("d", 1<<20, AllocOptions{InitialTier: machine.DRAM})
	h.Alloc("n", 1<<20, AllocOptions{InitialTier: machine.NVM})
	snap := h.ResidencySnapshot()
	if !snap["d"] || snap["n"] {
		t.Fatalf("snapshot %v", snap)
	}
	h.MoveChunk(o1.Chunks[0], machine.NVM)
	if h.ResidencySnapshot()["d"] {
		t.Fatal("snapshot stale after move")
	}
}

func TestConcurrentMoveAndRead(t *testing.T) {
	// Helper-thread-style concurrent migration against residency readers;
	// run with -race to validate the locking discipline.
	h := newTestHeap(t, 64<<20)
	o, _ := h.Alloc("c", 1<<20, AllocOptions{InitialTier: machine.NVM})
	c := o.Chunks[0]
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			h.MoveChunk(c, machine.DRAM)
			h.MoveChunk(c, machine.NVM)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			_ = h.TierOf(c)
			_ = h.ResidencySnapshot()
		}
	}()
	wg.Wait()
}

func TestMultiTierHeap(t *testing.T) {
	m := machine.PlatformHBMDDRNVM()
	h := NewHeap(m, NewNodeTiers(m), HeapOptions{})
	slow := m.SlowestIdx()
	// Default (zero-option) placement with InitialTier 0 cascades down the
	// hierarchy when the fast tiers are full.
	big, err := h.Alloc("big", m.Tier(0).CapacityBytes+m.Tier(1).CapacityBytes, AllocOptions{InitialTier: 0})
	if err != nil {
		t.Fatal(err)
	}
	if got := big.Chunks[0].Tier(); got != slow {
		t.Fatalf("oversized object landed in tier %d, want slowest %d", got, slow)
	}
	// A mid-tier allocation stays in the middle tier.
	mid, err := h.Alloc("mid", 64<<20, AllocOptions{InitialTier: 1})
	if err != nil {
		t.Fatal(err)
	}
	if mid.Chunks[0].Tier() != 1 {
		t.Fatalf("mid-tier object in tier %d", mid.Chunks[0].Tier())
	}
	// Tier-to-tier migration records per-tier arrivals and promotion counts.
	if _, err := h.MoveChunk(mid.Chunks[0], 0); err != nil {
		t.Fatal(err)
	}
	if _, err := h.MoveChunk(mid.Chunks[0], slow); err != nil {
		t.Fatal(err)
	}
	st := h.StatsSnapshot()
	if st.Migrations != 2 || st.ToDRAM != 1 || st.ToNVM != 1 {
		t.Fatalf("stats %+v", st)
	}
	if st.ToTier[0] != 1 || st.ToTier[slow] != 1 {
		t.Fatalf("per-tier arrivals %v", st.ToTier)
	}
	// Snapshots carry real tier indices.
	ts := h.TierSnapshot()
	if ts["mid"] != slow || ts["big"] != slow {
		t.Fatalf("tier snapshot %v", ts)
	}
	res := h.TierResidencyBytes()
	if res[0] != 0 || res[1] != 0 || res[slow] != big.Size+mid.Size {
		t.Fatalf("per-tier residency %v", res)
	}
}

func TestNodeTiersSharedAcrossRanks(t *testing.T) {
	// Two heaps on one node share the fast-tier allowances but keep
	// private slowest-tier arenas.
	m := machine.PlatformHBMDDRNVM()
	node := NewNodeTiers(m)
	h1 := NewHeap(m, node, HeapOptions{})
	h2 := NewHeap(m, node, HeapOptions{})
	cap0 := m.Tier(0).CapacityBytes
	if _, err := h1.Alloc("a", cap0, AllocOptions{InitialTier: 0}); err != nil {
		t.Fatal(err)
	}
	o, err := h2.Alloc("b", cap0, AllocOptions{InitialTier: 0})
	if err != nil {
		t.Fatal(err)
	}
	if o.Chunks[0].Tier() != 1 {
		t.Fatalf("rank 2 should cascade to the mid tier, got %d", o.Chunks[0].Tier())
	}
	if node.Service(0).Used() != cap0 || node.Service(1).Used() != cap0 {
		t.Fatalf("shared services wrong: %d %d", node.Service(0).Used(), node.Service(1).Used())
	}
	if h1.NVMUsed() != 0 || h2.NVMUsed() != 0 {
		t.Fatalf("private slowest arenas should be empty: %d %d", h1.NVMUsed(), h2.NVMUsed())
	}
}

func TestAllocRejectsUnknownTier(t *testing.T) {
	h := newTestHeap(t, 64<<20)
	if _, err := h.Alloc("oob", 1<<20, AllocOptions{InitialTier: 2}); err == nil {
		t.Fatal("out-of-range InitialTier must error, not return (nil, nil)")
	}
	if _, err := h.Alloc("neg", 1<<20, AllocOptions{InitialTier: -1}); err == nil {
		t.Fatal("negative InitialTier must error")
	}
}
