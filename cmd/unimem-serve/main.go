// Command unimem-serve is the library's HTTP/JSON daemon: a pool of
// Sessions (one per platform fingerprint) over a sharded, bounded,
// disk-persistent run cache, answering /run, /batch, /fleet, /stats,
// /metrics (Prometheus text exposition) and /debug/runs (the recent-run
// audit ring). POST /run?explain=1 attaches the run's decision-
// attribution document to the response.
//
//	unimem-serve -addr :8080 -cache-dir /var/lib/unimem -max-entries 4096
//	unimem-serve -addr :8080 -log-level debug -debug-addr 127.0.0.1:6060
//	unimem-serve -addr :8081 -self http://b:8081 -peers http://a:8080,http://b:8081 -warm-from-peers
//
// -log-level selects the slog threshold (debug/info/warn/error) for the
// structured request log on stderr; -debug-addr serves net/http/pprof on
// a second, private listener (keep it off public interfaces).
//
// -peers turns the daemon into one node of a cluster: run keys hash onto
// a consistent ring over the peer list, requests owned by a reachable
// peer are forwarded there, and an unreachable owner degrades to local
// execution (never an error). -self names this node's entry in the peer
// list; -warm-from-peers merges every remote peer's cache snapshot before
// serving, so a node joining an established fleet starts warm. See the
// README's "Cluster" section.
//
// On SIGINT/SIGTERM the daemon marks /readyz not-ready, drains in-flight
// requests and saves the cache snapshot (when -cache-dir is set), so the
// next start warm-serves previously-computed runs as cache hits. See the
// README's "Service" and "Observability" sections for the endpoint and
// persistence reference.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"unimem/internal/cluster"
	"unimem/internal/serve"
)

// parseLevel maps the -log-level flag to a slog.Level.
func parseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug, nil
	case "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("unknown log level %q (want debug, info, warn or error)", s)
}

// debugMux is the pprof handler set, registered explicitly so the debug
// listener serves exactly the profiling routes and nothing else.
func debugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		cacheDir   = flag.String("cache-dir", "", "cache snapshot directory (empty: no persistence)")
		maxEntries = flag.Int("max-entries", 4096, "run-cache entry budget (0: unbounded)")
		maxBytes   = flag.Int64("max-bytes", 0, "run-cache byte budget (0: unbounded)")
		workers    = flag.Int("workers", 0, "per-session worker-pool width (0: GOMAXPROCS)")
		window     = flag.Int("window", 0, "batch stream window (0: 2x workers)")
		quick      = flag.Bool("quick", false, "cap workload iteration counts (fast, less faithful)")
		seed       = flag.Uint64("seed", 0, "harness seed for jobs that carry none (0: library default)")
		drain      = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain timeout")
		logLevel   = flag.String("log-level", "info", "structured request-log threshold: debug, info, warn or error")
		debugAddr  = flag.String("debug-addr", "", "serve net/http/pprof on this private address (empty: disabled)")
		noMetrics  = flag.Bool("no-metrics", false, "disable the /metrics registry, latency histograms and the /debug/runs ring")
		slowReq    = flag.Duration("slow-request", 0, "warn-log requests slower than this (0: 30s default)")
		debugRuns  = flag.Int("debug-runs", 0, "size of the /debug/runs recent-run ring (0: 64)")

		self        = flag.String("self", "", "this node's base URL in -peers (required with -peers)")
		peers       = flag.String("peers", "", "comma-separated cluster peer base URLs including this node (empty: single-node)")
		peerTimeout = flag.Duration("peer-timeout", 2*time.Second, "per-attempt forward timeout")
		peerRetries = flag.Int("peer-retries", 1, "extra forward attempts after a failure, before falling back locally")
		peerBackoff = flag.Duration("peer-backoff", 100*time.Millisecond, "base retry backoff, doubled per attempt")
		warmPeers   = flag.Bool("warm-from-peers", false, "merge every remote peer's cache snapshot before serving")
	)
	flag.Parse()

	level, err := parseLevel(*logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "unimem-serve: %v\n", err)
		os.Exit(2)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	srv, err := serve.New(serve.Config{
		CacheDir:        *cacheDir,
		MaxEntries:      *maxEntries,
		MaxBytes:        *maxBytes,
		Workers:         *workers,
		Window:          *window,
		Quick:           *quick,
		Seed:            *seed,
		Logf:            log.Printf,
		Logger:          logger,
		DisableMetrics:  *noMetrics,
		SlowRequest:     *slowReq,
		DebugRunHistory: *debugRuns,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "unimem-serve: %v\n", err)
		os.Exit(2)
	}

	if *peers != "" {
		if *self == "" {
			fmt.Fprintln(os.Stderr, "unimem-serve: -peers requires -self (this node's base URL in the peer list)")
			os.Exit(2)
		}
		var list []string
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				list = append(list, p)
			}
		}
		cl := cluster.New(cluster.Config{
			Self:           *self,
			Peers:          list,
			ForwardTimeout: *peerTimeout,
			Retries:        *peerRetries,
			Backoff:        *peerBackoff,
		})
		found := false
		for _, p := range cl.Peers() {
			if p == cl.Self() {
				found = true
			}
		}
		if !found {
			fmt.Fprintf(os.Stderr, "unimem-serve: -self %s does not appear in -peers %s\n", *self, *peers)
			os.Exit(2)
		}
		srv.SetCluster(cl)
		log.Printf("unimem-serve: cluster of %d peer(s), self %s", len(cl.Peers()), cl.Self())
		if *warmPeers {
			added := srv.WarmStartFromPeers(context.Background())
			log.Printf("unimem-serve: warm-started %d entries from peers", added)
		}
	} else if *warmPeers {
		fmt.Fprintln(os.Stderr, "unimem-serve: -warm-from-peers requires -peers")
		os.Exit(2)
	}

	if *debugAddr != "" {
		go func() {
			log.Printf("unimem-serve: pprof on http://%s/debug/pprof/", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, debugMux()); err != nil {
				log.Printf("unimem-serve: debug listener: %v", err)
			}
		}()
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("unimem-serve: listening on %s (cache: %d entries warm)", *addr, srv.LoadedEntries())

	select {
	case <-ctx.Done():
		log.Printf("unimem-serve: shutting down")
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "unimem-serve: %v\n", err)
		os.Exit(1)
	}

	// Flip readiness before draining: load balancers stop routing here
	// while in-flight requests finish; /healthz stays 200 throughout.
	srv.SetDraining(true)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("unimem-serve: drain: %v", err)
	}
	saved, err := srv.SaveCache()
	if err != nil {
		fmt.Fprintf(os.Stderr, "unimem-serve: saving cache snapshot: %v\n", err)
		os.Exit(1)
	}
	if *cacheDir != "" {
		log.Printf("unimem-serve: saved %d cache entries to %s", saved, srv.SnapshotPath())
	}
}
