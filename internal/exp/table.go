// Package exp is the benchmark harness: one runner per table and figure of
// the paper's evaluation (§2.2 and §5), each regenerating the same rows or
// series the paper reports, normalized the same way (execution time
// relative to DRAM-only). The cmd/unimem-bench CLI and the repository's
// testing.B benchmarks both drive this package.
//
// # Parallel experiment engine
//
// The figures and tables decompose into independent (experiment x
// benchmark x machine) cells: each cell is a handful of deterministic
// app.Run executions on a private simulated world. Suite fans those cells
// across a worker pool (Suite.Workers, scheduled by forEachRow) while
// assembling rows in a fixed order, so the rendered tables are
// byte-identical at every worker count.
//
// # Run cache
//
// Many experiments re-measure the same baselines: fig9, fig10 and fig13
// all need the DRAM-only time of every benchmark on Platform A; fig13
// reuses fig9's NVM-only column; fig4's two NVM configurations share one
// DRAM-only twin. Suite.Cache memoizes every baseline app.Run (static
// placements and the X-Mem composite) under a RunKey of (workload,
// machine performance fingerprint, placement strategy, options), with
// singleflight semantics so concurrent workers never duplicate an
// in-flight run. Because the whole simulator is deterministic in its
// seed, a cached result is bit-identical to a fresh run; only Unimem
// runs stay uncached (their Config varies per cell and callers inspect
// the per-run Collector). Cached *app.Result values are shared by
// pointer and must be treated as immutable.
package exp

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is one regenerated paper artifact.
type Table struct {
	ID      string     `json:"id"`
	Title   string     `json:"title"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
	// Notes carry paper-vs-measured commentary rendered under the table.
	Notes []string `json:"notes,omitempty"`
	// TierStats carry per-tier residency/migration detail for multi-tier
	// experiments (tierscape); emitted in the JSON output only.
	TierStats []TierStat `json:"tier_stats,omitempty"`
	// FleetStats and FleetAggregates carry the scenario-fleet
	// experiment's per-scenario cells and per-archetype aggregate block
	// in machine-readable form (JSON output; the rendered table and CSV
	// carry the same data as rows).
	FleetStats      []FleetStat      `json:"fleet_stats,omitempty"`
	FleetAggregates []FleetAggregate `json:"fleet_aggregates,omitempty"`

	// csvExtraCols/csvExtras are machine-readable columns appended only by
	// WriteCSV: the rendered table (whose stdout is pinned by goldens) and
	// the JSON encoding never see them. csvExtras is aligned with Rows;
	// rows without extras emit empty cells.
	csvExtraCols []string
	csvExtras    [][]string
}

// TierStat is one tier's residency and migration record for one
// (platform, benchmark) cell of a multi-tier experiment, as measured on
// rank 0 at the end of the run.
type TierStat struct {
	Platform      string `json:"platform"`
	Benchmark     string `json:"benchmark"`
	Tier          int    `json:"tier"`
	Name          string `json:"name"`
	ResidentBytes int64  `json:"resident_bytes"`
	MovesIn       int    `json:"moves_in"`
}

// AddRow appends a row, stringifying the cells.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case int:
			row[i] = fmt.Sprintf("%d", v)
		case int64:
			row[i] = fmt.Sprintf("%d", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes an aligned ASCII rendition.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, "  "+strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// CSVExtraColumns declares columns WriteCSV appends after the printed
// ones. Attach each row's values with AddCSVExtra.
func (t *Table) CSVExtraColumns(names ...string) {
	t.csvExtraCols = names
}

// AddCSVExtra attaches CSV-only cells to the most recently added row.
func (t *Table) AddCSVExtra(cells ...string) {
	for len(t.csvExtras) < len(t.Rows)-1 {
		t.csvExtras = append(t.csvExtras, nil)
	}
	t.csvExtras = append(t.csvExtras, cells)
}

// WriteCSV emits the table as CSV (columns first), with any declared
// CSV-only extra columns appended to the header and every row.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := append(append([]string{}, t.Columns...), t.csvExtraCols...)
	if err := cw.Write(header); err != nil {
		return err
	}
	for i, r := range t.Rows {
		row := append([]string{}, r...)
		var extra []string
		if i < len(t.csvExtras) {
			extra = t.csvExtras[i]
		}
		for j := range t.csvExtraCols {
			if j < len(extra) {
				row = append(row, extra[j])
			} else {
				row = append(row, "")
			}
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
