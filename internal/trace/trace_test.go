package trace

import (
	"testing"

	"unimem/internal/cachesim"
	"unimem/internal/machine"
	"unimem/internal/memsys"
	"unimem/internal/xrand"
)

func chunkOfSize(t *testing.T, size int64) *memsys.Chunk {
	t.Helper()
	m := machine.PlatformA()
	h := memsys.NewHeap(m, memsys.NewNodeTiers(m), memsys.HeapOptions{MaterializeCap: 4096})
	o, err := h.Alloc("obj", size, memsys.AllocOptions{InitialTier: machine.NVM})
	if err != nil {
		t.Fatal(err)
	}
	return o.Chunks[0]
}

func TestGenAddressesInRange(t *testing.T) {
	c := chunkOfSize(t, 1<<20)
	rng := xrand.New(1)
	for _, p := range []machine.Pattern{machine.Stream, machine.Stencil, machine.Random, machine.PointerChase} {
		for _, a := range Gen(c, p, 5000, 0.3, rng) {
			if a.Addr < c.SimAddr || a.Addr >= c.SimAddr+c.Size {
				t.Fatalf("%v: address %d outside chunk [%d,%d)", p, a.Addr, c.SimAddr, c.SimAddr+c.Size)
			}
		}
	}
}

func TestGenLength(t *testing.T) {
	c := chunkOfSize(t, 1<<20)
	rng := xrand.New(2)
	for _, p := range []machine.Pattern{machine.Stream, machine.Stencil, machine.Random, machine.PointerChase} {
		if got := len(Gen(c, p, 1234, 0.5, rng)); got != 1234 {
			t.Fatalf("%v: generated %d accesses, want 1234", p, got)
		}
	}
	if len(Gen(c, machine.Stream, 0, 0, rng)) != 0 {
		t.Fatal("zero-length trace")
	}
}

func TestWriteFraction(t *testing.T) {
	c := chunkOfSize(t, 1<<20)
	tr := Gen(c, machine.Random, 20000, 0.25, xrand.New(3))
	writes := 0
	for _, a := range tr {
		if a.Write {
			writes++
		}
	}
	frac := float64(writes) / float64(len(tr))
	if frac < 0.2 || frac > 0.3 {
		t.Fatalf("write fraction %v, want ~0.25", frac)
	}
}

// TestStreamMissModel cross-validates the workloads' analytic traffic
// model against the cache simulator: a streaming sweep over a large object
// misses roughly once per cache line.
func TestStreamMissModel(t *testing.T) {
	c := chunkOfSize(t, 64<<20)
	llc := cachesim.New(cachesim.DefaultLLC())
	n := 1 << 20 // 8 MiB worth of 8-byte stream accesses
	misses := llc.Run(Gen(c, machine.Stream, n, 0, xrand.New(4)))
	perLine := float64(misses) / (float64(n) / 8)
	if perLine < 0.9 || perLine > 1.1 {
		t.Fatalf("stream misses/line = %v, want ~1", perLine)
	}
}

// TestPointerChaseMissModel validates that dependent chains over a large
// object miss nearly always (the latency-sensitive regime of §2.2).
func TestPointerChaseMissModel(t *testing.T) {
	c := chunkOfSize(t, 256<<20)
	llc := cachesim.New(cachesim.DefaultLLC())
	n := 200000
	misses := llc.Run(Gen(c, machine.PointerChase, n, 0, xrand.New(5)))
	ratio := float64(misses) / float64(n)
	if ratio < 0.8 {
		t.Fatalf("pointer-chase miss ratio %v, want near 1", ratio)
	}
}

// TestSmallObjectCached validates the attenuation floor: repeated random
// access to a cache-resident object stops missing after warmup.
func TestSmallObjectCached(t *testing.T) {
	c := chunkOfSize(t, 4<<20) // well under the 20 MiB LLC
	llc := cachesim.New(cachesim.DefaultLLC())
	warm := Gen(c, machine.Random, 200000, 0, xrand.New(6))
	llc.Run(warm)
	probe := Gen(c, machine.Random, 50000, 0, xrand.New(7))
	misses := llc.Run(probe)
	ratio := float64(misses) / float64(len(probe))
	if ratio > 0.1 {
		t.Fatalf("cache-resident object miss ratio %v, want near 0", ratio)
	}
}

func TestInterleave(t *testing.T) {
	a := []cachesim.Access{{Addr: 1}, {Addr: 2}}
	b := []cachesim.Access{{Addr: 10}, {Addr: 20}, {Addr: 30}}
	out := Interleave(a, b)
	if len(out) != 5 {
		t.Fatalf("interleaved length %d", len(out))
	}
	if out[0].Addr != 1 || out[1].Addr != 10 || out[2].Addr != 2 || out[3].Addr != 20 || out[4].Addr != 30 {
		t.Fatalf("round-robin order wrong: %v", out)
	}
}
