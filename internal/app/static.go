package app

import (
	"unimem/internal/counters"
	"unimem/internal/machine"
	"unimem/internal/memsys"
	"unimem/internal/phase"
)

// Static is a placement manager with a fixed policy decided at allocation
// time and no runtime activity: it models DRAM-only and NVM-only systems
// (under machines whose tiers are configured accordingly) and the paper's
// Fig. 4 experiments that pin a chosen object in DRAM.
type Static struct {
	name string
	// inDRAM decides the initial (and permanent) tier per object name.
	inDRAM func(object string) bool
}

// NewStaticFactory returns a factory of Static managers. inDRAM may be nil,
// meaning everything goes to NVM.
func NewStaticFactory(name string, inDRAM func(object string) bool) ManagerFactory {
	return func(rank int) Manager {
		return &Static{name: name, inDRAM: inDRAM}
	}
}

// Name implements Manager.
func (s *Static) Name() string { return s.name }

// Setup implements Manager: allocates every target object in its fixed tier.
func (s *Static) Setup(ctx *RankCtx) error {
	for _, os := range ctx.W.Objects {
		tier := machine.NVM
		if s.inDRAM != nil && s.inDRAM(os.Name) {
			tier = machine.DRAM
		}
		if _, err := ctx.Heap.Alloc(os.Name, os.Size, memsys.AllocOptions{
			InitialTier: tier,
			RefHint:     os.RefHint,
		}); err != nil {
			return err
		}
	}
	return nil
}

// LoopStart implements Manager (no-op).
func (s *Static) LoopStart(*RankCtx) {}

// PhaseBegin implements Manager (no-op).
func (s *Static) PhaseBegin(*RankCtx, string, phase.Kind, string) {}

// PhaseEnd implements Manager (no-op).
func (s *Static) PhaseEnd(*RankCtx, float64, []counters.ChunkTraffic) {}

// LoopEnd implements Manager (no-op).
func (s *Static) LoopEnd(*RankCtx) {}

// RuntimeOverheadNS implements Manager: a static policy costs nothing.
func (s *Static) RuntimeOverheadNS(int) float64 { return 0 }

// RecordedPhase is the exact (unsampled) traffic of one phase execution,
// as an offline whole-program instrumentation pass like X-Mem's PIN tool
// would capture it.
type RecordedPhase struct {
	Name    string
	DurNS   float64
	Traffic []counters.ChunkTraffic
}

// RecordedProfile is one rank's offline profile: the phases of the first
// iteration in order.
type RecordedProfile struct {
	Phases []RecordedPhase
}

// Recorder is a manager that places everything in NVM and records the
// first iteration's exact traffic; the X-Mem baseline builds its static
// placement from such profiles.
type Recorder struct {
	Static
	out     *RecordedProfile
	nPhases int
	seen    int
}

// NewRecorderFactory returns a factory whose managers write each rank's
// profile into profiles[rank].
func NewRecorderFactory(profiles []*RecordedProfile) ManagerFactory {
	return func(rank int) Manager {
		return &Recorder{Static: Static{name: "recorder"}, out: profiles[rank]}
	}
}

// PhaseEnd implements Manager: records first-iteration traffic verbatim.
func (r *Recorder) PhaseEnd(ctx *RankCtx, durNS float64, traffic []counters.ChunkTraffic) {
	if r.seen < len(ctx.W.Phases) {
		cp := make([]counters.ChunkTraffic, len(traffic))
		copy(cp, traffic)
		r.out.Phases = append(r.out.Phases, RecordedPhase{
			Name:    ctx.W.Phases[r.seen].Name,
			DurNS:   durNS,
			Traffic: cp,
		})
		r.seen++
	}
}
