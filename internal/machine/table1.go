package machine

// TechSpec is one row of the paper's Table 1: published performance
// characteristics of an NVM technology relative to DRAM, from the UCSD
// non-volatile memory technology database survey the paper cites.
type TechSpec struct {
	Name string
	// Read/write access times in nanoseconds (min and max of the
	// published range; equal when the survey gives a point value).
	ReadNSMin, ReadNSMax   float64
	WriteNSMin, WriteNSMax float64
	// Random read/write bandwidth in MB/s (min and max of range).
	ReadBWMin, ReadBWMax   float64
	WriteBWMin, WriteBWMax float64
}

// Table1 returns the paper's Table 1 verbatim: DRAM and the three NVM
// technology points (STT-RAM per ITRS'13, PCRAM, ReRAM).
func Table1() []TechSpec {
	return []TechSpec{
		{Name: "DRAM",
			ReadNSMin: 10, ReadNSMax: 10, WriteNSMin: 10, WriteNSMax: 10,
			ReadBWMin: 1000, ReadBWMax: 1000, WriteBWMin: 900, WriteBWMax: 900},
		{Name: "STT-RAM (ITRS'13)",
			ReadNSMin: 60, ReadNSMax: 60, WriteNSMin: 80, WriteNSMax: 80,
			ReadBWMin: 800, ReadBWMax: 800, WriteBWMin: 600, WriteBWMax: 600},
		{Name: "PCRAM",
			ReadNSMin: 20, ReadNSMax: 200, WriteNSMin: 80, WriteNSMax: 10000,
			ReadBWMin: 200, ReadBWMax: 800, WriteBWMin: 100, WriteBWMax: 800},
		{Name: "ReRAM",
			ReadNSMin: 10, ReadNSMax: 1000, WriteNSMin: 10, WriteNSMax: 10000,
			ReadBWMin: 20, ReadBWMax: 100, WriteBWMin: 1, WriteBWMax: 8},
	}
}

// TechMachine derives a Machine whose slowest tier approximates the given
// technology row, scaling the base machine's fastest-tier numbers by the
// technology/DRAM ratios from Table 1 (midpoints of ranges). It lets the
// sweep experiments include named technology points alongside the synthetic
// fraction/factor sweeps.
func TechMachine(base *Machine, t TechSpec) *Machine {
	mid := func(lo, hi float64) float64 { return (lo + hi) / 2 }
	dram := Table1()[0]
	latRatio := mid(t.ReadNSMin, t.ReadNSMax) / mid(dram.ReadNSMin, dram.ReadNSMax)
	bwRatio := mid(t.ReadBWMin, t.ReadBWMax) / mid(dram.ReadBWMin, dram.ReadBWMax)
	c := base.clone()
	c.Name = base.Name + "/" + t.Name
	fast := base.Tiers[0]
	last := len(c.Tiers) - 1
	c.Tiers[last].ReadLatNS = fast.ReadLatNS * latRatio
	wLatRatio := mid(t.WriteNSMin, t.WriteNSMax) / mid(dram.WriteNSMin, dram.WriteNSMax)
	c.Tiers[last].WriteLatNS = fast.WriteLatNS * wLatRatio
	if bwRatio > 1 {
		bwRatio = 1
	}
	c.Tiers[last].BandwidthBps = fast.BandwidthBps * bwRatio
	c.recomputeCopyBW()
	return c
}
