// Package app is the execution harness: it runs a workload's phase-
// structured iteration body on a world of simulated MPI ranks, under a
// pluggable data-placement Manager (the Unimem runtime, the X-Mem baseline,
// or the static DRAM-only / NVM-only configurations).
//
// The harness owns what the "application plus hardware" own in the paper:
// it allocates the target objects through the manager (unimem_malloc),
// executes phases by converting ground-truth access descriptors plus
// current placement into virtual time through the machine model, performs
// the MPI operations that delimit phases, and hands the manager measured
// durations and ground-truth traffic at each phase end (from which a
// manager may derive sampled counter profiles).
package app

import (
	"context"
	"fmt"

	"unimem/internal/counters"
	"unimem/internal/machine"
	"unimem/internal/memsys"
	"unimem/internal/mpisim"
	"unimem/internal/obs"
	"unimem/internal/phase"
	"unimem/internal/workloads"
)

// RankCtx bundles the per-rank execution state handed to managers.
type RankCtx struct {
	Rank int
	Mach *machine.Machine
	Heap *memsys.Heap
	Comm *mpisim.Comm
	W    *workloads.Workload
	// Trace, when non-nil, receives span events from the harness and the
	// manager (phases, placement solves, migrations) against the rank's
	// virtual clock. Nil in normal runs; never affects simulated time.
	Trace *obs.Trace
	// Explain, when non-nil, receives decision-attribution records from
	// the manager (cost-model term breakdowns, migration audit entries,
	// re-profile triggers). Nil in normal runs; never affects simulated
	// time.
	Explain *obs.Explain
}

// Manager is a data-placement policy driving one rank's heap. The harness
// calls it in this order:
//
//	Setup (allocate objects) -> LoopStart (unimem_start) ->
//	{PhaseBegin -> PhaseEnd}* per iteration -> LoopEnd (unimem_end).
//
// PhaseBegin may advance the rank's virtual clock (migration stall, queue
// checks); PhaseEnd receives the measured execution duration and the
// ground-truth traffic and may also advance the clock (profiling overhead).
type Manager interface {
	Name() string
	Setup(ctx *RankCtx) error
	LoopStart(ctx *RankCtx)
	PhaseBegin(ctx *RankCtx, name string, kind phase.Kind, mpiOp string)
	PhaseEnd(ctx *RankCtx, durNS float64, traffic []counters.ChunkTraffic)
	LoopEnd(ctx *RankCtx)
	// RuntimeOverheadNS returns the manager's accumulated "pure runtime
	// cost" (profiling, modeling, synchronization) for reporting.
	RuntimeOverheadNS(rank int) float64
}

// ManagerFactory builds one Manager per rank (managers hold per-rank state).
type ManagerFactory func(rank int) Manager

// Options configures a run.
type Options struct {
	Ranks        int
	RanksPerNode int // default 1 (the paper's experiments use 1 task/node)
	// MaterializeCap bounds real backing per chunk (0: memsys default).
	MaterializeCap int64
	// ChunkSize overrides the default partition granularity.
	ChunkSize int64
	Seed      uint64
	// Trace, when non-nil, records a per-run span timeline (setup, each
	// iteration and phase on rank 0, manager decisions, migrations) for
	// Chrome trace-event export. Tracing never changes simulated time or
	// results; it is excluded from run-cache keys.
	Trace *obs.Trace
	// Explain, when non-nil, records rank 0's decision attribution: the
	// per-phase cost-model term breakdown behind every placement decision,
	// every migration with its trigger and realized cost, and the regret
	// baseline. Like Trace it never changes simulated time or results and
	// is excluded from run-cache keys.
	Explain *obs.Explain
	// ExactSim disables the analytic fast path: every iteration is
	// simulated event by event even through provably stable windows.
	// Results are byte-identical either way (the fast path only skips
	// windows it can extrapolate exactly), so like Trace/Explain this is
	// excluded from run-cache keys; it exists for differential testing
	// and benchmarking.
	ExactSim bool
	// FastPath, when non-nil, receives the run's fast-path statistics
	// (memo hits, simulated vs analytically skipped iterations). Never
	// affects results; excluded from run-cache keys.
	FastPath *FastPathStats
}

func (o *Options) fill(w *workloads.Workload) {
	if o.Ranks == 0 {
		o.Ranks = w.Ranks
	}
	if o.RanksPerNode == 0 {
		o.RanksPerNode = 1
	}
	if o.Seed == 0 {
		o.Seed = 0x5EED
	}
}

// RankResult is one rank's outcome.
type RankResult struct {
	Rank       int
	TimeNS     int64
	CommNS     int64
	OverheadNS float64
	Migrations memsys.MigrationStats
}

// Result is a whole run's outcome.
type Result struct {
	Workload string
	Manager  string
	Ranks    []RankResult
	// TimeNS is the application execution time: the slowest rank.
	TimeNS int64
	// PhaseNS is the per-phase average duration across ranks and
	// iterations (indexed by phase position), for variation studies.
	PhaseNS []float64
}

// TotalMigrations sums migration counts across ranks.
func (r *Result) TotalMigrations() int {
	n := 0
	for _, rr := range r.Ranks {
		n += rr.Migrations.Migrations
	}
	return n
}

// TotalBytesMigrated sums migrated bytes across ranks.
func (r *Result) TotalBytesMigrated() int64 {
	var n int64
	for _, rr := range r.Ranks {
		n += rr.Migrations.BytesMigrated
	}
	return n
}

// MaxOverheadFrac returns the largest per-rank runtime overhead fraction.
func (r *Result) MaxOverheadFrac() float64 {
	var f float64
	for _, rr := range r.Ranks {
		if rr.TimeNS > 0 {
			if g := rr.OverheadNS / float64(rr.TimeNS); g > f {
				f = g
			}
		}
	}
	return f
}

// Run executes the workload on a fresh world under managers built by mf.
func Run(w *workloads.Workload, m *machine.Machine, opts Options, mf ManagerFactory) (*Result, error) {
	return RunCtx(context.Background(), w, m, opts, mf)
}

// RunCtx is Run bounded by a context: when ctx is cancelled mid-run the
// simulated world is aborted — ranks parked in collectives or receives
// wake immediately and unwind through the simulator's abort sentinel,
// running ranks stop at their next phase boundary or MPI call — each rank
// stopping its manager's helper thread first, and RunCtx returns ctx's
// error.
// Results of a cancelled run are never returned. A background context adds
// no overhead beyond one atomic load per phase.
func RunCtx(ctx context.Context, w *workloads.Workload, m *machine.Machine, opts Options, mf ManagerFactory) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	opts.fill(w)
	world := mpisim.NewWorld(opts.Ranks, m)

	// The watcher ferries a context cancellation into a world abort; runDone
	// retires it on the normal path so background runs leak nothing.
	if ctx.Done() != nil {
		runDone := make(chan struct{})
		defer close(runDone)
		go func() {
			select {
			case <-ctx.Done():
				world.Abort()
			case <-runDone:
			}
		}()
	}

	// One set of tier coordination services per node (a NodeService per
	// shared tier; the slowest tier stays per-rank private).
	nNodes := (opts.Ranks + opts.RanksPerNode - 1) / opts.RanksPerNode
	nodes := make([]*memsys.NodeTiers, nNodes)
	for i := range nodes {
		nodes[i] = memsys.NewNodeTiers(m)
	}

	res := &Result{Workload: w.Name, Manager: "", Ranks: make([]RankResult, opts.Ranks)}
	res.PhaseNS = make([]float64, len(w.Phases))
	phaseCount := make([]int64, len(w.Phases))
	errs := make([]error, opts.Ranks)

	world.Run(func(c *mpisim.Comm) {
		rank := c.Rank()
		heap := memsys.NewHeap(m, nodes[rank/opts.RanksPerNode], memsys.HeapOptions{
			MaterializeCap:   opts.MaterializeCap,
			DefaultChunkSize: opts.ChunkSize,
		})
		rc := &RankCtx{Rank: rank, Mach: m, Heap: heap, Comm: c, W: w}
		if rank == 0 {
			// Rank 0 is the traced (and explained) rank: one representative
			// timeline instead of P near-identical ones.
			rc.Trace = opts.Trace
			rc.Explain = opts.Explain
		}
		mgr := mf(rank)
		if rank == 0 {
			res.Manager = mgr.Name()
		}
		setupStart := c.Clock()
		if err := mgr.Setup(rc); err != nil {
			errs[rank] = fmt.Errorf("rank %d setup: %w", rank, err)
			return
		}
		if rc.Trace != nil {
			rc.Trace.Span(obs.Virtual, rank, "setup", "harness", setupStart, c.Clock(),
				map[string]any{"manager": mgr.Name(), "workload": w.Name})
		}
		loopEnded := false
		endLoop := func() {
			if !loopEnded {
				loopEnded = true
				mgr.LoopEnd(rc)
			}
		}
		// A cancellation can surface mid-operation: the simulator's
		// post-abort primitives panic with a sentinel rather than return
		// nil payloads. Recover it here so the manager's helper thread is
		// stopped before the rank unwinds; genuine panics keep propagating.
		defer func() {
			if p := recover(); p != nil {
				if !mpisim.IsAbort(p) {
					panic(p)
				}
				endLoop()
				errs[rank] = ctx.Err()
			}
		}()
		mgr.LoopStart(rc)
		// The fast-path tracker is nil when the run opts out or the manager
		// is not a FastPather — both rank-independent, so either every rank
		// polls at each eligible iteration start or none does.
		fp := newFastPath(rc, mgr, &opts, res.PhaseNS, phaseCount)
		for iter := 0; iter < w.Iterations; {
			if fp != nil && iter >= fastPathMinIter {
				if n := fp.trySkip(c, iter); n > 0 {
					iter += n
					continue
				}
			}
			iterStart := c.Clock()
			if fp != nil {
				fp.beginIter(c)
			}
			for pi := range w.Phases {
				// Ranks may notice the abort at different phases (the
				// phase-boundary check here) or mid-operation (the
				// sentinel recovered above); either way LoopEnd runs so
				// the manager's helper thread terminates before we unwind.
				if world.Aborted() {
					errs[rank] = ctx.Err()
					endLoop()
					return
				}
				ph := &w.Phases[pi]
				beginAt := c.Clock()
				mgr.PhaseBegin(rc, ph.Name, ph.Kind, ph.Comm.String())

				start := c.Clock()
				refs := ph.Refs(iter)
				if f := ph.RankScale(rank, opts.Ranks); f != 1 {
					refs = scaleRefs(refs, f)
				}
				traffic, serviceNS := ExpandTraffic(rc, refs)
				c.Advance(int64(serviceNS))
				execComm(c, ph, iter)
				c.Advance(int64(m.ComputeTimeNS(ph.Flops * ph.RankScale(rank, opts.Ranks))))
				dur := float64(c.Clock() - start)

				if rank == 0 {
					res.PhaseNS[pi] += dur
					phaseCount[pi]++
				}
				mgr.PhaseEnd(rc, dur, traffic)
				if fp != nil {
					fp.observePhase(pi, ph, iter, dur, traffic)
				}
				if rc.Trace != nil {
					// The span covers PhaseBegin through PhaseEnd, so
					// manager-charged stalls and profiling overhead show
					// up inside the phase they were charged to.
					rc.Trace.Span(obs.Virtual, rank, ph.Name, "phase", beginAt, c.Clock(),
						map[string]any{"iter": iter, "kind": ph.Kind.String(), "comm": ph.Comm.String()})
				}
			}
			if fp != nil {
				fp.endIter(c)
			}
			if rc.Trace != nil {
				rc.Trace.Span(obs.Virtual, rank, fmt.Sprintf("iteration %d", iter), "iteration",
					iterStart, c.Clock(), nil)
			}
			iter++
		}
		endLoop()
		if fp != nil {
			fp.flush(opts.FastPath)
		}
		res.Ranks[rank] = RankResult{
			Rank:       rank,
			TimeNS:     c.Clock(),
			CommNS:     c.CommNS,
			OverheadNS: mgr.RuntimeOverheadNS(rank),
			Migrations: heap.StatsSnapshot(),
		}
	})
	if world.Aborted() {
		return nil, ctx.Err()
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	for _, rr := range res.Ranks {
		if rr.TimeNS > res.TimeNS {
			res.TimeNS = rr.TimeNS
		}
	}
	for pi := range res.PhaseNS {
		if phaseCount[pi] > 0 {
			res.PhaseNS[pi] /= float64(phaseCount[pi])
		}
	}
	return res, nil
}

// scaleRefs returns a copy of refs with access counts scaled by f (floored
// at one access, like the workload builders do), for rank-imbalanced phases.
func scaleRefs(refs []phase.Ref, f float64) []phase.Ref {
	out := make([]phase.Ref, len(refs))
	for i, r := range refs {
		r.Accesses = int64(float64(r.Accesses) * f)
		if r.Accesses < 1 {
			r.Accesses = 1
		}
		out[i] = r
	}
	return out
}

// execComm performs the phase's MPI operation on the rank's communicator,
// at the iteration's scheduled communication volume.
func execComm(c *mpisim.Comm, ph *workloads.Phase, iter int) {
	bytes := ph.CommBytesAt(iter)
	switch ph.Comm {
	case workloads.CommNone:
	case workloads.CommAllreduce:
		c.Allreduce(bytes)
	case workloads.CommHalo:
		p := c.Size()
		right := (c.Rank() + 1) % p
		left := (c.Rank() - 1 + p) % p
		c.SendRecv(right, left, 7001, bytes, nil)
		c.SendRecv(left, right, 7002, bytes, nil)
	case workloads.CommAlltoall:
		c.Alltoall(bytes)
	case workloads.CommBcast:
		c.Bcast(bytes)
	case workloads.CommBarrier:
		c.Barrier()
	case workloads.CommWaitHalo:
		// Model the completion wait of a previously posted non-blocking
		// exchange as a synchronizing halo of the same size.
		p := c.Size()
		right := (c.Rank() + 1) % p
		left := (c.Rank() - 1 + p) % p
		reqOut := c.Isend(right, 7003, bytes, nil)
		reqIn := c.Irecv(left, 7003)
		reqOut.Wait()
		reqIn.Wait()
	}
}

// ExpandTraffic converts a phase's per-object access descriptors into
// per-chunk ground-truth traffic under the heap's current placement, and
// returns the total memory service time. Accesses distribute across an
// object's chunks proportionally to chunk size (uniform within the object,
// which is the paper's assumption when it partitions 1-D arrays with
// regular references).
func ExpandTraffic(ctx *RankCtx, refs []phase.Ref) ([]counters.ChunkTraffic, float64) {
	var out []counters.ChunkTraffic
	var totalNS float64
	for _, r := range refs {
		obj := ctx.Heap.Lookup(r.Object)
		if obj == nil {
			panic(fmt.Sprintf("app: phase references unknown object %q", r.Object))
		}
		for _, ch := range obj.Chunks {
			acc := r.Accesses
			if len(obj.Chunks) > 1 {
				acc = int64(float64(r.Accesses) * float64(ch.Size) / float64(obj.Size))
			}
			if acc <= 0 {
				continue
			}
			tier := ctx.Heap.TierOf(ch)
			svc := ctx.Mach.MemTimeNS(tier, acc, r.Pattern, r.ReadFrac)
			totalNS += svc
			out = append(out, counters.ChunkTraffic{
				Chunk:      ch.Name(),
				Object:     obj.Name,
				ChunkIndex: ch.Index,
				Accesses:   acc,
				ServiceNS:  svc,
				ReadFrac:   r.ReadFrac,
				Pattern:    r.Pattern,
			})
		}
	}
	return out, totalNS
}
