package lru

import (
	"reflect"
	"testing"
)

func TestTableEvictsLeastRecentlyUsed(t *testing.T) {
	tb := New[int, string](3)
	tb.Put(1, "a")
	tb.Put(2, "b")
	tb.Put(3, "c")
	if _, ok := tb.Get(1); !ok { // 1 is now MRU
		t.Fatal("entry 1 missing")
	}
	tb.Put(4, "d") // evicts 2 (LRU), not 1
	if _, ok := tb.Get(2); ok {
		t.Error("least-recently-used entry 2 survived eviction")
	}
	if _, ok := tb.Get(1); !ok {
		t.Error("recently-touched entry 1 was evicted")
	}
	if tb.Len() != 3 {
		t.Errorf("len = %d, want 3", tb.Len())
	}
}

func TestTablePutRefreshesAndReplaces(t *testing.T) {
	tb := New[string, int](2)
	tb.Put("x", 1)
	tb.Put("y", 2)
	tb.Put("x", 3) // refresh, not insert
	if tb.Len() != 2 {
		t.Fatalf("len = %d, want 2", tb.Len())
	}
	if v, _ := tb.Get("x"); v != 3 {
		t.Errorf("x = %d, want the replaced 3", v)
	}
	tb.Put("z", 4) // evicts y (x was refreshed then read)
	if _, ok := tb.Get("y"); ok {
		t.Error("y survived; Put did not refresh x's recency")
	}
}

func TestTableValuesMRUFirst(t *testing.T) {
	tb := New[int, int](4)
	for i := 1; i <= 3; i++ {
		tb.Put(i, i*10)
	}
	tb.Get(1)
	if got, want := tb.Values(), []int{10, 30, 20}; !reflect.DeepEqual(got, want) {
		t.Errorf("Values() = %v, want %v (MRU first)", got, want)
	}
}

func TestTableMissReturnsZero(t *testing.T) {
	tb := New[string, *int](1)
	if v, ok := tb.Get("nope"); ok || v != nil {
		t.Errorf("miss returned %v, %v", v, ok)
	}
}
