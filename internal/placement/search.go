package placement

import (
	"fmt"
	"sort"
)

// Strategy names the search that produced a plan.
type Strategy string

const (
	// Local is the phase-local search: an optimal knapsack per phase,
	// allowing data movement between phases.
	Local Strategy = "phase-local"
	// Global is the cross-phase global search: all phases treated as one
	// combined phase, a single placement, no intra-iteration movement.
	Global Strategy = "cross-phase-global"
)

// PhaseData is the model's view of one phase at decision time.
type PhaseData struct {
	// DurNS is the duration measured during the profiling iteration.
	DurNS float64
	// Benefit maps chunk name -> predicted per-execution gain (ns) of DRAM
	// residency (Eq. 2/3 output). Chunks absent from the map were not
	// observed accessing main memory in this phase.
	Benefit map[string]float64
}

// Input packages everything the searches need, keeping the package pure and
// independently testable.
type Input struct {
	DRAMCapacity int64
	// ChunkSize maps every candidate chunk to its size in bytes.
	ChunkSize map[string]int64
	Phases    []PhaseData
	// Resident is DRAM residency at decision time (i.e. during profiling).
	Resident map[string]bool
	// CopyTimeNS returns the raw migration time for a size.
	CopyTimeNS func(size int64) float64
	// OverlapNS returns the available computation-overlap window for
	// migrating chunk in time for phase target (Fig. 5).
	OverlapNS func(chunk string, target int) float64
	// TriggerPhase returns the phase index at which such a migration may
	// be enqueued.
	TriggerPhase func(chunk string, target int) int
	// References reports whether the profiled phase references the chunk
	// (the registry's dependence information); may be nil, in which case
	// evictions stay at their demand points and insertions do not slide
	// past full phases.
	References func(chunk string, phase int) bool
	// AmortizeIters spreads one-time adoption cost when scoring the global
	// strategy (default 10).
	AmortizeIters int
	// NaivePredictor scores plans with per-move Eq. 4 costs only (no
	// helper-thread timeline simulation) — an ablation knob showing why
	// FIFO queueing must be modeled.
	NaivePredictor bool
	// NoHysteresis disables the recurrence round-trip charge in the local
	// search's steady-state pass — an ablation knob showing why marginal
	// candidates must not churn.
	NoHysteresis bool
}

// Move is one entry of the proactive migration schedule.
type Move struct {
	Chunk  string
	ToDRAM bool
	// TriggerPhase is the phase at whose start the move is enqueued.
	TriggerPhase int
	// TargetPhase is the phase that requires the move completed (for
	// ToDRAM moves; evictions use the phase needing the space).
	TargetPhase int
}

// String renders a move for logs.
func (m Move) String() string {
	dir := "->DRAM"
	if !m.ToDRAM {
		dir = "->NVM"
	}
	return fmt.Sprintf("%s%s@p%d(for p%d)", m.Chunk, dir, m.TriggerPhase, m.TargetPhase)
}

// Plan is the outcome of one search strategy.
type Plan struct {
	Strategy Strategy
	// Desired is the DRAM-resident set for each phase.
	Desired []map[string]bool
	// Adoption is the one-time move list bringing the decision-time state
	// to Desired[0].
	Adoption []Move
	// Schedule is the recurring per-iteration move list (empty when the
	// desired sets are identical across phases).
	Schedule []Move
	// PredictedIterNS is the model-predicted steady-state iteration time.
	PredictedIterNS float64
}

// MovesPerIter returns the number of recurring migrations per iteration of
// the steady-state schedule.
func (p *Plan) MovesPerIter() int { return len(p.Schedule) }

// baseNS returns the phase durations normalized to an all-NVM placement:
// the profiled duration plus the benefit of every chunk that was already
// DRAM-resident while profiling (its gain is baked into the measurement).
func (in *Input) baseNS() []float64 {
	base := make([]float64, len(in.Phases))
	for p, pd := range in.Phases {
		base[p] = pd.DurNS
		for c, b := range pd.Benefit {
			if in.Resident[c] {
				base[p] += b
			}
		}
	}
	return base
}

// sortedChunks returns map keys in deterministic order.
func sortedChunks[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func setBytes(in *Input, set map[string]bool) int64 {
	var n int64
	for c := range set {
		n += in.ChunkSize[c]
	}
	return n
}

func copySet(s map[string]bool) map[string]bool {
	out := make(map[string]bool, len(s))
	for k, v := range s {
		if v {
			out[k] = true
		}
	}
	return out
}

// SearchLocal runs the phase-local search: phases are decided one by one
// (§3.1.3), each with its own knapsack whose weights fold in movement cost
// (Eq. 4) and the extra cost of evicting residents when DRAM is short.
//
// The sequential pass runs twice: the placement repeats every iteration,
// so costs must be priced against the cyclic steady state (what is
// resident when the phase comes around again), not against the one-off
// residency at decision time — otherwise an object that the cycle evicts
// every iteration looks like a free resident at the phases that use it,
// and the search oscillates large objects for marginal gain.
func SearchLocal(in *Input) *Plan {
	return SearchLocalFrom(in, in.Resident)
}

// SearchLocalFrom is SearchLocal with an explicit warm-start residency.
// Decide seeds it with the global plan's chosen set, making the local
// search a refinement of the best static placement rather than of the
// arbitrary adoption-time state (the sequential pass is greedy, so its
// starting point matters).
func SearchLocalFrom(in *Input, seed map[string]bool) *Plan {
	// Pass 1 prices one-time adoption only (no recurrence charge) and
	// reveals which chunks would be cycle-stable (desired at every phase)
	// versus transient (moved within the cycle). Pass 2, warm-started from
	// pass 1's end state, charges every transient candidate the recurring
	// round-trip copy its residency implies, so only swaps that genuinely
	// out-earn the helper thread's occupancy survive.
	resident := copySet(seed)
	desired := searchLocalPass(in, resident, nil)
	stable := map[string]bool{}
	if n := len(desired); n > 0 {
		for c := range desired[0] {
			inAll := true
			for p := 1; p < n; p++ {
				if !desired[p][c] {
					inAll = false
					break
				}
			}
			if inAll {
				stable[c] = true
			}
		}
		resident = desired[n-1]
	}
	if in.NoHysteresis {
		for c := range in.ChunkSize {
			stable[c] = true // every candidate priced as cycle-stable
		}
	}
	desired = searchLocalPass(in, resident, stable)
	plan := &Plan{Strategy: Local, Desired: desired}
	plan.Adoption, plan.Schedule = buildSchedule(in, desired)
	plan.PredictedIterNS = predictIter(in, plan)
	return plan
}

// searchLocalPass runs one sequential per-phase knapsack pass. stable, when
// non-nil, enables the steady-state recurrence charge for chunks outside it.
func searchLocalPass(in *Input, startResident map[string]bool, stable map[string]bool) []map[string]bool {
	resident := copySet(startResident)
	desired := make([]map[string]bool, len(in.Phases))
	for p, pd := range in.Phases {
		residentBytes := setBytes(in, resident)
		var items []Item
		for _, c := range sortedChunks(pd.Benefit) {
			b := pd.Benefit[c]
			size := in.ChunkSize[c]
			w := b
			if stable != nil && !stable[c] {
				// Transient in the cyclic steady state: every iteration
				// re-inserts and re-evicts it; charge the round trip so
				// marginal candidates don't churn (hysteresis against
				// oscillation and helper-thread congestion).
				w -= in.CopyTimeNS(size)
			}
			if !resident[c] {
				w -= MoveCost(in, size, in.OverlapNS(c, p))
				// extraCOST: evicting enough bytes to make room.
				if deficit := size - (in.DRAMCapacity - residentBytes); deficit > 0 {
					w -= in.CopyTimeNS(deficit)
				}
			}
			items = append(items, Item{Chunk: c, Size: size, WeightNS: w})
		}
		chosen, _ := Knapsack(items, in.DRAMCapacity)
		next := make(map[string]bool, len(chosen))
		var nextBytes int64
		for _, i := range chosen {
			next[items[i].Chunk] = true
			nextBytes += items[i].Size
		}
		// Prior residents stay if they still fit (eviction only on space
		// demand, matching the runtime's lazy eviction).
		for _, c := range sortedChunks(resident) {
			if next[c] {
				continue
			}
			if sz := in.ChunkSize[c]; nextBytes+sz <= in.DRAMCapacity {
				next[c] = true
				nextBytes += sz
			}
		}
		desired[p] = next
		resident = next
	}
	return desired
}

// SearchGlobal runs the cross-phase global search: all phases combine into
// one, per-chunk weight is the benefit summed over phases minus the
// amortized one-time adoption cost, and a single knapsack fixes one
// placement for the whole iteration.
func SearchGlobal(in *Input) *Plan {
	amort := in.AmortizeIters
	if amort <= 0 {
		amort = 10
	}
	total := make(map[string]float64)
	for _, pd := range in.Phases {
		for c, b := range pd.Benefit {
			total[c] += b
		}
	}
	var items []Item
	for _, c := range sortedChunks(total) {
		size := in.ChunkSize[c]
		w := total[c]
		if !in.Resident[c] {
			// Adoption migrations overlap with the whole iteration; any
			// exposed remainder is paid once and amortized.
			w -= MoveCost(in, size, iterSpan(in)) / float64(amort)
		}
		items = append(items, Item{Chunk: c, Size: size, WeightNS: w})
	}
	chosen, _ := Knapsack(items, in.DRAMCapacity)
	set := make(map[string]bool, len(chosen))
	for _, i := range chosen {
		set[items[i].Chunk] = true
	}
	desired := make([]map[string]bool, len(in.Phases))
	for p := range desired {
		desired[p] = set
	}
	plan := &Plan{Strategy: Global, Desired: desired}
	plan.Adoption, plan.Schedule = buildSchedule(in, desired)
	plan.PredictedIterNS = predictIter(in, plan)
	return plan
}

// Decide runs the enabled strategies and returns the plan with the best
// predicted iteration time (§3.1.3: "choose the best data placement of the
// two searches").
func Decide(in *Input, enableLocal, enableGlobal bool) *Plan {
	best, _ := DecideAll(in, enableLocal, enableGlobal)
	return best
}

// DecideAll is Decide returning every candidate plan alongside the winner,
// for tooling and tests.
func DecideAll(in *Input, enableLocal, enableGlobal bool) (*Plan, []*Plan) {
	var best *Plan
	var all []*Plan
	if enableGlobal {
		best = SearchGlobal(in)
		all = append(all, best)
	}
	if enableLocal {
		seed := in.Resident
		if best != nil {
			seed = best.Desired[0]
		}
		lp := SearchLocalFrom(in, seed)
		all = append(all, lp)
		if best == nil || lp.PredictedIterNS < best.PredictedIterNS {
			best = lp
		}
	}
	if best == nil {
		// No strategy enabled: keep everything where it is.
		desired := make([]map[string]bool, len(in.Phases))
		for p := range desired {
			desired[p] = copySet(in.Resident)
		}
		best = &Plan{Strategy: "none", Desired: desired}
		best.PredictedIterNS = predictIter(in, best)
		all = append(all, best)
	}
	return best, all
}

// OracleStaticNS prices the clairvoyant best static placement: one DRAM
// set chosen with full knowledge of the profiled benefits and zero
// adoption cost (the oracle placed the data before the run began), held
// for the whole iteration. It returns the model-predicted steady-state
// iteration time of that placement — the per-iteration baseline the
// explain layer's regret figure compares realized execution against. The
// computation is one extra knapsack over the already-memoized benefit
// totals, so it is cheap enough to run at every decision.
func OracleStaticNS(in *Input) float64 {
	total := make(map[string]float64)
	for _, pd := range in.Phases {
		for c, b := range pd.Benefit {
			total[c] += b
		}
	}
	var items []Item
	for _, c := range sortedChunks(total) {
		items = append(items, Item{Chunk: c, Size: in.ChunkSize[c], WeightNS: total[c]})
	}
	_, gain := Knapsack(items, in.DRAMCapacity)
	var base float64
	for _, b := range in.baseNS() {
		base += b
	}
	return base - gain
}

// MoveCost applies Eq. 4 through the Input's callbacks.
func MoveCost(in *Input, size int64, overlapNS float64) float64 {
	c := in.CopyTimeNS(size) - overlapNS
	if c < 0 {
		return 0
	}
	return c
}

func iterSpan(in *Input) float64 {
	var s float64
	for _, pd := range in.Phases {
		s += pd.DurNS
	}
	return s
}

// buildSchedule derives the one-time adoption moves (decision-time state to
// Desired[0]) and the recurring per-iteration schedule (cyclic diffs of the
// desired sets, with DRAM-bound moves triggered as early as the dependence
// analysis allows).
func buildSchedule(in *Input, desired []map[string]bool) (adoption, schedule []Move) {
	n := len(desired)
	if n == 0 {
		return nil, nil
	}
	// Adoption: evictions first so space exists for insertions.
	for _, c := range sortedChunks(in.Resident) {
		if !desired[0][c] {
			adoption = append(adoption, Move{Chunk: c, ToDRAM: false, TriggerPhase: 0, TargetPhase: 0})
		}
	}
	for _, c := range sortedChunks(desired[0]) {
		if !in.Resident[c] {
			adoption = append(adoption, Move{Chunk: c, ToDRAM: true, TriggerPhase: 0, TargetPhase: 0})
		}
	}
	mod := func(x int) int { return ((x % n) + n) % n }

	// Collect per-chunk transition points: insertion phases (enters the
	// desired set) and eviction phases (leaves it).
	allChunks := map[string]bool{}
	for _, d := range desired {
		for c := range d {
			allChunks[c] = true
		}
	}
	type moveKey struct {
		chunk string
		phase int
	}
	var evictions, insertions []moveKey
	for _, c := range sortedChunks(allChunks) {
		for p := 0; p < n; p++ {
			prev := desired[mod(p-1)]
			if desired[p][c] && !prev[c] {
				insertions = append(insertions, moveKey{c, p})
			}
			if !desired[p][c] && prev[c] {
				evictions = append(evictions, moveKey{c, p})
			}
		}
	}

	// Proactive evictions: a chunk leaving the desired set at phase q can
	// vacate DRAM right after its last profiled reference before q — the
	// mirror image of Fig. 5's proactive insertion, and what lets the next
	// tenant's copy overlap (the double-buffering of the paper's Fig. 6
	// walkthrough). Without reference information, evict at the demand
	// point.
	evictTrigger := make(map[moveKey]int, len(evictions))
	for _, ev := range evictions {
		trig := ev.phase
		if in.References != nil {
			for j := 1; j < n; j++ {
				ph := mod(ev.phase - j)
				if desired[ph][ev.chunk] && in.References(ev.chunk, ph) {
					trig = mod(ph + 1)
					break
				}
			}
		}
		evictTrigger[ev] = trig
		schedule = append(schedule, Move{Chunk: ev.chunk, ToDRAM: false, TriggerPhase: trig, TargetPhase: ev.phase})
	}

	// Occupancy: the phases each chunk holds DRAM, from its (unslid)
	// insertion to its eviction trigger. Used to bound how far insertions
	// may slide back.
	occ := make([]int64, n)
	for _, c := range sortedChunks(allChunks) {
		for p := 0; p < n; p++ {
			if !desired[p][c] {
				continue
			}
			occ[p] += in.ChunkSize[c]
		}
	}
	// Extend occupancy from eviction demand back to eviction trigger is a
	// shrink (early vacancy): remove the occupancy of phases between the
	// eviction trigger and the demand point.
	for _, ev := range evictions {
		trig := evictTrigger[ev]
		if trig == ev.phase {
			continue
		}
		for j := trig; j != ev.phase; j = mod(j + 1) {
			if desired[j][ev.chunk] {
				occ[j] -= in.ChunkSize[ev.chunk]
			}
		}
	}

	// Insertions: slide each trigger as early as the dependence analysis
	// (Fig. 5), the chunk's own eviction, and DRAM occupancy allow.
	for _, ins := range insertions {
		c, p := ins.chunk, ins.phase
		stepsDep := n - 1
		if in.TriggerPhase != nil {
			stepsDep = mod(p - in.TriggerPhase(c, p))
		}
		size := in.ChunkSize[c]
		steps := 0
		for j := 1; j <= stepsDep; j++ {
			ph := mod(p - j)
			if desired[ph][c] || occ[ph]+size > in.DRAMCapacity {
				break
			}
			steps = j
		}
		trigger := mod(p - steps)
		// The slid-back copy occupies DRAM from trigger to target.
		for j := trigger; j != p; j = mod(j + 1) {
			occ[j] += size
		}
		schedule = append(schedule, Move{Chunk: c, ToDRAM: true, TriggerPhase: trigger, TargetPhase: p})
	}
	// Within a trigger phase, evictions must reach the helper queue before
	// insertions so the vacated space is available.
	sort.SliceStable(schedule, func(a, b int) bool {
		if schedule[a].TriggerPhase != schedule[b].TriggerPhase {
			return schedule[a].TriggerPhase < schedule[b].TriggerPhase
		}
		return !schedule[a].ToDRAM && schedule[b].ToDRAM
	})
	return adoption, schedule
}

// predictIter estimates the steady-state iteration time under a plan: the
// all-NVM base durations minus the benefit of DRAM-resident referenced
// chunks, plus the exposed cost of the recurring migration schedule.
//
// The exposed cost comes from a small timeline simulation of one steady-
// state cycle: the single helper thread serializes all copies in FIFO
// order, each move may not start before its trigger phase begins, and a
// DRAM-bound move not finished when its target phase starts stalls the
// application. Pricing each move's overlap window independently (the naive
// Eq. 4 reading) misses FIFO queueing and lets the local search schedule
// physically impossible amounts of overlapped copying.
func predictIter(in *Input, plan *Plan) float64 {
	base := in.baseNS()
	var t float64
	for p, pd := range in.Phases {
		t += base[p]
		for c, b := range pd.Benefit {
			if plan.Desired[p][c] {
				t -= b
			}
		}
	}
	n := len(in.Phases)
	if n == 0 || len(plan.Schedule) == 0 {
		return t
	}
	if in.NaivePredictor {
		// Ablation: price each move independently through Eq. 4, ignoring
		// helper-thread serialization.
		for _, mv := range plan.Schedule {
			if mv.ToDRAM {
				t += MoveCost(in, in.ChunkSize[mv.Chunk], in.OverlapNS(mv.Chunk, mv.TargetPhase))
			}
		}
		return t
	}
	// Phase start offsets within one cycle.
	start := make([]float64, n+1)
	for p := 0; p < n; p++ {
		start[p+1] = start[p] + base[p]
	}
	span := start[n]
	// Moves in trigger order, preserving schedule order within a phase
	// (evictions were emitted before insertions).
	moves := make([]Move, len(plan.Schedule))
	copy(moves, plan.Schedule)
	sort.SliceStable(moves, func(a, b int) bool {
		return moves[a].TriggerPhase < moves[b].TriggerPhase
	})
	var helperFree, stalls float64
	for _, mv := range moves {
		s := start[mv.TriggerPhase]
		if helperFree > s {
			s = helperFree
		}
		end := s + in.CopyTimeNS(in.ChunkSize[mv.Chunk])
		helperFree = end
		if mv.ToDRAM {
			deadline := start[mv.TargetPhase]
			if mv.TargetPhase < mv.TriggerPhase {
				deadline += span // genuinely wraps: arrives for the next cycle
			}
			// trigger == target means the move starts at the phase that
			// needs it: it is late by its own copy time every cycle.
			if end > deadline {
				stalls += end - deadline
			}
		}
	}
	return t + stalls
}
