package exp

import (
	"context"

	"bytes"
	"errors"
	"sync/atomic"
	"testing"
)

func TestForEachRowOrderAndCoverage(t *testing.T) {
	for _, workers := range []int{1, 4, 16} {
		out := make([]int, 10)
		err := forEachRow(context.Background(), workers, len(out), func(i int) error {
			out[i] = i * i
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: slot %d = %d, want %d", workers, i, v, i*i)
			}
		}
	}
	if err := forEachRow(context.Background(), 4, 0, func(int) error { t.Fatal("called"); return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestForEachRowFirstErrorByIndex(t *testing.T) {
	errA, errB := errors.New("a"), errors.New("b")
	for _, workers := range []int{1, 4} {
		err := forEachRow(context.Background(), workers, 8, func(i int) error {
			switch i {
			case 2:
				return errA
			case 5:
				return errB
			}
			return nil
		})
		if err != errA {
			t.Errorf("workers=%d: err = %v, want the lowest-index error", workers, err)
		}
	}
}

func TestForEachRowParallelRunsAll(t *testing.T) {
	var ran atomic.Int64
	boom := errors.New("boom")
	err := forEachRow(context.Background(), 4, 8, func(i int) error {
		ran.Add(1)
		if i == 0 {
			return boom
		}
		return nil
	})
	if err != boom {
		t.Fatalf("err = %v", err)
	}
	if ran.Load() != 8 {
		t.Errorf("parallel mode ran %d cells, want all 8", ran.Load())
	}
}

// renderExp runs one experiment on a fresh quick suite with the given
// worker count and returns the rendered table bytes.
func renderExp(t *testing.T, id string, workers int) []byte {
	t.Helper()
	s := quickSuite()
	s.Workers = workers
	_, reg := Registry()
	tbl, err := reg[id](s)
	if err != nil {
		t.Fatalf("%s (workers=%d): %v", id, workers, err)
	}
	var buf bytes.Buffer
	tbl.Render(&buf)
	return buf.Bytes()
}

// TestSerialParallelEquivalence is the golden gate of the parallel engine:
// for each experiment the rendered table must be byte-identical whether the
// cells run serially or fanned across a worker pool (fig9 and table4 are
// the required representatives; fig4 exercises the pinned-placement cells;
// tierscape exercises the multi-tier platforms and the multiple-choice-
// knapsack runtime path).
func TestSerialParallelEquivalence(t *testing.T) {
	for _, id := range []string{"fig9", "table4", "fig4", "tierscape", "scenariofleet"} {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			serial := renderExp(t, id, 1)
			parallel := renderExp(t, id, 4)
			if !bytes.Equal(serial, parallel) {
				t.Errorf("serial and parallel renditions differ:\n--- serial ---\n%s--- parallel ---\n%s",
					serial, parallel)
			}
		})
	}
}

// TestParallelSuiteCacheConcurrency drives a whole experiment through the
// worker pool on one shared suite twice; the second pass must be served
// entirely from the cache. Under -race this doubles as the concurrent-
// access check for RunCache and Suite.calibration.
func TestParallelSuiteCacheConcurrency(t *testing.T) {
	s := quickSuite()
	s.Workers = 8
	first, err := s.Fig9()
	if err != nil {
		t.Fatal(err)
	}
	mid := s.CacheStats()
	second, err := s.Fig9()
	if err != nil {
		t.Fatal(err)
	}
	end := s.CacheStats()
	if end.Misses != mid.Misses {
		t.Errorf("second fig9 executed %d fresh baseline runs, want 0", end.Misses-mid.Misses)
	}
	if end.Hits <= mid.Hits {
		t.Error("second fig9 recorded no cache hits")
	}
	var a, b bytes.Buffer
	first.Render(&a)
	second.Render(&b)
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("cached re-run of fig9 rendered differently")
	}
}
