package workloads

// NewSTREAM builds the STREAM bandwidth microbenchmark (McCalpin) used by
// the paper to measure BW_peak and calibrate CF_bw: the copy/scale/add/
// triad kernels streaming three large arrays with maximum concurrency.
func NewSTREAM(ranks int) *Workload {
	b := newBench("STREAM", "C", ranks, 20, 1.0)
	b.obj("sa", 64, false)
	b.obj("sb", 64, false)
	b.obj("sc", 64, false)
	b.phase("copy", CommNone, 0, 0, b.rsFull("sc", 1, 1), b.rsFull("sa", 1, 0))
	b.phase("scale", CommNone, 0, 8, b.rsFull("sb", 1, 1), b.rsFull("sc", 1, 0))
	b.phase("add", CommNone, 0, 8,
		b.rsFull("sc", 1, 1), b.rsFull("sa", 1, 0), b.rsFull("sb", 1, 0))
	b.phase("triad", CommBarrier, 0, 16,
		b.rsFull("sa", 1, 1), b.rsFull("sb", 1, 0), b.rsFull("sc", 1, 0))
	return b.finish()
}

// NewPointerChase builds the pChase microbenchmark (Besard) used to
// calibrate CF_lat: a single dependent chain through a large array, one
// thread, no concurrent memory accesses.
func NewPointerChase(ranks int) *Workload {
	b := newBench("pChase", "C", ranks, 10, 1.0)
	b.obj("chain", 256, false)
	b.phase("chase", CommNone, 0, 0, b.rp("chain", 2, 0))
	b.phase("sync", CommBarrier, 0, 0)
	return b.finish()
}

// NPBName lists the six NPB kernels in the paper's presentation order.
var NPBNames = []string{"CG", "FT", "BT", "LU", "SP", "MG"}

// NewNPB builds the named NPB kernel.
func NewNPB(name, class string, ranks int) *Workload {
	switch name {
	case "CG":
		return NewCG(class, ranks)
	case "FT":
		return NewFT(class, ranks)
	case "BT":
		return NewBT(class, ranks)
	case "LU":
		return NewLU(class, ranks)
	case "SP":
		return NewSP(class, ranks)
	case "MG":
		return NewMG(class, ranks)
	default:
		panic("workloads: unknown NPB benchmark " + name)
	}
}

// EvalSuite returns the paper's full evaluation set: the six NPB kernels
// (FT at Class C regardless of the requested class, per §2.2/§5) plus
// Nek5000.
func EvalSuite(class string, ranks int) []*Workload {
	out := make([]*Workload, 0, 7)
	for _, n := range NPBNames {
		c := class
		if n == "FT" && class == "D" {
			c = "C" // the paper runs FT at Class C (Class D too slow)
		}
		out = append(out, NewNPB(n, c, ranks))
	}
	out = append(out, NewNek5000(class, ranks))
	return out
}
