package mpisim

import (
	"testing"

	"unimem/internal/machine"
)

// TestCoreStatsAdvance runs a small world with point-to-point traffic,
// out-of-order tag matching and a collective, and checks every counter
// moved by at least the amount the program structure guarantees.
func TestCoreStatsAdvance(t *testing.T) {
	before := ReadCoreStats()
	const P = 4
	w := NewWorld(P, machine.Edison())
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			// Two sends with distinct tags; receiver asks for the later
			// tag first, forcing a scan past the first queued message.
			c.Send(1, 7, 1024, nil)
			c.Send(1, 8, 1024, nil)
		}
		if c.Rank() == 1 {
			// Barrier first so both messages are queued before the scan.
			c.Barrier()
			c.Recv(0, 8)
			c.Recv(0, 7)
		} else {
			c.Barrier()
		}
		c.Allreduce(64)
	})
	after := ReadCoreStats()

	if after.Worlds != before.Worlds+1 {
		t.Errorf("worlds %d -> %d, want +1", before.Worlds, after.Worlds)
	}
	// P dispatches to start plus at least one per block/wake.
	if after.Events < before.Events+int64(P) {
		t.Errorf("events %d -> %d, want >= +%d", before.Events, after.Events, P)
	}
	if after.Collectives < before.Collectives+2 {
		t.Errorf("collectives %d -> %d, want >= +2 (barrier + allreduce)", before.Collectives, after.Collectives)
	}
	// Recv(0,8) scans past the queued tag-7 message (2 examined), then
	// Recv(0,7) finds it first (1 examined).
	if after.InboxScans < before.InboxScans+2 {
		t.Errorf("inbox scans %d -> %d, want >= +2", before.InboxScans, after.InboxScans)
	}
	if after.InboxScanned < before.InboxScanned+3 {
		t.Errorf("inbox scanned %d -> %d, want >= +3", before.InboxScanned, after.InboxScanned)
	}
	if after.MaxRunqDepth < int64(P) {
		t.Errorf("max runq depth %d, want >= %d (start seeds all ranks)", after.MaxRunqDepth, P)
	}
}
