package main

import (
	"encoding/json"
	"fmt"
	"os"

	"unimem/internal/exp"
	"unimem/internal/mpisim/simprog"
	"unimem/internal/serve"
)

// This file is the -check perf-regression gate: it compares a freshly-run
// benchmark document against the committed BENCH_*.json baseline and
// fails (exit 1) on regression, so the perf trajectory the repo records
// is enforced rather than write-only. Comparisons deliberately avoid
// absolute wall-clock figures — CI machines differ from the machine that
// produced the baseline — and gate only on quantities that are stable
// across hardware:
//
//   - mpisim: the event-vs-oracle per-core speedup ratio (both engines
//     run on the same machine in the same process, so the ratio cancels
//     the machine out) and the event core's allocations per world
//     (deterministic counts, not timings).
//   - serve: the paired-median instrumentation overhead, against a fixed
//     absolute budget rather than the baseline's (possibly negative)
//     noise-level figure.
//
// The tolerance is generous on purpose: the gate exists to catch real
// regressions (an accidental O(ranks²) reintroduction, a lock on the
// request path), not to flake on scheduler jitter.

// checkTolerance is the relative band on baseline comparisons: a ratio
// may degrade to (1 - checkTolerance) of baseline, allocations may grow
// to (1 + checkTolerance).
const checkTolerance = 0.5

// maxServeOverheadPct is the absolute request-path overhead budget for
// -bench serve -check, slightly above the documented ≤2% target to
// absorb measurement noise around the budget line.
const maxServeOverheadPct = 2.5

// minFastpathSpeedup is the absolute wall-clock floor for -bench
// fastpath -check: every cell's exact-vs-fast ratio is same-process and
// same-machine, so (like the mpisim speedup ratio) it is hardware
// independent. Long stationary runs sit far above this floor; dropping
// below it means the fast path stopped engaging or stopped skipping.
const minFastpathSpeedup = 10.0

// loadBaseline decodes the committed baseline document at path into dst.
func loadBaseline(path string, dst interface{}) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("reading baseline: %w", err)
	}
	if err := json.Unmarshal(b, dst); err != nil {
		return fmt.Errorf("decoding baseline %s: %w", path, err)
	}
	return nil
}

// checkMpisim gates a fresh mpisim run against the committed baseline.
// Returns the violations found (empty: pass).
func checkMpisim(cur, base *simprog.BenchDoc) []string {
	var bad []string
	// Event-vs-oracle speedup ratios: per-core throughput of the event
	// engine over the retired oracle engine, per benchmark cell. Both
	// sides of each ratio ran on the same machine, so baseline and
	// current are directly comparable across hardware.
	for name, baseRatio := range base.SpeedupPerCore {
		curRatio, ok := cur.SpeedupPerCore[name]
		if !ok {
			bad = append(bad, fmt.Sprintf("mpisim %s: cell present in baseline but missing from this run", name))
			continue
		}
		if floor := baseRatio * (1 - checkTolerance); curRatio < floor {
			bad = append(bad, fmt.Sprintf(
				"mpisim %s: event-vs-oracle per-core speedup %.2fx below %.2fx (baseline %.2fx - %.0f%%)",
				name, curRatio, floor, baseRatio, checkTolerance*100))
		}
	}
	// Event-core allocations per world: deterministic allocation counts,
	// the cheapest machine-independent signal of an accidental per-rank
	// or per-message allocation regression.
	baseAllocs := map[string]float64{}
	for _, r := range base.Results {
		if r.Engine == "event" {
			baseAllocs[r.Name] = r.AllocsPerWorld
		}
	}
	for _, r := range cur.Results {
		if r.Engine != "event" {
			continue
		}
		b, ok := baseAllocs[r.Name]
		if !ok || b <= 0 {
			continue
		}
		if ceil := b * (1 + checkTolerance); r.AllocsPerWorld > ceil {
			bad = append(bad, fmt.Sprintf(
				"mpisim %s: %.1f allocs/world above %.1f (baseline %.1f + %.0f%%)",
				r.Name, r.AllocsPerWorld, ceil, b, checkTolerance*100))
		}
	}
	return bad
}

// minLoadgenHitRate is the cache-hit floor for the measured loadgen
// round: after the warm round every key is resident at its ring owner,
// so anything meaningfully below 1.0 means forwarding routed requests
// away from their owners (or fallbacks re-executed cold runs).
const minLoadgenHitRate = 0.95

// minLoadgenQPSFraction is the floor on achieved/target QPS for the
// open-loop replay; the schedule is fixed, so falling far below it means
// the cluster path stalled the sender pool.
const minLoadgenQPSFraction = 0.5

// minLoadgenNodeShare is each node's minimum share of executed requests:
// the two-node ring must actually spread the key population.
const minLoadgenNodeShare = 0.10

// checkServe gates a fresh serve run against the fixed overhead budget
// and the cluster loadgen replay's health floors.
func checkServe(cur *serve.BenchDoc) []string {
	var bad []string
	if cur.OverheadPct > maxServeOverheadPct {
		bad = append(bad, fmt.Sprintf(
			"serve: request-path instrumentation overhead %.2f%% exceeds the %.1f%% budget",
			cur.OverheadPct, maxServeOverheadPct))
	}
	lg := cur.Loadgen
	if lg == nil {
		return append(bad, "serve: loadgen cluster replay missing from the fresh run")
	}
	if lg.Errors > 0 {
		bad = append(bad, fmt.Sprintf(
			"serve loadgen: %d of %d requests failed (a degraded cluster must still answer everything)",
			lg.Errors, lg.Requests))
	}
	if lg.HitRate < minLoadgenHitRate {
		bad = append(bad, fmt.Sprintf(
			"serve loadgen: hit rate %.1f%% below the %.0f%% floor (forwarding is missing ring owners)",
			100*lg.HitRate, 100*minLoadgenHitRate))
	}
	if lg.AchievedQPS < minLoadgenQPSFraction*lg.TargetQPS {
		bad = append(bad, fmt.Sprintf(
			"serve loadgen: achieved %.1f QPS below %.0f%% of the %.1f QPS schedule",
			lg.AchievedQPS, 100*minLoadgenQPSFraction, lg.TargetQPS))
	}
	if len(lg.PerNode) < 2 {
		bad = append(bad, fmt.Sprintf(
			"serve loadgen: %d node(s) executed requests; the two-node ring did not spread the keys",
			len(lg.PerNode)))
	}
	for node, ns := range lg.PerNode {
		if lg.Requests > 0 {
			if share := float64(ns.Requests) / float64(lg.Requests); share < minLoadgenNodeShare {
				bad = append(bad, fmt.Sprintf(
					"serve loadgen: node %s executed only %.1f%% of requests (floor %.0f%%)",
					node, 100*share, 100*minLoadgenNodeShare))
			}
		}
	}
	return bad
}

// checkFastpath gates a fresh fastpath run against the absolute speedup
// floor and the differential verdicts (a fast-but-wrong fast path must
// fail here, not just in the test suite).
func checkFastpath(cur *exp.FastpathBenchDoc) []string {
	var bad []string
	for _, c := range cur.Cells {
		if !c.Identical {
			bad = append(bad, fmt.Sprintf(
				"fastpath %s: exact and fast-path results diverge", c.Name))
		}
		if c.Speedup < minFastpathSpeedup {
			bad = append(bad, fmt.Sprintf(
				"fastpath %s: %.1fx speedup below the %.0fx floor (analytic fraction %.0f%%)",
				c.Name, c.Speedup, minFastpathSpeedup, 100*c.AnalyticFrac))
		}
	}
	if len(cur.Cells) == 0 {
		bad = append(bad, "fastpath: no benchmark cells in the fresh run")
	}
	return bad
}

// runCheck loads the committed baseline for mode and compares the fresh
// document against it, reporting verdicts to stderr. Returns the exit
// code (0 pass, 1 regression).
func runCheck(mode string, doc interface{}, baselinePath string) int {
	var bad []string
	switch mode {
	case "mpisim":
		var base simprog.BenchDoc
		if err := loadBaseline(baselinePath, &base); err != nil {
			fmt.Fprintf(os.Stderr, "-check: %v\n", err)
			return 1
		}
		bad = checkMpisim(doc.(*simprog.BenchDoc), &base)
	case "serve":
		// The serve gate is an absolute budget; the baseline file is not
		// consulted (its overhead figure is noise around zero).
		bad = checkServe(doc.(*serve.BenchDoc))
	case "fastpath":
		// Like serve, an absolute gate: the speedup ratio cancels the
		// machine out, so no baseline comparison is needed.
		bad = checkFastpath(doc.(*exp.FastpathBenchDoc))
	}
	if len(bad) > 0 {
		for _, msg := range bad {
			fmt.Fprintf(os.Stderr, "-check FAIL: %s\n", msg)
		}
		return 1
	}
	switch mode {
	case "serve":
		fmt.Fprintf(os.Stderr, "-check PASS: serve overhead within the %.1f%% budget\n", maxServeOverheadPct)
	case "fastpath":
		fmt.Fprintf(os.Stderr, "-check PASS: fastpath speedup above the %.0fx floor on every cell\n", minFastpathSpeedup)
	default:
		fmt.Fprintf(os.Stderr, "-check PASS: %s within tolerance of %s\n", mode, baselinePath)
	}
	return 0
}
