package mpisim

import (
	"sync"
	"sync/atomic"
	"testing"

	"unimem/internal/machine"
)

func world(p int) *World { return NewWorld(p, machine.PlatformA()) }

func TestSendRecvPayload(t *testing.T) {
	w := world(2)
	w.Run(func(c *Comm) {
		switch c.Rank() {
		case 0:
			c.Send(1, 5, 1024, []byte("hello"))
		case 1:
			got := c.Recv(0, 5)
			if string(got) != "hello" {
				t.Errorf("payload %q", got)
			}
		}
	})
}

func TestRecvClockSynchronizes(t *testing.T) {
	w := world(2)
	var recvClock int64
	w.Run(func(c *Comm) {
		switch c.Rank() {
		case 0:
			c.Advance(1e9) // sender is 1s ahead
			c.Send(1, 1, 1<<20, nil)
		case 1:
			c.Recv(0, 1)
			recvClock = c.Clock()
		}
	})
	// Receiver must land after the sender's departure plus transfer time.
	min := int64(1e9) + int64(world(2).Mach.MsgTimeNS(1<<20))
	if recvClock < min {
		t.Fatalf("receiver clock %d, want >= %d", recvClock, min)
	}
}

func TestTagReordering(t *testing.T) {
	w := world(2)
	w.Run(func(c *Comm) {
		switch c.Rank() {
		case 0:
			c.Send(1, 1, 8, []byte("first"))
			c.Send(1, 2, 8, []byte("second"))
		case 1:
			// Receive out of tag order: the reorder buffer must hold tag 1.
			if got := string(c.Recv(0, 2)); got != "second" {
				t.Errorf("tag 2 payload %q", got)
			}
			if got := string(c.Recv(0, 1)); got != "first" {
				t.Errorf("tag 1 payload %q", got)
			}
		}
	})
}

func TestBarrierAlignsClocks(t *testing.T) {
	w := world(4)
	var clocks [4]int64
	w.Run(func(c *Comm) {
		c.Advance(int64(c.Rank()) * 1e6) // staggered arrival
		c.Barrier()
		clocks[c.Rank()] = c.Clock()
	})
	for r := 1; r < 4; r++ {
		if clocks[r] != clocks[0] {
			t.Fatalf("clocks diverged after barrier: %v", clocks)
		}
	}
	if clocks[0] < 3e6 {
		t.Fatalf("barrier exited before slowest rank arrived: %v", clocks[0])
	}
}

func TestAllreduceCost(t *testing.T) {
	w := world(8)
	var clock int64
	w.Run(func(c *Comm) {
		c.Allreduce(1024)
		if c.Rank() == 0 {
			clock = c.Clock()
		}
	})
	// 2*log2(8)=6 message times.
	want := int64(6 * w.Mach.MsgTimeNS(1024))
	if clock != want {
		t.Fatalf("allreduce cost %d, want %d", clock, want)
	}
}

func TestCollectivesRepeat(t *testing.T) {
	// The generation-based rendezvous must survive many rounds.
	w := world(4)
	w.Run(func(c *Comm) {
		for i := 0; i < 100; i++ {
			c.Allreduce(8)
			c.Barrier()
			c.Bcast(64)
			c.Reduce(64)
			c.Alltoall(256)
		}
	})
}

func TestSendRecvExchangeNoDeadlock(t *testing.T) {
	w := world(4)
	w.Run(func(c *Comm) {
		p := c.Size()
		right := (c.Rank() + 1) % p
		left := (c.Rank() - 1 + p) % p
		for i := 0; i < 50; i++ {
			c.SendRecv(right, left, 9, 4096, nil)
		}
	})
}

func TestNonBlocking(t *testing.T) {
	w := world(2)
	w.Run(func(c *Comm) {
		switch c.Rank() {
		case 0:
			req := c.Isend(1, 3, 64, []byte("nb"))
			req.Wait()
		case 1:
			req := c.Irecv(0, 3)
			if got := string(req.Wait()); got != "nb" {
				t.Errorf("irecv payload %q", got)
			}
		}
	})
}

func TestPMPIHookFires(t *testing.T) {
	w := world(2)
	var calls int64
	w.Run(func(c *Comm) {
		c.SetHook(HookFunc(func(rank int, op string) {
			atomic.AddInt64(&calls, 1)
		}))
		if c.Rank() == 0 {
			c.Send(1, 1, 8, nil)
		} else {
			c.Recv(0, 1)
		}
		c.Barrier()
	})
	// Send + Recv + 2x Barrier = 4 hook invocations.
	if calls != 4 {
		t.Fatalf("hook fired %d times, want 4", calls)
	}
}

func TestIsendDoesNotFireHook(t *testing.T) {
	// Per §2.1, a non-blocking call is not a phase boundary; its Wait is.
	w := world(2)
	var ops []string
	var mu sync.Mutex
	w.Run(func(c *Comm) {
		if c.Rank() != 0 {
			c.Recv(0, 1)
			return
		}
		c.SetHook(HookFunc(func(rank int, op string) {
			mu.Lock()
			ops = append(ops, op)
			mu.Unlock()
		}))
		req := c.Isend(1, 1, 8, nil)
		req.Wait()
	})
	if len(ops) != 1 || ops[0] != "Wait" {
		t.Fatalf("ops = %v, want [Wait]", ops)
	}
}

func TestCommNSAccumulates(t *testing.T) {
	w := world(2)
	var commNS int64
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 1, 1<<20, nil)
		} else {
			c.Recv(0, 1)
			commNS = c.CommNS
		}
	})
	if commNS <= 0 {
		t.Fatal("receiver should accumulate communication wait time")
	}
}

func TestAdvancePanicsOnNegative(t *testing.T) {
	w := world(1)
	w.Run(func(c *Comm) {
		defer func() {
			if recover() == nil {
				t.Error("negative advance should panic")
			}
		}()
		c.Advance(-1)
	})
}

func TestRankPanicPropagates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("rank panic should propagate out of Run")
		}
	}()
	world(2).Run(func(c *Comm) {
		if c.Rank() == 1 {
			panic("boom")
		}
	})
}

func TestManyRanks(t *testing.T) {
	w := world(64)
	var total int64
	w.Run(func(c *Comm) {
		c.Advance(int64(c.Rank()))
		c.Allreduce(8)
		atomic.AddInt64(&total, 1)
	})
	if total != 64 {
		t.Fatalf("ran %d ranks", total)
	}
}
