// Package xmem implements the X-Mem baseline the paper compares against
// (Dulloor et al., "Data Tiering in Heterogeneous Memory Systems",
// EuroSys 2016): a software data-tiering approach driven by *offline*
// whole-program profiling (a PIN tool in the original; the exact recorded
// traffic of the first iteration here), which classifies each data
// object's access pattern, assumes the pattern is homogeneous within an
// object and stable over time, and installs one static placement for the
// entire run.
//
// The contrast with Unimem is exactly what the paper evaluates: X-Mem
// needs an offline profiling run per application/input, models no data
// movement cost (it never moves data after startup), and cannot adapt to
// phase behaviour that varies across iterations — which is why it loses
// ~10% on Nek5000 while matching Unimem on the stationary NPB kernels.
package xmem

import (
	"context"

	"unimem/internal/app"
	"unimem/internal/machine"
	"unimem/internal/placement"
	"unimem/internal/workloads"
)

// BuildPlacement derives X-Mem's static DRAM set from an offline profile:
// per object, the exact (unsampled) per-iteration benefit of DRAM
// residency under the machine's timing model, knapsacked into DRAM
// capacity. Objects are whole — X-Mem does not partition.
func BuildPlacement(w *workloads.Workload, m *machine.Machine, prof *app.RecordedProfile) map[string]bool {
	benefit := make(map[string]float64)
	for _, ph := range prof.Phases {
		for _, t := range ph.Traffic {
			nvm := m.MemTimeNS(m.SlowestIdx(), t.Accesses, t.Pattern, t.ReadFrac)
			dram := m.MemTimeNS(0, t.Accesses, t.Pattern, t.ReadFrac)
			benefit[t.Object] += nvm - dram
		}
	}
	var items []placement.Item
	for _, os := range w.Objects {
		if b := benefit[os.Name]; b > 0 {
			items = append(items, placement.Item{Chunk: os.Name, Size: os.Size, WeightNS: b})
		}
	}
	chosen, _ := placement.Knapsack(items, m.Fastest().CapacityBytes)
	set := make(map[string]bool, len(chosen))
	for _, i := range chosen {
		set[items[i].Chunk] = true
	}
	return set
}

// Factory returns a manager factory enforcing the given static placement.
func Factory(set map[string]bool) app.ManagerFactory {
	return app.NewStaticFactory("xmem", func(object string) bool { return set[object] })
}

// Profile runs the offline profiling pass (the PIN-based trace collection
// of the original system) and returns rank 0's recorded profile. The run
// happens on an NVM-only placement, matching how an offline profile is
// collected before any tiering decision exists. The context bounds the
// profiling run like app.RunCtx.
func Profile(ctx context.Context, w *workloads.Workload, m *machine.Machine, opts app.Options) (*app.RecordedProfile, error) {
	ranks := opts.Ranks
	if ranks == 0 {
		ranks = w.Ranks
	}
	profiles := make([]*app.RecordedProfile, ranks)
	for i := range profiles {
		profiles[i] = &app.RecordedProfile{}
	}
	profOpts := opts
	// One iteration suffices: X-Mem's offline profile sees a snapshot of
	// the application, which is the crux of its Nek5000 weakness.
	wcopy := *w
	wcopy.Iterations = 1
	if _, err := app.RunCtx(ctx, &wcopy, m, profOpts, app.NewRecorderFactory(profiles)); err != nil {
		return nil, err
	}
	return profiles[0], nil
}
