package loadgen

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"unimem"
)

// stubNode is a minimal /run endpoint: it answers like unimem-serve (a
// cache_hit JSON field, the X-Unimem-Node header) and reports a hit for
// any body it has seen before, so repeat traffic measures as hits.
type stubNode struct {
	name string
	mu   sync.Mutex
	seen map[string]bool
	reqs int
	fail func(i int) int // optional: status for request i (0: 200)
}

func (s *stubNode) handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		b, _ := io.ReadAll(r.Body)
		key := string(b)
		s.mu.Lock()
		i := s.reqs
		s.reqs++
		hit := s.seen[key]
		s.seen[key] = true
		s.mu.Unlock()
		w.Header().Set("X-Unimem-Node", s.name)
		if s.fail != nil {
			if code := s.fail(i); code != 0 {
				w.WriteHeader(code)
				fmt.Fprintf(w, `{"error":"injected"}`)
				return
			}
		}
		fmt.Fprintf(w, `{"cache_hit":%v,"time_ns":1}`, hit)
	})
}

func newStub(t *testing.T, name string) (*stubNode, *httptest.Server) {
	t.Helper()
	s := &stubNode{name: name, seen: map[string]bool{}}
	ts := httptest.NewServer(s.handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func TestBodiesDeterministic(t *testing.T) {
	cfg := Config{Scenarios: 2, Seed: 7}
	a, err := Bodies(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Bodies(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same config produced different body populations")
	}
	if want := 2 * len(unimem.ScenarioArchetypes()); len(a) != want {
		t.Fatalf("got %d bodies, want %d (2 per archetype)", len(a), want)
	}
}

func TestBodiesArchetypeFilter(t *testing.T) {
	one, err := Bodies(Config{Archetype: "stable", Scenarios: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(one) != 3 {
		t.Fatalf("single-archetype population has %d bodies, want 3", len(one))
	}
	if _, err := Bodies(Config{Archetype: "no-such-archetype"}); err == nil {
		t.Fatal("unknown archetype accepted")
	}
}

func TestRunSpreadsAndCountsHits(t *testing.T) {
	sa, tsa := newStub(t, "node-a")
	sb, tsb := newStub(t, "node-b")
	rep, err := Run(context.Background(), Config{
		Targets:   []Target{{Base: tsa.URL}, {Base: tsb.URL}},
		QPS:       5000,
		Requests:  40,
		Workers:   8,
		Archetype: "stable",
		Scenarios: 2, // 2 bodies cycled over 40 requests: plenty of repeats
		Seed:      3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != 40 || rep.Errors != 0 {
		t.Fatalf("requests=%d errors=%d, want 40/0", rep.Requests, rep.Errors)
	}
	if rep.Hits == 0 || rep.HitRate <= 0 {
		t.Fatalf("repeat traffic measured no hits: %+v", rep)
	}
	na, nb := rep.PerNode["node-a"], rep.PerNode["node-b"]
	if na.Requests+nb.Requests != 40 {
		t.Fatalf("per-node split %d+%d != 40", na.Requests, nb.Requests)
	}
	if na.Requests == 0 || nb.Requests == 0 {
		t.Fatalf("round-robin left a node idle: %+v", rep.PerNode)
	}
	if sa.reqs == 0 || sb.reqs == 0 {
		t.Fatal("a stub saw no traffic")
	}
	if rep.P50US > rep.P99US || rep.P99US > rep.P999US || rep.P999US > rep.MaxUS {
		t.Fatalf("quantiles out of order: p50=%.0f p99=%.0f p999=%.0f max=%.0f",
			rep.P50US, rep.P99US, rep.P999US, rep.MaxUS)
	}
	if rep.AchievedQPS <= 0 {
		t.Fatalf("achieved QPS %.1f", rep.AchievedQPS)
	}
}

func TestRunCountsErrors(t *testing.T) {
	s, ts := newStub(t, "flaky")
	s.fail = func(i int) int {
		if i%2 == 1 {
			return http.StatusInternalServerError
		}
		return 0
	}
	rep, err := Run(context.Background(), Config{
		Targets:   []Target{{Base: ts.URL}},
		QPS:       5000,
		Requests:  10,
		Archetype: "stable",
		Scenarios: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 5 {
		t.Fatalf("errors=%d, want 5 (every other request 500s)", rep.Errors)
	}
	if rep.Requests != 10 {
		t.Fatalf("requests=%d, want 10 (errors still count as sent)", rep.Requests)
	}
}

func TestRunOpenLoopPacing(t *testing.T) {
	_, ts := newStub(t, "paced")
	start := time.Now()
	rep, err := Run(context.Background(), Config{
		Targets:   []Target{{Base: ts.URL}},
		QPS:       100, // 10 requests at 100 QPS: the schedule spans 90ms
		Requests:  10,
		Workers:   4,
		Archetype: "stable",
		Scenarios: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 80*time.Millisecond {
		t.Fatalf("open-loop schedule finished in %v; pacing not honored", elapsed)
	}
	if rep.AchievedQPS > 130 {
		t.Fatalf("achieved %.1f QPS against a 100 QPS schedule", rep.AchievedQPS)
	}
}

func TestRunCancellation(t *testing.T) {
	_, ts := newStub(t, "cancelled")
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	rep, err := Run(ctx, Config{
		Targets:   []Target{{Base: ts.URL}},
		QPS:       10, // 100 requests at 10 QPS would take ~10s; cancel cuts it short
		Requests:  100,
		Archetype: "stable",
		Scenarios: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests >= 100 {
		t.Fatalf("cancellation did not stop scheduling: %d requests", rep.Requests)
	}
}

func TestRunConfigValidation(t *testing.T) {
	ctx := context.Background()
	if _, err := Run(ctx, Config{QPS: 1, Requests: 1}); err == nil {
		t.Fatal("no targets accepted")
	}
	if _, err := Run(ctx, Config{Targets: []Target{{Base: "http://x"}}, Requests: 1}); err == nil {
		t.Fatal("zero QPS accepted")
	}
	if _, err := Run(ctx, Config{Targets: []Target{{Base: "http://x"}}, QPS: 1}); err == nil {
		t.Fatal("neither Requests nor Duration accepted")
	}
}
