package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_requests_total", "Total requests.")
	g := r.Gauge("test_inflight", "In-flight requests.")
	r.GaugeFunc("test_uptime_seconds", "Uptime.", func() float64 { return 12.5 })
	c.Add(3)
	c.Inc()
	c.Add(-5) // ignored: counters are monotonic
	g.Set(7)
	g.Add(-2)

	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE test_requests_total counter",
		"test_requests_total 4",
		"# TYPE test_inflight gauge",
		"test_inflight 5",
		"test_uptime_seconds 12.5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if err := ValidateExposition(strings.NewReader(out)); err != nil {
		t.Errorf("self-exposition failed validation: %v", err)
	}
}

func TestCounterVecLabels(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("test_hits_total", "Hits by path.", "path", "code")
	v.With("/run", "200").Add(2)
	v.With("/batch", "500").Inc()
	v.With("/run", "200").Inc() // same child

	var b strings.Builder
	r.WriteTo(&b)
	out := b.String()
	if !strings.Contains(out, `test_hits_total{path="/run",code="200"} 3`) {
		t.Errorf("missing labeled sample:\n%s", out)
	}
	if !strings.Contains(out, `test_hits_total{path="/batch",code="500"} 1`) {
		t.Errorf("missing labeled sample:\n%s", out)
	}
	if err := ValidateExposition(strings.NewReader(out)); err != nil {
		t.Errorf("validation: %v", err)
	}
}

func TestHistogramExpositionAndQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_latency_seconds", "Latency.", []float64{0.1, 0.2, 0.5, 1})
	// 100 observations uniformly in (0, 0.1]: all land in the first bucket.
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) * 0.001)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d, want 100", h.Count())
	}
	if math.Abs(h.Sum()-5.05) > 1e-9 {
		t.Errorf("sum = %g, want 5.05", h.Sum())
	}
	// All mass in [0, 0.1] → interpolated p50 = 0.05.
	if got := h.Quantile(0.5); math.Abs(got-0.05) > 1e-9 {
		t.Errorf("p50 = %g, want 0.05", got)
	}
	if got := h.Quantile(0.99); math.Abs(got-0.099) > 1e-9 {
		t.Errorf("p99 = %g, want 0.099", got)
	}

	var b strings.Builder
	r.WriteTo(&b)
	out := b.String()
	for _, want := range []string{
		"# TYPE test_latency_seconds histogram",
		`test_latency_seconds_bucket{le="0.1"} 100`,
		`test_latency_seconds_bucket{le="1"} 100`,
		`test_latency_seconds_bucket{le="+Inf"} 100`,
		"test_latency_seconds_count 100",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if err := ValidateExposition(strings.NewReader(out)); err != nil {
		t.Errorf("validation: %v", err)
	}
}

func TestHistogramQuantileSpread(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4, 8})
	// 10 obs ≤1, 10 in (1,2], 10 in (2,4].
	for i := 0; i < 10; i++ {
		h.Observe(0.5)
		h.Observe(1.5)
		h.Observe(3)
	}
	// rank(0.5)=15 → 5 into the (1,2] bucket of 10 → 1 + 0.5 = 1.5.
	if got := h.Quantile(0.5); math.Abs(got-1.5) > 1e-9 {
		t.Errorf("p50 = %g, want 1.5", got)
	}
	// Empty histogram and out-of-range mass.
	var empty Histogram
	if got := (&empty).Quantile(0.5); got != 0 {
		t.Errorf("empty p50 = %g, want 0", got)
	}
	h2 := newHistogram([]float64{1})
	h2.Observe(100) // +Inf bucket → clamp to largest finite bound
	if got := h2.Quantile(0.99); got != 1 {
		t.Errorf("inf-bucket p99 = %g, want 1 (clamped)", got)
	}
}

func TestHistogramVec(t *testing.T) {
	r := NewRegistry()
	v := r.HistogramVec("test_dur_seconds", "Durations.", []float64{0.5, 1}, "endpoint", "cache")
	v.With("/run", "hit").Observe(0.2)
	v.With("/run", "miss").Observe(0.9)
	var b strings.Builder
	r.WriteTo(&b)
	out := b.String()
	if !strings.Contains(out, `test_dur_seconds_bucket{endpoint="/run",cache="hit",le="0.5"} 1`) {
		t.Errorf("missing hit bucket:\n%s", out)
	}
	if !strings.Contains(out, `test_dur_seconds_count{endpoint="/run",cache="miss"} 1`) {
		t.Errorf("missing miss count:\n%s", out)
	}
	if err := ValidateExposition(strings.NewReader(out)); err != nil {
		t.Errorf("validation: %v", err)
	}
}

// TestNilSafety is the disabled-mode contract: a nil registry hands out
// nil instruments and every operation on them is a no-op.
func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "x")
	g := r.Gauge("x", "x")
	h := r.Histogram("x_seconds", "x", nil)
	cv := r.CounterVec("xv_total", "x", "l")
	hv := r.HistogramVec("xv_seconds", "x", nil, "l")
	r.GaugeFunc("x_fn", "x", func() float64 { return 1 })
	r.CounterFunc("x_cfn", "x", func() float64 { return 1 })

	c.Inc()
	c.Add(5)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	cv.With("a").Inc()
	hv.With("a").Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 {
		t.Error("nil instruments must read as zero")
	}
	if n, err := r.WriteTo(&strings.Builder{}); n != 0 || err != nil {
		t.Errorf("nil registry WriteTo = (%d, %v), want (0, nil)", n, err)
	}
	if hv.Children() != nil {
		t.Error("nil vec Children must be nil")
	}
}

func TestConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_conc_seconds", "x", []float64{0.5})
	c := r.Counter("test_conc_total", "x")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(0.25)
				c.Inc()
			}
		}()
	}
	// Scrape concurrently with writers.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var b strings.Builder
			r.WriteTo(&b)
			if err := ValidateExposition(strings.NewReader(b.String())); err != nil {
				t.Errorf("concurrent scrape invalid: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	<-done
	if h.Count() != 8000 || c.Value() != 8000 {
		t.Errorf("count = %d / %d, want 8000", h.Count(), c.Value())
	}
	if math.Abs(h.Sum()-2000) > 1e-6 {
		t.Errorf("sum = %g, want 2000", h.Sum())
	}
}

func TestRegistryPanicsOnBadNames(t *testing.T) {
	r := NewRegistry()
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("bad metric name", func() { r.Counter("bad name", "x") })
	mustPanic("bad label name", func() { r.CounterVec("ok_total", "x", "bad-label") })
	r.Counter("dup_total", "x")
	mustPanic("duplicate name", func() { r.Counter("dup_total", "x") })
	v := r.CounterVec("lab_total", "x", "a", "b")
	mustPanic("label arity", func() { v.With("only-one") })
}

func TestValidateExpositionRejects(t *testing.T) {
	bad := []string{
		"no_value_here\n",
		"1leading_digit 3\n",
		`m{l=unquoted} 1` + "\n",
		`m{l="unterminated} 1` + "\n",
		`m{bad-label="v"} 1` + "\n",
		"m notafloat\n",
		"# TYPE m widget\nm 1\n",
		"# TYPE m counter\n# TYPE m counter\nm 1\n",
		"# TYPE known counter\nunknown_sample 1\n",
		`m{l="bad\q"} 1` + "\n",
	}
	for _, doc := range bad {
		if err := ValidateExposition(strings.NewReader(doc)); err == nil {
			t.Errorf("expected rejection of %q", doc)
		}
	}
	good := []string{
		"",
		"# just a comment\n",
		"m 1\n",
		"m 1 1700000000000\n",
		`m{a="x",b="y\"z"} 2.5` + "\n",
		"m +Inf\nn NaN\n",
		"# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_sum 0.5\nh_count 1\n",
	}
	for _, doc := range good {
		if err := ValidateExposition(strings.NewReader(doc)); err != nil {
			t.Errorf("unexpected rejection of %q: %v", doc, err)
		}
	}
}
