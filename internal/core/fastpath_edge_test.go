package core_test

import (
	"reflect"
	"testing"

	"unimem/internal/app"
	"unimem/internal/core"
	"unimem/internal/machine"
	"unimem/internal/obs"
	"unimem/internal/phase"
	"unimem/internal/workloads"
)

// runFP runs w under the full runtime with the given options, returning
// the result, the rank-0 runtime, and the collected fast-path stats.
func runFP(t *testing.T, w *workloads.Workload, m *machine.Machine, opts app.Options) (*app.Result, *core.Runtime, app.FastPathStats) {
	t.Helper()
	var st app.FastPathStats
	if opts.FastPath == nil {
		opts.FastPath = &st
	}
	opts.Ranks = 1
	var rt *core.Runtime
	res, err := app.Run(w, m, opts, func(rank int) app.Manager {
		rt = core.NewRuntime(rank, core.DefaultConfig())
		return rt
	})
	if err != nil {
		t.Fatal(err)
	}
	return res, rt, *opts.FastPath
}

// driftyWorkload is tinyWorkload with a hot-object switch at the given
// iteration: the variation monitor must fire a re-profile there.
func driftyWorkload(iters, driftAt int) *workloads.Workload {
	w := tinyWorkload(iters)
	w.Name = "tiny-drift"
	w.Phases[0].Refs = func(iter int) []phase.Ref {
		if iter >= driftAt {
			return []phase.Ref{{Object: "cold", Accesses: 1.3e6, ReadFrac: 0.7, Pattern: machine.Stream}}
		}
		return []phase.Ref{{Object: "hot", Accesses: 1.3e6, ReadFrac: 0.7, Pattern: machine.Stream}}
	}
	return w
}

// TestFastPathStationaryMatchesExact is the base differential: a
// stationary run must produce byte-identical results with and without
// the analytic fast path, and the fast path must actually engage (a
// vacuously-equal pair proves nothing).
func TestFastPathStationaryMatchesExact(t *testing.T) {
	m := nvmMachine()
	exact, exrt, _ := runFP(t, tinyWorkload(40), m, app.Options{ExactSim: true})
	fast, fart, st := runFP(t, tinyWorkload(40), m, app.Options{})
	if !reflect.DeepEqual(exact, fast) {
		t.Fatalf("results diverge:\nexact %+v\nfast  %+v", exact, fast)
	}
	if st.AnalyticIters == 0 || st.FastForwards == 0 {
		t.Fatalf("fast path never engaged on a stationary run: %+v", st)
	}
	if st.SimulatedIters+st.AnalyticIters != 40 {
		t.Fatalf("iteration accounting: %d simulated + %d analytic != 40",
			st.SimulatedIters, st.AnalyticIters)
	}
	if exrt.Decisions != fart.Decisions ||
		!reflect.DeepEqual(exrt.ReprofileIters, fart.ReprofileIters) {
		t.Fatalf("adaptation history diverges: exact(%d %v) fast(%d %v)",
			exrt.Decisions, exrt.ReprofileIters, fart.Decisions, fart.ReprofileIters)
	}
}

// TestFastPathReprofileMidWindow drifts the workload mid-run: the
// re-profile the variation monitor fires must land on the same
// iteration with the fast path on (the forward scan may not skip across
// the drift point), and results stay identical.
func TestFastPathReprofileMidWindow(t *testing.T) {
	m := nvmMachine()
	w := driftyWorkload(48, 24)
	exact, exrt, _ := runFP(t, w, m, app.Options{ExactSim: true})
	fast, fart, st := runFP(t, w, m, app.Options{})
	if !reflect.DeepEqual(exact, fast) {
		t.Fatalf("results diverge under drift:\nexact %+v\nfast  %+v", exact, fast)
	}
	if len(exrt.ReprofileIters) == 0 {
		t.Fatal("drift did not re-profile; the edge is untested")
	}
	if !reflect.DeepEqual(exrt.ReprofileIters, fart.ReprofileIters) {
		t.Fatalf("re-profile timeline diverges: exact %v fast %v",
			exrt.ReprofileIters, fart.ReprofileIters)
	}
	if exrt.Decisions != fart.Decisions {
		t.Fatalf("decisions diverge: exact %d fast %d", exrt.Decisions, fart.Decisions)
	}
	if st.AnalyticIters == 0 {
		t.Fatalf("fast path never engaged around the drift: %+v", st)
	}
}

// TestFastPathExitsAtContentBoundary pins the forward scan's exit edge:
// every fast-forwarded window must end strictly before the workload's
// content change — the boundary iteration itself is simulated, so the
// variation monitor sees it.
func TestFastPathExitsAtContentBoundary(t *testing.T) {
	const driftAt = 24
	ex := obs.NewExplain()
	_, _, st := runFP(t, driftyWorkload(48, driftAt), nvmMachine(), app.Options{Explain: ex})
	if st.FastForwards == 0 {
		t.Fatalf("no fast-forward episodes recorded: %+v", st)
	}
	ffs := ex.Doc().FastForwards
	if int64(len(ffs)) != st.FastForwards {
		t.Fatalf("explain doc has %d fast-forwards, stats say %d", len(ffs), st.FastForwards)
	}
	for _, ff := range ffs {
		if ff.ExitIter <= ff.EntryIter {
			t.Fatalf("degenerate fast-forward window %+v", ff)
		}
		if ff.EntryIter < driftAt && ff.ExitIter > driftAt {
			t.Fatalf("fast-forward %+v skipped across the content boundary at %d", ff, driftAt)
		}
		if ff.ClockDeltaNS <= 0 {
			t.Fatalf("fast-forward %+v advanced no virtual time", ff)
		}
	}
}

// TestFastPathRecurringScheduleBlocksEntry: a plan that carries a
// recurring per-phase migration schedule never reaches steady state, so
// the fast path must sit out the whole run — and results still match.
func TestFastPathRecurringScheduleBlocksEntry(t *testing.T) {
	// Two phases with disjoint latency-bound hot objects and DRAM sized
	// for one: per-phase swapping pays (pointer-chase at 4x NVM latency
	// dwarfs the move cost), so the local search adopts a recurring
	// per-iteration schedule.
	w := &workloads.Workload{
		Name: "alternating", Class: "C", Ranks: 1, Iterations: 24,
		Objects: []workloads.ObjectSpec{
			{Name: "a", Size: 96 << 20},
			{Name: "b", Size: 96 << 20},
		},
		Phases: []workloads.Phase{
			{Name: "pa", Kind: phase.Compute, Flops: 10e6,
				Refs: func(int) []phase.Ref {
					return []phase.Ref{{Object: "a", Accesses: 2e6, ReadFrac: 1, Pattern: machine.PointerChase}}
				}},
			{Name: "pb", Kind: phase.Compute, Flops: 10e6,
				Refs: func(int) []phase.Ref {
					return []phase.Ref{{Object: "b", Accesses: 2e6, ReadFrac: 1, Pattern: machine.PointerChase}}
				}},
			{Name: "sync", Kind: phase.Comm, Comm: workloads.CommBarrier,
				Refs: func(int) []phase.Ref { return nil }},
		},
	}
	m := machine.PlatformA().WithNVMLatencyFactor(4).WithDRAMCapacity(128 << 20)
	exact, _, _ := runFP(t, w, m, app.Options{ExactSim: true})
	fast, fart, st := runFP(t, w, m, app.Options{})
	if !reflect.DeepEqual(exact, fast) {
		t.Fatal("results diverge on the scheduled workload")
	}
	if plan := fart.Plan(); plan == nil || len(plan.Schedule) == 0 {
		t.Skip("local search adopted no recurring schedule; gate not exercised")
	}
	if st.AnalyticIters != 0 || st.FastForwards != 0 {
		t.Fatalf("fast path engaged despite a recurring migration schedule: %+v", st)
	}
}
