// Package workloads defines the benchmark applications of the paper's
// evaluation — the six NAS Parallel Benchmarks (CG, FT, BT, LU, SP, MG),
// the Nek5000 eddy production proxy, and the STREAM / pointer-chasing
// calibration microbenchmarks — as phase-structured iterative MPI programs
// with the paper's Table 3 target-object inventories.
//
// A workload describes, per phase and per iteration, the ground-truth
// post-LLC traffic each target object generates on one rank (count,
// read/write mix, access pattern). The execution harness turns those
// descriptors into virtual time through the machine model and into sampled
// counter profiles through the counters emulation; the Unimem runtime sees
// only the latter, exactly as it would on hardware.
package workloads

import (
	"unimem/internal/machine"
	"unimem/internal/phase"
)

// ObjectSpec declares one target data object (paper Table 3).
type ObjectSpec struct {
	Name string
	// Size is the per-rank simulated size in bytes.
	Size int64
	// Partitionable marks 1-D arrays with regular references that the
	// runtime's conservative chunking rule may split (§3.2).
	Partitionable bool
	// RefHint is the static per-iteration reference-count estimate the
	// compiler analysis would produce for initial placement; 0 means the
	// count is not statically known before the main loop.
	RefHint float64
}

// CommKind enumerates the MPI operations the workloads use.
type CommKind int

const (
	// CommNone marks a pure computation phase.
	CommNone CommKind = iota
	// CommAllreduce is an allreduce of Phase.CommBytes per rank.
	CommAllreduce
	// CommHalo is a ring halo exchange (SendRecv with both neighbours) of
	// Phase.CommBytes per direction.
	CommHalo
	// CommAlltoall is a personalized all-to-all of Phase.CommBytes per
	// rank pair.
	CommAlltoall
	// CommBcast broadcasts Phase.CommBytes.
	CommBcast
	// CommBarrier is a barrier.
	CommBarrier
	// CommWaitHalo is the completion (MPI_Wait) of a previously posted
	// non-blocking halo exchange; per §2.1 the Isend/Irecv themselves are
	// merged into the preceding phase and only the Wait is a phase.
	CommWaitHalo
)

// String returns the MPI operation name used for phase identification.
func (k CommKind) String() string {
	switch k {
	case CommNone:
		return ""
	case CommAllreduce:
		return "Allreduce"
	case CommHalo:
		return "SendRecv"
	case CommAlltoall:
		return "Alltoall"
	case CommBcast:
		return "Bcast"
	case CommBarrier:
		return "Barrier"
	case CommWaitHalo:
		return "Wait"
	default:
		return "?"
	}
}

// ScaleWindow is one segment of a piecewise per-iteration schedule: for
// iterations in [From, To) the scheduled quantity is multiplied by Scale.
// To <= 0 means "until the end of the run". Windows are matched first-hit
// in slice order; iterations outside every window use scale 1.
type ScaleWindow struct {
	From  int     `json:"from"`
	To    int     `json:"to,omitempty"`
	Scale float64 `json:"scale"`
}

// Contains reports whether the window covers the iteration.
func (w ScaleWindow) Contains(iter int) bool {
	return iter >= w.From && (w.To <= 0 || iter < w.To)
}

// Phase describes one phase of the iteration body.
type Phase struct {
	Name string
	Kind phase.Kind
	// Comm and CommBytes describe the MPI operation of a communication
	// phase (CommNone for computation phases).
	Comm      CommKind
	CommBytes int64
	// CommSchedule optionally scales CommBytes per iteration (bursty
	// communication); nil means the constant CommBytes every iteration.
	CommSchedule []ScaleWindow
	// Flops is the per-rank floating-point work of the phase.
	Flops float64
	// RankSkew imbalances the phase across ranks: rank r's traffic and
	// compute are scaled by a linear ramp from 1-RankSkew/2 (rank 0) to
	// 1+RankSkew/2 (last rank), mean 1 across the world. 0 is balanced;
	// valid range is [0, 2).
	RankSkew float64
	// Refs returns the per-rank ground-truth main-memory traffic for
	// the given iteration. Most workloads are iteration-invariant;
	// Nek5000's pattern drift uses iter.
	Refs func(iter int) []phase.Ref
}

// CommBytesAt returns the phase's communication volume for the given
// iteration, applying the first matching CommSchedule window.
func (p *Phase) CommBytesAt(iter int) int64 {
	for _, w := range p.CommSchedule {
		if w.Contains(iter) {
			return int64(float64(p.CommBytes) * w.Scale)
		}
	}
	return p.CommBytes
}

// ContentKey digests everything this phase will do at the given
// iteration that is rank-independent: kind, MPI operation and its
// scheduled volume, flops, skew, and the full ground-truth reference
// list. Two iterations with equal ContentKeys for every phase present
// identical work to the simulator (per-rank scaling is a pure function
// of the folded skew), which is what the analytic fast path's forward
// scan relies on to bound a stable window.
func (p *Phase) ContentKey(iter int) phase.Key {
	d := phase.NewDigest().
		Int(int(p.Kind)).
		Int(int(p.Comm)).
		Int64(p.CommBytesAt(iter)).
		Float64(p.Flops).
		Float64(p.RankSkew)
	if p.Refs != nil {
		for _, r := range p.Refs(iter) {
			d = d.String(r.Object).
				Int64(r.Accesses).
				Float64(r.ReadFrac).
				Int(int(r.Pattern))
		}
	}
	return d.Key()
}

// RankScale returns the phase's load-imbalance factor for one rank of a
// world of the given size.
func (p *Phase) RankScale(rank, ranks int) float64 {
	if p.RankSkew == 0 || ranks <= 1 {
		return 1
	}
	return 1 + p.RankSkew*(float64(rank)/float64(ranks-1)-0.5)
}

// Workload is a phase-structured iterative MPI application.
type Workload struct {
	Name  string
	Class string
	// Ranks the workload was sized for (object sizes are per-rank and
	// already account for domain decomposition at this scale).
	Ranks      int
	Iterations int
	Objects    []ObjectSpec
	Phases     []Phase
	// FootprintFrac is the fraction of total application memory footprint
	// covered by the target objects (paper Table 3 last column).
	FootprintFrac float64
	// SpecDigest is a content hash of the declarative scenario spec this
	// workload was compiled from (empty for workloads built in Go). The
	// experiment run cache keys on it, so two scenarios that share a name
	// but differ anywhere in their spec never share cached results.
	SpecDigest string
	// ContentEpochs optionally declares, in increasing order, every
	// iteration at which any phase's rank-independent content (content
	// key) differs from the previous iteration's. nil means unknown: the
	// fast path's forward scan verifies content keys iteration by
	// iteration. A non-nil slice (possibly empty: fully stationary) is an
	// exhaustive declaration — within two consecutive epochs all content
	// keys are constant — which makes the scan O(#epochs) per episode
	// instead of O(iterations). Producers that precompute per-iteration
	// content anyway (scenario compilation) derive it with
	// ComputeContentEpochs, so the declaration is the scan, hoisted to
	// compile time.
	ContentEpochs []int
}

// ComputeContentEpochs derives ContentEpochs by a single forward pass
// over every phase's content keys — exactly the comparison the fast
// path's scan would make per episode, paid once per workload instead.
func (w *Workload) ComputeContentEpochs() {
	epochs := []int{}
	prev := make([]phase.Key, len(w.Phases))
	for pi := range w.Phases {
		prev[pi] = w.Phases[pi].ContentKey(0)
	}
	for iter := 1; iter < w.Iterations; iter++ {
		for pi := range w.Phases {
			k := w.Phases[pi].ContentKey(iter)
			if k != prev[pi] && (len(epochs) == 0 || epochs[len(epochs)-1] != iter) {
				epochs = append(epochs, iter)
			}
			prev[pi] = k
		}
	}
	w.ContentEpochs = epochs
}

// Object returns the spec with the given name, or nil.
func (w *Workload) Object(name string) *ObjectSpec {
	for i := range w.Objects {
		if w.Objects[i].Name == name {
			return &w.Objects[i]
		}
	}
	return nil
}

// TotalObjectBytes returns the summed per-rank size of all target objects.
func (w *Workload) TotalObjectBytes() int64 {
	var n int64
	for _, o := range w.Objects {
		n += o.Size
	}
	return n
}

// staticRefs wraps an iteration-invariant ref list.
func staticRefs(refs []phase.Ref) func(int) []phase.Ref {
	return func(int) []phase.Ref { return refs }
}

// MiB converts mebibytes to bytes.
func MiB(n float64) int64 { return int64(n * (1 << 20)) }

// accStream returns the post-LLC access count for s streaming passes over
// an object of size bytes: every cache line misses once per pass.
func accStream(size int64, passes float64) int64 {
	return int64(float64(size/machine.CacheLineBytes) * passes)
}

// accSparse returns the post-LLC access count for n irregular references
// with the given miss ratio.
func accSparse(n float64, missRatio float64) int64 {
	return int64(n * missRatio)
}
