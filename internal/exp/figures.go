package exp

import (
	"fmt"
	"strings"

	"unimem/internal/machine"
	"unimem/internal/workloads"
)

// Table1 regenerates the paper's Table 1: NVM technology characteristics.
func (s *Suite) Table1() (*Table, error) {
	t := &Table{
		ID:      "table1",
		Title:   "NVM performance characteristics vs DRAM (paper Table 1)",
		Columns: []string{"Technology", "Read time", "Write time", "Random read BW", "Random write BW"},
	}
	rng := func(lo, hi float64, unit string) string {
		if lo == hi {
			return fmt.Sprintf("%g %s", lo, unit)
		}
		return fmt.Sprintf("%g-%g %s", lo, hi, unit)
	}
	for _, ts := range machine.Table1() {
		t.AddRow(ts.Name,
			rng(ts.ReadNSMin, ts.ReadNSMax, "ns"),
			rng(ts.WriteNSMin, ts.WriteNSMax, "ns"),
			rng(ts.ReadBWMin, ts.ReadBWMax, "MB/s"),
			rng(ts.WriteBWMin, ts.WriteBWMax, "MB/s"))
	}
	return t, nil
}

// Calib reports the one-time platform calibration (§3.1.2): CF_bw from
// STREAM, CF_lat from pointer chasing, BW_peak from STREAM-on-NVM.
func (s *Suite) Calib() (*Table, error) {
	t := &Table{
		ID:      "calib",
		Title:   "Constant-factor calibration (STREAM + pChase, once per platform)",
		Columns: []string{"Machine", "CF_bw", "CF_lat", "BW_peak GB/s", "STREAM meas/pred", "pChase meas/pred"},
	}
	base := machine.PlatformA()
	for _, m := range []*machine.Machine{
		base.WithNVMBandwidthFraction(0.5),
		base.WithNVMLatencyFactor(4),
		machine.Edison(),
	} {
		c := s.calibration(m)
		t.AddRow(m.Name,
			fmt.Sprintf("%.3f", c.CFBw),
			fmt.Sprintf("%.3f", c.CFLat),
			fmt.Sprintf("%.2f", c.BWPeakBps/1e9),
			fmt.Sprintf("%.0f/%.0f us", c.StreamMeasuredNS/1e3, c.StreamPredictedNS/1e3),
			fmt.Sprintf("%.0f/%.0f us", c.ChaseMeasuredNS/1e3, c.ChasePredictedNS/1e3))
	}
	t.Notes = append(t.Notes,
		"CF factors absorb the sampled counters' systematic undercount (capture ratio 0.80 -> CF ~1.25)")
	return t, nil
}

// Table3 regenerates the paper's Table 3: target data objects.
func (s *Suite) Table3() (*Table, error) {
	t := &Table{
		ID:      "table3",
		Title:   "Target data objects per benchmark (paper Table 3)",
		Columns: []string{"Benchmark", "Target data objects", "% of app footprint"},
	}
	for _, w := range s.evalSuite() {
		names := make([]string, 0, len(w.Objects))
		for _, o := range w.Objects {
			names = append(names, o.Name)
		}
		label := strings.Join(names, ",")
		if w.Name == "Nek5000" {
			label = fmt.Sprintf("geometry arrays and main simulation variables (%d objects)", len(w.Objects))
		}
		t.AddRow(w.Name+" ("+w.Class+")", label, fmtPct(w.FootprintFrac))
	}
	return t, nil
}

// sweep runs the NVM-only configuration sweep behind Figs. 2 and 3.
func (s *Suite) sweep(id, title, axis string, mk func(*machine.Machine, float64) *machine.Machine, points []float64, labels []string) (*Table, error) {
	t := &Table{
		ID:      id,
		Title:   title,
		Columns: append([]string{"Benchmark"}, labels...),
	}
	base := machine.PlatformA()
	// Figs. 2/3 use Class D (FT at C) on 16 processes; per-rank footprints
	// come from the workload's rank scaling.
	suite := workloads.EvalSuite("D", s.Ranks)
	suite = suite[:len(suite)-1] // NPB only in Figs. 2/3
	rows := make([][]interface{}, len(suite))
	err := forEachRow(s.ctx(), s.workers(), len(suite), func(i int) error {
		w := suite[i]
		dram, err := s.runStatic(w, base, "dram-only", nil)
		if err != nil {
			return err
		}
		row := []interface{}{w.Name}
		for _, p := range points {
			m := mk(base, p)
			nvm, err := s.runStatic(w, m, "nvm-only", nil)
			if err != nil {
				return err
			}
			row = append(row, norm(nvm.TimeNS, dram.TimeNS))
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes, "execution time normalized to DRAM-only; "+axis)
	return t, nil
}

// Fig2 regenerates Fig. 2: NVM-only slowdown under reduced bandwidth.
func (s *Suite) Fig2() (*Table, error) {
	return s.sweep("fig2",
		"NVM-only vs DRAM-only under reduced NVM bandwidth (paper Fig. 2)",
		"NVM bandwidth as a fraction of DRAM",
		func(b *machine.Machine, f float64) *machine.Machine { return b.WithNVMBandwidthFraction(f) },
		[]float64{0.5, 0.25, 0.125},
		[]string{"1/2 bw", "1/4 bw", "1/8 bw"})
}

// Fig3 regenerates Fig. 3: NVM-only slowdown under increased latency.
func (s *Suite) Fig3() (*Table, error) {
	return s.sweep("fig3",
		"NVM-only vs DRAM-only under increased NVM latency (paper Fig. 3)",
		"NVM latency as a multiple of DRAM",
		func(b *machine.Machine, f float64) *machine.Machine { return b.WithNVMLatencyFactor(f) },
		[]float64{2, 4, 8},
		[]string{"2x lat", "4x lat", "8x lat"})
}

// Fig4 regenerates Fig. 4: the impact of placing individual SP data
// objects in DRAM, for NVM at 1/2 bandwidth and at 4x latency, Class C
// and Class D.
func (s *Suite) Fig4() (*Table, error) {
	t := &Table{
		ID:    "fig4",
		Title: "SP: impact of per-object DRAM placement (paper Fig. 4)",
		Columns: []string{"Class", "NVM config", "DRAM-only",
			"in+out buffer", "lhs", "rhs", "NVM-only"},
	}
	groups := [][]string{
		{"in_buffer", "out_buffer"},
		{"lhs"},
		{"rhs"},
	}
	base := machine.PlatformA()
	bigDRAM := int64(2) << 30 // Fig. 4 places whole objects; give DRAM room
	type cell struct {
		class, label string
		m            *machine.Machine
	}
	var cells []cell
	for _, class := range []string{"C", "D"} {
		cells = append(cells,
			cell{class, "1/2 bw", base.WithNVMBandwidthFraction(0.5).WithDRAMCapacity(bigDRAM)},
			cell{class, "4x lat", base.WithNVMLatencyFactor(4).WithDRAMCapacity(bigDRAM)})
	}
	rows := make([][]interface{}, len(cells))
	err := forEachRow(s.ctx(), s.workers(), len(cells), func(i int) error {
		c := cells[i]
		w := workloads.NewSP(c.class, s.Ranks)
		dram, err := s.runStatic(w, dramMachineFor(c.m), "dram-only", nil)
		if err != nil {
			return err
		}
		row := []interface{}{c.class, c.label, 1.00}
		for _, g := range groups {
			set := make(map[string]bool, len(g))
			for _, n := range g {
				set[n] = true
			}
			r, err := s.runStatic(w, c.m, "pin:"+strings.Join(g, "+"),
				func(o string) bool { return set[o] })
			if err != nil {
				return err
			}
			row = append(row, norm(r.TimeNS, dram.TimeNS))
		}
		nvm, err := s.runStatic(w, c.m, "nvm-only", nil)
		if err != nil {
			return err
		}
		row = append(row, norm(nvm.TimeNS, dram.TimeNS))
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"expected shape: buffers help under 1/2 bw but not 4x lat; lhs the reverse; rhs helps under both")
	return t, nil
}

// comparison runs the Fig. 9/10 basic performance test on one NVM machine.
func (s *Suite) comparison(id, title string, m *machine.Machine) (*Table, error) {
	t := &Table{
		ID:      id,
		Title:   title,
		Columns: []string{"Benchmark", "DRAM-only", "NVM-only", "X-Mem", "Unimem"},
	}
	dm := dramMachineFor(m)
	ws := s.evalSuite()
	type compRow struct{ nvm, x, u float64 }
	rows := make([]compRow, len(ws))
	err := forEachRow(s.ctx(), s.workers(), len(ws), func(i int) error {
		w := ws[i]
		dram, err := s.runStatic(w, dm, "dram-only", nil)
		if err != nil {
			return err
		}
		nvm, err := s.runStatic(w, m, "nvm-only", nil)
		if err != nil {
			return err
		}
		xm, err := s.runXMem(w, m)
		if err != nil {
			return err
		}
		uni, _, err := s.runUnimem(w, m, s.unimemConfig(m))
		if err != nil {
			return err
		}
		rows[i] = compRow{
			nvm: norm(nvm.TimeNS, dram.TimeNS),
			x:   norm(xm.TimeNS, dram.TimeNS),
			u:   norm(uni.TimeNS, dram.TimeNS),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var nvmN, xN, uN []float64
	for i, w := range ws {
		r := rows[i]
		nvmN = append(nvmN, r.nvm)
		xN = append(xN, r.x)
		uN = append(uN, r.u)
		t.AddRow(w.Name, 1.00, r.nvm, r.x, r.u)
	}
	t.AddRow(avgLabel, 1.00, mean(nvmN), mean(xN), mean(uN))
	return t, nil
}

// Fig9 regenerates Fig. 9: DRAM-only / NVM-only / X-Mem / Unimem with NVM
// at 1/2 DRAM bandwidth.
func (s *Suite) Fig9() (*Table, error) {
	m := machine.PlatformA().WithNVMBandwidthFraction(0.5)
	return s.comparison("fig9",
		"Basic performance test, NVM = 1/2 DRAM bandwidth (paper Fig. 9)", m)
}

// Fig10 regenerates Fig. 10: the same comparison with NVM at 4x latency.
func (s *Suite) Fig10() (*Table, error) {
	m := machine.PlatformA().WithNVMLatencyFactor(4)
	return s.comparison("fig10",
		"Basic performance test, NVM = 4x DRAM latency (paper Fig. 10)", m)
}

// Fig11 regenerates Fig. 11: the cumulative technique ablation — (1)
// cross-phase global search, (2) + phase-local search, (3) + partitioning,
// (4) + initial placement — reporting each technique's share of the total
// improvement over NVM-only.
func (s *Suite) Fig11() (*Table, error) {
	m := machine.PlatformA().WithNVMBandwidthFraction(0.5)
	t := &Table{
		ID:    "fig11",
		Title: "Contribution of the four techniques (paper Fig. 11), NVM = 1/2 bw",
		Columns: []string{"Benchmark", "global", "+local", "+partition",
			"+initial", "total gain vs NVM-only"},
	}
	ws := s.evalSuite()
	rows := make([][]interface{}, len(ws))
	err := forEachRow(s.ctx(), s.workers(), len(ws), func(i int) error {
		w := ws[i]
		nvm, err := s.runStatic(w, m, "nvm-only", nil)
		if err != nil {
			return err
		}
		times := []float64{float64(nvm.TimeNS)}
		for step := 1; step <= 4; step++ {
			cfg := s.unimemConfig(m)
			cfg.EnableGlobal = true
			cfg.EnableLocal = step >= 2
			cfg.EnablePartition = step >= 3
			cfg.EnableInitial = step >= 4
			res, _, err := s.runUnimem(w, m, cfg)
			if err != nil {
				return err
			}
			times = append(times, float64(res.TimeNS))
		}
		total := times[0] - times[4]
		row := []interface{}{w.Name}
		for j := 1; j <= 4; j++ {
			share := 0.0
			if total > 0 {
				share = (times[j-1] - times[j]) / total
			}
			row = append(row, fmtPct(share))
		}
		row = append(row, fmtPct((times[0]-times[4])/times[0]))
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"shares of total Unimem improvement; negative shares mean the step alone regressed and a later step recovered it")
	return t, nil
}

// Table4 regenerates Table 4: data migration details for HMS with Unimem
// (NVM = 1/2 DRAM bandwidth).
func (s *Suite) Table4() (*Table, error) {
	m := machine.PlatformA().WithNVMBandwidthFraction(0.5)
	t := &Table{
		ID:    "table4",
		Title: "Data migration details, Unimem on HMS, NVM = 1/2 bw (paper Table 4)",
		Columns: []string{"Benchmark", "Migrations", "Migrated MB",
			"Pure runtime cost", "% overlap", "Decisions"},
	}
	ws := s.evalSuite()
	rows := make([][]interface{}, len(ws))
	err := forEachRow(s.ctx(), s.workers(), len(ws), func(i int) error {
		w := ws[i]
		res, col, err := s.runUnimem(w, m, s.unimemConfig(m))
		if err != nil {
			return err
		}
		r0 := res.Ranks[0]
		cost := 0.0
		if r0.TimeNS > 0 {
			cost = r0.OverheadNS / float64(r0.TimeNS)
		}
		rows[i] = []interface{}{w.Name,
			r0.Migrations.Migrations,
			fmtMB(r0.Migrations.BytesMigrated),
			fmtPct(cost),
			fmtPct(col.OverlapFrac()),
			col.Decisions()}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes, "per-rank (rank 0) counts; paper reports per-job aggregates of the same order")
	return t, nil
}

// Fig12 regenerates Fig. 12: CG strong scaling on the Edison-like platform
// (NUMA-emulated NVM: 0.6x bandwidth, 1.89x latency), Class D.
func (s *Suite) Fig12() (*Table, error) {
	t := &Table{
		ID:      "fig12",
		Title:   "CG strong scaling, Edison-like NUMA-emulated NVM (paper Fig. 12)",
		Columns: []string{"Ranks", "DRAM-only", "NVM-only", "Unimem"},
	}
	m := machine.Edison()
	dm := dramMachineFor(m)
	scales := []int{4, 8, 16, 32, 64}
	if s.Quick {
		scales = []int{4, 16}
	}
	rows := make([][]interface{}, len(scales))
	err := forEachRow(s.ctx(), s.workers(), len(scales), func(i int) error {
		p := scales[i]
		w := workloads.NewCG("D", p)
		opts := s.opts()
		opts.Ranks = p
		dram, err := s.runWith(w, dm, opts, "dram-only")
		if err != nil {
			return err
		}
		nvm, err := s.runWith(w, m, opts, "nvm-only")
		if err != nil {
			return err
		}
		uni, err := s.runUnimemWith(w, m, s.unimemConfig(m), opts)
		if err != nil {
			return err
		}
		rows[i] = []interface{}{p, 1.00, norm(nvm.TimeNS, dram.TimeNS), norm(uni.TimeNS, dram.TimeNS)}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		t.AddRow(row...)
	}
	return t, nil
}

// Fig13 regenerates Fig. 13: Unimem's sensitivity to the DRAM size in HMS
// (128/256/512 MB), NVM = 1/2 bandwidth, Class C.
func (s *Suite) Fig13() (*Table, error) {
	t := &Table{
		ID:      "fig13",
		Title:   "Sensitivity to DRAM size, NVM = 1/2 bw (paper Fig. 13)",
		Columns: []string{"Benchmark", "NVM-only", "128MB", "256MB", "512MB"},
	}
	base := machine.PlatformA().WithNVMBandwidthFraction(0.5)
	ws := s.evalSuite()
	rows := make([][]interface{}, len(ws))
	err := forEachRow(s.ctx(), s.workers(), len(ws), func(i int) error {
		w := ws[i]
		dram, err := s.runStatic(w, dramMachineFor(base), "dram-only", nil)
		if err != nil {
			return err
		}
		nvm, err := s.runStatic(w, base, "nvm-only", nil)
		if err != nil {
			return err
		}
		row := []interface{}{w.Name, norm(nvm.TimeNS, dram.TimeNS)}
		for _, mb := range []int64{128, 256, 512} {
			m := base.WithDRAMCapacity(mb << 20)
			uni, _, err := s.runUnimem(w, m, s.unimemConfig(m))
			if err != nil {
				return err
			}
			row = append(row, norm(uni.TimeNS, dram.TimeNS))
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"expected shape: MG keeps a visible gap at 128MB (large unpartitionable arrays), everything else within ~7%")
	return t, nil
}
