// Package cluster distributes unimem-serve across peer daemons: a
// consistent-hash ring assigns every run key an owning peer, a forwarding
// client ships requests to their owner with per-peer timeout, retry,
// backoff and health tracking, and snapshot exchange (the exp package's
// versioned format over GET /snapshot → POST /snapshot/merge) lets nodes
// warm-start from each other's caches.
//
// The design principle is graceful degradation: the ring is advisory, not
// authoritative. A request whose owner is unreachable is executed locally
// after the forward gives up — a degraded cluster answers everything a
// healthy one does, just with worse cache locality — and a peer that keeps
// failing is circuit-broken so the fallback is taken immediately instead
// of after a timeout.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
)

// defaultReplicas is the virtual-node count per peer. 128 vnodes keep the
// largest/smallest arc ratio within roughly ±20% of even for the 2–8 peer
// fleets the daemon targets, while a full ring rebuild (8 peers × 128
// points, sorted) stays well under a millisecond — cheap enough to redo on
// every config reload.
const defaultReplicas = 128

// ringPoint is one virtual node: a hash position owned by a peer.
type ringPoint struct {
	hash uint64
	peer string
}

// Ring is an immutable consistent-hash ring over peer names. Peers are
// identified by their advertised base URL; every node in a cluster must be
// configured with the same peer list (order and duplicates do not matter —
// the constructor sorts and dedupes) or the nodes will disagree about
// ownership. Build with NewRing; replace wholesale on config reload.
type Ring struct {
	points []ringPoint
	peers  []string
}

// NormalizePeer canonicalizes one peer URL for ring identity: surrounding
// space and trailing slashes are insignificant, so "http://a:1/" and
// "http://a:1" name the same peer on every node regardless of how each
// operator spelled its flag.
func NormalizePeer(p string) string {
	return strings.TrimRight(strings.TrimSpace(p), "/")
}

// NewRing builds a ring over the given peers with the given virtual-node
// count per peer (replicas <= 0: the default, 128). Peer names are
// normalized, deduped and sorted, so any spelling of the same set yields
// an identical ring on every node.
func NewRing(peers []string, replicas int) *Ring {
	if replicas <= 0 {
		replicas = defaultReplicas
	}
	seen := map[string]bool{}
	var norm []string
	for _, p := range peers {
		p = NormalizePeer(p)
		if p == "" || seen[p] {
			continue
		}
		seen[p] = true
		norm = append(norm, p)
	}
	sort.Strings(norm)
	r := &Ring{peers: norm, points: make([]ringPoint, 0, len(norm)*replicas)}
	for _, p := range norm {
		for i := 0; i < replicas; i++ {
			r.points = append(r.points, ringPoint{hash: ringHash(fmt.Sprintf("%s#%d", p, i)), peer: p})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties (vanishingly rare) break by peer name so every node
		// still agrees on ownership.
		return r.points[i].peer < r.points[j].peer
	})
	return r
}

// ringHash is the ring's hash function: FNV-64a followed by a
// murmur3-style finalizer. Raw FNV is deterministic and dependency-free
// but clusters on near-identical strings — vnode names differ only in a
// trailing "#<i>", and without the avalanche step the worst peer owned
// ~2.9x its fair share of a 10k-key population; the finalizer brings that
// to ~1.3x at 128 vnodes.
func ringHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Peers returns the normalized, sorted peer list the ring was built over.
func (r *Ring) Peers() []string {
	return append([]string(nil), r.peers...)
}

// Len is the number of distinct peers on the ring.
func (r *Ring) Len() int { return len(r.peers) }

// Owner maps key to its owning peer: the first virtual node clockwise from
// the key's hash. An empty ring owns nothing ("").
func (r *Ring) Owner(key string) string {
	if r == nil || len(r.points) == 0 {
		return ""
	}
	h := ringHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].peer
}
