package core

import (
	"testing"

	"unimem/internal/mover"
	"unimem/internal/phase"
	"unimem/internal/placement"
)

// steadyRuntime builds the minimal runtime state SteadyState certifies:
// a sealed registry past the decision settle window, an adopted plan with
// no recurring schedule, no deferred one-shot moves, an idle mover, and a
// decision baseline on every compute phase.
func steadyRuntime() *Runtime {
	r := NewRuntime(0, DefaultConfig())
	reg := phase.NewRegistry()
	for i := 0; i < 5; i++ {
		reg.Begin("sweep", phase.Compute, "")
		reg.End(100)
		reg.Begin("reduce", phase.Comm, "allreduce")
		reg.End(10)
	}
	reg.Phases()[0].DecisionNS = 100
	r.reg = reg
	r.mov = mover.New(nil)
	r.plan = &placement.Plan{Strategy: "cross-phase-global"}
	r.decisionIter = 1
	return r
}

// TestSteadyStateGates exercises every entry condition of the fast path's
// manager vote: the baseline state is steady, and each disqualifying
// condition — profiling, a scheduled re-profile, no plan, deferred
// adoption moves, pending mover dependences, a recurring migration
// schedule, a busy mover queue, an unsettled decision, or a compute phase
// without a decision baseline — must individually block it.
func TestSteadyStateGates(t *testing.T) {
	if !steadyRuntime().SteadyState() {
		t.Fatal("baseline runtime not steady")
	}
	cases := []struct {
		name string
		mut  func(*Runtime)
	}{
		{"profiling", func(r *Runtime) { r.profiling = true }},
		{"reprofile scheduled", func(r *Runtime) { r.reprofileNext = true }},
		{"no plan", func(r *Runtime) { r.plan = nil }},
		{"one-shot moves deferred", func(r *Runtime) { r.oneShot[0] = []placement.Move{{}} }},
		{"tiered one-shot deferred", func(r *Runtime) { r.oneShotTiered[0] = []tieredMove{{}} }},
		{"pending mover dependence", func(r *Runtime) { r.pendingSeq[0] = 1 }},
		{"recurring schedule", func(r *Runtime) { r.plan.Schedule = []placement.Move{{}} }},
		{"mover queue busy", func(r *Runtime) { r.mov.Enqueue(nil, 0, 0) }},
		{"decision unsettled", func(r *Runtime) { r.decisionIter = r.reg.Iter() - 1 }},
		{"no decision baseline", func(r *Runtime) { r.reg.Phases()[0].DecisionNS = 0 }},
	}
	for _, tc := range cases {
		r := steadyRuntime()
		tc.mut(r)
		if r.SteadyState() {
			t.Errorf("%s: SteadyState still true", tc.name)
		}
	}
}

// TestRuntimeFastForward checks the bookkeeping replay: skipping n
// iterations advances the registry's iteration counter and charges the
// per-phase sync-check overhead the simulated path would have, while the
// adaptation history (decision count, re-profile timeline, decision
// baselines) stays untouched.
func TestRuntimeFastForward(t *testing.T) {
	r := steadyRuntime()
	iter0, over0 := r.reg.Iter(), r.overheadNS
	r.FastForward(7)
	if got := r.reg.Iter(); got != iter0+7 {
		t.Errorf("iter = %d, want %d", got, iter0+7)
	}
	want := over0 + 7*float64(len(r.reg.Phases()))*mover.SyncCheckNS
	if r.overheadNS != want {
		t.Errorf("overheadNS = %v, want %v", r.overheadNS, want)
	}
	if r.Decisions != 0 || len(r.ReprofileIters) != 0 {
		t.Errorf("fast-forward touched the adaptation history: decisions=%d reprofiles=%v",
			r.Decisions, r.ReprofileIters)
	}
	if r.reg.Phases()[0].DecisionNS != 100 {
		t.Error("fast-forward touched a decision baseline")
	}
}
