package cluster

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"unimem/internal/obs"
)

// newTestCluster builds a two-node cluster whose remote peer is the given
// httptest server, with fast timeouts suitable for tests.
func newTestCluster(peerURL string, cfg Config) *Cluster {
	cfg.Self = "http://self:1"
	cfg.Peers = []string{cfg.Self, peerURL}
	if cfg.ForwardTimeout == 0 {
		cfg.ForwardTimeout = 500 * time.Millisecond
	}
	if cfg.Backoff == 0 {
		cfg.Backoff = time.Millisecond
	}
	return New(cfg)
}

// TestForwardRetryThenSucceed: a peer that fails its first attempt is
// retried with backoff and the retried response is returned; health
// recovers to zero consecutive failures.
func TestForwardRetryThenSucceed(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			http.Error(w, "transient", http.StatusInternalServerError)
			return
		}
		io.WriteString(w, "ok:"+r.URL.RawQuery)
	}))
	defer srv.Close()

	c := newTestCluster(srv.URL, Config{Retries: 2})
	resp, err := c.Forward(context.Background(), NormalizePeer(srv.URL),
		http.MethodGet, "/run?trace=1", nil, nil)
	if err != nil {
		t.Fatalf("Forward = %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "ok:trace=1" {
		t.Fatalf("forwarded body = %q (query must propagate)", body)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("peer saw %d attempts, want 2", got)
	}
	st := c.Status()
	if len(st.Peers) != 1 || st.Peers[0].ConsecutiveFailures != 0 || !st.Peers[0].Healthy {
		t.Fatalf("peer health after recovery = %+v", st.Peers)
	}
	if st.Peers[0].Forwards != 1 || st.Peers[0].Errors != 1 {
		t.Fatalf("peer counters = %+v, want 1 forward / 1 error", st.Peers[0])
	}
}

// TestForwardGivesUpAndProxies4xx: exhausted retries return an error (the
// local-fallback trigger), while a 4xx is proxied verbatim without
// counting as a peer failure.
func TestForwardGivesUpAndProxies4xx(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/bad" {
			http.Error(w, "your fault", http.StatusBadRequest)
			return
		}
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	defer srv.Close()
	peer := NormalizePeer(srv.URL)

	c := newTestCluster(srv.URL, Config{Retries: 1})
	if _, err := c.Forward(context.Background(), peer, http.MethodPost, "/run", nil, []byte("{}")); err == nil {
		t.Fatal("Forward to a 500ing peer succeeded, want give-up error")
	} else if !strings.Contains(err.Error(), "2 attempts") {
		t.Fatalf("give-up error %q does not mention attempts", err)
	}

	resp, err := c.Forward(context.Background(), peer, http.MethodGet, "/bad", nil, nil)
	if err != nil {
		t.Fatalf("4xx forward = %v, want proxied response", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("proxied status = %d", resp.StatusCode)
	}
	st := c.Status().Peers[0]
	if st.ConsecutiveFailures != 0 {
		t.Fatalf("4xx counted as failure: %+v", st)
	}
}

// TestForwardOwnerTimesOut: a peer that hangs past the per-attempt timeout
// yields a give-up error — the signal the serving layer turns into local
// execution — and the elapsed time reflects timeout*attempts, not the hang.
func TestForwardOwnerTimesOut(t *testing.T) {
	release := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release
	}))
	// Release the hung handler before srv.Close (defers run LIFO), or
	// Close would wait on it forever.
	defer srv.Close()
	defer close(release)

	c := newTestCluster(srv.URL, Config{ForwardTimeout: 50 * time.Millisecond, Retries: 1})
	start := time.Now()
	_, err := c.Forward(context.Background(), NormalizePeer(srv.URL), http.MethodGet, "/run", nil, nil)
	if err == nil {
		t.Fatal("Forward to a hung peer succeeded")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("forward took %v; per-attempt timeout did not bound the hang", elapsed)
	}
}

// TestBreakerOpensAndCoolsDown: enough consecutive failures open the
// breaker (Available false → the serving layer skips the forward), and the
// cooldown closes it again for the next probe.
func TestBreakerOpensAndCoolsDown(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	defer srv.Close()
	peer := NormalizePeer(srv.URL)

	c := newTestCluster(srv.URL, Config{
		Retries: 0, BreakerThreshold: 3, BreakerCooldown: 50 * time.Millisecond,
	})
	if !c.Available(peer) {
		t.Fatal("fresh peer not available")
	}
	for i := 0; i < 3; i++ {
		if _, err := c.Forward(context.Background(), peer, http.MethodGet, "/run", nil, nil); err == nil {
			t.Fatal("want forward failure")
		}
	}
	if c.Available(peer) {
		t.Fatal("breaker did not open after 3 consecutive failures")
	}
	if st := c.Status().Peers[0]; st.Healthy || st.ConsecutiveFailures != 3 || st.LastError == "" {
		t.Fatalf("status while broken = %+v", st)
	}
	time.Sleep(60 * time.Millisecond)
	if !c.Available(peer) {
		t.Fatal("breaker did not cool down")
	}
}

// TestRecordFallbackAndMetrics: fallback/skip accounting reaches both the
// per-peer counters and the obs instruments with the right outcome labels.
func TestRecordFallbackAndMetrics(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	}))
	defer srv.Close()
	peer := NormalizePeer(srv.URL)

	reg := obs.NewRegistry()
	c := newTestCluster(srv.URL, Config{})
	c.Requests = reg.CounterVec("unimem_cluster_peer_requests_total", "t", "peer", "outcome")
	c.ForwardSeconds = reg.HistogramVec("unimem_cluster_forward_seconds", "t", nil, "peer")

	resp, err := c.Forward(context.Background(), peer, http.MethodGet, "/run", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	c.RecordFallback(peer, false)
	c.RecordFallback(peer, true)

	if got := c.Requests.With(peer, "ok").Value(); got != 1 {
		t.Fatalf("ok counter = %d", got)
	}
	if got := c.Requests.With(peer, "fallback").Value(); got != 1 {
		t.Fatalf("fallback counter = %d", got)
	}
	if got := c.Requests.With(peer, "skipped").Value(); got != 1 {
		t.Fatalf("skipped counter = %d", got)
	}
	if got := c.ForwardSeconds.With(peer).Count(); got != 1 {
		t.Fatalf("forward histogram count = %d", got)
	}
	if st := c.Status().Peers[0]; st.Fallbacks != 2 {
		t.Fatalf("fallback count in status = %d", st.Fallbacks)
	}
}

// TestOwnerAndSetPeers: Owner resolves locality, and a SetPeers reload
// rebuilds the ring while keeping surviving peers' health records.
func TestOwnerAndSetPeers(t *testing.T) {
	self := "http://self:1"
	c := New(Config{Self: self, Peers: []string{self, "http://b:1", "http://c:1"}})

	sawLocal, sawRemote := false, false
	for _, k := range ringKeys(200) {
		peer, local := c.Owner(k)
		if local {
			if peer != self && peer != "" {
				t.Fatalf("local ownership of %q reported peer %q", k, peer)
			}
			sawLocal = true
		} else {
			if peer == self || peer == "" {
				t.Fatalf("remote ownership of %q reported %q", k, peer)
			}
			sawRemote = true
		}
	}
	if !sawLocal || !sawRemote {
		t.Fatalf("ownership never split: local=%v remote=%v", sawLocal, sawRemote)
	}

	c.markFailure("http://b:1", context.DeadlineExceeded)
	c.SetPeers([]string{self, "http://b:1", "http://d:1"}, 0)
	st := c.Status()
	if len(st.Peers) != 2 {
		t.Fatalf("peers after reload = %+v", st.Peers)
	}
	if st.Peers[0].URL != "http://b:1" || st.Peers[0].Errors != 1 {
		t.Fatalf("surviving peer lost its health record: %+v", st.Peers[0])
	}
	if _, local := c.Owner("anything"); local {
		_ = local // ownership may be local or remote; just exercise the reloaded ring
	}

	// Single-node and nil clusters are always local.
	solo := New(Config{Self: self, Peers: []string{self}})
	if _, local := solo.Owner("k"); !local {
		t.Fatal("single-node cluster not local")
	}
	var nilC *Cluster
	if _, local := nilC.Owner("k"); !local {
		t.Fatal("nil cluster not local")
	}
}
