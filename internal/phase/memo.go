package phase

// Memo is the per-run phase-outcome memo table of the analytic fast
// path: outcomes keyed by the full PhaseKey (content x placement x
// machine), plus per-phase-position streak tracking that measures how
// long every position has been re-presenting the same key — the
// stability signal the fast-forward entry condition consumes.
//
// Memo is used by a single rank coroutine; it is not safe for
// concurrent use. A nil *Memo no-ops and reports zero stability, so the
// exact-simulation path carries a single pointer check.
type Memo struct {
	entries map[Key]float64
	slots   []memoSlot
	hits    int64
	misses  int64
}

// memoSlot tracks one phase position's key history across iterations.
type memoSlot struct {
	lastKey Key
	streak  int // consecutive iterations presenting lastKey
}

// NewMemo returns an empty memo table.
func NewMemo() *Memo {
	return &Memo{entries: make(map[Key]float64)}
}

// Observe records one phase execution's key and measured duration at
// phase position pos, and reports whether the outcome was already
// memoized under that key (a memo hit). The streak for pos grows when
// the key repeats and resets to 1 when it changes, so a position's
// streak is the number of consecutive iterations (including this one)
// that produced this exact key.
func (m *Memo) Observe(pos int, key Key, durNS float64) bool {
	if m == nil {
		return false
	}
	for len(m.slots) <= pos {
		m.slots = append(m.slots, memoSlot{})
	}
	s := &m.slots[pos]
	if s.lastKey == key {
		s.streak++
	} else {
		s.lastKey = key
		s.streak = 1
	}
	if prev, ok := m.entries[key]; ok && prev == durNS {
		m.hits++
		return true
	}
	m.entries[key] = durNS
	m.misses++
	return false
}

// StableIters returns the number of consecutive completed iterations
// over which every observed phase position re-presented the same key —
// the minimum streak across positions (0 with no observations).
func (m *Memo) StableIters() int {
	if m == nil || len(m.slots) == 0 {
		return 0
	}
	min := m.slots[0].streak
	for _, s := range m.slots[1:] {
		if s.streak < min {
			min = s.streak
		}
	}
	return min
}

// Hits returns the number of memo hits observed.
func (m *Memo) Hits() int64 {
	if m == nil {
		return 0
	}
	return m.hits
}

// Misses returns the number of memo misses (first sightings) observed.
func (m *Memo) Misses() int64 {
	if m == nil {
		return 0
	}
	return m.misses
}
