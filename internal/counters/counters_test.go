package counters

import (
	"math"
	"testing"

	"unimem/internal/machine"
)

func sampler(seed uint64) *Sampler {
	s := NewSampler(machine.PlatformA(), Default(), seed)
	s.Enable()
	return s
}

func traffic(acc int64, svcNS float64) []ChunkTraffic {
	return []ChunkTraffic{{
		Chunk: "o", Object: "o", Accesses: acc, ServiceNS: svcNS,
		ReadFrac: 0.8, Pattern: machine.Stream,
	}}
}

func TestDisabledSamplerReturnsNil(t *testing.T) {
	s := NewSampler(machine.PlatformA(), Default(), 1)
	if s.Sample(1e6, traffic(1000, 5e5)) != nil {
		t.Fatal("disabled sampler must not profile")
	}
	s.Enable()
	if s.Sample(1e6, traffic(1000, 5e5)) == nil {
		t.Fatal("enabled sampler must profile")
	}
	s.Disable()
	if s.Enabled() {
		t.Fatal("Disable did not stick")
	}
}

func TestSampleUndercounts(t *testing.T) {
	s := sampler(2)
	const acc = 1 << 20
	ps := s.Sample(1e7, traffic(acc, 5e6))
	got := ps.Objects[0].SampledAccesses
	// Capture ratio 0.80 with 3% jitter: expect within [0.7, 0.92].
	ratio := float64(got) / acc
	if ratio < 0.70 || ratio > 0.92 {
		t.Fatalf("sampled/true = %v, want ~0.80", ratio)
	}
	if got >= acc {
		t.Fatal("sampling must undercount (prefetch/eviction blindness)")
	}
}

func TestBusyFraction(t *testing.T) {
	s := sampler(3)
	ps := s.Sample(1e7, traffic(1<<20, 2.5e6)) // object busy 25% of phase
	o := ps.Objects[0]
	frac := float64(o.BusySamples) / float64(ps.TotalSamples)
	if math.Abs(frac-0.25) > 0.05 {
		t.Fatalf("busy fraction %v, want ~0.25", frac)
	}
}

func TestTotalSamplesMatchPeriod(t *testing.T) {
	m := machine.PlatformA()
	s := sampler(4)
	durNS := 1e7
	ps := s.Sample(durNS, nil)
	want := int64(durNS / m.SamplePeriodNS())
	if ps.TotalSamples != want {
		t.Fatalf("samples = %d, want %d", ps.TotalSamples, want)
	}
	// 1000 cycles at 2.4GHz ~ 417ns.
	if math.Abs(m.SamplePeriodNS()-416.67) > 1 {
		t.Fatalf("sample period %v ns", m.SamplePeriodNS())
	}
}

func TestOverheadCharged(t *testing.T) {
	s := sampler(5)
	ps := s.Sample(1e7, nil)
	if ps.OverheadNS <= 0 || ps.OverheadNS > 1e7 {
		t.Fatalf("overhead %v", ps.OverheadNS)
	}
	want := 1e7 * Default().OverheadFrac
	if math.Abs(ps.OverheadNS-want) > 1 {
		t.Fatalf("overhead %v, want %v", ps.OverheadNS, want)
	}
}

func TestZeroTrafficSkipped(t *testing.T) {
	s := sampler(6)
	ps := s.Sample(1e6, []ChunkTraffic{{Chunk: "z", Accesses: 0}})
	if len(ps.Objects) != 0 {
		t.Fatal("zero-access chunks must not appear in the profile")
	}
}

func TestDeterminism(t *testing.T) {
	a := sampler(42)
	b := sampler(42)
	pa := a.Sample(1e7, traffic(1<<20, 5e6))
	pb := b.Sample(1e7, traffic(1<<20, 5e6))
	if pa.Objects[0].SampledAccesses != pb.Objects[0].SampledAccesses ||
		pa.Objects[0].BusySamples != pb.Objects[0].BusySamples {
		t.Fatal("same seed must reproduce identical profiles")
	}
	c := sampler(43)
	pc := c.Sample(1e7, traffic(1<<20, 5e6))
	if pc.Objects[0].SampledAccesses == pa.Objects[0].SampledAccesses {
		t.Fatal("different seeds should jitter differently")
	}
}

func TestBusyNeverExceedsTotal(t *testing.T) {
	s := sampler(7)
	// Service time longer than the phase (overlapped traffic): busy
	// fraction must clamp at 1.
	ps := s.Sample(1e6, traffic(1<<20, 5e6))
	o := ps.Objects[0]
	if o.BusySamples > ps.TotalSamples {
		t.Fatalf("busy %d > total %d", o.BusySamples, ps.TotalSamples)
	}
}

func TestConfigFillDefaults(t *testing.T) {
	var c Config
	c.fill()
	if c.CaptureRatio != 0.80 || c.JitterSigma != 0.03 || c.OverheadFrac != 0.35 {
		t.Fatalf("filled config %+v", c)
	}
}

func TestMetadataPropagated(t *testing.T) {
	s := sampler(8)
	ps := s.Sample(1e6, []ChunkTraffic{{
		Chunk: "a[3]", Object: "a", ChunkIndex: 3,
		Accesses: 1000, ServiceNS: 1e5, ReadFrac: 0.6, Pattern: machine.Random,
	}})
	o := ps.Objects[0]
	if o.Chunk != "a[3]" || o.Object != "a" || o.ChunkIndex != 3 ||
		o.ReadFrac != 0.6 || o.Pattern != machine.Random {
		t.Fatalf("metadata lost: %+v", o)
	}
}
