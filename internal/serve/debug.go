package serve

import (
	"net/http"
	"sync"
	"time"
)

// This file is the daemon's run audit trail: GET /debug/runs answers the
// last N executed requests (run/batch/fleet) as structured summaries —
// request ID, what ran, how long it took, cache attribution, and the
// regret figure when the request carried an attribution document. The
// ring is the operational join point for the explain layer: a slow-request
// log line's request ID looks up its run record here, and the record's
// regret/migration counts say whether the slowness was placement work or
// just a cold simulation. The buffer honors -no-metrics exactly like
// /metrics does: disabled observability means no recording and no route.

// runRecord is one /debug/runs row: the completed request's summary,
// filled partly by the handler (what ran) and partly by the instrument
// middleware (identity, timing, status).
type runRecord struct {
	// RequestID matches the X-Request-Id header and the request log.
	RequestID string `json:"request_id"`
	Endpoint  string `json:"endpoint"`
	// At is the request start time (RFC 3339, UTC). It is rendered from
	// at when /debug/runs is read — formatting on the request path costs
	// more than the whole ring insert.
	At string    `json:"at"`
	at time.Time `json:"-"`
	// DurationMS is the request's wall-clock service time.
	DurationMS float64 `json:"duration_ms"`
	Status     int     `json:"status"`
	// Cache is the run-cache attribution: "hit", "miss" or "none".
	Cache string `json:"cache"`
	// Workload/Strategy echo what ran (single-job /run requests only).
	Workload string `json:"workload,omitempty"`
	Strategy string `json:"strategy,omitempty"`
	// Jobs counts the request's jobs (1 for /run).
	Jobs int `json:"jobs,omitempty"`
	// TimeNS is the run's simulated execution time (/run only).
	TimeNS int64 `json:"time_ns,omitempty"`
	// Migrations totals the run's migration count (/run only).
	Migrations int `json:"migrations,omitempty"`
	// RegretFrac is the attribution document's regret fraction, present
	// when the request ran with ?explain=1 under the Unimem strategy.
	RegretFrac *float64 `json:"regret_frac,omitempty"`
	Error      string   `json:"error,omitempty"`
}

// debugRuns is a fixed-capacity ring of the most recent run records.
// A nil *debugRuns (metrics disabled) no-ops.
type debugRuns struct {
	mu    sync.Mutex
	buf   []runRecord
	next  int
	total int64
}

// defaultDebugRunHistory is the ring capacity when the config leaves it 0.
const defaultDebugRunHistory = 64

func newDebugRuns(size int) *debugRuns {
	if size <= 0 {
		size = defaultDebugRunHistory
	}
	return &debugRuns{buf: make([]runRecord, 0, size)}
}

// add appends one completed request, evicting the oldest at capacity.
func (d *debugRuns) add(rec runRecord) {
	if d == nil {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.total++
	if len(d.buf) < cap(d.buf) {
		d.buf = append(d.buf, rec)
		return
	}
	d.buf[d.next] = rec
	d.next = (d.next + 1) % cap(d.buf)
}

// snapshot returns the retained records, newest first.
func (d *debugRuns) snapshot() (recs []runRecord, total int64) {
	if d == nil {
		return nil, 0
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	recs = make([]runRecord, 0, len(d.buf))
	// The ring's oldest entry is at next once it has wrapped; walk
	// backwards from the newest.
	for i := 0; i < len(d.buf); i++ {
		idx := (d.next - 1 - i + len(d.buf)) % len(d.buf)
		rec := d.buf[idx]
		rec.At = rec.at.UTC().Format(time.RFC3339Nano)
		recs = append(recs, rec)
	}
	return recs, d.total
}

// debugRunsResponse is GET /debug/runs's body.
type debugRunsResponse struct {
	// Capacity is the ring size; Total counts every request recorded
	// since startup (Total - Capacity have been evicted).
	Capacity int         `json:"capacity"`
	Total    int64       `json:"total"`
	Runs     []runRecord `json:"runs"`
}

// handleDebugRuns answers the retained run summaries, newest first.
func (s *Server) handleDebugRuns(w http.ResponseWriter, r *http.Request) {
	recs, total := s.debug.snapshot()
	if recs == nil {
		recs = []runRecord{}
	}
	writeJSON(w, debugRunsResponse{Capacity: cap(s.debug.buf), Total: total, Runs: recs})
}
