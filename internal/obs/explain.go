package obs

import (
	"encoding/json"
	"sync"
)

// Explain is the decision-attribution recorder: it accumulates, during one
// run, the cost-model term breakdown behind every placement decision, an
// audit record for every migration, the variation monitor's re-profile
// triggers, and finally a regret figure against the oracle-best static
// placement. The instrumented code (harness, runtime, mover observer)
// threads an *Explain unconditionally and calls it at the points where
// decisions happen; like Trace, every method nil-checks its receiver, so
// the disabled path costs one pointer comparison and records nothing.
//
// Attribution never changes simulated time or results, and is excluded
// from run-cache keys.
type Explain struct {
	mu  sync.Mutex
	doc ExplainDoc
}

// NewExplain returns an empty recorder.
func NewExplain() *Explain { return &Explain{} }

// ExplainDoc is the exported attribution document for one run.
type ExplainDoc struct {
	// RunID joins the document to transport-level identity: the daemon
	// sets it to the request's X-Request-Id.
	RunID    string `json:"run_id,omitempty"`
	Workload string `json:"workload,omitempty"`
	Machine  string `json:"machine,omitempty"`
	Strategy string `json:"strategy,omitempty"`
	// Iterations is the workload's (possibly quick-capped) iteration count.
	Iterations int `json:"iterations,omitempty"`
	// RealizedNS is the run's application execution time (slowest rank).
	RealizedNS int64 `json:"realized_ns,omitempty"`

	Decisions    []DecisionRecord    `json:"decisions,omitempty"`
	Migrations   []MigrationRecord   `json:"migrations,omitempty"`
	Reprofiles   []ReprofileRecord   `json:"reprofiles,omitempty"`
	FastForwards []FastForwardRecord `json:"fastforwards,omitempty"`
	Regret       *RegretRecord       `json:"regret,omitempty"`
}

// DecisionRecord is one placement decision (the first profile-driven one,
// or a re-decision after drift) with its full model attribution.
type DecisionRecord struct {
	// Decision is the 1-based decision ordinal on the recorded rank.
	Decision int `json:"decision"`
	// Iter is the completed-iteration count when the decision was taken.
	Iter int `json:"iter"`
	// Trigger is "profile" for the first decision, "drift" afterwards.
	Trigger string `json:"trigger"`
	// Solver names the winning search or knapsack variant.
	Solver string `json:"solver"`
	// PredictedIterNS is the model-predicted steady-state iteration time
	// of the chosen placement (0 on the N-tier path, which predicts total
	// weight instead — see TotalWeightNS).
	PredictedIterNS float64 `json:"predicted_iter_ns,omitempty"`
	// TotalWeightNS is the N-tier knapsack's objective value.
	TotalWeightNS float64 `json:"total_weight_ns,omitempty"`
	// OracleIterNS is the model-predicted iteration time of the
	// clairvoyant best static placement (no adoption cost), the per-
	// iteration baseline the regret figure compares against.
	OracleIterNS float64 `json:"oracle_iter_ns,omitempty"`
	// ModelNS is the modeling+solver cost charged to the critical path.
	ModelNS float64 `json:"model_ns"`

	// Phases is the per-phase Eq. 1-3 term breakdown.
	Phases []TermBreakdown `json:"phases,omitempty"`
	// Alternatives are the candidate plans the two-search pipeline
	// considered, winner included (two-tier path).
	Alternatives []AlternativeRecord `json:"alternatives,omitempty"`
	// Rejected are the top chunk-level assignments the N-tier knapsack
	// priced out of their individually best tier (N-tier path).
	Rejected []RejectedChoice `json:"rejected,omitempty"`
}

// TermBreakdown is one phase's model view at decision time.
type TermBreakdown struct {
	Phase int    `json:"phase"`
	Name  string `json:"name"`
	Kind  string `json:"kind"`
	// DurNS is the phase duration measured during the profiling iteration.
	DurNS float64 `json:"dur_ns"`
	// BenefitNS sums the Eq. 2/3 benefit of the chunks chosen for fast
	// tiers in this phase.
	BenefitNS float64     `json:"benefit_ns"`
	Chunks    []ChunkTerm `json:"chunks,omitempty"`
}

// ChunkTerm is one chunk's Eq. 1-3 attribution within a phase.
type ChunkTerm struct {
	Chunk string `json:"chunk"`
	// Sensitivity is the Eq. 1 classification: bandwidth, latency, mixed.
	Sensitivity string `json:"sensitivity"`
	// BWBps is the chunk's consumed main-memory bandwidth (Eq. 1).
	BWBps float64 `json:"bw_bps"`
	// BenefitNS is the predicted per-execution gain of fast-tier
	// residency (Eq. 2/3).
	BenefitNS float64 `json:"benefit_ns"`
	// Chosen reports whether the adopted placement granted the chunk a
	// fast tier for this phase.
	Chosen bool `json:"chosen"`
}

// AlternativeRecord is one candidate plan of the two-search pipeline.
type AlternativeRecord struct {
	Strategy        string  `json:"strategy"`
	PredictedIterNS float64 `json:"predicted_iter_ns"`
	// DeltaNS is this plan's predicted iteration time minus the winner's
	// (0 for the winner; the marginal cost of picking this plan instead).
	DeltaNS float64 `json:"delta_ns"`
	Moves   int     `json:"moves"`
	Chosen  bool    `json:"chosen,omitempty"`
}

// RejectedChoice is one chunk the N-tier knapsack denied its individually
// best tier for capacity reasons.
type RejectedChoice struct {
	Chunk      string `json:"chunk"`
	ChosenTier int    `json:"chosen_tier"`
	BestTier   int    `json:"best_tier"`
	// DeltaNS is the per-iteration weight forgone by the denial.
	DeltaNS float64 `json:"delta_ns"`
}

// MigrationRecord is one completed (or failed) migration with its trigger
// and realized-vs-predicted cost.
type MigrationRecord struct {
	Chunk string `json:"chunk"`
	From  string `json:"from"`
	To    string `json:"to"`
	Bytes int64  `json:"bytes"`
	// Trigger classifies the move: "adoption" (first decision's one-time
	// moves), "reprofile" (a re-decision's adoption after drift), or
	// "steady-state" (the recurring per-iteration schedule).
	Trigger string `json:"trigger"`
	StartNS int64  `json:"start_ns"`
	EndNS   int64  `json:"end_ns"`
	// PredictedNS is the Eq. 4 raw copy-time estimate priced at enqueue.
	PredictedNS float64 `json:"predicted_ns"`
	// RealizedNS is the copy time the virtual timeline actually charged
	// (EndNS-StartNS includes queueing behind earlier moves).
	RealizedNS int64  `json:"realized_ns"`
	Failed     bool   `json:"failed,omitempty"`
	Error      string `json:"error,omitempty"`
}

// ReprofileRecord is one variation-monitor trigger.
type ReprofileRecord struct {
	// Iter is the completed-iteration count at which drift was detected.
	Iter  int    `json:"iter"`
	Phase string `json:"phase"`
	// Variation is the relative duration drift that tripped the monitor.
	Variation float64 `json:"variation"`
	Threshold float64 `json:"threshold"`
}

// FastForwardRecord is one analytic fast-forward event: a stable window
// of iterations the harness skipped without simulation, advancing the
// virtual clock in one step.
type FastForwardRecord struct {
	// EntryIter is the iteration index at which fast-forward engaged.
	EntryIter int `json:"entry_iter"`
	// ExitIter is the first iteration simulated again (EntryIter + Iters;
	// equals the workload's iteration count when the run ended inside the
	// window).
	ExitIter int `json:"exit_iter"`
	// Iters is the number of iterations computed analytically.
	Iters int `json:"iters"`
	// ClockDeltaNS is the virtual time the skipped window spanned on the
	// recorded rank.
	ClockDeltaNS int64 `json:"clock_delta_ns"`
}

// RegretRecord compares the run's realized execution time against the
// oracle-best static placement priced by the same memoized model.
type RegretRecord struct {
	RealizedNS int64 `json:"realized_ns"`
	// OracleNS is the model-predicted total time of the clairvoyant best
	// static placement: the per-decision oracle iteration times averaged
	// and scaled to the run's iteration count.
	OracleNS int64 `json:"oracle_ns"`
	// RegretNS is RealizedNS - OracleNS: what adapting online cost over
	// placing perfectly up front. Near zero is ideal; negative means the
	// model's oracle underestimates (itself a diagnostic).
	RegretNS int64 `json:"regret_ns"`
	// RegretFrac is RegretNS / OracleNS.
	RegretFrac float64 `json:"regret_frac"`
}

// SetRunID stamps the document with a transport-level identity.
func (e *Explain) SetRunID(id string) {
	if e == nil {
		return
	}
	e.mu.Lock()
	e.doc.RunID = id
	e.mu.Unlock()
}

// RunID returns the stamped identity ("" when unset or e is nil).
func (e *Explain) RunID() string {
	if e == nil {
		return ""
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.doc.RunID
}

// AddDecision appends one decision record.
func (e *Explain) AddDecision(d DecisionRecord) {
	if e == nil {
		return
	}
	e.mu.Lock()
	e.doc.Decisions = append(e.doc.Decisions, d)
	e.mu.Unlock()
}

// AddMigration appends one migration audit record.
func (e *Explain) AddMigration(m MigrationRecord) {
	if e == nil {
		return
	}
	e.mu.Lock()
	e.doc.Migrations = append(e.doc.Migrations, m)
	e.mu.Unlock()
}

// AddReprofile appends one variation-monitor trigger record.
func (e *Explain) AddReprofile(r ReprofileRecord) {
	if e == nil {
		return
	}
	e.mu.Lock()
	e.doc.Reprofiles = append(e.doc.Reprofiles, r)
	e.mu.Unlock()
}

// AddFastForward appends one analytic fast-forward event.
func (e *Explain) AddFastForward(entryIter, exitIter int, clockDeltaNS int64) {
	if e == nil {
		return
	}
	e.mu.Lock()
	e.doc.FastForwards = append(e.doc.FastForwards, FastForwardRecord{
		EntryIter:    entryIter,
		ExitIter:     exitIter,
		Iters:        exitIter - entryIter,
		ClockDeltaNS: clockDeltaNS,
	})
	e.mu.Unlock()
}

// Finish stamps the run's identity and realized outcome, and derives the
// regret figure from the recorded decisions' oracle baselines. Safe to
// call once per run, after the result is known.
func (e *Explain) Finish(workload, machine, strategy string, realizedNS int64, iterations int) {
	if e == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.doc.Workload = workload
	e.doc.Machine = machine
	e.doc.Strategy = strategy
	e.doc.RealizedNS = realizedNS
	e.doc.Iterations = iterations

	// Oracle per-iteration baseline: the mean across decisions (under
	// drift, each re-decision re-prices the oracle against the fresh
	// profile; averaging weights every regime the run saw).
	var sum float64
	var n int
	for _, d := range e.doc.Decisions {
		if d.OracleIterNS > 0 {
			sum += d.OracleIterNS
			n++
		}
	}
	if n == 0 || iterations <= 0 {
		return
	}
	oracle := int64(sum / float64(n) * float64(iterations))
	if oracle <= 0 {
		return
	}
	e.doc.Regret = &RegretRecord{
		RealizedNS: realizedNS,
		OracleNS:   oracle,
		RegretNS:   realizedNS - oracle,
		RegretFrac: float64(realizedNS-oracle) / float64(oracle),
	}
}

// Doc returns a snapshot copy of the document (nil when e is nil).
func (e *Explain) Doc() *ExplainDoc {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	cp := e.doc
	cp.Decisions = append([]DecisionRecord(nil), e.doc.Decisions...)
	cp.Migrations = append([]MigrationRecord(nil), e.doc.Migrations...)
	cp.Reprofiles = append([]ReprofileRecord(nil), e.doc.Reprofiles...)
	cp.FastForwards = append([]FastForwardRecord(nil), e.doc.FastForwards...)
	if e.doc.Regret != nil {
		r := *e.doc.Regret
		cp.Regret = &r
	}
	return &cp
}

// MarshalJSON exports the document snapshot.
func (e *Explain) MarshalJSON() ([]byte, error) {
	if e == nil {
		return []byte("null"), nil
	}
	return json.Marshal(e.Doc())
}
