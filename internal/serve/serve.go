// Package serve is the library's long-lived service front end: an
// HTTP/JSON daemon (cmd/unimem-serve) that owns a pool of Sessions — one
// per distinct machine, sharded by performance fingerprint — over one
// shared, bounded, disk-persistent RunCache, so many clients' repeated
// deterministic runs execute once per process lifetime and survive
// restarts via versioned snapshots.
//
// Endpoints:
//
//	POST /run    one job on one platform -> one JSON outcome + cache counters
//	POST /batch  a job list -> NDJSON outcomes, streamed in job order
//	POST /fleet  scenario-generator-driven runs -> NDJSON outcomes
//	GET  /stats  cache, snapshot and per-session calibration introspection
//	GET  /metrics Prometheus text exposition (request latency histograms
//	              per endpoint x cache attribution, cache/pool gauges,
//	              mpisim event-core counters, fleet regret telemetry)
//	GET  /debug/runs ring buffer of the last N run summaries (request ID,
//	              timing, cache attribution, regret) for post-hoc joins
//	GET  /healthz liveness probe (echoes the build version)
//	GET  /readyz  readiness probe: 503 while a snapshot is merging or the
//	              daemon is draining on SIGTERM, 200 otherwise
//	GET  /snapshot         the run cache as a versioned snapshot document
//	POST /snapshot/merge   merge a peer's snapshot document into the live
//	              cache (newer completed run wins; in-flight never merged)
//
// With a cluster installed (SetCluster; -self/-peers on the daemon), /run
// requests whose route key hashes to another peer are forwarded there and
// proxied back; an unreachable or circuit-broken owner degrades to local
// execution, so a partitioned cluster answers everything — just with
// worse cache locality. The responding node is named in X-Unimem-Node.
//
// Every request carries an X-Request-Id (also attached to error bodies
// and log lines); POST /run?trace=1 additionally returns the run's span
// timeline as Chrome trace-event JSON in the response's "trace" field,
// and POST /run?explain=1 returns the run's decision-attribution document
// (per-phase Eq. 1-4 cost terms, rejected alternatives, migration audit
// trail, regret vs the oracle-best static placement) in the "explain"
// field, with the request ID stamped into both documents.
//
// Every request is bounded by its own context: a disconnecting client
// aborts the in-flight simulated worlds exactly like a cancelled library
// caller (the same plumbing Session.Run uses). /batch and /fleet stream
// through Session.Stream's bounded window, so arbitrarily large fleets
// hold O(window) results in memory.
package serve

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"unimem"
	"unimem/internal/app"
	"unimem/internal/cluster"
	"unimem/internal/exp"
	"unimem/internal/lru"
)

// Config parameterizes a Server.
type Config struct {
	// CacheDir is the snapshot directory: the run cache loads from
	// CacheDir/runcache.json at startup and saves there on SaveCache /
	// Close ("" disables persistence).
	CacheDir string
	// MaxEntries / MaxBytes bound the run cache (0: unbounded); eviction
	// is least-recently-used.
	MaxEntries int
	MaxBytes   int64
	// Workers is each session's worker-pool width (0: GOMAXPROCS).
	Workers int
	// Window is each session's Stream window (0: library default).
	Window int
	// Quick caps workload iteration counts — fast, less faithful runs.
	Quick bool
	// Seed is the harness seed applied to jobs that carry none (0: the
	// library's default seed).
	Seed uint64
	// Logf receives operational log lines (nil: silent).
	Logf func(format string, args ...any)
	// Logger receives structured request logs: completions at Debug,
	// slow requests and 5xx responses at Warn (nil: discarded).
	Logger *slog.Logger
	// DisableMetrics turns off the /metrics registry and all request
	// instrumentation (request IDs and logging stay on).
	DisableMetrics bool
	// MaxSessions bounds the session pool (0: the default, 64).
	MaxSessions int
	// SlowRequest is the latency above which a request logs at Warn
	// (0: 30s).
	SlowRequest time.Duration
	// DebugRunHistory sizes the /debug/runs ring of recent run summaries
	// (0: 64). The ring, like /metrics, is off under DisableMetrics.
	DebugRunHistory int
}

// snapshotFileName is the cache snapshot inside CacheDir.
const snapshotFileName = "runcache.json"

// maxPoolSessions bounds the session pool; least-recently-used machines
// are evicted (their memoized calibration is the only loss — the run
// cache is shared and unaffected).
const maxPoolSessions = 64

// maxBatchJobs bounds one /batch request.
const maxBatchJobs = 4096

// maxFleetCount bounds /fleet's scenarios-per-archetype.
const maxFleetCount = 32

// maxFleetStrategies bounds /fleet's strategy list: together with
// maxFleetCount and the six archetypes it caps a fleet's total job count
// (6 x 32 x 16 = 3072, under the batch limit).
const maxFleetStrategies = 16

// poolEntry is one pooled session.
type poolEntry struct {
	name string
	fp   string
	m    *unimem.Machine
	sess *unimem.Session
	runs atomic.Int64
}

// Server routes the service endpoints over a session pool and the shared
// run cache. Safe for concurrent use; construct with New.
type Server struct {
	cfg     Config
	cache   *unimem.RunCache
	loaded  int
	started time.Time
	metrics *serverMetrics
	// debug is the /debug/runs ring (nil when metrics are disabled — the
	// audit trail honors -no-metrics exactly like /metrics does).
	debug *debugRuns
	// cluster, when installed via SetCluster, routes /run requests to
	// their ring owner (nil: single-node, everything local).
	cluster *cluster.Cluster
	// draining flips on SIGTERM (SetDraining): /readyz answers 503 so load
	// balancers stop sending while in-flight requests finish.
	draining atomic.Bool
	// readyMu guards the readiness blockers and the snapshot/merge
	// bookkeeping below (cluster.go).
	readyMu       sync.Mutex
	readyBlockers map[string]int
	lastSave      time.Time
	lastSaveCount int
	lastMerge     time.Time
	lastMergeSt   exp.MergeStats
	mergeCount    int
	mergeAdded    int
	mergeReplaced int

	mu       sync.Mutex
	sessions *lru.Table[string, *poolEntry]
	// inflight gauges the run/batch/fleet handlers currently executing
	// (exposed on /stats; a cancelled batch must drive it back to zero
	// promptly — the regression the cancellation test pins). Guarded by
	// mu, NOT an atomic: /stats must read the gauge and the session list
	// in one consistent snapshot, so a scrape during a draining batch
	// can never pair a stale in-flight count with an already-updated pool
	// (or report sessions the drain has evicted).
	inflight int64

	mux *http.ServeMux
}

// New builds a Server: a bounded (or unbounded) run cache, warm-started
// from CacheDir's snapshot when one is present and compatible (an
// unreadable or version-mismatched snapshot logs a warning and serves
// cold — it is never an error to start without one).
func New(cfg Config) (*Server, error) {
	if cfg.MaxEntries < 0 || cfg.MaxBytes < 0 {
		return nil, fmt.Errorf("serve: negative cache budget")
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.DiscardHandler)
	}
	var cache *unimem.RunCache
	if cfg.MaxEntries > 0 || cfg.MaxBytes > 0 {
		cache = unimem.NewRunCacheBounded(cfg.MaxEntries, cfg.MaxBytes)
	} else {
		cache = unimem.NewRunCache()
	}
	poolSize := cfg.MaxSessions
	if poolSize <= 0 {
		poolSize = maxPoolSessions
	}
	s := &Server{
		cfg:           cfg,
		cache:         cache,
		started:       time.Now(),
		sessions:      lru.New[string, *poolEntry](poolSize),
		readyBlockers: map[string]int{},
	}
	s.metrics = newServerMetrics(s, cfg.DisableMetrics)
	if cfg.CacheDir != "" {
		n, err := cache.LoadSnapshot(s.SnapshotPath())
		if err != nil {
			cfg.Logf("serve: cache snapshot unusable, starting cold: %v", err)
		} else if n > 0 {
			cfg.Logf("serve: warm-started %d cache entries from %s", n, s.SnapshotPath())
		}
		s.loaded = n
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /run", s.instrument("/run", s.gauged(s.handleRun)))
	mux.HandleFunc("POST /batch", s.instrument("/batch", s.gauged(s.handleBatch)))
	mux.HandleFunc("POST /fleet", s.instrument("/fleet", s.gauged(s.handleFleet)))
	mux.HandleFunc("GET /stats", s.instrument("/stats", s.handleStats))
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /snapshot", s.instrument("/snapshot", s.handleSnapshot))
	mux.HandleFunc("POST /snapshot/merge", s.instrument("/snapshot/merge", s.handleSnapshotMerge))
	if s.metrics.reg != nil {
		s.debug = newDebugRuns(cfg.DebugRunHistory)
		mux.Handle("GET /metrics", s.metrics.reg.Handler())
		mux.HandleFunc("GET /debug/runs", s.instrument("/debug/runs", s.handleDebugRuns))
	}
	s.mux = mux
	return s, nil
}

// gauged wraps an execution handler in the in-flight gauge (under mu —
// see the inflight field for why this is not an atomic).
func (s *Server) gauged(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		s.inflight++
		s.mu.Unlock()
		defer func() {
			s.mu.Lock()
			s.inflight--
			s.mu.Unlock()
		}()
		h(w, r)
	}
}

// poolSnapshot returns the pooled sessions under the lock.
func (s *Server) poolSnapshot() []*poolEntry {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sessions.Values()
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// SnapshotPath is the cache snapshot file ("" when persistence is off).
func (s *Server) SnapshotPath() string {
	if s.cfg.CacheDir == "" {
		return ""
	}
	return filepath.Join(s.cfg.CacheDir, snapshotFileName)
}

// LoadedEntries reports how many cache entries the startup snapshot
// contributed.
func (s *Server) LoadedEntries() int { return s.loaded }

// SaveCache persists the run cache to the snapshot path (atomic
// temp-file-and-rename) and returns the entry count written; a no-op
// without a CacheDir.
func (s *Server) SaveCache() (int, error) {
	if s.cfg.CacheDir == "" {
		return 0, nil
	}
	n, err := s.cache.SaveSnapshot(s.SnapshotPath())
	if err == nil {
		s.readyMu.Lock()
		s.lastSave = time.Now()
		s.lastSaveCount = n
		s.readyMu.Unlock()
	}
	return n, err
}

// Close persists the cache (when persistence is configured). The server
// itself is stateless beyond that — there is no listener to stop here;
// callers own the http.Server.
func (s *Server) Close() error {
	_, err := s.SaveCache()
	return err
}

// session returns the pooled session for m, creating it on first use.
// The pool is keyed by machine performance fingerprint — every request
// spelling of a physically identical platform shares one session, hence
// one calibration — and bounded with least-recently-used eviction.
func (s *Server) session(m *unimem.Machine) *poolEntry {
	fp := exp.Fingerprint(m)
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.sessions.Get(fp); ok {
		return e
	}
	opts := []unimem.Option{unimem.WithCache(s.cache)}
	if s.cfg.Workers > 0 {
		opts = append(opts, unimem.WithWorkers(s.cfg.Workers))
	}
	if s.cfg.Window > 0 {
		opts = append(opts, unimem.WithStreamWindow(s.cfg.Window))
	}
	if s.cfg.Quick {
		opts = append(opts, unimem.WithQuick())
	}
	if s.cfg.Seed != 0 {
		opts = append(opts, unimem.WithSeed(s.cfg.Seed))
	}
	e := &poolEntry{name: m.Name, fp: fp, m: m, sess: unimem.New(m, opts...)}
	s.sessions.Put(fp, e)
	return e
}

// httpError writes an errorJSON body with the given status. The body
// carries the request ID the instrument middleware issued (the same one
// in the X-Request-Id header and the server log), so a client-reported
// failure can be matched to its log lines.
func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(errorJSON{
		Error:     fmt.Sprintf(format, args...),
		RequestID: w.Header().Get("X-Request-Id"),
	})
}

// decodeJSON decodes a bounded, strict (unknown fields rejected) request
// body into dst, answering 400 itself on failure.
func decodeJSON(w http.ResponseWriter, r *http.Request, dst any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, 8<<20)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		httpError(w, http.StatusBadRequest, "decoding request: %v", err)
		return false
	}
	return true
}

// writeJSON writes a 200 JSON body.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// handleRun executes one job and answers its outcome plus the post-run
// cache counters. Request-level problems (unknown platform, kernel,
// strategy, malformed scenario) are 400s; a failed run is a 200 whose
// outcome carries the error, mirroring the batch endpoints' row
// semantics.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req RunRequest
	// The raw body is retained so a cluster forward can replay it to the
	// owning peer byte-for-byte.
	body, ok := readDecodeJSON(w, r, &req)
	if !ok {
		return
	}
	m, err := req.Platform.resolve()
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	job, err := req.JobReq.job()
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if s.forwardToOwner(w, r, m, job, body) {
		return
	}
	st := stateOf(r)
	var trace *unimem.Trace
	if v := r.URL.Query().Get("trace"); v == "1" || v == "true" {
		trace = unimem.NewTrace()
		job.Options.Trace = trace
		if st != nil {
			// Stamp the request ID into the exported document so a trace
			// file can be joined back to its log lines and run record.
			trace.Meta("request_id", st.id)
		}
	}
	var explain *unimem.Explain
	if v := r.URL.Query().Get("explain"); v == "1" || v == "true" {
		explain = unimem.NewExplain()
		if st != nil {
			explain.SetRunID(st.id)
		}
		job.Options.Explain = explain
	}
	entry := s.session(m)
	entry.runs.Add(1)
	out, _ := entry.sess.RunJob(r.Context(), job)
	setCacheLabel(r, out.CacheHit, out.Err == nil)
	resp := RunResponse{
		OutcomeJSON: outcomeJSON(*out),
		Platform:    entry.name,
		Fingerprint: entry.fp,
		Cache:       entry.sess.CacheStats(),
	}
	if trace != nil {
		if doc, err := trace.MarshalChrome(); err == nil {
			resp.Trace = doc
		}
	}
	if explain != nil {
		if doc, err := json.Marshal(explain.Doc()); err == nil {
			resp.Explain = doc
		}
	}
	if st != nil {
		run := &runRecord{
			Jobs:       1,
			Workload:   resp.Workload,
			Strategy:   resp.Strategy,
			TimeNS:     resp.TimeNS,
			Migrations: resp.Migrations,
			Error:      resp.Error,
		}
		if explain != nil {
			if doc := explain.Doc(); doc.Regret != nil {
				f := doc.Regret.RegretFrac
				run.RegretFrac = &f
			}
		}
		st.run = run
	}
	writeJSON(w, resp)
}

// streamOutcomes runs jobs through the session's bounded-window Stream
// and writes one NDJSON row per outcome, in job order, flushing each.
// annotate (optional) decorates each row with fan-out metadata. The
// channel is always drained — when the client disconnects, r.Context()
// aborts the fleet and the remaining rows drain into a dead connection.
func streamOutcomes(w http.ResponseWriter, r *http.Request, e *poolEntry, jobs []unimem.Job, annotate func(*OutcomeJSON)) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	allHit, ran := true, false
	for o := range e.sess.Stream(r.Context(), jobs) {
		e.runs.Add(1)
		ran = true
		if !o.CacheHit || o.Err != nil {
			allHit = false
		}
		row := outcomeJSON(o)
		if annotate != nil {
			annotate(&row)
		}
		if err := enc.Encode(row); err != nil {
			// Client gone; keep draining so the emitter can finish.
			continue
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	// A batch counts as a cache hit only when every job was one.
	setCacheLabel(r, allHit, ran)
}

// handleBatch executes a job list with RunAll semantics — deterministic
// job-order results regardless of worker interleaving — streamed as
// NDJSON at O(window) memory.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if len(req.Jobs) == 0 {
		httpError(w, http.StatusBadRequest, "jobs: empty batch")
		return
	}
	if len(req.Jobs) > maxBatchJobs {
		httpError(w, http.StatusBadRequest, "jobs: %d exceeds the %d-job batch limit", len(req.Jobs), maxBatchJobs)
		return
	}
	m, err := req.Platform.resolve()
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	jobs := make([]unimem.Job, len(req.Jobs))
	for i, jr := range req.Jobs {
		if jobs[i], err = jr.job(); err != nil {
			httpError(w, http.StatusBadRequest, "jobs[%d]: %v", i, err)
			return
		}
	}
	if st := stateOf(r); st != nil {
		st.run = &runRecord{Jobs: len(jobs)}
	}
	streamOutcomes(w, r, s.session(m), jobs, nil)
}

// handleFleet generates deterministic synthetic scenarios and runs each
// under the requested strategies, streaming NDJSON rows annotated with
// archetype, scenario name and seed.
func (s *Server) handleFleet(w http.ResponseWriter, r *http.Request) {
	var req FleetRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	m, err := req.Platform.resolve()
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	archetypes := unimem.ScenarioArchetypes()
	if req.Archetype != "" {
		want := unimem.ScenarioArchetype(strings.ToLower(strings.TrimSpace(req.Archetype)))
		found := false
		for _, a := range archetypes {
			if a == want {
				archetypes = []unimem.ScenarioArchetype{a}
				found = true
				break
			}
		}
		if !found {
			names := make([]string, len(archetypes))
			for i, a := range archetypes {
				names[i] = string(a)
			}
			httpError(w, http.StatusBadRequest, "archetype: unknown %q (want one of %s)",
				req.Archetype, strings.Join(names, ", "))
			return
		}
	}
	count := req.Count
	if count <= 0 {
		count = 2
	}
	if count > maxFleetCount {
		httpError(w, http.StatusBadRequest, "count: %d exceeds the per-archetype limit %d", count, maxFleetCount)
		return
	}
	if err := checkRanks("ranks", req.Ranks); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	names := req.Strategies
	if len(names) == 0 {
		names = []string{"hint-density", "unimem"}
	}
	if len(names) > maxFleetStrategies {
		httpError(w, http.StatusBadRequest, "strategies: %d exceeds the %d-strategy limit", len(names), maxFleetStrategies)
		return
	}
	strategies := make([]unimem.Strategy, len(names))
	for i, n := range names {
		if strategies[i], err = unimem.ParseStrategy(n); err != nil {
			httpError(w, http.StatusBadRequest, "strategies[%d]: %v", i, err)
			return
		}
	}
	seed := req.Seed
	if seed == 0 {
		seed = s.cfg.Seed
	}
	if seed == 0 {
		seed = 0xF1EE7
	}

	type rowMeta struct {
		archetype string
		scenario  string
		seed      uint64
	}
	var jobs []unimem.Job
	var meta []rowMeta
	for _, a := range archetypes {
		for i := 0; i < count; i++ {
			spec, err := unimem.GenerateScenario(a, seed+uint64(i))
			if err != nil {
				httpError(w, http.StatusInternalServerError, "generating %s scenario: %v", a, err)
				return
			}
			if req.Ranks > 0 {
				spec.Ranks = req.Ranks
			}
			wl, err := spec.Compile()
			if err != nil {
				httpError(w, http.StatusInternalServerError, "compiling %s scenario: %v", a, err)
				return
			}
			for _, st := range strategies {
				jobs = append(jobs, unimem.Job{Workload: wl, Strategy: st})
				meta = append(meta, rowMeta{archetype: string(a), scenario: spec.Name, seed: seed + uint64(i)})
			}
		}
	}
	reqState := stateOf(r)
	if reqState != nil {
		reqState.run = &runRecord{Jobs: len(jobs)}
	}
	// With metrics on, every Unimem row carries an attribution document so
	// the sweep feeds the per-archetype regret/migration-benefit
	// instruments — the fleet becomes a live policy-quality dashboard.
	var explains []*unimem.Explain
	if s.metrics.reg != nil {
		explains = make([]*unimem.Explain, len(jobs))
		for i := range jobs {
			if jobs[i].Strategy.IsUnimem() {
				ex := unimem.NewExplain()
				if reqState != nil {
					ex.SetRunID(fmt.Sprintf("%s#%d", reqState.id, i))
				}
				explains[i] = ex
				jobs[i].Options.Explain = ex
			}
		}
	}
	// Per-archetype running means for the regret gauge; annotate runs on
	// the single streaming goroutine, so plain maps suffice.
	regretSum := map[string]float64{}
	regretN := map[string]int{}
	streamOutcomes(w, r, s.session(m), jobs, func(row *OutcomeJSON) {
		mt := meta[row.Index]
		row.Archetype = mt.archetype
		row.Scenario = mt.scenario
		row.Seed = mt.seed
		if explains == nil || explains[row.Index] == nil || row.Error != "" {
			return
		}
		doc := explains[row.Index].Doc()
		if doc.Regret != nil {
			regretSum[mt.archetype] += doc.Regret.RegretFrac
			regretN[mt.archetype]++
			s.metrics.observeFleetRow(mt.archetype, doc,
				regretSum[mt.archetype]/float64(regretN[mt.archetype]))
		} else {
			s.metrics.observeFleetRow(mt.archetype, doc, 0)
		}
	})
}

// handleStats answers the introspection snapshot: coherent cache
// counters, snapshot persistence state, and the pooled sessions with
// their memoized calibrations (computing a session's calibration on
// first introspection, exactly once per platform).
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	resp := StatsResponse{
		Cache:      s.cache.Stats(),
		FastPath:   app.ReadFastPathTotals(),
		Uptime:     time.Since(s.started).Seconds(),
		Build:      &BuildJSON{Version: Version(), Go: goVersion()},
		Platforms:  Platforms(),
		Strategies: unimem.StrategyNames(),
		Sessions:   []SessionJSON{},
	}
	if s.cfg.CacheDir != "" {
		resp.Snapshot = &SnapshotJSON{
			Path:          s.SnapshotPath(),
			LoadedEntries: s.loaded,
			Version:       exp.SnapshotVersion,
		}
	}
	s.statsCluster(&resp)
	// One consistent snapshot: the in-flight gauge and the session list
	// are read under the same critical section, so a scrape racing a
	// draining batch sees either (inflight>0, pre-eviction pool) or
	// (inflight updated, post-eviction pool) — never a mix.
	s.mu.Lock()
	resp.InFlight = s.inflight
	entries := s.sessions.Values()
	s.mu.Unlock()
	// Calibrations are computed outside the pool lock: a first-use
	// measurement must not block concurrent request routing.
	for _, e := range entries {
		c := e.sess.Calibration()
		resp.Sessions = append(resp.Sessions, SessionJSON{
			Platform:    e.name,
			Fingerprint: e.fp,
			Tiers:       e.m.NumTiers(),
			Runs:        e.runs.Load(),
			Calibration: CalibrationJSON{CFBw: c.CFBw, CFLat: c.CFLat, BWPeakBps: c.BWPeakBps},
		})
	}
	writeJSON(w, resp)
}

// handleHealthz is the liveness probe; it echoes the build version so an
// operator can tell which binary answered.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]any{"ok": true, "version": Version()})
}
