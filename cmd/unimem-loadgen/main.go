// Command unimem-loadgen replays scenario-generator fleets against one or
// more unimem-serve nodes at a configured rate and reports the latency
// distribution, cache hit rate and per-node request split.
//
// Pacing is open-loop (see internal/loadgen): every request's fire time is
// fixed up front and latency is charged from that schedule, so a stalled
// server shows up as tail latency rather than silently slowing the run.
//
// Usage:
//
//	unimem-loadgen -targets http://localhost:8080 -qps 200 -duration 10s
//	unimem-loadgen -targets http://a:8080,http://b:8080 -qps 500 -requests 2000 -json report.json
//	unimem-loadgen -targets http://localhost:8080 -archetype stable -scenarios 4 -strategy xmem -qps 100 -duration 5s
//
// The human-readable summary goes to stderr; -json writes the full report
// document ("-" for stdout). The process exits 1 when any request failed,
// so CI can assert a zero-error replay; -allow-errors downgrades that to
// a report field.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"unimem/internal/loadgen"
)

func main() {
	var (
		targets     = flag.String("targets", "http://localhost:8080", "comma-separated node base URLs; requests round-robin across them")
		qps         = flag.Float64("qps", 100, "aggregate open-loop request rate")
		duration    = flag.Duration("duration", 0, "run length (ignored when -requests is set)")
		requests    = flag.Int("requests", 0, "total request count (0: derive from -qps x -duration)")
		workers     = flag.Int("workers", 16, "sender-pool width (bounds in-flight requests, not rate)")
		archetype   = flag.String("archetype", "", "restrict generation to one scenario archetype (default: all)")
		scenarios   = flag.Int("scenarios", 4, "distinct scenarios per archetype; requests cycle over the population")
		seed        = flag.Uint64("seed", 1, "deterministic scenario-generation seed")
		strategy    = flag.String("strategy", "xmem", "placement strategy per request (cached strategies can hit)")
		ranks       = flag.Int("ranks", 0, "override each scenario's world size (0: as generated)")
		platform    = flag.String("platform", "a", "platform name sent with each request")
		timeout     = flag.Duration("timeout", 60*time.Second, "per-request timeout")
		jsonOut     = flag.String("json", "", "write the report as JSON to this file ('-' for stdout)")
		allowErrors = flag.Bool("allow-errors", false, "exit 0 even when requests failed")
	)
	flag.Parse()

	var tgts []loadgen.Target
	for _, u := range strings.Split(*targets, ",") {
		if u = strings.TrimSpace(u); u != "" {
			tgts = append(tgts, loadgen.Target{Base: u})
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	rep, err := loadgen.Run(ctx, loadgen.Config{
		Targets:   tgts,
		QPS:       *qps,
		Requests:  *requests,
		Duration:  *duration,
		Workers:   *workers,
		Archetype: *archetype,
		Scenarios: *scenarios,
		Seed:      *seed,
		Strategy:  *strategy,
		Ranks:     *ranks,
		Platform:  *platform,
		Timeout:   *timeout,
		Logf: func(format string, args ...interface{}) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	for node, ns := range rep.PerNode {
		fmt.Fprintf(os.Stderr, "loadgen: node %s served %d requests (%d hits)\n", node, ns.Requests, ns.Hits)
	}

	if *jsonOut != "" {
		f := os.Stdout
		if *jsonOut != "-" {
			f, err = os.Create(*jsonOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			defer f.Close()
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}

	if rep.Errors > 0 && !*allowErrors {
		fmt.Fprintf(os.Stderr, "loadgen: %d of %d requests failed\n", rep.Errors, rep.Requests)
		os.Exit(1)
	}
}
