package phase

import (
	"math"
	"testing"
)

// TestDigestDeterminismAndSensitivity: equal fold chains produce equal
// keys; changing any folded value, the fold order, or the value's type
// framing changes the key.
func TestDigestDeterminismAndSensitivity(t *testing.T) {
	mk := func(a uint64, b int64, f float64, s string) Key {
		return NewDigest().Uint64(a).Int64(b).Float64(f).String(s).Key()
	}
	base := mk(1, -2, 3.5, "hot")
	if base != mk(1, -2, 3.5, "hot") {
		t.Fatal("digest not deterministic")
	}
	if base == 0 {
		t.Fatal("zero key is reserved for 'no key'")
	}
	variants := []Key{
		mk(2, -2, 3.5, "hot"),
		mk(1, 2, 3.5, "hot"),
		mk(1, -2, 3.25, "hot"),
		mk(1, -2, 3.5, "cold"),
		NewDigest().Int64(-2).Uint64(1).Float64(3.5).String("hot").Key(), // order
	}
	seen := map[Key]bool{base: true}
	for i, v := range variants {
		if seen[v] {
			t.Errorf("variant %d collides", i)
		}
		seen[v] = true
	}
	// Float folding is bit-exact: -0.0 and +0.0 differ in IEEE bits, so
	// they must key differently (the fast path may only rely on exact
	// value equality).
	if NewDigest().Float64(math.Copysign(0, -1)).Key() == NewDigest().Float64(0).Key() {
		t.Error("-0.0 and +0.0 fold identically")
	}
}

// TestMemoObserve pins the hit/miss and streak semantics: a key repeats
// with the same outcome → hit; a new key or a changed outcome → miss;
// StableIters is the minimum per-position streak.
func TestMemoObserve(t *testing.T) {
	m := NewMemo()
	k1 := NewDigest().String("p0").Key()
	k2 := NewDigest().String("p1").Key()

	if m.Observe(0, k1, 100) {
		t.Error("first sighting hit")
	}
	if m.Observe(1, k2, 50) {
		t.Error("first sighting hit")
	}
	if m.StableIters() != 1 {
		t.Errorf("StableIters = %d, want 1", m.StableIters())
	}
	if !m.Observe(0, k1, 100) || !m.Observe(1, k2, 50) {
		t.Error("repeat sighting missed")
	}
	if m.StableIters() != 2 {
		t.Errorf("StableIters = %d, want 2", m.StableIters())
	}
	// Same key, different measured outcome: not a hit, memo updated.
	if m.Observe(0, k1, 101) {
		t.Error("changed outcome reported as hit")
	}
	if !m.Observe(0, k1, 101) {
		t.Error("updated outcome not memoized")
	}
	// Position 0's key changes: its streak resets, dragging StableIters
	// down while position 1 keeps its streak.
	k3 := NewDigest().String("p0'").Key()
	m.Observe(0, k3, 10)
	m.Observe(1, k2, 50)
	if m.StableIters() != 1 {
		t.Errorf("StableIters after key change = %d, want 1", m.StableIters())
	}
	if m.Hits() != 4 || m.Misses() != 4 {
		t.Errorf("hits/misses = %d/%d, want 4/4", m.Hits(), m.Misses())
	}
}

// TestMemoNilSafe: the exact-simulation path carries a nil memo.
func TestMemoNilSafe(t *testing.T) {
	var m *Memo
	if m.Observe(0, 1, 1) || m.StableIters() != 0 || m.Hits() != 0 || m.Misses() != 0 {
		t.Fatal("nil memo must no-op")
	}
}

// TestRegistryFastForward: advancing between iterations preserves the
// positional cycle; mid-phase or pre-seal fast-forwards panic.
func TestRegistryFastForward(t *testing.T) {
	r := NewRegistry()
	r.Begin("a", Compute, "")
	r.End(1)
	r.Begin("b", Comm, "barrier")
	r.End(1)
	r.Begin("a", Compute, "") // seals
	r.End(1)
	r.Begin("b", Comm, "barrier")
	r.End(1)
	if r.Iter() != 2 {
		t.Fatalf("iter = %d, want 2", r.Iter())
	}
	r.FastForward(10)
	if r.Iter() != 12 {
		t.Fatalf("iter = %d, want 12", r.Iter())
	}
	// The next Begin must continue the cycle at position 0.
	if _, newIter := r.Begin("a", Compute, ""); !newIter {
		t.Fatal("post-fast-forward Begin did not start a new iteration")
	}

	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("mid-phase fast-forward", func() { r.FastForward(1) }) // "a" is open
	r.End(1)
	mustPanic("negative fast-forward", func() { r.FastForward(-1) })
	fresh := NewRegistry()
	fresh.Begin("x", Compute, "")
	fresh.End(1)
	mustPanic("pre-seal fast-forward", func() { fresh.FastForward(1) })
}
