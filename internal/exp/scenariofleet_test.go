package exp

import (
	"bytes"
	"encoding/csv"
	"strconv"
	"strings"
	"testing"

	"unimem/internal/scenario"
)

// fleetSuite returns a quick suite with a small fleet (the shape
// assertions hold at any sample size; 3 keeps the suite fast).
func fleetSuite() *Suite {
	s := quickSuite()
	s.Fleet = 3
	return s
}

// TestScenarioFleetShape checks the fleet experiment's structure and its
// headline physics: every (archetype, scenario, platform) cell is present
// with both platforms covered, at least one drift archetype's aggregate
// shows Unimem beating the hint-density static placement, and the stable
// control archetype stays within noise of it.
func TestScenarioFleetShape(t *testing.T) {
	s := fleetSuite()
	tbl, err := s.ScenarioFleet()
	if err != nil {
		t.Fatal(err)
	}
	archetypes := scenario.Archetypes()
	nCells := len(archetypes) * s.Fleet * len(fleetPlatforms())
	if len(tbl.FleetStats) != nCells {
		t.Fatalf("fleet stats %d, want %d cells", len(tbl.FleetStats), nCells)
	}
	if len(tbl.Rows) != nCells+len(archetypes) {
		t.Fatalf("table rows %d, want %d cells + %d aggregate rows",
			len(tbl.Rows), nCells, len(archetypes))
	}
	if len(tbl.FleetAggregates) != len(archetypes) {
		t.Fatalf("aggregates %d, want one per archetype", len(tbl.FleetAggregates))
	}

	platforms := map[string]bool{}
	for _, st := range tbl.FleetStats {
		platforms[st.Platform] = true
		name := st.Scenario + "@" + st.Platform
		if st.FastestNS <= 0 || st.StaticNS <= 0 || st.XMemNS <= 0 || st.UnimemNS <= 0 {
			t.Fatalf("%s: non-positive time in %+v", name, st)
		}
		// The fastest-tier-only twin is the lower bound for every strategy.
		if st.StaticNS < st.FastestNS || st.UnimemNS < st.FastestNS {
			t.Errorf("%s: a placed run beat the fastest-only twin", name)
		}
		if got := float64(st.StaticNS) / float64(st.UnimemNS); got != st.SpeedupVsStatic {
			t.Errorf("%s: speedup %v inconsistent with times", name, st.SpeedupVsStatic)
		}
		if st.Decisions < 1 {
			t.Errorf("%s: Unimem took no placement decision", name)
		}
	}
	if len(platforms) != len(fleetPlatforms()) {
		t.Errorf("fleet covers %d platforms, want %d", len(platforms), len(fleetPlatforms()))
	}

	agg := map[string]FleetAggregate{}
	for _, a := range tbl.FleetAggregates {
		agg[a.Archetype] = a
		if a.N != s.Fleet*len(fleetPlatforms()) {
			t.Errorf("%s: aggregate over %d cells, want %d", a.Archetype, a.N, s.Fleet*len(fleetPlatforms()))
		}
		if a.Wins+a.Losses+a.Ties != a.N {
			t.Errorf("%s: win/loss/tie counts %d+%d+%d != n=%d", a.Archetype, a.Wins, a.Losses, a.Ties, a.N)
		}
		if !(a.Min <= a.Geomean && a.Geomean <= a.Max) {
			t.Errorf("%s: geomean %v outside [min %v, max %v]", a.Archetype, a.Geomean, a.Min, a.Max)
		}
		if a.Losses > 0 && a.Worst == "" {
			t.Errorf("%s: losses recorded but no tail scenario named", a.Archetype)
		}
	}

	// Headline: online adaptation must pay off on drifting workloads...
	bestDrift := 0.0
	for _, a := range archetypes {
		if a.IsDrift() && agg[string(a)].Geomean > bestDrift {
			bestDrift = agg[string(a)].Geomean
		}
	}
	if bestDrift < 1.05 {
		t.Errorf("no drift archetype shows Unimem beating static placement (best geomean %.3f, want >= 1.05)", bestDrift)
	}
	// ...and cost nothing but noise on the stable control.
	stable := agg[string(scenario.ArchStable)]
	if stable.Geomean < 0.93 || stable.Geomean > 1.07 {
		t.Errorf("stable archetype geomean %.3f outside the noise band [0.93, 1.07]", stable.Geomean)
	}
}

// TestScenarioFleetCacheKeysDistinct re-runs the fleet on one suite: the
// second pass must be served from the cache (scenario regeneration is
// deterministic and the spec digest keys match), and distinct scenarios
// must have produced distinct entries.
func TestScenarioFleetCacheKeysDistinct(t *testing.T) {
	s := fleetSuite()
	first, err := s.ScenarioFleet()
	if err != nil {
		t.Fatal(err)
	}
	mid := s.CacheStats()
	// Three memoized strategies (fastest-only, static, xmem) per cell.
	if want := len(first.FleetStats) * 3; mid.Entries != want {
		t.Errorf("cache holds %d entries after the fleet, want %d (3 per cell)", mid.Entries, want)
	}
	if _, err := s.ScenarioFleet(); err != nil {
		t.Fatal(err)
	}
	end := s.CacheStats()
	if end.Misses != mid.Misses {
		t.Errorf("second fleet executed %d fresh baseline runs, want 0", end.Misses-mid.Misses)
	}
}

// TestScenarioFleetQuickPrep ensures Quick mode actually caps the
// generated scenarios' iteration counts (the fleet would otherwise be the
// slowest experiment in the registry).
func TestScenarioFleetQuickPrep(t *testing.T) {
	spec, err := scenario.Generate(scenario.ArchStable, 1)
	if err != nil {
		t.Fatal(err)
	}
	w, err := spec.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if w.Iterations <= 12 {
		t.Fatalf("generated scenario runs %d iterations; the Quick-cap premise is gone", w.Iterations)
	}
	if got := fleetSuite().prep(w); got.Iterations != 12 {
		t.Errorf("prep capped to %d iterations, want 12", got.Iterations)
	}
	if got := fleetSuite().prep(w); got.SpecDigest != w.SpecDigest {
		t.Error("prep dropped the spec digest")
	}
}

// TestScenarioFleetRendersAggregates: the rendered table (and therefore
// the CSV) must carry the aggregate stats block and the tail-scenario
// note, not just the per-scenario rows.
func TestScenarioFleetRendersAggregates(t *testing.T) {
	tbl, err := fleetSuite().ScenarioFleet()
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	tbl.Render(&sb)
	out := sb.String()
	for _, want := range []string{"aggregate", "geo=", "wins="} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered fleet table missing %q", want)
		}
	}
}

// TestScenarioFleetCSVRegretParity pins the CSV side channel: the CSV
// output must carry a regret_frac column whose per-scenario values equal
// the JSON FleetStats' RegretFrac and whose aggregate rows equal the
// aggregates' MeanRegretFrac — while the rendered table keeps its pinned
// column set.
func TestScenarioFleetCSVRegretParity(t *testing.T) {
	tbl, err := fleetSuite().ScenarioFleet()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tbl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rec, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	header := rec[0]
	col := -1
	for i, h := range header {
		if h == "regret_frac" {
			col = i
		}
	}
	if col != len(header)-1 {
		t.Fatalf("regret_frac must be the last CSV column, header = %v", header)
	}
	rows := rec[1:]
	if len(rows) != len(tbl.Rows) {
		t.Fatalf("CSV has %d rows, table %d", len(rows), len(tbl.Rows))
	}
	// Per-scenario rows come first, in FleetStats order; aggregates follow.
	for i, st := range tbl.FleetStats {
		got, err := strconv.ParseFloat(rows[i][col], 64)
		if err != nil {
			t.Fatalf("row %d regret_frac %q: %v", i, rows[i][col], err)
		}
		if got != st.RegretFrac {
			t.Errorf("row %d: CSV regret %v != JSON %v", i, got, st.RegretFrac)
		}
	}
	for j, agg := range tbl.FleetAggregates {
		row := rows[len(tbl.FleetStats)+j]
		got, err := strconv.ParseFloat(row[col], 64)
		if err != nil {
			t.Fatalf("aggregate %s regret %q: %v", agg.Archetype, row[col], err)
		}
		if got != agg.MeanRegretFrac {
			t.Errorf("aggregate %s: CSV mean regret %v != JSON %v", agg.Archetype, got, agg.MeanRegretFrac)
		}
	}
	// The rendered table must not have grown the CSV-only column.
	var sb strings.Builder
	tbl.Render(&sb)
	if strings.Contains(sb.String(), "regret_frac") {
		t.Error("rendered table leaked the CSV-only regret_frac column")
	}
}
