package exp

// This file is the RunCache's snapshot persistence and exchange layer: a
// versioned JSON format that a long-lived server (cmd/unimem-serve) writes
// on shutdown and reads on startup — so a restarted process answers
// previously-served deterministic runs as cache hits instead of
// re-simulating them — and that cluster peers ship to each other over
// HTTP (GET /snapshot → POST /snapshot/merge) so a fresh node warm-starts
// from a running node's cache.
//
// Versioning is two-layered. The file carries an explicit format version
// (SnapshotVersion) guarding the envelope; the entries version themselves
// through their RunKeys — the machine performance fingerprint and the
// scenario spec digest are part of every key, so entries written against a
// different fingerprint scheme, machine parameterization or spec body can
// never match a live request. A mismatched envelope is reported as an
// error (callers cold-start); mismatched keys are merely dead weight that
// ages out through the LRU.

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"

	"unimem/internal/app"
)

// SnapshotVersion is the on-disk envelope version. Bump it when the entry
// schema changes shape (not when key semantics change — keys self-version
// through fingerprint and digest). The completed_at_ns stamp rode in as an
// optional field: version-1 files without it decode with zero stamps,
// which merge treats as "older than anything stamped".
const SnapshotVersion = 1

// ErrSnapshotVersion reports an envelope whose version differs from
// SnapshotVersion; callers should treat the snapshot as absent.
var ErrSnapshotVersion = errors.New("exp: run-cache snapshot has incompatible version")

// snapshotFile is the on-disk (and on-the-wire) envelope.
type snapshotFile struct {
	Version int             `json:"version"`
	Entries []snapshotEntry `json:"entries"`
}

// snapshotEntry is one persisted run: its identity, its result and when it
// completed. Errors and in-flight runs are never persisted — only
// successful completed executions are worth warming a restart (or a peer)
// with.
type snapshotEntry struct {
	Key    RunKey      `json:"key"`
	Result *app.Result `json:"result"`
	// CompletedAtNS is the completing node's wall clock (unix nanoseconds)
	// when the run finished. Merges resolve same-key conflicts by it:
	// the newer completed run wins.
	CompletedAtNS int64 `json:"completed_at_ns,omitempty"`
}

// snapshotDoc collects every completed successful entry into an envelope.
// Entries are written least-recently-used first per shard, so loading
// reconstructs each shard's recency order.
func (c *RunCache) snapshotDoc() snapshotFile {
	snap := snapshotFile{Version: SnapshotVersion}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for el := sh.lru.Back(); el != nil; el = el.Prev() {
			e := el.Value.(*cacheEntry)
			if !e.completed || e.err != nil || e.res == nil {
				continue
			}
			snap.Entries = append(snap.Entries, snapshotEntry{
				Key: e.key, Result: e.res, CompletedAtNS: e.completedAt,
			})
		}
		sh.mu.Unlock()
	}
	return snap
}

// WriteSnapshot encodes the snapshot document to w (the GET /snapshot
// wire path — the byte stream is identical to what SaveSnapshot writes to
// disk). It returns the number of entries written.
func (c *RunCache) WriteSnapshot(w io.Writer) (int, error) {
	if c == nil {
		return 0, errors.New("exp: WriteSnapshot on nil RunCache")
	}
	snap := c.snapshotDoc()
	if err := json.NewEncoder(w).Encode(&snap); err != nil {
		return 0, fmt.Errorf("exp: encoding run-cache snapshot: %w", err)
	}
	return len(snap.Entries), nil
}

// SaveSnapshot atomically writes every completed successful entry to path
// (temp file in the same directory, then rename), creating parent
// directories as needed. It returns the number of entries written.
func (c *RunCache) SaveSnapshot(path string) (int, error) {
	if c == nil {
		return 0, errors.New("exp: SaveSnapshot on nil RunCache")
	}
	snap := c.snapshotDoc()
	data, err := json.Marshal(&snap)
	if err != nil {
		return 0, fmt.Errorf("exp: encoding run-cache snapshot: %w", err)
	}
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, err
	}
	tmp, err := os.CreateTemp(dir, ".runcache-*.tmp")
	if err != nil {
		return 0, err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return 0, err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return 0, err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return 0, err
	}
	return len(snap.Entries), nil
}

// LoadSnapshot seeds the cache from a snapshot file written by
// SaveSnapshot. A missing file is not an error (cold start, 0 entries). A
// version mismatch returns ErrSnapshotVersion (wrapped), a corrupt file a
// decode error; in both cases nothing is loaded and callers should proceed
// cold. Loaded entries count in CacheStats.Loaded, not as misses, and
// respect the cache's entry/byte budgets (the most recently used entries
// of an over-budget snapshot win).
func (c *RunCache) LoadSnapshot(path string) (int, error) {
	if c == nil {
		return 0, errors.New("exp: LoadSnapshot on nil RunCache")
	}
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	st, err := c.MergeSnapshot(data)
	if err != nil {
		return 0, fmt.Errorf("exp: run-cache snapshot %s: %w", path, err)
	}
	return st.Added + st.Replaced, nil
}

// MergeStats reports what one MergeSnapshot did.
type MergeStats struct {
	// Added counts entries for keys the cache did not hold.
	Added int `json:"added"`
	// Replaced counts completed local entries superseded by a strictly
	// newer incoming completion stamp (newer completed run wins).
	Replaced int `json:"replaced"`
	// Skipped counts incoming entries that lost a conflict: the local
	// entry was in flight (never merged over), or completed at least as
	// recently as the incoming one.
	Skipped int `json:"skipped"`
}

// MergeSnapshot merges a snapshot document (the bytes SaveSnapshot /
// WriteSnapshot produce) into the live cache — the POST /snapshot/merge
// wire path, and the engine of cluster warm-starts. Merging is safe while
// the cache is serving.
//
// The whole document is decoded and version-checked before the cache is
// touched, so a corrupt or incompatible payload leaves the local cache
// exactly as it was. Conflicts resolve per entry: in-flight local entries
// are never merged over; between two completed runs of the same key the
// newer completion stamp wins. Merged entries count as Loaded and respect
// the entry/byte budgets.
func (c *RunCache) MergeSnapshot(data []byte) (MergeStats, error) {
	var st MergeStats
	if c == nil {
		return st, errors.New("exp: MergeSnapshot on nil RunCache")
	}
	var snap snapshotFile
	if err := json.Unmarshal(data, &snap); err != nil {
		return st, fmt.Errorf("decoding run-cache snapshot: %w", err)
	}
	if snap.Version != SnapshotVersion {
		return st, fmt.Errorf("%w: got version %d, want %d",
			ErrSnapshotVersion, snap.Version, SnapshotVersion)
	}
	for _, se := range snap.Entries {
		if se.Result == nil {
			continue
		}
		switch c.seedResult(se.Key, se.Result, se.CompletedAtNS) {
		case seedAdded:
			st.Added++
		case seedReplaced:
			st.Replaced++
		default:
			st.Skipped++
		}
	}
	return st, nil
}
