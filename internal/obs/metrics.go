// Package obs is the observability layer: a zero-dependency metrics
// registry (counters, gauges, fixed-bucket latency histograms with
// quantile estimation) exposed in Prometheus text format, and a span-style
// per-run trace recorder (trace.go) exportable as Chrome trace-event JSON.
//
// The package is designed to be always compiled in but free when unused:
// every constructor on a nil *Registry returns a nil instrument, and every
// method on a nil instrument is a no-op, so instrumented code paths carry
// a single pointer check when observability is disabled. Instruments are
// safe for concurrent use; hot-path operations (Counter.Add, Gauge.Set,
// Histogram.Observe) are single atomic updates.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// metricNameRe is the Prometheus metric-name grammar; label names drop the
// colon. Registration panics on violations — a malformed name is a
// programmer error that would silently corrupt the exposition otherwise.
var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// family is one exposition block: a # HELP / # TYPE header plus the sample
// lines of every child (label combination) of the metric.
type family interface {
	meta() (name, help, typ string)
	// write appends the family's sample lines (no header) to b.
	write(b *strings.Builder)
}

// Registry holds metric families in registration order and renders them as
// Prometheus text exposition format (version 0.0.4). The zero value is not
// usable; construct with NewRegistry. A nil *Registry is the disabled
// mode: its constructors return nil instruments whose methods no-op.
type Registry struct {
	mu       sync.Mutex
	families []family
	names    map[string]bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: map[string]bool{}}
}

// register validates and appends one family.
func (r *Registry) register(f family) {
	name, _, _ := f.meta()
	if !metricNameRe.MatchString(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.names[name] {
		panic(fmt.Sprintf("obs: duplicate metric name %q", name))
	}
	r.names[name] = true
	r.families = append(r.families, f)
}

func checkLabels(labels []string) {
	for _, l := range labels {
		if !labelNameRe.MatchString(l) {
			panic(fmt.Sprintf("obs: invalid label name %q", l))
		}
	}
}

// escapeHelp escapes a HELP string per the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

// labelPairs renders {k="v",...} for parallel name/value slices ("" for an
// empty set).
func labelPairs(names, values []string) string {
	if len(names) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, n, escapeLabel(values[i]))
	}
	b.WriteByte('}')
	return b.String()
}

// formatValue renders a sample value the way Prometheus expects.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteTo renders the full exposition document. It implements
// io.WriterTo; a nil registry writes nothing.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	if r == nil {
		return 0, nil
	}
	r.mu.Lock()
	fams := append([]family(nil), r.families...)
	r.mu.Unlock()
	var b strings.Builder
	for _, f := range fams {
		name, help, typ := f.meta()
		fmt.Fprintf(&b, "# HELP %s %s\n", name, escapeHelp(help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", name, typ)
		f.write(&b)
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// Handler serves the registry as a /metrics endpoint. The exposition is
// rendered to a buffer first so the response carries Content-Length, and
// HEAD requests receive the headers (with the length of the body a GET
// would return) without a body — what scrapers and load balancers probing
// the endpoint expect.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		var b strings.Builder
		r.WriteTo(&b)
		body := b.String()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.Header().Set("Content-Length", strconv.Itoa(len(body)))
		if req != nil && req.Method == http.MethodHead {
			return
		}
		io.WriteString(w, body)
	})
}

// ---------------------------------------------------------------------------
// Counter

// Counter is a monotonically increasing value. A nil Counter no-ops.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (negative deltas are ignored — counters
// are monotonic by contract).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

type counterFamily struct {
	name, help string
	c          *Counter
}

func (f *counterFamily) meta() (string, string, string) { return f.name, f.help, "counter" }
func (f *counterFamily) write(b *strings.Builder) {
	fmt.Fprintf(b, "%s %d\n", f.name, f.c.Value())
}

// Counter registers and returns a new counter (nil on a nil registry).
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	c := &Counter{}
	r.register(&counterFamily{name: name, help: help, c: c})
	return c
}

// CounterVec is a counter family partitioned by label values.
type CounterVec struct {
	name   string
	labels []string
	mu     sync.Mutex
	kids   map[string]*Counter
	order  []string
	vals   map[string][]string
}

// With returns the child counter for the label values, creating it on
// first use. The value count must match the registered label names.
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return nil
	}
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("obs: %s expects %d label values, got %d", v.name, len(v.labels), len(values)))
	}
	key := strings.Join(values, "\x00")
	v.mu.Lock()
	defer v.mu.Unlock()
	c, ok := v.kids[key]
	if !ok {
		c = &Counter{}
		v.kids[key] = c
		v.order = append(v.order, key)
		v.vals[key] = append([]string(nil), values...)
	}
	return c
}

type counterVecFamily struct {
	help string
	v    *CounterVec
}

func (f *counterVecFamily) meta() (string, string, string) { return f.v.name, f.help, "counter" }
func (f *counterVecFamily) write(b *strings.Builder) {
	f.v.mu.Lock()
	keys := append([]string(nil), f.v.order...)
	f.v.mu.Unlock()
	sort.Strings(keys)
	for _, k := range keys {
		f.v.mu.Lock()
		c, vals := f.v.kids[k], f.v.vals[k]
		f.v.mu.Unlock()
		fmt.Fprintf(b, "%s%s %d\n", f.v.name, labelPairs(f.v.labels, vals), c.Value())
	}
}

// CounterVec registers a labeled counter family (nil on a nil registry).
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if r == nil {
		return nil
	}
	checkLabels(labels)
	v := &CounterVec{name: name, labels: labels, kids: map[string]*Counter{}, vals: map[string][]string{}}
	r.register(&counterVecFamily{help: help, v: v})
	return v
}

// ---------------------------------------------------------------------------
// Gauge

// Gauge is a value that can go up and down. A nil Gauge no-ops.
type Gauge struct {
	v atomic.Int64
}

// Set stores the value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add moves the gauge by delta.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

type gaugeFamily struct {
	name, help string
	g          *Gauge
}

func (f *gaugeFamily) meta() (string, string, string) { return f.name, f.help, "gauge" }
func (f *gaugeFamily) write(b *strings.Builder) {
	fmt.Fprintf(b, "%s %d\n", f.name, f.g.Value())
}

// Gauge registers and returns a new gauge (nil on a nil registry).
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	g := &Gauge{}
	r.register(&gaugeFamily{name: name, help: help, g: g})
	return g
}

// FloatGauge is a float-valued gauge (the fleet regret figures are
// fractions, which the integer Gauge cannot carry). A nil FloatGauge
// no-ops.
type FloatGauge struct {
	bits atomic.Uint64
}

// Set stores the value.
func (g *FloatGauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the current value (0 on nil).
func (g *FloatGauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// GaugeVec is a float-valued gauge family partitioned by label values.
type GaugeVec struct {
	name   string
	labels []string
	mu     sync.Mutex
	kids   map[string]*FloatGauge
	order  []string
	vals   map[string][]string
}

// With returns the child gauge for the label values, creating it on first
// use. The value count must match the registered label names.
func (v *GaugeVec) With(values ...string) *FloatGauge {
	if v == nil {
		return nil
	}
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("obs: %s expects %d label values, got %d", v.name, len(v.labels), len(values)))
	}
	key := strings.Join(values, "\x00")
	v.mu.Lock()
	defer v.mu.Unlock()
	g, ok := v.kids[key]
	if !ok {
		g = &FloatGauge{}
		v.kids[key] = g
		v.order = append(v.order, key)
		v.vals[key] = append([]string(nil), values...)
	}
	return g
}

type gaugeVecFamily struct {
	help string
	v    *GaugeVec
}

func (f *gaugeVecFamily) meta() (string, string, string) { return f.v.name, f.help, "gauge" }
func (f *gaugeVecFamily) write(b *strings.Builder) {
	f.v.mu.Lock()
	keys := append([]string(nil), f.v.order...)
	f.v.mu.Unlock()
	sort.Strings(keys)
	for _, k := range keys {
		f.v.mu.Lock()
		g, vals := f.v.kids[k], f.v.vals[k]
		f.v.mu.Unlock()
		fmt.Fprintf(b, "%s%s %s\n", f.v.name, labelPairs(f.v.labels, vals), formatValue(g.Value()))
	}
}

// GaugeVec registers a labeled float-gauge family (nil on a nil registry).
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	checkLabels(labels)
	v := &GaugeVec{name: name, labels: labels, kids: map[string]*FloatGauge{}, vals: map[string][]string{}}
	r.register(&gaugeVecFamily{help: help, v: v})
	return v
}

type gaugeFuncFamily struct {
	name, help string
	fn         func() float64
}

func (f *gaugeFuncFamily) meta() (string, string, string) { return f.name, f.help, "gauge" }
func (f *gaugeFuncFamily) write(b *strings.Builder) {
	fmt.Fprintf(b, "%s %s\n", f.name, formatValue(f.fn()))
}

// GaugeFunc registers a gauge whose value is computed at scrape time —
// the bridge for state that already has its own counters (cache stats,
// pool depths, simulator totals). fn must be safe to call concurrently.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	r.register(&gaugeFuncFamily{name: name, help: help, fn: fn})
}

type counterFuncFamily struct {
	name, help string
	fn         func() float64
}

func (f *counterFuncFamily) meta() (string, string, string) { return f.name, f.help, "counter" }
func (f *counterFuncFamily) write(b *strings.Builder) {
	fmt.Fprintf(b, "%s %s\n", f.name, formatValue(f.fn()))
}

// CounterFunc registers a counter whose value is read at scrape time from
// an external monotonic source (e.g. cache hit totals). fn must be
// monotonic and safe to call concurrently.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	r.register(&counterFuncFamily{name: name, help: help, fn: fn})
}

// CounterFuncVec is a labeled counter family whose children read external
// monotonic sources at scrape time — CounterFunc partitioned by label
// values (e.g. iteration totals by mode). A nil CounterFuncVec no-ops.
type CounterFuncVec struct {
	name   string
	labels []string
	mu     sync.Mutex
	kids   []counterFuncChild
}

type counterFuncChild struct {
	values []string
	fn     func() float64
}

// With binds one label combination to its scrape-time source. fn must be
// monotonic and safe to call concurrently; the value count must match the
// registered label names. Children render in registration order.
func (v *CounterFuncVec) With(fn func() float64, values ...string) {
	if v == nil {
		return
	}
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("obs: %s expects %d label values, got %d", v.name, len(v.labels), len(values)))
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	v.kids = append(v.kids, counterFuncChild{values: append([]string(nil), values...), fn: fn})
}

type counterFuncVecFamily struct {
	help string
	v    *CounterFuncVec
}

func (f *counterFuncVecFamily) meta() (string, string, string) { return f.v.name, f.help, "counter" }
func (f *counterFuncVecFamily) write(b *strings.Builder) {
	f.v.mu.Lock()
	kids := append([]counterFuncChild(nil), f.v.kids...)
	f.v.mu.Unlock()
	for _, k := range kids {
		fmt.Fprintf(b, "%s%s %s\n", f.v.name, labelPairs(f.v.labels, k.values), formatValue(k.fn()))
	}
}

// CounterFuncVec registers a labeled scrape-time counter family (nil on a
// nil registry).
func (r *Registry) CounterFuncVec(name, help string, labels ...string) *CounterFuncVec {
	if r == nil {
		return nil
	}
	checkLabels(labels)
	v := &CounterFuncVec{name: name, labels: labels}
	r.register(&counterFuncVecFamily{help: help, v: v})
	return v
}

// ---------------------------------------------------------------------------
// Histogram

// DefBuckets is the default latency bucket layout in seconds: 100µs to
// ~100s in roughly 1-2.5-5 steps — wide enough for both microsecond cache
// hits and multi-second cold simulations.
var DefBuckets = []float64{
	.0001, .00025, .0005, .001, .0025, .005, .01, .025, .05,
	.1, .25, .5, 1, 2.5, 5, 10, 25, 50, 100,
}

// Histogram is a fixed-bucket histogram with cumulative exposition and
// bucket-interpolated quantile estimation. A nil Histogram no-ops.
type Histogram struct {
	bounds  []float64      // upper bounds, ascending; +Inf implicit
	counts  []atomic.Int64 // per-bucket (non-cumulative) counts
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits of the value sum
}

func newHistogram(buckets []float64) *Histogram {
	bs := append([]float64(nil), buckets...)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, counts: make([]atomic.Int64, len(bs)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Binary search for the first bound >= v; the last slot is +Inf.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Quantile estimates the q-quantile (0 < q < 1) from the bucket counts by
// linear interpolation inside the target bucket, the same estimate
// Prometheus's histogram_quantile computes. It returns 0 with no
// observations; an estimate landing in the +Inf bucket returns the
// largest finite bound.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum int64
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			cum += c
			continue
		}
		if float64(cum+c) >= rank {
			if i == len(h.bounds) {
				// +Inf bucket: clamp to the largest finite bound.
				if len(h.bounds) == 0 {
					return 0
				}
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			frac := (rank - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			} else if frac > 1 {
				frac = 1
			}
			return lo + (hi-lo)*frac
		}
		cum += c
	}
	if len(h.bounds) == 0 {
		return 0
	}
	return h.bounds[len(h.bounds)-1]
}

// writeSamples appends the histogram's _bucket/_sum/_count lines.
func (h *Histogram) writeSamples(b *strings.Builder, name string, labelNames, labelValues []string) {
	var cum int64
	withLE := func(le string) string {
		ns := append(append([]string(nil), labelNames...), "le")
		vs := append(append([]string(nil), labelValues...), le)
		return labelPairs(ns, vs)
	}
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(b, "%s_bucket%s %d\n", name, withLE(formatValue(bound)), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(b, "%s_bucket%s %d\n", name, withLE("+Inf"), cum)
	fmt.Fprintf(b, "%s_sum%s %s\n", name, labelPairs(labelNames, labelValues), formatValue(h.Sum()))
	fmt.Fprintf(b, "%s_count%s %d\n", name, labelPairs(labelNames, labelValues), h.count.Load())
}

type histogramFamily struct {
	name, help string
	h          *Histogram
}

func (f *histogramFamily) meta() (string, string, string) { return f.name, f.help, "histogram" }
func (f *histogramFamily) write(b *strings.Builder) {
	f.h.writeSamples(b, f.name, nil, nil)
}

// Histogram registers a histogram with the given bucket upper bounds
// (nil buckets: DefBuckets). Returns nil on a nil registry.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	if buckets == nil {
		buckets = DefBuckets
	}
	h := newHistogram(buckets)
	r.register(&histogramFamily{name: name, help: help, h: h})
	return h
}

// HistogramVec is a histogram family partitioned by label values.
type HistogramVec struct {
	name    string
	labels  []string
	buckets []float64
	mu      sync.Mutex
	kids    map[string]*Histogram
	order   []string
	vals    map[string][]string
}

// With returns the child histogram for the label values, creating it on
// first use.
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil {
		return nil
	}
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("obs: %s expects %d label values, got %d", v.name, len(v.labels), len(values)))
	}
	key := strings.Join(values, "\x00")
	v.mu.Lock()
	defer v.mu.Unlock()
	h, ok := v.kids[key]
	if !ok {
		h = newHistogram(v.buckets)
		v.kids[key] = h
		v.order = append(v.order, key)
		v.vals[key] = append([]string(nil), values...)
	}
	return h
}

// Children returns the live (labelValues, histogram) pairs in sorted
// label order — the introspection hook quantile reporting reads.
func (v *HistogramVec) Children() [][2]interface{} {
	if v == nil {
		return nil
	}
	v.mu.Lock()
	keys := append([]string(nil), v.order...)
	v.mu.Unlock()
	sort.Strings(keys)
	out := make([][2]interface{}, 0, len(keys))
	for _, k := range keys {
		v.mu.Lock()
		h, vals := v.kids[k], v.vals[k]
		v.mu.Unlock()
		out = append(out, [2]interface{}{vals, h})
	}
	return out
}

type histogramVecFamily struct {
	help string
	v    *HistogramVec
}

func (f *histogramVecFamily) meta() (string, string, string) { return f.v.name, f.help, "histogram" }
func (f *histogramVecFamily) write(b *strings.Builder) {
	f.v.mu.Lock()
	keys := append([]string(nil), f.v.order...)
	f.v.mu.Unlock()
	sort.Strings(keys)
	for _, k := range keys {
		f.v.mu.Lock()
		h, vals := f.v.kids[k], f.v.vals[k]
		f.v.mu.Unlock()
		h.writeSamples(b, f.v.name, f.v.labels, vals)
	}
}

// HistogramVec registers a labeled histogram family (nil buckets:
// DefBuckets). Returns nil on a nil registry.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	checkLabels(labels)
	if buckets == nil {
		buckets = DefBuckets
	}
	bs := append([]float64(nil), buckets...)
	sort.Float64s(bs)
	v := &HistogramVec{name: name, labels: labels, buckets: bs, kids: map[string]*Histogram{}, vals: map[string][]string{}}
	r.register(&histogramVecFamily{help: help, v: v})
	return v
}
