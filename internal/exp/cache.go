package exp

import (
	"container/list"
	"context"
	"errors"
	"hash/fnv"
	"strings"
	"time"

	"fmt"
	"sync"

	"unimem/internal/app"
	"unimem/internal/machine"
	"unimem/internal/workloads"
)

// RunKey identifies one deterministic app.Run execution. Two runs with equal
// keys produce bit-identical *app.Result values (every stochastic input in
// the simulator flows from the seed through xrand), so the suite may execute
// the run once and share the result.
//
// The machine component is a performance fingerprint of the tier, CPU and
// network parameters rather than the Machine.Name: derivation chains such as
// dramMachineFor(PlatformA().WithNVMBandwidthFraction(0.5)) and
// dramMachineFor(PlatformA().WithNVMLatencyFactor(4)) yield differently
// named but physically identical platforms, and the cache must recognize
// them as the same DRAM-only baseline.
//
// RunKey is also the snapshot format's unit of versioning: every field is
// part of the persisted entry key, so a snapshot written by a build whose
// fingerprint or digest scheme differs simply never matches — stale entries
// age out through the LRU instead of serving wrong results.
type RunKey struct {
	// Workload is name|class|ranks|iterations of the (prep-applied)
	// workload; for built-in workloads all content is a pure function of
	// those four.
	Workload string
	// Spec is the content digest of the declarative scenario spec the
	// workload was compiled from ("" for built-ins): two scenarios that
	// share a name but differ anywhere in their spec — one schedule
	// entry is enough — must never share a cache entry.
	Spec string
	// Machine is the performance fingerprint from machineFingerprint.
	Machine string
	// Strategy identifies the placement policy ("static:dram-only",
	// "static:pin:lhs", "xmem", ...).
	Strategy string
	// Ranks, RPN, Seed, MatCap and Chunk mirror the app.Options fields
	// that influence the run.
	Ranks  int
	RPN    int
	Seed   uint64
	MatCap int64
	Chunk  int64
}

// String renders the key as one stable line: every field in declaration
// order, "|"-separated. It is the unit both the shard hash and the cluster
// layer's consistent-hash ring operate on — two processes built from the
// same source render identical strings for identical runs, which is what
// lets independent daemons agree on a key's owning peer without
// coordination.
func (k RunKey) String() string {
	return fmt.Sprintf("%s|%s|%s|%s|%d|%d|%d|%d|%d",
		k.Workload, k.Spec, k.Machine, k.Strategy,
		k.Ranks, k.RPN, k.Seed, k.MatCap, k.Chunk)
}

// RouteKey derives the routing identity of one prospective run: the same
// RunKey the engine would cache it under — Quick prep, the strategy's
// target-machine derivation and its cache-key name included — rendered as
// a stable string. The serve layer hashes it onto the cluster's
// consistent-hash ring, so the peer that owns a key is exactly the peer
// whose run cache will hold (or already holds) the memoized result.
func RouteKey(w *workloads.Workload, m *machine.Machine, st Strategy, quick bool, opts app.Options) string {
	w = prepQuick(w, quick)
	m = st.targetMachine(m)
	return keyFor(w, m, st.cacheKey(), opts).String()
}

// keyFor builds the cache key for running w on m under the named placement
// strategy with the given options. w must already have prep applied (the
// key captures Quick mode through the iteration count).
func keyFor(w *workloads.Workload, m *machine.Machine, strategy string, opts app.Options) RunKey {
	return RunKey{
		Workload: fmt.Sprintf("%s|%s|%d|%d", w.Name, w.Class, w.Ranks, w.Iterations),
		Spec:     w.SpecDigest,
		Machine:  machineFingerprint(m),
		Strategy: strategy,
		Ranks:    opts.Ranks,
		RPN:      opts.RanksPerNode,
		Seed:     opts.Seed,
		MatCap:   opts.MaterializeCap,
		Chunk:    opts.ChunkSize,
	}
}

// Fingerprint exposes the machine performance fingerprint to the public
// Session layer and the serve pool (legacy-wrapper sessions and served
// sessions both shard on it).
func Fingerprint(m *machine.Machine) string { return machineFingerprint(m) }

// machineFingerprint renders every Machine parameter that influences
// simulated time or capacity, deliberately excluding the display Name. The
// full ordered tier list is hashed — tier count included — so platforms
// that share a DRAM/NVM pair but differ in depth or in a middle tier
// (e.g. HBM+DDR vs HBM+DDR+NVM) can never collide on a cached baseline.
func machineFingerprint(m *machine.Machine) string {
	tier := func(t machine.TierSpec) string {
		return fmt.Sprintf("%g/%g/%g/%d", t.ReadLatNS, t.WriteLatNS, t.BandwidthBps, t.CapacityBytes)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "T%d", m.NumTiers())
	for i, t := range m.Tiers {
		fmt.Fprintf(&b, " t%d=%s", i, tier(t))
	}
	fmt.Fprintf(&b, " cp=%g cpu=%g fl=%g si=%d nl=%g nb=%g",
		m.CopyBandwidthBps, m.CPUFreqHz, m.FlopsPerSec, m.SampleIntervalCycles,
		m.NetLatencyNS, m.NetBandwidthBps)
	return b.String()
}

// cacheEntry is one memoized run. The done channel gives singleflight
// semantics: concurrent requests for the same key block on the first
// executor instead of duplicating the run. completed, size and elem are
// guarded by the owning shard's mutex; res and err are written once before
// done closes and read-only after.
type cacheEntry struct {
	key  RunKey
	done chan struct{}
	res  *app.Result
	err  error

	completed bool
	size      int64
	elem      *list.Element
	// completedAt stamps (unix nanoseconds) when the entry finished
	// executing — or, for snapshot-seeded entries, when the originating
	// node completed it. Snapshot merges resolve key conflicts by this
	// stamp: the newer completed run wins. Guarded by the shard mutex.
	completedAt int64
}

// cacheShardCount is the shard fan-out. Sixteen shards keep lock hold
// times negligible against the worker-pool widths the engine runs at
// (runs dominate; the cache is touched once per cell).
const cacheShardCount = 16

// cacheShard is one lock domain of the cache: a key map plus an LRU list
// (front = most recently used) and the shard's slice of every counter, all
// guarded by one mutex so a snapshot that holds the mutex is coherent.
type cacheShard struct {
	mu      sync.Mutex
	entries map[RunKey]*cacheEntry
	lru     *list.List
	bytes   int64

	hits      int64
	misses    int64
	evictions int64
	loaded    int64
}

// RunCache memoizes deterministic app.Run executions by RunKey. It is safe
// for concurrent use by the worker pool; a nil *RunCache disables
// memoization (every Do executes its function).
//
// The cache is sharded by key hash, optionally bounded (entry and byte
// budgets, least-recently-used eviction of completed entries), and
// persistable: SaveSnapshot/LoadSnapshot round-trip successful entries
// through a versioned on-disk format so a restarted server warm-starts
// (see persist.go).
//
// Results are shared by pointer: callers must treat a returned *app.Result
// as immutable. Errors are cached alongside results so a failing baseline
// fails every dependent cell identically in serial and parallel runs —
// except context cancellation: a run aborted by its caller's context is
// forgotten, never poisoning the key for callers with a live context.
type RunCache struct {
	shards [cacheShardCount]cacheShard

	// maxEntries/maxBytes are per-shard budgets (0: unbounded). The
	// global budget handed to NewRunCacheBounded is split evenly across
	// shards, so the bound is approximate for budgets near the shard
	// count (each shard holds at least one completed entry).
	maxEntries int
	maxBytes   int64
}

// NewRunCache returns an empty, unbounded cache — the configuration the
// experiment suite uses, where every baseline must stay resident for
// byte-identical serial-vs-parallel stdout.
func NewRunCache() *RunCache { return NewRunCacheBounded(0, 0) }

// NewRunCacheBounded returns an empty cache bounded by a total entry count
// and/or byte budget (0 disables the respective bound). Budgets are
// enforced per shard (total split across 16 shards, minimum one entry
// each), so small budgets are approximate; eviction is least-recently-used
// and never removes an in-flight entry.
func NewRunCacheBounded(maxEntries int, maxBytes int64) *RunCache {
	c := &RunCache{}
	if maxEntries > 0 {
		c.maxEntries = (maxEntries + cacheShardCount - 1) / cacheShardCount
	}
	if maxBytes > 0 {
		c.maxBytes = (maxBytes + cacheShardCount - 1) / cacheShardCount
	}
	for i := range c.shards {
		c.shards[i].entries = map[RunKey]*cacheEntry{}
		c.shards[i].lru = list.New()
	}
	return c
}

// shard maps a key to its lock domain.
func (c *RunCache) shard(key RunKey) *cacheShard {
	h := fnv.New32a()
	h.Write([]byte(key.String()))
	return &c.shards[h.Sum32()%cacheShardCount]
}

// resultFootprint approximates the in-memory size of a memoized result for
// the byte budget: struct headers plus the per-rank and per-phase slices.
func resultFootprint(res *app.Result) int64 {
	if res == nil {
		return 64
	}
	n := int64(128) + int64(len(res.Workload)) + int64(len(res.Manager))
	n += int64(len(res.PhaseNS)) * 8
	for i := range res.Ranks {
		n += 96 + int64(len(res.Ranks[i].Migrations.ToTier))*8
	}
	return n
}

// isCtxErr reports whether err is a context cancellation or deadline —
// the caller-induced failures that must not be memoized.
func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// Do returns the memoized result for key, executing run exactly once per
// key across all callers. A caller that arrives while another is executing
// the same key blocks until that execution finishes and counts as a hit,
// or until its own context is cancelled. When the executing caller is
// itself cancelled mid-run, the entry is dropped and the next caller with
// a live context re-executes the run. A hit refreshes the entry's LRU
// position; a completed insertion may evict least-recently-used completed
// entries past the shard budget.
func (c *RunCache) Do(ctx context.Context, key RunKey, run func() (*app.Result, error)) (*app.Result, error) {
	res, _, err := c.DoInfo(ctx, key, run)
	return res, err
}

// DoInfo is Do reporting whether the result was served from a memoized
// (or in-flight) entry — the per-request hit/miss attribution the serve
// layer's latency histograms label by.
func (c *RunCache) DoInfo(ctx context.Context, key RunKey, run func() (*app.Result, error)) (*app.Result, bool, error) {
	if c == nil {
		res, err := run()
		return res, false, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	sh := c.shard(key)
	for {
		sh.mu.Lock()
		if e, ok := sh.entries[key]; ok {
			sh.lru.MoveToFront(e.elem)
			sh.mu.Unlock()

			select {
			case <-e.done:
			case <-ctx.Done():
				return nil, false, ctx.Err()
			}
			if isCtxErr(e.err) {
				// The executor was cancelled and the entry dropped; retry under
				// our own context (which may itself be dead by now).
				if err := ctx.Err(); err != nil {
					return nil, false, err
				}
				continue
			}
			sh.mu.Lock()
			sh.hits++
			// Capture under the lock: a snapshot merge may replace a
			// completed entry's result pointer in place (seedResult), so an
			// unlocked read here would race with it.
			res, rerr := e.res, e.err
			sh.mu.Unlock()
			return res, true, rerr
		}
		e := &cacheEntry{key: key, done: make(chan struct{})}
		sh.entries[key] = e
		e.elem = sh.lru.PushFront(e)
		// The miss is counted at insertion, under the same lock that
		// creates the entry, so any coherent Stats snapshot observes
		// Entries+Evictions <= Misses+Loaded (never an entry whose miss
		// has not been recorded yet).
		sh.misses++
		sh.mu.Unlock()

		res, err := run()
		// Settle the entry's fate under the lock BEFORE waking waiters:
		// a cancelled entry must already be gone when its waiters retry
		// (they would otherwise spin on the stale entry until this
		// goroutine reacquired the lock), and a successful entry must be
		// fully accounted before a waiter can observe it.
		sh.mu.Lock()
		e.res, e.err = res, err
		if isCtxErr(e.err) {
			if sh.entries[key] == e {
				delete(sh.entries, key)
				sh.lru.Remove(e.elem)
			}
		} else {
			e.completed = true
			e.completedAt = time.Now().UnixNano()
			e.size = resultFootprint(e.res)
			sh.bytes += e.size
			c.evictLocked(sh)
		}
		sh.mu.Unlock()
		close(e.done)
		return res, false, err
	}
}

// evictLocked removes least-recently-used completed entries until the
// shard is within its budgets. In-flight entries (waiters blocked on them)
// are never evicted; if only in-flight entries remain the shard runs over
// budget until they complete. Callers hold sh.mu.
func (c *RunCache) evictLocked(sh *cacheShard) {
	over := func() bool {
		return (c.maxEntries > 0 && sh.lru.Len() > c.maxEntries) ||
			(c.maxBytes > 0 && sh.bytes > c.maxBytes)
	}
	for over() {
		el := sh.lru.Back()
		for el != nil && !el.Value.(*cacheEntry).completed {
			el = el.Prev()
		}
		if el == nil {
			return
		}
		e := el.Value.(*cacheEntry)
		sh.lru.Remove(el)
		delete(sh.entries, e.key)
		sh.bytes -= e.size
		sh.evictions++
	}
}

// seedResult is how a snapshot-load or merge installs an already-computed
// successful result as a completed entry. completedAt is the originating
// node's completion stamp (0: unknown — treated as older than any stamped
// entry). It counts as Loaded rather than a miss, respects the shard
// budgets, and resolves key conflicts conservatively:
//
//   - an in-flight local entry (waiters parked on it) is never touched;
//   - a completed local entry survives unless the incoming entry carries a
//     strictly newer completion stamp, in which case the incoming result
//     replaces it in place (newer completed run wins).
//
// It returns what happened: seedAdded, seedReplaced or seedSkipped.
func (c *RunCache) seedResult(key RunKey, res *app.Result, completedAt int64) seedOutcome {
	sh := c.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if prev, ok := sh.entries[key]; ok {
		if !prev.completed || prev.err != nil || prev.completedAt >= completedAt {
			return seedSkipped
		}
		// Replace in place: swap the result and re-account the byte budget;
		// the entry keeps its LRU position and its already-closed done
		// channel (concurrent readers that captured the old pointer keep a
		// consistent, immutable result — results are shared by pointer and
		// never mutated).
		size := resultFootprint(res)
		sh.bytes += size - prev.size
		prev.res, prev.size, prev.completedAt = res, size, completedAt
		sh.loaded++
		c.evictLocked(sh)
		return seedReplaced
	}
	e := &cacheEntry{key: key, done: closedChan, res: res, completed: true,
		size: resultFootprint(res), completedAt: completedAt}
	sh.entries[key] = e
	e.elem = sh.lru.PushFront(e)
	sh.bytes += e.size
	sh.loaded++
	c.evictLocked(sh)
	return seedAdded
}

// seedOutcome is seedResult's conflict-resolution verdict.
type seedOutcome int

const (
	seedSkipped seedOutcome = iota
	seedAdded
	seedReplaced
)

// closedChan is the pre-closed done channel of seeded entries.
var closedChan = func() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}()

// Contains reports whether key currently has a completed entry, without
// blocking on in-flight runs — a residency probe for tests and capacity
// diagnostics (it does not refresh the entry's LRU position).
func (c *RunCache) Contains(key RunKey) bool {
	if c == nil {
		return false
	}
	sh := c.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := sh.entries[key]
	return ok && e.completed
}

// CacheStats is a point-in-time snapshot of cache effectiveness. The
// snapshot is coherent: every counter is read under the shard locks, so
// Entries+Evictions never exceeds Misses+Loaded (an entry exists only
// after its miss — or snapshot load — was recorded).
type CacheStats struct {
	// Hits counts Do calls served from a memoized (or in-flight) run.
	Hits int64 `json:"hits"`
	// Misses counts Do calls that executed their run function.
	Misses int64 `json:"misses"`
	// Entries is the number of distinct keys currently resident
	// (including in-flight runs).
	Entries int `json:"entries"`
	// Evictions counts completed entries removed by the LRU budgets.
	Evictions int64 `json:"evictions"`
	// Loaded counts entries seeded from a disk snapshot.
	Loaded int64 `json:"loaded"`
	// Bytes is the approximate footprint of resident completed entries.
	Bytes int64 `json:"bytes"`
}

// Stats takes a coherent snapshot of the cache counters: all shard locks
// are held while reading, so the totals are mutually consistent (a
// concurrent Do can never make the snapshot show an entry whose miss is
// missing, or a hit/miss total out of step with Entries).
func (c *RunCache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	var st CacheStats
	for i := range c.shards {
		c.shards[i].mu.Lock()
	}
	for i := range c.shards {
		sh := &c.shards[i]
		st.Hits += sh.hits
		st.Misses += sh.misses
		st.Entries += len(sh.entries)
		st.Evictions += sh.evictions
		st.Loaded += sh.loaded
		st.Bytes += sh.bytes
	}
	for i := len(c.shards) - 1; i >= 0; i-- {
		c.shards[i].mu.Unlock()
	}
	return st
}
