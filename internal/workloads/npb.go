package workloads

// This file defines the six NAS Parallel Benchmark kernels of the paper's
// evaluation as phase-structured workloads. Object inventories follow the
// paper's Table 3 exactly; per-rank sizes, access patterns and flop counts
// are first-order models of the Class C kernels at the paper's 4-rank
// baseline (scaled for other classes/ranks), tuned so the sensitivity
// behaviour the paper reports emerges: e.g. SP's lhs is latency-sensitive,
// its in/out buffers bandwidth-sensitive and rhs both (Fig. 4); LU is the
// most memory-bound; FT's huge complex arrays only become placeable when
// partitioned.

// NewCG builds the conjugate-gradient kernel (paper Fig. 1's structure):
// a sparse matrix-vector product over a followed by reductions and vector
// updates. col_idx drives a latency-bound gather into p. The three large
// initialization-only arrays (aelt, acol, arow) are excluded per Table 3.
func NewCG(class string, ranks int) *Workload {
	b := newBench("CG", class, ranks, 75, 0.42)
	// a and col_idx are regular one-dimensional arrays: the conservative
	// chunking rule may partition them when DRAM is scarce.
	b.obj("a", 120, true)
	b.obj("col_idx", 60, true)
	b.obj("rowstr", 4, false)
	b.obj("p", 16, false)
	b.obj("q", 16, false)
	b.obj("z", 16, false)
	b.obj("r", 16, false)
	b.obj("x", 16, false)
	b.obj("w", 16, false)

	b.phase("spmv_q_Ap", CommNone, 0, 30,
		b.rs("a", 1, 0), b.rs("col_idx", 1, 0), b.rs("rowstr", 1, 0),
		b.rr("p", 15, 0), b.rs("q", 1, 1))
	b.phase("dot_pq", CommAllreduce, 0.008, 8,
		b.rs("p", 1, 0), b.rs("q", 1, 0))
	b.phase("axpy_z_r", CommNone, 0, 16,
		b.rs("z", 1, 0.5), b.rs("r", 1, 0.5), b.rs("p", 1, 0), b.rs("q", 1, 0))
	b.phase("dot_rho", CommAllreduce, 0.008, 8, b.rs("r", 2, 0))
	b.phase("axpy_p", CommNone, 0, 8, b.rs("p", 1, 0.5), b.rs("r", 1, 0))
	b.phase("halo_x", CommHalo, 256, 2, b.rs("x", 1, 0), b.rs("w", 1, 0.5))
	b.phase("norm", CommAllreduce, 0.008, 6, b.rs("x", 1, 0), b.rs("r", 1, 0))
	// p's reference count depends on the convergence test, so the static
	// analysis cannot hint it (exercises the paper's limitation).
	return b.finish("p")
}

// NewMG builds the multigrid kernel: large stencil sweeps over u and r
// with a small halo buffer. Its big arrays are multi-dimensional with
// pervasive memory aliasing, so the conservative chunking rule cannot
// partition them (the paper's Fig. 13 observation for 128MB DRAM).
func NewMG(class string, ranks int) *Workload {
	b := newBench("MG", class, ranks, 40, 0.99)
	b.obj("u", 110, false)
	b.obj("r", 110, false)
	b.obj("v", 28, false)
	b.obj("buff", 12, false)

	b.phase("resid", CommNone, 0, 45,
		b.rt("u", 1, 0), b.rt("v", 1, 0), b.rt("r", 1, 1))
	b.phase("comm3_r", CommHalo, 512, 1, b.rsFull("buff", 2, 0.5))
	b.phase("psinv", CommNone, 0, 40, b.rt("r", 2, 0), b.rt("u", 1, 0.5))
	b.phase("rprj3", CommNone, 0, 18, b.rt("r", 1, 0.3))
	b.phase("interp", CommNone, 0, 18, b.rt("u", 1, 0.5))
	b.phase("comm3_u", CommHalo, 512, 1, b.rsFull("buff", 2, 0.5))
	b.phase("norm2u3", CommAllreduce, 0.016, 10, b.rt("r", 1, 0))
	return b.finish()
}

// NewFT builds the 3-D FFT kernel. Its three complex arrays u0/u1/u2 each
// exceed the default DRAM tier, so without partitioning almost nothing is
// placeable; they are regular 1-D arrays, so Unimem's conservative
// chunking applies — the benchmark where partitioning contributes most
// (Fig. 11). The paper uses Class C for FT.
func NewFT(class string, ranks int) *Workload {
	b := newBench("FT", class, ranks, 25, 0.99)
	b.obj("u", 24, false)
	b.obj("u0", 330, true)
	b.obj("u1", 330, true)
	b.obj("u2", 330, true)
	b.obj("twiddle", 100, false)

	b.phase("evolve", CommNone, 0, 150,
		b.rs("u0", 0.2, 0), b.rs("u1", 0.5, 1), b.rs("twiddle", 0.5, 0))
	b.phase("fft_layers1", CommNone, 0, 600,
		b.rs("u1", 2, 0.5), b.rs("u", 4, 0), b.rs("twiddle", 0.75, 0))
	b.phase("transpose", CommAlltoall, 20000, 20,
		b.rs("u1", 0.5, 0), b.rs("u2", 0.2, 1))
	b.phase("fft_layers2", CommNone, 0, 600,
		b.rs("u2", 0.2, 0.5), b.rs("u", 4, 0), b.rs("twiddle", 0.75, 0))
	b.phase("checksum", CommAllreduce, 0.016, 12, b.rs("u2", 0.05, 0))
	return b.finish()
}

// NewLU builds the SSOR solver: streaming right-hand-side assembly plus
// lower/upper triangular sweeps whose jacobian blocks (a, b, c, d) are
// accessed irregularly with dependent chains — the benchmark with the
// largest NVM-only slowdown in the paper's sweeps. Its placement is
// dominated by the cross-phase global search (Fig. 11).
func NewLU(class string, ranks int) *Workload {
	b := newBench("LU", class, ranks, 60, 0.99)
	b.obj("u", 45, false)
	b.obj("rsd", 45, false)
	b.obj("frct", 45, false)
	b.obj("flux", 25, false)
	b.obj("a", 30, false)
	b.obj("b", 30, false)
	b.obj("c", 30, false)
	b.obj("d", 30, false)
	b.obj("buf", 8, false)
	b.obj("buf1", 8, false)

	b.phase("rhs", CommNone, 0, 45,
		b.rt("u", 2, 0), b.rt("rsd", 1, 1), b.rs("frct", 1, 0), b.rs("flux", 2, 0.5))
	b.phase("jacld", CommNone, 0, 35,
		b.rs("a", 1, 0.8), b.rs("b", 1, 0.8), b.rs("c", 1, 0.8), b.rs("d", 1, 0.8))
	b.phase("blts", CommNone, 0, 30,
		b.rr("a", 1.7, 0), b.rr("b", 1.7, 0), b.rr("c", 1.7, 0), b.rr("d", 1.7, 0),
		b.rt("rsd", 1, 0.5))
	b.phase("exchange_1", CommWaitHalo, 384, 1, b.rsFull("buf", 2, 0.5))
	b.phase("jacu", CommNone, 0, 35,
		b.rs("a", 1, 0.8), b.rs("b", 1, 0.8), b.rs("c", 1, 0.8), b.rs("d", 1, 0.8))
	b.phase("buts", CommNone, 0, 30,
		b.rr("a", 1.7, 0), b.rr("b", 1.7, 0), b.rr("c", 1.7, 0), b.rr("d", 1.7, 0),
		b.rt("rsd", 1, 0.5))
	b.phase("exchange_2", CommHalo, 384, 1, b.rsFull("buf1", 2, 0.5))
	b.phase("update_u", CommNone, 0, 15, b.rt("u", 1, 0.5), b.rt("rsd", 1, 0))
	return b.finish()
}

// NewSP builds the scalar penta-diagonal ADI solver — the benchmark of the
// paper's Fig. 4 placement study. lhs is traversed through dependent
// recurrences (latency-sensitive, not bandwidth-sensitive); the halo pack
// buffers are pure streams (bandwidth-sensitive, not latency-sensitive);
// rhs is mid-MLP irregular (sensitive to both). Initial data placement
// contributes most here (Fig. 11): nearly every phase touches the big
// objects, leaving almost no window to hide adoption migrations.
func NewSP(class string, ranks int) *Workload {
	b := newBench("SP", class, ranks, 50, 0.98)
	b.obj("lhs", 150, false)
	b.obj("rhs", 60, false)
	b.obj("forcing", 40, false)
	b.obj("u", 60, false)
	b.obj("us", 10, false)
	b.obj("vs", 10, false)
	b.obj("ws", 10, false)
	b.obj("qs", 10, false)
	b.obj("rho_i", 10, false)
	b.obj("square", 10, false)
	b.obj("in_buffer", 20, false)
	b.obj("out_buffer", 20, false)

	b.phase("compute_rhs", CommNone, 0, 55,
		b.rt("u", 2, 0), b.rs("forcing", 1, 0), b.rr("rhs", 1.6, 0.6),
		b.rp("lhs", 0.04, 0.7),
		b.rs("us", 1, 0.5), b.rs("vs", 1, 0.5), b.rs("ws", 1, 0.5),
		b.rs("qs", 1, 0.5), b.rs("rho_i", 1, 0.5), b.rs("square", 1, 0.5))
	b.phase("x_solve", CommNone, 0, 40,
		b.rp("lhs", 0.45, 0.3), b.rr("rhs", 0.9, 0.5))
	b.phase("y_solve", CommNone, 0, 40,
		b.rp("lhs", 0.45, 0.3), b.rr("rhs", 0.9, 0.5))
	b.phase("z_solve", CommNone, 0, 40,
		b.rp("lhs", 0.45, 0.3), b.rr("rhs", 0.9, 0.5))
	b.phase("add", CommNone, 0, 18, b.rt("u", 1, 0.5), b.rr("rhs", 0.5, 0))
	b.phase("copy_faces", CommHalo, 2048, 6,
		b.rsFull("in_buffer", 2, 0.5), b.rsFull("out_buffer", 2, 0.5),
		b.rs("u", 0.5, 0))
	return b.finish()
}

// NewBT builds the block-tridiagonal solver: the benchmark where the
// phase-local search adds the most on top of the global search (Fig. 11) —
// its solve phases want the jacobian/lhs blocks in DRAM while the
// right-hand-side phases want u/rhs/forcing, and both groups together
// exceed the DRAM tier.
func NewBT(class string, ranks int) *Workload {
	b := newBench("BT", class, ranks, 50, 0.99)
	b.obj("lhsa", 70, false)
	b.obj("lhsb", 70, false)
	b.obj("lhsc", 70, false)
	b.obj("fjac", 28, false)
	b.obj("njac", 28, false)
	b.obj("u", 45, false)
	b.obj("rhs", 45, false)
	b.obj("forcing", 45, false)
	b.obj("us", 8, false)
	b.obj("vs", 8, false)
	b.obj("ws", 8, false)
	b.obj("qs", 8, false)
	b.obj("rho_i", 8, false)
	b.obj("square", 8, false)
	b.obj("in_buffer", 18, false)
	b.obj("out_buffer", 18, false)
	// Per-direction solver workspaces: each is intensely reused by exactly
	// one solve phase, and each is too large for all three to co-reside in
	// DRAM, so a static placement must abandon two of them; rotating the
	// hot workspace through DRAM phase by phase is precisely what the
	// phase-local search buys BT in the paper's Fig. 11.
	b.obj("xtmp", 120, false)
	b.obj("ytmp", 120, false)
	b.obj("ztmp", 120, false)

	b.phase("compute_rhs", CommNone, 0, 70,
		b.rt("u", 2, 0), b.rs("forcing", 1, 0), b.rr("rhs", 1.4, 0.6),
		b.rs("us", 1, 0.5), b.rs("vs", 1, 0.5), b.rs("ws", 1, 0.5),
		b.rs("qs", 1, 0.5), b.rs("rho_i", 1, 0.5), b.rs("square", 1, 0.5))
	b.phase("x_solve", CommNone, 0, 60,
		b.rr("lhsa", 1.3, 0.4), b.rr("xtmp", 20, 0.5), b.rs("fjac", 2, 0.5),
		b.rr("rhs", 0.7, 0.5))
	b.phase("y_solve", CommNone, 0, 60,
		b.rr("lhsb", 1.3, 0.4), b.rr("ytmp", 20, 0.5), b.rs("njac", 2, 0.5),
		b.rr("rhs", 0.7, 0.5))
	b.phase("z_solve", CommNone, 0, 60,
		b.rr("lhsc", 1.3, 0.4), b.rr("ztmp", 20, 0.5), b.rs("fjac", 1, 0.5),
		b.rs("njac", 1, 0.5), b.rr("rhs", 0.7, 0.5))
	b.phase("add", CommNone, 0, 20, b.rt("u", 1, 0.5), b.rr("rhs", 0.4, 0))
	b.phase("copy_faces", CommHalo, 1536, 6,
		b.rsFull("in_buffer", 2, 0.5), b.rsFull("out_buffer", 2, 0.5),
		b.rs("u", 0.5, 0))
	return b.finish()
}
