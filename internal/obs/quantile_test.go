package obs

import (
	"math"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
)

// The quantile estimator interpolates inside the target bucket; these
// tests pin its behavior at the degenerate shapes where interpolation
// has no interior to work with.

func TestQuantileEmptyHistogram(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	for _, q := range []float64{0.01, 0.5, 0.99} {
		if got := h.Quantile(q); got != 0 {
			t.Errorf("empty Quantile(%g) = %g, want 0", q, got)
		}
	}
	// Degenerate layout: no buckets at all. With observations, every
	// value lands in the implicit +Inf bucket and there is no finite
	// bound to clamp to.
	hb := newHistogram(nil)
	hb.Observe(3)
	if got := hb.Quantile(0.5); got != 0 {
		t.Errorf("bucketless Quantile(0.5) = %g, want 0", got)
	}
}

func TestQuantileSingleBucket(t *testing.T) {
	h := newHistogram([]float64{10})
	for i := 0; i < 4; i++ {
		h.Observe(2)
	}
	// All mass in [0, 10]: rank interpolates linearly across the one
	// bucket regardless of where the observations actually sat.
	if got := h.Quantile(0.5); math.Abs(got-5) > 1e-9 {
		t.Errorf("single-bucket p50 = %g, want 5 (interpolated midpoint)", got)
	}
	if got := h.Quantile(1); math.Abs(got-10) > 1e-9 {
		t.Errorf("single-bucket p100 = %g, want the bucket bound 10", got)
	}
}

func TestQuantileAllInInfBucket(t *testing.T) {
	h := newHistogram([]float64{0.001, 0.01})
	for i := 0; i < 8; i++ {
		h.Observe(99) // far beyond every finite bound
	}
	// Prometheus's histogram_quantile clamps to the largest finite bound
	// when the estimate lands in +Inf; so do we.
	for _, q := range []float64{0.1, 0.5, 0.999} {
		if got := h.Quantile(q); got != 0.01 {
			t.Errorf("+Inf-bucket Quantile(%g) = %g, want 0.01 (largest finite bound)", q, got)
		}
	}
}

func TestQuantileExactBoundaryObservations(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	// Observations exactly on bucket bounds count into the bucket whose
	// upper bound they equal (le semantics: SearchFloat64s finds the
	// first bound >= v).
	h.Observe(1)
	h.Observe(2)
	h.Observe(4)
	if got := h.counts[0].Load(); got != 1 {
		t.Errorf("bucket le=1 count = %d, want 1", got)
	}
	if got := h.counts[1].Load(); got != 1 {
		t.Errorf("bucket le=2 count = %d, want 1", got)
	}
	if got := h.counts[2].Load(); got != 1 {
		t.Errorf("bucket le=4 count = %d, want 1", got)
	}
	// rank(1.0) = 3: the cumulative count reaches 3 exactly at the last
	// occupied bucket, whose interpolation tops out at its upper bound.
	if got := h.Quantile(1); math.Abs(got-4) > 1e-9 {
		t.Errorf("boundary p100 = %g, want 4", got)
	}
	// rank(1/3) = 1: exactly exhausts the first bucket -> its bound.
	if got := h.Quantile(1.0 / 3.0); math.Abs(got-1) > 1e-9 {
		t.Errorf("boundary p33 = %g, want 1", got)
	}
}

func TestHandlerHEADAndContentLength(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_total", "A counter.").Inc()
	h := r.Handler()

	get := httptest.NewRecorder()
	h.ServeHTTP(get, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	body := get.Body.String()
	if len(body) == 0 {
		t.Fatal("GET /metrics returned an empty body")
	}
	cl := get.Header().Get("Content-Length")
	if want := strconv.Itoa(len(body)); cl != want {
		t.Errorf("GET Content-Length = %q, want %q", cl, want)
	}

	head := httptest.NewRecorder()
	h.ServeHTTP(head, httptest.NewRequest(http.MethodHead, "/metrics", nil))
	if head.Body.Len() != 0 {
		t.Errorf("HEAD /metrics returned a %d-byte body, want none", head.Body.Len())
	}
	// HEAD must advertise the length a GET would have returned.
	if got := head.Header().Get("Content-Length"); got != cl {
		t.Errorf("HEAD Content-Length = %q, want the GET length %q", got, cl)
	}
	if got := head.Header().Get("Content-Type"); !strings.Contains(got, "text/plain") {
		t.Errorf("HEAD Content-Type = %q, want text/plain exposition", got)
	}
}

func TestGaugeVecExposition(t *testing.T) {
	r := NewRegistry()
	v := r.GaugeVec("test_regret", "Regret by archetype.", "archetype")
	v.With("drift").Set(0.125)
	v.With("steady").Set(-0.5)
	v.With("drift").Set(0.25) // same child, latest value wins

	var b strings.Builder
	r.WriteTo(&b)
	out := b.String()
	for _, want := range []string{
		"# TYPE test_regret gauge",
		`test_regret{archetype="drift"} 0.25`,
		`test_regret{archetype="steady"} -0.5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if err := ValidateExposition(strings.NewReader(out)); err != nil {
		t.Errorf("validation: %v", err)
	}

	// Nil safety mirrors the other instruments.
	var nilVec *GaugeVec
	nilVec.With("x").Set(1)
	var nilGauge *FloatGauge
	nilGauge.Set(2)
	if nilGauge.Value() != 0 {
		t.Error("nil FloatGauge.Value() != 0")
	}
	if (*Registry)(nil).GaugeVec("x", "y", "z") != nil {
		t.Error("nil registry returned a non-nil GaugeVec")
	}
}
