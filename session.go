package unimem

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"sync"

	"unimem/internal/exp"
	"unimem/internal/lru"
)

// Session is the stateful entry point of the library: one value that owns
// everything repeated runs on a machine should share — the memoized
// platform Calibration, a RunCache of deterministic baseline executions,
// and a worker pool for batch APIs — and executes any Workload under any
// Strategy with context cancellation plumbed down to the simulated ranks.
//
//	m := unimem.PlatformA().WithNVMBandwidthFraction(0.5)
//	sess := unimem.New(m)
//	base, err := sess.Run(ctx, w, unimem.SlowestOnly())
//	uni, err := sess.Run(ctx, w, unimem.Unimem())
//
// A Session is safe for concurrent use by multiple goroutines: results
// are deterministic per (workload, strategy, options) regardless of
// interleaving, and concurrent requests for the same memoized baseline
// execute it once (singleflight).
type Session struct {
	m       *Machine
	cfg     Config
	seed    uint64
	workers int
	window  int
	exact   bool
	eng     *exp.Engine
}

// RunCache memoizes deterministic runs by (workload and spec digest,
// machine performance fingerprint, strategy, harness options). Share one
// across sessions to share baselines; results are shared by pointer and
// must be treated as immutable.
type RunCache = exp.RunCache

// NewRunCache returns an empty, unbounded run cache.
func NewRunCache() *RunCache { return exp.NewRunCache() }

// NewRunCacheBounded returns an empty run cache bounded by a total entry
// count and/or byte budget (0 disables the respective bound). Eviction is
// least-recently-used; budgets are split across the cache's shards, so
// small bounds are approximate. Bounded caches back long-lived servers
// (cmd/unimem-serve) that must not grow without limit; they persist via
// RunCache.SaveSnapshot/LoadSnapshot.
func NewRunCacheBounded(maxEntries int, maxBytes int64) *RunCache {
	return exp.NewRunCacheBounded(maxEntries, maxBytes)
}

// CacheStats is a point-in-time snapshot of run-cache effectiveness.
type CacheStats = exp.CacheStats

// Option configures a Session at construction.
type Option func(*Session)

// WithConfig sets the Unimem runtime configuration used when a Job carries
// none (default: DefaultConfig). Only the Unimem strategy consults it.
func WithConfig(cfg Config) Option {
	return func(s *Session) { s.cfg = cfg }
}

// WithWorkers sets the worker-pool width RunAll and Stream fan jobs
// across (default: GOMAXPROCS; values below 1 run jobs serially).
func WithWorkers(n int) Option {
	return func(s *Session) {
		if n < 1 {
			n = 1
		}
		s.workers = n
	}
}

// WithSeed sets the harness seed applied to jobs whose Options carry none
// (default: the harness default seed, matching the legacy Run* behavior).
func WithSeed(seed uint64) Option {
	return func(s *Session) { s.seed = seed }
}

// WithStreamWindow sets Stream's sliding-window size: how many outcomes
// may be computed but not yet delivered before the pool stalls waiting
// for the consumer (default: twice the worker-pool width; values below 1
// restore the default). Larger windows decouple fast workers from a slow
// consumer at the cost of retaining more results; the window also bounds
// Stream's memory on large fleets.
func WithStreamWindow(n int) Option {
	return func(s *Session) {
		if n < 1 {
			n = 0
		}
		s.window = n
	}
}

// WithQuick caps workload iteration counts (at 12) for fast, less
// faithful runs — the same capping the experiment suite applies under
// testing.B.
func WithQuick() Option {
	return func(s *Session) { s.eng.SetQuick(true) }
}

// WithCache installs the run cache (pass a shared cache to share memoized
// baselines across sessions; pass nil to disable run memoization — the
// calibration stays memoized either way).
func WithCache(c *RunCache) Option {
	return func(s *Session) { s.eng.SetCache(c) }
}

// WithExactSim disables the analytic fast path for every run the session
// executes: each iteration is simulated event-for-event even through
// provably steady windows. Results are byte-identical either way — the
// fast path only engages where extrapolation is exact — so this is a
// verification and benchmarking knob, not a fidelity one. Per-job opt-out
// is available through Job.Options.ExactSim.
func WithExactSim() Option {
	return func(s *Session) { s.exact = true }
}

// New returns a Session bound to machine m. By default the session runs
// with DefaultConfig, a fresh private RunCache, and a GOMAXPROCS-wide
// worker pool.
func New(m *Machine, opts ...Option) *Session {
	if m == nil {
		panic("unimem: New requires a machine")
	}
	s := &Session{
		m:       m,
		cfg:     DefaultConfig(),
		workers: runtime.GOMAXPROCS(0),
		eng:     exp.NewEngine(false, exp.NewRunCache()),
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Machine returns the machine the session is bound to.
func (s *Session) Machine() *Machine { return s.m }

// Calibration returns the session's memoized one-time platform
// measurement (§3.1.2), computing it on first use. Every Unimem run whose
// Config carries no Calibration uses this value, so a session calibrates
// its machine exactly once no matter how many runs it serves.
func (s *Session) Calibration() Calibration {
	return s.eng.Calibration(s.m, s.cfg.Counters, s.cfg.Seed^0xCA11B)
}

// CacheStats snapshots the session's run-cache hit/miss counters.
func (s *Session) CacheStats() CacheStats { return s.eng.Stats() }

// PoolStats reports the session worker pool's current depth: jobs queued
// (accepted by a batch API but not yet dispatched) and jobs running.
func (s *Session) PoolStats() (queued, running int64) { return s.eng.PoolStats() }

// Job is one unit of batch work: a workload and the strategy to place it
// under, with optional per-job overrides.
type Job struct {
	Workload *Workload
	Strategy Strategy
	// Config overrides the session's Unimem configuration for this job
	// (nil: session default). Only the Unimem strategy consults it.
	Config *Config
	// Options overrides harness options; a zero Seed falls back to the
	// session seed, a zero Ranks to the workload's world size.
	Options Options
}

// Outcome is one job's result.
type Outcome struct {
	// Index is the job's position in the submitted batch (0 for Run).
	Index int
	// Job echoes the submitted job.
	Job Job
	// Result is the run outcome (nil when Err is set, or when a memoized
	// baseline failed).
	Result *Result
	// Runtimes holds the per-rank Unimem runtimes in rank order for
	// inspection; nil for non-Unimem strategies.
	Runtimes []*Runtime
	// Err is the job's error: a run failure, or the context's error when
	// the job was cancelled or never dispatched.
	Err error
	// CacheHit reports whether the result was served from the session's
	// run cache rather than a fresh execution (always false for the
	// Unimem strategy, which never caches).
	CacheHit bool
	// Explain is the job's decision-attribution document, snapshotted
	// after the run when Options.Explain was set (nil otherwise).
	Explain *ExplainDoc
	// FastPath reports the analytic fast path's memo and fast-forward
	// counters for this job. All zeros for cache hits, strategies whose
	// managers cannot fast-forward, or runs opted out via ExactSim.
	FastPath FastPathStats

	mach *Machine
}

// Tiered annotates a Unimem outcome with rank 0's per-tier residency and
// migration statistics. It returns nil when the outcome carries no
// result or no runtimes (baseline strategies run no Unimem runtime, and
// may execute on a derived twin of the session machine, so there is no
// per-tier truth to report for them).
func (o *Outcome) Tiered() *TieredResult {
	if o == nil || o.Result == nil || o.Runtimes == nil {
		return nil
	}
	tr := &TieredResult{Result: o.Result}
	var resident []int64
	for _, rt := range o.Runtimes {
		if rt.Rank() == 0 {
			resident = rt.TierResidencyBytes()
			break
		}
	}
	r0 := o.Result.Ranks[0]
	for t := 0; t < o.mach.NumTiers(); t++ {
		u := TierUsage{Tier: t, Name: o.mach.TierName(TierKind(t))}
		if t < len(resident) {
			u.ResidentBytes = resident[t]
		}
		if t < len(r0.Migrations.ToTier) {
			u.MovesIn = r0.Migrations.ToTier[t]
		}
		tr.Tiers = append(tr.Tiers, u)
	}
	return tr
}

// do executes one job and shapes its outcome. It never panics on a
// malformed job; the outcome carries the error instead so batch APIs stay
// total.
func (s *Session) do(ctx context.Context, idx int, job Job) Outcome {
	o := Outcome{Index: idx, Job: job, mach: s.m}
	if job.Workload == nil {
		o.Err = errors.New("unimem: job has nil Workload")
		return o
	}
	if job.Options.Ranks < 0 {
		// A negative world size would panic the simulator's world
		// constructor (zero means "use the workload's own").
		o.Err = errors.New("unimem: job Options.Ranks must be >= 0")
		return o
	}
	cfg := s.cfg
	if job.Config != nil {
		cfg = *job.Config
	}
	opts := job.Options
	if opts.Seed == 0 {
		opts.Seed = s.seed
	}
	if s.exact {
		opts.ExactSim = true
	}
	var info exp.ExecInfo
	o.Result, o.Runtimes, info, o.Err = s.eng.ExecuteInfo(ctx, job.Workload, s.m, job.Strategy, cfg, opts)
	o.CacheHit = info.CacheHit
	o.FastPath = info.FastPath
	if opts.Explain != nil {
		o.Explain = opts.Explain.Doc()
	}
	return o
}

// Run executes workload w under the strategy, bounded by ctx. The outcome
// is returned even on error (its Err field matches the returned error).
func (s *Session) Run(ctx context.Context, w *Workload, st Strategy) (*Outcome, error) {
	return s.RunJob(ctx, Job{Workload: w, Strategy: st})
}

// RunJob is Run with per-job configuration and harness options.
func (s *Session) RunJob(ctx context.Context, job Job) (*Outcome, error) {
	o := s.do(ctx, 0, job)
	return &o, o.Err
}

// RunAll executes the jobs across the session's worker pool and returns
// one outcome per job in job order, regardless of worker count or
// completion interleaving. The returned error is the first job error in
// index order (the same one a serial loop would surface), or the context
// error if the batch was cancelled; outcomes of jobs that were never
// dispatched carry the context error.
func (s *Session) RunAll(ctx context.Context, jobs []Job) ([]Outcome, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	outs := make([]Outcome, len(jobs))
	ran := make([]bool, len(jobs))
	perr := s.eng.ForEach(ctx, s.workers, len(jobs), func(i int) error {
		outs[i] = s.do(ctx, i, jobs[i])
		ran[i] = true
		return nil
	})
	for i := range outs {
		if !ran[i] {
			outs[i] = Outcome{Index: i, Job: jobs[i], Err: perr, mach: s.m}
		}
	}
	for i := range outs {
		if outs[i].Err != nil {
			return outs, outs[i].Err
		}
	}
	return outs, perr
}

// streamWindow returns the effective Stream window: the configured value,
// or twice the worker-pool width (the pool stays busy while the emitter
// drains) with a floor of 2.
func (s *Session) streamWindow() int {
	if s.window > 0 {
		return s.window
	}
	w := 2 * s.workers
	if w < 2 {
		w = 2
	}
	return w
}

// Stream executes the jobs across the session's worker pool and delivers
// exactly one outcome per job on the returned channel, in job order
// (outcome i is sent before outcome i+1 even when job i+1 finishes
// first); the channel is closed after the last outcome.
//
// Memory is bounded by a sliding window (WithStreamWindow; default twice
// the worker-pool width): job i is not dispatched until outcome i-window
// has been delivered, so a large fleet holds O(window) results at any
// moment instead of buffering the whole batch. The flip side is
// backpressure: a consumer that stops receiving eventually stalls the
// pool, and the emitter is released only by draining the channel —
// abandoning it mid-batch leaks the emitter and parked pool goroutines
// along with the window.
// To stop early, cancel ctx and keep ranging: in-flight simulated worlds
// abort, the outcomes of cancelled and undispatched jobs carry the
// context error and arrive immediately, so the drain is cheap and the
// channel closes promptly.
func (s *Session) Stream(ctx context.Context, jobs []Job) <-chan Outcome {
	if ctx == nil {
		ctx = context.Background()
	}
	n := len(jobs)
	window := s.streamWindow()
	if window > n && n > 0 {
		window = n
	}
	out := make(chan Outcome)

	// st is the shared window state: a ring of the outcomes computed but
	// not yet delivered, the delivery cursor, and the two termination
	// signals. cond coordinates three parties — workers waiting for the
	// window to slide, the emitter waiting for its next slot to fill, and
	// the watcher broadcasting cancellation/pool-exit.
	st := struct {
		sync.Mutex
		cond      *sync.Cond
		ring      []Outcome
		filled    []bool
		emitted   int // next index to deliver
		cancelled bool
		poolDone  bool
	}{ring: make([]Outcome, window), filled: make([]bool, window)}
	st.cond = sync.NewCond(&st.Mutex)

	poolExit := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			st.Lock()
			st.cancelled = true
			st.cond.Broadcast()
			st.Unlock()
		case <-poolExit:
		}
	}()
	go func() {
		s.eng.ForEach(ctx, s.workers, n, func(i int) error {
			st.Lock()
			for i >= st.emitted+window && !st.cancelled {
				st.cond.Wait()
			}
			if st.cancelled && i >= st.emitted+window {
				// The window will never reach this job; leave its slot
				// unfilled and let the emitter synthesize the cancelled
				// outcome once the pool has drained.
				st.Unlock()
				return nil
			}
			st.Unlock()
			o := s.do(ctx, i, jobs[i])
			st.Lock()
			st.ring[i%window] = o
			st.filled[i%window] = true
			st.cond.Broadcast()
			st.Unlock()
			return nil
		})
		close(poolExit)
		st.Lock()
		st.poolDone = true
		st.cond.Broadcast()
		st.Unlock()
	}()
	go func() {
		defer close(out)
		for i := 0; i < n; i++ {
			slot := i % window
			st.Lock()
			for !st.filled[slot] && !st.poolDone {
				st.cond.Wait()
			}
			var o Outcome
			if st.filled[slot] {
				o = st.ring[slot]
				st.ring[slot] = Outcome{}
				st.filled[slot] = false
			} else {
				// The pool exited (cancellation) without running job i.
				o = Outcome{Index: i, Job: jobs[i], Err: ctx.Err(), mach: s.m}
			}
			// Slide the window before the (possibly blocking) send so the
			// pool keeps working while the consumer catches up; at most
			// window outcomes plus the one in flight are retained.
			st.emitted = i + 1
			st.cond.Broadcast()
			st.Unlock()
			out <- o
		}
	}()
	return out
}

// defaultSessions backs the deprecated package-level Run* wrappers: one
// session per distinct machine (performance fingerprint plus display
// names), so repeated legacy calls on the same platform reuse its
// calibration instead of re-measuring it every run. Run memoization is
// disabled here — each legacy call still owns a fresh Result, exactly as
// the free functions always behaved.
//
// The table is bounded and evicts by least recent use: a sweep over
// thousands of machine variants must not retain a session (and its
// calibration) per variant forever, but the hot machines a program keeps
// returning to must survive that churn (the original implementation
// stopped admitting new entries once full, and its successor evicted in
// arbitrary map-iteration order — both starved hot platforms).
var (
	defaultMu       sync.Mutex
	defaultSessions = lru.New[string, *Session](maxDefaultSessions)
)

// maxDefaultSessions bounds the per-machine default-session table.
const maxDefaultSessions = 64

func defaultSession(m *Machine) *Session {
	var names []string
	names = append(names, m.Name)
	for _, t := range m.Tiers {
		names = append(names, t.Name)
	}
	key := exp.Fingerprint(m) + "|" + strings.Join(names, "|")
	defaultMu.Lock()
	defer defaultMu.Unlock()
	if s, ok := defaultSessions.Get(key); ok {
		return s
	}
	s := New(m, WithCache(nil))
	defaultSessions.Put(key, s)
	return s
}

// legacyRun shapes a session run into the deprecated free-function
// signature.
func (s *Session) legacyRun(w *Workload, st Strategy, cfg *Config, opts Options) (*Result, []*Runtime, error) {
	o, err := s.RunJob(context.Background(), Job{Workload: w, Strategy: st, Config: cfg, Options: opts})
	return o.Result, o.Runtimes, err
}

// legacyResult is legacyRun for baselines that return no runtimes.
func (s *Session) legacyResult(w *Workload, st Strategy) (*Result, error) {
	res, _, err := s.legacyRun(w, st, nil, Options{})
	return res, err
}

// legacyTiered is legacyRun shaped for RunTiered.
func (s *Session) legacyTiered(w *Workload, cfg *Config) (*TieredResult, []*Runtime, error) {
	o, err := s.RunJob(context.Background(), Job{Workload: w, Strategy: Unimem(), Config: cfg})
	if err != nil {
		return nil, o.Runtimes, err
	}
	return o.Tiered(), o.Runtimes, nil
}
