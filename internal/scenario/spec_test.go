package scenario

import (
	"reflect"
	"strings"
	"testing"

	"unimem/internal/app"
	"unimem/internal/core"
	"unimem/internal/machine"
	"unimem/internal/workloads"
)

// builtins returns every built-in workload: the paper's evaluation suite
// (six NPB kernels + Nek5000) plus the calibration microbenchmarks.
func builtins() []*workloads.Workload {
	ws := workloads.EvalSuite("C", 4)
	ws = append(ws, workloads.NewSTREAM(4), workloads.NewPointerChase(4))
	return ws
}

// TestRoundTripRefsExact verifies the capture->encode->parse->compile loop
// reproduces every built-in workload's structure and per-iteration
// ground-truth traffic exactly, at the full iteration count.
func TestRoundTripRefsExact(t *testing.T) {
	for _, w := range builtins() {
		spec, err := FromWorkload(w)
		if err != nil {
			t.Fatalf("%s: FromWorkload: %v", w.Name, err)
		}
		data, err := spec.Encode()
		if err != nil {
			t.Fatalf("%s: Encode: %v", w.Name, err)
		}
		parsed, err := Parse(data)
		if err != nil {
			t.Fatalf("%s: Parse: %v", w.Name, err)
		}
		got, err := parsed.Compile()
		if err != nil {
			t.Fatalf("%s: Compile: %v", w.Name, err)
		}
		if got.Name != w.Name || got.Class != w.Class || got.Ranks != w.Ranks ||
			got.Iterations != w.Iterations || got.FootprintFrac != w.FootprintFrac {
			t.Errorf("%s: header mismatch: got %+v", w.Name, got)
		}
		if !reflect.DeepEqual(got.Objects, w.Objects) {
			t.Errorf("%s: objects mismatch\n got %+v\nwant %+v", w.Name, got.Objects, w.Objects)
		}
		if got.SpecDigest == "" {
			t.Errorf("%s: compiled workload has no spec digest", w.Name)
		}
		if len(got.Phases) != len(w.Phases) {
			t.Fatalf("%s: %d phases, want %d", w.Name, len(got.Phases), len(w.Phases))
		}
		for i := range w.Phases {
			a, b := &w.Phases[i], &got.Phases[i]
			if a.Name != b.Name || a.Kind != b.Kind || a.Comm != b.Comm ||
				a.CommBytes != b.CommBytes || a.Flops != b.Flops || a.RankSkew != b.RankSkew {
				t.Errorf("%s phase %d: descriptor mismatch", w.Name, i)
			}
			for iter := 0; iter < w.Iterations; iter++ {
				if !refsEqual(a.Refs(iter), b.Refs(iter)) {
					t.Fatalf("%s phase %s iter %d: refs mismatch\n got %v\nwant %v",
						w.Name, a.Name, iter, b.Refs(iter), a.Refs(iter))
				}
			}
		}
	}
}

// TestRoundTripRunByteIdentical is the golden gate: Save -> Load -> Run of
// every built-in workload must produce results byte-identical to running
// the original, under the full Unimem runtime (iteration counts trimmed to
// keep the suite fast; Nek5000's trim still spans two drift epochs).
func TestRoundTripRunByteIdentical(t *testing.T) {
	m := machine.PlatformA().WithNVMBandwidthFraction(0.5)
	cfg := core.DefaultConfig()
	for _, w := range builtins() {
		cp := *w
		if cp.Iterations > 14 {
			cp.Iterations = 14
		}
		spec, err := FromWorkload(&cp)
		if err != nil {
			t.Fatalf("%s: FromWorkload: %v", w.Name, err)
		}
		path := t.TempDir() + "/" + w.Name + ".json"
		if err := spec.Save(path); err != nil {
			t.Fatalf("%s: Save: %v", w.Name, err)
		}
		loaded, err := Load(path)
		if err != nil {
			t.Fatalf("%s: Load: %v", w.Name, err)
		}
		rt, err := loaded.Compile()
		if err != nil {
			t.Fatalf("%s: Compile: %v", w.Name, err)
		}
		want, err := app.Run(&cp, m, app.Options{}, core.Factory(cfg))
		if err != nil {
			t.Fatalf("%s: run original: %v", w.Name, err)
		}
		got, err := app.Run(rt, m, app.Options{}, core.Factory(cfg))
		if err != nil {
			t.Fatalf("%s: run round-tripped: %v", w.Name, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("%s: round-tripped run differs from original\n got %+v\nwant %+v",
				w.Name, got, want)
		}
	}
}

// TestRoundTripStableEncoding checks capture -> parse -> capture is a
// fixed point: re-encoding a parsed spec yields identical bytes (no
// information is lost or reordered in the schema).
func TestRoundTripStableEncoding(t *testing.T) {
	w := workloads.NewNek5000("C", 4)
	spec, err := FromWorkload(w)
	if err != nil {
		t.Fatal(err)
	}
	data, err := spec.Encode()
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	data2, err := parsed.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data2) {
		t.Error("re-encoding a parsed spec changed its bytes")
	}
	if spec.Digest() != parsed.Digest() {
		t.Error("digest changed across encode/parse")
	}
}

// TestMalformedSpecsNameField checks every rejection names the offending
// field.
func TestMalformedSpecsNameField(t *testing.T) {
	base := func() *Spec {
		s, err := Generate(ArchStable, 7)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	cases := []struct {
		name   string
		mutate func(*Spec)
		want   string
	}{
		{"no ranks", func(s *Spec) { s.Ranks = 0 }, "ranks"},
		{"no iterations", func(s *Spec) { s.Iterations = -1 }, "iterations"},
		{"bad object size", func(s *Spec) { s.Objects[0].SizeBytes = 0 }, "objects[0].size_bytes"},
		{"duplicate object", func(s *Spec) { s.Objects[1].Name = s.Objects[0].Name }, "objects[1].name"},
		{"negative hint", func(s *Spec) { s.Objects[0].RefHint = -1 }, "objects[0].ref_hint"},
		{"unknown ref object", func(s *Spec) { s.Phases[0].Refs[0].Object = "nope" }, "phases[0].refs[0].object"},
		{"bad pattern", func(s *Spec) { s.Phases[0].Refs[0].Pattern = "zigzag" }, "phases[0].refs[0].pattern"},
		{"bad read frac", func(s *Spec) { s.Phases[0].Refs[0].ReadFrac = 1.5 }, "phases[0].refs[0].read_frac"},
		{"bad comm", func(s *Spec) { s.Phases[1].Comm = "allred" }, "phases[1].comm"},
		{"bad skew", func(s *Spec) { s.Phases[0].RankSkew = 2.5 }, "phases[0].rank_skew"},
		{"inverted window", func(s *Spec) {
			s.Phases[0].Refs[0].Schedule = []RefWindow{{From: 6, To: 3, Scale: 1}}
		}, "phases[0].refs[0].schedule[0].to"},
		{"negative window end", func(s *Spec) {
			s.Phases[0].Refs[0].Schedule = []RefWindow{{From: 6, To: -10, Scale: 2}}
		}, "phases[0].refs[0].schedule[0].to"},
		{"negative comm window end", func(s *Spec) {
			s.Phases[1].CommSchedule = []workloads.ScaleWindow{{From: 2, To: -1, Scale: 4}}
		}, "phases[1].comm_schedule[0].to"},
		{"negative epoch end", func(s *Spec) {
			s.Phases[0].Epochs = []EpochSpec{{From: 0, To: -3, Refs: []RefSpec{{
				Object: s.Objects[0].Name, Accesses: 10, ReadFrac: 0.5, Pattern: "stream",
			}}}}
		}, "phases[0].epochs[0].to"},
		{"negative scale", func(s *Spec) {
			s.Phases[0].Refs[0].Schedule = []RefWindow{{From: 0, Scale: -2}}
		}, "phases[0].refs[0].schedule[0].scale"},
		{"schedule inside epoch", func(s *Spec) {
			s.Phases[0].Epochs = []EpochSpec{{From: 0, Refs: []RefSpec{{
				Object: s.Objects[0].Name, Accesses: 10, ReadFrac: 0.5, Pattern: "stream",
				Schedule: []RefWindow{{From: 0, Scale: 1}},
			}}}}
		}, "epochs[0].refs[0].schedule"},
	}
	for _, tc := range cases {
		s := base()
		tc.mutate(s)
		err := s.Validate()
		if err == nil {
			t.Errorf("%s: validation passed, want error naming %q", tc.name, tc.want)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not name field %q", tc.name, err, tc.want)
		}
	}
}

// TestParseRejectsUnknownFields guards against silently ignored typos.
func TestParseRejectsUnknownFields(t *testing.T) {
	if _, err := Parse([]byte(`{"name":"x","ranks":1,"iterations":1,"objets":[]}`)); err == nil {
		t.Error("unknown top-level field accepted")
	} else if !strings.Contains(err.Error(), "objets") {
		t.Errorf("error %q does not name the unknown field", err)
	}
}

// TestScheduleSemantics pins the piecewise-window behaviour: first match
// wins, scale 0 silences, overrides apply, outside windows the base holds.
func TestScheduleSemantics(t *testing.T) {
	rf := 0.25
	p := PhaseSpec{Refs: []RefSpec{{
		Object: "o", Accesses: 1000, ReadFrac: 0.8, Pattern: "stream",
		Schedule: []RefWindow{
			{From: 2, To: 4, Scale: 0},
			{From: 4, To: 6, Scale: 0.5, Pattern: "random", ReadFrac: &rf},
			{From: 5, To: 9, Scale: 3}, // shadowed by the previous window at 5
		},
	}}}
	if got := p.refsAt(0); len(got) != 1 || got[0].Accesses != 1000 || got[0].Pattern != machine.Stream {
		t.Errorf("iter 0: %+v", got)
	}
	if got := p.refsAt(2); len(got) != 0 {
		t.Errorf("iter 2: want silenced, got %+v", got)
	}
	if got := p.refsAt(5); len(got) != 1 || got[0].Accesses != 500 ||
		got[0].Pattern != machine.Random || got[0].ReadFrac != 0.25 {
		t.Errorf("iter 5: first-match window not applied: %+v", got)
	}
	if got := p.refsAt(7); len(got) != 1 || got[0].Accesses != 3000 {
		t.Errorf("iter 7: %+v", got)
	}
	if got := p.refsAt(20); len(got) != 1 || got[0].Accesses != 1000 {
		t.Errorf("iter 20 (outside all windows): %+v", got)
	}
}

// TestCommScheduleAndRankSkewCompile checks the execution-harness hooks
// survive compilation.
func TestCommScheduleAndRankSkewCompile(t *testing.T) {
	s, err := Generate(ArchBurstyComm, 3)
	if err != nil {
		t.Fatal(err)
	}
	w, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	var exchange *workloads.Phase
	for i := range w.Phases {
		if w.Phases[i].Name == "exchange" {
			exchange = &w.Phases[i]
		}
	}
	if exchange == nil || len(exchange.CommSchedule) == 0 {
		t.Fatal("bursty-comm scenario compiled without a comm schedule")
	}
	burst := exchange.CommSchedule[0]
	if got := exchange.CommBytesAt(burst.From); got != int64(float64(exchange.CommBytes)*burst.Scale) {
		t.Errorf("CommBytesAt(%d) = %d, want %gx base", burst.From, got, burst.Scale)
	}
	if got := exchange.CommBytesAt(0); got != exchange.CommBytes {
		t.Errorf("CommBytesAt(0) = %d, want base %d", got, exchange.CommBytes)
	}

	li, err := Generate(ArchLoadImbalance, 3)
	if err != nil {
		t.Fatal(err)
	}
	lw, err := li.Compile()
	if err != nil {
		t.Fatal(err)
	}
	sweep := &lw.Phases[0]
	if sweep.RankSkew <= 0 {
		t.Fatal("load-imbalance scenario compiled without rank skew")
	}
	lo, hi := sweep.RankScale(0, 4), sweep.RankScale(3, 4)
	if !(lo < 1 && hi > 1) {
		t.Errorf("rank scale not a ramp: rank0=%g rank3=%g", lo, hi)
	}
	if sum := sweep.RankScale(0, 4) + sweep.RankScale(1, 4) + sweep.RankScale(2, 4) + sweep.RankScale(3, 4); sum < 3.999 || sum > 4.001 {
		t.Errorf("rank scales do not average to 1: sum=%g", sum)
	}
}
