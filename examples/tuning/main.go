// Tuning: sweeps the DRAM size of the heterogeneous memory system for the
// SP benchmark (the paper's Fig. 13 methodology) and shows how the
// knapsack's choices, migration volume and the residual gap to DRAM-only
// respond to capacity — the workflow a system designer would use to size
// the DRAM tier of an NVM-based node.
//
//	go run ./examples/tuning
package main

import (
	"fmt"
	"log"

	"unimem"
)

func main() {
	base := unimem.PlatformA().WithNVMBandwidthFraction(0.5)
	w := unimem.NewNPB("SP", "C", 4)

	dram, err := unimem.RunDRAMOnly(w, base)
	must(err)
	nvm, err := unimem.RunNVMOnly(w, base)
	must(err)
	fmt.Printf("SP Class C, NVM = 1/2 DRAM bandwidth\n")
	fmt.Printf("NVM-only gap: %.2fx of DRAM-only\n\n", ratio(nvm.TimeNS, dram.TimeNS))
	fmt.Printf("%8s %10s %12s %12s  %s\n",
		"DRAM", "vs DRAM", "migrations", "moved MiB", "rank-0 residents")

	for _, mb := range []int64{96, 128, 192, 256, 384, 512} {
		m := base.WithDRAMCapacity(mb << 20)
		cfg := unimem.DefaultConfig()
		cfg.Calibration = unimem.Calibrate(m)
		res, rts, err := unimem.Run(w, m, cfg)
		must(err)
		fmt.Printf("%6dMB %9.2fx %12d %12d  %v\n",
			mb, ratio(res.TimeNS, dram.TimeNS),
			res.Ranks[0].Migrations.Migrations,
			res.Ranks[0].Migrations.BytesMigrated>>20,
			rts[0].DRAMResidents())
	}
	fmt.Println("\nReading the sweep: once DRAM covers SP's hot set (lhs+rhs),")
	fmt.Println("extra capacity buys little — the paper's Fig. 13 observation.")
}

func ratio(a, b int64) float64 { return float64(a) / float64(b) }

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
