// Benchmarks regenerating every table and figure of the paper's evaluation
// (§2.2 preliminary study and §5). Each benchmark runs its experiment's
// full workload set through the simulator and reports the headline metric
// as custom units, so `go test -bench=. -benchmem` reproduces the whole
// evaluation; cmd/unimem-bench prints the same artifacts as full tables.
//
// Experiments run in Quick mode under testing.B (iteration counts capped);
// use the CLI for paper-fidelity numbers.
package unimem_test

import (
	"context"

	"strconv"
	"strings"
	"testing"

	"unimem"
	"unimem/internal/placement"
)

// runExp executes one experiment per benchmark iteration; optional
// configure hooks adjust the quick suite before the timed loop.
func runExp(b *testing.B, id string, configure ...func(*unimem.ExperimentSuite)) *unimem.Experiment {
	b.Helper()
	_, reg := unimem.Experiments()
	runner, ok := reg[id]
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	s := unimem.NewExperimentSuite()
	s.Quick = true
	for _, fn := range configure {
		fn(s)
	}
	var tbl *unimem.Experiment
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl, err = runner(s)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	return tbl
}

// report extracts a numeric cell (row label, column index) as a metric.
func report(b *testing.B, tbl *unimem.Experiment, rowLabel string, col int, metric string) {
	b.Helper()
	for _, row := range tbl.Rows {
		if row[0] == rowLabel {
			v, err := strconv.ParseFloat(strings.TrimSuffix(row[col], "%"), 64)
			if err == nil {
				b.ReportMetric(v, metric)
			}
			return
		}
	}
}

// BenchmarkTable1 regenerates Table 1 (NVM technology characteristics).
func BenchmarkTable1(b *testing.B) { runExp(b, "table1") }

// BenchmarkCalib regenerates the CF_bw/CF_lat/BW_peak calibration (§3.1.2).
func BenchmarkCalib(b *testing.B) { runExp(b, "calib") }

// BenchmarkTable3 regenerates Table 3 (target data objects).
func BenchmarkTable3(b *testing.B) { runExp(b, "table3") }

// BenchmarkFig2 regenerates Fig. 2 (NVM-only slowdown vs bandwidth);
// reports LU's slowdown at 1/2 bandwidth.
func BenchmarkFig2(b *testing.B) {
	tbl := runExp(b, "fig2")
	report(b, tbl, "LU", 1, "LU-halfbw-x")
}

// BenchmarkFig3 regenerates Fig. 3 (NVM-only slowdown vs latency);
// reports LU's slowdown at 2x latency.
func BenchmarkFig3(b *testing.B) {
	tbl := runExp(b, "fig3")
	report(b, tbl, "LU", 1, "LU-2xlat-x")
}

// BenchmarkFig4 regenerates Fig. 4 (SP per-object placement impact).
func BenchmarkFig4(b *testing.B) { runExp(b, "fig4") }

// BenchmarkFig9 regenerates Fig. 9 (basic test, 1/2 bandwidth NVM);
// reports the average Unimem normalized time.
func BenchmarkFig9(b *testing.B) {
	tbl := runExp(b, "fig9")
	report(b, tbl, "avg", 4, "unimem-avg-x")
	report(b, tbl, "avg", 2, "nvmonly-avg-x")
}

// BenchmarkFig10 regenerates Fig. 10 (basic test, 4x latency NVM).
func BenchmarkFig10(b *testing.B) {
	tbl := runExp(b, "fig10")
	report(b, tbl, "avg", 4, "unimem-avg-x")
	report(b, tbl, "avg", 2, "nvmonly-avg-x")
}

// BenchmarkFig11 regenerates Fig. 11 (technique ablation).
func BenchmarkFig11(b *testing.B) { runExp(b, "fig11") }

// BenchmarkTable4 regenerates Table 4 (migration details).
func BenchmarkTable4(b *testing.B) { runExp(b, "table4") }

// BenchmarkFig12 regenerates Fig. 12 (CG strong scaling on Edison-like
// NUMA-emulated NVM).
func BenchmarkFig12(b *testing.B) { runExp(b, "fig12") }

// BenchmarkFig13 regenerates Fig. 13 (DRAM size sensitivity).
func BenchmarkFig13(b *testing.B) {
	tbl := runExp(b, "fig13")
	report(b, tbl, "MG", 2, "MG-128MB-x")
}

// BenchmarkRuntimeDecision measures one full profile->model->knapsack->
// schedule decision on the richest workload (Nek5000's 48 objects), the
// critical-path cost the paper bounds as "pure runtime cost".
func BenchmarkRuntimeDecision(b *testing.B) {
	m := unimem.PlatformA().WithNVMBandwidthFraction(0.5)
	cfg := unimem.DefaultConfig()
	cfg.Calibration = unimem.Calibrate(m)
	w := unimem.NewNek5000("C", 4)
	cp := *w
	cp.Iterations = 2 // profile + decide, minimal enforcement
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := unimem.Run(&cp, m, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMigrationPath measures the helper-thread migration machinery
// (enqueue -> real copy -> sync) end to end.
func BenchmarkMigrationPath(b *testing.B) {
	m := unimem.PlatformA().WithNVMBandwidthFraction(0.5)
	cfg := unimem.DefaultConfig()
	cfg.Calibration = unimem.Calibrate(m)
	cfg.EnableInitial = false // force adoption migrations
	app := unimem.NewApp("mig", 1, 4)
	app.Object("a", 64<<20)
	app.ComputePhase("sweep", 5e6, unimem.Stream("a", 1e6, 0.5))
	app.CommPhase("sync", unimem.Barrier, 0, 0)
	w := app.Build()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := unimem.Run(w, m, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSessionReuse quantifies the session satellite of the API
// redesign: before PR 4, every Run/RunOpts call on a config without a
// pre-installed Calibration re-measured the platform (once per rank, per
// call). A Session memoizes the measurement, so repeated runs pay it
// once. "recalibrate" reproduces the old per-call cost explicitly;
// "session" is the new default path shared by the legacy wrappers.
func BenchmarkSessionReuse(b *testing.B) {
	m := unimem.PlatformA().WithNVMBandwidthFraction(0.5)
	app := unimem.NewApp("reuse", 1, 2)
	app.Object("a", 32<<20, unimem.WithHint(1e5))
	app.ComputePhase("sweep", 1e6, unimem.Stream("a", 1e5, 0.5))
	app.CommPhase("sync", unimem.Barrier, 0, 0)
	w := app.Build()
	ctx := context.Background()

	b.Run("recalibrate-every-run", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cfg := unimem.DefaultConfig()
			cfg.Calibration = unimem.Calibrate(m) // PR 1-3 behavior: per-call measurement
			if _, _, err := unimem.Run(w, m, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("session-reuse", func(b *testing.B) {
		sess := unimem.New(m)
		for i := 0; i < b.N; i++ {
			if _, err := sess.Run(ctx, w, unimem.Unimem()); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblation regenerates the model-refinement ablation (DESIGN.md
// §6): full Unimem vs literal Eq. 3 / naive predictor / no hysteresis.
func BenchmarkAblation(b *testing.B) { runExp(b, "ablation") }

// BenchmarkTechSweep evaluates the named Table 1 technologies (STT-RAM,
// PCRAM, ReRAM) end to end: NVM-only vs Unimem on CG and MG.
func BenchmarkTechSweep(b *testing.B) { runExp(b, "techsweep") }

// BenchmarkTierscape regenerates the N-tier platform comparison
// (fastest-only / slowest-only / static / Unimem on KNL-like, CXL and
// HBM+DDR+NVM machines); reports the three-tier CG Unimem normalized time.
func BenchmarkTierscape(b *testing.B) {
	tbl := runExp(b, "tierscape")
	for _, row := range tbl.Rows {
		if row[0] == "HBM+DDR+NVM" && row[1] == "CG" {
			if v, err := strconv.ParseFloat(row[5], 64); err == nil {
				b.ReportMetric(v, "CG-3tier-x")
			}
		}
	}
}

// BenchmarkScenarioGen measures the synthetic scenario generator plus the
// spec round trip (generate -> encode -> parse -> compile) across every
// archetype — the fleet experiment's per-scenario setup cost.
func BenchmarkScenarioGen(b *testing.B) {
	archetypes := unimem.ScenarioArchetypes()
	var encoded int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := archetypes[i%len(archetypes)]
		spec, err := unimem.GenerateScenario(a, uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		data, err := spec.Encode()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := spec.Compile(); err != nil {
			b.Fatal(err)
		}
		encoded += int64(len(data))
	}
	b.StopTimer()
	b.SetBytes(encoded / int64(b.N))
}

// BenchmarkScenarioFleet regenerates the randomized scenario-fleet
// experiment (2 scenarios/archetype in Quick mode) and reports the best
// drifting archetype's geomean Unimem-vs-static speedup.
func BenchmarkScenarioFleet(b *testing.B) {
	tbl := runExp(b, "scenariofleet", func(s *unimem.ExperimentSuite) { s.Fleet = 2 })
	best := 0.0
	for _, agg := range tbl.FleetAggregates {
		switch agg.Archetype {
		case "pattern-drift", "ws-growth", "hot-rotation":
			if agg.Geomean > best {
				best = agg.Geomean
			}
		}
	}
	b.ReportMetric(best, "drift-geomean-x")
}

// BenchmarkTieredPlacement measures the N-tier placement hot path: one
// multiple-choice-knapsack solve at the scale of the richest decision
// (hundreds of chunks, a three-tier machine with two constrained tiers) —
// the critical-path cost a multi-tier decision adds over the two-tier DP.
func BenchmarkTieredPlacement(b *testing.B) {
	const items = 256
	caps := []int64{128 << 20, 256 << 20, -1}
	in := make([]placement.TieredItem, items)
	for i := range in {
		size := int64(1+i%31) << 20
		in[i] = placement.TieredItem{
			Chunk: "c" + strconv.Itoa(i),
			Size:  size,
			WeightNS: []float64{
				float64((i*2654435761)%1000) * 1e4,
				float64((i*40503)%1000) * 1e4,
				0,
			},
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan := placement.SolveTiered(in, caps)
		if len(plan.Assign) != items {
			b.Fatal("incomplete assignment")
		}
	}
}
