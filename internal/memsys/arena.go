// Package memsys implements the heterogeneous memory substrate the Unimem
// runtime manages: an ordered N-tier heap (tier 0 fastest) with a real
// free-list allocator per tier, a table of named data objects (optionally
// partitioned into chunks), the migration mechanics that move object bytes
// between any two tiers, and the user-level per-node coordination services
// of the shared fast tiers — the generalization of the §3.3 DRAM service
// (on the paper's two-tier platforms the layout is exactly the paper's:
// one coordinated DRAM allowance per node, one private NVM arena per
// rank).
//
// Object sizes and arena capacities are *simulated* byte counts (so Class
// C/D footprints of many gigabytes can be modelled), while each chunk also
// carries a real backing buffer capped at a configurable materialization
// limit, so migrations genuinely copy bytes and kernels genuinely compute
// on memory that has been moved.
package memsys

import (
	"errors"
	"fmt"
	"sort"
)

// ErrNoSpace is returned when an arena cannot satisfy an allocation.
var ErrNoSpace = errors.New("memsys: arena out of space")

// run is a free extent [off, off+size).
type run struct {
	off, size int64
}

// Arena is a first-fit free-list allocator over a simulated address range
// of the given capacity. It is not safe for concurrent use; the NodeService
// serializes access for the shared DRAM arena.
type Arena struct {
	capacity int64
	used     int64
	free     []run // sorted by offset, coalesced
}

// NewArena returns an empty arena of the given capacity in bytes.
func NewArena(capacity int64) *Arena {
	if capacity < 0 {
		panic("memsys: negative arena capacity")
	}
	return &Arena{capacity: capacity, free: []run{{0, capacity}}}
}

// Capacity returns the arena's total capacity in bytes.
func (a *Arena) Capacity() int64 { return a.capacity }

// Used returns the number of bytes currently allocated.
func (a *Arena) Used() int64 { return a.used }

// Avail returns the number of free bytes (possibly fragmented).
func (a *Arena) Avail() int64 { return a.capacity - a.used }

// LargestFree returns the size of the largest contiguous free extent.
func (a *Arena) LargestFree() int64 {
	var max int64
	for _, r := range a.free {
		if r.size > max {
			max = r.size
		}
	}
	return max
}

// Alloc reserves size bytes and returns the offset of the reservation, or
// ErrNoSpace if no contiguous extent is large enough.
func (a *Arena) Alloc(size int64) (int64, error) {
	if size <= 0 {
		return 0, fmt.Errorf("memsys: invalid allocation size %d", size)
	}
	for i := range a.free {
		if a.free[i].size >= size {
			off := a.free[i].off
			a.free[i].off += size
			a.free[i].size -= size
			if a.free[i].size == 0 {
				a.free = append(a.free[:i], a.free[i+1:]...)
			}
			a.used += size
			return off, nil
		}
	}
	return 0, ErrNoSpace
}

// Free returns the extent [off, off+size) to the free list, coalescing with
// neighbours. Freeing an extent that overlaps a free run panics: it
// indicates allocator misuse (double free).
func (a *Arena) Free(off, size int64) {
	if size <= 0 || off < 0 || off+size > a.capacity {
		panic(fmt.Sprintf("memsys: bad free [%d,+%d) of arena cap %d", off, size, a.capacity))
	}
	i := sort.Search(len(a.free), func(i int) bool { return a.free[i].off >= off })
	if i > 0 && a.free[i-1].off+a.free[i-1].size > off {
		panic(fmt.Sprintf("memsys: double free at offset %d", off))
	}
	if i < len(a.free) && off+size > a.free[i].off {
		panic(fmt.Sprintf("memsys: double free at offset %d", off))
	}
	a.free = append(a.free, run{})
	copy(a.free[i+1:], a.free[i:])
	a.free[i] = run{off, size}
	a.used -= size
	// Coalesce with right neighbour.
	if i+1 < len(a.free) && a.free[i].off+a.free[i].size == a.free[i+1].off {
		a.free[i].size += a.free[i+1].size
		a.free = append(a.free[:i+1], a.free[i+2:]...)
	}
	// Coalesce with left neighbour.
	if i > 0 && a.free[i-1].off+a.free[i-1].size == a.free[i].off {
		a.free[i-1].size += a.free[i].size
		a.free = append(a.free[:i], a.free[i+1:]...)
	}
}

// FreeRuns returns the number of free extents (a fragmentation indicator).
func (a *Arena) FreeRuns() int { return len(a.free) }
