// Package profiler provides the trace-driven validation path for the
// repository's analytic traffic models: it replays a workload phase's
// declared references as synthetic address traces through the
// set-associative LLC simulator and compares the misses the cache actually
// produces against the post-cache access counts the workload declares.
//
// Those post-cache counts are what the paper's Eq. 1 prices (number of
// main-memory accesses x cache line size over bandwidth) and what the
// sampled counters of §3.1.1 estimate at runtime, so their fidelity per
// access pattern (§2.2: streaming, stencil, random, pointer-chasing)
// decides whether every downstream model sees realistic inputs.
//
// The Unimem runtime itself consumes the analytic counts (through the
// counter emulation); this package is how we keep those counts honest —
// the workload generators' cache-attenuation model (workloads.atten) was
// fitted against, and is regression-tested by, these replays.
package profiler

import (
	"fmt"
	"sort"

	"unimem/internal/cachesim"
	"unimem/internal/machine"
	"unimem/internal/memsys"
	"unimem/internal/trace"
	"unimem/internal/workloads"
	"unimem/internal/xrand"
)

// ObjectCheck compares analytic and trace-driven post-cache traffic for
// one object in one phase.
type ObjectCheck struct {
	Phase  string
	Object string
	// DeclaredAccesses is the workload's analytic post-cache count.
	DeclaredAccesses int64
	// MeasuredMisses is what the LLC simulator produced for the replayed
	// trace.
	MeasuredMisses int64
	// NominalRefs is the pre-cache reference count the trace replayed.
	NominalRefs int64
	Pattern     machine.Pattern
}

// Ratio returns measured/declared (1.0 = perfect agreement).
func (c ObjectCheck) Ratio() float64 {
	if c.DeclaredAccesses == 0 {
		return 0
	}
	return float64(c.MeasuredMisses) / float64(c.DeclaredAccesses)
}

// Report is the outcome of validating one workload.
type Report struct {
	Workload string
	Checks   []ObjectCheck
}

// Worst returns the check with the ratio farthest from 1 among objects
// with at least minDeclared declared accesses (tiny counts are dominated
// by warmup noise).
func (r *Report) Worst(minDeclared int64) (ObjectCheck, float64) {
	var worst ObjectCheck
	var dev float64 = -1
	for _, c := range r.Checks {
		if c.DeclaredAccesses < minDeclared {
			continue
		}
		d := c.Ratio() - 1
		if d < 0 {
			d = -d
		}
		if d > dev {
			dev = d
			worst = c
		}
	}
	return worst, dev
}

// Options tunes the replay.
type Options struct {
	// SampleRefs caps the pre-cache references replayed per object per
	// phase; the miss count scales back up linearly. Default 1<<20.
	SampleRefs int64
	// Cache is the simulated LLC geometry (default cachesim.DefaultLLC).
	Cache cachesim.Config
	Seed  uint64
}

func (o *Options) fill() {
	if o.SampleRefs == 0 {
		o.SampleRefs = 1 << 20
	}
	if o.Cache == (cachesim.Config{}) {
		o.Cache = cachesim.DefaultLLC()
	}
	if o.Seed == 0 {
		o.Seed = 0x7ACE
	}
}

// refsPerMiss is how many trace references one declared post-cache access
// corresponds to at full attenuation: the analytic model counts streaming
// and stencil traffic in cache lines (one miss per line), but their traces
// walk in 8-byte words — 8 references per line; irregular patterns access
// one line per reference.
func refsPerMiss(p machine.Pattern) int64 {
	if p == machine.Stream || p == machine.Stencil {
		return machine.CacheLineBytes / 8
	}
	return 1
}

// nominalRefs reconstructs the pre-cache reference count behind a declared
// post-cache access count: the workload generators divide by the
// attenuation factor derived from the object's size and count line-grain
// misses, so inverting both recovers the reference stream length.
func nominalRefs(declared int64, size int64, llc int64, p machine.Pattern) int64 {
	att := float64(size-llc) / float64(size)
	if att < 0.05 {
		att = 0.05
	}
	return int64(float64(declared*refsPerMiss(p)) / att)
}

// Validate replays every (phase, object) reference of iteration 0 on one
// rank of the workload and reports analytic-vs-measured traffic.
func Validate(w *workloads.Workload, opts Options) (*Report, error) {
	opts.fill()
	mach := machine.PlatformA()
	heap := memsys.NewHeap(mach, memsys.NewNodeTiers(mach),
		memsys.HeapOptions{MaterializeCap: 4096})
	for _, os := range w.Objects {
		if _, err := heap.Alloc(os.Name, os.Size, memsys.AllocOptions{InitialTier: mach.SlowestIdx()}); err != nil {
			return nil, fmt.Errorf("profiler: alloc %s: %w", os.Name, err)
		}
	}
	rep := &Report{Workload: w.Name}
	rng := xrand.New(opts.Seed)
	llc := opts.Cache.SizeBytes
	for _, ph := range w.Phases {
		refs := ph.Refs(0)
		// Deterministic object order.
		sort.Slice(refs, func(a, b int) bool { return refs[a].Object < refs[b].Object })
		for _, r := range refs {
			obj := heap.Lookup(r.Object)
			nominal := nominalRefs(r.Accesses, obj.Size, llc, r.Pattern)
			replay := nominal
			if replay > opts.SampleRefs {
				replay = opts.SampleRefs
			}
			if replay < 1 {
				continue
			}
			c := cachesim.New(opts.Cache)
			pass := func() int64 {
				var misses int64
				for _, chunk := range obj.Chunks {
					share := replay * chunk.Size / obj.Size
					if share < 1 {
						continue
					}
					tr := trace.Gen(chunk, r.Pattern, int(share), 1-r.ReadFrac, rng.Split(uint64(chunk.SimAddr)))
					misses += c.Run(tr)
				}
				return misses
			}
			// Objects much larger than the cache thrash: a cold pass IS
			// the steady state (an LRU stream of >2x cache never re-hits).
			// Cache-resident objects are the opposite regime: warm once,
			// then measure the reuse behaviour steady iterations see.
			misses := pass()
			if obj.Size <= 2*llc {
				misses = pass()
			}
			scaled := int64(float64(misses) * float64(nominal) / float64(replay))
			rep.Checks = append(rep.Checks, ObjectCheck{
				Phase:            ph.Name,
				Object:           r.Object,
				DeclaredAccesses: r.Accesses,
				MeasuredMisses:   scaled,
				NominalRefs:      nominal,
				Pattern:          r.Pattern,
			})
		}
	}
	return rep, nil
}
