package unimem

import (
	"fmt"

	"unimem/internal/phase"
	"unimem/internal/workloads"
)

// CommOp names the MPI operation of a communication phase.
type CommOp = workloads.CommKind

// Communication operations for AppBuilder.CommPhase.
const (
	Allreduce = workloads.CommAllreduce
	Halo      = workloads.CommHalo
	Alltoall  = workloads.CommAlltoall
	Bcast     = workloads.CommBcast
	Barrier   = workloads.CommBarrier
	WaitHalo  = workloads.CommWaitHalo
)

// AppBuilder assembles a custom iterative application for the runtime: the
// target data objects (unimem_malloc) and the phase structure of its main
// computation loop. It is the public counterpart of the generators behind
// the built-in NPB workloads.
type AppBuilder struct {
	w *workloads.Workload
}

// NewApp starts an application description: world size ranks, and iters
// iterations of the main computation loop.
func NewApp(name string, ranks, iters int) *AppBuilder {
	if ranks <= 0 || iters <= 0 {
		panic("unimem: ranks and iterations must be positive")
	}
	return &AppBuilder{w: &workloads.Workload{
		Name: name, Class: "custom", Ranks: ranks, Iterations: iters,
		FootprintFrac: 1,
	}}
}

// ObjectOption configures a target object.
type ObjectOption func(*workloads.ObjectSpec)

// WithHint attaches the static per-iteration reference-count estimate the
// paper's compiler analysis would derive; objects with hints participate
// in initial data placement.
func WithHint(refs float64) ObjectOption {
	return func(o *workloads.ObjectSpec) { o.RefHint = refs }
}

// Partitionable marks a regular one-dimensional array that the runtime's
// conservative chunking rule may split (§3.2).
func Partitionable() ObjectOption {
	return func(o *workloads.ObjectSpec) { o.Partitionable = true }
}

// Object registers a target data object of size bytes (per rank).
func (b *AppBuilder) Object(name string, size int64, opts ...ObjectOption) *AppBuilder {
	if b.w.Object(name) != nil {
		panic(fmt.Sprintf("unimem: duplicate object %q", name))
	}
	spec := workloads.ObjectSpec{Name: name, Size: size}
	for _, o := range opts {
		o(&spec)
	}
	b.w.Objects = append(b.w.Objects, spec)
	return b
}

// Stream declares a bandwidth-bound streaming reference: accesses
// post-cache main-memory accesses, writeFrac of them writes.
func Stream(object string, accesses int64, writeFrac float64) Ref {
	return mkRef(object, accesses, writeFrac, PatternStream)
}

// Stencil declares a near-neighbour reference with high concurrency.
func Stencil(object string, accesses int64, writeFrac float64) Ref {
	return mkRef(object, accesses, writeFrac, PatternStencil)
}

// Random declares irregular mid-concurrency access (sensitive to both
// bandwidth and latency).
func Random(object string, accesses int64, writeFrac float64) Ref {
	return mkRef(object, accesses, writeFrac, PatternRandom)
}

// Chase declares dependent pointer-chasing access (latency-bound).
func Chase(object string, accesses int64, writeFrac float64) Ref {
	return mkRef(object, accesses, writeFrac, PatternPointerChase)
}

func mkRef(object string, accesses int64, writeFrac float64, p Pattern) Ref {
	if accesses < 1 {
		accesses = 1
	}
	return Ref{Object: object, Accesses: accesses, ReadFrac: 1 - writeFrac, Pattern: p}
}

// ComputePhase appends a computation phase with the given flop count and
// iteration-invariant traffic.
func (b *AppBuilder) ComputePhase(name string, flops float64, refs ...Ref) *AppBuilder {
	return b.phaseFn(name, workloads.CommNone, 0, flops, func(int) []Ref { return refs })
}

// ComputePhaseFn appends a computation phase whose traffic varies with the
// iteration number (workload drift, like Nek5000's Krylov sets).
func (b *AppBuilder) ComputePhaseFn(name string, flops float64, refs func(iter int) []Ref) *AppBuilder {
	return b.phaseFn(name, workloads.CommNone, 0, flops, refs)
}

// CommPhase appends an MPI communication phase moving bytes per rank (or
// per pair for Alltoall), with optional buffer traffic.
func (b *AppBuilder) CommPhase(name string, op CommOp, bytes int64, flops float64, refs ...Ref) *AppBuilder {
	if op == workloads.CommNone {
		panic("unimem: CommPhase requires a communication op; use ComputePhase")
	}
	b.w.Phases = append(b.w.Phases, workloads.Phase{
		Name: name, Kind: phase.Comm, Comm: op, CommBytes: bytes, Flops: flops,
		Refs: func(int) []Ref { return refs },
	})
	return b
}

func (b *AppBuilder) phaseFn(name string, op CommOp, bytes int64, flops float64, refs func(int) []Ref) *AppBuilder {
	b.w.Phases = append(b.w.Phases, workloads.Phase{
		Name: name, Kind: phase.Compute, Comm: op, CommBytes: bytes, Flops: flops,
		Refs: refs,
	})
	return b
}

// Build validates and returns the workload.
func (b *AppBuilder) Build() *Workload {
	if len(b.w.Phases) == 0 {
		panic("unimem: application has no phases")
	}
	for _, ph := range b.w.Phases {
		for _, r := range ph.Refs(0) {
			if b.w.Object(r.Object) == nil {
				panic(fmt.Sprintf("unimem: phase %q references unknown object %q", ph.Name, r.Object))
			}
		}
	}
	return b.w
}
