package workloads

import (
	"fmt"

	"unimem/internal/phase"
)

// NewNek5000 builds the Nek5000 "eddy" production proxy: 48 target objects
// (main simulation variables and geometry arrays, per Table 3; 35% of the
// application footprint) on a 256x256 spectral-element mesh.
//
// Unlike the stationary NPB kernels, the eddy case's pressure and viscous
// solvers rotate through different Krylov work-array sets as the vortex
// field evolves, so per-phase memory behaviour drifts across iterations.
// That drift is what exercises Unimem's variation monitor (>10% =>
// re-profile, §3.2) and what defeats X-Mem's one-shot offline profile —
// the paper's Nek5000 result (Unimem ~10% better) hinges on it. The drift
// period and working-set rotation below are tuned so re-decisions and
// migration counts land in the regime of the paper's Table 4 (102
// migrations, ~1.1 GB moved).
func NewNek5000(class string, ranks int) *Workload {
	const driftPeriod = 10
	b := newBench("Nek5000", class, ranks, 90, 0.35)

	// Main simulation variables.
	fields := []string{"vx", "vy", "vz", "pr", "t"}
	for _, f := range fields {
		b.obj(f, 30, false)
	}
	// Geometry arrays (static after setup).
	geom := []string{"xm1", "ym1", "zm1", "jacm1", "rxm1", "sxm1", "txm1"}
	for _, g := range geom {
		b.obj(g, 24, false)
	}
	// Mask / multiplicity arrays.
	masks := []string{"v1mask", "v2mask", "v3mask", "tmask"}
	for _, m := range masks {
		b.obj(m, 8, false)
	}
	// Krylov solver work arrays: the drifting hot set.
	var work []string
	for i := 1; i <= 12; i++ {
		n := fmt.Sprintf("wk%02d", i)
		work = append(work, n)
		b.obj(n, 36, false)
	}
	// Auxiliary coefficient arrays (only the first dozen are warm; the
	// rest are setup-time state that stays cold, bringing the inventory to
	// Table 3's 48 objects).
	var aux []string
	for i := 1; i <= 20; i++ {
		n := fmt.Sprintf("aux%02d", i)
		aux = append(aux, n)
		b.obj(n, 4, false)
	}

	// hotWork returns the 4 work arrays the solvers lean on during the
	// given iteration: the set rotates every driftPeriod iterations as the
	// eddy field evolves and different Krylov spaces dominate.
	hotWork := func(iter int) []string {
		base := (iter / driftPeriod) * 3 % len(work)
		out := make([]string, 4)
		for i := range out {
			out[i] = work[(base+i)%len(work)]
		}
		return out
	}

	b.phase("advect", CommNone, 0, 60,
		b.rt("vx", 2, 0.3), b.rt("vy", 2, 0.3), b.rt("vz", 2, 0.3),
		b.rt("t", 1, 0.5), b.rs("jacm1", 1, 0), b.rs("rxm1", 1, 0))
	b.phaseFn("pressure_solve", CommNone, 0, 90, func(iter int) []phase.Ref {
		refs := []phase.Ref{
			b.rr("pr", 1.6, 0.5),
			b.rs("v1mask", 1, 0), b.rs("v2mask", 1, 0),
		}
		for _, wname := range hotWork(iter) {
			refs = append(refs, b.rr(wname, 1.8, 0.5))
		}
		return refs
	})
	b.phase("pressure_glsum", CommAllreduce, 0.032, 4, b.rs("pr", 1, 0))
	b.phaseFn("viscous_solve", CommNone, 0, 80, func(iter int) []phase.Ref {
		refs := []phase.Ref{
			b.rt("vx", 1, 0.5), b.rt("vy", 1, 0.5), b.rt("vz", 1, 0.5),
			b.rs("v3mask", 1, 0), b.rs("tmask", 1, 0),
		}
		for _, wname := range hotWork(iter) {
			refs = append(refs, b.rr(wname, 1.2, 0.5))
		}
		return refs
	})
	b.phase("dssum", CommHalo, 768, 8,
		b.rs("xm1", 0.5, 0), b.rs("ym1", 0.5, 0), b.rs("zm1", 0.5, 0))
	b.phase("geom_update", CommNone, 0, 30,
		b.rs("sxm1", 1, 0.5), b.rs("txm1", 1, 0.5),
		b.rs("aux01", 1, 0), b.rs("aux02", 1, 0), b.rs("aux03", 1, 0),
		b.rs("aux04", 1, 0), b.rs("aux05", 1, 0), b.rs("aux06", 1, 0))
	b.phase("cfl_check", CommAllreduce, 0.016, 6,
		b.rs("aux07", 1, 0), b.rs("aux08", 1, 0), b.rs("aux09", 1, 0),
		b.rs("aux10", 1, 0), b.rs("aux11", 1, 0), b.rs("aux12", 1, 0))

	// The Krylov work arrays' reference counts depend on solver
	// convergence, unknowable before the main loop: no static hints.
	return b.finish(work...)
}
