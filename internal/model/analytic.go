package model

import "unimem/internal/machine"

// This file is the analytic fast path's model half: a closed-form replay
// of what the execution harness charges a rank for one phase, computable
// from (refs x placement x machine) alone — no mpisim world, no heap, no
// sampled counters. The harness prices a phase as the summed per-chunk
// memory service time (Eq. 1's timing terms through Machine.MemTimeNS)
// plus the compute time for the phase's flops, each truncated to whole
// virtual nanoseconds when charged to the clock; AnalyticPhase reproduces
// those terms exactly, which is what the fast-path differential tests
// pin skipped windows against.

// ChunkAccess is one chunk's share of a phase's traffic priced against
// the tier it resides in — the placement-expanded image of one phase
// reference.
type ChunkAccess struct {
	Tier     machine.TierKind
	Accesses int64
	Pattern  machine.Pattern
	ReadFrac float64
}

// AnalyticOutcome is the closed-form cost of one phase execution on one
// rank under a frozen placement.
type AnalyticOutcome struct {
	// MemNS is the summed memory service time across chunks (float, as
	// the harness accumulates it before charging the clock).
	MemNS float64
	// ComputeNS is the compute term for the phase's (rank-scaled) flops.
	ComputeNS float64
	// ClockNS is the whole-nanosecond clock advance the harness would
	// charge for the two terms: int64(MemNS) + int64(ComputeNS), with
	// each term truncated separately exactly as the simulated path does.
	ClockNS int64
}

// AnalyticPhase replays Eq. 1-4's machine timing terms for one phase:
// every chunk's service time on its current tier plus the compute time,
// without constructing a simulated world. Communication time is not
// modeled here — it depends on peer clocks, which is precisely what the
// fast path's lockstep delta extrapolation covers instead.
func AnalyticPhase(m *machine.Machine, chunks []ChunkAccess, flops float64) AnalyticOutcome {
	var out AnalyticOutcome
	for _, c := range chunks {
		if c.Accesses <= 0 {
			continue
		}
		out.MemNS += m.MemTimeNS(c.Tier, c.Accesses, c.Pattern, c.ReadFrac)
	}
	out.ComputeNS = m.ComputeTimeNS(flops)
	out.ClockNS = int64(out.MemNS) + int64(out.ComputeNS)
	return out
}

// SplitAccesses distributes an object's per-phase access count across a
// chunk proportionally to the chunk's share of the object — the paper's
// uniform-within-object assumption, byte-identical to the harness's
// traffic expansion (single-chunk objects take the full count).
func SplitAccesses(total, chunkSize, objectSize int64, nChunks int) int64 {
	if nChunks <= 1 {
		return total
	}
	return int64(float64(total) * float64(chunkSize) / float64(objectSize))
}
