//go:build !unix

package simprog

// processCPUNS is unavailable off unix; per-core throughput falls back to
// zero and consumers report wall-clock numbers only.
func processCPUNS() int64 { return 0 }
