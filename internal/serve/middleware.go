package serve

import (
	"context"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"
)

// reqSeq numbers requests within this process; combined with the process
// start time it yields IDs unique across restarts without coordination.
var reqSeq atomic.Uint64

// reqEpoch distinguishes processes (restarts) in request IDs.
var reqEpoch = func() string {
	return strconv.FormatInt(time.Now().UnixNano()&0xFFFFFFFF, 36)
}()

// newRequestID returns a short process-unique request identifier.
func newRequestID() string {
	return fmt.Sprintf("%s-%06d", reqEpoch, reqSeq.Add(1))
}

// reqStateKey carries *reqState through the request context.
type reqStateKey struct{}

// reqState is per-request metadata the handler fills in as it learns it:
// the run-cache attribution of the work performed ("hit", "miss", or ""
// when no run executed), consumed by the latency histogram's cache label.
type reqState struct {
	id    string
	cache string
	// run, when a handler sets it, is the request's /debug/runs record
	// in progress: the handler fills in what ran, the middleware stamps
	// identity/timing/status at completion and commits it to the ring.
	run *runRecord
}

// stateOf returns the request's reqState (nil outside instrumented
// handlers, e.g. direct Handler() tests).
func stateOf(r *http.Request) *reqState {
	st, _ := r.Context().Value(reqStateKey{}).(*reqState)
	return st
}

// setCacheLabel records the request's run-cache attribution: hit when
// every job was served from the cache, miss otherwise.
func setCacheLabel(r *http.Request, allHit bool, ran bool) {
	st := stateOf(r)
	if st == nil || !ran {
		return
	}
	if allHit {
		st.cache = "hit"
	} else {
		st.cache = "miss"
	}
}

// statusRecorder captures the response status for metrics and logging.
// It forwards Flush so NDJSON streaming keeps working through the wrap.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (w *statusRecorder) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusRecorder) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// Flush implements http.Flusher when the underlying writer does.
func (w *statusRecorder) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument wraps a handler with the observability envelope: request ID
// (issued, echoed as X-Request-Id, attached to error bodies and logs),
// latency histogram observation labeled endpoint × cache attribution,
// request counter labeled endpoint × status, and structured request
// logging — completions at Debug, slow requests and server errors at
// Warn. The wrap adds two small allocations and a map insert per request;
// with metrics disabled every instrument no-ops.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	em := s.metrics.forEndpoint(endpoint)
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		st := &reqState{id: newRequestID()}
		w.Header().Set("X-Request-Id", st.id)
		rec := &statusRecorder{ResponseWriter: w}
		h(rec, r.WithContext(context.WithValue(r.Context(), reqStateKey{}, st)))
		if rec.status == 0 {
			rec.status = http.StatusOK
		}
		elapsed := time.Since(start)

		cache := st.cache
		if cache == "" {
			cache = "none"
		}
		em.observe(rec.status, cache, elapsed.Seconds())
		if s.debug != nil && st.run != nil {
			run := *st.run
			run.RequestID = st.id
			run.Endpoint = endpoint
			run.at = start
			run.DurationMS = float64(elapsed.Nanoseconds()) / 1e6
			run.Status = rec.status
			run.Cache = cache
			s.debug.add(run)
		}

		l := s.cfg.Logger
		switch {
		case rec.status >= 500:
			l.Warn("request failed", "id", st.id, "endpoint", endpoint,
				"status", rec.status, "cache", cache, "dur", elapsed)
		case elapsed >= s.slowRequest():
			// The counter mirrors the Warn line so alerting can fire off a
			// /metrics scrape instead of log scraping.
			em.slow.Inc()
			l.Warn("slow request", "id", st.id, "endpoint", endpoint,
				"status", rec.status, "cache", cache, "dur", elapsed)
		case l.Enabled(r.Context(), slog.LevelDebug):
			l.Debug("request", "id", st.id, "endpoint", endpoint,
				"status", rec.status, "cache", cache, "dur", elapsed)
		}
	}
}

// slowRequest is the slow-log threshold (Config.SlowRequest, default 30s —
// cold full-fidelity simulations legitimately run for seconds).
func (s *Server) slowRequest() time.Duration {
	if s.cfg.SlowRequest > 0 {
		return s.cfg.SlowRequest
	}
	return 30 * time.Second
}
