package exp

import (
	"context"

	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"unimem/internal/app"
	"unimem/internal/machine"
	"unimem/internal/scenario"
	"unimem/internal/workloads"
)

func testKey(strategy string) RunKey {
	return RunKey{Workload: "W|C|4|12", Machine: "m", Strategy: strategy, Ranks: 4, Seed: 1}
}

func TestRunCacheHitMissAccounting(t *testing.T) {
	c := NewRunCache()
	var calls atomic.Int64
	run := func() (*app.Result, error) {
		calls.Add(1)
		return &app.Result{TimeNS: 42}, nil
	}
	r1, err := c.Do(context.Background(), testKey("a"), run)
	if err != nil || r1.TimeNS != 42 {
		t.Fatalf("first Do: %v %v", r1, err)
	}
	r2, err := c.Do(context.Background(), testKey("a"), run)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Error("hit did not return the memoized *Result")
	}
	if _, err := c.Do(context.Background(), testKey("b"), run); err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != 2 {
		t.Errorf("run executed %d times, want 2 (one per distinct key)", got)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 2 || st.Entries != 2 {
		t.Errorf("stats = %+v, want 1 hit / 2 misses / 2 entries", st)
	}
}

func TestRunCacheCachesErrors(t *testing.T) {
	c := NewRunCache()
	boom := errors.New("boom")
	var calls atomic.Int64
	run := func() (*app.Result, error) {
		calls.Add(1)
		return nil, boom
	}
	for i := 0; i < 3; i++ {
		if _, err := c.Do(context.Background(), testKey("bad"), run); err != boom {
			t.Fatalf("call %d: err = %v, want boom", i, err)
		}
	}
	if calls.Load() != 1 {
		t.Errorf("failing run executed %d times, want 1", calls.Load())
	}
}

// TestRunCacheSingleflight hammers one key from many goroutines; the run
// must execute exactly once and every caller must observe its result.
// (Run with -race in CI.)
func TestRunCacheSingleflight(t *testing.T) {
	c := NewRunCache()
	var calls atomic.Int64
	res := &app.Result{TimeNS: 7}
	var wg sync.WaitGroup
	const n = 32
	got := make([]*app.Result, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, err := c.Do(context.Background(), testKey("shared"), func() (*app.Result, error) {
				calls.Add(1)
				return res, nil
			})
			if err != nil {
				t.Error(err)
			}
			got[i] = r
		}(i)
	}
	wg.Wait()
	if calls.Load() != 1 {
		t.Fatalf("run executed %d times under contention, want 1", calls.Load())
	}
	for i, r := range got {
		if r != res {
			t.Fatalf("caller %d saw %v, want the shared result", i, r)
		}
	}
	st := c.Stats()
	if st.Hits+st.Misses != n || st.Misses != 1 {
		t.Errorf("stats = %+v, want %d total with exactly 1 miss", st, n)
	}
}

func TestRunCacheNilDisablesMemoization(t *testing.T) {
	var c *RunCache
	var calls atomic.Int64
	for i := 0; i < 2; i++ {
		if _, err := c.Do(context.Background(), testKey("x"), func() (*app.Result, error) {
			calls.Add(1)
			return &app.Result{}, nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if calls.Load() != 2 {
		t.Errorf("nil cache executed %d times, want 2", calls.Load())
	}
	if st := c.Stats(); st != (CacheStats{}) {
		t.Errorf("nil cache stats = %+v, want zero", st)
	}
}

// TestMachineFingerprintIgnoresName pins the key property the cross-
// experiment sharing relies on: differently derived but physically
// identical machines fingerprint equally, while any perf/capacity change
// fingerprints differently.
func TestMachineFingerprintIgnoresName(t *testing.T) {
	a := dramMachineFor(machine.PlatformA().WithNVMBandwidthFraction(0.5))
	b := dramMachineFor(machine.PlatformA().WithNVMLatencyFactor(4))
	if a.Name == b.Name {
		t.Fatal("test premise broken: derivation chains should differ in Name")
	}
	if machineFingerprint(a) != machineFingerprint(b) {
		t.Error("DRAM-only twins of fig9/fig10 machines must share a fingerprint")
	}
	c := machine.PlatformA()
	if machineFingerprint(c) == machineFingerprint(c.WithDRAMCapacity(128<<20)) {
		t.Error("DRAM capacity change must alter the fingerprint")
	}
	if machineFingerprint(c) == machineFingerprint(c.WithNVMBandwidthFraction(0.5)) {
		t.Error("NVM bandwidth change must alter the fingerprint")
	}
	if machineFingerprint(c) == machineFingerprint(c.WithNVMLatencyFactor(2)) {
		t.Error("NVM latency change must alter the fingerprint")
	}
}

// TestSuiteSharesBaselinesAcrossExperiments runs fig9 then fig13 on one
// suite: fig13 re-needs fig9's DRAM-only and NVM-only baselines, so the
// second experiment must hit the cache.
func TestSuiteSharesBaselinesAcrossExperiments(t *testing.T) {
	s := quickSuite()
	if _, err := s.Fig9(); err != nil {
		t.Fatal(err)
	}
	after9 := s.CacheStats()
	if after9.Misses == 0 {
		t.Fatal("fig9 executed no baseline runs?")
	}
	if _, err := s.Fig13(); err != nil {
		t.Fatal(err)
	}
	after13 := s.CacheStats()
	if gained := after13.Hits - after9.Hits; gained == 0 {
		t.Error("fig13 did not reuse any of fig9's baselines")
	}
	// Every fig13 baseline (DRAM-only and NVM-only per benchmark on the
	// same machine as fig9) must have been served from the cache.
	if after13.Misses != after9.Misses {
		t.Errorf("fig13 executed %d fresh baseline runs, want 0 (fig9 covers them)",
			after13.Misses-after9.Misses)
	}
}

// TestMachineFingerprintHashesFullTierList pins satellite-1 of the N-tier
// subsystem: the fingerprint covers the whole ordered tier list, so
// platforms differing only in hierarchy depth or in a middle tier can
// never collide on a cached baseline.
func TestMachineFingerprintHashesFullTierList(t *testing.T) {
	three := machine.PlatformHBMDDRNVM()
	// A two-tier machine with the same fastest and slowest tiers as the
	// three-tier platform (middle tier dropped).
	two := three.WithTierCapacity(0, three.Tiers[0].CapacityBytes) // clone
	two.Tiers = []machine.TierSpec{three.Tiers[0], three.Tiers[2]}
	if machineFingerprint(three) == machineFingerprint(two) {
		t.Error("dropping a middle tier must alter the fingerprint")
	}
	// Changing only the middle tier must alter it too.
	mid := three.WithTierCapacity(1, 512<<20)
	if machineFingerprint(three) == machineFingerprint(mid) {
		t.Error("middle-tier capacity change must alter the fingerprint")
	}
	// KNL and CXL share tier count but no tier specs.
	if machineFingerprint(machine.PlatformKNL()) == machineFingerprint(machine.PlatformCXL()) {
		t.Error("KNL and CXL platforms must not collide")
	}
}

// TestRunKeyHashesScenarioSpec pins the scenario-subsystem satellite: two
// scenarios that differ only in one schedule entry (same name, class,
// ranks, iterations) must not share a cache entry — the key carries the
// spec's content digest.
func TestRunKeyHashesScenarioSpec(t *testing.T) {
	spec, err := scenario.Generate(scenario.ArchHotRotation, 5)
	if err != nil {
		t.Fatal(err)
	}
	tweaked, err := scenario.Generate(scenario.ArchHotRotation, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Mutate exactly one piecewise-schedule entry.
	for i := range tweaked.Phases {
		p := &tweaked.Phases[i]
		for j := range p.Refs {
			if len(p.Refs[j].Schedule) > 0 {
				p.Refs[j].Schedule[0].Scale *= 2
				goto mutated
			}
		}
	}
	t.Fatal("generated scenario has no schedule entry to mutate")
mutated:
	wa, err := spec.Compile()
	if err != nil {
		t.Fatal(err)
	}
	wb, err := tweaked.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if wa.Name != wb.Name || wa.Iterations != wb.Iterations {
		t.Fatal("test premise broken: the two scenarios should differ only in the spec body")
	}
	m := machine.PlatformA().WithNVMLatencyFactor(4)
	ka := keyFor(wa, m, "static:slow-only", app.Options{Ranks: wa.Ranks, Seed: 1})
	kb := keyFor(wb, m, "static:slow-only", app.Options{Ranks: wb.Ranks, Seed: 1})
	if ka == kb {
		t.Error("scenarios differing in one schedule entry share a RunKey")
	}
	// Built-ins keep digest-free keys, so existing cache sharing is intact.
	if k := keyFor(workloads.NewCG("C", 4), m, "x", app.Options{}); k.Spec != "" {
		t.Errorf("built-in workload unexpectedly carries spec digest %q", k.Spec)
	}
}

// TestRunCacheBoundedLRUEviction pins the bounded cache's eviction order:
// with an entry budget, the least-recently-used completed entry is evicted
// first, and a recently touched (hit) entry survives insertion churn.
func TestRunCacheBoundedLRUEviction(t *testing.T) {
	// One shard's budget is ceil(total/shards); use keys that land in the
	// same shard by constructing the cache with a per-total budget of
	// shards*2 (2 entries per shard), then drive a single shard with keys
	// known to collide there. Simpler: rely on the global accounting —
	// insert far more entries than the budget and assert the total
	// resident count stays at or under budget while the hot key survives.
	const budget = 32
	c := NewRunCacheBounded(budget, 0)
	mk := func(i int) RunKey { return RunKey{Workload: "W", Strategy: "s", Seed: uint64(i)} }
	hot := mk(0)
	res := &app.Result{TimeNS: 1}
	run := func() (*app.Result, error) { return res, nil }
	if _, err := c.Do(context.Background(), hot, run); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 4*budget; i++ {
		if _, err := c.Do(context.Background(), mk(i), run); err != nil {
			t.Fatal(err)
		}
		// Touch the hot key every insertion so it is always the most
		// recently used entry of its shard.
		if _, err := c.Do(context.Background(), hot, run); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatal("bounded cache evicted nothing under 4x-budget churn")
	}
	// Per-shard budgets: at most ceil(budget/shards) entries per shard.
	perShard := (budget + cacheShardCount - 1) / cacheShardCount
	if st.Entries > perShard*cacheShardCount {
		t.Errorf("resident entries = %d, want <= %d", st.Entries, perShard*cacheShardCount)
	}
	if !c.Contains(hot) {
		t.Error("hot (always-touched) entry was evicted; eviction is not LRU")
	}
	var calls atomic.Int64
	if _, err := c.Do(context.Background(), hot, func() (*app.Result, error) {
		calls.Add(1)
		return res, nil
	}); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 0 {
		t.Error("hot entry re-executed; it should still be resident")
	}
}

// TestRunCacheByteBudget: the byte budget evicts by approximate result
// footprint, keeping total resident bytes at or under the per-shard split.
func TestRunCacheByteBudget(t *testing.T) {
	big := &app.Result{Ranks: make([]app.RankResult, 64)} // ~6 KiB footprint
	per := resultFootprint(big)
	c := NewRunCacheBounded(0, per*2*cacheShardCount)
	for i := 0; i < 64; i++ {
		k := RunKey{Workload: "W", Strategy: "s", Seed: uint64(i)}
		if _, err := c.Do(context.Background(), k, func() (*app.Result, error) { return big, nil }); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatal("byte budget evicted nothing")
	}
	if st.Bytes > per*2*cacheShardCount {
		t.Errorf("resident bytes %d exceed budget %d", st.Bytes, per*2*cacheShardCount)
	}
}

// TestRunCacheStatsCoherent is the satellite-b regression: Stats must be a
// coherent snapshot. The legacy implementation read the hit/miss atomics
// outside the entry mutex, so a concurrent snapshot could observe an entry
// whose miss had not been counted yet (Entries > Misses). Hammer the cache
// from many goroutines while snapshotting, and assert the invariant
// Entries+Evictions <= Misses+Loaded at every snapshot. Run with -race.
func TestRunCacheStatsCoherent(t *testing.T) {
	c := NewRunCacheBounded(8, 0)
	const (
		goroutines = 8
		iters      = 200
		keyspace   = 64
	)
	var workers, snapshotter sync.WaitGroup
	stop := make(chan struct{})
	var violations atomic.Int64
	snapshotter.Add(1)
	go func() {
		defer snapshotter.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			st := c.Stats()
			if int64(st.Entries)+st.Evictions > st.Misses+st.Loaded {
				violations.Add(1)
			}
		}
	}()
	var calls atomic.Int64
	for g := 0; g < goroutines; g++ {
		workers.Add(1)
		go func(g int) {
			defer workers.Done()
			for i := 0; i < iters; i++ {
				k := RunKey{Workload: "W", Strategy: "s", Seed: uint64((g*31 + i) % keyspace)}
				if _, err := c.Do(context.Background(), k, func() (*app.Result, error) {
					calls.Add(1)
					return &app.Result{TimeNS: int64(i)}, nil
				}); err != nil {
					t.Error(err)
				}
			}
		}(g)
	}
	workers.Wait()
	close(stop)
	snapshotter.Wait()
	if v := violations.Load(); v > 0 {
		t.Errorf("observed %d incoherent Stats snapshots (Entries+Evictions > Misses+Loaded)", v)
	}
	// Quiescent accounting: every Do was a hit or a miss, and every miss
	// either stayed resident or was evicted (no cancellations here).
	st := c.Stats()
	if st.Hits+st.Misses != goroutines*iters {
		t.Errorf("hits+misses = %d, want %d", st.Hits+st.Misses, goroutines*iters)
	}
	if st.Misses != calls.Load() {
		t.Errorf("misses = %d but run executed %d times", st.Misses, calls.Load())
	}
	if int64(st.Entries)+st.Evictions != st.Misses {
		t.Errorf("entries(%d)+evictions(%d) != misses(%d) at quiescence", st.Entries, st.Evictions, st.Misses)
	}
}
