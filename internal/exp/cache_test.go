package exp

import (
	"context"

	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"unimem/internal/app"
	"unimem/internal/machine"
	"unimem/internal/scenario"
	"unimem/internal/workloads"
)

func testKey(strategy string) RunKey {
	return RunKey{Workload: "W|C|4|12", Machine: "m", Strategy: strategy, Ranks: 4, Seed: 1}
}

func TestRunCacheHitMissAccounting(t *testing.T) {
	c := NewRunCache()
	var calls atomic.Int64
	run := func() (*app.Result, error) {
		calls.Add(1)
		return &app.Result{TimeNS: 42}, nil
	}
	r1, err := c.Do(context.Background(), testKey("a"), run)
	if err != nil || r1.TimeNS != 42 {
		t.Fatalf("first Do: %v %v", r1, err)
	}
	r2, err := c.Do(context.Background(), testKey("a"), run)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Error("hit did not return the memoized *Result")
	}
	if _, err := c.Do(context.Background(), testKey("b"), run); err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != 2 {
		t.Errorf("run executed %d times, want 2 (one per distinct key)", got)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 2 || st.Entries != 2 {
		t.Errorf("stats = %+v, want 1 hit / 2 misses / 2 entries", st)
	}
}

func TestRunCacheCachesErrors(t *testing.T) {
	c := NewRunCache()
	boom := errors.New("boom")
	var calls atomic.Int64
	run := func() (*app.Result, error) {
		calls.Add(1)
		return nil, boom
	}
	for i := 0; i < 3; i++ {
		if _, err := c.Do(context.Background(), testKey("bad"), run); err != boom {
			t.Fatalf("call %d: err = %v, want boom", i, err)
		}
	}
	if calls.Load() != 1 {
		t.Errorf("failing run executed %d times, want 1", calls.Load())
	}
}

// TestRunCacheSingleflight hammers one key from many goroutines; the run
// must execute exactly once and every caller must observe its result.
// (Run with -race in CI.)
func TestRunCacheSingleflight(t *testing.T) {
	c := NewRunCache()
	var calls atomic.Int64
	res := &app.Result{TimeNS: 7}
	var wg sync.WaitGroup
	const n = 32
	got := make([]*app.Result, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, err := c.Do(context.Background(), testKey("shared"), func() (*app.Result, error) {
				calls.Add(1)
				return res, nil
			})
			if err != nil {
				t.Error(err)
			}
			got[i] = r
		}(i)
	}
	wg.Wait()
	if calls.Load() != 1 {
		t.Fatalf("run executed %d times under contention, want 1", calls.Load())
	}
	for i, r := range got {
		if r != res {
			t.Fatalf("caller %d saw %v, want the shared result", i, r)
		}
	}
	st := c.Stats()
	if st.Hits+st.Misses != n || st.Misses != 1 {
		t.Errorf("stats = %+v, want %d total with exactly 1 miss", st, n)
	}
}

func TestRunCacheNilDisablesMemoization(t *testing.T) {
	var c *RunCache
	var calls atomic.Int64
	for i := 0; i < 2; i++ {
		if _, err := c.Do(context.Background(), testKey("x"), func() (*app.Result, error) {
			calls.Add(1)
			return &app.Result{}, nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if calls.Load() != 2 {
		t.Errorf("nil cache executed %d times, want 2", calls.Load())
	}
	if st := c.Stats(); st != (CacheStats{}) {
		t.Errorf("nil cache stats = %+v, want zero", st)
	}
}

// TestMachineFingerprintIgnoresName pins the key property the cross-
// experiment sharing relies on: differently derived but physically
// identical machines fingerprint equally, while any perf/capacity change
// fingerprints differently.
func TestMachineFingerprintIgnoresName(t *testing.T) {
	a := dramMachineFor(machine.PlatformA().WithNVMBandwidthFraction(0.5))
	b := dramMachineFor(machine.PlatformA().WithNVMLatencyFactor(4))
	if a.Name == b.Name {
		t.Fatal("test premise broken: derivation chains should differ in Name")
	}
	if machineFingerprint(a) != machineFingerprint(b) {
		t.Error("DRAM-only twins of fig9/fig10 machines must share a fingerprint")
	}
	c := machine.PlatformA()
	if machineFingerprint(c) == machineFingerprint(c.WithDRAMCapacity(128<<20)) {
		t.Error("DRAM capacity change must alter the fingerprint")
	}
	if machineFingerprint(c) == machineFingerprint(c.WithNVMBandwidthFraction(0.5)) {
		t.Error("NVM bandwidth change must alter the fingerprint")
	}
	if machineFingerprint(c) == machineFingerprint(c.WithNVMLatencyFactor(2)) {
		t.Error("NVM latency change must alter the fingerprint")
	}
}

// TestSuiteSharesBaselinesAcrossExperiments runs fig9 then fig13 on one
// suite: fig13 re-needs fig9's DRAM-only and NVM-only baselines, so the
// second experiment must hit the cache.
func TestSuiteSharesBaselinesAcrossExperiments(t *testing.T) {
	s := quickSuite()
	if _, err := s.Fig9(); err != nil {
		t.Fatal(err)
	}
	after9 := s.CacheStats()
	if after9.Misses == 0 {
		t.Fatal("fig9 executed no baseline runs?")
	}
	if _, err := s.Fig13(); err != nil {
		t.Fatal(err)
	}
	after13 := s.CacheStats()
	if gained := after13.Hits - after9.Hits; gained == 0 {
		t.Error("fig13 did not reuse any of fig9's baselines")
	}
	// Every fig13 baseline (DRAM-only and NVM-only per benchmark on the
	// same machine as fig9) must have been served from the cache.
	if after13.Misses != after9.Misses {
		t.Errorf("fig13 executed %d fresh baseline runs, want 0 (fig9 covers them)",
			after13.Misses-after9.Misses)
	}
}

// TestMachineFingerprintHashesFullTierList pins satellite-1 of the N-tier
// subsystem: the fingerprint covers the whole ordered tier list, so
// platforms differing only in hierarchy depth or in a middle tier can
// never collide on a cached baseline.
func TestMachineFingerprintHashesFullTierList(t *testing.T) {
	three := machine.PlatformHBMDDRNVM()
	// A two-tier machine with the same fastest and slowest tiers as the
	// three-tier platform (middle tier dropped).
	two := three.WithTierCapacity(0, three.Tiers[0].CapacityBytes) // clone
	two.Tiers = []machine.TierSpec{three.Tiers[0], three.Tiers[2]}
	if machineFingerprint(three) == machineFingerprint(two) {
		t.Error("dropping a middle tier must alter the fingerprint")
	}
	// Changing only the middle tier must alter it too.
	mid := three.WithTierCapacity(1, 512<<20)
	if machineFingerprint(three) == machineFingerprint(mid) {
		t.Error("middle-tier capacity change must alter the fingerprint")
	}
	// KNL and CXL share tier count but no tier specs.
	if machineFingerprint(machine.PlatformKNL()) == machineFingerprint(machine.PlatformCXL()) {
		t.Error("KNL and CXL platforms must not collide")
	}
}

// TestRunKeyHashesScenarioSpec pins the scenario-subsystem satellite: two
// scenarios that differ only in one schedule entry (same name, class,
// ranks, iterations) must not share a cache entry — the key carries the
// spec's content digest.
func TestRunKeyHashesScenarioSpec(t *testing.T) {
	spec, err := scenario.Generate(scenario.ArchHotRotation, 5)
	if err != nil {
		t.Fatal(err)
	}
	tweaked, err := scenario.Generate(scenario.ArchHotRotation, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Mutate exactly one piecewise-schedule entry.
	for i := range tweaked.Phases {
		p := &tweaked.Phases[i]
		for j := range p.Refs {
			if len(p.Refs[j].Schedule) > 0 {
				p.Refs[j].Schedule[0].Scale *= 2
				goto mutated
			}
		}
	}
	t.Fatal("generated scenario has no schedule entry to mutate")
mutated:
	wa, err := spec.Compile()
	if err != nil {
		t.Fatal(err)
	}
	wb, err := tweaked.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if wa.Name != wb.Name || wa.Iterations != wb.Iterations {
		t.Fatal("test premise broken: the two scenarios should differ only in the spec body")
	}
	m := machine.PlatformA().WithNVMLatencyFactor(4)
	ka := keyFor(wa, m, "static:slow-only", app.Options{Ranks: wa.Ranks, Seed: 1})
	kb := keyFor(wb, m, "static:slow-only", app.Options{Ranks: wb.Ranks, Seed: 1})
	if ka == kb {
		t.Error("scenarios differing in one schedule entry share a RunKey")
	}
	// Built-ins keep digest-free keys, so existing cache sharing is intact.
	if k := keyFor(workloads.NewCG("C", 4), m, "x", app.Options{}); k.Spec != "" {
		t.Errorf("built-in workload unexpectedly carries spec digest %q", k.Spec)
	}
}
