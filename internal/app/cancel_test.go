package app_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"unimem/internal/app"
	"unimem/internal/core"
	"unimem/internal/machine"
	"unimem/internal/workloads"
)

// TestRunCtxDeadContext: an already-cancelled context returns immediately
// without spawning a world.
func TestRunCtxDeadContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	w := workloads.NewCG("A", 2)
	m := machine.PlatformA()
	res, err := app.RunCtx(ctx, w, m, app.Options{}, app.NewStaticFactory("s", nil))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatal("cancelled run returned a result")
	}
}

// TestRunCtxCancelMidRun cancels a long run shortly after it starts: the
// simulated world must abort — ranks parked in collectives included —
// and RunCtx must return the context error promptly, with the Unimem
// runtime's helper threads stopped (verified implicitly by -race and the
// absence of a hang).
func TestRunCtxCancelMidRun(t *testing.T) {
	w := workloads.NewCG("C", 4)
	cp := *w
	cp.Iterations = 100000 // minutes of simulation if not aborted
	m := machine.PlatformA().WithNVMBandwidthFraction(0.5)

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	res, err := app.RunCtx(ctx, &cp, m, app.Options{}, core.Factory(core.DefaultConfig()))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatal("cancelled run returned a result")
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("cancelled run took %v to unwind", elapsed)
	}
}

// TestRunCtxBackgroundUnchanged: a background context is the plain Run
// path — results must match Run bit for bit.
func TestRunCtxBackgroundUnchanged(t *testing.T) {
	w := workloads.NewCG("A", 2)
	m := machine.PlatformA().WithNVMBandwidthFraction(0.5)
	a, err := app.Run(w, m, app.Options{Seed: 7}, app.NewStaticFactory("s", nil))
	if err != nil {
		t.Fatal(err)
	}
	b, err := app.RunCtx(context.Background(), w, m, app.Options{Seed: 7}, app.NewStaticFactory("s", nil))
	if err != nil {
		t.Fatal(err)
	}
	if a.TimeNS != b.TimeNS || a.Ranks[0].CommNS != b.Ranks[0].CommNS {
		t.Fatalf("RunCtx(background) diverged from Run: %d vs %d", a.TimeNS, b.TimeNS)
	}
}
