package phase

import "math"

// Key is a 64-bit FNV-1a digest identifying the analytic inputs of one
// phase execution: what the phase will touch (content), where that data
// lives (placement) and what hardware prices it (machine fingerprint).
// Two executions with equal Keys are computed identically by the
// simulator, which is what makes the memo layer and the steady-state
// fast-forward sound. The zero Key is reserved as "no key".
type Key uint64

// Digest is an incremental FNV-1a hasher for composing Keys. The zero
// value is not a valid start state; begin with NewDigest. Fold methods
// return the advanced digest so key construction chains without
// allocation.
type Digest uint64

const (
	fnvOffset Digest = 14695981039346656037
	fnvPrime  Digest = 1099511628211
)

// NewDigest returns the FNV-1a offset basis.
func NewDigest() Digest { return fnvOffset }

// Uint64 folds v little-endian byte by byte.
func (d Digest) Uint64(v uint64) Digest {
	for i := 0; i < 8; i++ {
		d = (d ^ Digest(v&0xff)) * fnvPrime
		v >>= 8
	}
	return d
}

// Int64 folds v as its two's-complement bits.
func (d Digest) Int64(v int64) Digest { return d.Uint64(uint64(v)) }

// Int folds v as an int64.
func (d Digest) Int(v int) Digest { return d.Uint64(uint64(int64(v))) }

// Float64 folds the IEEE-754 bits of v, so exact-value equality (the
// only equality the fast path may rely on) is what keys compare.
func (d Digest) Float64(v float64) Digest { return d.Uint64(math.Float64bits(v)) }

// String folds the bytes of s.
func (d Digest) String(s string) Digest {
	for i := 0; i < len(s); i++ {
		d = (d ^ Digest(s[i])) * fnvPrime
	}
	return d
}

// Key finalizes the digest.
func (d Digest) Key() Key { return Key(d) }
