package exp

import (
	"context"
	"fmt"
	"reflect"
	"runtime"
	"sort"
	"time"

	"unimem/internal/app"
	"unimem/internal/core"
	"unimem/internal/machine"
	"unimem/internal/scenario"
)

// This file is the analytic fast path's wall-clock benchmark: matched
// exact-vs-fast executions of long stationary runs, the workload shape
// the fast path exists for. Every pair also differentially verifies
// byte-identity (a fast path that is fast but wrong must fail the bench,
// not just the test suite), and the document records the analytic
// fraction so a silently-disengaged fast path is visible as a speedup of
// ~1 with AnalyticFrac ~0 rather than a mystery.

// FastpathBenchCell is one (workload, platform) comparison.
type FastpathBenchCell struct {
	Name       string `json:"name"`
	Iterations int    `json:"iterations"`
	Trials     int    `json:"trials"`
	// ExactNS/FastNS are median wall-clock times of the full event-driven
	// simulation and the fast-path run.
	ExactNS int64 `json:"exact_ns"`
	FastNS  int64 `json:"fast_ns"`
	// Speedup is ExactNS/FastNS — machine-independent (both sides run in
	// the same process on the same machine), which is what -check gates.
	Speedup float64 `json:"speedup"`
	// AnalyticFrac is the fraction of iterations the fast run skipped
	// analytically (from the run's FastPathStats).
	AnalyticFrac float64 `json:"analytic_frac"`
	MemoHits     int64   `json:"memo_hits"`
	// Identical reports the differential verdict: the two results are
	// deeply equal.
	Identical bool `json:"identical"`
}

// FastpathBenchDoc is the top-level BENCH_fastpath.json document.
type FastpathBenchDoc struct {
	Mode       string              `json:"mode"` // "fastpath"
	Quick      bool                `json:"quick"`
	GoMaxProcs int                 `json:"gomaxprocs"`
	Cells      []FastpathBenchCell `json:"cells"`
	// MinSpeedup is the worst cell's speedup — the figure the -check gate
	// compares against its absolute floor.
	MinSpeedup float64 `json:"min_speedup"`
}

// fastpathBenchCells returns the benchmark matrix: long stationary runs
// on the paper's two-tier platform and the capacity-tight three-tier
// stack (the multiple-choice-knapsack runtime path).
func fastpathBenchCells(quick bool) []struct {
	name  string
	m     *machine.Machine
	iters int
} {
	iters := 9600
	if quick {
		iters = 4800
	}
	tight := machine.PlatformHBMDDRNVM().
		WithTierCapacity(0, 96<<20).
		WithTierCapacity(1, 160<<20)
	tight.Name = "HBM+DDR+NVM/tight"
	return []struct {
		name  string
		m     *machine.Machine
		iters int
	}{
		{"stable/two-tier", machine.PlatformA().WithNVMLatencyFactor(4), iters},
		{"stable/three-tier", tight, iters},
	}
}

// RunFastpathBench measures the analytic fast path's wall-clock speedup
// over exact simulation on long stationary runs, differentially
// verifying every pair. logf receives progress lines.
func RunFastpathBench(quick bool, logf func(string, ...interface{})) (*FastpathBenchDoc, error) {
	doc := &FastpathBenchDoc{Mode: "fastpath", Quick: quick, GoMaxProcs: runtime.GOMAXPROCS(0)}
	trials := 5
	if quick {
		trials = 3
	}
	eng := NewEngine(false, nil) // uncached: every trial really executes
	ctx := context.Background()

	for _, c := range fastpathBenchCells(quick) {
		spec, err := scenario.Generate(scenario.ArchStable, 0x5EED)
		if err != nil {
			return nil, err
		}
		spec.Ranks = 2
		spec.Iterations = c.iters
		w, err := spec.Compile()
		if err != nil {
			return nil, err
		}
		cfg := core.DefaultConfig()
		run := func(exact bool) (*app.Result, app.FastPathStats, time.Duration, error) {
			var st app.FastPathStats
			start := time.Now()
			// The tight MaterializeCap (applied to both sides) keeps real
			// memory zeroing — a fixed per-run cost unrelated to what this
			// bench measures — from flattering or masking the ratio.
			res, _, err := eng.Execute(ctx, w, c.m, StrategyUnimem(), cfg,
				app.Options{Ranks: spec.Ranks, ExactSim: exact, FastPath: &st,
					MaterializeCap: 64 << 10})
			return res, st, time.Since(start), err
		}
		// Warm the engine's memoized calibration so neither side pays it.
		if _, _, _, err := run(false); err != nil {
			return nil, err
		}

		var exactNS, fastNS []int64
		var exactRes, fastRes *app.Result
		var fpStats app.FastPathStats
		for i := 0; i < trials; i++ {
			res, _, d, err := run(true)
			if err != nil {
				return nil, err
			}
			exactRes, exactNS = res, append(exactNS, d.Nanoseconds())
			res, st, d, err := run(false)
			if err != nil {
				return nil, err
			}
			fastRes, fpStats, fastNS = res, st, append(fastNS, d.Nanoseconds())
		}
		cell := FastpathBenchCell{
			Name:       c.name,
			Iterations: c.iters,
			Trials:     trials,
			ExactNS:    medianNS(exactNS),
			FastNS:     medianNS(fastNS),
			MemoHits:   fpStats.MemoHits,
			Identical:  reflect.DeepEqual(exactRes, fastRes),
		}
		if cell.FastNS > 0 {
			cell.Speedup = float64(cell.ExactNS) / float64(cell.FastNS)
		}
		if total := fpStats.SimulatedIters + fpStats.AnalyticIters; total > 0 {
			cell.AnalyticFrac = float64(fpStats.AnalyticIters) / float64(total)
		}
		doc.Cells = append(doc.Cells, cell)
		if logf != nil {
			logf("fastpath %s: %d iters, exact %v fast %v -> %.1fx (analytic %.0f%%, identical=%v)",
				c.name, c.iters, time.Duration(cell.ExactNS).Round(time.Microsecond),
				time.Duration(cell.FastNS).Round(time.Microsecond),
				cell.Speedup, 100*cell.AnalyticFrac, cell.Identical)
		}
	}

	for i, c := range doc.Cells {
		if i == 0 || c.Speedup < doc.MinSpeedup {
			doc.MinSpeedup = c.Speedup
		}
	}
	if len(doc.Cells) == 0 {
		return nil, fmt.Errorf("fastpath bench produced no cells")
	}
	return doc, nil
}

// medianNS returns the median of ns (sorted in place).
func medianNS(ns []int64) int64 {
	sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
	return ns[len(ns)/2]
}
