// Package scenario is the declarative workload layer: a JSON schema that
// describes a phase-structured iterative MPI application — objects, phases,
// communication, static hints, and piecewise per-iteration traffic
// schedules — plus a deterministic synthetic generator of named scenario
// archetypes (pattern drift, working-set growth, hot-object rotation, rank
// imbalance, bursty communication).
//
// The schema round-trips every built-in workload exactly: FromWorkload
// samples a workload's ground-truth traffic across its iterations and
// Compile reconstructs it, so Save -> Load -> Run is byte-identical to
// running the original. Workloads can therefore be authored, stored,
// mutated and exchanged as files without touching Go, and the experiment
// layer's run cache keys on a content digest of the spec (Workload.
// SpecDigest) so same-named scenarios never collide.
//
// Two mechanisms express iteration-varying traffic, and they compose:
//
//   - Per-ref schedules (RefSpec.Schedule): piecewise windows scaling a
//     base reference's access count and overriding its pattern or
//     read/write mix — the generator's vocabulary for drift.
//   - Phase epochs (PhaseSpec.Epochs): explicit full reference lists per
//     iteration window — the exact-capture vocabulary FromWorkload uses
//     for workloads whose traffic is an arbitrary Go function (Nek5000's
//     rotating Krylov sets).
//
// Communication burstiness (PhaseSpec.CommSchedule) and rank imbalance
// (PhaseSpec.RankSkew) map onto the execution harness extensions in
// package workloads.
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"

	"unimem/internal/machine"
	"unimem/internal/phase"
	"unimem/internal/workloads"
)

// Spec is the top-level declarative workload description.
type Spec struct {
	Name       string `json:"name"`
	Class      string `json:"class,omitempty"`
	Ranks      int    `json:"ranks"`
	Iterations int    `json:"iterations"`
	// FootprintFrac is the fraction of the application footprint covered
	// by the target objects (defaults to 1).
	FootprintFrac float64      `json:"footprint_frac,omitempty"`
	Objects       []ObjectSpec `json:"objects"`
	Phases        []PhaseSpec  `json:"phases"`
}

// ObjectSpec declares one target data object.
type ObjectSpec struct {
	Name string `json:"name"`
	// SizeBytes is the per-rank simulated size.
	SizeBytes int64 `json:"size_bytes"`
	// Partitionable marks regular 1-D arrays the runtime may chunk.
	Partitionable bool `json:"partitionable,omitempty"`
	// RefHint is the static per-iteration reference-count estimate the
	// compiler analysis would produce (0: unknown before the loop).
	RefHint float64 `json:"ref_hint,omitempty"`
}

// PhaseSpec declares one phase of the iteration body.
type PhaseSpec struct {
	Name string `json:"name"`
	// Comm names the MPI operation: "" or "none" for computation phases,
	// else one of allreduce|halo|alltoall|bcast|barrier|waithalo.
	Comm      string `json:"comm,omitempty"`
	CommBytes int64  `json:"comm_bytes,omitempty"`
	// CommSchedule scales CommBytes per iteration window (bursty comm).
	CommSchedule []workloads.ScaleWindow `json:"comm_schedule,omitempty"`
	Flops        float64                 `json:"flops,omitempty"`
	// RankSkew linearly imbalances the phase across ranks; see
	// workloads.Phase.RankSkew. Valid range [0, 2).
	RankSkew float64 `json:"rank_skew,omitempty"`
	// Refs is the phase's base per-iteration traffic, optionally shaped
	// by per-ref schedules.
	Refs []RefSpec `json:"refs,omitempty"`
	// Epochs override Refs wholesale for the iteration windows they
	// cover (first matching epoch wins; uncovered iterations fall back
	// to Refs).
	Epochs []EpochSpec `json:"epochs,omitempty"`
}

// RefSpec declares one object's traffic in a phase.
type RefSpec struct {
	Object string `json:"object"`
	// Accesses is the base per-rank post-LLC access count.
	Accesses int64 `json:"accesses"`
	// ReadFrac is the fraction of accesses that are reads.
	ReadFrac float64 `json:"read_frac"`
	// Pattern is one of stream|stencil|random|pointer-chase.
	Pattern string `json:"pattern"`
	// Schedule applies piecewise per-iteration scale factors and
	// pattern / read-mix overrides (first matching window wins; outside
	// every window the base values apply).
	Schedule []RefWindow `json:"schedule,omitempty"`
}

// RefWindow is one segment of a reference's piecewise schedule.
type RefWindow struct {
	// From (inclusive) and To (exclusive) bound the window in
	// iterations; To <= 0 means "until the end of the run".
	From int `json:"from"`
	To   int `json:"to,omitempty"`
	// Scale multiplies the base access count; 0 silences the reference
	// for the window entirely.
	Scale float64 `json:"scale"`
	// Pattern optionally overrides the base access pattern.
	Pattern string `json:"pattern,omitempty"`
	// ReadFrac optionally overrides the base read fraction.
	ReadFrac *float64 `json:"read_frac,omitempty"`
}

// inWindow reports whether a [from, to) iteration window covers iter
// (to == 0: open-ended). All spec window types share these semantics,
// mirroring workloads.ScaleWindow.Contains on the execution side.
func inWindow(from, to, iter int) bool {
	return iter >= from && (to <= 0 || iter < to)
}

// contains reports whether the window covers the iteration.
func (w RefWindow) contains(iter int) bool { return inWindow(w.From, w.To, iter) }

// EpochSpec is one iteration window with an explicit reference list.
type EpochSpec struct {
	// From (inclusive) and To (exclusive) bound the epoch; To <= 0 means
	// "until the end of the run".
	From int `json:"from"`
	To   int `json:"to,omitempty"`
	// Refs is the complete reference list of the phase during the epoch
	// (per-ref schedules are not allowed inside epochs).
	Refs []RefSpec `json:"refs"`
}

// contains reports whether the epoch covers the iteration.
func (e EpochSpec) contains(iter int) bool { return inWindow(e.From, e.To, iter) }

// patternNames maps schema pattern strings to machine patterns.
var patternNames = map[string]machine.Pattern{
	"stream":        machine.Stream,
	"stencil":       machine.Stencil,
	"random":        machine.Random,
	"pointer-chase": machine.PointerChase,
}

// commNames maps schema comm strings to workload comm kinds.
var commNames = map[string]workloads.CommKind{
	"":          workloads.CommNone,
	"none":      workloads.CommNone,
	"allreduce": workloads.CommAllreduce,
	"halo":      workloads.CommHalo,
	"alltoall":  workloads.CommAlltoall,
	"bcast":     workloads.CommBcast,
	"barrier":   workloads.CommBarrier,
	"waithalo":  workloads.CommWaitHalo,
}

// commString renders a comm kind as its schema name.
func commString(k workloads.CommKind) string {
	switch k {
	case workloads.CommNone:
		return ""
	case workloads.CommAllreduce:
		return "allreduce"
	case workloads.CommHalo:
		return "halo"
	case workloads.CommAlltoall:
		return "alltoall"
	case workloads.CommBcast:
		return "bcast"
	case workloads.CommBarrier:
		return "barrier"
	case workloads.CommWaitHalo:
		return "waithalo"
	}
	return fmt.Sprintf("comm(%d)", int(k))
}

// Validate checks the spec's internal consistency. Errors name the
// offending field in JSON-path form (e.g. phases[1].refs[0].object).
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenario %q: name: must be non-empty", s.Name)
	}
	if s.Ranks <= 0 {
		return fmt.Errorf("scenario %q: ranks: must be positive, got %d", s.Name, s.Ranks)
	}
	if s.Iterations <= 0 {
		return fmt.Errorf("scenario %q: iterations: must be positive, got %d", s.Name, s.Iterations)
	}
	if s.FootprintFrac < 0 || s.FootprintFrac > 1 {
		return fmt.Errorf("scenario %q: footprint_frac: must be in [0,1], got %g", s.Name, s.FootprintFrac)
	}
	if len(s.Objects) == 0 {
		return fmt.Errorf("scenario %q: objects: must declare at least one object", s.Name)
	}
	known := make(map[string]bool, len(s.Objects))
	for i, o := range s.Objects {
		if o.Name == "" {
			return fmt.Errorf("scenario %q: objects[%d].name: must be non-empty", s.Name, i)
		}
		if known[o.Name] {
			return fmt.Errorf("scenario %q: objects[%d].name: duplicate object %q", s.Name, i, o.Name)
		}
		known[o.Name] = true
		if o.SizeBytes <= 0 {
			return fmt.Errorf("scenario %q: objects[%d].size_bytes: must be positive, got %d", s.Name, i, o.SizeBytes)
		}
		if o.RefHint < 0 {
			return fmt.Errorf("scenario %q: objects[%d].ref_hint: must be non-negative, got %g", s.Name, i, o.RefHint)
		}
	}
	if len(s.Phases) == 0 {
		return fmt.Errorf("scenario %q: phases: must declare at least one phase", s.Name)
	}
	// checkWindow validates shared [from, to) window bounds: from >= 0 and
	// to either 0 (open-ended) or strictly past from — negative to is a
	// rejected typo, not an alias for open-ended.
	checkWindow := func(path string, from, to int) error {
		if from < 0 {
			return fmt.Errorf("scenario %q: %s.from: must be non-negative, got %d", s.Name, path, from)
		}
		if to < 0 {
			return fmt.Errorf("scenario %q: %s.to: must be 0 (open-ended) or > from, got %d", s.Name, path, to)
		}
		if to > 0 && to <= from {
			return fmt.Errorf("scenario %q: %s.to: must exceed from (%d), got %d", s.Name, path, from, to)
		}
		return nil
	}
	checkRef := func(path string, r RefSpec, inEpoch bool) error {
		if !known[r.Object] {
			return fmt.Errorf("scenario %q: %s.object: unknown object %q", s.Name, path, r.Object)
		}
		if r.Accesses <= 0 {
			return fmt.Errorf("scenario %q: %s.accesses: must be positive, got %d", s.Name, path, r.Accesses)
		}
		if r.ReadFrac < 0 || r.ReadFrac > 1 {
			return fmt.Errorf("scenario %q: %s.read_frac: must be in [0,1], got %g", s.Name, path, r.ReadFrac)
		}
		if _, ok := patternNames[r.Pattern]; !ok {
			return fmt.Errorf("scenario %q: %s.pattern: unknown pattern %q (want stream|stencil|random|pointer-chase)", s.Name, path, r.Pattern)
		}
		if inEpoch && len(r.Schedule) > 0 {
			return fmt.Errorf("scenario %q: %s.schedule: per-ref schedules are not allowed inside epochs", s.Name, path)
		}
		for k, w := range r.Schedule {
			wpath := fmt.Sprintf("%s.schedule[%d]", path, k)
			if err := checkWindow(wpath, w.From, w.To); err != nil {
				return err
			}
			if w.Scale < 0 {
				return fmt.Errorf("scenario %q: %s.scale: must be non-negative, got %g", s.Name, wpath, w.Scale)
			}
			if w.Pattern != "" {
				if _, ok := patternNames[w.Pattern]; !ok {
					return fmt.Errorf("scenario %q: %s.pattern: unknown pattern %q", s.Name, wpath, w.Pattern)
				}
			}
			if w.ReadFrac != nil && (*w.ReadFrac < 0 || *w.ReadFrac > 1) {
				return fmt.Errorf("scenario %q: %s.read_frac: must be in [0,1], got %g", s.Name, wpath, *w.ReadFrac)
			}
		}
		return nil
	}
	for i, p := range s.Phases {
		ppath := fmt.Sprintf("phases[%d]", i)
		if p.Name == "" {
			return fmt.Errorf("scenario %q: %s.name: must be non-empty", s.Name, ppath)
		}
		if _, ok := commNames[p.Comm]; !ok {
			return fmt.Errorf("scenario %q: %s.comm: unknown comm kind %q (want none|allreduce|halo|alltoall|bcast|barrier|waithalo)", s.Name, ppath, p.Comm)
		}
		if p.CommBytes < 0 {
			return fmt.Errorf("scenario %q: %s.comm_bytes: must be non-negative, got %d", s.Name, ppath, p.CommBytes)
		}
		if p.Flops < 0 {
			return fmt.Errorf("scenario %q: %s.flops: must be non-negative, got %g", s.Name, ppath, p.Flops)
		}
		if p.RankSkew < 0 || p.RankSkew >= 2 {
			return fmt.Errorf("scenario %q: %s.rank_skew: must be in [0,2), got %g", s.Name, ppath, p.RankSkew)
		}
		for k, w := range p.CommSchedule {
			wpath := fmt.Sprintf("%s.comm_schedule[%d]", ppath, k)
			if err := checkWindow(wpath, w.From, w.To); err != nil {
				return err
			}
			if w.Scale < 0 {
				return fmt.Errorf("scenario %q: %s.scale: must be non-negative, got %g", s.Name, wpath, w.Scale)
			}
		}
		for j, r := range p.Refs {
			if err := checkRef(fmt.Sprintf("%s.refs[%d]", ppath, j), r, false); err != nil {
				return err
			}
		}
		for e, ep := range p.Epochs {
			epath := fmt.Sprintf("%s.epochs[%d]", ppath, e)
			if err := checkWindow(epath, ep.From, ep.To); err != nil {
				return err
			}
			for j, r := range ep.Refs {
				if err := checkRef(fmt.Sprintf("%s.refs[%d]", epath, j), r, true); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// Encode renders the spec as indented JSON.
func (s *Spec) Encode() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// Digest returns a content hash of the spec (FNV-1a over its canonical
// JSON encoding): the run-cache fingerprint component that distinguishes
// scenarios sharing a name.
func (s *Spec) Digest() string {
	b, err := json.Marshal(s)
	if err != nil {
		// A Spec contains only marshalable fields; this cannot happen.
		panic(fmt.Sprintf("scenario: digest of %q: %v", s.Name, err))
	}
	h := fnv.New64a()
	h.Write(b)
	return fmt.Sprintf("%016x", h.Sum64())
}

// Parse decodes and validates a spec from JSON. Unknown fields are
// rejected so typos surface as errors rather than silently-ignored keys.
func Parse(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: parse: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Load reads, decodes and validates a spec file.
func Load(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	return Parse(data)
}

// Save writes the spec as indented JSON to path.
func (s *Spec) Save(path string) error {
	data, err := s.Encode()
	if err != nil {
		return fmt.Errorf("scenario: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ref materializes a RefSpec at schedule scale 1.
func (r RefSpec) ref() (phase.Ref, bool) {
	return r.refAt(-1)
}

// refAt materializes a RefSpec for the given iteration, applying the first
// matching schedule window (iter < 0 skips the schedule). The second
// return is false when the window silences the reference.
func (r RefSpec) refAt(iter int) (phase.Ref, bool) {
	acc := r.Accesses
	pat := patternNames[r.Pattern]
	readFrac := r.ReadFrac
	if iter >= 0 {
		for _, w := range r.Schedule {
			if !w.contains(iter) {
				continue
			}
			if w.Scale == 0 {
				return phase.Ref{}, false
			}
			acc = int64(float64(acc) * w.Scale)
			if acc < 1 {
				acc = 1
			}
			if w.Pattern != "" {
				pat = patternNames[w.Pattern]
			}
			if w.ReadFrac != nil {
				readFrac = *w.ReadFrac
			}
			break
		}
	}
	return phase.Ref{Object: r.Object, Accesses: acc, ReadFrac: readFrac, Pattern: pat}, true
}

// refsAt materializes a phase's reference list for one iteration.
func (p *PhaseSpec) refsAt(iter int) []phase.Ref {
	for _, ep := range p.Epochs {
		if !ep.contains(iter) {
			continue
		}
		out := make([]phase.Ref, 0, len(ep.Refs))
		for _, r := range ep.Refs {
			ref, _ := r.ref()
			out = append(out, ref)
		}
		return out
	}
	out := make([]phase.Ref, 0, len(p.Refs))
	for _, r := range p.Refs {
		if ref, ok := r.refAt(iter); ok {
			out = append(out, ref)
		}
	}
	return out
}

// Compile materializes the spec into an executable workload. Per-iteration
// reference lists are precomputed for the spec's iteration range (iterations
// beyond it reuse the last list), so the hot Refs path is a slice lookup.
func (s *Spec) Compile() (*workloads.Workload, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	w := &workloads.Workload{
		Name:          s.Name,
		Class:         s.Class,
		Ranks:         s.Ranks,
		Iterations:    s.Iterations,
		FootprintFrac: s.FootprintFrac,
		SpecDigest:    s.Digest(),
	}
	if w.Class == "" {
		w.Class = "scenario"
	}
	if w.FootprintFrac == 0 {
		w.FootprintFrac = 1
	}
	for _, o := range s.Objects {
		w.Objects = append(w.Objects, workloads.ObjectSpec{
			Name:          o.Name,
			Size:          o.SizeBytes,
			Partitionable: o.Partitionable,
			RefHint:       o.RefHint,
		})
	}
	for i := range s.Phases {
		p := &s.Phases[i]
		kind := phase.Compute
		comm := commNames[p.Comm]
		if comm != workloads.CommNone {
			kind = phase.Comm
		}
		table := make([][]phase.Ref, s.Iterations)
		for iter := 0; iter < s.Iterations; iter++ {
			table[iter] = p.refsAt(iter)
		}
		w.Phases = append(w.Phases, workloads.Phase{
			Name:         p.Name,
			Kind:         kind,
			Comm:         comm,
			CommBytes:    p.CommBytes,
			CommSchedule: append([]workloads.ScaleWindow(nil), p.CommSchedule...),
			Flops:        p.Flops,
			RankSkew:     p.RankSkew,
			Refs: func(iter int) []phase.Ref {
				if iter < 0 {
					iter = 0
				}
				if iter >= len(table) {
					iter = len(table) - 1
				}
				return table[iter]
			},
		})
	}
	// The per-iteration content is fully materialized above, so the
	// change-point declaration the fast path consumes is one compile-time
	// pass instead of a per-run scan.
	w.ComputeContentEpochs()
	return w, nil
}

// refSpec captures a materialized reference back into the schema.
func refSpec(r phase.Ref) RefSpec {
	return RefSpec{
		Object:   r.Object,
		Accesses: r.Accesses,
		ReadFrac: r.ReadFrac,
		Pattern:  r.Pattern.String(),
	}
}

// refsEqual compares two reference lists by value, order included.
func refsEqual(a, b []phase.Ref) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// FromWorkload captures a workload into the declarative schema by sampling
// its ground-truth traffic across every iteration. Iteration-invariant
// phases become plain reference lists; iteration-varying phases (arbitrary
// Go functions, like Nek5000's rotating Krylov sets) become epochs of
// consecutive identical lists, preserving per-iteration reference order —
// which is what makes the round trip byte-identical under simulation.
func FromWorkload(w *workloads.Workload) (*Spec, error) {
	if w.Iterations <= 0 {
		return nil, fmt.Errorf("scenario: workload %q: iterations must be positive, got %d", w.Name, w.Iterations)
	}
	s := &Spec{
		Name:          w.Name,
		Class:         w.Class,
		Ranks:         w.Ranks,
		Iterations:    w.Iterations,
		FootprintFrac: w.FootprintFrac,
	}
	for _, o := range w.Objects {
		s.Objects = append(s.Objects, ObjectSpec{
			Name:          o.Name,
			SizeBytes:     o.Size,
			Partitionable: o.Partitionable,
			RefHint:       o.RefHint,
		})
	}
	for i := range w.Phases {
		ph := &w.Phases[i]
		ps := PhaseSpec{
			Name:         ph.Name,
			Comm:         commString(ph.Comm),
			CommBytes:    ph.CommBytes,
			CommSchedule: append([]workloads.ScaleWindow(nil), ph.CommSchedule...),
			Flops:        ph.Flops,
			RankSkew:     ph.RankSkew,
		}
		base := ph.Refs(0)
		varying := false
		for iter := 1; iter < w.Iterations && !varying; iter++ {
			varying = !refsEqual(base, ph.Refs(iter))
		}
		toSpecs := func(refs []phase.Ref) []RefSpec {
			out := make([]RefSpec, 0, len(refs))
			for _, r := range refs {
				out = append(out, refSpec(r))
			}
			return out
		}
		if !varying {
			ps.Refs = toSpecs(base)
		} else {
			// Group consecutive identical lists into epochs.
			start, cur := 0, base
			for iter := 1; iter <= w.Iterations; iter++ {
				var next []phase.Ref
				if iter < w.Iterations {
					next = ph.Refs(iter)
					if refsEqual(cur, next) {
						continue
					}
				}
				to := iter
				if iter == w.Iterations {
					to = 0 // open-ended: until the end of the run
				}
				ps.Epochs = append(ps.Epochs, EpochSpec{From: start, To: to, Refs: toSpecs(cur)})
				start, cur = iter, next
			}
		}
		s.Phases = append(s.Phases, ps)
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("scenario: capture of workload %q produced an invalid spec: %w", w.Name, err)
	}
	return s, nil
}
