package mover

import (
	"testing"

	"unimem/internal/machine"
	"unimem/internal/memsys"
)

func testHeap() *memsys.Heap {
	m := machine.PlatformA().WithNVMBandwidthFraction(0.5)
	return memsys.NewHeap(m, memsys.NewNodeTiers(m), memsys.HeapOptions{})
}

func TestMoveCompletesAndAccounts(t *testing.T) {
	h := testHeap()
	o, _ := h.Alloc("a", 32<<20, memsys.AllocOptions{InitialTier: machine.NVM})
	mv := New(h)
	mv.Start()
	defer mv.Stop()

	seq := mv.Enqueue(o.Chunks[0], machine.DRAM, 0)
	stall := mv.Sync(seq, 0)
	if h.TierOf(o.Chunks[0]) != machine.DRAM {
		t.Fatal("chunk not migrated")
	}
	// Enqueued at t=0 and needed at t=0: the whole copy is exposed.
	want := int64(h.Mach.CopyTimeNS(32 << 20))
	if stall != want {
		t.Fatalf("stall %d, want %d", stall, want)
	}
	st := mv.Stats()
	if st.Completed != 1 || st.BytesMoved != 32<<20 || st.Failed != 0 {
		t.Fatalf("stats %+v", st)
	}
	if st.OverlapFrac() > 1e-6 { // int64 stall truncation leaves float dust
		t.Fatalf("overlap %v, want ~0", st.OverlapFrac())
	}
}

func TestFullyOverlappedMove(t *testing.T) {
	h := testHeap()
	o, _ := h.Alloc("a", 16<<20, memsys.AllocOptions{InitialTier: machine.NVM})
	mv := New(h)
	mv.Start()
	defer mv.Stop()

	seq := mv.Enqueue(o.Chunks[0], machine.DRAM, 0)
	// Sync far in the virtual future: the copy hid entirely.
	copyNS := int64(h.Mach.CopyTimeNS(16 << 20))
	if stall := mv.Sync(seq, copyNS*10); stall != 0 {
		t.Fatalf("stall %d, want 0", stall)
	}
	if f := mv.Stats().OverlapFrac(); f != 1 {
		t.Fatalf("overlap %v, want 1", f)
	}
}

func TestFIFOSerialization(t *testing.T) {
	h := testHeap()
	a, _ := h.Alloc("a", 16<<20, memsys.AllocOptions{InitialTier: machine.NVM})
	b, _ := h.Alloc("b", 16<<20, memsys.AllocOptions{InitialTier: machine.NVM})
	mv := New(h)
	mv.Start()
	defer mv.Stop()

	mv.Enqueue(a.Chunks[0], machine.DRAM, 0)
	seqB := mv.Enqueue(b.Chunks[0], machine.DRAM, 0)
	stall := mv.Sync(seqB, 0)
	// b starts only after a finishes: exposed cost is two copies.
	want := int64(2 * h.Mach.CopyTimeNS(16<<20))
	if stall != want {
		t.Fatalf("stall %d, want %d (FIFO)", stall, want)
	}
}

func TestFailedMoveReported(t *testing.T) {
	m := machine.PlatformA().WithDRAMCapacity(1 << 20)
	h := memsys.NewHeap(m, memsys.NewNodeTiers(m), memsys.HeapOptions{})
	o, _ := h.Alloc("big", 64<<20, memsys.AllocOptions{InitialTier: machine.NVM})
	mv := New(h)
	mv.Start()
	defer mv.Stop()

	seq := mv.Enqueue(o.Chunks[0], machine.DRAM, 0)
	if stall := mv.Sync(seq, 0); stall != 0 {
		t.Fatalf("failed move should not stall, got %d", stall)
	}
	st := mv.Stats()
	if st.Failed != 1 || st.Completed != 0 || st.BytesMoved != 0 {
		t.Fatalf("stats %+v", st)
	}
	if h.TierOf(o.Chunks[0]) != machine.NVM {
		t.Fatal("failed move must leave chunk in NVM")
	}
}

func TestSyncZeroIsCheapCheck(t *testing.T) {
	h := testHeap()
	mv := New(h)
	mv.Start()
	defer mv.Stop()
	if stall := mv.Sync(0, 12345); stall != 0 {
		t.Fatalf("empty sync stalled %d", stall)
	}
	if mv.Stats().SyncChecks != 1 {
		t.Fatal("sync check not counted")
	}
}

func TestStopDrains(t *testing.T) {
	h := testHeap()
	mv := New(h)
	mv.Start()
	objs := make([]*memsys.Object, 8)
	for i := range objs {
		objs[i], _ = h.Alloc(string(rune('a'+i)), 4<<20, memsys.AllocOptions{InitialTier: machine.NVM})
		mv.Enqueue(objs[i].Chunks[0], machine.DRAM, 0)
	}
	mv.Stop()
	for i, o := range objs {
		if h.TierOf(o.Chunks[0]) != machine.DRAM {
			t.Fatalf("object %d not migrated before Stop returned", i)
		}
	}
	if mv.Stats().Completed != 8 {
		t.Fatalf("completed %d, want 8", mv.Stats().Completed)
	}
	// Stop is idempotent; Start after Stop is a no-op we don't support,
	// but calling Stop twice must not hang or panic.
	mv.Stop()
}

func TestHelperTimelineAdvances(t *testing.T) {
	h := testHeap()
	a, _ := h.Alloc("a", 8<<20, memsys.AllocOptions{InitialTier: machine.NVM})
	mv := New(h)
	mv.Start()
	defer mv.Stop()

	// Enqueue at t=1e6: copy occupies [1e6, 1e6+copy).
	seq := mv.Enqueue(a.Chunks[0], machine.DRAM, 1e6)
	copyNS := int64(h.Mach.CopyTimeNS(8 << 20))
	if stall := mv.Sync(seq, 1e6); stall != copyNS {
		t.Fatalf("stall %d, want %d", stall, copyNS)
	}
	// A later move starts no earlier than its enqueue time even though the
	// helper is free.
	b, _ := h.Alloc("b", 8<<20, memsys.AllocOptions{InitialTier: machine.NVM})
	now := int64(1e9)
	seq = mv.Enqueue(b.Chunks[0], machine.DRAM, now)
	if stall := mv.Sync(seq, now); stall != copyNS {
		t.Fatalf("late-enqueue stall %d, want %d", stall, copyNS)
	}
}

func TestRoundTrip(t *testing.T) {
	h := testHeap()
	o, _ := h.Alloc("rt", 8<<20, memsys.AllocOptions{InitialTier: machine.NVM})
	mv := New(h)
	mv.Start()
	defer mv.Stop()
	s1 := mv.Enqueue(o.Chunks[0], machine.DRAM, 0)
	s2 := mv.Enqueue(o.Chunks[0], machine.NVM, 0)
	mv.Sync(s2, 1<<62)
	_ = s1
	if h.TierOf(o.Chunks[0]) != machine.NVM {
		t.Fatal("round trip should end in NVM")
	}
	if mv.Stats().Completed != 2 {
		t.Fatalf("completed %d", mv.Stats().Completed)
	}
}

func TestMultiTierMoveUsesEdgeBandwidth(t *testing.T) {
	m := machine.PlatformHBMDDRNVM()
	h := memsys.NewHeap(m, memsys.NewNodeTiers(m), memsys.HeapOptions{})
	o, _ := h.Alloc("a", 32<<20, memsys.AllocOptions{InitialTier: 1})
	mv := New(h)
	mv.Start()
	defer mv.Stop()

	// DDR -> HBM runs on the fast HBM<->DDR edge, not the hierarchy-wide
	// (NVM-limited) copy bandwidth.
	seq := mv.Enqueue(o.Chunks[0], 0, 0)
	stall := mv.Sync(seq, 0)
	want := int64(m.CopyTimeBetweenNS(1, 0, 32<<20))
	if stall != want {
		t.Fatalf("stall %d, want edge copy time %d", stall, want)
	}
	if slow := int64(m.CopyTimeNS(32 << 20)); want >= slow {
		t.Fatalf("edge copy %d should beat slowest-edge copy %d", want, slow)
	}
	if h.TierOf(o.Chunks[0]) != 0 {
		t.Fatal("chunk not promoted")
	}
}
