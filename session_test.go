package unimem_test

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"unimem"
)

// goldenMachines returns the two platforms of the session golden matrix:
// the paper's two-tier machine and the three-tier HBM+DDR+NVM stack.
func goldenMachines() []*unimem.Machine {
	return []*unimem.Machine{
		unimem.PlatformA().WithNVMBandwidthFraction(0.5),
		unimem.PlatformHBMDDRNVM(),
	}
}

// TestSessionLegacyGoldenEquivalence pins the API redesign's core
// contract: every deprecated Run* free function is a thin wrapper over a
// Session, so a fresh explicit Session must produce byte-identical
// Results for the matching Strategy — across CG/SP/MG on both the
// two-tier and the three-tier platform.
func TestSessionLegacyGoldenEquivalence(t *testing.T) {
	ctx := context.Background()
	for _, m := range goldenMachines() {
		sess := unimem.New(m)
		for _, name := range []string{"CG", "SP", "MG"} {
			w := unimem.NewNPB(name, "A", 2)

			type variant struct {
				label    string
				legacy   func() (*unimem.Result, error)
				strategy unimem.Strategy
			}
			variants := []variant{
				{"nvm-only", func() (*unimem.Result, error) { return unimem.RunNVMOnly(w, m) }, unimem.SlowestOnly()},
				{"dram-only", func() (*unimem.Result, error) { return unimem.RunDRAMOnly(w, m) }, unimem.DRAMOnly()},
				{"fast-only", func() (*unimem.Result, error) { return unimem.RunFastestOnly(w, m) }, unimem.FastestOnly()},
				{"xmem", func() (*unimem.Result, error) { return unimem.RunXMem(w, m) }, unimem.XMem()},
				{"unimem", func() (*unimem.Result, error) {
					res, _, err := unimem.Run(w, m, unimem.DefaultConfig())
					return res, err
				}, unimem.Unimem()},
			}
			for _, v := range variants {
				want, err := v.legacy()
				if err != nil {
					t.Fatalf("%s/%s/%s legacy: %v", m.Name, name, v.label, err)
				}
				out, err := sess.Run(ctx, w, v.strategy)
				if err != nil {
					t.Fatalf("%s/%s/%s session: %v", m.Name, name, v.label, err)
				}
				if !reflect.DeepEqual(want, out.Result) {
					t.Errorf("%s/%s/%s: session Result differs from legacy wrapper", m.Name, name, v.label)
				}
			}

			// RunTiered vs Outcome.Tiered: the per-tier annotation must
			// match field for field too.
			wantTR, wantRts, err := unimem.RunTiered(w, m, unimem.DefaultConfig())
			if err != nil {
				t.Fatalf("%s/%s RunTiered: %v", m.Name, name, err)
			}
			out, err := sess.Run(ctx, w, unimem.Unimem())
			if err != nil {
				t.Fatalf("%s/%s session unimem: %v", m.Name, name, err)
			}
			gotTR := out.Tiered()
			if !reflect.DeepEqual(wantTR, gotTR) {
				t.Errorf("%s/%s: Tiered annotation differs from RunTiered", m.Name, name)
			}
			if len(wantRts) != len(out.Runtimes) {
				t.Errorf("%s/%s: runtime counts differ (%d vs %d)", m.Name, name, len(wantRts), len(out.Runtimes))
			}
		}
	}
}

// TestSessionRuntimesRankOrder pins the ordering improvement over the
// legacy collector: outcome runtimes arrive sorted by rank.
func TestSessionRuntimesRankOrder(t *testing.T) {
	m := unimem.PlatformA().WithNVMBandwidthFraction(0.5)
	out, err := unimem.New(m).Run(context.Background(), unimem.NewNPB("CG", "A", 4), unimem.Unimem())
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Runtimes) != 4 {
		t.Fatalf("got %d runtimes, want 4", len(out.Runtimes))
	}
	for i, rt := range out.Runtimes {
		if rt.Rank() != i {
			t.Fatalf("runtime %d has rank %d; want rank order", i, rt.Rank())
		}
	}
}

// sessionJobs is the shared-session batch of the concurrency tests.
func sessionJobs(w *unimem.Workload) []unimem.Job {
	return []unimem.Job{
		{Workload: w, Strategy: unimem.FastestOnly()},
		{Workload: w, Strategy: unimem.SlowestOnly()},
		{Workload: w, Strategy: unimem.XMem()},
		{Workload: w, Strategy: unimem.Unimem()},
	}
}

// times extracts the headline metric per outcome for cross-goroutine
// comparison.
func times(outs []unimem.Outcome) []int64 {
	ts := make([]int64, len(outs))
	for i, o := range outs {
		ts[i] = o.Result.TimeNS
	}
	return ts
}

// TestSessionSharedConcurrently hammers one Session from 8 goroutines,
// half via RunAll and half via Stream, sharing the run cache under -race.
// Every goroutine must observe identical outcomes in deterministic job
// order.
func TestSessionSharedConcurrently(t *testing.T) {
	m := unimem.PlatformA().WithNVMBandwidthFraction(0.5)
	sess := unimem.New(m, unimem.WithWorkers(2), unimem.WithQuick())
	w := unimem.NewNPB("CG", "A", 2)
	jobs := sessionJobs(w)
	ctx := context.Background()

	ref, err := sess.RunAll(ctx, jobs)
	if err != nil {
		t.Fatal(err)
	}
	want := times(ref)

	var wg sync.WaitGroup
	got := make([][]int64, 8)
	errs := make([]error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			if g%2 == 0 {
				outs, err := sess.RunAll(ctx, jobs)
				if err != nil {
					errs[g] = err
					return
				}
				got[g] = times(outs)
				return
			}
			// Record the first failure but keep draining: the bounded-window
			// Stream releases its emitter and pool goroutines only when the
			// channel is drained, and a parked emitter would leak into every
			// later test in the binary.
			for o := range sess.Stream(ctx, jobs) {
				switch {
				case errs[g] != nil:
				case o.Err != nil:
					errs[g] = o.Err
				case o.Index != len(got[g]):
					errs[g] = errors.New("stream emitted outcomes out of job order")
				default:
					got[g] = append(got[g], o.Result.TimeNS)
				}
			}
		}(g)
	}
	wg.Wait()
	for g := 0; g < 8; g++ {
		if errs[g] != nil {
			t.Fatalf("goroutine %d: %v", g, errs[g])
		}
		if !reflect.DeepEqual(got[g], want) {
			t.Errorf("goroutine %d observed %v, want %v (deterministic outcome order)", g, got[g], want)
		}
	}
}

// TestSessionStreamOrder pins Stream's ordering contract on a batch whose
// jobs finish at very different speeds: outcome i is always delivered
// before outcome i+1.
func TestSessionStreamOrder(t *testing.T) {
	m := unimem.PlatformA().WithNVMBandwidthFraction(0.5)
	sess := unimem.New(m, unimem.WithWorkers(4), unimem.WithQuick())
	var jobs []unimem.Job
	for _, name := range []string{"MG", "CG", "SP", "CG", "MG", "CG"} {
		jobs = append(jobs, unimem.Job{Workload: unimem.NewNPB(name, "A", 2), Strategy: unimem.SlowestOnly()})
	}
	seen := 0
	for o := range sess.Stream(context.Background(), jobs) {
		if o.Err != nil {
			t.Fatalf("job %d: %v", o.Index, o.Err)
		}
		if o.Index != seen {
			t.Fatalf("outcome %d delivered at position %d", o.Index, seen)
		}
		seen++
	}
	if seen != len(jobs) {
		t.Fatalf("stream delivered %d outcomes, want %d", seen, len(jobs))
	}
}

// TestSessionRunAllCancelledUpfront: a dead context yields one outcome
// per job, each carrying the context error, without executing anything.
func TestSessionRunAllCancelledUpfront(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sess := unimem.New(unimem.PlatformA(), unimem.WithQuick())
	jobs := sessionJobs(unimem.NewNPB("CG", "A", 2))
	outs, err := sess.RunAll(ctx, jobs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(outs) != len(jobs) {
		t.Fatalf("got %d outcomes, want %d", len(outs), len(jobs))
	}
	for i, o := range outs {
		if !errors.Is(o.Err, context.Canceled) {
			t.Errorf("outcome %d: Err = %v, want context.Canceled", i, o.Err)
		}
		if o.Index != i {
			t.Errorf("outcome %d carries index %d", i, o.Index)
		}
	}
}

// TestSessionStreamCancelMidFleet cancels the context after the first
// outcome of a long fleet: the in-flight simulated worlds must abort, the
// remaining outcomes must carry the context error, and the channel must
// close promptly.
func TestSessionStreamCancelMidFleet(t *testing.T) {
	m := unimem.PlatformA().WithNVMBandwidthFraction(0.5)
	sess := unimem.New(m, unimem.WithWorkers(2))
	// Job 0 finishes fast and triggers the cancel; the rest are
	// full-length Unimem runs (no Quick capping) that only a mid-run
	// world abort can stop before the test deadline.
	slow := unimem.NewNPB("CG", "C", 4)
	cp := *slow
	cp.Iterations = 4000
	jobs := []unimem.Job{{Workload: unimem.NewNPB("CG", "A", 2), Strategy: unimem.SlowestOnly()}}
	for i := 0; i < 7; i++ {
		jobs = append(jobs, unimem.Job{Workload: &cp, Strategy: unimem.Unimem()})
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	start := time.Now()
	var outs []unimem.Outcome
	for o := range sess.Stream(ctx, jobs) {
		outs = append(outs, o)
		if len(outs) == 1 {
			cancel()
		}
	}
	elapsed := time.Since(start)
	if len(outs) > len(jobs) {
		t.Fatalf("stream delivered %d outcomes for %d jobs", len(outs), len(jobs))
	}
	cancelled := 0
	for _, o := range outs {
		if errors.Is(o.Err, context.Canceled) {
			cancelled++
		}
	}
	if cancelled == 0 {
		t.Error("no outcome observed the cancellation; fleet did not stop mid-flight")
	}
	// Promptness: 8 x 4000-iteration Unimem runs on 2 workers take minutes
	// uncancelled; the aborted fleet must come back well under that.
	if elapsed > 90*time.Second {
		t.Errorf("cancelled fleet took %v; worlds did not abort promptly", elapsed)
	}
}

// TestSessionCalibrationMemoized: the session measures its platform once;
// the value matches the package-level Calibrate path used by the lazy
// runtime (same seed derivation), so pre-installing it keeps legacy
// results byte-identical.
func TestSessionCalibrationMemoized(t *testing.T) {
	m := unimem.PlatformA().WithNVMLatencyFactor(4)
	sess := unimem.New(m)
	c1 := sess.Calibration()
	c2 := sess.Calibration()
	if c1 != c2 {
		t.Error("repeated Calibration calls disagree; memoization broken")
	}
	if c1 == (unimem.Calibration{}) {
		t.Error("calibration is zero")
	}
}

// TestSessionCacheStats: baseline runs memoize inside one session; a
// repeated baseline is served from cache while Unimem runs stay fresh.
func TestSessionCacheStats(t *testing.T) {
	sess := unimem.New(unimem.PlatformA().WithNVMBandwidthFraction(0.5), unimem.WithQuick())
	w := unimem.NewNPB("CG", "A", 2)
	ctx := context.Background()
	if _, err := sess.Run(ctx, w, unimem.SlowestOnly()); err != nil {
		t.Fatal(err)
	}
	first := sess.CacheStats()
	if first.Misses == 0 {
		t.Fatal("first baseline did not execute")
	}
	if _, err := sess.Run(ctx, w, unimem.SlowestOnly()); err != nil {
		t.Fatal(err)
	}
	second := sess.CacheStats()
	if second.Misses != first.Misses {
		t.Error("repeated baseline re-executed instead of hitting the cache")
	}
	if second.Hits <= first.Hits {
		t.Error("repeated baseline recorded no cache hit")
	}
}

// TestSessionNilWorkloadJob: batch APIs stay total on malformed jobs.
func TestSessionNilWorkloadJob(t *testing.T) {
	sess := unimem.New(unimem.PlatformA(), unimem.WithQuick())
	outs, err := sess.RunAll(context.Background(), []unimem.Job{{Strategy: unimem.SlowestOnly()}})
	if err == nil || outs[0].Err == nil {
		t.Fatal("nil-workload job did not error")
	}
}

// TestSessionStaticFuncNamespace: a user StaticFunc reusing a built-in
// baseline name must not collide with that baseline's cache entry — the
// two policies place data oppositely here, so their times must differ.
func TestSessionStaticFuncNamespace(t *testing.T) {
	sess := unimem.New(unimem.PlatformA().WithNVMBandwidthFraction(0.5).WithDRAMCapacity(1<<30), unimem.WithQuick())
	w := unimem.NewNPB("CG", "A", 2)
	ctx := context.Background()
	slow, err := sess.Run(ctx, w, unimem.SlowestOnly())
	if err != nil {
		t.Fatal(err)
	}
	pinned, err := sess.Run(ctx, w, unimem.StaticFunc("nvm-only", func(string) bool { return true }))
	if err != nil {
		t.Fatal(err)
	}
	if pinned.Result.TimeNS >= slow.Result.TimeNS {
		t.Fatalf("pin-everything-fastest (%d) not faster than slowest-only (%d); cache key collision?",
			pinned.Result.TimeNS, slow.Result.TimeNS)
	}
}

// TestSessionTieredNilForBaselines: Tiered annotates Unimem outcomes
// only; baseline outcomes (no runtimes, possibly a derived twin machine)
// return nil instead of fabricated all-zero residency.
func TestSessionTieredNilForBaselines(t *testing.T) {
	sess := unimem.New(unimem.PlatformHBMDDRNVM(), unimem.WithQuick())
	out, err := sess.Run(context.Background(), unimem.NewNPB("CG", "A", 2), unimem.FastestOnly())
	if err != nil {
		t.Fatal(err)
	}
	if out.Tiered() != nil {
		t.Fatal("baseline outcome produced a Tiered annotation")
	}
}

// TestSessionZeroStrategy: the zero Strategy value is rejected, not run.
func TestSessionZeroStrategy(t *testing.T) {
	sess := unimem.New(unimem.PlatformA(), unimem.WithQuick())
	var zero unimem.Strategy
	if _, err := sess.Run(context.Background(), unimem.NewNPB("CG", "A", 2), zero); err == nil {
		t.Fatal("zero strategy did not error")
	}
}

// TestSessionStreamWindowBoundsRunAhead pins Stream's bounded-window
// conversion: with window W and no consumption, the pool may compute at
// most W outcomes plus the one the emitter has picked up — it must not
// buffer the whole batch. Each job is a distinct StaticFunc policy, so
// executed jobs are observable as cache misses.
func TestSessionStreamWindowBoundsRunAhead(t *testing.T) {
	const window = 2
	m := unimem.PlatformA().WithNVMBandwidthFraction(0.5)
	sess := unimem.New(m, unimem.WithWorkers(1), unimem.WithQuick(), unimem.WithStreamWindow(window))
	w := unimem.NewNPB("CG", "A", 2)
	var jobs []unimem.Job
	for i := 0; i < 8; i++ {
		name := "window-probe-" + string(rune('a'+i))
		jobs = append(jobs, unimem.Job{Workload: w, Strategy: unimem.StaticFunc(name, nil)})
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	out := sess.Stream(ctx, jobs)

	// Without consuming, the pool can run jobs 0..window-1, and one more
	// once the emitter lifts outcome 0 out of the ring: window+1 total.
	deadline := time.Now().Add(30 * time.Second)
	for sess.CacheStats().Misses < window+1 {
		if time.Now().After(deadline) {
			t.Fatalf("pool computed only %d jobs; stream stalled", sess.CacheStats().Misses)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The gate is deterministic from here: job window+1 cannot start until
	// the consumer receives an outcome. Hold off and re-check.
	time.Sleep(200 * time.Millisecond)
	if got := sess.CacheStats().Misses; got != window+1 {
		t.Fatalf("pool ran %d jobs ahead of an idle consumer, want %d (window %d + emitter slot)",
			got, window+1, window)
	}

	// Draining delivers every outcome in job order and runs the rest.
	seen := 0
	for o := range out {
		if o.Err != nil {
			t.Fatalf("job %d: %v", o.Index, o.Err)
		}
		if o.Index != seen {
			t.Fatalf("outcome %d delivered at position %d", o.Index, seen)
		}
		seen++
	}
	if seen != len(jobs) {
		t.Fatalf("stream delivered %d outcomes, want %d", seen, len(jobs))
	}
	if got := sess.CacheStats().Misses; got != int64(len(jobs)) {
		t.Fatalf("ran %d jobs total, want %d", got, len(jobs))
	}
}

// TestSessionNegativeRanksJob: a negative world size is a malformed job
// that must come back as an outcome error, not a simulator panic.
func TestSessionNegativeRanksJob(t *testing.T) {
	sess := unimem.New(unimem.PlatformA(), unimem.WithQuick())
	_, err := sess.RunJob(context.Background(), unimem.Job{
		Workload: unimem.NewNPB("CG", "A", 2),
		Strategy: unimem.SlowestOnly(),
		Options:  unimem.Options{Ranks: -1},
	})
	if err == nil || !strings.Contains(err.Error(), "Ranks") {
		t.Fatalf("negative-ranks job: err = %v, want a Ranks validation error", err)
	}
}
