package unimem_test

import (
	"fmt"

	"unimem"
)

// Example demonstrates the library's end-to-end flow: describe an
// iterative application, run it on an NVM-based heterogeneous memory
// system under the Unimem runtime, and compare against the DRAM-only and
// NVM-only configurations. Results are deterministic per seed.
func Example() {
	// A platform whose NVM delivers half of DRAM's bandwidth, with a
	// 128 MiB DRAM tier.
	m := unimem.PlatformA().
		WithNVMBandwidthFraction(0.5).
		WithDRAMCapacity(128 << 20)

	// Two 96 MiB objects: only one fits in DRAM. The streamed field is
	// the profitable one; the checkpoint is touched once per iteration.
	app := unimem.NewApp("example", 2, 25)
	app.Object("field", 96<<20, unimem.WithHint(2e6))
	app.Object("checkpoint", 96<<20)
	app.ComputePhase("sweep", 25e6, unimem.Stream("field", 2e6, 0.5))
	app.ComputePhase("snapshot", 2e6, unimem.Stream("checkpoint", 4e4, 1))
	app.CommPhase("residual", unimem.Allreduce, 64, 1e6)
	w := app.Build()

	cfg := unimem.DefaultConfig()
	cfg.Calibration = unimem.Calibrate(m)

	dram, _ := unimem.RunDRAMOnly(w, m)
	nvm, _ := unimem.RunNVMOnly(w, m)
	uni, rts, _ := unimem.Run(w, m, cfg)

	fmt.Printf("nvm-only is %.1fx of dram-only\n",
		float64(nvm.TimeNS)/float64(dram.TimeNS))
	fmt.Printf("unimem   is %.1fx of dram-only\n",
		float64(uni.TimeNS)/float64(dram.TimeNS))
	fmt.Printf("placement: %v\n", rts[0].DRAMResidents())
	// Output:
	// nvm-only is 1.6x of dram-only
	// unimem   is 1.0x of dram-only
	// placement: [field]
}
