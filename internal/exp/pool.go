package exp

import (
	"context"
	"sync"
)

// forEachRow executes fn(i) for every index in [0, n), fanning the calls
// across at most workers goroutines. It is the experiment engine's cell
// scheduler: every figure/table runner computes its independent rows (or
// cells) through it, writing each result into a preallocated slot so the
// assembled table has the same deterministic row order regardless of
// worker count.
//
// With workers <= 1 the calls run serially on the calling goroutine and
// the first error aborts the remaining indices. With workers > 1 all
// indices run and the first error in index order is returned, so the
// reported failure is the same one a serial run would have surfaced.
//
// The context bounds the whole fan-out: once it is done no further cells
// are dispatched, undispatched cells are recorded as cancelled, and the
// context's error is returned unless an earlier index already failed —
// again matching what a serial run would report.
func forEachRow(ctx context.Context, workers, n int, fn func(i int) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if n <= 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if err := ctx.Err(); err != nil {
					errs[i] = err
					continue
				}
				errs[i] = fn(i)
			}
		}()
	}
feed:
	for i := 0; i < n; i++ {
		select {
		case idx <- i:
		case <-ctx.Done():
			// Mark every cell that will never be dispatched (no worker can
			// touch indices the feeder has not sent).
			for j := i; j < n; j++ {
				errs[j] = ctx.Err()
			}
			break feed
		}
	}
	close(idx)
	wg.Wait()
	// Every skipped cell carries the context error in its slot (set by the
	// feeder or by the worker that drew it), so an all-nil scan means every
	// cell genuinely ran and succeeded — return nil then even if the
	// context died after the last dispatch, matching the serial path.
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
