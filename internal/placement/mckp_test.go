package placement

import (
	"fmt"
	"math"
	"testing"

	"unimem/internal/xrand"
)

// bruteForceTiered enumerates every tier assignment of the items and
// returns the best feasible total weight. Exponential — test-only, small
// instances.
func bruteForceTiered(items []TieredItem, capacities []int64) float64 {
	nTiers := len(capacities)
	best := math.Inf(-1)
	assign := make([]int, len(items))
	var rec func(i int)
	rec = func(i int) {
		if i == len(items) {
			used := make([]int64, nTiers)
			var w float64
			for j, it := range items {
				used[assign[j]] += it.Size
				w += it.WeightNS[assign[j]]
			}
			for t, c := range capacities {
				if c >= 0 && used[t] > c {
					return
				}
			}
			if w > best {
				best = w
			}
			return
		}
		for t := 0; t < nTiers; t++ {
			assign[i] = t
			rec(i + 1)
		}
	}
	rec(0)
	return best
}

// checkFeasible verifies the plan assigns every item exactly one valid tier
// and respects every constrained capacity.
func checkFeasible(t *testing.T, items []TieredItem, capacities []int64, plan *TieredPlan) float64 {
	t.Helper()
	if len(plan.Assign) != len(items) {
		t.Fatalf("assigned %d of %d items", len(plan.Assign), len(items))
	}
	used := make([]int64, len(capacities))
	var w float64
	for _, it := range items {
		tier, ok := plan.Assign[it.Chunk]
		if !ok {
			t.Fatalf("item %s unassigned", it.Chunk)
		}
		if tier < 0 || tier >= len(capacities) {
			t.Fatalf("item %s assigned to invalid tier %d", it.Chunk, tier)
		}
		used[tier] += it.Size
		w += it.WeightNS[tier]
	}
	for tr, c := range capacities {
		if c >= 0 && used[tr] > c {
			t.Fatalf("tier %d over capacity: %d > %d (solver %s)", tr, used[tr], c, plan.Solver)
		}
	}
	if math.Abs(w-plan.TotalWeightNS) > 1e-6*(1+math.Abs(w)) {
		t.Fatalf("reported weight %v != recomputed %v", plan.TotalWeightNS, w)
	}
	return w
}

// randomInstance builds a small random MCKP instance with granule-aligned
// sizes (so the DP's quantization is exact and brute force is comparable).
func randomInstance(rng *xrand.RNG, maxItems, nTiers int) ([]TieredItem, []int64) {
	n := 1 + int(rng.Uint64()%uint64(maxItems))
	items := make([]TieredItem, n)
	for i := range items {
		w := make([]float64, nTiers)
		for t := range w {
			// Weights may be negative (a tier can be a bad fit).
			w[t] = float64(int64(rng.Uint64()%2000)) - 500
		}
		items[i] = TieredItem{
			Chunk:    fmt.Sprintf("c%d", i),
			Size:     int64(1+rng.Uint64()%6) * mckpGranularity,
			WeightNS: w,
		}
	}
	capacities := make([]int64, nTiers)
	for t := 0; t < nTiers-1; t++ {
		capacities[t] = int64(rng.Uint64()%10) * mckpGranularity
	}
	capacities[nTiers-1] = -1 // slowest tier unconstrained
	return items, capacities
}

// TestSolveTieredMatchesBruteForce is the solver's correctness property:
// on random small instances with 1 or 2 constrained tiers the DP must find
// exactly the brute-force optimum, and the assignment must be feasible.
func TestSolveTieredMatchesBruteForce(t *testing.T) {
	rng := xrand.New(0x4C4B)
	for _, nTiers := range []int{2, 3} {
		for trial := 0; trial < 300; trial++ {
			items, capacities := randomInstance(rng, 7, nTiers)
			plan := SolveTiered(items, capacities)
			if plan.Solver != "dp" {
				t.Fatalf("small instance used solver %q, want dp", plan.Solver)
			}
			got := checkFeasible(t, items, capacities, plan)
			want := bruteForceTiered(items, capacities)
			if math.Abs(got-want) > 1e-6*(1+math.Abs(want)) {
				t.Fatalf("tiers=%d trial=%d: solver weight %v, brute force %v\nitems=%+v caps=%v",
					nTiers, trial, got, want, items, capacities)
			}
		}
	}
}

// TestSolveTieredGreedyNeverExceedsCapacity drives the greedy fallback
// (many constrained tiers / big instances) and checks feasibility plus a
// sanity bound: greedy is never better than brute force on small instances.
func TestSolveTieredGreedyNeverExceedsCapacity(t *testing.T) {
	rng := xrand.New(0x6EEED)
	for trial := 0; trial < 200; trial++ {
		// 4 tiers -> 3 constrained dims -> greedy path.
		items, capacities := randomInstance(rng, 6, 4)
		plan := SolveTiered(items, capacities)
		if plan.Solver != "greedy" {
			t.Fatalf("3 constrained tiers used solver %q, want greedy", plan.Solver)
		}
		got := checkFeasible(t, items, capacities, plan)
		if want := bruteForceTiered(items, capacities); got > want+1e-6 {
			t.Fatalf("greedy weight %v beats brute-force optimum %v", got, want)
		}
	}
}

// TestSolveTieredDegenerate covers the no-item, no-constraint and
// oversized-item edges.
func TestSolveTieredDegenerate(t *testing.T) {
	if p := SolveTiered(nil, []int64{-1}); len(p.Assign) != 0 || p.TotalWeightNS != 0 {
		t.Fatalf("empty instance: %+v", p)
	}
	// No constrained tier: argmax per item.
	items := []TieredItem{{Chunk: "a", Size: mckpGranularity, WeightNS: []float64{3, 7}}}
	p := SolveTiered(items, []int64{-1, -1})
	if p.Solver != "argmax" || p.Assign["a"] != 1 {
		t.Fatalf("argmax plan %+v", p)
	}
	// Item bigger than the constrained tier must fall to the slow tier.
	items = []TieredItem{{Chunk: "big", Size: 100 * mckpGranularity, WeightNS: []float64{1e9, 0}}}
	p = SolveTiered(items, []int64{10 * mckpGranularity, -1})
	if p.Assign["big"] != 1 {
		t.Fatalf("oversized item assigned to tier %d", p.Assign["big"])
	}
}

// TestSolveTieredDeterministic re-solves the same instance and demands an
// identical assignment (the experiment engine's golden outputs depend on
// it).
func TestSolveTieredDeterministic(t *testing.T) {
	rng := xrand.New(0xDE7)
	items, capacities := randomInstance(rng, 12, 3)
	a := SolveTiered(items, capacities)
	for i := 0; i < 5; i++ {
		b := SolveTiered(items, capacities)
		if a.TotalWeightNS != b.TotalWeightNS || a.Solver != b.Solver {
			t.Fatal("non-deterministic solve")
		}
		for k, v := range a.Assign {
			if b.Assign[k] != v {
				t.Fatalf("assignment of %s differs across solves", k)
			}
		}
	}
}

// FuzzSolveTiered feeds arbitrary seeds through the random-instance
// generator; every instance must be feasible, and DP instances must match
// brute force.
func FuzzSolveTiered(f *testing.F) {
	f.Add(uint64(1), uint8(3))
	f.Add(uint64(42), uint8(2))
	f.Add(uint64(0xDEAD), uint8(4))
	f.Fuzz(func(t *testing.T, seed uint64, tiers uint8) {
		nTiers := 2 + int(tiers%3) // 2..4 tiers
		rng := xrand.New(seed)
		items, capacities := randomInstance(rng, 6, nTiers)
		plan := SolveTiered(items, capacities)
		got := checkFeasible(t, items, capacities, plan)
		want := bruteForceTiered(items, capacities)
		if plan.Solver == "dp" && math.Abs(got-want) > 1e-6*(1+math.Abs(want)) {
			t.Fatalf("dp weight %v != brute force %v", got, want)
		}
		if got > want+1e-6 {
			t.Fatalf("infeasibly good weight %v > optimum %v", got, want)
		}
	})
}
