package exp

import "sync"

// forEachRow executes fn(i) for every index in [0, n), fanning the calls
// across at most workers goroutines. It is the experiment engine's cell
// scheduler: every figure/table runner computes its independent rows (or
// cells) through it, writing each result into a preallocated slot so the
// assembled table has the same deterministic row order regardless of
// worker count.
//
// With workers <= 1 the calls run serially on the calling goroutine and
// the first error aborts the remaining indices. With workers > 1 all
// indices run and the first error in index order is returned, so the
// reported failure is the same one a serial run would have surfaced.
func forEachRow(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				errs[i] = fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
