// Scenario: drive the declarative workload layer end to end — generate a
// synthetic drifting scenario, save it as a JSON spec, load it back (the
// file round trip is exact), and compare static hint-density placement
// against the Unimem runtime on it. The drift is what separates them: the
// hot object changes mid-run, the static placement goes stale, and the
// runtime's variation monitor re-profiles and migrates.
//
//	go run ./examples/scenario
//	go run ./examples/scenario -archetype hot-rotation -seed 9
//	go run ./examples/scenario -spec my-workload.json
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"unimem"
)

func main() {
	var (
		arch = flag.String("archetype", "pattern-drift", "scenario archetype to generate")
		seed = flag.Uint64("seed", 3, "generator seed")
		spec = flag.String("spec", "", "run this spec file instead of generating one")
		keep = flag.String("save", "", "also save the generated spec to this path")
	)
	flag.Parse()

	path := *spec
	if path == "" {
		// Generate a scenario and write it through the file format, so the
		// run below exercises the exact same path a hand-written spec takes.
		s, err := unimem.GenerateScenario(unimem.ScenarioArchetype(*arch), *seed)
		must(err)
		f, err := os.CreateTemp("", s.Name+"-*.json")
		must(err)
		must(f.Close())
		path = f.Name()
		defer os.Remove(path)
		must(s.Save(path))
		fmt.Printf("generated %s (digest %s)\n", s.Name, s.Digest())
		if *keep != "" {
			must(s.Save(*keep))
			fmt.Printf("spec saved to %s\n", *keep)
		}
	}

	w, err := unimem.LoadWorkload(path)
	must(err)
	fmt.Printf("loaded %s: %d objects, %d phases, %d iterations, %d MiB of target data\n\n",
		path, len(w.Objects), len(w.Phases), w.Iterations, w.TotalObjectBytes()>>20)

	// The paper's two-tier machine at its harshest NVM point. One session
	// runs all four strategies as a batch across its worker pool; the
	// outcomes come back in job order.
	m := unimem.PlatformA().WithNVMLatencyFactor(4)
	sess := unimem.New(m)
	outs, err := sess.RunAll(context.Background(), []unimem.Job{
		{Workload: w, Strategy: unimem.FastestOnly()},
		{Workload: w, Strategy: unimem.SlowestOnly()},
		{Workload: w, Strategy: unimem.XMem()},
		{Workload: w, Strategy: unimem.Unimem()},
	})
	must(err)
	fast, slow, xm, uni := outs[0].Result, outs[1].Result, outs[2].Result, outs[3].Result

	norm := func(t int64) float64 { return float64(t) / float64(fast.TimeNS) }
	fmt.Printf("%-12s %10s  %s\n", "config", "time", "vs DRAM-only")
	fmt.Printf("%-12s %8.1fms  %.2fx\n", "dram-only", float64(fast.TimeNS)/1e6, 1.0)
	fmt.Printf("%-12s %8.1fms  %.2fx\n", "nvm-only", float64(slow.TimeNS)/1e6, norm(slow.TimeNS))
	fmt.Printf("%-12s %8.1fms  %.2fx  (one-shot offline profile)\n", "x-mem", float64(xm.TimeNS)/1e6, norm(xm.TimeNS))
	fmt.Printf("%-12s %8.1fms  %.2fx\n\n", "unimem", float64(uni.TimeNS)/1e6, norm(uni.TimeNS))

	rt := outs[3].Runtimes[0] // rank order: index 0 is rank 0
	fmt.Printf("rank 0: %d decisions", rt.Decisions)
	if len(rt.ReprofileIters) > 0 {
		fmt.Printf(", re-profiled at iterations %v (the drift, detected)", rt.ReprofileIters)
	}
	fmt.Printf("\nrank 0 final DRAM residents: %v\n", rt.DRAMResidents())
	fmt.Printf("migrations: %d (%d MiB moved)\n",
		uni.TotalMigrations(), uni.TotalBytesMigrated()>>20)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
