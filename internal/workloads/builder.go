package workloads

import (
	"fmt"

	"unimem/internal/machine"
	"unimem/internal/phase"
)

// llcBytes is the assumed per-rank last-level-cache capacity used to
// attenuate post-cache traffic: the smaller an object relative to the LLC,
// the larger the fraction of its references that hit cache. Validated
// against the cachesim package in tests.
const llcBytes = 20 << 20

// atten returns the fraction of references to an object of the given size
// that reach main memory: near 1 for objects far larger than the LLC,
// floored at 5% (compulsory/conflict misses) for cache-resident objects.
// This is the "caching effects" dependence on problem size and scale that
// the paper's strong-scaling study calls out.
func atten(size int64) float64 {
	if size <= 0 {
		return 0
	}
	f := float64(size-llcBytes) / float64(size)
	if f < 0.05 {
		return 0.05
	}
	return f
}

// builder assembles a Workload with class- and scale-aware sizing.
type builder struct {
	w *Workload
	// scale multiplies sizes and reference counts: classScale x (4/ranks),
	// so Class C at the paper's 4-rank baseline is scale 1 and strong
	// scaling shrinks per-rank footprints.
	scale float64
}

// classScale maps an NPB class letter to a size multiplier relative to
// Class C.
func classScale(class string) float64 {
	switch class {
	case "A":
		return 0.25
	case "B":
		return 0.5
	case "C":
		return 1
	case "D":
		return 3
	default:
		panic(fmt.Sprintf("workloads: unknown class %q", class))
	}
}

func newBench(name, class string, ranks, iters int, footprintFrac float64) *builder {
	if ranks <= 0 {
		ranks = 4
	}
	return &builder{
		w: &Workload{
			Name:          name,
			Class:         class,
			Ranks:         ranks,
			Iterations:    iters,
			FootprintFrac: footprintFrac,
		},
		scale: classScale(class) * 4.0 / float64(ranks),
	}
}

// obj registers a target object sized mb MiB at the baseline scale.
func (b *builder) obj(name string, mb float64, partitionable bool) {
	b.w.Objects = append(b.w.Objects, ObjectSpec{
		Name:          name,
		Size:          MiB(mb * b.scale),
		Partitionable: partitionable,
	})
}

func (b *builder) size(name string) int64 {
	o := b.w.Object(name)
	if o == nil {
		panic(fmt.Sprintf("workloads: %s: ref to unknown object %q", b.w.Name, name))
	}
	return o.Size
}

// rs is a streaming sweep: passes full passes over the object, post-cache
// traffic attenuated by object size.
func (b *builder) rs(name string, passes, writeFrac float64) phase.Ref {
	size := b.size(name)
	acc := int64(float64(size/machine.CacheLineBytes) * passes * atten(size))
	return ref(name, acc, writeFrac, machine.Stream)
}

// rsFull is a streaming sweep with no cache attenuation: communication
// buffers are packed with fresh data every time and never enjoy reuse.
func (b *builder) rsFull(name string, passes, writeFrac float64) phase.Ref {
	size := b.size(name)
	acc := int64(float64(size/machine.CacheLineBytes) * passes)
	return ref(name, acc, writeFrac, machine.Stream)
}

// rt is a stencil sweep (near-neighbour, high but not perfect MLP).
func (b *builder) rt(name string, passes, writeFrac float64) phase.Ref {
	size := b.size(name)
	acc := int64(float64(size/machine.CacheLineBytes) * passes * atten(size))
	return ref(name, acc, writeFrac, machine.Stencil)
}

// rr is irregular random access: megaRefs million references (at baseline
// scale) with cache attenuation by object size.
func (b *builder) rr(name string, megaRefs, writeFrac float64) phase.Ref {
	size := b.size(name)
	acc := int64(megaRefs * 1e6 * b.scale * atten(size))
	return ref(name, acc, writeFrac, machine.Random)
}

// rp is dependent pointer-chasing access.
func (b *builder) rp(name string, megaRefs, writeFrac float64) phase.Ref {
	size := b.size(name)
	acc := int64(megaRefs * 1e6 * b.scale * atten(size))
	return ref(name, acc, writeFrac, machine.PointerChase)
}

func ref(name string, acc int64, writeFrac float64, p machine.Pattern) phase.Ref {
	if acc < 1 {
		acc = 1
	}
	return phase.Ref{Object: name, Accesses: acc, ReadFrac: 1 - writeFrac, Pattern: p}
}

// phase appends an iteration-invariant phase. commKB is the per-rank (or
// per-pair, for all-to-all) message size in KiB at baseline scale; flopsM
// the per-rank compute in millions of flops at baseline scale.
func (b *builder) phase(name string, comm CommKind, commKB, flopsM float64, refs ...phase.Ref) {
	b.phaseFn(name, comm, commKB, flopsM, staticRefs(refs))
}

// phaseFn appends a phase whose traffic may vary with the iteration.
func (b *builder) phaseFn(name string, comm CommKind, commKB, flopsM float64, fn func(iter int) []phase.Ref) {
	kind := phase.Compute
	if comm != CommNone {
		kind = phase.Comm
	}
	b.w.Phases = append(b.w.Phases, Phase{
		Name:      name,
		Kind:      kind,
		Comm:      comm,
		CommBytes: int64(commKB * 1024 * b.scale),
		Flops:     flopsM * 1e6 * b.scale,
		Refs:      fn,
	})
}

// finish computes the static reference-count hints (what the paper's
// compiler analysis derives before the main loop) for every object except
// those named in noHint — objects whose reference counts depend on
// information unavailable before the loop (e.g. convergence-dependent
// iteration counts). It then returns the workload.
func (b *builder) finish(noHint ...string) *Workload {
	skip := make(map[string]bool, len(noHint))
	for _, n := range noHint {
		skip[n] = true
	}
	hints := make(map[string]float64)
	for _, ph := range b.w.Phases {
		for _, r := range ph.Refs(0) {
			hints[r.Object] += float64(r.Accesses)
		}
	}
	for i := range b.w.Objects {
		if !skip[b.w.Objects[i].Name] {
			b.w.Objects[i].RefHint = hints[b.w.Objects[i].Name]
		}
	}
	return b.w
}
