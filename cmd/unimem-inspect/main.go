// Command unimem-inspect runs one benchmark under the Unimem runtime and
// dumps the runtime's internals: the calibration, the candidate plans with
// their predicted iteration times, the winning strategy's desired DRAM
// sets and migration schedule (or, on multi-tier platforms, the
// multiple-choice-knapsack tier assignment), per-tier residency, and the
// per-rank migration/overlap statistics — the observability companion to
// cmd/unimem-bench.
//
// Usage:
//
//	unimem-inspect -workload SP -nvm lat4
//	unimem-inspect -workload Nek5000 -nvm halfbw -ranks 4
//	unimem-inspect -workload CG -platform hbm-ddr-nvm
//	unimem-inspect -workload MG -platform knl
//	unimem-inspect -scenario drift.json -nvm lat4
//	unimem-inspect -gen hot-rotation -seed 7
//	unimem-inspect -workload CG -trace out.json   (Chrome trace of the run)
//	unimem-inspect -workload CG -explain          (decision-attribution report)
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"

	"unimem"
)

func main() {
	var (
		name     = flag.String("workload", "CG", "CG|FT|BT|LU|SP|MG|Nek5000")
		scen     = flag.String("scenario", "", "load the workload from a declarative spec file (overrides -workload)")
		genArch  = flag.String("gen", "", "generate a synthetic scenario of this archetype (overrides -workload; see unimem.ScenarioArchetypes)")
		genSeed  = flag.Uint64("seed", 1, "scenario-generator seed for -gen")
		class    = flag.String("class", "C", "NPB class")
		ranks    = flag.Int("ranks", 4, "world size")
		nvm      = flag.String("nvm", "halfbw", "NVM config for -platform a: halfbw|quarterbw|lat2|lat4|edison")
		platform = flag.String("platform", "a", "platform: a (paper two-tier)|knl|cxl|hbm-ddr-nvm")
		dram     = flag.Int64("dram-mb", 0, "fastest-tier capacity in MiB (0: platform default; two-tier default 256)")
		traceOut = flag.String("trace", "", "write the Unimem run's span timeline as Chrome trace-event JSON to this file (open in chrome://tracing)")
		explain  = flag.Bool("explain", false, "print the Unimem run's decision-attribution report: per-phase cost terms, alternatives, migrations, regret")
	)
	flag.Parse()

	nvmSet, ranksSet, classSet := false, false, false
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "nvm":
			nvmSet = true
		case "ranks":
			ranksSet = true
		case "class":
			classSet = true
		}
	})
	if nvmSet && *platform != "a" {
		fmt.Fprintf(os.Stderr, "-nvm only applies to -platform a; platform %q has fixed tiers\n", *platform)
		os.Exit(2)
	}

	var m *unimem.Machine
	switch *platform {
	case "a":
		switch *nvm {
		case "halfbw":
			m = unimem.PlatformA().WithNVMBandwidthFraction(0.5)
		case "quarterbw":
			m = unimem.PlatformA().WithNVMBandwidthFraction(0.25)
		case "lat2":
			m = unimem.PlatformA().WithNVMLatencyFactor(2)
		case "lat4":
			m = unimem.PlatformA().WithNVMLatencyFactor(4)
		case "edison":
			m = unimem.Edison()
		default:
			fmt.Fprintf(os.Stderr, "unknown NVM config %q\n", *nvm)
			os.Exit(2)
		}
		if *dram == 0 {
			*dram = 256
		}
	case "knl":
		m = unimem.PlatformKNL()
	case "cxl":
		m = unimem.PlatformCXL()
	case "hbm-ddr-nvm":
		m = unimem.PlatformHBMDDRNVM()
	default:
		fmt.Fprintf(os.Stderr, "unknown platform %q\n", *platform)
		os.Exit(2)
	}
	if *dram > 0 {
		m = m.WithDRAMCapacity(*dram << 20)
	}

	var w *unimem.Workload
	var err error
	switch {
	case *scen != "":
		w, err = unimem.LoadWorkload(*scen)
		check(err)
		fmt.Printf("scenario %s (%d objects, %d phases, %d iterations)\n\n",
			*scen, len(w.Objects), len(w.Phases), w.Iterations)
	case *genArch != "":
		spec, err := unimem.GenerateScenario(unimem.ScenarioArchetype(*genArch), *genSeed)
		check(err)
		w, err = spec.Compile()
		check(err)
		fmt.Printf("generated %s (seed %d, digest %s)\n\n", spec.Name, *genSeed, spec.Digest())
	case *name == "Nek5000":
		w = unimem.NewNek5000(*class, *ranks)
	default:
		w = unimem.NewNPB(*name, *class, *ranks)
	}
	if *scen != "" || *genArch != "" {
		// Spec workloads bake in their own world size; an explicit -ranks
		// overrides it (like the fleet experiment's -ranks does), and
		// -class has no meaning for specs.
		if ranksSet {
			w.Ranks = *ranks
		}
		if classSet {
			fmt.Fprintln(os.Stderr, "-class is ignored for -scenario/-gen workloads")
		}
	}

	// One session serves every run below: the calibration is measured
	// once, and the baseline runs memoize in the session's cache.
	sess := unimem.New(m)
	ctx := context.Background()

	cal := sess.Calibration()
	fmt.Printf("machine  %s  tiers:", m.Name)
	for t := 0; t < m.NumTiers(); t++ {
		ts := m.Tier(unimem.TierKind(t))
		fmt.Printf("  [%d]%s %dMiB %.1fGB/s %gns", t, ts.Name,
			ts.CapacityBytes>>20, ts.BandwidthBps/1e9, ts.ReadLatNS)
	}
	fmt.Printf("\ncalib    %s\n\n", cal)

	fastOut, err := sess.Run(ctx, w, unimem.FastestOnly())
	check(err)
	fastRes := fastOut.Result
	slowOut, err := sess.Run(ctx, w, unimem.SlowestOnly())
	check(err)
	slowRes := slowOut.Result
	var tr *unimem.Trace
	if *traceOut != "" {
		tr = unimem.NewTrace()
	}
	// The attribution recorder is always attached (it never changes
	// results): the fast-forward timeline below reads its episode records,
	// and -explain prints the full report.
	ex := unimem.NewExplain()
	uniOut, err := sess.RunJob(ctx, unimem.Job{
		Workload: w,
		Strategy: unimem.Unimem(),
		Options:  unimem.Options{Trace: tr, Explain: ex},
	})
	check(err)
	res, rts := uniOut.Tiered(), uniOut.Runtimes
	if tr != nil {
		f, err := os.Create(*traceOut)
		check(err)
		check(tr.WriteChrome(f))
		check(f.Close())
		fmt.Printf("trace    %s (%d events)\n\n", *traceOut, len(tr.Events()))
	}

	norm := func(t int64) float64 { return float64(t) / float64(fastRes.TimeNS) }
	fmt.Printf("%-14s %12s %8s\n", "run", "time", "vs fast")
	fmt.Printf("%-14s %12.1fms %8.2fx\n", "fastest-only", float64(fastRes.TimeNS)/1e6, 1.0)
	fmt.Printf("%-14s %12.1fms %8.2fx\n", "slowest-only", float64(slowRes.TimeNS)/1e6, norm(slowRes.TimeNS))
	fmt.Printf("%-14s %12.1fms %8.2fx\n\n", "unimem", float64(res.TimeNS)/1e6, norm(res.TimeNS))

	// Outcome.Runtimes arrive in rank order.
	for _, rt := range rts {
		rr := res.Ranks[rt.Rank()]
		ms := rt.MoverStats()
		fmt.Printf("rank %d: decisions=%d migrations=%d moved=%dMiB failed=%d overlap=%.1f%% overhead=%.2f%%",
			rt.Rank(), rt.Decisions, rr.Migrations.Migrations,
			rr.Migrations.BytesMigrated>>20, rr.Migrations.FailedNoSpace,
			ms.OverlapFrac()*100,
			rr.OverheadNS/float64(rr.TimeNS)*100)
		if len(rt.ReprofileIters) > 0 {
			fmt.Printf(" reprofiled@%v", rt.ReprofileIters)
		}
		fmt.Println()
	}

	// Fast-path timeline: skips are unanimous across ranks, so one line
	// describes the whole world.
	if fp := uniOut.FastPath; fp.SimulatedIters+fp.AnalyticIters > 0 {
		fmt.Printf("fastpath: %d iterations simulated, %d analytic  memo %d hits / %d misses",
			fp.SimulatedIters, fp.AnalyticIters, fp.MemoHits, fp.MemoMisses)
		for _, ff := range uniOut.Explain.FastForwards {
			fmt.Printf("  ff@[%d-%d]", ff.EntryIter, ff.ExitIter)
		}
		fmt.Println()
	}

	fmt.Printf("\nrank 0 per-tier residency:\n")
	for _, u := range res.Tiers {
		fmt.Printf("  tier %d %-5s %6dMiB resident, %d moves in\n",
			u.Tier, u.Name, u.ResidentBytes>>20, u.MovesIn)
	}

	rt := rts[0]
	if tp := rt.TierPlan(); tp != nil {
		// Multi-tier machines: dump the multiple-choice-knapsack assignment.
		fmt.Printf("\nmulti-tier placement (%s solver, total weight %.2fms):\n",
			tp.Solver, tp.TotalWeightNS/1e6)
		byTier := make(map[int][]string)
		for chunk, tier := range tp.Assign {
			byTier[tier] = append(byTier[tier], chunk)
		}
		for t := 0; t < m.NumTiers(); t++ {
			chunks := byTier[t]
			sort.Strings(chunks)
			fmt.Printf("  tier %d %-5s: %v\n", t, m.TierName(unimem.TierKind(t)), chunks)
		}
	}
	if plan := rt.Plan(); plan != nil {
		fmt.Printf("\nrank 0 candidate plans:\n")
		for _, p := range rt.Candidates {
			fmt.Printf("  %-20s predicted=%.2fms adoption=%d schedule=%d\n",
				p.Strategy, p.PredictedIterNS/1e6, len(p.Adoption), len(p.Schedule))
		}
		fmt.Printf("\nwinning strategy: %s\n", plan.Strategy)
		printed := map[string]bool{}
		for pid, set := range plan.Desired {
			names := make([]string, 0, len(set))
			for n := range set {
				names = append(names, n)
			}
			sort.Strings(names)
			key := fmt.Sprint(names)
			if printed[key] {
				continue
			}
			printed[key] = true
			fmt.Printf("  phase %d desired DRAM: %v\n", pid, names)
		}
		if len(plan.Schedule) > 0 {
			fmt.Println("\nrecurring migration schedule (per iteration):")
			for _, mv := range plan.Schedule {
				fmt.Printf("  %v\n", mv)
			}
		}
		fmt.Printf("\nrank 0 final DRAM residents: %v\n", rt.DRAMResidents())
	}

	fmt.Println("\nper-phase mean durations (across iterations, rank 0):")
	for i, d := range res.PhaseNS {
		fmt.Printf("  %-16s %10.2fms  (%s)\n",
			w.Phases[i].Name, d/1e6, w.Phases[i].Kind)
	}

	if *explain {
		printExplain(uniOut.Explain)
	}
}

// printExplain renders the attribution document: every placement decision
// with its per-phase cost-term breakdown and rejected alternatives, the
// migration audit trail, and the regret summary.
func printExplain(doc *unimem.ExplainDoc) {
	fmt.Printf("\nexplain: %s on %s (%s, %d iterations)\n",
		doc.Workload, doc.Machine, doc.Strategy, doc.Iterations)
	for _, d := range doc.Decisions {
		fmt.Printf("\ndecision %d @iter %d  trigger=%s solver=%s model-cost=%.1fµs\n",
			d.Decision, d.Iter, d.Trigger, d.Solver, d.ModelNS/1e3)
		switch {
		case d.PredictedIterNS > 0:
			fmt.Printf("  predicted iteration %.3fms (oracle static %.3fms)\n",
				d.PredictedIterNS/1e6, d.OracleIterNS/1e6)
		case d.TotalWeightNS > 0:
			fmt.Printf("  knapsack objective %.3fms (oracle static iteration %.3fms)\n",
				d.TotalWeightNS/1e6, d.OracleIterNS/1e6)
		}
		for _, ph := range d.Phases {
			fmt.Printf("  phase %d %-16s %-8s %8.2fms  chosen benefit %.3fms\n",
				ph.Phase, ph.Name, ph.Kind, ph.DurNS/1e6, ph.BenefitNS/1e6)
			for _, c := range ph.Chunks {
				mark := " "
				if c.Chosen {
					mark = "*"
				}
				fmt.Printf("    %s %-12s %-10s %6.1fGB/s  benefit %8.3fms\n",
					mark, c.Chunk, c.Sensitivity, c.BWBps/1e9, c.BenefitNS/1e6)
			}
		}
		if len(d.Alternatives) > 0 {
			fmt.Println("  alternatives:")
			for _, a := range d.Alternatives {
				mark := " "
				if a.Chosen {
					mark = "*"
				}
				fmt.Printf("    %s %-20s predicted %8.3fms  delta %+8.3fms  moves %d\n",
					mark, a.Strategy, a.PredictedIterNS/1e6, a.DeltaNS/1e6, a.Moves)
			}
		}
		if len(d.Rejected) > 0 {
			fmt.Println("  rejected placements (capacity-denied, best tier first):")
			for _, rj := range d.Rejected {
				fmt.Printf("    %-12s held at tier %d, wanted tier %d  forgone %.3fms/iter\n",
					rj.Chunk, rj.ChosenTier, rj.BestTier, rj.DeltaNS/1e6)
			}
		}
	}
	if len(doc.Migrations) > 0 {
		fmt.Printf("\nmigrations (%d):\n", len(doc.Migrations))
		for _, mg := range doc.Migrations {
			line := fmt.Sprintf("  %-12s %s->%s %6dKiB  trigger=%-12s predicted %8.3fms realized %8.3fms",
				mg.Chunk, mg.From, mg.To, mg.Bytes>>10, mg.Trigger,
				mg.PredictedNS/1e6, float64(mg.RealizedNS)/1e6)
			if mg.Failed {
				line += "  FAILED"
				if mg.Error != "" {
					line += " (" + mg.Error + ")"
				}
			}
			fmt.Println(line)
		}
	}
	if len(doc.Reprofiles) > 0 {
		fmt.Println("\nreprofiles:")
		for _, rp := range doc.Reprofiles {
			fmt.Printf("  iter %d phase %-16s variation %.1f%% > %.0f%% threshold\n",
				rp.Iter, rp.Phase, rp.Variation*100, rp.Threshold*100)
		}
	}
	if len(doc.FastForwards) > 0 {
		fmt.Println("\nfast-forwards:")
		for _, ff := range doc.FastForwards {
			fmt.Printf("  iter %d-%d: %d iterations computed analytically (+%.2fms virtual)\n",
				ff.EntryIter, ff.ExitIter, ff.Iters, float64(ff.ClockDeltaNS)/1e6)
		}
	}
	if rg := doc.Regret; rg != nil {
		fmt.Printf("\nregret: realized %.2fms vs oracle-best static %.2fms -> %+.2fms (%+.2f%%)\n",
			float64(rg.RealizedNS)/1e6, float64(rg.OracleNS)/1e6,
			float64(rg.RegretNS)/1e6, rg.RegretFrac*100)
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
