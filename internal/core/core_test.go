package core_test

import (
	"sync"
	"testing"

	"unimem/internal/app"
	"unimem/internal/core"
	"unimem/internal/machine"
	"unimem/internal/phase"
	"unimem/internal/workloads"
)

// tinyWorkload builds a 3-phase iterative app with one hot streaming
// object, one cold object and one latency-bound object, sized so DRAM
// (configured below) holds two of the three.
func tinyWorkload(iters int) *workloads.Workload {
	return &workloads.Workload{
		Name: "tiny", Class: "C", Ranks: 1, Iterations: iters,
		Objects: []workloads.ObjectSpec{
			{Name: "hot", Size: 96 << 20, RefHint: 3e6},
			{Name: "chase", Size: 96 << 20, RefHint: 5e5},
			{Name: "cold", Size: 96 << 20},
		},
		Phases: []workloads.Phase{
			{Name: "sweep", Kind: phase.Compute, Flops: 10e6,
				Refs: func(int) []phase.Ref {
					return []phase.Ref{{Object: "hot", Accesses: 1.3e6, ReadFrac: 0.7, Pattern: machine.Stream}}
				}},
			{Name: "gather", Kind: phase.Compute, Flops: 5e6,
				Refs: func(int) []phase.Ref {
					return []phase.Ref{{Object: "chase", Accesses: 3e5, ReadFrac: 1, Pattern: machine.PointerChase}}
				}},
			{Name: "reduce", Kind: phase.Comm, Comm: workloads.CommAllreduce, CommBytes: 64,
				Refs: func(int) []phase.Ref { return nil }},
		},
	}
}

func run(t *testing.T, w *workloads.Workload, m *machine.Machine, cfg core.Config) (*app.Result, *core.Runtime) {
	t.Helper()
	var rt *core.Runtime
	res, err := app.Run(w, m, app.Options{Ranks: 1}, func(rank int) app.Manager {
		rt = core.NewRuntime(rank, cfg)
		return rt
	})
	if err != nil {
		t.Fatal(err)
	}
	return res, rt
}

func nvmMachine() *machine.Machine {
	return machine.PlatformA().WithNVMBandwidthFraction(0.5).WithDRAMCapacity(224 << 20)
}

func TestWorkflowProfileDecideEnforce(t *testing.T) {
	m := nvmMachine()
	res, rt := run(t, tinyWorkload(10), m, core.DefaultConfig())
	if rt.Decisions != 1 {
		t.Fatalf("decisions = %d, want 1 (stationary workload)", rt.Decisions)
	}
	if rt.Plan() == nil {
		t.Fatal("no plan after run")
	}
	residents := rt.DRAMResidents()
	has := func(name string) bool {
		for _, r := range residents {
			if r == name {
				return true
			}
		}
		return false
	}
	if !has("hot") || !has("chase") {
		t.Fatalf("hot objects not placed: %v", residents)
	}
	if has("cold") {
		t.Fatalf("cold object placed: %v", residents)
	}
	if res.Ranks[0].OverheadNS <= 0 {
		t.Fatal("runtime overhead must be accounted")
	}
}

func TestBeatsNVMOnlyAndApproachesDRAM(t *testing.T) {
	w := tinyWorkload(20)
	m := nvmMachine()
	dramM := m.WithNVMLatencyFactor(1).WithNVMBandwidthFraction(1)
	dram, err := app.Run(w, dramM, app.Options{Ranks: 1}, app.NewStaticFactory("dram", nil))
	if err != nil {
		t.Fatal(err)
	}
	nvm, err := app.Run(w, m, app.Options{Ranks: 1}, app.NewStaticFactory("nvm", nil))
	if err != nil {
		t.Fatal(err)
	}
	uni, _ := run(t, w, m, core.DefaultConfig())
	if uni.TimeNS >= nvm.TimeNS {
		t.Fatalf("unimem %d not better than nvm-only %d", uni.TimeNS, nvm.TimeNS)
	}
	if float64(uni.TimeNS) > 1.25*float64(dram.TimeNS) {
		t.Fatalf("unimem %.2fx of dram-only, want <= 1.25x",
			float64(uni.TimeNS)/float64(dram.TimeNS))
	}
}

func TestInitialPlacementUsesHints(t *testing.T) {
	w := tinyWorkload(1) // single iteration: only initial placement acts
	cfg := core.DefaultConfig()
	_, rt := run(t, w, nvmMachine(), cfg)
	res := rt.DRAMResidents()
	// hot (hint 3e6) and chase (5e5) fit in 224MB; cold has no hint.
	found := map[string]bool{}
	for _, r := range res {
		found[r] = true
	}
	if !found["hot"] || !found["chase"] || found["cold"] {
		t.Fatalf("initial placement wrong: %v", res)
	}
}

func TestInitialPlacementDisabled(t *testing.T) {
	w := tinyWorkload(1)
	cfg := core.DefaultConfig()
	cfg.EnableInitial = false
	_, rt := run(t, w, nvmMachine(), cfg)
	if len(rt.DRAMResidents()) != 0 {
		t.Fatalf("nothing should be in DRAM without initial placement: %v", rt.DRAMResidents())
	}
}

func TestNoSearchesMeansNoMovement(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.EnableGlobal = false
	cfg.EnableLocal = false
	cfg.EnableInitial = false
	cfg.EnablePartition = false
	res, rt := run(t, tinyWorkload(8), nvmMachine(), cfg)
	if res.Ranks[0].Migrations.Migrations != 0 {
		t.Fatalf("%d migrations with all techniques disabled", res.Ranks[0].Migrations.Migrations)
	}
	if rt.Plan() == nil || rt.Plan().Strategy != "none" {
		t.Fatal("expected the none-plan")
	}
}

func TestPartitioningSplitsLargeObjects(t *testing.T) {
	w := &workloads.Workload{
		Name: "bigobj", Class: "C", Ranks: 1, Iterations: 6,
		Objects: []workloads.ObjectSpec{
			{Name: "huge", Size: 512 << 20, Partitionable: true},
		},
		Phases: []workloads.Phase{
			{Name: "sweep", Kind: phase.Compute, Flops: 20e6,
				Refs: func(int) []phase.Ref {
					return []phase.Ref{{Object: "huge", Accesses: 6e6, ReadFrac: 0.6, Pattern: machine.Stream}}
				}},
			{Name: "sync", Kind: phase.Comm, Comm: workloads.CommBarrier,
				Refs: func(int) []phase.Ref { return nil }},
		},
	}
	m := machine.PlatformA().WithNVMBandwidthFraction(0.5) // DRAM 256MB < 512MB object
	cfg := core.DefaultConfig()
	res, _ := run(t, w, m, cfg)
	withPart := res.Ranks[0].Migrations.BytesMigrated
	if withPart == 0 {
		t.Fatal("partitioning should let chunks of an oversized object migrate")
	}
	cfg.EnablePartition = false
	res2, _ := run(t, w, m, cfg)
	if res2.Ranks[0].Migrations.BytesMigrated != 0 {
		t.Fatal("an oversized unpartitioned object cannot migrate at all")
	}
	if res.TimeNS >= res2.TimeNS {
		t.Fatalf("partitioning should pay off: with=%d without=%d", res.TimeNS, res2.TimeNS)
	}
}

func TestVariationTriggersReprofile(t *testing.T) {
	// Pattern drift halfway through: the workload's hot object switches,
	// which must trip the >10% monitor and produce a second decision.
	w := &workloads.Workload{
		Name: "drifty", Class: "C", Ranks: 1, Iterations: 24,
		Objects: []workloads.ObjectSpec{
			{Name: "早", Size: 96 << 20},
			{Name: "晚", Size: 96 << 20},
		},
		Phases: []workloads.Phase{
			{Name: "work", Kind: phase.Compute, Flops: 10e6,
				Refs: func(iter int) []phase.Ref {
					name := "早"
					if iter >= 12 {
						name = "晚"
					}
					return []phase.Ref{{Object: name, Accesses: 2e6, ReadFrac: 0.7, Pattern: machine.Stream}}
				}},
			{Name: "sync", Kind: phase.Comm, Comm: workloads.CommBarrier,
				Refs: func(int) []phase.Ref { return nil }},
		},
	}
	m := machine.PlatformA().WithNVMBandwidthFraction(0.5).WithDRAMCapacity(128 << 20)
	_, rt := run(t, w, m, core.DefaultConfig())
	if rt.Decisions < 2 {
		t.Fatalf("decisions = %d, want >= 2 (drift must re-profile)", rt.Decisions)
	}
	res := rt.DRAMResidents()
	if len(res) != 1 || res[0] != "晚" {
		t.Fatalf("placement should follow the drift: %v", res)
	}
}

func TestStationaryWorkloadDoesNotReprofile(t *testing.T) {
	_, rt := run(t, tinyWorkload(30), nvmMachine(), core.DefaultConfig())
	if rt.Decisions != 1 {
		t.Fatalf("stationary workload re-profiled: %d decisions", rt.Decisions)
	}
}

func TestMoverStatsExposed(t *testing.T) {
	// Disable initial placement so adoption has real migrations to do.
	cfg := core.DefaultConfig()
	cfg.EnableInitial = false
	_, rt := run(t, tinyWorkload(10), nvmMachine(), cfg)
	st := rt.MoverStats()
	if st.Enqueued == 0 {
		t.Fatal("no mover activity recorded")
	}
	if f := st.OverlapFrac(); f < 0 || f > 1 {
		t.Fatalf("overlap fraction %v out of range", f)
	}
}

func TestDeclareDep(t *testing.T) {
	cfg := core.DefaultConfig()
	var rt *core.Runtime
	w := tinyWorkload(6)
	_, err := app.Run(w, nvmMachine(), app.Options{Ranks: 1}, func(rank int) app.Manager {
		rt = core.NewRuntime(rank, cfg)
		rt.DeclareDep("hot", 1) // directive: phase 1 also touches hot
		return rt
	})
	if err != nil {
		t.Fatal(err)
	}
	if rt.Decisions != 1 {
		t.Fatalf("decisions = %d", rt.Decisions)
	}
}

func TestRuntimeOverheadWithinPaperBounds(t *testing.T) {
	res, _ := run(t, tinyWorkload(40), nvmMachine(), core.DefaultConfig())
	frac := res.Ranks[0].OverheadNS / float64(res.Ranks[0].TimeNS)
	if frac > 0.04 {
		t.Fatalf("pure runtime cost %.1f%%, paper reports <= 3%%", frac*100)
	}
}

// TestTieredPlacementDisabled pins the multi-tier analogue of the two-tier
// "none" plan: with both searches disabled the runtime must decide, but
// keep every object where it started (no migrations).
func TestTieredPlacementDisabled(t *testing.T) {
	m := machine.PlatformHBMDDRNVM()
	w := workloads.NewCG("C", 2)
	cfg := core.DefaultConfig()
	cfg.EnableGlobal, cfg.EnableLocal = false, false
	var mu sync.Mutex
	var rts []*core.Runtime
	res, err := app.Run(w, m, app.Options{Ranks: 2}, func(rank int) app.Manager {
		r := core.NewRuntime(rank, cfg)
		mu.Lock()
		rts = append(rts, r)
		mu.Unlock()
		return r
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalMigrations() != 0 {
		t.Fatalf("disabled placement migrated %d times", res.TotalMigrations())
	}
	for _, rt := range rts {
		tp := rt.TierPlan()
		if tp == nil || tp.Solver != "none" {
			t.Fatalf("expected a 'none' tier plan, got %+v", tp)
		}
	}
}
