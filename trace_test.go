package unimem_test

import (
	"context"
	"encoding/json"
	"testing"

	"unimem"
)

// TestTraceDoesNotPerturbRun is the observability layer's golden
// invariant: attaching a Trace must not change the simulation by one
// nanosecond. The full Result documents of a traced and an untraced run
// must be identical, so every table the experiments print stays
// byte-identical whether or not instrumentation is attached.
func TestTraceDoesNotPerturbRun(t *testing.T) {
	m := unimem.PlatformA().WithNVMBandwidthFraction(0.5)
	w := unimem.NewNPB("CG", "A", 2)
	sess := unimem.New(m, unimem.WithQuick())
	ctx := context.Background()

	plain, err := sess.RunJob(ctx, unimem.Job{Workload: w, Strategy: unimem.Unimem()})
	if err != nil {
		t.Fatal(err)
	}
	tr := unimem.NewTrace()
	traced, err := sess.RunJob(ctx, unimem.Job{
		Workload: w,
		Strategy: unimem.Unimem(),
		Options:  unimem.Options{Trace: tr},
	})
	if err != nil {
		t.Fatal(err)
	}

	if plain.Result.TimeNS != traced.Result.TimeNS {
		t.Fatalf("traced run changed simulated time: %d != %d",
			traced.Result.TimeNS, plain.Result.TimeNS)
	}
	a, err := json.Marshal(plain.Result)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(traced.Result)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatalf("traced run produced a different Result document:\nplain:  %s\ntraced: %s", a, b)
	}

	// And the trace itself must have recorded the run: virtual-clock
	// phase spans and at least one iteration span.
	var phases, iters int
	for _, e := range tr.Events() {
		switch e.Cat {
		case "phase":
			phases++
		case "iteration":
			iters++
		}
	}
	if phases == 0 || iters == 0 {
		t.Fatalf("trace recorded %d phase and %d iteration spans (want both > 0, %d events total)",
			phases, iters, len(tr.Events()))
	}
}
